/// Habitat monitoring — the Section-I application class ([1], [2]): a
/// temperature-instrumented reserve divided into zones. Shows three query
/// shapes over one deployment:
///
/// * "which zones are hottest right now" (TOP-3 AVG GROUP BY roomid -> MINT),
/// * "which individual sensors read highest" (node ranking -> MINT's
///   threshold-monitoring degenerate case, compared against FILA), and
/// * MAX aggregates (hot-spot detection).
#include <cstdio>

#include "core/fila.hpp"
#include "core/mint.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "data/generators.hpp"
#include "sim/network.hpp"
#include "sim/routing_tree.hpp"
#include "sim/topology.hpp"

using namespace kspot;

namespace {

struct Deployment {
  sim::Topology topology;
  sim::RoutingTree tree;
};

Deployment MakeReserve(uint64_t seed) {
  sim::TopologyOptions opt;
  opt.num_nodes = 61;   // sink + 60 motes
  opt.num_rooms = 6;    // zones
  opt.field_size = 300;  // meters
  opt.comm_range = 60;
  util::Rng rng(seed);
  Deployment d;
  d.topology = sim::MakeClusteredRooms(opt, rng);
  util::Rng tree_rng(seed ^ 0xF00D);
  d.tree = sim::RoutingTree::BuildClusterAware(d.topology, tree_rng);
  return d;
}

std::vector<sim::GroupId> Rooms(const sim::Topology& topo) {
  std::vector<sim::GroupId> rooms;
  for (sim::NodeId id = 0; id < topo.num_nodes(); ++id) rooms.push_back(topo.room(id));
  return rooms;
}

}  // namespace

int main() {
  std::printf("=== KSpot habitat monitor: 60 motes, 6 zones, temperature ===\n");
  const uint64_t kSeed = 77;
  const size_t kEpochs = 30;

  // --- Zone ranking: TOP-3 zones by average temperature --------------------
  {
    Deployment d = MakeReserve(kSeed);
    sim::Network net(&d.topology, &d.tree, {}, util::Rng(kSeed));
    data::RoomCorrelatedGenerator gen(Rooms(d.topology), data::Modality::kTemperature,
                                      /*room_sigma=*/0.3, /*noise_sigma=*/0.4,
                                      util::Rng(kSeed), /*global_sigma=*/0.0,
                                      /*quantize_step=*/0.5);
    core::QuerySpec spec;
    spec.k = 3;
    spec.agg = agg::AggKind::kAvg;
    spec.grouping = core::Grouping::kRoom;
    spec.SetDomainFrom(data::GetModalityInfo(data::Modality::kTemperature));

    core::MintViews mint(&net, &gen, spec);
    core::TopKResult last;
    for (size_t e = 0; e < kEpochs; ++e) last = mint.RunEpoch(static_cast<sim::Epoch>(e));
    std::printf("\nTOP-3 zones by AVG(temperature) after %zu epochs:\n", kEpochs);
    for (size_t i = 0; i < last.items.size(); ++i) {
      std::printf("  %zu. zone %d at %.2f C\n", i + 1, last.items[i].group,
                  last.items[i].value);
    }
    std::printf("  cost: %llu messages, %llu bytes (MINT; %d repairs)\n",
                static_cast<unsigned long long>(net.total().messages),
                static_cast<unsigned long long>(net.total().payload_bytes),
                mint.repair_count());
  }

  // --- Hot-spot detection: TOP-1 zone by MAX ------------------------------
  {
    Deployment d = MakeReserve(kSeed);
    sim::Network net(&d.topology, &d.tree, {}, util::Rng(kSeed + 1));
    data::RoomCorrelatedGenerator gen(Rooms(d.topology), data::Modality::kTemperature, 0.3,
                                      0.4, util::Rng(kSeed), 0.0, 0.5);
    core::QuerySpec spec;
    spec.k = 1;
    spec.agg = agg::AggKind::kMax;
    spec.grouping = core::Grouping::kRoom;
    spec.SetDomainFrom(data::GetModalityInfo(data::Modality::kTemperature));
    core::MintViews mint(&net, &gen, spec);
    core::TopKResult last;
    for (size_t e = 0; e < kEpochs; ++e) last = mint.RunEpoch(static_cast<sim::Epoch>(e));
    std::printf("\nHot spot (TOP-1 zone by MAX): zone %d peaking at %.2f C\n",
                last.items.at(0).group, last.items[0].value);
  }

  // --- Sensor ranking: MINT vs FILA on the same node-level query ----------
  {
    core::QuerySpec spec;
    spec.k = 5;
    spec.agg = agg::AggKind::kAvg;
    spec.grouping = core::Grouping::kNode;
    spec.SetDomainFrom(data::GetModalityInfo(data::Modality::kTemperature));

    auto run = [&](const char* name, auto&& make_algo) {
      Deployment d = MakeReserve(kSeed);
      sim::Network net(&d.topology, &d.tree, {}, util::Rng(kSeed + 2));
      data::RandomWalkGenerator gen(d.topology.num_nodes(), data::Modality::kTemperature,
                                    0.15, util::Rng(kSeed + 3), /*quantize_step=*/0.5);
      auto algo = make_algo(net, gen, spec);
      for (size_t e = 0; e < kEpochs; ++e) algo->RunEpoch(static_cast<sim::Epoch>(e));
      std::printf("  %-5s %6llu messages, %7llu bytes over %zu epochs\n", name,
                  static_cast<unsigned long long>(net.total().messages),
                  static_cast<unsigned long long>(net.total().payload_bytes), kEpochs);
    };
    std::printf("\nTOP-5 sensors by temperature — monitoring cost comparison:\n");
    run("MINT", [](sim::Network& net, data::DataGenerator& gen, const core::QuerySpec& spec) {
      return std::make_unique<core::MintViews>(&net, &gen, spec);
    });
    run("FILA", [](sim::Network& net, data::DataGenerator& gen, const core::QuerySpec& spec) {
      return std::make_unique<core::Fila>(&net, &gen, spec);
    });
    run("TAG", [](sim::Network& net, data::DataGenerator& gen, const core::QuerySpec& spec) {
      return std::make_unique<core::TagTopK>(&net, &gen, spec);
    });
  }
  return 0;
}
