/// Historic audit — Section III-B end to end: every mote buffers readings in
/// its sliding window (SRAM ring + MicroHash-indexed flash archive, the
/// MICA2 configuration of reference [10]); afterwards an operator asks
/// "find the K time instances with the highest average sound" and KSpot
/// answers it with TJA — then the same question through the SQL front end.
#include <cstdio>

#include "core/tja.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"
#include "sim/network.hpp"
#include "storage/history_store.hpp"
#include "util/fixed_point.hpp"

using namespace kspot;

int main() {
  std::printf("=== KSpot historic audit: TOP-5 loudest minutes of the last 4 hours ===\n\n");
  const size_t kWindow = 240;  // 4 hours of one-minute epochs
  const uint64_t kSeed = 55;

  // Deployment: the conference floor again.
  system::Scenario scenario = system::Scenario::ConferenceFloor(6, 4, kSeed);
  sim::Topology topo = scenario.BuildTopology();
  util::Rng tree_rng(kSeed);
  sim::RoutingTree tree = sim::RoutingTree::BuildClusterAware(topo, tree_rng);

  // Phase 1: live acquisition into per-node stores. Sampling is local and
  // radio-silent; old readings spill from the SRAM ring to flash through
  // the MicroHash index.
  std::vector<sim::GroupId> rooms;
  for (sim::NodeId id = 0; id < topo.num_nodes(); ++id) rooms.push_back(topo.room(id));
  data::RoomCorrelatedGenerator gen(rooms, data::Modality::kSound, 1.0, 1.0,
                                    util::Rng(kSeed), /*global_sigma=*/4.0,
                                    /*quantize_step=*/1.0);
  std::vector<storage::HistoryStore> stores;
  for (sim::NodeId id = 0; id < topo.num_nodes(); ++id) {
    stores.emplace_back(kWindow, /*archive_to_flash=*/true, 0.0, 100.0);
  }
  const size_t kTotalEpochs = kWindow + 60;  // an hour more than the window
  for (size_t e = 0; e < kTotalEpochs; ++e) {
    for (sim::NodeId id = 1; id < topo.num_nodes(); ++id) {
      stores[id].Append(static_cast<sim::Epoch>(e), gen.Value(id, static_cast<sim::Epoch>(e)));
    }
  }
  std::printf("buffered %zu epochs per node (window %zu in SRAM, %llu pages on flash at "
              "node 1; archive best: %.0f)\n",
              kTotalEpochs, kWindow,
              static_cast<unsigned long long>(stores[1].flash_writes()),
              util::fixed_point::Decode(stores[1].ArchivedTopK(1).at(0).value_fx));

  // Phase 2: the TJA query over the stored windows.
  storage::StoreHistorySource source(&stores);
  sim::Network net(&topo, &tree, {}, util::Rng(kSeed ^ 0xAA));
  core::HistoricOptions opt;
  opt.k = 5;
  core::Tja tja(&net, &source, opt);
  core::HistoricResult result = tja.Run();

  std::printf("\nTOP-5 time instances by AVG(sound) over the window:\n");
  for (size_t i = 0; i < result.items.size(); ++i) {
    std::printf("  %zu. window slot %3d  avg %.2f\n", i + 1, result.items[i].group,
                result.items[i].value);
  }
  std::printf("TJA: |Lsink|=%zu, %d round(s); LB %llu B + HJ %llu B = %llu bytes total\n",
              result.lsink_size, result.rounds,
              static_cast<unsigned long long>(net.PhaseTotal("tja.lb").payload_bytes),
              static_cast<unsigned long long>(net.PhaseTotal("tja.hj").payload_bytes),
              static_cast<unsigned long long>(net.total().payload_bytes));

  // Phase 3: the same audit through the declarative front end.
  std::printf("\n--- the same audit through SQL ---\n");
  system::KSpotServer::Options sopt;
  sopt.seed = kSeed;
  system::KSpotServer server(scenario, sopt);
  const char* sql =
      "SELECT TOP 5 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 240";
  std::printf("query> %s\n", sql);
  auto outcome = server.Execute(sql);
  if (!outcome.ok()) {
    std::printf("error: %s\n", outcome.status().message().c_str());
    return 1;
  }
  std::printf("routed to: %s; answered with %zu candidates in %d round(s); bytes: %llu "
              "(baseline TAG-H: %llu)\n",
              outcome.value().algorithm.c_str(), outcome.value().historic.lsink_size,
              outcome.value().historic.rounds,
              static_cast<unsigned long long>(outcome.value().cost.payload_bytes),
              static_cast<unsigned long long>(outcome.value().baseline_cost.payload_bytes));
  for (size_t i = 0; i < outcome.value().historic.items.size(); ++i) {
    std::printf("  %zu. window slot %3d  avg %.2f\n", i + 1,
                outcome.value().historic.items[i].group,
                outcome.value().historic.items[i].value);
  }
  return 0;
}
