/// Conference rooms — the paper's demonstration, end to end:
///
/// * the exact Figure-1 building (9 sensors, 4 rooms) including the naive
///   pruning anomaly that motivates KSpot, then
/// * the live conference-floor monitor with the Display Panel's KSpot
///   Bullets re-ranking every epoch and the System Panel projecting the
///   savings — what attendees would see on the projector wall.
#include <cstdio>

#include "core/naive.hpp"
#include "core/oracle.hpp"
#include "data/generators.hpp"
#include "kspot/display_panel.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"

using namespace kspot;

namespace {

void Figure1Anomaly() {
  std::printf("--- Part 1: why not just prune locally? (Figure 1) ---\n\n");
  system::Scenario fig1 = system::Scenario::Figure1();
  sim::Topology topo = fig1.BuildTopology();
  sim::RoutingTree tree = sim::RoutingTree::FromParents(sim::MakeFigure1Parents());
  sim::Network net(&topo, &tree, {}, util::Rng(1));
  data::ConstantGenerator gen(sim::Figure1Readings());

  core::QuerySpec spec;
  spec.k = 1;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kRoom;
  spec.domain_max = 100.0;

  core::Oracle oracle(&topo, &gen, spec);
  std::printf("true room averages:");
  for (const auto& item : oracle.FullView(0).Ranked(agg::AggKind::kAvg)) {
    std::printf("  %s=%.1f", sim::Figure1RoomName(item.group).c_str(), item.value);
  }

  core::NaiveTopK naive(&net, &gen, spec);
  core::TopKResult wrong = naive.RunEpoch(0);
  std::printf("\nnaive local pruning reports: (%s, %.1f)  <-- WRONG: s4 eliminated (D, 39)\n",
              sim::Figure1RoomName(wrong.items.at(0).group).c_str(), wrong.items[0].value);

  system::KSpotServer::Options opt;
  opt.epochs = 1;
  opt.make_generator = [](const system::Scenario&, uint64_t) {
    return std::make_unique<data::ConstantGenerator>(sim::Figure1Readings());
  };
  system::KSpotServer server(fig1, opt);
  auto outcome =
      server.Execute("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid");
  const auto& item = outcome.value().per_epoch.at(0).items.at(0);
  std::printf("KSpot (MINT) reports:        (%s, %.1f)  <-- correct\n\n",
              fig1.ClusterName(item.group).c_str(), item.value);
}

void LiveMonitor() {
  std::printf("--- Part 2: the live conference monitor (Figure 3 / Section IV-B) ---\n\n");
  system::Scenario floor = system::Scenario::ConferenceFloor(6, 3, 2009);
  system::KSpotServer::Options opt;
  opt.epochs = 25;
  opt.seed = 2009;
  system::KSpotServer server(floor, opt);
  system::DisplayPanel panel(&server.scenario(), 64, 14);
  std::printf("%s\n", panel.RenderMap().c_str());

  auto outcome = server.ExecuteStreaming(
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min",
      [&](const core::TopKResult& r, const system::SystemPanel& sys) {
        if (r.epoch % 6 == 0) {
          std::printf("%s", panel.RenderBullets(r).c_str());
          if (r.epoch == 24) std::printf("\n%s", sys.Render().c_str());
        }
      });
  if (!outcome.ok()) {
    std::printf("error: %s\n", outcome.status().message().c_str());
    return;
  }
  std::printf("\n%s", outcome.value().panel.Render().c_str());
}

}  // namespace

int main() {
  std::printf("=== KSpot conference-rooms demonstration ===\n\n");
  Figure1Anomaly();
  LiveMonitor();
  return 0;
}
