/// Multi-tenant monitoring — many users' queries on ONE deployment.
///
/// The KSpot server of the paper serves a deployed building; real traffic
/// means many users watching it at once. This example admits a mixed batch
/// of queries to a QueryCoordinator — snapshot top-k dashboards (several
/// users asking the same question), an acquisitional SELECT, and a historic
/// TJA audit — and drives them all over one shared data plane: one routing
/// tree, one battery ledger, one per-epoch data wave.
///
/// The punchline is the bill: compatible snapshot queries piggyback on a
/// single converge-cast, so adding the 2nd..Nth identical dashboard costs
/// (almost) nothing, where naive per-query serving would multiply the radio
/// traffic by N.
#include <cstdio>

#include "kspot/coordinator.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"

using namespace kspot;

int main() {
  std::printf("=== multi-tenant KSpot: one deployment, many queries ===\n\n");
  system::Scenario floor = system::Scenario::ConferenceFloor(8, 4, /*seed=*/5);

  system::QueryCoordinator::Options opt;
  opt.epochs = 40;
  opt.seed = 7;
  system::QueryCoordinator coordinator(floor, opt);

  // Six users: four identical "loudest rooms" dashboards, one raw tuple
  // stream, one historic audit.
  const char* queries[] = {
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
      "SELECT nodeid, sound FROM sensors WHERE sound > 60",
      "SELECT TOP 5 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 32",
  };
  for (const char* sql : queries) {
    auto admitted = coordinator.Admit(sql);
    if (!admitted.ok()) {
      std::printf("rejected: %s\n  %s\n", sql, admitted.status().message().c_str());
      return 1;
    }
    std::printf("admitted #%u  %s\n", admitted.value(), sql);
  }

  auto report_or = coordinator.Run();
  if (!report_or.ok()) {
    std::printf("run failed: %s\n", report_or.status().message().c_str());
    return 1;
  }
  const system::CoordinatorReport& report = report_or.value();

  std::printf("\n%zu queries rode %zu operators over %zu epochs\n", report.queries,
              report.operators, report.epochs);
  for (const system::QueryOutcome& outcome : report.outcomes) {
    double per_query_msgs = static_cast<double>(outcome.shared_cost.messages) /
                            static_cast<double>(outcome.share_group_size);
    std::printf("  #%u %-12s shared by %zu -> %.1f msgs/query for the run\n", outcome.id,
                outcome.algorithm.c_str(), outcome.share_group_size, per_query_msgs);
  }
  const system::QueryOutcome& dashboard = report.outcomes[0];
  if (!dashboard.per_epoch.empty()) {
    std::printf("\nfinal dashboard answer (epoch %zu):\n%s", report.epochs - 1,
                dashboard.per_epoch.back().ToString().c_str());
  }
  const system::QueryOutcome& audit = report.outcomes[5];
  std::printf("\nhistoric audit (loudest time instances):\n");
  for (const auto& item : audit.historic.items) {
    std::printf("  epoch %d  avg=%.2f\n", item.group, item.value);
  }

  // What would the same six queries cost served one at a time?
  system::KSpotServer::Options server_opt;
  server_opt.epochs = opt.epochs;
  server_opt.seed = opt.seed;
  server_opt.run_baseline = false;
  system::KSpotServer server(floor, server_opt);
  uint64_t sequential_msgs = 0;
  for (const char* sql : queries) {
    auto outcome = server.Execute(sql);
    if (outcome.ok()) sequential_msgs += outcome.value().cost.messages;
  }
  std::printf("\nshared data plane: %llu msgs   sequential per-query serving: %llu msgs "
              "(%.1fx)\n",
              static_cast<unsigned long long>(report.total.messages),
              static_cast<unsigned long long>(sequential_msgs),
              static_cast<double>(sequential_msgs) /
                  static_cast<double>(report.total.messages));
  return 0;
}
