/// Quickstart: the 60-second tour of the KSpot public API.
///
/// 1. Describe a deployment (a Scenario: nodes, rooms, radio range).
/// 2. Start the KSpot server over it.
/// 3. Submit the paper's SQL query.
/// 4. Read ranked answers and the System-Panel savings.
///
/// Build & run:  cmake -B build -G Ninja && cmake --build build &&
///               ./build/examples/quickstart
#include <cstdio>

#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"

int main() {
  using namespace kspot;

  // A conference floor: 6 clusters (Auditorium, RoomA, ..., Lobby) with 4
  // sound sensors each, plus the sink. Scenarios can also be loaded from
  // text files — see Scenario::Load.
  system::Scenario scenario = system::Scenario::ConferenceFloor(/*rooms=*/6,
                                                                /*nodes_per_room=*/4,
                                                                /*seed=*/1);

  system::KSpotServer::Options options;
  options.epochs = 60;  // continuous query: an hour of one-minute epochs
  options.seed = 1;
  system::KSpotServer server(scenario, options);

  // The exact query class of Section I of the paper.
  const char* sql =
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid "
      "EPOCH DURATION 1 min";
  std::printf("query> %s\n\n", sql);

  util::StatusOr<system::RunOutcome> outcome = server.Execute(sql);
  if (!outcome.ok()) {
    std::printf("query rejected: %s\n", outcome.status().message().c_str());
    return 1;
  }

  const system::RunOutcome& run = outcome.value();
  std::printf("routed to algorithm: %s\n\n", run.algorithm.c_str());
  for (size_t e = 0; e < run.per_epoch.size(); e += 5) {
    const core::TopKResult& r = run.per_epoch[e];
    std::printf("epoch %2u:", r.epoch);
    for (size_t i = 0; i < r.items.size(); ++i) {
      std::printf("  %zu. %s (%.1f)", i + 1,
                  scenario.ClusterName(r.items[i].group).c_str(), r.items[i].value);
    }
    std::printf("\n");
  }

  std::printf("\n%s", run.panel.Render().c_str());
  return 0;
}
