/// Live dashboard — a session that never stops for its viewers.
///
/// The batch QueryCoordinator::Run() answers a frozen set of queries; a real
/// control-room deployment is the opposite: the network runs continuously
/// while operators join, leave, and thousands of dashboard viewers watch.
/// This example drives the session surface end to end:
///
///   - Open() a session and StepEpoch() the shared data plane,
///   - Subscribe() viewers through a FanOutHub (one materialized result per
///     operator group per epoch, no matter how many viewers),
///   - Admit() a new query MID-RUN — it piggybacks on the running operator
///     without perturbing anyone's answers,
///   - admit a rate-limited auditor (every 4th epoch) and watch its viewers'
///     staleness saw between refreshes,
///   - Cancel() a query and see its operator released and its viewers go
///     stale,
///   - run the whole session under the observability layer (metrics +
///     tracing on via DeploymentConfig — same answers, now measured) and
///     render the SystemPanel's runtime-metrics pane at close,
///   - Close() and read the per-query outcomes.
#include <cstdio>
#include <vector>

#include "kspot/coordinator.hpp"
#include "kspot/fanout.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/system_panel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace kspot;

int main() {
  std::printf("=== live KSpot session: admit, subscribe, cancel mid-run ===\n\n");
  system::Scenario floor = system::Scenario::ConferenceFloor(8, 4, /*seed=*/5);

  system::QueryCoordinator::Options opt;
  opt.seed = 7;
  // Watch the watcher: metrics + tracing on for the whole session. Off by
  // default everywhere; turning them on changes wall-clock only — every
  // answer below is bit-identical to an unobserved run.
  opt.enable_metrics = true;
  opt.enable_tracing = true;
  system::QueryCoordinator coordinator(floor, opt);
  system::FanOutHub hub(&coordinator);
  system::SystemPanel panel;

  // One query on the air at open: the wall dashboard everyone watches.
  auto wall = coordinator.Admit(
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid");
  if (!wall.ok()) return 1;
  std::vector<system::SubscriberId> viewers;
  for (int i = 0; i < 500; ++i) {
    viewers.push_back(hub.Subscribe(wall.value()).value());
  }

  if (!coordinator.Open().ok()) return 1;
  std::printf("session open: %zu operator(s), %zu viewers\n\n",
              coordinator.active_operators(), hub.subscribers());

  system::QueryId late_id = 0;
  system::QueryId audit_id = 0;
  system::SubscriberId audit_viewer = 0;
  for (size_t e = 0; e < 16; ++e) {
    if (e == 4) {
      // A night-shift operator joins mid-run with the SAME question: the
      // CompatKey dedupe piggybacks it on the running operator — no new
      // converge-cast, nobody's answers change.
      auto late = coordinator.Admit(
          "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid");
      late_id = late.value();
      for (int i = 0; i < 250; ++i) hub.Subscribe(late_id).value();
      std::printf("[epoch %2zu] late dashboard admitted -> still %zu operator(s), "
                  "%zu viewers\n",
                  e, coordinator.active_operators(), hub.subscribers());
    }
    if (e == 6) {
      // An auditor wants the quiet rooms, but only every 4th epoch.
      system::AdmitOptions slow;
      slow.period = 4;
      auto audit = coordinator.Admit(
          "SELECT TOP 2 roomid, MIN(sound) FROM sensors GROUP BY roomid", slow);
      audit_id = audit.value();
      audit_viewer = hub.Subscribe(audit_id).value();
      std::printf("[epoch %2zu] rate-limited audit admitted -> %zu operators\n", e,
                  coordinator.active_operators());
    }
    if (e == 12) {
      // The auditor logs off; the last member of the share group releases
      // the operator and it stops costing the network.
      if (!coordinator.Cancel(audit_id).ok()) return 1;
      std::printf("[epoch %2zu] audit cancelled -> %zu operator(s) remain\n", e,
                  coordinator.active_operators());
    }

    auto update = coordinator.StepEpoch();
    if (!update.ok()) return 1;
    size_t delivered = hub.Publish(update.value());
    panel.RecordKspotEpoch(update.value().epoch_cost);

    std::printf("[epoch %2zu] %zu group(s), %zu deliveries, %llu msgs", e,
                update.value().groups.size(), delivered,
                static_cast<unsigned long long>(update.value().epoch_cost.messages));
    auto latest = hub.Latest(viewers[0]);
    if (latest && !latest->items.empty()) {
      std::printf(" | loudest room %d at %.1f dB", latest->items[0].group,
                  latest->items[0].value);
    }
    if (audit_viewer != 0 && hub.Stats(audit_viewer).ok()) {
      std::printf(" | audit staleness %llu",
                  static_cast<unsigned long long>(
                      hub.Stats(audit_viewer).value().staleness));
    }
    std::printf("\n");
  }

  auto report = coordinator.Close();
  if (!report.ok()) return 1;
  std::printf("\nsession closed after %zu epochs, %llu total deliveries\n",
              report.value().epochs,
              static_cast<unsigned long long>(hub.total_deliveries()));
  for (const auto& outcome : report.value().outcomes) {
    std::printf("  query %u (%s): joined epoch %llu, %zu results%s, share x%zu\n",
                outcome.id, outcome.algorithm.c_str(),
                static_cast<unsigned long long>(outcome.joined_epoch),
                outcome.per_epoch.size(),
                outcome.cancelled_mid_session ? " (cancelled mid-run)" : "",
                outcome.share_group_size);
  }
  // What the observability layer saw: per-stage step timing, fan-out publish
  // latency, churn/repair counts — rendered as the SystemPanel metrics pane.
  panel.RecordMetrics(obs::Registry().Snapshot());
  std::printf("\n%s", panel.Render().c_str());
  std::printf("\ntracer buffered %zu span(s); export them with\n"
              "kspot_bench --trace-out trace.json for chrome://tracing\n",
              obs::GlobalTracer().size());

  std::printf("\nThe late dashboard rode the running operator for free; the\n"
              "rate-limited audit ran only every 4th epoch; 750 viewers were\n"
              "served by ONE converge-cast per epoch.\n");
  return 0;
}
