#!/usr/bin/env python3
"""Gate on wall-clock regressions of the perf scenarios.

Compares a freshly produced BENCH_<scenario>.json against its committed
baseline and fails when any sweep point's gated metric dropped by more than
the tolerance (default 25%; override with --tolerance, or with the
KSPOT_E16_TOLERANCE environment variable that seeds --tolerance's default —
the CI E17 gate passes --tolerance explicitly).

Gated scenarios:
  E16 throughput         metric epochs_per_sec (the default)
  E17 server_throughput  metric coord_qps
  E18 fanout_throughput  metric deliveries_per_sec

Only the gated metric can fail the build, but every numeric metric the two
runs share is printed per sweep row (baseline -> current, ratio) on pass as
well as fail, so CI logs carry the whole perf trajectory.

The baselines are machine-dependent: refresh them (run the scenario with
--quick --threads 1 and copy the JSON) whenever CI hardware changes, and
always alongside intentional perf-trade commits.

Usage:
  python3 bench/check_regression.py --current bench-json-e16/BENCH_throughput.json
  python3 bench/check_regression.py --metric coord_qps \
      --baseline bench/baseline/BENCH_E17_server_throughput.json \
      --current bench-json-e17/BENCH_server_throughput.json
"""

import argparse
import json
import os
import sys


class BenchFileError(Exception):
    """A bench JSON file that cannot be read or parsed (one-line message)."""


def load_points(path, metric):
    """Returns ({(param tuple): gated metric value},
    {(param tuple): {name: value}}) for every ok trial."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise BenchFileError(
            f"cannot read bench file {path}: {exc.strerror or exc} "
            "(missing baseline? run the scenario with --quick --threads 1 and "
            "commit the JSON)"
        ) from exc
    except json.JSONDecodeError as exc:
        raise BenchFileError(f"bench file {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise BenchFileError(f"bench file {path} is not a JSON object")
    points = {}
    all_metrics = {}
    for trial in doc.get("trials", []):
        if not trial.get("ok", False):
            continue
        key = tuple(sorted((k, str(v)) for k, v in dict(trial["params"]).items()))
        metrics = dict(trial["metrics"])
        all_metrics[key] = {
            name: float(value)
            for name, value in metrics.items()
            if isinstance(value, (int, float))
        }
        if metric in metrics:
            points[key] = float(metrics[metric])
    return points, all_metrics


def print_metric_deltas(base_metrics, cur_metrics, gated_metric):
    """One indented line per non-gated metric both runs share: the perf
    trajectory CI logs show on pass as well as fail."""
    for name in sorted(set(base_metrics) & set(cur_metrics)):
        if name == gated_metric:
            continue
        base, cur = base_metrics[name], cur_metrics[name]
        ratio = f"{cur / base:.2f}x" if base != 0 else "n/a"
        print(f"    {name}: baseline {base:.3f} -> current {cur:.3f} ({ratio})")


def self_test():
    """Spawns this script against missing/garbage/good inputs and asserts the
    advertised contract: actionable one-line errors, exit 2, no traceback."""
    import subprocess
    import tempfile

    good = {
        "trials": [
            {
                "ok": True,
                "params": [["case", "ref"]],
                "metrics": [["epochs_per_sec", 100.0]],
            }
        ]
    }

    def run(baseline_path, current_path):
        return subprocess.run(
            [sys.executable, os.path.abspath(__file__),
             "--baseline", baseline_path, "--current", current_path],
            capture_output=True, text=True,
        )

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        good_path = os.path.join(tmp, "good.json")
        with open(good_path, "w") as fh:
            json.dump(good, fh)
        garbage_path = os.path.join(tmp, "garbage.json")
        with open(garbage_path, "w") as fh:
            fh.write("{not json")
        missing_path = os.path.join(tmp, "does-not-exist.json")

        cases = [
            ("missing baseline", run(missing_path, good_path), 2),
            ("garbage baseline", run(garbage_path, good_path), 2),
            ("missing current", run(good_path, missing_path), 2),
            ("identical runs", run(good_path, good_path), 0),
        ]
        for name, proc, want in cases:
            if proc.returncode != want:
                failures.append(f"{name}: exit {proc.returncode}, want {want}")
            if "Traceback" in proc.stderr:
                failures.append(f"{name}: stderr shows a Python traceback")
            if want == 2 and not proc.stderr.startswith("error:"):
                failures.append(f"{name}: stderr does not start with 'error:'")

    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}", file=sys.stderr)
        return 1
    print("self-test ok: error paths exit 2 with one-line errors, no traceback")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline/BENCH_E16_throughput.json")
    parser.add_argument("--current", default=None)
    parser.add_argument(
        "--metric",
        default="epochs_per_sec",
        help="per-trial metric to gate on (default epochs_per_sec; E17 uses coord_qps)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("KSPOT_E16_TOLERANCE", "0.25")),
        help="maximum allowed fractional drop of the gated metric (default 0.25)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="exercise the error paths (missing/garbage baseline) and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.current is None:
        parser.error("--current is required (unless --self-test)")

    try:
        baseline, baseline_metrics = load_points(args.baseline, args.metric)
        current, current_metrics = load_points(args.current, args.metric)
    except BenchFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not baseline:
        print(f"error: no usable trials in baseline {args.baseline}", file=sys.stderr)
        return 2
    if not current:
        print(f"error: no usable trials in {args.current}", file=sys.stderr)
        return 2

    failures = []
    missing = []
    compared = 0
    for key, base_eps in sorted(baseline.items()):
        if key not in current:
            missing.append(key)
            continue
        compared += 1
        cur_eps = current[key]
        ratio = cur_eps / base_eps if base_eps > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failures.append((key, base_eps, cur_eps, ratio))
        print(
            f"{dict(key)}: baseline {base_eps:.1f} {args.metric}, "
            f"current {cur_eps:.1f} ({ratio:.2f}x) {status}"
        )
        print_metric_deltas(baseline_metrics.get(key, {}), current_metrics.get(key, {}),
                            args.metric)

    if missing:
        print(
            f"error: {len(missing)} baseline sweep point(s) missing from the "
            f"current run (sweep changed? refresh {args.baseline}):",
            file=sys.stderr,
        )
        for key in missing:
            print(f"  {dict(key)}", file=sys.stderr)
        return 2
    if compared == 0:
        print("error: no comparable sweep points; gate would be vacuous", file=sys.stderr)
        return 2
    if failures:
        print(
            f"\n{len(failures)} point(s) regressed by more than "
            f"{args.tolerance:.0%} {args.metric}:",
            file=sys.stderr,
        )
        for key, base_eps, cur_eps, ratio in failures:
            print(
                f"  {dict(key)}: {base_eps:.1f} -> {cur_eps:.1f} eps ({ratio:.2f}x)",
                file=sys.stderr,
            )
        return 1
    print(f"\nno {args.metric} regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
