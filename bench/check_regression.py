#!/usr/bin/env python3
"""Gate on wall-clock regressions of the perf scenarios.

Compares a freshly produced BENCH_<scenario>.json against its committed
baseline and fails when any sweep point's gated metric dropped by more than
the tolerance (default 25%; override with --tolerance, or with the
KSPOT_E16_TOLERANCE environment variable that seeds --tolerance's default —
the CI E17 gate passes --tolerance explicitly).

Gated scenarios:
  E16 throughput         metric epochs_per_sec (the default)
  E17 server_throughput  metric coord_qps
  E18 fanout_throughput  metric deliveries_per_sec

Only the gated metric can fail the build, but every numeric metric the two
runs share is printed per sweep row (baseline -> current, ratio) on pass as
well as fail, so CI logs carry the whole perf trajectory.

The baselines are machine-dependent: refresh them (run the scenario with
--quick --threads 1 and copy the JSON) whenever CI hardware changes, and
always alongside intentional perf-trade commits.

Usage:
  python3 bench/check_regression.py --current bench-json-e16/BENCH_throughput.json
  python3 bench/check_regression.py --metric coord_qps \
      --baseline bench/baseline/BENCH_E17_server_throughput.json \
      --current bench-json-e17/BENCH_server_throughput.json
"""

import argparse
import json
import os
import sys


def load_points(path, metric):
    """Returns ({(param tuple): gated metric value},
    {(param tuple): {name: value}}) for every ok trial."""
    with open(path) as fh:
        doc = json.load(fh)
    points = {}
    all_metrics = {}
    for trial in doc.get("trials", []):
        if not trial.get("ok", False):
            continue
        key = tuple(sorted((k, str(v)) for k, v in dict(trial["params"]).items()))
        metrics = dict(trial["metrics"])
        all_metrics[key] = {
            name: float(value)
            for name, value in metrics.items()
            if isinstance(value, (int, float))
        }
        if metric in metrics:
            points[key] = float(metrics[metric])
    return points, all_metrics


def print_metric_deltas(base_metrics, cur_metrics, gated_metric):
    """One indented line per non-gated metric both runs share: the perf
    trajectory CI logs show on pass as well as fail."""
    for name in sorted(set(base_metrics) & set(cur_metrics)):
        if name == gated_metric:
            continue
        base, cur = base_metrics[name], cur_metrics[name]
        ratio = f"{cur / base:.2f}x" if base != 0 else "n/a"
        print(f"    {name}: baseline {base:.3f} -> current {cur:.3f} ({ratio})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline/BENCH_E16_throughput.json")
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--metric",
        default="epochs_per_sec",
        help="per-trial metric to gate on (default epochs_per_sec; E17 uses coord_qps)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("KSPOT_E16_TOLERANCE", "0.25")),
        help="maximum allowed fractional drop of the gated metric (default 0.25)",
    )
    args = parser.parse_args()

    baseline, baseline_metrics = load_points(args.baseline, args.metric)
    current, current_metrics = load_points(args.current, args.metric)
    if not baseline:
        print(f"error: no usable trials in baseline {args.baseline}", file=sys.stderr)
        return 2
    if not current:
        print(f"error: no usable trials in {args.current}", file=sys.stderr)
        return 2

    failures = []
    missing = []
    compared = 0
    for key, base_eps in sorted(baseline.items()):
        if key not in current:
            missing.append(key)
            continue
        compared += 1
        cur_eps = current[key]
        ratio = cur_eps / base_eps if base_eps > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failures.append((key, base_eps, cur_eps, ratio))
        print(
            f"{dict(key)}: baseline {base_eps:.1f} {args.metric}, "
            f"current {cur_eps:.1f} ({ratio:.2f}x) {status}"
        )
        print_metric_deltas(baseline_metrics.get(key, {}), current_metrics.get(key, {}),
                            args.metric)

    if missing:
        print(
            f"error: {len(missing)} baseline sweep point(s) missing from the "
            f"current run (sweep changed? refresh {args.baseline}):",
            file=sys.stderr,
        )
        for key in missing:
            print(f"  {dict(key)}", file=sys.stderr)
        return 2
    if compared == 0:
        print("error: no comparable sweep points; gate would be vacuous", file=sys.stderr)
        return 2
    if failures:
        print(
            f"\n{len(failures)} point(s) regressed by more than "
            f"{args.tolerance:.0%} {args.metric}:",
            file=sys.stderr,
        )
        for key, base_eps, cur_eps, ratio in failures:
            print(
                f"  {dict(key)}: {base_eps:.1f} -> {cur_eps:.1f} eps ({ratio:.2f}x)",
                file=sys.stderr,
            )
        return 1
    print(f"\nno {args.metric} regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
