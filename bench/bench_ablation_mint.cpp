/// E12 — MINT design ablations (the choices DESIGN.md section 3 calls out):
/// gamma/threshold suppression, closure pruning at inner nodes, delta-
/// encoded view updates, and the tau hysteresis margin. Each configuration
/// switches one mechanism off against the full configuration; answers stay
/// exact in every configuration (verified against the oracle during the
/// run).
#include "bench_util.hpp"
#include "scenarios.hpp"

namespace kspot::bench {

namespace {

/// One MINT-ablation trial on the shared clustered deployment; checks
/// exactness against the oracle while accumulating traffic.
runner::MetricList RunMintConfig(size_t nodes, size_t rooms, size_t epochs, uint64_t seed,
                                 core::MintViews::Options options, bool cluster_tree) {
  core::QuerySpec spec = RoomAvgSpec(3);

  sim::TopologyOptions topt;
  topt.num_nodes = nodes;
  topt.num_rooms = rooms;
  util::Rng topo_rng(seed);
  sim::Topology topology = sim::MakeClusteredRooms(topt, topo_rng);
  util::Rng tree_rng(seed ^ 0x5151);
  sim::RoutingTree tree = cluster_tree ? sim::RoutingTree::BuildClusterAware(topology, tree_rng)
                                       : sim::RoutingTree::BuildFirstHeard(topology, tree_rng);
  sim::Network net(&topology, &tree, {}, util::Rng(seed ^ 0xBEEF));

  std::vector<sim::GroupId> rooms_of;
  for (sim::NodeId id = 0; id < topology.num_nodes(); ++id) {
    rooms_of.push_back(topology.room(id));
  }
  data::RoomCorrelatedGenerator gen(rooms_of, data::Modality::kSound, 0.5, 0.5,
                                    util::Rng(seed), 0.0, 1.0);
  data::RoomCorrelatedGenerator oracle_gen(rooms_of, data::Modality::kSound, 0.5, 0.5,
                                           util::Rng(seed), 0.0, 1.0);
  core::Oracle oracle(&topology, &oracle_gen, spec);

  core::MintViews mint(&net, &gen, spec, options);
  bool exact = true;
  for (size_t e = 0; e < epochs; ++e) {
    exact &= mint.RunEpoch(static_cast<sim::Epoch>(e))
                 .Matches(oracle.TopK(static_cast<sim::Epoch>(e)));
  }
  return {{"msgs_per_epoch", PerEpoch(net.total().messages, epochs)},
          {"bytes_per_epoch", PerEpoch(net.total().payload_bytes, epochs)},
          {"beacons", static_cast<double>(mint.beacon_count())},
          {"repairs", static_cast<double>(mint.repair_count())},
          {"exact", exact ? 1.0 : 0.0}};
}

}  // namespace

void RegisterAblationMint(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "ablation_mint";
  s.id = "E12";
  s.title = "MINT ablations (n=100, 16 rooms, K=3, 60 epochs, clustered)";
  s.notes =
      "Each row switches one mechanism off against the full configuration; the TAG\n"
      "row is the no-suppression reference.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t nodes = 100;
    const size_t rooms = 16;
    const size_t epochs = opt.quick ? 15 : 60;
    const uint64_t seed = opt.seed != 0 ? opt.seed : 37;

    struct Config {
      const char* label;
      core::MintViews::Options options;
      bool cluster_tree;
    };
    core::MintViews::Options full;
    core::MintViews::Options no_gamma = full;
    no_gamma.gamma_suppression = false;
    core::MintViews::Options no_closure = full;
    no_closure.closure_pruning = false;
    core::MintViews::Options no_delta = full;
    no_delta.delta_updates = false;
    core::MintViews::Options tight_margin = full;
    tight_margin.tau_margin_fraction = 0.001;
    core::MintViews::Options wide_margin = full;
    wide_margin.tau_margin_fraction = 0.10;

    std::vector<Config> configs = {{"full MINT", full, true},
                                   {"- gamma/threshold pruning", no_gamma, true},
                                   {"- closure pruning", no_closure, true},
                                   {"- delta updates", no_delta, true},
                                   {"tau margin 0.1%", tight_margin, true},
                                   {"tau margin 10%", wide_margin, true},
                                   {"- cluster-aware tree", full, false}};
    if (opt.quick) configs.resize(3);

    std::vector<runner::Trial> trials;
    for (const Config& config : configs) {
      runner::Trial t;
      t.spec.algorithm = "MINT";
      t.spec.seed = seed;
      t.spec.params = {{"configuration", config.label}};
      core::MintViews::Options options = config.options;
      bool cluster_tree = config.cluster_tree;
      t.run = [=]() -> runner::MetricList {
        return RunMintConfig(nodes, rooms, epochs, seed, options, cluster_tree);
      };
      trials.push_back(std::move(t));
    }

    // TAG on the same deployment for reference.
    runner::Trial tag;
    tag.spec.algorithm = "TAG";
    tag.spec.seed = seed;
    tag.spec.params = {{"configuration", "TAG reference"}};
    tag.run = [=]() -> runner::MetricList {
      core::QuerySpec spec = RoomAvgSpec(3);
      auto bed = Bed::Clustered(nodes, rooms, seed);
      auto gen = bed.RoomData(seed);
      core::TagTopK algo(bed.net.get(), gen.get(), spec);
      SnapshotRun run = RunSnapshot(algo, *bed.net, nullptr, epochs);
      return {{"msgs_per_epoch", run.MsgsPerEpoch()},
              {"bytes_per_epoch", run.BytesPerEpoch()},
              {"beacons", 0.0},
              {"repairs", 0.0},
              {"exact", 1.0}};
    };
    trials.push_back(std::move(tag));
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
