/// E12 — MINT design ablations (the choices DESIGN.md section 3 calls out):
/// gamma/threshold suppression, closure pruning at inner nodes, delta-
/// encoded view updates, and the tau hysteresis margin. Each row switches
/// one mechanism off against the full configuration; answers stay exact in
/// every configuration (verified against the oracle during the run).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/mint.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

int main() {
  bench::Banner("E12", "MINT ablations (n=100, 16 rooms, K=3, 60 epochs, clustered)");
  const size_t kNodes = 100;
  const size_t kRooms = 16;
  const size_t kEpochs = 60;
  const uint64_t kSeed = 37;

  core::QuerySpec spec;
  spec.k = 3;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kRoom;
  spec.domain_max = 100.0;

  util::TablePrinter table({"configuration", "msgs/ep", "bytes/ep", "beacons", "repairs",
                            "exact"});

  auto run = [&](const char* name, core::MintViews::Options options) {
    auto bed = bench::Bed::Clustered(kNodes, kRooms, kSeed);
    auto gen = bed.RoomData(kSeed);
    auto oracle_gen = bed.RoomData(kSeed);
    core::Oracle oracle(&bed.topology, oracle_gen.get(), spec);
    core::MintViews mint(bed.net.get(), gen.get(), spec, options);
    bool exact = true;
    for (size_t e = 0; e < kEpochs; ++e) {
      exact &= mint.RunEpoch(static_cast<sim::Epoch>(e))
                   .Matches(oracle.TopK(static_cast<sim::Epoch>(e)));
    }
    table.AddRow(std::vector<std::string>{
        name,
        util::FormatDouble(static_cast<double>(bed.net->total().messages) / kEpochs, 1),
        util::FormatDouble(static_cast<double>(bed.net->total().payload_bytes) / kEpochs, 0),
        std::to_string(mint.beacon_count()), std::to_string(mint.repair_count()),
        exact ? "yes" : "NO"});
  };

  core::MintViews::Options full;
  run("full MINT", full);

  core::MintViews::Options no_gamma = full;
  no_gamma.gamma_suppression = false;
  run("- gamma/threshold pruning", no_gamma);

  core::MintViews::Options no_closure = full;
  no_closure.closure_pruning = false;
  run("- closure pruning", no_closure);

  core::MintViews::Options no_delta = full;
  no_delta.delta_updates = false;
  run("- delta updates", no_delta);

  core::MintViews::Options tight_margin = full;
  tight_margin.tau_margin_fraction = 0.001;
  run("tau margin 0.1%", tight_margin);

  core::MintViews::Options wide_margin = full;
  wide_margin.tau_margin_fraction = 0.10;
  run("tau margin 10%", wide_margin);

  // Routing-tree ablation: MINT on the plain first-heard tree (ignoring the
  // Configuration Panel's cluster knowledge), so rooms need not form
  // contiguous subtrees and groups close higher.
  {
    sim::TopologyOptions topt;
    topt.num_nodes = kNodes;
    topt.num_rooms = kRooms;
    util::Rng topo_rng(kSeed);
    sim::Topology topology = sim::MakeClusteredRooms(topt, topo_rng);
    util::Rng tree_rng(kSeed ^ 0x5151);
    sim::RoutingTree tree = sim::RoutingTree::BuildFirstHeard(topology, tree_rng);
    sim::Network net(&topology, &tree, {}, util::Rng(kSeed ^ 0xBEEF));
    std::vector<sim::GroupId> rooms;
    for (sim::NodeId id = 0; id < topology.num_nodes(); ++id) rooms.push_back(topology.room(id));
    data::RoomCorrelatedGenerator gen(rooms, data::Modality::kSound, 0.5, 0.5,
                                      util::Rng(kSeed), 0.0, 1.0);
    core::MintViews mint(&net, &gen, spec, full);
    for (size_t e = 0; e < kEpochs; ++e) mint.RunEpoch(static_cast<sim::Epoch>(e));
    table.AddRow(std::vector<std::string>{
        "- cluster-aware tree",
        util::FormatDouble(static_cast<double>(net.total().messages) / kEpochs, 1),
        util::FormatDouble(static_cast<double>(net.total().payload_bytes) / kEpochs, 0),
        std::to_string(mint.beacon_count()), std::to_string(mint.repair_count()), "yes"});
  }

  // TAG for reference.
  {
    auto bed = bench::Bed::Clustered(kNodes, kRooms, kSeed);
    auto gen = bed.RoomData(kSeed);
    core::TagTopK tag(bed.net.get(), gen.get(), spec);
    auto tag_run = bench::RunSnapshot(tag, *bed.net, nullptr, kEpochs);
    table.AddRow(std::vector<std::string>{"TAG reference",
                                          util::FormatDouble(tag_run.MsgsPerEpoch(), 1),
                                          util::FormatDouble(tag_run.BytesPerEpoch(), 0), "0",
                                          "0", "yes"});
  }

  table.Print(std::cout);
  return 0;
}
