/// E16 — wall-clock throughput of the simulation data plane.
///
/// Every other experiment reports protocol cost (messages, bytes, joules);
/// this one reports how fast the simulator itself executes — epochs per
/// second and per-epoch wall-time percentiles for the MINT data plane at
/// n = 200 / 1000 / 5000 nodes, with and without churn. It exists so that
/// perf work lands with a measured number: CI runs it quick, uploads the
/// JSON, and bench/check_regression.py fails the build when epochs/sec
/// regresses by more than the configured tolerance against the committed
/// baseline (bench/baseline/BENCH_E16_throughput.json).
///
/// Wall-clock metrics are inherently machine- and load-dependent; the
/// scenario is deliberately excluded from the bit-determinism checks, and
/// the regression gate should run it with --threads 1 so trials do not
/// contend with each other.
#include <chrono>

#include "bench_util.hpp"
#include "fault/churn_engine.hpp"
#include "scenarios.hpp"
#include "util/stats.hpp"

namespace kspot::bench {

namespace {

struct ThroughputConfig {
  size_t nodes = 1000;
  size_t rooms = 32;
  size_t epochs = 200;
  uint64_t seed = 161;
  bool churn = false;
  /// Shard lanes for the epoch waves (1 = serial; results are invariant,
  /// wall-clock is what changes — which is exactly what E16 measures).
  size_t shards = 1;
};

struct ThroughputStats {
  double epochs_per_sec = 0.0;
  /// Per-epoch wall-time distribution (util::Percentiles::Summary — the one
  /// quantile implementation bench code and obs histograms share).
  util::DistSummary wall_ms;
  double msgs_per_epoch = 0.0;
};

ThroughputStats RunThroughput(const ThroughputConfig& cfg) {
  using Clock = std::chrono::steady_clock;
  core::QuerySpec spec = RoomAvgSpec(3);
  auto bed = Bed::Grid(cfg.nodes, cfg.rooms, cfg.seed);
  bed.EnableSharding(cfg.shards);
  auto gen = bed.RoomData(cfg.seed);
  auto algorithm = MakeSnapshotAlgo(SnapshotAlgo::kMint, bed.net.get(), gen.get(), spec);

  std::unique_ptr<fault::ChurnEngine> churn;
  if (cfg.churn) {
    fault::FaultPlanOptions fopt;
    fopt.horizon = static_cast<sim::Epoch>(cfg.epochs);
    fopt.crash_prob = 0.01;
    fopt.mean_downtime = 10;
    fault::FaultPlan plan = fault::FaultPlan::Generate(bed.topology, fopt, cfg.seed ^ 0xFA11);
    churn = std::make_unique<fault::ChurnEngine>(bed.net.get(), &bed.tree, std::move(plan));
  }

  util::Percentiles epoch_ms;
  Clock::time_point run_start = Clock::now();
  for (size_t e = 0; e < cfg.epochs; ++e) {
    Clock::time_point epoch_start = Clock::now();
    auto epoch = static_cast<sim::Epoch>(e);
    if (churn) {
      fault::ChurnReport report = churn->BeginEpoch(epoch);
      if (report.topology_changed) algorithm->OnTopologyChanged(report.delta);
    }
    algorithm->RunEpoch(epoch);
    epoch_ms.Add(std::chrono::duration<double, std::milli>(Clock::now() - epoch_start).count());
  }
  double total_s = std::chrono::duration<double>(Clock::now() - run_start).count();

  ThroughputStats stats;
  stats.epochs_per_sec =
      total_s > 0.0 ? static_cast<double>(cfg.epochs) / total_s : 0.0;
  stats.wall_ms = epoch_ms.Summary();
  stats.msgs_per_epoch = PerEpoch(bed.net->total().messages, cfg.epochs);
  return stats;
}

}  // namespace

void RegisterThroughput(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "throughput";
  s.id = "E16";
  s.title = "simulator wall-clock throughput (MINT data plane, with/without churn)";
  s.notes =
      "epochs_per_sec is wall-clock simulator speed, not protocol cost; run with\n"
      "--threads 1 when comparing numbers (parallel trials contend for cores).\n"
      "bench/check_regression.py gates CI on this scenario's JSON.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    struct Point {
      size_t nodes;
      size_t rooms;
      size_t epochs;
      size_t quick_epochs;
    };
    const std::vector<Point> points = {
        {200, 16, 600, 120}, {1000, 32, 200, 60}, {5000, 64, 40, 10}};
    std::vector<runner::Trial> trials;
    auto run_metrics = [](const ThroughputConfig& cfg) -> runner::MetricList {
      ThroughputStats st = RunThroughput(cfg);
      return {{"epochs_per_sec", st.epochs_per_sec},
              {"wall_ms_p50", st.wall_ms.p50},
              {"wall_ms_p95", st.wall_ms.p95},
              {"wall_ms_p99", st.wall_ms.p99},
              {"msgs_per_epoch", st.msgs_per_epoch}};
    };
    for (const Point& point : points) {
      for (bool churn : {false, true}) {
        runner::Trial t;
        t.spec.algorithm = "MINT";
        t.spec.seed = opt.seed != 0 ? opt.seed : 161;
        t.spec.params = {{"n", std::to_string(point.nodes)},
                         {"churn", churn ? "on" : "off"}};
        ThroughputConfig cfg;
        cfg.nodes = point.nodes;
        cfg.rooms = point.rooms;
        cfg.epochs = opt.quick ? point.quick_epochs : point.epochs;
        cfg.seed = t.spec.seed;
        cfg.churn = churn;
        cfg.shards = opt.shards;
        t.run = [cfg, run_metrics]() -> runner::MetricList { return run_metrics(cfg); };
        trials.push_back(std::move(t));
      }
    }
    // Sharded large-extent rows: the parallel-epoch execution measured at
    // scales the serial path cannot reach in sensible wall-clock. These rows
    // carry an explicit "shards" parameter (the serial rows above stay
    // param-compatible with their historical baselines) and fix their shard
    // count regardless of --shards, so the serial/sharded comparison is
    // always present in one sweep.
    struct ShardPoint {
      size_t nodes;
      size_t rooms;
      size_t epochs;
      size_t quick_epochs;
      size_t shards;
    };
    const std::vector<ShardPoint> shard_points = {
        {20000, 64, 20, 5, 1}, {20000, 64, 20, 5, 8}, {100000, 128, 4, 2, 8}};
    for (const ShardPoint& point : shard_points) {
      runner::Trial t;
      t.spec.algorithm = "MINT";
      t.spec.seed = opt.seed != 0 ? opt.seed : 161;
      t.spec.params = {{"n", std::to_string(point.nodes)},
                       {"churn", "off"},
                       {"shards", std::to_string(point.shards)}};
      ThroughputConfig cfg;
      cfg.nodes = point.nodes;
      cfg.rooms = point.rooms;
      cfg.epochs = opt.quick ? point.quick_epochs : point.epochs;
      cfg.seed = t.spec.seed;
      cfg.churn = false;
      cfg.shards = point.shards;
      t.run = [cfg, run_metrics]() -> runner::MetricList { return run_metrics(cfg); };
      trials.push_back(std::move(t));
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
