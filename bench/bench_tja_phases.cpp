/// E7 — TJA anatomy: per-phase byte breakdown (LB / HJ down / HJ up), the
/// union size o = |Lsink| as K grows, and the Bloom-filter compression
/// ablation of the Lsink dissemination (the optimization of the original
/// TJA paper). False positives cost extra HJ bytes but never correctness.
#include "bench_util.hpp"
#include "core/tja.hpp"
#include "scenarios.hpp"

namespace kspot::bench {

void RegisterTjaPhases(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "tja_phases";
  s.id = "E7";
  s.title = "TJA phase breakdown and Bloom ablation (n=100, W=256)";
  s.notes =
      "The Bloom variant compresses the downstream Lsink dissemination inside\n"
      "the HJ phase; whether it wins depends on |Lsink| vs the filter size.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t nodes = 100;
    const size_t window = opt.quick ? 64 : 256;
    const uint64_t seed = opt.seed != 0 ? opt.seed : 19;
    const std::vector<int> ks = opt.quick ? std::vector<int>{1, 4}
                                          : std::vector<int>{1, 4, 16};

    std::vector<runner::Trial> trials;
    for (int k : ks) {
      for (bool bloom : {false, true}) {
        runner::Trial t;
        t.spec.algorithm = "TJA";
        t.spec.seed = seed;
        t.spec.params = {{"k", std::to_string(k)}, {"bloom", bloom ? "yes" : "no"}};
        t.run = [=]() -> runner::MetricList {
          auto bed = Bed::Grid(nodes, 4, seed);
          auto history = MakeEventHistory(bed, window, seed);
          core::HistoricOptions hopt;
          hopt.k = k;
          hopt.use_bloom = bloom;
          hopt.bloom_fpr = 0.05;
          core::Tja tja(bed.net.get(), &history, hopt);
          auto result = tja.Run();
          return {{"lb_bytes", static_cast<double>(bed.net->PhaseTotal("tja.lb").payload_bytes)},
                  {"hj_bytes", static_cast<double>(bed.net->PhaseTotal("tja.hj").payload_bytes)},
                  {"total_bytes", static_cast<double>(bed.net->total().payload_bytes)},
                  {"lsink_size", static_cast<double>(result.lsink_size)},
                  {"rounds", static_cast<double>(result.rounds)}};
        };
        trials.push_back(std::move(t));
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
