/// E7 — TJA anatomy: per-phase byte breakdown (LB / HJ down / HJ up), the
/// union size o = |Lsink| as K grows, and the Bloom-filter compression
/// ablation of the Lsink dissemination (the optimization of the original
/// TJA paper). False positives cost extra HJ bytes but never correctness.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/tja.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

namespace {

core::GeneratorHistory MakeHistory(const bench::Bed& bed, size_t window, uint64_t seed) {
  return bench::MakeEventHistory(bed, window, seed);
}

}  // namespace

int main() {
  bench::Banner("E7", "TJA phase breakdown and Bloom ablation (n=100, W=256)");
  const uint64_t kSeed = 19;
  const size_t kWindow = 256;

  util::TablePrinter table({"K", "bloom", "LB bytes", "HJ bytes", "total", "|Lsink|",
                            "rounds"});
  for (int k : {1, 4, 16}) {
    for (bool bloom : {false, true}) {
      auto bed = bench::Bed::Grid(100, 4, kSeed);
      auto history = MakeHistory(bed, kWindow, kSeed);
      core::HistoricOptions opt;
      opt.k = k;
      opt.use_bloom = bloom;
      opt.bloom_fpr = 0.05;
      core::Tja tja(bed.net.get(), &history, opt);
      auto result = tja.Run();
      table.AddRow(std::vector<std::string>{
          std::to_string(k), bloom ? "yes" : "no",
          std::to_string(bed.net->PhaseTotal("tja.lb").payload_bytes),
          std::to_string(bed.net->PhaseTotal("tja.hj").payload_bytes),
          std::to_string(bed.net->total().payload_bytes), std::to_string(result.lsink_size),
          std::to_string(result.rounds)});
    }
  }
  table.Print(std::cout);
  std::printf("\nThe Bloom variant compresses the downstream Lsink dissemination inside\n"
              "the HJ phase; whether it wins depends on |Lsink| vs the filter size.\n");
  return 0;
}
