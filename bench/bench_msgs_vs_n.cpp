/// E4 — the System-Panel savings claim, swept over network size: per-epoch
/// cost of TAG vs MINT as the deployment grows (K=5, rooms scale with n).
/// Expected shape: both grow linearly in n, with MINT's bytes growing much
/// slower because only candidate groups travel the upper tree.
#include "bench_util.hpp"
#include "scenarios.hpp"

namespace kspot::bench {

void RegisterMsgsVsN(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "msgs_vs_n";
  s.id = "E4";
  s.title = "cost vs network size (K=5, 50 epochs, rooms ~ n/8)";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t epochs = opt.quick ? 10 : 50;
    const uint64_t seed = opt.seed != 0 ? opt.seed : 11;
    const std::vector<size_t> sizes = opt.quick ? std::vector<size_t>{25, 100}
                                                : std::vector<size_t>{25, 49, 100, 196, 400};

    std::vector<runner::Trial> trials;
    for (size_t n : sizes) {
      size_t rooms = std::max<size_t>(4, n / 8);
      for (SnapshotAlgo algo : {SnapshotAlgo::kTag, SnapshotAlgo::kMint}) {
        runner::Trial t;
        t.spec.algorithm = AlgoName(algo);
        t.spec.seed = seed;
        t.spec.params = {{"n", std::to_string(n)}, {"rooms", std::to_string(rooms)}};
        t.run = [=]() -> runner::MetricList {
          core::QuerySpec spec = RoomAvgSpec(5);
          auto bed = Bed::Grid(n, rooms, seed);
          auto gen = bed.RoomData(seed);
          auto algorithm = MakeSnapshotAlgo(algo, bed.net.get(), gen.get(), spec);
          SnapshotRun run = RunSnapshot(*algorithm, *bed.net, nullptr, epochs);
          return SnapshotMetrics(run);
        };
        trials.push_back(std::move(t));
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
