/// E4 — the System-Panel savings claim, swept over network size: per-epoch
/// cost of TAG vs MINT as the deployment grows (K=5, rooms scale with n).
/// Expected shape: both grow linearly in n, with MINT's bytes growing much
/// slower because only candidate groups travel the upper tree.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/mint.hpp"
#include "core/tag.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

int main() {
  bench::Banner("E4", "cost vs network size (K=5, 50 epochs, rooms ~ n/8)");
  const size_t kEpochs = 50;
  const uint64_t kSeed = 11;

  util::TablePrinter table({"n", "rooms", "TAG msgs/ep", "MINT msgs/ep", "TAG bytes/ep",
                            "MINT bytes/ep", "byte savings", "TAG mJ/ep", "MINT mJ/ep"});
  for (size_t n : {25, 49, 100, 196, 400}) {
    size_t rooms = std::max<size_t>(4, n / 8);
    core::QuerySpec spec;
    spec.k = 5;
    spec.agg = agg::AggKind::kAvg;
    spec.grouping = core::Grouping::kRoom;
    spec.domain_max = 100.0;

    auto tag_bed = bench::Bed::Grid(n, rooms, kSeed);
    auto tag_gen = tag_bed.RoomData(kSeed);
    core::TagTopK tag(tag_bed.net.get(), tag_gen.get(), spec);
    auto tag_run = bench::RunSnapshot(tag, *tag_bed.net, nullptr, kEpochs);

    auto mint_bed = bench::Bed::Grid(n, rooms, kSeed);
    auto mint_gen = mint_bed.RoomData(kSeed);
    core::MintViews mint(mint_bed.net.get(), mint_gen.get(), spec);
    auto mint_run = bench::RunSnapshot(mint, *mint_bed.net, nullptr, kEpochs);

    double savings = 100.0 * (1.0 - mint_run.BytesPerEpoch() / tag_run.BytesPerEpoch());
    table.AddRow(std::vector<std::string>{
        std::to_string(n), std::to_string(rooms),
        util::FormatDouble(tag_run.MsgsPerEpoch(), 1),
        util::FormatDouble(mint_run.MsgsPerEpoch(), 1),
        util::FormatDouble(tag_run.BytesPerEpoch(), 0),
        util::FormatDouble(mint_run.BytesPerEpoch(), 0),
        util::FormatDouble(savings, 1) + "%",
        util::FormatDouble(tag_run.EnergyPerEpochMilliJ(), 2),
        util::FormatDouble(mint_run.EnergyPerEpochMilliJ(), 2)});
  }
  table.Print(std::cout);
  return 0;
}
