/// E17 — multi-query server throughput on one shared deployment.
///
/// The QueryCoordinator admits N concurrent queries against a single
/// long-lived deployment (one tree, one battery ledger, one per-epoch data
/// wave) and piggybacks compatible snapshot queries on one converge-cast.
/// This scenario measures what that buys over the one-query-at-a-time
/// KSpotServer::Execute serving model: aggregate queries/sec (wall clock,
/// one "query" = one admitted query served for the full run) and per-query
/// radio traffic, at 1/4/16/64 concurrent queries, churn on/off, for a
/// fleet of identical snapshot dashboards ("snapshot") and a mixed
/// snapshot+select+historic workload ("mixed").
///
/// Wall-clock metrics are machine-dependent: the scenario is excluded from
/// bit-determinism checks, CI runs it quick with --threads 1, and
/// bench/check_regression.py gates coord_qps against the committed baseline
/// (bench/baseline/BENCH_E17_server_throughput.json) the same way E16 gates
/// epochs/sec.
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kspot/coordinator.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"
#include "scenarios.hpp"

namespace kspot::bench {

namespace {

struct ServerThroughputConfig {
  size_t queries = 16;
  size_t epochs = 120;
  uint64_t seed = 171;
  bool churn = false;
  bool mixed = false;
};

/// The admitted workload. "snapshot" is N users watching the same top-3
/// dashboard (the pure piggyback case); "mixed" cycles snapshot variants,
/// an acquisitional SELECT, a grouped select and a historic TJA audit, so
/// both shared and distinct operators are exercised.
std::vector<std::string> BuildQueryMix(const ServerThroughputConfig& cfg) {
  static const std::vector<std::string> kMixedCycle = {
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
      "SELECT nodeid, sound FROM sensors WHERE sound > 60",
      "SELECT TOP 1 roomid, MAX(sound) FROM sensors GROUP BY roomid",
      "SELECT TOP 3 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 24",
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
      "SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid",
  };
  std::vector<std::string> queries;
  queries.reserve(cfg.queries);
  for (size_t i = 0; i < cfg.queries; ++i) {
    if (cfg.mixed) {
      queries.push_back(kMixedCycle[i % kMixedCycle.size()]);
    } else {
      queries.push_back(kMixedCycle[0]);
    }
  }
  return queries;
}

runner::MetricList RunServerThroughput(const ServerThroughputConfig& cfg) {
  using Clock = std::chrono::steady_clock;
  system::Scenario floor = system::Scenario::ConferenceFloor(8, 4, cfg.seed);
  std::vector<std::string> queries = BuildQueryMix(cfg);

  fault::FaultPlanOptions churn_opt;
  churn_opt.crash_prob = 0.01;
  churn_opt.mean_downtime = 10;

  // Piggybacking can collapse a 64-query run to one operator, so a single
  // Run may be sub-millisecond — unmeasurable for any wall-clock gate.
  // Repeat the (pure, identical) runs until the timed region is long enough
  // to mean something; qps divides by the repetitions.
  constexpr double kMinTimedSeconds = 0.025;
  auto timed_reps = [](auto&& fn) {
    Clock::time_point start = Clock::now();
    size_t reps = 0;
    double elapsed = 0.0;
    do {
      fn();
      ++reps;
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < kMinTimedSeconds);
    return std::pair<size_t, double>(reps, elapsed);
  };

  // Shared data plane: one coordinator run serves every query.
  system::QueryCoordinator::Options copt;
  copt.epochs = cfg.epochs;
  copt.seed = cfg.seed;
  copt.enable_churn = cfg.churn;
  copt.churn = churn_opt;
  system::QueryCoordinator coordinator(floor, copt);
  for (const std::string& sql : queries) {
    auto admitted = coordinator.Admit(sql);
    if (!admitted.ok()) std::abort();  // catalogue bug: queries must admit
  }
  util::StatusOr<system::CoordinatorReport> report_or = coordinator.Run();  // warm-up
  auto [coord_reps, coord_s] = timed_reps([&] { report_or = coordinator.Run(); });
  if (!report_or.ok()) std::abort();
  const system::CoordinatorReport& report = report_or.value();

  // Sequential serving: the same queries, one KSpotServer::Execute each
  // (no shadow baseline — this measures serving cost, not savings).
  system::KSpotServer::Options sopt;
  sopt.epochs = cfg.epochs;
  sopt.seed = cfg.seed;
  sopt.enable_churn = cfg.churn;
  sopt.churn = churn_opt;
  sopt.run_baseline = false;
  system::KSpotServer server(floor, sopt);
  uint64_t seq_msgs = 0;
  if (!server.Execute(queries.front()).ok()) std::abort();  // warm-up
  auto [seq_reps, seq_s] = timed_reps([&] {
    seq_msgs = 0;
    for (const std::string& sql : queries) {
      auto outcome = server.Execute(sql);
      if (!outcome.ok()) std::abort();
      seq_msgs += outcome.value().cost.messages;
    }
  });

  double n = static_cast<double>(cfg.queries);
  double coord_qps = coord_s > 0.0 ? n * static_cast<double>(coord_reps) / coord_s : 0.0;
  double seq_qps = seq_s > 0.0 ? n * static_cast<double>(seq_reps) / seq_s : 0.0;
  return {{"coord_qps", coord_qps},
          {"seq_qps", seq_qps},
          {"speedup", seq_qps > 0.0 ? coord_qps / seq_qps : 0.0},
          {"operators", static_cast<double>(report.operators)},
          {"coord_msgs_per_query", static_cast<double>(report.total.messages) / n},
          {"seq_msgs_per_query", static_cast<double>(seq_msgs) / n}};
}

}  // namespace

void RegisterServerThroughput(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "server_throughput";
  s.id = "E17";
  s.title = "multi-query server throughput: shared data plane vs sequential Execute";
  s.notes =
      "coord_qps/seq_qps are wall-clock; run with --threads 1 when comparing\n"
      "numbers. speedup = coord_qps / seq_qps; operators counts distinct\n"
      "operator instances after snapshot piggybacking.\n"
      "Caveat for mix=mixed churn=on: KSpotServer::Execute applies churn only\n"
      "to snapshot queries (SELECT/TJA legs run on a pristine tree), while\n"
      "the coordinator's shared tree churns for every query class — the\n"
      "sequential leg is today's serving model, not an identical fault\n"
      "process. The snapshot rows compare identical processes.\n"
      "bench/check_regression.py gates CI on this scenario's coord_qps.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    std::vector<runner::Trial> trials;
    for (bool mixed : {false, true}) {
      for (bool churn : {false, true}) {
        for (size_t queries : {1u, 4u, 16u, 64u}) {
          runner::Trial t;
          t.spec.algorithm = "COORD";
          t.spec.seed = opt.seed != 0 ? opt.seed : 171;
          t.spec.params = {{"queries", std::to_string(queries)},
                           {"mix", mixed ? "mixed" : "snapshot"},
                           {"churn", churn ? "on" : "off"}};
          ServerThroughputConfig cfg;
          cfg.queries = queries;
          cfg.epochs = opt.quick ? 30 : 120;
          cfg.seed = t.spec.seed;
          cfg.churn = churn;
          cfg.mixed = mixed;
          t.run = [cfg]() { return RunServerThroughput(cfg); };
          trials.push_back(std::move(t));
        }
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
