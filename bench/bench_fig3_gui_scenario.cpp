/// E2 — reproduces the Figure-3 GUI scenario: a TOP-3 query over a 14-node
/// sensor network organized in 6 clusters, rendered through the Display
/// Panel (KSpot Bullets) with the System Panel's live savings — the full
/// demo loop of Section IV-B, in the terminal.
#include <cstdio>
#include <iostream>

#include "kspot/display_panel.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"

using namespace kspot;

int main() {
  std::printf("\n=== E2: Figure-3 GUI scenario — TOP-3 over 14 nodes in 6 clusters ===\n");

  // 6 clusters; 14 sensors total: distribute 2-3 per cluster like the GUI
  // screenshot. ConferenceFloor gives balanced rooms, so use 6 x 2 = 12 + 2
  // extra nodes appended to the first clusters.
  system::Scenario scenario = system::Scenario::ConferenceFloor(6, 2, 17);
  for (int extra = 0; extra < 2; ++extra) {
    system::Scenario::Node n = scenario.nodes[1 + extra];  // near an existing mote
    n.id = static_cast<sim::NodeId>(scenario.nodes.size());
    n.x += 1.5;
    n.y += 1.0;
    scenario.nodes.push_back(n);
  }

  system::KSpotServer::Options opt;
  opt.epochs = 30;
  opt.seed = 2009;
  system::KSpotServer server(scenario, opt);
  system::DisplayPanel panel(&server.scenario(), 64, 16);

  std::printf("\n%s", panel.RenderMap().c_str());

  std::string bullets;
  auto outcome = server.ExecuteStreaming(
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min",
      [&](const core::TopKResult& r, const system::SystemPanel&) {
        if (r.epoch % 10 == 0 || r.epoch + 1 == 30) {
          std::printf("%s", panel.RenderBullets(r).c_str());
        }
      });
  if (!outcome.ok()) {
    std::printf("query failed: %s\n", outcome.status().message().c_str());
    return 1;
  }
  std::printf("\n%s", outcome.value().panel.Render().c_str());
  std::printf("\nAlgorithm: %s; %zu epochs; savings vs TAG: %.1f%% messages, %.1f%% bytes, "
              "%.1f%% energy\n",
              outcome.value().algorithm.c_str(), outcome.value().per_epoch.size(),
              outcome.value().panel.MessageSavingsPercent(),
              outcome.value().panel.ByteSavingsPercent(),
              outcome.value().panel.EnergySavingsPercent());
  return 0;
}
