/// E2 — reproduces the Figure-3 GUI scenario: a TOP-3 query over a 14-node
/// sensor network organized in 6 clusters, executed through the KSpot
/// server with the System Panel's live savings accounting — the demo loop
/// of Section IV-B, reduced to its metrics.
#include <stdexcept>

#include "bench_util.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"
#include "scenarios.hpp"

namespace kspot::bench {

namespace {

/// The GUI deployment: 6 clusters, 14 sensors total (2 per cluster plus 2
/// extras near existing motes, like the screenshot).
system::Scenario MakeFig3Deployment(uint64_t seed) {
  system::Scenario scenario = system::Scenario::ConferenceFloor(6, 2, seed);
  for (int extra = 0; extra < 2; ++extra) {
    system::Scenario::Node n = scenario.nodes[1 + extra];
    n.id = static_cast<sim::NodeId>(scenario.nodes.size());
    n.x += 1.5;
    n.y += 1.0;
    scenario.nodes.push_back(n);
  }
  return scenario;
}

}  // namespace

void RegisterFig3GuiScenario(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "fig3_gui_scenario";
  s.id = "E2";
  s.title = "Figure-3 GUI scenario: TOP-3 over 14 nodes in 6 clusters";
  s.notes =
      "The full demo loop: parsed SQL in, MINT execution, System-Panel savings vs\n"
      "the TAG shadow run.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t epochs = opt.quick ? 10 : 30;
    const uint64_t seed = opt.seed != 0 ? opt.seed : 2009;
    const uint64_t floor_seed = 17;

    std::vector<runner::Trial> trials;
    runner::Trial t;
    t.spec.algorithm = "MINT";
    t.spec.seed = seed;
    t.run = [=]() -> runner::MetricList {
      system::Scenario scenario = MakeFig3Deployment(floor_seed);
      system::KSpotServer::Options server_opt;
      server_opt.epochs = epochs;
      server_opt.seed = seed;
      system::KSpotServer server(scenario, server_opt);
      auto outcome = server.Execute(
          "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid EPOCH DURATION 1 min");
      if (!outcome.ok()) {
        throw std::runtime_error("query failed: " + outcome.status().message());
      }
      const auto& result = outcome.value();
      return {{"epochs", static_cast<double>(result.per_epoch.size())},
              {"msg_savings_pct", result.panel.MessageSavingsPercent()},
              {"byte_savings_pct", result.panel.ByteSavingsPercent()},
              {"energy_savings_pct", result.panel.EnergySavingsPercent()}};
    };
    trials.push_back(std::move(t));
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
