/// E19 — reliability tradeoff: what the adaptive retry/backoff layer buys
/// (answer completeness, recall) and what it costs (radio energy, retries)
/// versus the same deployment with the layer off, swept over frame loss,
/// per-node retry budget and epoch deadline. Expected shape: at the
/// reference point (30% loss, ample budget, no deadline) completeness holds
/// >= 0.95 while the flat no-retry run visibly thins out; tight budgets and
/// deadlines trade completeness back for energy/latency. The reference row
/// carries the CI gate bits (slo_completeness_ok, overhead_ok).
#include "bench_util.hpp"
#include "scenarios.hpp"
#include "util/string_util.hpp"

namespace kspot::bench {

namespace {

/// One swept operating point of the reliability layer.
struct RelCase {
  double loss;           ///< i.i.d. per-frame loss.
  uint32_t budget;       ///< Per-node per-epoch retry budget (0 = unlimited).
  int deadline;          ///< Wave depth budget in slots (0 = no deadline).
  bool reference;        ///< The gated operating point (one per sweep).
};

/// Mean completeness the gate requires at the reference point.
constexpr double kCompletenessSlo = 0.95;
/// Reliability-on energy may cost at most this multiple of the flat run.
constexpr double kOverheadBound = 4.0;

}  // namespace

void RegisterReliabilityTradeoff(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "reliability_tradeoff";
  s.id = "E19";
  s.title = "completeness & energy vs loss x retry budget x deadline (n=49, TAG, K=3)";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t nodes = 49;
    const size_t rooms = 12;
    const size_t epochs = opt.quick ? 10 : 50;
    const uint64_t seed = opt.seed != 0 ? opt.seed : 31;

    const std::vector<RelCase> cases =
        opt.quick ? std::vector<RelCase>{{0.3, 64, 0, true}, {0.3, 64, 2, false}}
                  : std::vector<RelCase>{{0.1, 64, 0, false},
                                         {0.2, 64, 0, false},
                                         {0.3, 64, 0, true},
                                         {0.3, 1, 0, false},
                                         {0.3, 64, 2, false},
                                         {0.3, 64, 1, false}};

    std::vector<runner::Trial> trials;
    for (const RelCase& c : cases) {
      runner::Trial t;
      t.spec.algorithm = "TAG";
      t.spec.seed = seed;
      t.spec.params = {{"loss", util::FormatDouble(c.loss, 2)},
                       {"retry_budget", std::to_string(c.budget)},
                       {"deadline", std::to_string(c.deadline)}};
      RelCase rc = c;
      t.run = [=]() -> runner::MetricList {
        core::QuerySpec spec = RoomAvgSpec(3);
        // The flat run: same loss, no retries — what the layer is bought
        // against. Identical seed, so both runs see the same data wave.
        sim::NetworkOptions off_opt;
        off_opt.loss_prob = rc.loss;
        auto off_bed = Bed::Clustered(nodes, rooms, seed, off_opt);
        auto off_gen = off_bed.RoomData(seed);
        auto off_oracle_gen = off_bed.RoomData(seed);
        core::Oracle off_oracle(&off_bed.topology, off_oracle_gen.get(), spec);
        core::TagTopK off_algo(off_bed.net.get(), off_gen.get(), spec);
        double off_recall_sum = 0.0;
        for (size_t e = 0; e < epochs; ++e) {
          core::TopKResult result = off_algo.RunEpoch(static_cast<sim::Epoch>(e));
          off_recall_sum += result.RecallAgainst(off_oracle.TopK(static_cast<sim::Epoch>(e)));
        }
        double off_energy_mj = PerEpoch(1e3 * off_bed.net->total().energy_j(), epochs);

        sim::NetworkOptions on_opt = off_opt;
        on_opt.reliability.enabled = true;
        on_opt.reliability.max_retries = 6;
        on_opt.reliability.residual_target = 0.01;
        on_opt.reliability.retry_budget = rc.budget;
        on_opt.reliability.wave_depth_budget = rc.deadline;
        auto bed = Bed::Clustered(nodes, rooms, seed, on_opt);
        auto gen = bed.RoomData(seed);
        auto oracle_gen = bed.RoomData(seed);
        core::Oracle oracle(&bed.topology, oracle_gen.get(), spec);
        core::TagTopK algo(bed.net.get(), gen.get(), spec);
        double recall_sum = 0.0;
        double completeness_sum = 0.0;
        size_t degraded_epochs = 0;
        for (size_t e = 0; e < epochs; ++e) {
          // Budgets and the degraded flag are per-epoch contracts (the
          // coordinator does the same at each StepEpoch).
          bed.net->BeginReliabilityEpoch();
          core::TopKResult result = algo.RunEpoch(static_cast<sim::Epoch>(e));
          recall_sum += result.RecallAgainst(oracle.TopK(static_cast<sim::Epoch>(e)));
          completeness_sum += result.completeness;
          if (result.degraded) ++degraded_epochs;
        }
        const sim::TrafficCounters& on_total = bed.net->total();
        double energy_mj = PerEpoch(1e3 * on_total.energy_j(), epochs);
        double completeness = PerEpoch(completeness_sum, epochs);

        runner::MetricList metrics = {
            {"completeness", completeness},
            {"recall", PerEpoch(recall_sum, epochs)},
            {"recall_off", PerEpoch(off_recall_sum, epochs)},
            {"energy_mj_per_epoch", energy_mj},
            {"energy_off_mj_per_epoch", off_energy_mj},
            {"retries_per_epoch", PerEpoch(on_total.retries, epochs)},
            {"degraded_epochs", static_cast<double>(degraded_epochs)},
        };
        if (rc.reference) {
          // The CI gate bits live only on the reference row, so deadline
          // rows (deliberately partial) never trip the SLO.
          metrics.emplace_back("slo_completeness_ok",
                               completeness >= kCompletenessSlo ? 1.0 : 0.0);
          metrics.emplace_back(
              "overhead_ok",
              off_energy_mj > 0.0 && energy_mj <= kOverheadBound * off_energy_mj ? 1.0 : 0.0);
        }
        return metrics;
      };
      trials.push_back(std::move(t));
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
