/// E18 — subscriber fan-out throughput over a coordinator session.
///
/// The production shape of a long-lived KSpot service is U subscribers over
/// Q distinct queries with U >> Q: the CompatKey dedupe collapses the Q
/// queries to G operator groups (one converge-cast per group per epoch), and
/// the FanOutHub fans each group's single materialized result out to every
/// subscriber for constant per-subscriber work. This scenario measures that
/// funnel end to end: a session steps the shared data plane while the hub
/// publishes to U = 10^3 / 10^5 / 10^6 subscribers spread round-robin over
/// Q = 4 / 16 / 64 queries (a 16-variant top-k pool, so Q = 64 exercises
/// 4-way operator sharing).
///
/// Metrics: deliveries_per_sec (subscriber deliveries over the serving
/// loop's wall clock — the acceptance bar is >= 1e5 at U = 10^6),
/// p99_delivery_ms (p99 per-epoch publish latency: how long the slowest
/// fan-out pass kept subscribers waiting after the converge-cast), plus the
/// funnel's shape (subscribers, operators, deliveries).
///
/// Wall-clock metrics are machine-dependent: the scenario is excluded from
/// bit-determinism checks, CI runs it quick with --threads 1, and
/// bench/check_regression.py gates deliveries_per_sec against the committed
/// baseline (bench/baseline/BENCH_E18_fanout_throughput.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kspot/coordinator.hpp"
#include "kspot/fanout.hpp"
#include "kspot/scenario_config.hpp"
#include "scenarios.hpp"
#include "util/stats.hpp"

namespace kspot::bench {

namespace {

struct FanoutThroughputConfig {
  size_t subscribers = 1000;
  size_t queries = 16;
  size_t epochs = 8;
  uint64_t seed = 181;
};

/// The query pool: 16 snapshot top-k variants (K in 1..4 x AVG/MAX/MIN/SUM).
/// Q <= 16 gives Q distinct operators; Q = 64 cycles the pool so every
/// operator carries a 4-way share group.
std::vector<std::string> BuildQueryPool(size_t queries) {
  static const char* kAggs[] = {"AVG", "MAX", "MIN", "SUM"};
  std::vector<std::string> pool;
  pool.reserve(queries);
  char buf[128];
  for (size_t i = 0; i < queries; ++i) {
    std::snprintf(buf, sizeof buf,
                  "SELECT TOP %zu roomid, %s(sound) FROM sensors GROUP BY roomid",
                  (i / 4) % 4 + 1, kAggs[i % 4]);
    pool.emplace_back(buf);
  }
  return pool;
}

runner::MetricList RunFanoutThroughput(const FanoutThroughputConfig& cfg) {
  using Clock = std::chrono::steady_clock;
  system::Scenario floor = system::Scenario::ConferenceFloor(8, 4, cfg.seed);

  system::QueryCoordinator::Options copt;
  copt.epochs = cfg.epochs;
  copt.seed = cfg.seed;
  system::QueryCoordinator coordinator(floor, copt);

  std::vector<system::QueryId> admitted;
  for (const std::string& sql : BuildQueryPool(cfg.queries)) {
    auto id = coordinator.Admit(sql);
    if (!id.ok()) std::abort();  // catalogue bug: the pool must admit
    admitted.push_back(id.value());
  }

  // U subscription handles, round-robin over the Q query handles — the
  // skew-free worst case for the hub's routing slabs.
  system::FanOutHub hub(&coordinator);
  for (size_t u = 0; u < cfg.subscribers; ++u) {
    if (!hub.Subscribe(admitted[u % admitted.size()]).ok()) std::abort();
  }

  if (!coordinator.Open().ok()) std::abort();
  util::Percentiles publish_ms;
  Clock::time_point serve_start = Clock::now();
  for (size_t e = 0; e < cfg.epochs; ++e) {
    auto update = coordinator.StepEpoch();
    if (!update.ok()) std::abort();
    Clock::time_point publish_start = Clock::now();
    hub.Publish(update.value());
    publish_ms.Add(
        std::chrono::duration<double, std::milli>(Clock::now() - publish_start).count());
  }
  double serve_s = std::chrono::duration<double>(Clock::now() - serve_start).count();
  auto report = coordinator.Close();
  if (!report.ok()) std::abort();

  // Conservation: every subscriber must have been delivered every epoch
  // (all queries run every epoch here) — a miscount is a harness bug, not a
  // slow run, so fail loudly rather than report a wrong rate.
  uint64_t expected = static_cast<uint64_t>(cfg.subscribers) * cfg.epochs;
  if (hub.total_deliveries() != expected) std::abort();

  double deliveries = static_cast<double>(hub.total_deliveries());
  util::DistSummary publish = publish_ms.Summary();
  return {{"deliveries_per_sec", serve_s > 0.0 ? deliveries / serve_s : 0.0},
          {"p50_delivery_ms", publish.p50},
          {"p99_delivery_ms", publish.p99},
          {"deliveries", deliveries},
          {"subscribers", static_cast<double>(cfg.subscribers)},
          {"queries", static_cast<double>(cfg.queries)},
          {"operators", static_cast<double>(report.value().operators)}};
}

}  // namespace

void RegisterFanoutThroughput(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "fanout_throughput";
  s.id = "E18";
  s.title = "subscriber fan-out: one converge-cast per group serving 10^3..10^6 viewers";
  s.notes =
      "deliveries_per_sec and p99_delivery_ms are wall-clock; run with\n"
      "--threads 1 when comparing numbers. operators shows the CompatKey\n"
      "funnel (Q=64 collapses to 16 operators, a 4-way share each).\n"
      "bench/check_regression.py gates CI on this scenario's\n"
      "deliveries_per_sec; the U=10^6 rows must clear 1e5 deliveries/sec.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    std::vector<runner::Trial> trials;
    for (size_t subscribers : {1000u, 100000u, 1000000u}) {
      for (size_t queries : {4u, 16u, 64u}) {
        runner::Trial t;
        t.spec.algorithm = "FANOUT";
        t.spec.seed = opt.seed != 0 ? opt.seed : 181;
        t.spec.params = {{"subscribers", std::to_string(subscribers)},
                         {"queries", std::to_string(queries)}};
        FanoutThroughputConfig cfg;
        cfg.subscribers = subscribers;
        cfg.queries = queries;
        cfg.epochs = opt.quick ? 4 : 8;
        cfg.seed = t.spec.seed;
        t.run = [cfg]() { return RunFanoutThroughput(cfg); };
        trials.push_back(std::move(t));
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
