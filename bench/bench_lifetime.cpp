/// E5 — energy savings and network lifetime: every node gets a small radio
/// battery budget and the continuous query runs until the first node dies
/// (the standard WSN lifetime metric). Expected shape: MINT's suppression
/// extends lifetime by a factor comparable to its energy savings, with the
/// sink's children being the first casualties under TAG.
#include "bench_util.hpp"
#include "scenarios.hpp"
#include "util/string_util.hpp"

namespace kspot::bench {

void RegisterLifetime(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "lifetime";
  s.id = "E5";
  s.title = "network lifetime with 0.2 J radio budgets (n=100, 16 rooms, K=3)";
  s.notes =
      "first_death_epoch is the standard WSN lifetime metric; the ratio between the\n"
      "MINT and TAG rows is the lifetime extension factor.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t nodes = 100;
    const size_t rooms = 16;
    const size_t max_epochs = opt.quick ? 4000 : 40000;
    const double battery_j = opt.quick ? 0.02 : 0.2;
    const uint64_t seed = opt.seed != 0 ? opt.seed : 13;

    std::vector<runner::Trial> trials;
    for (SnapshotAlgo algo : {SnapshotAlgo::kTag, SnapshotAlgo::kMint}) {
      runner::Trial t;
      t.spec.algorithm = AlgoName(algo);
      t.spec.seed = seed;
      t.spec.params = {{"battery_j", util::FormatDouble(battery_j, 2)}};
      t.run = [=]() -> runner::MetricList {
        core::QuerySpec spec = RoomAvgSpec(3);
        sim::NetworkOptions net_opt;
        net_opt.battery_j = battery_j;  // small budget so death occurs within the run
        auto bed = Bed::Grid(nodes, rooms, seed, net_opt);
        auto gen = bed.RoomData(seed);
        auto algorithm = MakeSnapshotAlgo(algo, bed.net.get(), gen.get(), spec);
        size_t first_death = max_epochs;
        for (size_t e = 0; e < max_epochs; ++e) {
          algorithm->RunEpoch(static_cast<sim::Epoch>(e));
          if (bed.net->AliveCount() < nodes) {
            first_death = e;
            break;
          }
        }
        return {{"first_death_epoch", static_cast<double>(first_death)},
                {"alive_after", static_cast<double>(bed.net->AliveCount())},
                {"energy_spent_j", bed.net->total().energy_j()}};
      };
      trials.push_back(std::move(t));
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
