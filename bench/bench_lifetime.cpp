/// E5 — energy savings and network lifetime: every node gets a small radio
/// battery budget and the continuous query runs until the first node dies
/// (the standard WSN lifetime metric). Expected shape: MINT's suppression
/// extends lifetime by a factor comparable to its energy savings, with the
/// sink's children being the first casualties under TAG.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/mint.hpp"
#include "core/tag.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

namespace {

struct LifetimeResult {
  size_t first_death_epoch;
  size_t alive_after;
  double total_energy_j;
};

template <typename Algo>
LifetimeResult RunUntilFirstDeath(bench::Bed& bed, data::DataGenerator& gen,
                                  const core::QuerySpec& spec, size_t max_epochs) {
  Algo algo(bed.net.get(), &gen, spec);
  size_t n = bed.topology.num_nodes();
  for (size_t e = 0; e < max_epochs; ++e) {
    algo.RunEpoch(static_cast<sim::Epoch>(e));
    if (bed.net->AliveCount() < n) {
      return {e, bed.net->AliveCount(), bed.net->total().energy_j()};
    }
  }
  return {max_epochs, bed.net->AliveCount(), bed.net->total().energy_j()};
}

}  // namespace

int main() {
  bench::Banner("E5", "network lifetime with 0.2 J radio budgets (n=100, 16 rooms, K=3)");
  const size_t kNodes = 100;
  const size_t kRooms = 16;
  const size_t kMaxEpochs = 40000;
  const uint64_t kSeed = 13;

  core::QuerySpec spec;
  spec.k = 3;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kRoom;
  spec.domain_max = 100.0;

  sim::NetworkOptions opt;
  opt.battery_j = 0.2;  // small budget so death occurs within the run

  util::TablePrinter table(
      {"algorithm", "first death (epoch)", "alive after", "energy spent (J)"});

  auto tag_bed = bench::Bed::Grid(kNodes, kRooms, kSeed, opt);
  auto tag_gen = tag_bed.RoomData(kSeed);
  LifetimeResult tag = RunUntilFirstDeath<core::TagTopK>(tag_bed, *tag_gen, spec, kMaxEpochs);
  table.AddRow(std::vector<std::string>{"TAG", std::to_string(tag.first_death_epoch),
                                        std::to_string(tag.alive_after),
                                        util::FormatDouble(tag.total_energy_j, 2)});

  auto mint_bed = bench::Bed::Grid(kNodes, kRooms, kSeed, opt);
  auto mint_gen = mint_bed.RoomData(kSeed);
  LifetimeResult mint =
      RunUntilFirstDeath<core::MintViews>(mint_bed, *mint_gen, spec, kMaxEpochs);
  table.AddRow(std::vector<std::string>{"MINT", std::to_string(mint.first_death_epoch),
                                        std::to_string(mint.alive_after),
                                        util::FormatDouble(mint.total_energy_j, 2)});

  table.Print(std::cout);
  std::printf("\nLifetime extension: %.2fx (epochs until first node death).\n",
              static_cast<double>(mint.first_death_epoch) /
                  static_cast<double>(std::max<size_t>(1, tag.first_death_epoch)));
  return 0;
}
