/// E8 — continuous node-ranking monitors under varying data volatility:
/// FILA (filter-based, the ICDE'06 baseline) vs MINT (threshold-suppressed
/// views) vs TAG, sweeping the random-walk step sigma. Expected shape: FILA
/// and MINT are both near-silent on stable data; as volatility grows FILA's
/// filter violations and reassignment broadcasts erode its advantage, and
/// TAG's flat cost becomes competitive.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/fila.hpp"
#include "core/mint.hpp"
#include "core/tag.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

int main() {
  bench::Banner("E8", "monitoring cost vs volatility (n=49, K=3, node ranking, 80 epochs)");
  const size_t kNodes = 49;
  const size_t kEpochs = 80;
  const uint64_t kSeed = 23;

  core::QuerySpec spec;
  spec.k = 3;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kNode;
  spec.domain_max = 100.0;

  util::TablePrinter table({"walk sigma", "TAG msgs/ep", "FILA msgs/ep", "MINT msgs/ep",
                            "TAG bytes/ep", "FILA bytes/ep", "MINT bytes/ep",
                            "FILA recall"});
  for (double sigma : {0.05, 0.2, 0.8, 2.0, 5.0}) {
    auto make_gen = [&] {
      return data::RandomWalkGenerator(kNodes, data::Modality::kSound, sigma,
                                       util::Rng(kSeed + 1), /*quantize_step=*/1.0);
    };
    auto tag_bed = bench::Bed::Grid(kNodes, 4, kSeed);
    auto tag_gen = make_gen();
    core::TagTopK tag(tag_bed.net.get(), &tag_gen, spec);
    auto tag_run = bench::RunSnapshot(tag, *tag_bed.net, nullptr, kEpochs);

    auto fila_bed = bench::Bed::Grid(kNodes, 4, kSeed);
    auto fila_gen = make_gen();
    auto fila_oracle_gen = make_gen();
    core::Oracle fila_oracle(&fila_bed.topology, &fila_oracle_gen, spec);
    core::Fila fila(fila_bed.net.get(), &fila_gen, spec);
    auto fila_run = bench::RunSnapshot(fila, *fila_bed.net, &fila_oracle, kEpochs);

    auto mint_bed = bench::Bed::Grid(kNodes, 4, kSeed);
    auto mint_gen = make_gen();
    core::MintViews mint(mint_bed.net.get(), &mint_gen, spec);
    auto mint_run = bench::RunSnapshot(mint, *mint_bed.net, nullptr, kEpochs);

    table.AddRow(std::vector<std::string>{
        util::FormatDouble(sigma, 2), util::FormatDouble(tag_run.MsgsPerEpoch(), 1),
        util::FormatDouble(fila_run.MsgsPerEpoch(), 1),
        util::FormatDouble(mint_run.MsgsPerEpoch(), 1),
        util::FormatDouble(tag_run.BytesPerEpoch(), 0),
        util::FormatDouble(fila_run.BytesPerEpoch(), 0),
        util::FormatDouble(mint_run.BytesPerEpoch(), 0),
        util::FormatDouble(100.0 * fila_run.mean_recall, 1) + "%"});
  }
  table.Print(std::cout);
  std::printf("\nFILA monitors the top-k *set* (values may lag inside filters); MINT and\n"
              "TAG report exact values every epoch.\n");
  return 0;
}
