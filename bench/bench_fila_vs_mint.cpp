/// E8 — continuous node-ranking monitors under varying data volatility:
/// FILA (filter-based, the ICDE'06 baseline) vs MINT (threshold-suppressed
/// views) vs TAG, sweeping the random-walk step sigma. Expected shape: FILA
/// and MINT are both near-silent on stable data; as volatility grows FILA's
/// filter violations and reassignment broadcasts erode its advantage, and
/// TAG's flat cost becomes competitive.
#include "bench_util.hpp"
#include "scenarios.hpp"
#include "util/string_util.hpp"

namespace kspot::bench {

void RegisterFilaVsMint(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "fila_vs_mint";
  s.id = "E8";
  s.title = "monitoring cost vs volatility (n=49, K=3, node ranking, 80 epochs)";
  s.notes =
      "FILA monitors the top-k *set* (values may lag inside filters); MINT and\n"
      "TAG report exact values every epoch.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t nodes = 49;
    const size_t epochs = opt.quick ? 15 : 80;
    const uint64_t seed = opt.seed != 0 ? opt.seed : 23;
    const std::vector<double> sigmas = opt.quick ? std::vector<double>{0.2, 2.0}
                                                 : std::vector<double>{0.05, 0.2, 0.8, 2.0, 5.0};

    std::vector<runner::Trial> trials;
    for (double sigma : sigmas) {
      for (SnapshotAlgo algo : {SnapshotAlgo::kTag, SnapshotAlgo::kFila, SnapshotAlgo::kMint}) {
        runner::Trial t;
        t.spec.algorithm = AlgoName(algo);
        t.spec.seed = seed;
        t.spec.params = {{"walk_sigma", util::FormatDouble(sigma, 2)}};
        t.run = [=]() -> runner::MetricList {
          core::QuerySpec spec;
          spec.k = 3;
          spec.agg = agg::AggKind::kAvg;
          spec.grouping = core::Grouping::kNode;
          spec.domain_max = 100.0;

          auto make_gen = [&] {
            return data::RandomWalkGenerator(nodes, data::Modality::kSound, sigma,
                                             util::Rng(seed + 1), /*quantize_step=*/1.0);
          };
          auto bed = Bed::Grid(nodes, 4, seed);
          auto gen = make_gen();
          std::unique_ptr<core::Oracle> oracle;
          auto oracle_gen = make_gen();
          if (AlgoIsApproximate(algo)) {
            oracle = std::make_unique<core::Oracle>(&bed.topology, &oracle_gen, spec);
          }
          auto algorithm = MakeSnapshotAlgo(algo, bed.net.get(), &gen, spec);
          SnapshotRun run = RunSnapshot(*algorithm, *bed.net, oracle.get(), epochs);
          return SnapshotMetrics(run);
        };
        trials.push_back(std::move(t));
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
