/// E6 — historic (vertically fragmented) top-k: bytes to answer "find the K
/// time instances with the highest average" over buffered windows, for TJA
/// vs TPUT (flat three-phase), TAG-H (full in-network aggregation of all W
/// keys) and CJA (raw centralized shipping). Expected shape: CJA >> TAG-H >
/// TPUT > TJA, with TJA's advantage growing with the window and shrinking
/// as K grows toward W.
#include "bench_util.hpp"
#include "core/centralized.hpp"
#include "core/tja.hpp"
#include "core/tput.hpp"
#include "scenarios.hpp"

namespace kspot::bench {

namespace {

enum class HistoricAlgo { kTja, kTput, kTagH, kCja };

const char* HistoricAlgoName(HistoricAlgo algo) {
  switch (algo) {
    case HistoricAlgo::kTja: return "TJA";
    case HistoricAlgo::kTput: return "TPUT";
    case HistoricAlgo::kTagH: return "TAG-H";
    case HistoricAlgo::kCja: return "CJA";
  }
  return "?";
}

}  // namespace

void RegisterTjaVsBaselines(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "tja_vs_baselines";
  s.id = "E6";
  s.title = "historic top-k bytes: TJA vs TPUT vs TAG-H vs CJA";
  s.notes =
      "One-shot historic queries over buffered windows; lsink_size and rounds are\n"
      "only reported by TJA.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const uint64_t seed = opt.seed != 0 ? opt.seed : 17;
    const std::vector<size_t> sizes = opt.quick ? std::vector<size_t>{25}
                                                : std::vector<size_t>{25, 100};
    const std::vector<size_t> windows = opt.quick ? std::vector<size_t>{64}
                                                  : std::vector<size_t>{64, 256};
    const std::vector<int> ks = opt.quick ? std::vector<int>{1, 4}
                                          : std::vector<int>{1, 2, 4, 8, 16};

    std::vector<runner::Trial> trials;
    for (size_t n : sizes) {
      for (size_t window : windows) {
        for (int k : ks) {
          for (HistoricAlgo algo :
               {HistoricAlgo::kTja, HistoricAlgo::kTput, HistoricAlgo::kTagH,
                HistoricAlgo::kCja}) {
            runner::Trial t;
            t.spec.algorithm = HistoricAlgoName(algo);
            t.spec.seed = seed;
            t.spec.params = {{"n", std::to_string(n)},
                             {"window", std::to_string(window)},
                             {"k", std::to_string(k)}};
            t.run = [=]() -> runner::MetricList {
              auto bed = Bed::Grid(n, 4, seed);
              auto history = MakeEventHistory(bed, window, seed);
              core::HistoricOptions hopt;
              hopt.k = k;
              runner::MetricList metrics;
              switch (algo) {
                case HistoricAlgo::kTja: {
                  core::Tja tja(bed.net.get(), &history, hopt);
                  auto result = tja.Run();
                  metrics.emplace_back("lsink_size", static_cast<double>(result.lsink_size));
                  metrics.emplace_back("rounds", static_cast<double>(result.rounds));
                  break;
                }
                case HistoricAlgo::kTput: {
                  core::Tput tput(bed.net.get(), &history, hopt);
                  tput.Run();
                  break;
                }
                case HistoricAlgo::kTagH: {
                  core::TagHistoric tagh(bed.net.get(), &history, hopt);
                  tagh.Run();
                  break;
                }
                case HistoricAlgo::kCja: {
                  core::Cja cja(bed.net.get(), &history, hopt);
                  cja.Run();
                  break;
                }
              }
              metrics.emplace_back("total_bytes",
                                   static_cast<double>(bed.net->total().payload_bytes));
              metrics.emplace_back("total_msgs",
                                   static_cast<double>(bed.net->total().messages));
              return metrics;
            };
            trials.push_back(std::move(t));
          }
        }
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
