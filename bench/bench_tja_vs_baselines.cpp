/// E6 — historic (vertically fragmented) top-k: bytes to answer "find the K
/// time instances with the highest average" over buffered windows, for TJA
/// vs TPUT (flat three-phase), TAG-H (full in-network aggregation of all W
/// keys) and CJA (raw centralized shipping). Expected shape: CJA >> TAG-H >
/// TPUT > TJA, with TJA's advantage growing with the window and shrinking
/// as K grows toward W.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/centralized.hpp"
#include "core/tja.hpp"
#include "core/tput.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

namespace {

/// Temporally correlated history: a building-wide walk + per-sensor noise on
/// an integer grid (hot instants shared across nodes — TJA's regime).
core::GeneratorHistory MakeHistory(const bench::Bed& bed, size_t window, uint64_t seed) {
  return bench::MakeEventHistory(bed, window, seed);
}

}  // namespace

int main() {
  bench::Banner("E6", "historic top-k bytes: TJA vs TPUT vs TAG-H vs CJA");
  const uint64_t kSeed = 17;

  for (size_t n : {25, 100}) {
    for (size_t window : {64, 256}) {
      std::printf("\n--- n=%zu sensors+sink, window W=%zu ---\n", n, window);
      util::TablePrinter table({"K", "TJA bytes", "TPUT bytes", "TAG-H bytes", "CJA bytes",
                                "TJA/TAG-H", "|Lsink|", "rounds"});
      for (int k : {1, 2, 4, 8, 16}) {
        core::HistoricOptions opt;
        opt.k = k;

        auto tja_bed = bench::Bed::Grid(n, 4, kSeed);
        auto h1 = MakeHistory(tja_bed, window, kSeed);
        core::Tja tja(tja_bed.net.get(), &h1, opt);
        auto tja_result = tja.Run();

        auto tput_bed = bench::Bed::Grid(n, 4, kSeed);
        auto h2 = MakeHistory(tput_bed, window, kSeed);
        core::Tput tput(tput_bed.net.get(), &h2, opt);
        tput.Run();

        auto tagh_bed = bench::Bed::Grid(n, 4, kSeed);
        auto h3 = MakeHistory(tagh_bed, window, kSeed);
        core::TagHistoric tagh(tagh_bed.net.get(), &h3, opt);
        tagh.Run();

        auto cja_bed = bench::Bed::Grid(n, 4, kSeed);
        auto h4 = MakeHistory(cja_bed, window, kSeed);
        core::Cja cja(cja_bed.net.get(), &h4, opt);
        cja.Run();

        double ratio = static_cast<double>(tja_bed.net->total().payload_bytes) /
                       static_cast<double>(tagh_bed.net->total().payload_bytes);
        table.AddRow(std::vector<std::string>{
            std::to_string(k), std::to_string(tja_bed.net->total().payload_bytes),
            std::to_string(tput_bed.net->total().payload_bytes),
            std::to_string(tagh_bed.net->total().payload_bytes),
            std::to_string(cja_bed.net->total().payload_bytes),
            util::FormatDouble(ratio, 2), std::to_string(tja_result.lsink_size),
            std::to_string(tja_result.rounds)});
      }
      table.Print(std::cout);
    }
  }
  return 0;
}
