#pragma once

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "core/epoch_algorithm.hpp"
#include "core/fila.hpp"
#include "core/history_source.hpp"
#include "core/mint.hpp"
#include "core/naive.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "data/generators.hpp"
#include "runner/scenario.hpp"
#include "sim/network.hpp"
#include "sim/routing_tree.hpp"
#include "sim/shard_runtime.hpp"
#include "sim/topology.hpp"
#include "util/rng.hpp"

namespace kspot::bench {

/// A ready-to-run simulated deployment for benchmarks (topology + routing
/// tree + network with counters).
struct Bed {
  sim::Topology topology;
  sim::RoutingTree tree;
  std::unique_ptr<sim::Network> net;
  /// Parallel epoch execution, when enabled (see EnableSharding).
  std::unique_ptr<sim::ShardRuntime> shard_rt;

  /// Attaches a shard runtime so epoch waves on this bed run `shards`
  /// cluster-head lanes in parallel (no-op at <= 1, keeping the serial
  /// path). Metric results are bit-identical either way — sharding is a
  /// wall-clock knob, pinned by golden_equivalence_test.
  void EnableSharding(size_t shards, size_t threads = 0) {
    if (shards > 1) {
      shard_rt = std::make_unique<sim::ShardRuntime>(net.get(),
                                                     sim::ShardRuntime::Options{shards, threads});
    }
  }

  /// Regular grid with rectangular rooms (deterministic placement).
  static Bed Grid(size_t nodes, size_t rooms, uint64_t seed, sim::NetworkOptions opt = {}) {
    Bed bed;
    sim::TopologyOptions topt;
    topt.num_nodes = nodes;
    topt.num_rooms = rooms;
    bed.topology = sim::MakeGrid(topt);
    util::Rng rng(seed);
    bed.tree = sim::RoutingTree::BuildClusterAware(bed.topology, rng);
    bed.net = std::make_unique<sim::Network>(&bed.topology, &bed.tree, opt,
                                             util::Rng(seed ^ 0xBEEF));
    return bed;
  }

  /// Clustered rooms (the conference deployment shape).
  static Bed Clustered(size_t nodes, size_t rooms, uint64_t seed, sim::NetworkOptions opt = {}) {
    Bed bed;
    sim::TopologyOptions topt;
    topt.num_nodes = nodes;
    topt.num_rooms = rooms;
    util::Rng topo_rng(seed);
    bed.topology = sim::MakeClusteredRooms(topt, topo_rng);
    util::Rng rng(seed ^ 0x5151);
    bed.tree = sim::RoutingTree::BuildClusterAware(bed.topology, rng);
    bed.net = std::make_unique<sim::Network>(&bed.topology, &bed.tree, opt,
                                             util::Rng(seed ^ 0xBEEF));
    return bed;
  }

  /// The exact Figure-1 deployment and routing tree.
  static Bed Figure1(sim::NetworkOptions opt = {}) {
    Bed bed;
    bed.topology = sim::MakeFigure1();
    bed.tree = sim::RoutingTree::FromParents(sim::MakeFigure1Parents());
    bed.net = std::make_unique<sim::Network>(&bed.topology, &bed.tree, opt, util::Rng(42));
    return bed;
  }

  /// The demo's default data: rooms with distinct drifting activity, integer
  /// ADC readings.
  std::unique_ptr<data::DataGenerator> RoomData(uint64_t seed, double room_sigma = 0.5,
                                                double noise_sigma = 0.5,
                                                double global_sigma = 0.0,
                                                double quantize_step = 1.0) const {
    std::vector<sim::GroupId> rooms;
    rooms.reserve(topology.num_nodes());
    for (sim::NodeId id = 0; id < topology.num_nodes(); ++id) {
      rooms.push_back(topology.room(id));
    }
    return std::make_unique<data::RoomCorrelatedGenerator>(
        std::move(rooms), data::Modality::kSound, room_sigma, noise_sigma, util::Rng(seed),
        global_sigma, quantize_step);
  }
};

/// Historic workload with *shared events*: a quiet building-wide baseline
/// with occasional pronounced activity bursts every node observes (plus
/// per-sensor noise). Hot time instances are shared across nodes — the
/// regime historic top-k queries target (a handful of loud minutes in
/// months of quiet). Returns the materialized per-node windows.
inline core::GeneratorHistory MakeEventHistory(const Bed& bed, size_t window, uint64_t seed,
                                               double event_prob = 0.06) {
  util::Rng rng(seed * 1315423911ULL + 17);
  size_t n = bed.topology.num_nodes();
  std::vector<std::vector<double>> matrix(window, std::vector<double>(n, 0.0));
  for (size_t t = 0; t < window; ++t) {
    double level = rng.NextBernoulli(event_prob) ? rng.NextDouble(70.0, 100.0)
                                                 : 20.0 + rng.NextGaussian(0.0, 3.0);
    for (size_t id = 1; id < n; ++id) {
      matrix[t][id] = std::round(level + rng.NextGaussian(0.0, 1.0));
    }
  }
  data::TraceGenerator gen(std::move(matrix), data::Modality::kSound);
  return core::GeneratorHistory(&gen, n, 0, window);
}

/// Per-epoch rate with the zero-epoch guard — the "x / epochs" every
/// experiment table formats. One shared copy; the per-bench locals that
/// used to duplicate this arithmetic are gone.
inline double PerEpoch(double amount, size_t epochs) {
  return epochs > 0 ? amount / static_cast<double>(epochs) : 0.0;
}
inline double PerEpoch(uint64_t amount, size_t epochs) {
  return PerEpoch(static_cast<double>(amount), epochs);
}

/// Steady-state rate: per epoch after the first (creation) epoch.
inline double SteadyPerEpoch(uint64_t amount, size_t epochs) {
  return epochs > 1 ? static_cast<double>(amount) / static_cast<double>(epochs - 1) : 0.0;
}

/// The msgs/bytes/energy columns every traffic table reports for counters
/// accumulated over `epochs`.
inline runner::MetricList TrafficPerEpochMetrics(const sim::TrafficCounters& total,
                                                 size_t epochs) {
  return {{"msgs_per_epoch", PerEpoch(total.messages, epochs)},
          {"bytes_per_epoch", PerEpoch(total.payload_bytes, epochs)},
          {"energy_mj_per_epoch", PerEpoch(1e3 * total.energy_j(), epochs)}};
}

/// Outcome of running a snapshot algorithm for a number of epochs.
struct SnapshotRun {
  sim::TrafficCounters total;      ///< Whole-run traffic.
  sim::TrafficCounters steady;     ///< Traffic excluding the first epoch.
  size_t epochs = 0;
  double mean_recall = 1.0;        ///< vs the oracle (1.0 when exact).

  double MsgsPerEpoch() const { return PerEpoch(total.messages, epochs); }
  double BytesPerEpoch() const { return PerEpoch(total.payload_bytes, epochs); }
  double SteadyMsgsPerEpoch() const { return SteadyPerEpoch(steady.messages, epochs); }
  double SteadyBytesPerEpoch() const { return SteadyPerEpoch(steady.payload_bytes, epochs); }
  double EnergyPerEpochMilliJ() const { return PerEpoch(1e3 * total.energy_j(), epochs); }
};

/// Runs `algo` for `epochs` epochs on `net`, comparing against `oracle`
/// (pass nullptr to skip recall accounting).
inline SnapshotRun RunSnapshot(core::EpochAlgorithm& algo, sim::Network& net,
                               const core::Oracle* oracle, size_t epochs) {
  SnapshotRun run;
  run.epochs = epochs;
  double recall_sum = 0.0;
  sim::TrafficCounters after_first;
  for (size_t e = 0; e < epochs; ++e) {
    core::TopKResult result = algo.RunEpoch(static_cast<sim::Epoch>(e));
    if (oracle != nullptr) {
      recall_sum += result.RecallAgainst(oracle->TopK(static_cast<sim::Epoch>(e)));
    }
    if (e == 0) after_first = net.total();
  }
  run.total = net.total();
  run.steady = net.total().Since(after_first);
  run.mean_recall = oracle != nullptr && epochs > 0
                        ? recall_sum / static_cast<double>(epochs)
                        : 1.0;
  return run;
}

/// Prints the standard experiment banner.
inline void Banner(const char* id, const char* title) {
  std::printf("\n=== %s: %s ===\n", id, title);
}

/// The continuous snapshot algorithms scenarios sweep over.
enum class SnapshotAlgo { kTag, kNaive, kMint, kFila };

/// Table/JSON label of an algorithm.
inline const char* AlgoName(SnapshotAlgo algo) {
  switch (algo) {
    case SnapshotAlgo::kTag: return "TAG";
    case SnapshotAlgo::kNaive: return "Naive";
    case SnapshotAlgo::kMint: return "MINT";
    case SnapshotAlgo::kFila: return "FILA";
  }
  return "?";
}

/// True when the algorithm can return inexact answers (so trials should
/// track recall against the oracle).
inline bool AlgoIsApproximate(SnapshotAlgo algo) {
  return algo == SnapshotAlgo::kNaive || algo == SnapshotAlgo::kFila;
}

/// Instantiates an algorithm on an existing bed/generator.
inline std::unique_ptr<core::EpochAlgorithm> MakeSnapshotAlgo(SnapshotAlgo algo,
                                                              sim::Network* net,
                                                              data::DataGenerator* gen,
                                                              const core::QuerySpec& spec) {
  switch (algo) {
    case SnapshotAlgo::kTag: return std::make_unique<core::TagTopK>(net, gen, spec);
    case SnapshotAlgo::kNaive: return std::make_unique<core::NaiveTopK>(net, gen, spec);
    case SnapshotAlgo::kMint: return std::make_unique<core::MintViews>(net, gen, spec);
    case SnapshotAlgo::kFila: return std::make_unique<core::Fila>(net, gen, spec);
  }
  return nullptr;
}

/// The common room-grouped AVG spec used across scenarios.
inline core::QuerySpec RoomAvgSpec(int k, double domain_max = 100.0) {
  core::QuerySpec spec;
  spec.k = k;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kRoom;
  spec.domain_max = domain_max;
  return spec;
}

/// The standard per-trial metric set of a snapshot run.
inline runner::MetricList SnapshotMetrics(const SnapshotRun& run) {
  runner::MetricList metrics = TrafficPerEpochMetrics(run.total, run.epochs);
  metrics.emplace_back("recall", run.mean_recall);
  return metrics;
}

}  // namespace kspot::bench
