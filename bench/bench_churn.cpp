/// E13–E15 — the fault & churn experiments the static-topology benchmarks
/// could not express:
///
///   E13 churn_lifetime — battery-budgeted continuous queries under exogenous
///       node churn: epochs until the first battery death, for TAG vs MINT
///       executing the *same* FaultPlan. MINT's suppression spends less radio
///       per epoch, so it outlives TAG even while paying for view rebuilds
///       after every repair.
///   E14 churn_accuracy — answer quality under churn: recall and rank
///       distance against an oracle evaluated over the surviving (alive and
///       routable) population, with and without link-degradation episodes.
///   E15 repair_cost — what in-network tree repair costs: join-handshake
///       messages per repair event and the re-attachment volume as the crash
///       rate grows.
#include "bench_util.hpp"
#include "fault/churn_engine.hpp"
#include "scenarios.hpp"
#include "util/string_util.hpp"

namespace kspot::bench {

namespace {

/// One churn trial: a grid bed driven by a seeded FaultPlan, the ChurnEngine
/// repairing the tree before every epoch.
struct ChurnRunConfig {
  size_t nodes = 100;
  size_t rooms = 16;
  size_t epochs = 100;
  uint64_t seed = 1;
  fault::FaultPlanOptions fopt;
  double battery_j = 0.0;
  bool track_accuracy = false;
  bool stop_at_battery_death = false;
  /// Shard lanes for the epoch waves (1 = serial; results are invariant).
  size_t shards = 1;
  /// Query the algorithms answer; FILA requires node grouping.
  core::QuerySpec spec = RoomAvgSpec(3);
};

/// Node-ranking spec for the FILA churn rows (FILA monitors individual
/// sensors, Grouping::kNode).
core::QuerySpec NodeTopKSpec(int k) {
  core::QuerySpec spec;
  spec.k = k;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kNode;
  spec.domain_max = 100.0;
  return spec;
}

struct ChurnRunStats {
  size_t epochs_run = 0;
  size_t first_battery_death = 0;  ///< == epochs_run when none occurred.
  bool battery_death_seen = false;
  double recall_sum = 0.0;
  double rank_dist_sum = 0.0;
  double detached_fraction_sum = 0.0;
  size_t repair_events = 0;
  uint64_t repair_msgs = 0;
  size_t reattached = 0;
  size_t alive_at_end = 0;
  sim::TrafficCounters total;
  /// MINT creation/probe-repair wave messages after epoch 0 — the initial
  /// (churn-free) creation wave is excluded so the metric isolates what the
  /// run's dynamics cost.
  uint64_t rebuild_msgs = 0;
  /// MINT-only repair-mode counters (0 for other algorithms).
  int mint_full_rebuilds = 0;
  int mint_incremental_repairs = 0;
  int mint_probe_repairs = 0;
};

ChurnRunStats RunChurn(SnapshotAlgo algo, const ChurnRunConfig& cfg) {
  const core::QuerySpec& spec = cfg.spec;
  sim::NetworkOptions net_opt;
  net_opt.battery_j = cfg.battery_j;
  auto bed = Bed::Grid(cfg.nodes, cfg.rooms, cfg.seed, net_opt);
  bed.EnableSharding(cfg.shards);
  auto gen = bed.RoomData(cfg.seed);
  auto oracle_gen = bed.RoomData(cfg.seed);
  core::Oracle oracle(&bed.topology, oracle_gen.get(), spec);
  fault::FaultPlan plan = fault::FaultPlan::Generate(bed.topology, cfg.fopt, cfg.seed ^ 0xFA11);
  fault::ChurnEngine churn(bed.net.get(), &bed.tree, std::move(plan));
  auto algorithm = MakeSnapshotAlgo(algo, bed.net.get(), gen.get(), spec);

  auto rebuild_msgs_so_far = [&] {
    return bed.net->PhaseTotal("mint.create").messages +
           bed.net->PhaseTotal("mint.repair").messages;
  };
  uint64_t initial_creation_msgs = 0;
  ChurnRunStats stats;
  for (size_t e = 0; e < cfg.epochs; ++e) {
    auto epoch = static_cast<sim::Epoch>(e);
    fault::ChurnReport report = churn.BeginEpoch(epoch);
    if (report.battery_deaths > 0 && !stats.battery_death_seen) {
      stats.battery_death_seen = true;
      stats.first_battery_death = e;
      if (cfg.stop_at_battery_death) {
        stats.epochs_run = e;
        break;
      }
    }
    if (report.topology_changed) algorithm->OnTopologyChanged(report.delta);
    core::TopKResult got = algorithm->RunEpoch(epoch);
    if (cfg.track_accuracy) {
      // Ground truth over the population that could possibly contribute:
      // alive and with a route to the sink.
      core::TopKResult want = oracle.TopKOver(epoch, [&](sim::NodeId id) {
        return bed.net->NodeAlive(id) && bed.tree.attached(id);
      });
      stats.recall_sum += got.RecallAgainst(want);
      stats.rank_dist_sum += got.RankDistanceFrom(want);
    }
    if (bed.topology.num_sensors() > 0) {
      stats.detached_fraction_sum += static_cast<double>(churn.detached_count()) /
                                     static_cast<double>(bed.topology.num_sensors());
    }
    stats.epochs_run = e + 1;
    if (e == 0) initial_creation_msgs = rebuild_msgs_so_far();
  }
  if (!stats.battery_death_seen) stats.first_battery_death = stats.epochs_run;
  stats.repair_events = churn.repair_events();
  stats.repair_msgs = churn.repair_messages();
  stats.reattached = churn.total_reattached();
  stats.alive_at_end = bed.net->AliveCount();
  stats.total = bed.net->total();
  stats.rebuild_msgs = rebuild_msgs_so_far() - initial_creation_msgs;
  if (const auto* mint = dynamic_cast<const core::MintViews*>(algorithm.get())) {
    stats.mint_full_rebuilds = mint->churn_rebuild_count();
    stats.mint_incremental_repairs = mint->incremental_repair_count();
    stats.mint_probe_repairs = mint->repair_count();
  }
  return stats;
}

}  // namespace

void RegisterChurnLifetime(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "churn_lifetime";
  s.id = "E13";
  s.title = "network lifetime under churn (n=100, 16 rooms, K=3, battery-budgeted)";
  s.notes =
      "Both rows execute the same FaultPlan (transient crashes), so the gap in\n"
      "first_battery_death_epoch is pure protocol cost: MINT outlives TAG even while\n"
      "paying a creation-phase rebuild after every tree repair.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    ChurnRunConfig cfg;
    cfg.epochs = opt.quick ? 4000 : 40000;
    // Budgets sized so the first death lands well past MINT's creation
    // phase: the steady-state suppression gap, not the creation spike, is
    // what the lifetime ratio measures.
    cfg.battery_j = opt.quick ? 0.1 : 0.5;
    cfg.seed = opt.seed != 0 ? opt.seed : 131;
    cfg.shards = opt.shards;
    cfg.fopt.horizon = static_cast<sim::Epoch>(cfg.epochs);
    cfg.fopt.crash_prob = 0.0005;
    cfg.fopt.mean_downtime = 40;
    cfg.stop_at_battery_death = true;

    std::vector<runner::Trial> trials;
    for (SnapshotAlgo algo : {SnapshotAlgo::kTag, SnapshotAlgo::kMint}) {
      runner::Trial t;
      t.spec.algorithm = AlgoName(algo);
      t.spec.seed = cfg.seed;
      t.spec.params = {{"battery_j", util::FormatDouble(cfg.battery_j, 2)},
                       {"crash_prob", util::FormatDouble(cfg.fopt.crash_prob, 4)}};
      t.run = [=]() -> runner::MetricList {
        ChurnRunStats st = RunChurn(algo, cfg);
        return {{"first_battery_death_epoch", static_cast<double>(st.first_battery_death)},
                {"alive_after", static_cast<double>(st.alive_at_end)},
                {"repair_events", static_cast<double>(st.repair_events)},
                {"repair_msgs", static_cast<double>(st.repair_msgs)},
                {"msgs_per_epoch", PerEpoch(st.total.messages, st.epochs_run)},
                {"energy_spent_j", st.total.energy_j()}};
      };
      trials.push_back(std::move(t));
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

void RegisterChurnAccuracy(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "churn_accuracy";
  s.id = "E14";
  s.title = "answer quality under churn vs the surviving-population oracle (n=49, K=3)";
  s.notes =
      "recall / rank_distance compare each epoch's answer to an oracle aggregating\n"
      "only nodes that are alive and routable that epoch. Pure fail-stop churn keeps\n"
      "both algorithms exact (stale views are evicted on every repair); degradation\n"
      "episodes add real frame loss and open the gap.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    ChurnRunConfig base;
    base.nodes = 49;
    base.rooms = 12;
    base.epochs = opt.quick ? 40 : 200;
    base.seed = opt.seed != 0 ? opt.seed : 141;
    base.track_accuracy = true;
    base.shards = opt.shards;

    struct Level {
      const char* label;
      double crash_prob;
      double degrade_prob;
    };
    const std::vector<Level> levels = opt.quick
        ? std::vector<Level>{{"crash", 0.01, 0.0}, {"crash+degrade", 0.01, 0.01}}
        : std::vector<Level>{{"calm", 0.0, 0.0},
                             {"crash", 0.01, 0.0},
                             {"crash+degrade", 0.01, 0.01}};

    std::vector<runner::Trial> trials;
    for (const Level& level : levels) {
      // FILA rides the sweep with a node-ranking query (its setting); it was
      // the last algorithm ignoring OnTopologyChanged, so its rows double as
      // churn-eviction coverage.
      for (SnapshotAlgo algo :
           {SnapshotAlgo::kTag, SnapshotAlgo::kMint, SnapshotAlgo::kFila}) {
        runner::Trial t;
        t.spec.algorithm = AlgoName(algo);
        t.spec.seed = base.seed;
        t.spec.params = {{"churn", level.label}};
        ChurnRunConfig cfg = base;
        if (algo == SnapshotAlgo::kFila) cfg.spec = NodeTopKSpec(3);
        cfg.fopt.horizon = static_cast<sim::Epoch>(cfg.epochs);
        cfg.fopt.crash_prob = level.crash_prob;
        cfg.fopt.mean_downtime = 15;
        cfg.fopt.degrade_prob = level.degrade_prob;
        cfg.fopt.degrade_extra_loss = 0.3;
        cfg.fopt.degrade_duration = 10;
        t.run = [=]() -> runner::MetricList {
          ChurnRunStats st = RunChurn(algo, cfg);
          return {{"recall", PerEpoch(st.recall_sum, st.epochs_run)},
                  {"rank_distance", PerEpoch(st.rank_dist_sum, st.epochs_run)},
                  {"msgs_per_epoch", PerEpoch(st.total.messages, st.epochs_run)},
                  {"repair_events", static_cast<double>(st.repair_events)}};
        };
        trials.push_back(std::move(t));
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

void RegisterRepairCost(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "repair_cost";
  s.id = "E15";
  s.title = "in-network tree repair cost vs crash rate (n=100, 16 rooms, MINT)";
  s.notes =
      "msgs_per_repair counts only the join handshakes of the repair itself;\n"
      "mint_rebuild_msgs_per_epoch is the protocol-level price MINT pays to re-create\n"
      "its views after each repair (the fault tax on suppression) — the initial\n"
      "churn-free creation wave is excluded.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    ChurnRunConfig base;
    base.epochs = opt.quick ? 30 : 120;
    base.seed = opt.seed != 0 ? opt.seed : 151;
    base.shards = opt.shards;
    const std::vector<double> crash_probs =
        opt.quick ? std::vector<double>{0.01} : std::vector<double>{0.002, 0.01, 0.03};

    std::vector<runner::Trial> trials;
    for (double crash_prob : crash_probs) {
      runner::Trial t;
      t.spec.algorithm = "MINT";
      t.spec.seed = base.seed;
      t.spec.params = {{"crash_prob", util::FormatDouble(crash_prob, 3)}};
      ChurnRunConfig cfg = base;
      cfg.fopt.horizon = static_cast<sim::Epoch>(cfg.epochs);
      cfg.fopt.crash_prob = crash_prob;
      cfg.fopt.mean_downtime = 10;
      t.run = [=]() -> runner::MetricList {
        ChurnRunStats st = RunChurn(SnapshotAlgo::kMint, cfg);
        double per_repair = st.repair_events > 0
                                ? static_cast<double>(st.repair_msgs) /
                                      static_cast<double>(st.repair_events)
                                : 0.0;
        return {{"repair_events", static_cast<double>(st.repair_events)},
                {"repair_msgs", static_cast<double>(st.repair_msgs)},
                {"msgs_per_repair", per_repair},
                {"reattached_nodes", static_cast<double>(st.reattached)},
                {"mean_detached_fraction", PerEpoch(st.detached_fraction_sum, st.epochs_run)},
                {"mint_rebuild_msgs_per_epoch", PerEpoch(st.rebuild_msgs, st.epochs_run)},
                {"mint_incremental_repairs", static_cast<double>(st.mint_incremental_repairs)},
                {"mint_probe_repairs", static_cast<double>(st.mint_probe_repairs)},
                {"mint_full_rebuilds", static_cast<double>(st.mint_full_rebuilds)},
                {"msgs_per_epoch", PerEpoch(st.total.messages, st.epochs_run)}};
      };
      trials.push_back(std::move(t));
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
