/// E3 — the System-Panel savings claim, swept over K: messages and payload
/// bytes per epoch for TAG (centralized top-k), Naive local pruning
/// (wrong answers) and MINT, on a 100-node grid with 16 rooms. The expected
/// shape: MINT's advantage is largest for small K and shrinks as K
/// approaches the number of groups.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/mint.hpp"
#include "core/naive.hpp"
#include "core/tag.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

int main() {
  bench::Banner("E3", "messages & bytes per epoch vs K (n=100, 16 rooms, 60 epochs)");
  const size_t kNodes = 100;
  const size_t kRooms = 16;
  const size_t kEpochs = 60;
  const uint64_t kSeed = 7;

  util::TablePrinter table({"K", "TAG msgs", "Naive msgs", "MINT msgs", "TAG bytes",
                            "Naive bytes", "MINT bytes", "MINT savings", "Naive recall"});
  for (int k : {1, 2, 4, 8, 16}) {
    core::QuerySpec spec;
    spec.k = k;
    spec.agg = agg::AggKind::kAvg;
    spec.grouping = core::Grouping::kRoom;
    spec.domain_max = 100.0;

    auto tag_bed = bench::Bed::Grid(kNodes, kRooms, kSeed);
    auto tag_gen = tag_bed.RoomData(kSeed);
    core::TagTopK tag(tag_bed.net.get(), tag_gen.get(), spec);
    auto tag_run = bench::RunSnapshot(tag, *tag_bed.net, nullptr, kEpochs);

    auto naive_bed = bench::Bed::Grid(kNodes, kRooms, kSeed);
    auto naive_gen = naive_bed.RoomData(kSeed);
    auto naive_oracle_gen = naive_bed.RoomData(kSeed);
    core::Oracle naive_oracle(&naive_bed.topology, naive_oracle_gen.get(), spec);
    core::NaiveTopK naive(naive_bed.net.get(), naive_gen.get(), spec);
    auto naive_run = bench::RunSnapshot(naive, *naive_bed.net, &naive_oracle, kEpochs);

    auto mint_bed = bench::Bed::Grid(kNodes, kRooms, kSeed);
    auto mint_gen = mint_bed.RoomData(kSeed);
    core::MintViews mint(mint_bed.net.get(), mint_gen.get(), spec);
    auto mint_run = bench::RunSnapshot(mint, *mint_bed.net, nullptr, kEpochs);

    double savings = 100.0 * (1.0 - mint_run.BytesPerEpoch() / tag_run.BytesPerEpoch());
    table.AddRow(std::vector<std::string>{
        std::to_string(k), util::FormatDouble(tag_run.MsgsPerEpoch(), 1),
        util::FormatDouble(naive_run.MsgsPerEpoch(), 1),
        util::FormatDouble(mint_run.MsgsPerEpoch(), 1),
        util::FormatDouble(tag_run.BytesPerEpoch(), 0),
        util::FormatDouble(naive_run.BytesPerEpoch(), 0),
        util::FormatDouble(mint_run.BytesPerEpoch(), 0),
        util::FormatDouble(savings, 1) + "%",
        util::FormatDouble(100.0 * naive_run.mean_recall, 1) + "%"});
  }
  table.Print(std::cout);
  std::printf("\nMINT and TAG are exact; Naive is cheap but its recall column shows the\n"
              "price of wrongful local pruning (Section III-A).\n");
  return 0;
}
