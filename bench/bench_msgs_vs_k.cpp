/// E3 — the System-Panel savings claim, swept over K: messages and payload
/// bytes per epoch for TAG (centralized top-k), Naive local pruning
/// (wrong answers) and MINT, on a 100-node grid with 16 rooms. The expected
/// shape: MINT's advantage is largest for small K and shrinks as K
/// approaches the number of groups.
#include "bench_util.hpp"
#include "scenarios.hpp"

namespace kspot::bench {

void RegisterMsgsVsK(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "msgs_vs_k";
  s.id = "E3";
  s.title = "messages & bytes per epoch vs K (n=100, 16 rooms, 60 epochs)";
  s.notes =
      "MINT and TAG are exact; Naive is cheap but its recall column shows the\n"
      "price of wrongful local pruning (Section III-A).";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t nodes = 100;
    const size_t rooms = 16;
    const size_t epochs = opt.quick ? 10 : 60;
    const uint64_t seed = opt.seed != 0 ? opt.seed : 7;
    const std::vector<int> ks = opt.quick ? std::vector<int>{1, 4}
                                          : std::vector<int>{1, 2, 4, 8, 16};

    std::vector<runner::Trial> trials;
    for (int k : ks) {
      for (SnapshotAlgo algo : {SnapshotAlgo::kTag, SnapshotAlgo::kNaive, SnapshotAlgo::kMint}) {
        runner::Trial t;
        t.spec.algorithm = AlgoName(algo);
        t.spec.seed = seed;
        t.spec.params = {{"k", std::to_string(k)}};
        t.run = [=]() -> runner::MetricList {
          core::QuerySpec spec = RoomAvgSpec(k);
          auto bed = Bed::Grid(nodes, rooms, seed);
          auto gen = bed.RoomData(seed);
          std::unique_ptr<data::DataGenerator> oracle_gen;
          std::unique_ptr<core::Oracle> oracle;
          if (AlgoIsApproximate(algo)) {
            oracle_gen = bed.RoomData(seed);
            oracle = std::make_unique<core::Oracle>(&bed.topology, oracle_gen.get(), spec);
          }
          auto algorithm = MakeSnapshotAlgo(algo, bed.net.get(), gen.get(), spec);
          SnapshotRun run = RunSnapshot(*algorithm, *bed.net, oracle.get(), epochs);
          return SnapshotMetrics(run);
        };
        trials.push_back(std::move(t));
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
