/// kspot_bench — the unified experiment CLI. Every experiment the 12
/// standalone bench programs used to run is a registered Scenario; this
/// multiplexer lists them, fans their trials out over a worker pool, prints
/// the classic tables, and emits machine-readable BENCH_<scenario>.json
/// result files for the perf trajectory.
///
///   kspot_bench --list
///   kspot_bench --scenario msgs_vs_k --threads 4 --json out.json
///   kspot_bench --all --quick --json-dir bench-results
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runner/experiment_engine.hpp"
#include "runner/report.hpp"
#include "runner/scenario_registry.hpp"
#include "scenarios.hpp"
#include "util/string_util.hpp"

namespace {

using namespace kspot;

constexpr const char* kUsage = R"(kspot_bench — KSpot experiment engine

Usage:
  kspot_bench --list
  kspot_bench --scenario NAME [--scenario NAME ...] [options]
  kspot_bench --all [options]

Selection:
  --list              List registered scenarios and exit.
  --scenario NAME     Run one scenario (repeatable; comma lists allowed).
  --all               Run every registered scenario.

Execution:
  --threads N         Worker threads (default: hardware concurrency;
                      results are identical for any N).
  --quick             Reduced axes/epochs for smoke runs.
  --seed N            Re-base every scenario's sweep on seed N (default:
                      each scenario's published seed).
  --shards N          Run epoch waves over N parallel cluster-head lanes
                      inside each trial (default 1 = serial; results are
                      bit-identical for any N, only wall-clock changes).

Observability (off by default; enabling changes no result bit):
  --obs               Enable the metrics registry AND the span tracer.
  --metrics-out PATH  Write the metrics JSON snapshot to PATH after the run
                      (implies metrics on).
  --trace-out PATH    Write a chrome://tracing-loadable trace-event JSON to
                      PATH after the run (implies tracing on).

Output:
  --json PATH         Write JSON results to PATH (single scenario only).
  --json-dir DIR      Write BENCH_<scenario>.json per scenario into DIR.
  --no-table          Suppress the human-readable tables.
  --help              This text.
)";

struct CliOptions {
  bool list = false;
  bool all = false;
  bool quick = false;
  bool table = true;
  size_t threads = 0;  // 0 = hardware concurrency
  size_t shards = 1;   // per-trial epoch-wave lanes (1 = serial path)
  uint64_t seed = 0;
  bool obs = false;
  std::vector<std::string> scenarios;
  std::string json_path;
  std::string json_dir;
  std::string metrics_out;
  std::string trace_out;
};

/// Strict base-10 parse: the whole token must be digits.
bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  uint64_t value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* out, std::string* error) {
  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      *error = std::string(flag) + " requires a value";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (arg == "--list") {
      out->list = true;
    } else if (arg == "--all") {
      out->all = true;
    } else if (arg == "--quick") {
      out->quick = true;
    } else if (arg == "--no-table") {
      out->table = false;
    } else if (arg == "--scenario") {
      const char* value = need_value(i, "--scenario");
      if (value == nullptr) return false;
      for (const std::string& name : util::Split(value, ',')) {
        if (!name.empty()) out->scenarios.push_back(name);
      }
    } else if (arg == "--threads") {
      const char* value = need_value(i, "--threads");
      if (value == nullptr) return false;
      uint64_t threads = 0;
      if (!ParseUint(value, &threads)) {
        *error = std::string("--threads expects a non-negative integer, got '") + value + "'";
        return false;
      }
      out->threads = static_cast<size_t>(threads);
    } else if (arg == "--shards") {
      const char* value = need_value(i, "--shards");
      if (value == nullptr) return false;
      uint64_t shards = 0;
      if (!ParseUint(value, &shards) || shards == 0) {
        *error = std::string("--shards expects a positive integer, got '") + value + "'";
        return false;
      }
      out->shards = static_cast<size_t>(shards);
    } else if (arg == "--seed") {
      const char* value = need_value(i, "--seed");
      if (value == nullptr) return false;
      if (!ParseUint(value, &out->seed)) {
        *error = std::string("--seed expects a non-negative integer, got '") + value + "'";
        return false;
      }
    } else if (arg == "--obs") {
      out->obs = true;
    } else if (arg == "--metrics-out") {
      const char* value = need_value(i, "--metrics-out");
      if (value == nullptr) return false;
      out->metrics_out = value;
    } else if (arg == "--trace-out") {
      const char* value = need_value(i, "--trace-out");
      if (value == nullptr) return false;
      out->trace_out = value;
    } else if (arg == "--json") {
      const char* value = need_value(i, "--json");
      if (value == nullptr) return false;
      out->json_path = value;
    } else if (arg == "--json-dir") {
      const char* value = need_value(i, "--json-dir");
      if (value == nullptr) return false;
      out->json_dir = value;
    } else {
      *error = "unknown argument '" + arg + "' (see --help)";
      return false;
    }
  }
  return true;
}

void PrintList(const runner::ScenarioRegistry& registry) {
  std::printf("%zu registered scenarios:\n\n", registry.size());
  size_t width = 0;
  for (const auto* s : registry.All()) width = std::max(width, s->name.size());
  for (const auto* s : registry.All()) {
    std::printf("  %-*s  %-4s %s\n", static_cast<int>(width), s->name.c_str(), s->id.c_str(),
                s->title.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  runner::ScenarioRegistry registry;
  bench::RegisterAllScenarios(registry);

  CliOptions cli;
  std::string error;
  if (!ParseArgs(argc, argv, &cli, &error)) {
    std::fprintf(stderr, "kspot_bench: %s\n", error.c_str());
    return 2;
  }

  if (cli.list) {
    PrintList(registry);
    return 0;
  }
  if (!cli.all && cli.scenarios.empty()) {
    std::fprintf(stderr, "kspot_bench: nothing to run (use --scenario, --all or --list)\n");
    return 2;
  }
  if (!cli.json_path.empty() && (cli.all || cli.scenarios.size() > 1)) {
    std::fprintf(stderr, "kspot_bench: --json works with exactly one scenario; "
                         "use --json-dir for multi-scenario runs\n");
    return 2;
  }

  // Every requested name is validated even when --all also appeared, so a
  // typo in a CI script fails loudly instead of being masked by the
  // catch-all.
  std::vector<const runner::Scenario*> selected;
  for (const std::string& name : cli.scenarios) {
    const runner::Scenario* s = registry.Find(name);
    if (s == nullptr) {
      std::fprintf(stderr, "kspot_bench: unknown scenario '%s'; known scenarios:\n",
                   name.c_str());
      for (const std::string& known : registry.Names()) {
        std::fprintf(stderr, "  %s\n", known.c_str());
      }
      return 2;
    }
    selected.push_back(s);
  }
  if (cli.all) selected = registry.All();

  if (!cli.json_dir.empty()) {
    // Create it before any trial runs so a typo doesn't cost a full sweep.
    std::error_code ec;
    std::filesystem::create_directories(cli.json_dir, ec);
    if (ec) {
      std::fprintf(stderr, "kspot_bench: cannot create --json-dir '%s': %s\n",
                   cli.json_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }

  // Observability switches go up before any trial runs; the golden suite
  // pins that this changes wall-clock only, never a result bit.
  if (cli.obs || !cli.metrics_out.empty()) obs::SetMetricsEnabled(true);
  if (cli.obs || !cli.trace_out.empty()) obs::SetTracingEnabled(true);

  runner::ExperimentEngine::Options engine_opt;
  engine_opt.threads = cli.threads;
  engine_opt.quick = cli.quick;
  engine_opt.seed = cli.seed;
  engine_opt.shards = cli.shards;
  runner::ExperimentEngine engine(engine_opt);

  int failures = 0;
  for (const runner::Scenario* scenario : selected) {
    runner::ScenarioRun run = engine.Run(*scenario);
    if (cli.table) {
      std::fputs(runner::RenderTable(run).c_str(), stdout);
    }
    std::string json_target;
    if (!cli.json_path.empty()) {
      json_target = cli.json_path;
    } else if (!cli.json_dir.empty()) {
      json_target = cli.json_dir + "/" + runner::DefaultJsonFileName(run.name);
    }
    if (!json_target.empty()) {
      util::Status status = runner::WriteJsonFile(run, json_target);
      if (!status.ok()) {
        std::fprintf(stderr, "kspot_bench: %s\n", status.message().c_str());
        return 1;
      }
      std::fprintf(stdout, "wrote %s\n", json_target.c_str());
    }
    if (!run.AllOk()) {
      for (const runner::TrialResult& t : run.trials) {
        if (!t.ok) {
          std::fprintf(stderr, "kspot_bench: %s trial %zu failed: %s\n", run.name.c_str(),
                       t.spec.index, t.error.c_str());
        }
      }
      ++failures;
    }
  }

  if (!cli.metrics_out.empty()) {
    std::ofstream out(cli.metrics_out);
    if (!out) {
      std::fprintf(stderr, "kspot_bench: cannot open --metrics-out '%s'\n",
                   cli.metrics_out.c_str());
      return 1;
    }
    out << obs::Registry().Snapshot().ToJson() << "\n";
    std::fprintf(stdout, "wrote %s\n", cli.metrics_out.c_str());
  }
  if (!cli.trace_out.empty()) {
    std::ofstream out(cli.trace_out);
    if (!out) {
      std::fprintf(stderr, "kspot_bench: cannot open --trace-out '%s'\n", cli.trace_out.c_str());
      return 1;
    }
    obs::GlobalTracer().WriteChromeTrace(out);
    out << "\n";
    std::fprintf(stdout, "wrote %s (%zu spans, %llu dropped)\n", cli.trace_out.c_str(),
                 obs::GlobalTracer().size(),
                 static_cast<unsigned long long>(obs::GlobalTracer().dropped()));
  }
  return failures == 0 ? 0 : 1;
}
