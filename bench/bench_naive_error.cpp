/// E9 — how often is the cheap-but-wrongful Naive local pruning actually
/// wrong? Fraction of epochs with an incorrect top-k set / ranking across
/// many random deployments, vs K. This motivates the gamma-descriptor
/// machinery: the Figure-1 anomaly is not a corner case.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/naive.hpp"
#include "core/oracle.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

int main() {
  bench::Banner("E9", "Naive pruning error rate vs K (49 nodes, 16 rooms, 40 topologies)");
  const size_t kNodes = 49;
  const size_t kRooms = 16;
  const size_t kEpochs = 10;
  const size_t kTopologies = 40;

  util::TablePrinter table({"K", "wrong-ranking epochs", "wrong-set epochs", "mean recall"});
  for (int k : {1, 2, 4, 8}) {
    core::QuerySpec spec;
    spec.k = k;
    spec.agg = agg::AggKind::kAvg;
    spec.grouping = core::Grouping::kRoom;
    spec.domain_max = 100.0;

    size_t wrong_ranking = 0;
    size_t wrong_set = 0;
    size_t total = 0;
    double recall_sum = 0.0;
    for (uint64_t seed = 0; seed < kTopologies; ++seed) {
      auto bed = bench::Bed::Clustered(kNodes, kRooms, 1000 + seed);
      auto gen = bed.RoomData(seed, /*room_sigma=*/1.0, /*noise_sigma=*/4.0,
                              /*global_sigma=*/0.0, /*quantize_step=*/0.0);
      auto oracle_gen = bed.RoomData(seed, 1.0, 4.0, 0.0, 0.0);
      core::Oracle oracle(&bed.topology, oracle_gen.get(), spec);
      core::NaiveTopK naive(bed.net.get(), gen.get(), spec);
      for (size_t e = 0; e < kEpochs; ++e) {
        core::TopKResult got = naive.RunEpoch(static_cast<sim::Epoch>(e));
        core::TopKResult want = oracle.TopK(static_cast<sim::Epoch>(e));
        double recall = got.RecallAgainst(want);
        wrong_ranking += !got.Matches(want);
        wrong_set += recall < 1.0;
        recall_sum += recall;
        ++total;
      }
    }
    table.AddRow(std::vector<std::string>{
        std::to_string(k),
        util::FormatDouble(100.0 * static_cast<double>(wrong_ranking) / total, 1) + "%",
        util::FormatDouble(100.0 * static_cast<double>(wrong_set) / total, 1) + "%",
        util::FormatDouble(100.0 * recall_sum / total, 1) + "%"});
  }
  table.Print(std::cout);
  std::printf("\n'wrong ranking' counts value or order errors; 'wrong set' counts epochs\n"
              "where a true top-K group was missing entirely (the (D,76.5) failure).\n");
  return 0;
}
