/// E9 — how often is the cheap-but-wrongful Naive local pruning actually
/// wrong? Fraction of epochs with an incorrect top-k set / ranking across
/// many random deployments, vs K. This motivates the gamma-descriptor
/// machinery: the Figure-1 anomaly is not a corner case. Each (K, topology)
/// pair is its own trial, so the sweep parallelizes across deployments;
/// aggregate the JSON per K to recover the paper-style summary table.
#include "bench_util.hpp"
#include "scenarios.hpp"

namespace kspot::bench {

void RegisterNaiveError(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "naive_error";
  s.id = "E9";
  s.title = "Naive pruning error rate vs K (49 nodes, 16 rooms, random topologies)";
  s.notes =
      "wrong_ranking_rate counts value or order errors; wrong_set_rate counts epochs\n"
      "where a true top-K group was missing entirely (the (D,76.5) failure).\n"
      "Aggregate over the topology axis for the per-K error rates.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t nodes = 49;
    const size_t rooms = 16;
    const size_t epochs = opt.quick ? 5 : 10;
    const size_t topologies = opt.quick ? 6 : 40;
    const uint64_t base_seed = opt.seed != 0 ? opt.seed : 1000;
    const std::vector<int> ks = opt.quick ? std::vector<int>{1, 4}
                                          : std::vector<int>{1, 2, 4, 8};

    std::vector<runner::Trial> trials;
    for (int k : ks) {
      for (uint64_t topo = 0; topo < topologies; ++topo) {
        runner::Trial t;
        t.spec.algorithm = "Naive";
        t.spec.seed = base_seed + topo;
        t.spec.params = {{"k", std::to_string(k)}, {"topology", std::to_string(topo)}};
        t.run = [=]() -> runner::MetricList {
          core::QuerySpec spec = RoomAvgSpec(k);
          auto bed = Bed::Clustered(nodes, rooms, base_seed + topo);
          auto gen = bed.RoomData(topo, /*room_sigma=*/1.0, /*noise_sigma=*/4.0,
                                  /*global_sigma=*/0.0, /*quantize_step=*/0.0);
          auto oracle_gen = bed.RoomData(topo, 1.0, 4.0, 0.0, 0.0);
          core::Oracle oracle(&bed.topology, oracle_gen.get(), spec);
          core::NaiveTopK naive(bed.net.get(), gen.get(), spec);
          size_t wrong_ranking = 0;
          size_t wrong_set = 0;
          double recall_sum = 0.0;
          for (size_t e = 0; e < epochs; ++e) {
            core::TopKResult got = naive.RunEpoch(static_cast<sim::Epoch>(e));
            core::TopKResult want = oracle.TopK(static_cast<sim::Epoch>(e));
            double recall = got.RecallAgainst(want);
            wrong_ranking += !got.Matches(want);
            wrong_set += recall < 1.0;
            recall_sum += recall;
          }
          double total = static_cast<double>(epochs);
          return {{"wrong_ranking_rate", static_cast<double>(wrong_ranking) / total},
                  {"wrong_set_rate", static_cast<double>(wrong_set) / total},
                  {"mean_recall", recall_sum / total}};
        };
        trials.push_back(std::move(t));
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
