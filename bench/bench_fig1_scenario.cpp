/// E1 — reproduces Figure 1 of the paper: the 9-sensor / 4-room building
/// with a TOP-1 AVG(sound) query. Each algorithm answers the constant scene
/// for 10 epochs; the metrics expose the wrongful naive answer (D, 76.5)
/// versus the correct (C, 75) and the per-algorithm message/byte cost.
#include "bench_util.hpp"
#include "scenarios.hpp"

namespace kspot::bench {

void RegisterFig1Scenario(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "fig1_scenario";
  s.id = "E1";
  s.title = "Figure-1 scenario: TOP-1 AVG(sound) over 4 rooms, 9 sensors";
  s.notes =
      "Naive reports group 3 (room D, 76.5) because s4 wrongfully eliminated (D, 39) —\n"
      "exactly the anomaly of Section III-A. MINT reports the correct group 2 (room C,\n"
      "75) while transmitting nothing at all in steady state on this static scene.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t epochs = opt.quick ? 5 : 10;
    const size_t shards = opt.shards;

    std::vector<runner::Trial> trials;
    for (SnapshotAlgo algo : {SnapshotAlgo::kTag, SnapshotAlgo::kNaive, SnapshotAlgo::kMint}) {
      runner::Trial t;
      t.spec.algorithm = AlgoName(algo);
      t.spec.seed = 42;  // Figure-1 beds are fully deterministic.
      t.run = [=]() -> runner::MetricList {
        core::QuerySpec spec = RoomAvgSpec(1);
        data::ConstantGenerator oracle_gen(sim::Figure1Readings());
        auto oracle_bed = Bed::Figure1();
        core::Oracle oracle(&oracle_bed.topology, &oracle_gen, spec);

        auto bed = Bed::Figure1();
        bed.EnableSharding(shards);
        data::ConstantGenerator gen(sim::Figure1Readings());
        auto algorithm = MakeSnapshotAlgo(algo, bed.net.get(), &gen, spec);
        core::TopKResult last;
        sim::TrafficCounters after_first;
        for (size_t e = 0; e < epochs; ++e) {
          last = algorithm->RunEpoch(static_cast<sim::Epoch>(e));
          if (e == 0) after_first = bed.net->total();
        }
        auto steady = bed.net->total().Since(after_first);
        bool correct = last.Matches(oracle.TopK(static_cast<sim::Epoch>(epochs - 1)));
        return {{"answer_group", static_cast<double>(last.items.at(0).group)},
                {"answer_value", last.items.at(0).value},
                {"correct", correct ? 1.0 : 0.0},
                {"msgs_per_epoch", PerEpoch(bed.net->total().messages, epochs)},
                {"bytes_per_epoch", PerEpoch(bed.net->total().payload_bytes, epochs)},
                {"steady_msgs_per_epoch", SteadyPerEpoch(steady.messages, epochs)},
                {"steady_bytes_per_epoch", SteadyPerEpoch(steady.payload_bytes, epochs)}};
      };
      trials.push_back(std::move(t));
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
