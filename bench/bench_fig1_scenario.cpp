/// E1 — reproduces Figure 1 of the paper: the 9-sensor / 4-room building
/// with a TOP-1 AVG(sound) query. Shows the exact per-room aggregates, the
/// wrongful naive answer (D, 76.5) versus the correct (C, 75), and the
/// per-algorithm message/byte cost of answering the query.
#include <cstdio>
#include <iostream>

#include "agg/group_view.hpp"
#include "bench_util.hpp"
#include "core/mint.hpp"
#include "core/naive.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

namespace {

core::QuerySpec Fig1Spec() {
  core::QuerySpec spec;
  spec.k = 1;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kRoom;
  spec.domain_min = 0.0;
  spec.domain_max = 100.0;
  return spec;
}

}  // namespace

int main() {
  bench::Banner("E1", "Figure-1 scenario: TOP-1 AVG(sound) over 4 rooms, 9 sensors");

  // Ground truth per room.
  data::ConstantGenerator oracle_gen(sim::Figure1Readings());
  auto fig_bed = bench::Bed::Figure1();
  core::Oracle oracle(&fig_bed.topology, &oracle_gen, Fig1Spec());
  std::printf("\nExact per-room averages (sink view V0):\n");
  util::TablePrinter rooms({"room", "AVG(sound)"});
  for (const auto& item : oracle.FullView(0).Ranked(agg::AggKind::kAvg)) {
    rooms.AddRow(std::vector<std::string>{sim::Figure1RoomName(item.group),
                                          util::FormatDouble(item.value)});
  }
  rooms.Print(std::cout);

  // Run each algorithm over a few epochs of the constant scenario.
  util::TablePrinter table({"algorithm", "answer", "value", "correct", "msgs/epoch",
                            "bytes/epoch", "steady msgs/epoch", "steady bytes/epoch"});
  const size_t kEpochs = 10;
  auto run = [&](const char* name, auto make_algo) {
    auto bed = bench::Bed::Figure1();
    data::ConstantGenerator gen(sim::Figure1Readings());
    auto algo = make_algo(bed, gen);
    core::TopKResult last;
    sim::TrafficCounters after_first;
    for (size_t e = 0; e < kEpochs; ++e) {
      last = algo->RunEpoch(static_cast<sim::Epoch>(e));
      if (e == 0) after_first = bed.net->total();
    }
    auto steady = bed.net->total().Since(after_first);
    bool correct = last.Matches(oracle.TopK(kEpochs - 1));
    table.AddRow(std::vector<std::string>{
        name, sim::Figure1RoomName(last.items.at(0).group),
        util::FormatDouble(last.items.at(0).value), correct ? "yes" : "NO",
        util::FormatDouble(static_cast<double>(bed.net->total().messages) / kEpochs, 1),
        util::FormatDouble(static_cast<double>(bed.net->total().payload_bytes) / kEpochs, 1),
        util::FormatDouble(static_cast<double>(steady.messages) / (kEpochs - 1), 1),
        util::FormatDouble(static_cast<double>(steady.payload_bytes) / (kEpochs - 1), 1)});
  };

  run("TAG (centralized top-k)", [&](bench::Bed& bed, data::DataGenerator& gen) {
    return std::make_unique<core::TagTopK>(bed.net.get(), &gen, Fig1Spec());
  });
  run("Naive local pruning", [&](bench::Bed& bed, data::DataGenerator& gen) {
    return std::make_unique<core::NaiveTopK>(bed.net.get(), &gen, Fig1Spec());
  });
  run("MINT (KSpot)", [&](bench::Bed& bed, data::DataGenerator& gen) {
    return std::make_unique<core::MintViews>(bed.net.get(), &gen, Fig1Spec());
  });

  std::printf("\nPer-algorithm results over %zu epochs:\n", kEpochs);
  table.Print(std::cout);
  std::printf(
      "\nNote: Naive reports (D, 76.5) because s4 wrongfully eliminated (D, 39) —\n"
      "exactly the anomaly of Section III-A. MINT reports the correct (C, 75)\n"
      "while transmitting nothing at all in steady state on this static scene.\n");
  return 0;
}
