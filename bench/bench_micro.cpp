/// M1 — microbenchmarks of the hot data-plane primitives (google-benchmark):
/// partial-aggregate merging, group-view ranking, the wire codec, Bloom
/// filter probes, the RNG, and MicroHash top-k scans. These bound the CPU
/// cost a mote-class port would pay per epoch.
///
/// Unlike the E* experiments this is not a registry Scenario: it measures
/// nanosecond-scale primitives, not sweep grids, so it stays on the
/// google-benchmark harness. CMake builds it as `kspot_microbench` when the
/// benchmark package is available and skips it quietly otherwise.
#include <benchmark/benchmark.h>

#include "agg/group_view.hpp"
#include "net/serializer.hpp"
#include "storage/flash_sim.hpp"
#include "storage/microhash.hpp"
#include "util/bloom_filter.hpp"
#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace {

using namespace kspot;

void BM_RngNextU64(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngGaussian(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextGaussian(0, 1));
  }
}
BENCHMARK(BM_RngGaussian);

void BM_PartialAggMerge(benchmark::State& state) {
  agg::PartialAgg a = agg::PartialAgg::FromValue(40.0);
  agg::PartialAgg b = agg::PartialAgg::FromValue(75.0);
  for (auto _ : state) {
    agg::PartialAgg c = a;
    c.Merge(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_PartialAggMerge);

void BM_GroupViewMerge(benchmark::State& state) {
  size_t groups = static_cast<size_t>(state.range(0));
  util::Rng rng(2);
  agg::GroupView a, b;
  for (size_t g = 0; g < groups; ++g) {
    a.AddReading(static_cast<sim::GroupId>(g), rng.NextDouble(0, 100));
    b.AddReading(static_cast<sim::GroupId>(g), rng.NextDouble(0, 100));
  }
  for (auto _ : state) {
    agg::GroupView merged = a;
    merged.MergeView(b);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(groups));
}
BENCHMARK(BM_GroupViewMerge)->Arg(8)->Arg(64)->Arg(512);

void BM_GroupViewTopK(benchmark::State& state) {
  size_t groups = static_cast<size_t>(state.range(0));
  util::Rng rng(3);
  agg::GroupView view;
  for (size_t g = 0; g < groups; ++g) {
    view.AddReading(static_cast<sim::GroupId>(g), rng.NextDouble(0, 100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.TopK(agg::AggKind::kAvg, 5));
  }
}
BENCHMARK(BM_GroupViewTopK)->Arg(16)->Arg(256);

void BM_ViewCodecRoundTrip(benchmark::State& state) {
  size_t groups = static_cast<size_t>(state.range(0));
  util::Rng rng(4);
  agg::GroupView view;
  for (size_t g = 0; g < groups; ++g) {
    view.AddReading(static_cast<sim::GroupId>(g), rng.NextDouble(0, 100));
  }
  for (auto _ : state) {
    net::Writer w;
    agg::codec::WriteView(w, agg::AggKind::kAvg, view);
    net::Reader r(w.bytes());
    agg::GroupView parsed;
    agg::codec::ReadView(r, agg::AggKind::kAvg, &parsed);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(agg::codec::ViewWireBytes(agg::AggKind::kAvg,
                                                                         groups)));
}
BENCHMARK(BM_ViewCodecRoundTrip)->Arg(8)->Arg(64);

void BM_BloomInsertProbe(benchmark::State& state) {
  util::BloomFilter bf = util::BloomFilter::WithExpectedItems(256, 0.05);
  for (uint64_t k = 0; k < 256; ++k) bf.Insert(k);
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.MayContain(probe++));
  }
}
BENCHMARK(BM_BloomInsertProbe);

void BM_FixedPointEncode(benchmark::State& state) {
  double v = 75.37;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::fixed_point::Encode(v));
    v += 0.001;
  }
}
BENCHMARK(BM_FixedPointEncode);

void BM_MicroHashTopK(benchmark::State& state) {
  storage::FlashSim flash;
  storage::MicroHashIndex index(&flash, 0, 100, 16);
  util::Rng rng(5);
  for (sim::Epoch e = 0; e < 2000; ++e) {
    index.Insert(e, rng.NextDouble(0, 100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TopK(10));
  }
}
BENCHMARK(BM_MicroHashTopK);

}  // namespace
