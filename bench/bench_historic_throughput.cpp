/// E20 — continuous historic serving at production scale.
///
/// The delta path exists to make the historic (vertical) operator's
/// per-epoch cost O(delta) instead of O(W*n): every node appends one
/// reading, one converge-cast ships just the new epoch's partial, and the
/// sink retracts the evicted epoch from its materialized window view.
/// Scratch mode — re-collecting every node's whole window each epoch — is
/// the honest strawman this scenario measures against.
///
/// Rows sweep W x n x {delta, scratch} x {flash off, on} and report
/// epochs_per_sec (wall-clock, like E16), per-epoch radio traffic, and
/// flash I/O; a final row turns on cluster-neighbor predictive suppression
/// and reports the traffic reduction against its unsuppressed twin plus the
/// observed max reconstruction error (bounded by eps by construction).
///
/// CI runs this quick with --threads 1 and bench/check_regression.py gates
/// epochs_per_sec against bench/baseline/BENCH_E20_historic_throughput.json;
/// a separate CI assert pins delta >= 5x scratch at W >= 64.
#include <chrono>
#include <string>

#include "bench_util.hpp"
#include "core/historic_stream.hpp"
#include "scenarios.hpp"
#include "util/stats.hpp"

namespace kspot::bench {

namespace {

struct HistoricConfig {
  size_t nodes = 200;
  size_t rooms = 16;
  size_t window = 64;
  size_t epochs = 256;
  uint64_t seed = 201;
  bool incremental = true;
  /// Archive evicted readings to simulated flash AND charge the I/O into
  /// the energy ledger (both halves of the flash-aware path).
  bool flash = false;
  bool suppression = false;
  double suppression_eps = 0.5;
};

struct HistoricStats {
  double epochs_per_sec = 0.0;
  util::DistSummary wall_ms;
  double msgs_per_epoch = 0.0;
  double bytes_per_epoch = 0.0;
  double flash_bytes_per_epoch = 0.0;
  double flash_energy_mj_per_epoch = 0.0;
  double suppression_ratio = 0.0;
  double recon_err_max = 0.0;
};

HistoricStats RunHistoric(const HistoricConfig& cfg) {
  using Clock = std::chrono::steady_clock;
  auto bed = Bed::Grid(cfg.nodes, cfg.rooms, cfg.seed);
  auto gen = bed.RoomData(cfg.seed);
  core::HistoricStreamOptions hopt;
  hopt.k = 3;
  hopt.agg = agg::AggKind::kAvg;
  hopt.window = cfg.window;
  hopt.incremental = cfg.incremental;
  hopt.archive_to_flash = cfg.flash;
  hopt.flash_accounting = cfg.flash;
  hopt.suppression = cfg.suppression;
  hopt.suppression_eps = cfg.suppression_eps;
  core::HistoricStream stream(bed.net.get(), gen.get(), hopt);

  util::Percentiles epoch_ms;
  Clock::time_point run_start = Clock::now();
  for (size_t e = 0; e < cfg.epochs; ++e) {
    Clock::time_point epoch_start = Clock::now();
    stream.RunEpoch(static_cast<sim::Epoch>(e));
    epoch_ms.Add(std::chrono::duration<double, std::milli>(Clock::now() - epoch_start).count());
  }
  double total_s = std::chrono::duration<double>(Clock::now() - run_start).count();

  HistoricStats stats;
  stats.epochs_per_sec = total_s > 0.0 ? static_cast<double>(cfg.epochs) / total_s : 0.0;
  stats.wall_ms = epoch_ms.Summary();
  stats.msgs_per_epoch = PerEpoch(bed.net->total().messages, cfg.epochs);
  stats.bytes_per_epoch = PerEpoch(bed.net->total().payload_bytes, cfg.epochs);
  storage::IoCounters io = stream.FlashIoTotal();
  stats.flash_bytes_per_epoch = PerEpoch(io.bytes, cfg.epochs);
  stats.flash_energy_mj_per_epoch = PerEpoch(1e3 * io.energy_j, cfg.epochs);
  stats.suppression_ratio = stream.suppression_ratio();
  stats.recon_err_max = stream.max_reconstruction_error();
  return stats;
}

}  // namespace

void RegisterHistoricThroughput(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "historic_throughput";
  s.id = "E20";
  s.title = "continuous historic serving: delta vs from-scratch, flash, suppression";
  s.notes =
      "epochs_per_sec is wall-clock simulator speed (compare with --threads 1, like\n"
      "E16); delta and scratch rows answer identically — only cost differs. Flash\n"
      "rows archive evicted readings through MicroHash and charge the I/O; the\n"
      "suppression row reports traffic_reduction vs its unsuppressed twin and the\n"
      "observed max reconstruction error (<= eps by construction).\n"
      "bench/check_regression.py gates CI on this scenario's JSON.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    struct Point {
      size_t nodes;
      size_t rooms;
    };
    const std::vector<Point> points = {{49, 8}, {200, 16}};
    const std::vector<size_t> windows =
        opt.quick ? std::vector<size_t>{16, 64} : std::vector<size_t>{16, 64, 128};
    const uint64_t seed = opt.seed != 0 ? opt.seed : 201;
    const size_t epochs = opt.quick ? 96 : 256;

    auto run_metrics = [](const HistoricConfig& cfg) -> runner::MetricList {
      HistoricStats st = RunHistoric(cfg);
      return {{"epochs_per_sec", st.epochs_per_sec},
              {"wall_ms_p50", st.wall_ms.p50},
              {"wall_ms_p95", st.wall_ms.p95},
              {"msgs_per_epoch", st.msgs_per_epoch},
              {"bytes_per_epoch", st.bytes_per_epoch},
              {"flash_bytes_per_epoch", st.flash_bytes_per_epoch},
              {"flash_energy_mj_per_epoch", st.flash_energy_mj_per_epoch}};
    };

    std::vector<runner::Trial> trials;
    for (const Point& point : points) {
      for (size_t window : windows) {
        for (bool incremental : {true, false}) {
          for (bool flash : {false, true}) {
            // Flash archiving exercises the same eviction stream either
            // way; one mode's flash rows are enough to price it.
            if (flash && !incremental) continue;
            runner::Trial t;
            t.spec.algorithm = incremental ? "HIST-delta" : "HIST-scratch";
            t.spec.seed = seed;
            t.spec.params = {{"n", std::to_string(point.nodes)},
                             {"w", std::to_string(window)},
                             {"flash", flash ? "on" : "off"}};
            HistoricConfig cfg;
            cfg.nodes = point.nodes;
            cfg.rooms = point.rooms;
            cfg.window = window;
            cfg.epochs = epochs;
            cfg.seed = seed;
            cfg.incremental = incremental;
            cfg.flash = flash;
            t.run = [cfg, run_metrics]() -> runner::MetricList { return run_metrics(cfg); };
            trials.push_back(std::move(t));
          }
        }
      }
    }
    // The suppression row: one delta-mode bed with cluster-neighbor
    // predictive suppression on, paired internally against its unsuppressed
    // twin so traffic_reduction is a single self-contained metric.
    {
      runner::Trial t;
      t.spec.algorithm = "HIST-delta+suppress";
      t.spec.seed = seed;
      t.spec.params = {{"n", "200"}, {"w", "64"}, {"eps", "2"}};
      HistoricConfig cfg;
      cfg.nodes = 200;
      cfg.rooms = 16;
      cfg.window = 64;
      cfg.epochs = epochs;
      cfg.seed = seed;
      cfg.suppression = true;
      cfg.suppression_eps = 2.0;
      t.run = [cfg]() -> runner::MetricList {
        HistoricStats on = RunHistoric(cfg);
        HistoricConfig base = cfg;
        base.suppression = false;
        HistoricStats off = RunHistoric(base);
        double reduction = off.bytes_per_epoch > 0.0
                               ? 1.0 - on.bytes_per_epoch / off.bytes_per_epoch
                               : 0.0;
        return {{"epochs_per_sec", on.epochs_per_sec},
                {"bytes_per_epoch", on.bytes_per_epoch},
                {"traffic_reduction", reduction},
                {"suppression_ratio", on.suppression_ratio},
                {"recon_err_max", on.recon_err_max},
                {"recon_err_bound", cfg.suppression_eps}};
      };
      trials.push_back(std::move(t));
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
