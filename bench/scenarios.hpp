#pragma once

#include <cstdio>
#include <cstdlib>

#include "runner/scenario_registry.hpp"

namespace kspot::bench {

/// Registration failures (duplicate names, missing factories) are
/// programming errors in the catalogue: abort loudly instead of silently
/// dropping a scenario from --list/--all.
inline void RegisterOrDie(runner::ScenarioRegistry& registry, runner::Scenario scenario) {
  util::Status status = registry.Register(std::move(scenario));
  if (!status.ok()) {
    std::fprintf(stderr, "scenario registration failed: %s\n", status.message().c_str());
    std::abort();
  }
}

// One registration function per experiment (E1..E12). Each lives in the
// bench_*.cpp translation unit that used to be the experiment's standalone
// main; the kspot_bench CLI multiplexes over the registry.
void RegisterFig1Scenario(runner::ScenarioRegistry& registry);        // E1
void RegisterFig3GuiScenario(runner::ScenarioRegistry& registry);     // E2
void RegisterMsgsVsK(runner::ScenarioRegistry& registry);             // E3
void RegisterMsgsVsN(runner::ScenarioRegistry& registry);             // E4
void RegisterLifetime(runner::ScenarioRegistry& registry);            // E5
void RegisterTjaVsBaselines(runner::ScenarioRegistry& registry);      // E6
void RegisterTjaPhases(runner::ScenarioRegistry& registry);           // E7
void RegisterFilaVsMint(runner::ScenarioRegistry& registry);          // E8
void RegisterNaiveError(runner::ScenarioRegistry& registry);          // E9
void RegisterLoss(runner::ScenarioRegistry& registry);                // E10
void RegisterHistoryLocal(runner::ScenarioRegistry& registry);        // E11
void RegisterAblationMint(runner::ScenarioRegistry& registry);        // E12
void RegisterChurnLifetime(runner::ScenarioRegistry& registry);       // E13
void RegisterChurnAccuracy(runner::ScenarioRegistry& registry);       // E14
void RegisterRepairCost(runner::ScenarioRegistry& registry);          // E15
void RegisterThroughput(runner::ScenarioRegistry& registry);          // E16
void RegisterServerThroughput(runner::ScenarioRegistry& registry);    // E17
void RegisterFanoutThroughput(runner::ScenarioRegistry& registry);    // E18
void RegisterReliabilityTradeoff(runner::ScenarioRegistry& registry); // E19
void RegisterHistoricThroughput(runner::ScenarioRegistry& registry);  // E20

/// Registers every bench scenario.
inline void RegisterAllScenarios(runner::ScenarioRegistry& registry) {
  RegisterFig1Scenario(registry);
  RegisterFig3GuiScenario(registry);
  RegisterMsgsVsK(registry);
  RegisterMsgsVsN(registry);
  RegisterLifetime(registry);
  RegisterTjaVsBaselines(registry);
  RegisterTjaPhases(registry);
  RegisterFilaVsMint(registry);
  RegisterNaiveError(registry);
  RegisterLoss(registry);
  RegisterHistoryLocal(registry);
  RegisterAblationMint(registry);
  RegisterChurnLifetime(registry);
  RegisterChurnAccuracy(registry);
  RegisterRepairCost(registry);
  RegisterThroughput(registry);
  RegisterServerThroughput(registry);
  RegisterFanoutThroughput(registry);
  RegisterReliabilityTradeoff(registry);
  RegisterHistoricThroughput(registry);
}

}  // namespace kspot::bench
