/// E11 — horizontally fragmented historic queries (Section III-B, first
/// case): "TOP K rooms by AVG(sound) over the last W epochs". Compares
/// (a) shipping raw windows to the sink every epoch (the no-local-filtering
/// strawman), (b) local window aggregation + TAG, and (c) local window
/// aggregation + MINT — the KSpot configuration. Expected shape: local
/// aggregation alone collapses cost by ~W; MINT prunes further.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/mint.hpp"
#include "core/tag.hpp"
#include "data/windowed.hpp"
#include "sim/waves.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

namespace {

/// The strawman: every epoch, every node relays its whole raw window
/// (key u16 + value i32 per reading) to the sink, unmerged.
uint64_t ShipWindowsBytesPerEpoch(bench::Bed& bed, data::DataGenerator& gen, size_t window,
                                  size_t epochs) {
  using Entry = std::pair<uint16_t, int32_t>;
  using Msg = std::vector<Entry>;
  for (size_t e = 0; e < epochs; ++e) {
    auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox) -> std::optional<Msg> {
      Msg out;
      for (Msg& child : inbox) out.insert(out.end(), child.begin(), child.end());
      if (node != sim::kSinkId) {
        for (size_t t = 0; t < window; ++t) out.emplace_back(0, 0);
      }
      (void)gen;
      return out;
    };
    auto bytes = [&](const Msg& m) -> size_t { return 5 + 6 * m.size(); };
    sim::UpWave<Msg>::Run(*bed.net, produce, bytes);
  }
  return bed.net->total().payload_bytes / epochs;
}

}  // namespace

int main() {
  bench::Banner("E11", "WITH HISTORY horizontal queries: local filtering savings");
  const size_t kNodes = 49;
  const size_t kRooms = 8;
  const size_t kEpochs = 40;
  const uint64_t kSeed = 31;

  core::QuerySpec spec;
  spec.k = 2;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kRoom;
  spec.domain_max = 100.0;

  util::TablePrinter table({"W", "ship-windows bytes/ep", "local+TAG bytes/ep",
                            "local+MINT bytes/ep", "MINT vs ship savings"});
  for (size_t window : {8, 32, 128}) {
    auto ship_bed = bench::Bed::Clustered(kNodes, kRooms, kSeed);
    auto ship_gen = ship_bed.RoomData(kSeed);
    uint64_t ship = ShipWindowsBytesPerEpoch(ship_bed, *ship_gen, window, 5);

    auto tag_bed = bench::Bed::Clustered(kNodes, kRooms, kSeed);
    auto tag_inner = tag_bed.RoomData(kSeed);
    data::WindowAggregateGenerator tag_gen(tag_inner.get(), kNodes, window, spec.agg);
    core::TagTopK tag(tag_bed.net.get(), &tag_gen, spec);
    auto tag_run = bench::RunSnapshot(tag, *tag_bed.net, nullptr, kEpochs);

    auto mint_bed = bench::Bed::Clustered(kNodes, kRooms, kSeed);
    auto mint_inner = mint_bed.RoomData(kSeed);
    data::WindowAggregateGenerator mint_gen(mint_inner.get(), kNodes, window, spec.agg);
    core::MintViews mint(mint_bed.net.get(), &mint_gen, spec);
    auto mint_run = bench::RunSnapshot(mint, *mint_bed.net, nullptr, kEpochs);

    double savings = 100.0 * (1.0 - mint_run.BytesPerEpoch() / static_cast<double>(ship));
    table.AddRow(std::vector<std::string>{
        std::to_string(window), std::to_string(ship),
        util::FormatDouble(tag_run.BytesPerEpoch(), 0),
        util::FormatDouble(mint_run.BytesPerEpoch(), 0),
        util::FormatDouble(savings, 1) + "%"});
  }
  table.Print(std::cout);
  std::printf("\nLocal search+filtering turns O(W) tuples per node per epoch into one\n"
              "aggregate; window smoothing additionally stabilizes values, which MINT's\n"
              "suppression exploits.\n");
  return 0;
}
