/// E11 — horizontally fragmented historic queries (Section III-B, first
/// case): "TOP K rooms by AVG(sound) over the last W epochs". Compares
/// (a) shipping raw windows to the sink every epoch (the no-local-filtering
/// strawman), (b) local window aggregation + TAG, and (c) local window
/// aggregation + MINT — the KSpot configuration. Expected shape: local
/// aggregation alone collapses cost by ~W; MINT prunes further.
#include <optional>

#include "bench_util.hpp"
#include "data/windowed.hpp"
#include "scenarios.hpp"
#include "sim/waves.hpp"

namespace kspot::bench {

namespace {

/// The strawman: every epoch, every node relays its whole raw window
/// (key u16 + value i32 per reading) to the sink, unmerged.
uint64_t ShipWindowsBytesPerEpoch(Bed& bed, size_t window, size_t epochs) {
  using Entry = std::pair<uint16_t, int32_t>;
  using Msg = std::vector<Entry>;
  for (size_t e = 0; e < epochs; ++e) {
    auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox) -> std::optional<Msg> {
      Msg out;
      for (Msg& child : inbox) out.insert(out.end(), child.begin(), child.end());
      if (node != sim::kSinkId) {
        for (size_t t = 0; t < window; ++t) out.emplace_back(0, 0);
      }
      return out;
    };
    auto bytes = [&](const Msg& m) -> size_t { return 5 + 6 * m.size(); };
    sim::UpWave<Msg>::Run(*bed.net, produce, bytes);
  }
  return bed.net->total().payload_bytes / epochs;
}

}  // namespace

void RegisterHistoryLocal(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "history_local";
  s.id = "E11";
  s.title = "WITH HISTORY horizontal queries: local filtering savings";
  s.notes =
      "Local search+filtering turns O(W) tuples per node per epoch into one\n"
      "aggregate; window smoothing additionally stabilizes values, which MINT's\n"
      "suppression exploits.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t nodes = 49;
    const size_t rooms = 8;
    const size_t epochs = opt.quick ? 10 : 40;
    const uint64_t seed = opt.seed != 0 ? opt.seed : 31;
    const std::vector<size_t> windows = opt.quick ? std::vector<size_t>{8, 32}
                                                  : std::vector<size_t>{8, 32, 128};

    std::vector<runner::Trial> trials;
    for (size_t window : windows) {
      {
        runner::Trial t;
        t.spec.algorithm = "ship-windows";
        t.spec.seed = seed;
        t.spec.params = {{"window", std::to_string(window)}};
        t.run = [=]() -> runner::MetricList {
          auto bed = Bed::Clustered(nodes, rooms, seed);
          uint64_t ship = ShipWindowsBytesPerEpoch(bed, window, 5);
          return {{"bytes_per_epoch", static_cast<double>(ship)}};
        };
        trials.push_back(std::move(t));
      }
      for (SnapshotAlgo algo : {SnapshotAlgo::kTag, SnapshotAlgo::kMint}) {
        runner::Trial t;
        t.spec.algorithm = std::string("local+") + AlgoName(algo);
        t.spec.seed = seed;
        t.spec.params = {{"window", std::to_string(window)}};
        t.run = [=]() -> runner::MetricList {
          core::QuerySpec spec = RoomAvgSpec(2);
          auto bed = Bed::Clustered(nodes, rooms, seed);
          auto inner = bed.RoomData(seed);
          data::WindowAggregateGenerator gen(inner.get(), nodes, window, spec.agg);
          auto algorithm = MakeSnapshotAlgo(algo, bed.net.get(), &gen, spec);
          SnapshotRun run = RunSnapshot(*algorithm, *bed.net, nullptr, epochs);
          return {{"bytes_per_epoch", run.BytesPerEpoch()},
                  {"msgs_per_epoch", run.MsgsPerEpoch()}};
        };
        trials.push_back(std::move(t));
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
