/// E11 — horizontally fragmented historic queries (Section III-B, first
/// case): "TOP K rooms by AVG(sound) over the last W epochs". Compares
/// (a) shipping raw windows to the sink every epoch (the no-local-filtering
/// strawman), (b) local window aggregation + TAG, and (c) local window
/// aggregation + MINT — the KSpot configuration. Expected shape: local
/// aggregation alone collapses cost by ~W; MINT prunes further.
#include <optional>

#include "bench_util.hpp"
#include "data/windowed.hpp"
#include "scenarios.hpp"
#include "sim/waves.hpp"

namespace kspot::bench {

namespace {

struct HistoryLocalConfig {
  size_t nodes = 49;
  size_t rooms = 8;
  size_t window = 32;
  size_t epochs = 40;
  uint64_t seed = 31;
};

/// The strawman: every epoch, every node relays its whole raw window
/// (key u16 + value i32 per reading) to the sink, unmerged.
runner::MetricList RunShipWindows(const HistoryLocalConfig& cfg) {
  using Entry = std::pair<uint16_t, int32_t>;
  using Msg = std::vector<Entry>;
  auto bed = Bed::Clustered(cfg.nodes, cfg.rooms, cfg.seed);
  for (size_t e = 0; e < cfg.epochs; ++e) {
    auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox) -> std::optional<Msg> {
      Msg out;
      for (Msg& child : inbox) out.insert(out.end(), child.begin(), child.end());
      if (node != sim::kSinkId) {
        for (size_t t = 0; t < cfg.window; ++t) out.emplace_back(0, 0);
      }
      return out;
    };
    auto bytes = [&](const Msg& m) -> size_t { return 5 + 6 * m.size(); };
    sim::UpWave<Msg>::Run(*bed.net, produce, bytes);
  }
  return {{"bytes_per_epoch", PerEpoch(bed.net->total().payload_bytes, cfg.epochs)},
          {"msgs_per_epoch", PerEpoch(bed.net->total().messages, cfg.epochs)}};
}

/// Local window aggregation feeding a snapshot algorithm (TAG or MINT).
runner::MetricList RunLocalAggregation(const HistoryLocalConfig& cfg, SnapshotAlgo algo) {
  core::QuerySpec spec = RoomAvgSpec(2);
  auto bed = Bed::Clustered(cfg.nodes, cfg.rooms, cfg.seed);
  auto inner = bed.RoomData(cfg.seed);
  data::WindowAggregateGenerator gen(inner.get(), cfg.nodes, cfg.window, spec.agg);
  auto algorithm = MakeSnapshotAlgo(algo, bed.net.get(), &gen, spec);
  SnapshotRun run = RunSnapshot(*algorithm, *bed.net, nullptr, cfg.epochs);
  return {{"bytes_per_epoch", run.BytesPerEpoch()}, {"msgs_per_epoch", run.MsgsPerEpoch()}};
}

}  // namespace

void RegisterHistoryLocal(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "history_local";
  s.id = "E11";
  s.title = "WITH HISTORY horizontal queries: local filtering savings";
  s.notes =
      "Local search+filtering turns O(W) tuples per node per epoch into one\n"
      "aggregate; window smoothing additionally stabilizes values, which MINT's\n"
      "suppression exploits.";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const std::vector<size_t> windows = opt.quick ? std::vector<size_t>{8, 32}
                                                  : std::vector<size_t>{8, 32, 128};
    std::vector<runner::Trial> trials;
    for (size_t window : windows) {
      HistoryLocalConfig cfg;
      cfg.window = window;
      cfg.epochs = opt.quick ? 10 : 40;
      cfg.seed = opt.seed != 0 ? opt.seed : 31;
      {
        runner::Trial t;
        t.spec.algorithm = "ship-windows";
        t.spec.seed = cfg.seed;
        t.spec.params = {{"window", std::to_string(window)}};
        t.run = [cfg]() -> runner::MetricList { return RunShipWindows(cfg); };
        trials.push_back(std::move(t));
      }
      for (SnapshotAlgo algo : {SnapshotAlgo::kTag, SnapshotAlgo::kMint}) {
        runner::Trial t;
        t.spec.algorithm = std::string("local+") + AlgoName(algo);
        t.spec.seed = cfg.seed;
        t.spec.params = {{"window", std::to_string(window)}};
        t.run = [cfg, algo]() -> runner::MetricList { return RunLocalAggregation(cfg, algo); };
        trials.push_back(std::move(t));
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
