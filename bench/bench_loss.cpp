/// E10 — robustness: answer quality (set recall vs the oracle) and cost
/// under i.i.d. frame loss, with and without link-layer retransmissions,
/// for TAG and MINT. Expected shape: recall degrades gracefully with loss;
/// retries buy recall back at a transmission premium; MINT's view caches
/// make it somewhat more sensitive to loss than stateless TAG.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/mint.hpp"
#include "core/tag.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

using namespace kspot;

int main() {
  bench::Banner("E10", "recall & cost vs frame loss (n=49, 12 rooms, K=3, 50 epochs)");
  const size_t kNodes = 49;
  const size_t kRooms = 12;
  const size_t kEpochs = 50;
  const uint64_t kSeed = 29;

  core::QuerySpec spec;
  spec.k = 3;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kRoom;
  spec.domain_max = 100.0;

  util::TablePrinter table({"loss model", "retries", "TAG recall", "MINT recall",
                            "TAG msgs/ep", "MINT msgs/ep"});
  struct LossCase {
    const char* label;
    double iid;
    double edge;
  };
  const LossCase kCases[] = {
      {"0%", 0.0, 0.0},         {"5% iid", 0.05, 0.0},  {"10% iid", 0.1, 0.0},
      {"20% iid", 0.2, 0.0},    {"gray zone", 0.0, 0.5}};
  for (const LossCase& c : kCases) {
    for (int retries : {0, 3}) {
      if (c.iid == 0.0 && c.edge == 0.0 && retries > 0) continue;
      sim::NetworkOptions opt;
      opt.loss_prob = c.iid;
      opt.edge_max_loss = c.edge;
      opt.max_retries = retries;

      auto tag_bed = bench::Bed::Clustered(kNodes, kRooms, kSeed, opt);
      auto tag_gen = tag_bed.RoomData(kSeed);
      auto tag_oracle_gen = tag_bed.RoomData(kSeed);
      core::Oracle tag_oracle(&tag_bed.topology, tag_oracle_gen.get(), spec);
      core::TagTopK tag(tag_bed.net.get(), tag_gen.get(), spec);
      auto tag_run = bench::RunSnapshot(tag, *tag_bed.net, &tag_oracle, kEpochs);

      auto mint_bed = bench::Bed::Clustered(kNodes, kRooms, kSeed, opt);
      auto mint_gen = mint_bed.RoomData(kSeed);
      auto mint_oracle_gen = mint_bed.RoomData(kSeed);
      core::Oracle mint_oracle(&mint_bed.topology, mint_oracle_gen.get(), spec);
      core::MintViews mint(mint_bed.net.get(), mint_gen.get(), spec);
      auto mint_run = bench::RunSnapshot(mint, *mint_bed.net, &mint_oracle, kEpochs);

      table.AddRow(std::vector<std::string>{
          c.label, std::to_string(retries),
          util::FormatDouble(100.0 * tag_run.mean_recall, 1) + "%",
          util::FormatDouble(100.0 * mint_run.mean_recall, 1) + "%",
          util::FormatDouble(tag_run.MsgsPerEpoch(), 1),
          util::FormatDouble(mint_run.MsgsPerEpoch(), 1)});
    }
  }
  table.Print(std::cout);
  return 0;
}
