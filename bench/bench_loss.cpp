/// E10 — robustness: answer quality (set recall vs the oracle) and cost
/// under i.i.d. frame loss, with and without link-layer retransmissions,
/// for TAG and MINT. Expected shape: recall degrades gracefully with loss;
/// retries buy recall back at a transmission premium; MINT's view caches
/// make it somewhat more sensitive to loss than stateless TAG.
#include "bench_util.hpp"
#include "scenarios.hpp"

namespace kspot::bench {

void RegisterLoss(runner::ScenarioRegistry& registry) {
  runner::Scenario s;
  s.name = "loss";
  s.id = "E10";
  s.title = "recall & cost vs frame loss (n=49, 12 rooms, K=3, 50 epochs)";
  s.make_trials = [](const runner::SweepOptions& opt) {
    const size_t nodes = 49;
    const size_t rooms = 12;
    const size_t epochs = opt.quick ? 10 : 50;
    const uint64_t seed = opt.seed != 0 ? opt.seed : 29;

    struct LossCase {
      const char* label;
      double iid;
      double edge;
    };
    const std::vector<LossCase> cases =
        opt.quick ? std::vector<LossCase>{{"0%", 0.0, 0.0}, {"10% iid", 0.1, 0.0}}
                  : std::vector<LossCase>{{"0%", 0.0, 0.0},
                                          {"5% iid", 0.05, 0.0},
                                          {"10% iid", 0.1, 0.0},
                                          {"20% iid", 0.2, 0.0},
                                          {"gray zone", 0.0, 0.5}};

    std::vector<runner::Trial> trials;
    for (const LossCase& c : cases) {
      for (int retries : {0, 3}) {
        if (c.iid == 0.0 && c.edge == 0.0 && retries > 0) continue;
        for (SnapshotAlgo algo : {SnapshotAlgo::kTag, SnapshotAlgo::kMint}) {
          runner::Trial t;
          t.spec.algorithm = AlgoName(algo);
          t.spec.seed = seed;
          t.spec.params = {{"loss_model", c.label}, {"retries", std::to_string(retries)}};
          double iid = c.iid;
          double edge = c.edge;
          t.run = [=]() -> runner::MetricList {
            core::QuerySpec spec = RoomAvgSpec(3);
            sim::NetworkOptions net_opt;
            net_opt.loss_prob = iid;
            net_opt.edge_max_loss = edge;
            net_opt.max_retries = retries;
            auto bed = Bed::Clustered(nodes, rooms, seed, net_opt);
            auto gen = bed.RoomData(seed);
            // Under loss even the exact algorithms can miss answers, so every
            // trial tracks recall against the oracle.
            auto oracle_gen = bed.RoomData(seed);
            core::Oracle oracle(&bed.topology, oracle_gen.get(), spec);
            auto algorithm = MakeSnapshotAlgo(algo, bed.net.get(), gen.get(), spec);
            SnapshotRun run = RunSnapshot(*algorithm, *bed.net, &oracle, epochs);
            return SnapshotMetrics(run);
          };
          trials.push_back(std::move(t));
        }
      }
    }
    return trials;
  };
  RegisterOrDie(registry, std::move(s));
}

}  // namespace kspot::bench
