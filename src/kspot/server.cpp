#include "kspot/server.hpp"

#include <algorithm>

#include "agg/aggregate.hpp"
#include "core/centralized.hpp"
#include "core/history_source.hpp"
#include "core/mint.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "data/windowed.hpp"
#include "fault/churn_engine.hpp"

namespace kspot::system {

KSpotServer::KSpotServer(Scenario scenario, Options options)
    : options_(std::move(options)), deployment_(std::move(scenario), options_.seed) {}

std::unique_ptr<data::DataGenerator> KSpotServer::MakeGenerator(uint64_t seed) const {
  if (options_.make_generator) return options_.make_generator(deployment_.scenario, seed);
  return deployment_.DefaultGenerator(seed);
}

sim::NetworkOptions KSpotServer::NetOptions() const { return RadioOptionsFrom(options_); }

util::StatusOr<RunOutcome> KSpotServer::Execute(const std::string& sql) {
  return ExecuteStreaming(sql, EpochCallback());
}

util::StatusOr<RunOutcome> KSpotServer::ExecuteStreaming(const std::string& sql,
                                                         const EpochCallback& cb) {
  util::StatusOr<query::ParsedQuery> parsed = query::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  util::Status valid = query::Validate(parsed.value());
  if (!valid.ok()) return valid;
  // Mirror the client-side route: install on every node runtime (the nesC
  // client parses the disseminated query too).
  for (auto& client : deployment_.clients) {
    util::Status s = client.InstallQuery(sql);
    if (!s.ok()) return s;
  }
  return Dispatch(parsed.value(), cb);
}

util::StatusOr<RunOutcome> KSpotServer::Dispatch(const query::ParsedQuery& parsed,
                                                 const EpochCallback& cb) {
  switch (query::Classify(parsed)) {
    case query::QueryClass::kBasicSelect:
      return RunBasicSelect(parsed, cb);
    case query::QueryClass::kSnapshotTopK:
      return RunSnapshot(parsed, /*mint=*/true, cb);
    case query::QueryClass::kHistoricVertical:
      return RunHistoricVertical(parsed);
    case query::QueryClass::kHistoricHorizontal:
      return RunHistoricHorizontal(parsed, cb);
  }
  return util::Status::Error("unroutable query");
}

RunOutcome KSpotServer::RunBasicSelect(const query::ParsedQuery& parsed,
                                       const EpochCallback& cb) {
  // GROUP BY without TOP: classic TAG reporting every group's aggregate —
  // handled by the snapshot path with K = all groups. Ungrouped: tuple
  // collection with source-side WHERE filtering.
  if (parsed.FirstAggregate() != nullptr && !parsed.group_by.empty()) {
    return RunSnapshot(parsed, /*mint=*/false, cb);
  }
  RunOutcome outcome;
  outcome.query_class = query::QueryClass::kBasicSelect;
  outcome.algorithm = "SELECT";
  auto gen = MakeGenerator(options_.seed);
  sim::Network net(&deployment_.topology, &deployment_.tree, NetOptions(), util::Rng(options_.seed ^ 0x33));
  core::BasicSelect select(&net, gen.get(), parsed.has_where, parsed.where);

  sim::TrafficCounters last{};
  for (size_t e = 0; e < options_.epochs; ++e) {
    auto epoch = static_cast<sim::Epoch>(e);
    outcome.rows_per_epoch.push_back(select.RunEpoch(epoch));
    outcome.panel.RecordKspotEpoch(net.total().Since(last));
    last = net.total();
    if (cb) {
      core::TopKResult placeholder;
      placeholder.epoch = epoch;
      cb(placeholder, outcome.panel);
    }
  }
  outcome.cost = net.total();
  outcome.baseline_cost = net.total();
  return outcome;
}

RunOutcome KSpotServer::RunSnapshot(const query::ParsedQuery& parsed, bool mint,
                                    const EpochCallback& cb) {
  RunOutcome outcome;
  outcome.query_class = query::Classify(parsed);
  core::QuerySpec spec = SpecFromQuery(parsed, deployment_.scenario);

  // Churn mutates the routing tree, so each run (KSpot and the shadow
  // baseline) repairs its own private copy; the server's pristine deployment_.tree
  // stays the per-query starting point.
  sim::RoutingTree tree = deployment_.tree;
  sim::RoutingTree baseline_tree = deployment_.tree;

  // KSpot network + generator, and an identically seeded shadow pair for
  // the TAG baseline so the System Panel compares like with like.
  auto gen = MakeGenerator(options_.seed);
  sim::Network net(&deployment_.topology, &tree, NetOptions(), util::Rng(options_.seed ^ 0x77));
  std::unique_ptr<core::EpochAlgorithm> algo;
  if (mint) {
    algo = std::make_unique<core::MintViews>(&net, gen.get(), spec);
  } else {
    algo = std::make_unique<core::TagTopK>(&net, gen.get(), spec);
  }
  outcome.algorithm = algo->name();

  auto baseline_gen = MakeGenerator(options_.seed);
  sim::Network baseline_net(&deployment_.topology, &baseline_tree, NetOptions(),
                            util::Rng(options_.seed ^ 0x77));
  core::TagTopK baseline(&baseline_net, baseline_gen.get(), spec);

  // The same FaultPlan hits both runs: crashes and degradations are
  // exogenous, only battery deaths may diverge with each run's traffic.
  std::unique_ptr<fault::ChurnEngine> churn;
  std::unique_ptr<fault::ChurnEngine> baseline_churn;
  if (options_.enable_churn) {
    fault::FaultPlanOptions churn_opt = options_.churn;
    // horizon 0 = auto: the plan covers the whole run. An explicit horizon
    // is honored (clamped to the run length — later events could never
    // fire anyway).
    if (churn_opt.horizon == 0 || churn_opt.horizon > options_.epochs) {
      churn_opt.horizon = static_cast<sim::Epoch>(options_.epochs);
    }
    fault::FaultPlan plan =
        fault::FaultPlan::Generate(deployment_.topology, churn_opt, options_.seed ^ 0xFA11);
    if (options_.run_baseline) {
      baseline_churn =
          std::make_unique<fault::ChurnEngine>(&baseline_net, &baseline_tree, plan);
    }
    churn = std::make_unique<fault::ChurnEngine>(&net, &tree, std::move(plan));
  }

  sim::TrafficCounters last{};
  sim::TrafficCounters baseline_last{};
  for (size_t e = 0; e < options_.epochs; ++e) {
    auto epoch = static_cast<sim::Epoch>(e);
    if (churn) {
      fault::ChurnReport report = churn->BeginEpoch(epoch);
      if (report.topology_changed) algo->OnTopologyChanged(report.delta);
    }
    core::TopKResult result = algo->RunEpoch(epoch);
    outcome.panel.RecordKspotEpoch(net.total().Since(last));
    last = net.total();
    if (options_.run_baseline) {
      if (baseline_churn) {
        fault::ChurnReport report = baseline_churn->BeginEpoch(epoch);
        if (report.topology_changed) baseline.OnTopologyChanged(report.delta);
      }
      baseline.RunEpoch(epoch);
      outcome.panel.RecordBaselineEpoch(baseline_net.total().Since(baseline_last));
      baseline_last = baseline_net.total();
    }
    if (churn) {
      SystemPanel::NodeStatus status;
      status.total = deployment_.topology.num_nodes();
      status.up = net.AliveCount();
      status.detached = churn->detached_count();
      status.repair_events = churn->repair_events();
      status.repair_messages = churn->repair_messages();
      outcome.panel.RecordNodeStatus(status);
    }
    if (cb) cb(result, outcome.panel);
    outcome.per_epoch.push_back(std::move(result));
  }
  outcome.cost = net.total();
  outcome.baseline_cost = baseline_net.total();
  return outcome;
}

RunOutcome KSpotServer::RunHistoricVertical(const query::ParsedQuery& parsed) {
  RunOutcome outcome;
  outcome.query_class = query::QueryClass::kHistoricVertical;
  size_t window = parsed.history > 0 ? static_cast<size_t>(parsed.history) : Deployment::kDefaultWindow;

  // Buffer `window` epochs into every client's history store (local
  // sampling costs no radio traffic), then run TJA over the stored windows.
  auto gen = MakeGenerator(options_.seed);
  std::vector<storage::HistoryStore> stores;
  stores.reserve(deployment_.topology.num_nodes());
  const data::ModalityInfo& info = data::GetModalityInfo(deployment_.scenario.modality);
  for (sim::NodeId id = 0; id < deployment_.topology.num_nodes(); ++id) {
    stores.emplace_back(window, /*archive_to_flash=*/false, info.min_value, info.max_value);
  }
  for (size_t t = 0; t < window; ++t) {
    for (sim::NodeId id = 1; id < deployment_.topology.num_nodes(); ++id) {
      stores[id].Append(static_cast<sim::Epoch>(t),
                        gen->Value(id, static_cast<sim::Epoch>(t)));
    }
  }
  storage::StoreHistorySource source(&stores);

  core::HistoricOptions opts;
  opts.k = std::max(1, parsed.top_k);
  const query::SelectItem* agg_item = parsed.FirstAggregate();
  if (agg_item != nullptr) agg::ParseAggKind(agg_item->aggregate, &opts.agg);

  sim::Network net(&deployment_.topology, &deployment_.tree, NetOptions(), util::Rng(options_.seed ^ 0x99));
  core::Tja tja(&net, &source, opts);
  outcome.historic = tja.Run();
  outcome.algorithm = tja.name();
  outcome.cost = net.total();
  outcome.panel.RecordKspotEpoch(net.total());

  if (options_.run_baseline) {
    sim::Network cnet(&deployment_.topology, &deployment_.tree, NetOptions(), util::Rng(options_.seed ^ 0x99));
    core::TagHistoric baseline(&cnet, &source, opts);
    baseline.Run();
    outcome.baseline_cost = cnet.total();
    outcome.panel.RecordBaselineEpoch(cnet.total());
  }
  return outcome;
}

RunOutcome KSpotServer::RunHistoricHorizontal(const query::ParsedQuery& parsed,
                                              const EpochCallback& cb) {
  RunOutcome outcome;
  outcome.query_class = query::QueryClass::kHistoricHorizontal;
  core::QuerySpec spec = SpecFromQuery(parsed, deployment_.scenario);
  size_t window = parsed.history > 0 ? static_cast<size_t>(parsed.history) : Deployment::kDefaultWindow;

  // Local search and filtering (Section III-B, horizontal case): every node
  // reduces its window to one aggregate locally; MINT then prunes the
  // aggregated values in-network, epoch by epoch as the window slides.
  auto inner = MakeGenerator(options_.seed);
  data::WindowAggregateGenerator gen(inner.get(), deployment_.topology.num_nodes(), window, spec.agg);
  sim::Network net(&deployment_.topology, &deployment_.tree, NetOptions(), util::Rng(options_.seed ^ 0x55));
  core::MintViews mint(&net, &gen, spec);
  outcome.algorithm = "MINT+history";

  auto baseline_inner = MakeGenerator(options_.seed);
  data::WindowAggregateGenerator baseline_gen(baseline_inner.get(), deployment_.topology.num_nodes(),
                                              window, spec.agg);
  sim::Network baseline_net(&deployment_.topology, &deployment_.tree, NetOptions(), util::Rng(options_.seed ^ 0x55));
  core::TagTopK baseline(&baseline_net, &baseline_gen, spec);

  sim::TrafficCounters last{};
  sim::TrafficCounters baseline_last{};
  for (size_t e = 0; e < options_.epochs; ++e) {
    auto epoch = static_cast<sim::Epoch>(e);
    core::TopKResult result = mint.RunEpoch(epoch);
    outcome.panel.RecordKspotEpoch(net.total().Since(last));
    last = net.total();
    if (options_.run_baseline) {
      baseline.RunEpoch(epoch);
      outcome.panel.RecordBaselineEpoch(baseline_net.total().Since(baseline_last));
      baseline_last = baseline_net.total();
    }
    if (cb) cb(result, outcome.panel);
    outcome.per_epoch.push_back(std::move(result));
  }
  outcome.cost = net.total();
  outcome.baseline_cost = baseline_net.total();
  return outcome;
}

}  // namespace kspot::system
