#include "kspot/server.hpp"

#include <algorithm>
#include <utility>

#include "agg/aggregate.hpp"
#include "core/centralized.hpp"
#include "core/history_source.hpp"
#include "core/mint.hpp"
#include "core/tag.hpp"
#include "data/windowed.hpp"
#include "fault/churn_engine.hpp"
#include "kspot/coordinator.hpp"

namespace kspot::system {

namespace {

// Per-class network-RNG salts, preserved verbatim from the pre-session
// server: Execute now delegates to a coordinator session, and passing the
// historical salt per class keeps every realized loss, battery death and
// fault sequence bit-identical to what the monolithic per-class runners
// produced (pinned by kspot_system_test's repeatability tests).
constexpr uint64_t kSelectSalt = 0x33;
constexpr uint64_t kSnapshotSalt = 0x77;
constexpr uint64_t kVerticalSalt = 0x99;
constexpr uint64_t kHorizontalSalt = 0x55;

/// Coordinator options for one delegated query: the server's shared
/// deployment knobs, the class's historical salt, and churn only for the
/// classes the server ever churned (continuous snapshot/grouped queries).
QueryCoordinator::Options DelegatedOptions(const KSpotServer::Options& options,
                                           uint64_t net_salt, bool churn_applies) {
  QueryCoordinator::Options delegated;
  static_cast<DeploymentConfig&>(delegated) = options;
  delegated.net_salt = net_salt;
  if (!churn_applies) delegated.enable_churn = false;
  return delegated;
}

}  // namespace

KSpotServer::KSpotServer(Scenario scenario, Options options)
    : options_(std::move(options)), deployment_(std::move(scenario), options_.seed) {}

std::unique_ptr<data::DataGenerator> KSpotServer::MakeGenerator(uint64_t seed) const {
  if (options_.make_generator) return options_.make_generator(deployment_.scenario, seed);
  return deployment_.DefaultGenerator(seed);
}

sim::NetworkOptions KSpotServer::NetOptions() const { return RadioOptionsFrom(options_); }

util::StatusOr<RunOutcome> KSpotServer::Execute(const std::string& sql) {
  return ExecuteStreaming(sql, EpochCallback());
}

util::StatusOr<RunOutcome> KSpotServer::ExecuteStreaming(const std::string& sql,
                                                         const EpochCallback& cb) {
  util::StatusOr<query::ParsedQuery> parsed = query::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  util::Status valid = query::Validate(parsed.value());
  if (!valid.ok()) return valid;
  // Mirror the client-side route: install on every node runtime (the nesC
  // client parses the disseminated query too).
  for (auto& client : deployment_.clients) {
    util::Status s = client.InstallQuery(sql);
    if (!s.ok()) return s;
  }
  return Dispatch(sql, parsed.value(), cb);
}

util::StatusOr<RunOutcome> KSpotServer::Dispatch(const std::string& sql,
                                                 const query::ParsedQuery& parsed,
                                                 const EpochCallback& cb) {
  switch (query::Classify(parsed)) {
    case query::QueryClass::kBasicSelect:
      return RunBasicSelect(sql, parsed, cb);
    case query::QueryClass::kSnapshotTopK:
      return RunSnapshot(sql, parsed, cb);
    case query::QueryClass::kHistoricVertical:
      return RunHistoricVertical(sql, parsed);
    case query::QueryClass::kHistoricHorizontal:
      return RunHistoricHorizontal(sql, parsed, cb);
  }
  return util::Status::Error("unroutable query");
}

RunOutcome KSpotServer::RunBasicSelect(const std::string& sql, const query::ParsedQuery& parsed,
                                       const EpochCallback& cb) {
  // GROUP BY without TOP: classic TAG reporting every group's aggregate —
  // handled by the snapshot path with K = all groups (the coordinator plans
  // it onto TAG). Ungrouped: tuple collection with source-side WHERE
  // filtering, driven by a session of its own.
  if (parsed.FirstAggregate() != nullptr && !parsed.group_by.empty()) {
    return RunSnapshot(sql, parsed, cb);
  }
  RunOutcome outcome;
  outcome.query_class = query::QueryClass::kBasicSelect;

  QueryCoordinator coord(&deployment_,
                         DelegatedOptions(options_, kSelectSalt, /*churn_applies=*/false));
  (void)coord.Admit(sql);
  (void)coord.Open();
  for (size_t e = 0; e < options_.epochs; ++e) {
    util::StatusOr<EpochUpdate> step = coord.StepEpoch();
    outcome.panel.RecordKspotEpoch(step.value().epoch_cost);
    if (cb) {
      core::TopKResult placeholder;
      placeholder.epoch = static_cast<sim::Epoch>(e);
      cb(placeholder, outcome.panel);
    }
  }
  util::StatusOr<CoordinatorReport> report = coord.Close();
  outcome.algorithm = report.value().outcomes[0].algorithm;
  outcome.rows_per_epoch = std::move(report.value().outcomes[0].rows_per_epoch);
  outcome.cost = report.value().total;
  outcome.baseline_cost = report.value().total;
  return outcome;
}

RunOutcome KSpotServer::RunSnapshot(const std::string& sql, const query::ParsedQuery& parsed,
                                    const EpochCallback& cb) {
  RunOutcome outcome;
  outcome.query_class = query::Classify(parsed);
  core::QuerySpec spec = SpecFromQuery(parsed, deployment_.scenario);

  // The KSpot side is one single-query session over the shared deployment.
  QueryCoordinator coord(&deployment_,
                         DelegatedOptions(options_, kSnapshotSalt, /*churn_applies=*/true));
  (void)coord.Admit(sql);
  (void)coord.Open();

  // The TAG shadow baseline stays server-side: identically seeded network
  // and generator, its own tree copy to repair, and the same FaultPlan —
  // crashes and degradations are exogenous, only battery deaths may diverge
  // with each run's traffic.
  sim::RoutingTree baseline_tree = deployment_.tree;
  auto baseline_gen = MakeGenerator(options_.seed);
  sim::Network baseline_net(&deployment_.topology, &baseline_tree, NetOptions(),
                            util::Rng(options_.seed ^ kSnapshotSalt));
  core::TagTopK baseline(&baseline_net, baseline_gen.get(), spec);
  std::unique_ptr<fault::ChurnEngine> baseline_churn;
  if (options_.enable_churn && options_.run_baseline) {
    fault::FaultPlanOptions churn_opt = options_.churn;
    // horizon 0 = auto: the plan covers the whole run. An explicit horizon
    // is honored (clamped to the run length — later events could never
    // fire anyway).
    if (churn_opt.horizon == 0 || churn_opt.horizon > options_.epochs) {
      churn_opt.horizon = static_cast<sim::Epoch>(options_.epochs);
    }
    fault::FaultPlan plan =
        fault::FaultPlan::Generate(deployment_.topology, churn_opt, options_.seed ^ 0xFA11);
    baseline_churn =
        std::make_unique<fault::ChurnEngine>(&baseline_net, &baseline_tree, std::move(plan));
  }

  sim::TrafficCounters baseline_last{};
  for (size_t e = 0; e < options_.epochs; ++e) {
    auto epoch = static_cast<sim::Epoch>(e);
    util::StatusOr<EpochUpdate> step = coord.StepEpoch();
    const EpochUpdate& update = step.value();
    outcome.panel.RecordKspotEpoch(update.epoch_cost);
    if (options_.run_baseline) {
      if (baseline_churn) {
        fault::ChurnReport report = baseline_churn->BeginEpoch(epoch);
        if (report.topology_changed) baseline.OnTopologyChanged(report.delta);
      }
      baseline.RunEpoch(epoch);
      outcome.panel.RecordBaselineEpoch(baseline_net.total().Since(baseline_last));
      baseline_last = baseline_net.total();
    }
    if (options_.enable_churn) {
      SystemPanel::NodeStatus status;
      status.total = deployment_.topology.num_nodes();
      status.up = update.alive;
      status.detached = update.detached;
      status.repair_events = update.repair_events;
      status.repair_messages = update.repair_messages;
      outcome.panel.RecordNodeStatus(status);
    }
    if (cb) cb(*update.groups[0].result, outcome.panel);
  }
  util::StatusOr<CoordinatorReport> report = coord.Close();
  outcome.algorithm = report.value().outcomes[0].algorithm;
  outcome.per_epoch = std::move(report.value().outcomes[0].per_epoch);
  outcome.cost = report.value().total;
  outcome.baseline_cost = baseline_net.total();
  return outcome;
}

RunOutcome KSpotServer::RunHistoricVertical(const std::string& sql,
                                            const query::ParsedQuery& parsed) {
  RunOutcome outcome;
  outcome.query_class = query::QueryClass::kHistoricVertical;
  size_t window =
      parsed.history > 0 ? static_cast<size_t>(parsed.history) : Deployment::kDefaultWindow;

  // The session runs the one-shot TJA at bind time (local window buffering
  // costs no radio traffic), so Open + Close with no epoch steps is the
  // whole query.
  QueryCoordinator coord(&deployment_,
                         DelegatedOptions(options_, kVerticalSalt, /*churn_applies=*/false));
  (void)coord.Admit(sql);
  (void)coord.Open();
  util::StatusOr<CoordinatorReport> report = coord.Close();
  outcome.historic = std::move(report.value().outcomes[0].historic);
  outcome.algorithm = report.value().outcomes[0].algorithm;
  outcome.cost = report.value().total;
  outcome.panel.RecordKspotEpoch(outcome.cost);

  if (options_.run_baseline) {
    // Centralized baseline over the identical stored windows: rebuild the
    // stores the session buffered (same seed, same wave) and ship them whole.
    auto gen = MakeGenerator(options_.seed);
    std::vector<storage::HistoryStore> stores;
    stores.reserve(deployment_.topology.num_nodes());
    const data::ModalityInfo& info = data::GetModalityInfo(deployment_.scenario.modality);
    for (sim::NodeId id = 0; id < deployment_.topology.num_nodes(); ++id) {
      stores.emplace_back(window, /*archive_to_flash=*/false, info.min_value, info.max_value);
    }
    for (size_t t = 0; t < window; ++t) {
      for (sim::NodeId id = 1; id < deployment_.topology.num_nodes(); ++id) {
        stores[id].Append(static_cast<sim::Epoch>(t),
                          gen->Value(id, static_cast<sim::Epoch>(t)));
      }
    }
    storage::StoreHistorySource source(&stores);
    core::HistoricOptions opts;
    opts.k = std::max(1, parsed.top_k);
    const query::SelectItem* agg_item = parsed.FirstAggregate();
    if (agg_item != nullptr) agg::ParseAggKind(agg_item->aggregate, &opts.agg);
    sim::Network cnet(&deployment_.topology, &deployment_.tree, NetOptions(),
                      util::Rng(options_.seed ^ kVerticalSalt));
    core::TagHistoric baseline(&cnet, &source, opts);
    baseline.Run();
    outcome.baseline_cost = cnet.total();
    outcome.panel.RecordBaselineEpoch(cnet.total());
  }
  return outcome;
}

RunOutcome KSpotServer::RunHistoricHorizontal(const std::string& sql,
                                              const query::ParsedQuery& parsed,
                                              const EpochCallback& cb) {
  RunOutcome outcome;
  outcome.query_class = query::QueryClass::kHistoricHorizontal;
  core::QuerySpec spec = SpecFromQuery(parsed, deployment_.scenario);
  size_t window =
      parsed.history > 0 ? static_cast<size_t>(parsed.history) : Deployment::kDefaultWindow;

  // Local search and filtering (Section III-B, horizontal case): every node
  // reduces its window to one aggregate locally; MINT then prunes the
  // aggregated values in-network, epoch by epoch as the window slides. The
  // session drives that; the TAG-over-windows baseline stays server-side.
  QueryCoordinator coord(&deployment_,
                         DelegatedOptions(options_, kHorizontalSalt, /*churn_applies=*/false));
  (void)coord.Admit(sql);
  (void)coord.Open();

  auto baseline_inner = MakeGenerator(options_.seed);
  data::WindowAggregateGenerator baseline_gen(baseline_inner.get(),
                                              deployment_.topology.num_nodes(), window, spec.agg);
  sim::Network baseline_net(&deployment_.topology, &deployment_.tree, NetOptions(),
                            util::Rng(options_.seed ^ kHorizontalSalt));
  core::TagTopK baseline(&baseline_net, &baseline_gen, spec);

  sim::TrafficCounters baseline_last{};
  for (size_t e = 0; e < options_.epochs; ++e) {
    auto epoch = static_cast<sim::Epoch>(e);
    util::StatusOr<EpochUpdate> step = coord.StepEpoch();
    const EpochUpdate& update = step.value();
    outcome.panel.RecordKspotEpoch(update.epoch_cost);
    if (options_.run_baseline) {
      baseline.RunEpoch(epoch);
      outcome.panel.RecordBaselineEpoch(baseline_net.total().Since(baseline_last));
      baseline_last = baseline_net.total();
    }
    if (cb) cb(*update.groups[0].result, outcome.panel);
  }
  util::StatusOr<CoordinatorReport> report = coord.Close();
  outcome.algorithm = report.value().outcomes[0].algorithm;
  outcome.per_epoch = std::move(report.value().outcomes[0].per_epoch);
  outcome.cost = report.value().total;
  outcome.baseline_cost = baseline_net.total();
  return outcome;
}

}  // namespace kspot::system
