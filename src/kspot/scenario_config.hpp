#pragma once

#include <map>
#include <string>
#include <vector>

#include "data/modality.hpp"
#include "sim/topology.hpp"
#include "util/status.hpp"

namespace kspot::system {

/// A deployment scenario as the Configuration Panel (Section II) edits it:
/// node placement, cluster (room) membership with human-readable names, the
/// sensed modality and the radio range. Serializable to a line-oriented text
/// file so scenarios can be stored, reloaded and shared.
///
/// File format (one directive per line; '#' starts a comment):
///
///   scenario <name>
///   field <width> <height>
///   range <meters>
///   modality <name>
///   cluster <room-id> <display-name>
///   node <id> <x> <y> <room-id>
struct Scenario {
  std::string name = "unnamed";
  double field_w = 100.0;
  double field_h = 100.0;
  double comm_range = 18.0;
  data::Modality modality = data::Modality::kSound;
  /// Cluster display names by room id.
  std::map<sim::GroupId, std::string> cluster_names;
  /// Node descriptors; index 0 must be the sink.
  struct Node {
    sim::NodeId id = 0;
    double x = 0.0;
    double y = 0.0;
    sim::GroupId room = 0;
  };
  std::vector<Node> nodes;

  /// Builds the simulator topology for this scenario.
  sim::Topology BuildTopology() const;

  /// Display name of a cluster (falls back to "room-<id>").
  std::string ClusterName(sim::GroupId room) const;

  /// Serializes to the text format above.
  std::string ToText() const;

  /// Parses the text format; returns a descriptive error on bad input.
  static util::StatusOr<Scenario> FromText(const std::string& text);

  /// Loads from a file.
  static util::StatusOr<Scenario> Load(const std::string& path);

  /// Saves to a file; false on I/O failure.
  bool Save(const std::string& path) const;

  /// The Figure-1 conference scenario (9 sensors, 4 rooms) as a Scenario.
  static Scenario Figure1();

  /// A generated conference-floor scenario: `rooms` clusters of
  /// `nodes_per_room` sensors each (the Figure-3 style demo deployment).
  static Scenario ConferenceFloor(size_t rooms, size_t nodes_per_room, uint64_t seed);
};

}  // namespace kspot::system
