#include "kspot/node_runtime.hpp"

namespace kspot::system {

NodeRuntime::NodeRuntime(sim::NodeId id, size_t window, const data::ModalityInfo& modality,
                         bool archive_to_flash)
    : id_(id),
      history_(window, archive_to_flash, modality.min_value, modality.max_value) {}

util::Status NodeRuntime::InstallQuery(const std::string& sql) {
  util::StatusOr<query::ParsedQuery> parsed = query::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  util::Status valid = query::Validate(parsed.value());
  if (!valid.ok()) return valid;
  query_ = std::move(parsed).value();
  class_ = query::Classify(query_);
  has_query_ = true;
  return util::Status::Ok();
}

void NodeRuntime::Sample(sim::Epoch epoch, double value) { history_.Append(epoch, value); }

}  // namespace kspot::system
