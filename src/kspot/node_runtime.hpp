#pragma once

#include <memory>
#include <string>

#include "data/modality.hpp"
#include "query/parser.hpp"
#include "sim/types.hpp"
#include "storage/history_store.hpp"
#include "util/status.hpp"

namespace kspot::system {

/// The KSpot *client* (Section II): the software each mote runs. The real
/// deployment writes this in nesC on TinyOS; here it is the per-node runtime
/// object the server instantiates on every simulated sensor.
///
/// Responsibilities mirror the paper's client architecture:
///  * a network interface that accepts instructions from the server
///    (`InstallQuery`, one text query at a time),
///  * a local query parser with a router that sends basic SELECT/GROUP-BY
///    queries to the local acquisition engine and TOP-K queries to the
///    specialized top-k operator, and
///  * local access methods: the sliding-window history store (SRAM ring +
///    MicroHash-indexed flash archive) feeding historic queries.
class NodeRuntime {
 public:
  /// Creates the runtime for node `id` with a `window`-epoch history buffer.
  NodeRuntime(sim::NodeId id, size_t window, const data::ModalityInfo& modality,
              bool archive_to_flash = false);

  /// Parses + validates + routes a query exactly like the mote-side parser.
  /// A real deployment rejects malformed queries at the node as well as at
  /// the server; tests exercise both paths.
  util::Status InstallQuery(const std::string& sql);

  /// The installed query's class (valid after a successful InstallQuery).
  query::QueryClass query_class() const { return class_; }
  /// The installed parsed query.
  const query::ParsedQuery& query() const { return query_; }
  /// True when a query is installed.
  bool has_query() const { return has_query_; }

  /// Records one epoch's local reading into the history store.
  void Sample(sim::Epoch epoch, double value);

  /// Local storage (exposed for the historic operators).
  storage::HistoryStore& history() { return history_; }
  const storage::HistoryStore& history() const { return history_; }

  /// This node's id.
  sim::NodeId id() const { return id_; }

 private:
  sim::NodeId id_;
  storage::HistoryStore history_;
  query::ParsedQuery query_;
  query::QueryClass class_ = query::QueryClass::kBasicSelect;
  bool has_query_ = false;
};

}  // namespace kspot::system
