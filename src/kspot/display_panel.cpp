#include "kspot/display_panel.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "util/string_util.hpp"

namespace kspot::system {

DisplayPanel::DisplayPanel(const Scenario* scenario, size_t width, size_t height)
    : scenario_(scenario), width_(std::max<size_t>(width, 8)),
      height_(std::max<size_t>(height, 4)) {}

std::string DisplayPanel::RenderMap() const {
  std::vector<std::string> canvas(height_, std::string(width_, '.'));
  double sx = scenario_->field_w > 0 ? (static_cast<double>(width_ - 1) / scenario_->field_w) : 1;
  double sy = scenario_->field_h > 0 ? (static_cast<double>(height_ - 1) / scenario_->field_h) : 1;
  for (const Scenario::Node& n : scenario_->nodes) {
    size_t cx = static_cast<size_t>(n.x * sx);
    size_t cy = static_cast<size_t>(n.y * sy);
    cx = std::min(cx, width_ - 1);
    cy = std::min(cy, height_ - 1);
    char mark;
    if (n.id == sim::kSinkId) {
      mark = '#';
    } else {
      std::string cname = scenario_->ClusterName(n.room);
      mark = cname.empty() ? '?' : cname[0];
    }
    canvas[cy][cx] = mark;
  }
  std::ostringstream oss;
  oss << '+' << std::string(width_, '-') << "+\n";
  for (const std::string& row : canvas) oss << '|' << row << "|\n";
  oss << '+' << std::string(width_, '-') << "+\n";
  return oss.str();
}

std::string DisplayPanel::RenderBullets(const core::TopKResult& result) const {
  std::ostringstream oss;
  oss << "KSpot Bullets [epoch " << result.epoch << "]: ";
  if (result.items.empty()) oss << "(no ranked clusters yet)";
  for (size_t i = 0; i < result.items.size(); ++i) {
    if (i) oss << "   ";
    oss << "(" << (i + 1) << ") " << scenario_->ClusterName(result.items[i].group) << " "
        << util::FormatDouble(result.items[i].value);
  }
  oss << '\n';
  return oss.str();
}

std::string DisplayPanel::RenderTree(const sim::RoutingTree& tree) const {
  std::ostringstream oss;
  std::function<void(sim::NodeId, int)> walk = [&](sim::NodeId node, int depth) {
    oss << std::string(static_cast<size_t>(depth) * 2, ' ') << 's' << node;
    if (node == sim::kSinkId) {
      oss << " (sink)";
    } else {
      for (const Scenario::Node& n : scenario_->nodes) {
        if (n.id == node) {
          oss << " [" << scenario_->ClusterName(n.room) << "]";
          break;
        }
      }
    }
    oss << '\n';
    for (sim::NodeId child : tree.children(node)) walk(child, depth + 1);
  };
  walk(sim::kSinkId, 0);
  return oss.str();
}

std::string DisplayPanel::RenderFrame(const core::TopKResult& result) const {
  std::ostringstream oss;
  oss << "=== KSpot Display Panel -- scenario '" << scenario_->name << "' ===\n";
  oss << RenderMap();
  oss << RenderBullets(result);
  return oss.str();
}

}  // namespace kspot::system
