#include "kspot/system_panel.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace kspot::system {

void SystemPanel::RecordKspotEpoch(const sim::TrafficCounters& epoch_delta) {
  kspot_.Add(epoch_delta);
  ++epochs_;
}

void SystemPanel::RecordBaselineEpoch(const sim::TrafficCounters& epoch_delta) {
  baseline_.Add(epoch_delta);
}

void SystemPanel::RecordNodeStatus(const NodeStatus& status) { node_status_ = status; }

void SystemPanel::RecordMetrics(const obs::MetricsSnapshot& snapshot) { metrics_ = snapshot; }

void SystemPanel::RecordReliability(const ReliabilityStatus& status) {
  reliability_ = status;
  reliability_recorded_ = true;
}

double SystemPanel::MessageSavingsPercent() const {
  return core::CostReport::SavingsPercent(static_cast<double>(baseline_.messages),
                                          static_cast<double>(kspot_.messages));
}

double SystemPanel::ByteSavingsPercent() const {
  return core::CostReport::SavingsPercent(static_cast<double>(baseline_.payload_bytes),
                                          static_cast<double>(kspot_.payload_bytes));
}

double SystemPanel::EnergySavingsPercent() const {
  return core::CostReport::SavingsPercent(baseline_.energy_j(), kspot_.energy_j());
}

std::string SystemPanel::Render() const {
  std::ostringstream oss;
  oss << "=== KSpot System Panel (cumulative over " << epochs_ << " epochs) ===\n";
  oss << "              " << "KSpot"
      << "        baseline(TAG)   savings\n";
  oss << "  messages    " << kspot_.messages << "          " << baseline_.messages << "        "
      << util::FormatDouble(MessageSavingsPercent(), 1) << "%\n";
  oss << "  bytes       " << kspot_.payload_bytes << "       " << baseline_.payload_bytes
      << "     " << util::FormatDouble(ByteSavingsPercent(), 1) << "%\n";
  oss << "  energy (J)  " << util::FormatDouble(kspot_.energy_j(), 4) << "      "
      << util::FormatDouble(baseline_.energy_j(), 4) << "      "
      << util::FormatDouble(EnergySavingsPercent(), 1) << "%\n";
  if (node_status_.total > 0) {
    oss << "  nodes up    " << node_status_.up << "/" << node_status_.total;
    if (node_status_.detached > 0) oss << " (" << node_status_.detached << " detached)";
    oss << "   tree repairs " << node_status_.repair_events << " ("
        << node_status_.repair_messages << " msgs)\n";
  }
  if (reliability_recorded_) {
    oss << "  completeness " << util::FormatDouble(reliability_.completeness * 100.0, 1)
        << "%   degraded epochs " << reliability_.degraded_epochs << "   retries "
        << reliability_.retries << " (" << reliability_.backoff_us << " us backoff)\n";
  }
  if (!metrics_.empty()) {
    oss << "  --- runtime metrics ---\n";
    for (const obs::CounterSample& c : metrics_.counters) {
      oss << "  counter  " << c.name;
      if (!c.label.empty()) oss << "{" << c.label << "}";
      oss << " = " << c.value << "\n";
    }
    for (const obs::GaugeSample& g : metrics_.gauges) {
      oss << "  gauge    " << g.name;
      if (!g.label.empty()) oss << "{" << g.label << "}";
      oss << " = " << util::FormatDouble(g.value, 3) << "\n";
    }
    for (const obs::HistogramSample& h : metrics_.histograms) {
      oss << "  histo    " << h.name;
      if (!h.label.empty()) oss << "{" << h.label << "}";
      oss << " n=" << h.dist.count << " mean=" << util::FormatDouble(h.dist.mean, 1)
          << " p50=" << util::FormatDouble(h.dist.p50, 1)
          << " p95=" << util::FormatDouble(h.dist.p95, 1)
          << " p99=" << util::FormatDouble(h.dist.p99, 1) << "\n";
    }
  }
  return oss.str();
}

}  // namespace kspot::system
