#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "core/select.hpp"
#include "core/tja.hpp"
#include "data/generators.hpp"
#include "fault/fault_plan.hpp"
#include "kspot/deployment.hpp"
#include "kspot/scenario_config.hpp"
#include "query/parser.hpp"
#include "sim/network.hpp"
#include "util/status.hpp"

namespace kspot::system {

/// Handle of an admitted query.
using QueryId = uint32_t;

/// Per-query admission controls for session mode.
struct AdmitOptions {
  /// Rate limit: the query asks to run every `period`-th epoch, counted from
  /// its join epoch. A share group steps in an epoch when ANY member is
  /// eligible, so a period only throttles the group once every member's
  /// period skips the epoch. 1 (the default) = every epoch.
  int period = 1;
  /// Execution priority: within an epoch, groups step in descending
  /// max-member-priority order (ties keep operator creation order, which is
  /// admission order). Under loss the shared per-node RNG substreams are
  /// consumed in execution order, so changing priorities may change realized
  /// losses; the all-default ordering is the batch Run() ordering.
  int priority = 0;
};

/// What one admitted query produced after a coordinator run.
struct QueryOutcome {
  QueryId id = 0;
  std::string sql;                            ///< As admitted.
  query::QueryClass query_class = query::QueryClass::kBasicSelect;
  std::string algorithm;                      ///< "MINT", "TAG", "TJA", ...
  std::vector<core::TopKResult> per_epoch;    ///< Snapshot answers per epoch.
  std::vector<std::vector<core::SelectTuple>> rows_per_epoch;  ///< Ungrouped selects.
  core::HistoricResult historic;              ///< Historic one-shot answer.
  /// Radio traffic of the operator this query rode. Compatible queries share
  /// one operator (and therefore one converge-cast per epoch); the shared
  /// bill is reported once here with the number of queries that split it, so
  /// a per-query figure is shared_cost / share_group_size.
  sim::TrafficCounters shared_cost;
  size_t share_group_size = 1;
  /// Session lifecycle: the epoch window this query was live for. Batch
  /// queries span the whole run; mid-session admits start later, mid-session
  /// cancels end early (their per_epoch/rows hold only the observed slice).
  sim::Epoch joined_epoch = 0;
  bool cancelled_mid_session = false;
};

/// The outcome of driving every admitted query over one run.
struct CoordinatorReport {
  size_t epochs = 0;
  size_t queries = 0;
  /// Distinct operator instances the shared data plane drove (snapshot
  /// piggybacking makes this <= queries). Counts every operator the session
  /// ever created, including ones released by mid-session cancels.
  size_t operators = 0;
  /// The deployment's whole radio bill for the run — one network, one
  /// battery ledger, everything included (tree-repair control traffic too).
  sim::TrafficCounters total;
  /// Tree-repair bookkeeping when churn is enabled.
  size_t repair_events = 0;
  uint64_t repair_messages = 0;
  size_t detached_nodes = 0;   ///< Up-but-unroutable after the last repair.
  std::vector<QueryOutcome> outcomes;  ///< One per served query, admission order.
};

/// One epoch's worth of results for every operator group, as StepEpoch
/// hands them out: the unit a fan-out layer (kspot/fanout.hpp) materializes
/// and broadcasts to subscribers. Results are shared pointers — one
/// materialization per group per epoch no matter how many consumers read it.
struct GroupUpdate {
  /// Stable operator-group id for the session (creation order).
  size_t group_id = 0;
  std::string algorithm;
  /// Queries riding this operator right now, admission order.
  std::vector<QueryId> members;
  /// False when the group was rate-limited out of this epoch (no member
  /// eligible) — consumers keep serving the previous materialized result.
  bool ran = false;
  /// Ranked answer of epoch-driven operators (MINT/TAG); null for selects
  /// and skipped epochs.
  std::shared_ptr<const core::TopKResult> result;
  /// Tuple rows of ungrouped selects; null otherwise.
  std::shared_ptr<const std::vector<core::SelectTuple>> rows;
};

struct EpochUpdate {
  sim::Epoch epoch = 0;
  /// The shared plane's radio bill for exactly this epoch (operator traffic
  /// plus tree-repair handshakes).
  sim::TrafficCounters epoch_cost;
  /// Node status after this epoch's churn pass (zeros when churn is off).
  size_t alive = 0;
  size_t detached = 0;
  size_t repair_events = 0;      ///< Cumulative over the session.
  uint64_t repair_messages = 0;  ///< Cumulative over the session.
  /// True when a reliability-layer epoch deadline truncated a wave this
  /// epoch: some group's answer is structurally partial (its TopKResult
  /// carries the per-result completeness). Always false with the layer off.
  bool degraded = false;
  /// One entry per live operator group, in this epoch's execution order
  /// (priority-desc, then creation order).
  std::vector<GroupUpdate> groups;
};

/// The multi-query KSpot server core (PAPER.md §II scaled out): admits N
/// declarative queries against ONE long-lived deployment and drives their
/// operators in lockstep over a single shared data plane — one Topology, one
/// RoutingTree (repaired in place under churn), one Network whose batteries
/// every query drains, and one per-epoch data wave that every operator reads
/// (each node samples once per epoch no matter how many queries are live).
///
/// Compatible snapshot queries piggyback: queries that reduce to the same
/// operator configuration (same algorithm, K, aggregate, grouping — or the
/// same WHERE predicate, or the same historic window) share one operator
/// instance and therefore one converge-cast per epoch, instead of each
/// paying full collection traffic. That sharing is where the multi-tenant
/// energy story comes from; E17 (`server_throughput`) measures it.
///
/// Two driving modes:
///
/// - **Batch**: Admit queries, call Run(). A run is a pure function of the
///   admitted set and Options::seed: Run() may be called repeatedly and
///   always reproduces the same report, and a single admitted snapshot query
///   reproduces KSpotServer::Execute bit-exactly (pinned by
///   coordinator_test). Run() is now a thin loop over the session surface
///   below and stays bit-identical to the historical batch implementation.
///
/// - **Session**: Open() builds the shared data plane once, StepEpoch()
///   advances it one epoch at a time, Close() tears it down and returns the
///   report. Between steps the admitted set is LIVE: Admit() joins new
///   queries to existing share groups (or spins up their operator
///   mid-deployment, without perturbing anyone else's results), Cancel()
///   withdraws a member and releases the operator when its share group
///   empties. Per-query AdmitOptions add rate limits (run every k-th epoch)
///   and priorities. Each StepEpoch returns the per-group materialized
///   results for fan-out (kspot/fanout.hpp).
class QueryCoordinator {
 public:
  struct Options : DeploymentConfig {
    /// Allow compatible queries to share one operator. Off = every query
    /// drives its own operator on the shared network (for measuring what the
    /// piggybacking saves).
    bool share_operators = true;
    /// Salt XORed into the seed of the shared plane's network RNG.
    /// KSpotServer::Execute delegates every query class to a single-query
    /// session and passes its historical per-class salt (0x77 snapshot/TAG,
    /// 0x33 ungrouped select, 0x99 vertical historic, 0x55 horizontal) so
    /// the delegation reproduces the pre-session server bit-exactly. The
    /// multi-query default is the snapshot salt.
    uint64_t net_salt = 0x77;
  };

  /// Builds the long-lived deployment for `scenario`.
  QueryCoordinator(Scenario scenario, Options options);
  /// Serves an externally owned deployment (must outlive the coordinator)
  /// instead of building one — how KSpotServer delegates Execute without
  /// rebuilding topology and tree per query.
  QueryCoordinator(const Deployment* deployment, Options options);
  ~QueryCoordinator();
  QueryCoordinator(QueryCoordinator&&) noexcept;
  QueryCoordinator& operator=(QueryCoordinator&&) noexcept;

  /// Parses, validates and admits one query. Expected failures (syntax or
  /// semantic errors) come back as Status; the query set is unchanged.
  /// While a session is open, the query joins the running deployment at the
  /// next epoch: it piggybacks on an existing compatible group's operator
  /// (observing results from its join epoch on) or gets a fresh operator;
  /// vertical historic queries run their one-shot TJA immediately.
  util::StatusOr<QueryId> Admit(const std::string& sql);
  util::StatusOr<QueryId> Admit(const std::string& sql, const AdmitOptions& admit);

  /// Withdraws an admitted query. Outside a session: before the next Run().
  /// While a session is open: effective at the next epoch; when the last
  /// member of a share group cancels, the group's operator is destroyed and
  /// stops costing the network, and the query's outcome keeps the slice of
  /// results it observed. Unknown or already-cancelled ids are clean errors.
  util::Status Cancel(QueryId id);

  /// Number of currently admitted queries.
  size_t active_queries() const;
  /// True if `id` is admitted and not cancelled (what fan-out subscription
  /// validates against).
  bool query_active(QueryId id) const;

  /// Drives all admitted queries for Options::epochs epochs over the shared
  /// data plane and returns every query's outcome plus the shared bill.
  /// Equivalent to Open() + epochs x StepEpoch() + Close(), bit-exactly.
  util::StatusOr<CoordinatorReport> Run();

  // ------------------------------------------------------------- session API

  /// Opens a session: builds the shared data plane (tree copy, network,
  /// generator, churn engine), binds every admitted query to its operator
  /// group and runs one-shot historic (TJA) queries. Error if already open.
  util::Status Open();
  /// True between Open() and Close().
  bool session_open() const;
  /// The next epoch StepEpoch() will execute (0 right after Open()).
  sim::Epoch session_epoch() const;
  /// Operator instances currently live (released groups excluded).
  size_t active_operators() const;

  /// Advances the shared data plane one epoch: churn/repair once for
  /// everyone, then every eligible operator group in priority order.
  /// Returns the per-group materialized results for fan-out.
  util::StatusOr<EpochUpdate> StepEpoch();

  /// Closes the session and returns the report over everything it served —
  /// including queries cancelled mid-session (their observed slice) and
  /// queries admitted mid-session (from their join epoch). The admitted set
  /// survives for the next Run()/Open(); mid-session cancels stay withdrawn.
  util::StatusOr<CoordinatorReport> Close();

  /// The deployment this coordinator administers (pristine; runs repair
  /// their own tree copies).
  const Deployment& deployment() const { return *deployment_; }
  const Options& options() const { return options_; }

 private:
  struct Admitted {
    QueryId id = 0;
    std::string sql;
    query::ParsedQuery parsed;
    query::QueryClass query_class = query::QueryClass::kBasicSelect;
    AdmitOptions admit;
    bool active = true;
  };
  struct Session;

  Options options_;
  std::unique_ptr<Deployment> owned_deployment_;
  const Deployment* deployment_ = nullptr;
  std::vector<Admitted> admitted_;
  QueryId next_id_ = 1;
  std::unique_ptr<Session> session_;

  std::unique_ptr<data::DataGenerator> MakeGenerator(uint64_t seed) const;
  sim::NetworkOptions NetOptions() const;
  util::Status BindToSession(size_t admitted_index);
};

}  // namespace kspot::system
