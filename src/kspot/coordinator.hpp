#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "core/select.hpp"
#include "core/tja.hpp"
#include "data/generators.hpp"
#include "fault/fault_plan.hpp"
#include "kspot/deployment.hpp"
#include "kspot/scenario_config.hpp"
#include "query/parser.hpp"
#include "sim/network.hpp"
#include "util/status.hpp"

namespace kspot::system {

/// Handle of an admitted query.
using QueryId = uint32_t;

/// What one admitted query produced after a coordinator run.
struct QueryOutcome {
  QueryId id = 0;
  std::string sql;                            ///< As admitted.
  query::QueryClass query_class = query::QueryClass::kBasicSelect;
  std::string algorithm;                      ///< "MINT", "TAG", "TJA", ...
  std::vector<core::TopKResult> per_epoch;    ///< Snapshot answers per epoch.
  std::vector<std::vector<core::SelectTuple>> rows_per_epoch;  ///< Ungrouped selects.
  core::HistoricResult historic;              ///< Historic one-shot answer.
  /// Radio traffic of the operator this query rode. Compatible queries share
  /// one operator (and therefore one converge-cast per epoch); the shared
  /// bill is reported once here with the number of queries that split it, so
  /// a per-query figure is shared_cost / share_group_size.
  sim::TrafficCounters shared_cost;
  size_t share_group_size = 1;
};

/// The outcome of driving every admitted query over one run.
struct CoordinatorReport {
  size_t epochs = 0;
  size_t queries = 0;
  /// Distinct operator instances the shared data plane drove (snapshot
  /// piggybacking makes this <= queries).
  size_t operators = 0;
  /// The deployment's whole radio bill for the run — one network, one
  /// battery ledger, everything included (tree-repair control traffic too).
  sim::TrafficCounters total;
  /// Tree-repair bookkeeping when churn is enabled.
  size_t repair_events = 0;
  uint64_t repair_messages = 0;
  size_t detached_nodes = 0;   ///< Up-but-unroutable after the last repair.
  std::vector<QueryOutcome> outcomes;  ///< One per admitted query, admission order.
};

/// The multi-query KSpot server core (PAPER.md §II scaled out): admits N
/// declarative queries against ONE long-lived deployment and drives their
/// operators in lockstep over a single shared data plane — one Topology, one
/// RoutingTree (repaired in place under churn), one Network whose batteries
/// every query drains, and one per-epoch data wave that every operator reads
/// (each node samples once per epoch no matter how many queries are live).
///
/// Compatible snapshot queries piggyback: queries that reduce to the same
/// operator configuration (same algorithm, K, aggregate, grouping — or the
/// same WHERE predicate, or the same historic window) share one operator
/// instance and therefore one converge-cast per epoch, instead of each
/// paying full collection traffic. That sharing is where the multi-tenant
/// energy story comes from; E17 (`server_throughput`) measures it.
///
/// A run is a pure function of the admitted set and Options::seed: Run() may
/// be called repeatedly and always reproduces the same report, and a single
/// admitted snapshot query reproduces KSpotServer::Execute bit-exactly (the
/// coordinator derives its generator, network RNG and fault plan the same
/// way — pinned by coordinator_test).
class QueryCoordinator {
 public:
  struct Options {
    /// Epochs to drive the shared data plane for.
    size_t epochs = 30;
    /// RNG seed (tree growth, data, losses, fault plan).
    uint64_t seed = 1;
    /// Per-frame loss probability.
    double loss_prob = 0.0;
    /// Link-layer retries.
    int max_retries = 0;
    /// Per-node battery budget, joules; <= 0 means unlimited. Shared: every
    /// query's traffic drains the same meters.
    double battery_j = 0.0;
    /// Fault & churn injection over the shared tree (one plan, one repair
    /// per epoch, every operator notified). `churn.horizon` 0 = whole run.
    bool enable_churn = false;
    fault::FaultPlanOptions churn;
    /// Data generator factory; defaults to the deployment's room-correlated
    /// walk.
    std::function<std::unique_ptr<data::DataGenerator>(const Scenario&, uint64_t seed)>
        make_generator;
    /// Allow compatible queries to share one operator. Off = every query
    /// drives its own operator on the shared network (for measuring what the
    /// piggybacking saves).
    bool share_operators = true;
    /// Shard lanes for parallel epoch execution inside this one deployment:
    /// the routing tree is cut at its cluster-head subtrees and lanes run
    /// concurrently, merged deterministically at each epoch boundary.
    /// Results are bit-identical to the serial path for any value. 1 (the
    /// default) keeps today's serial execution with no runtime attached.
    size_t shards = 1;
    /// Worker threads for sharded execution; 0 picks hardware concurrency.
    /// (Results do not depend on this — only wall-clock does.)
    size_t shard_threads = 0;
  };

  /// Builds the long-lived deployment for `scenario`.
  QueryCoordinator(Scenario scenario, Options options);

  /// Parses, validates and admits one query. Expected failures (syntax or
  /// semantic errors) come back as Status; the query set is unchanged.
  util::StatusOr<QueryId> Admit(const std::string& sql);

  /// Withdraws an admitted query before the next Run().
  util::Status Cancel(QueryId id);

  /// Number of currently admitted queries.
  size_t active_queries() const;

  /// Drives all admitted queries for Options::epochs epochs over the shared
  /// data plane and returns every query's outcome plus the shared bill.
  util::StatusOr<CoordinatorReport> Run();

  /// The deployment this coordinator administers (pristine; runs repair
  /// their own tree copies).
  const Deployment& deployment() const { return deployment_; }
  const Options& options() const { return options_; }

 private:
  struct Admitted {
    QueryId id = 0;
    std::string sql;
    query::ParsedQuery parsed;
    query::QueryClass query_class = query::QueryClass::kBasicSelect;
    bool active = true;
  };

  Options options_;
  Deployment deployment_;
  std::vector<Admitted> admitted_;
  QueryId next_id_ = 1;

  std::unique_ptr<data::DataGenerator> MakeGenerator(uint64_t seed) const;
  sim::NetworkOptions NetOptions() const;
};

}  // namespace kspot::system
