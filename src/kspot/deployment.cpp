#include "kspot/deployment.hpp"

#include <utility>

#include "agg/aggregate.hpp"
#include "util/rng.hpp"

namespace kspot::system {

Deployment::Deployment(Scenario scenario_in, uint64_t seed)
    : scenario(std::move(scenario_in)), topology(scenario.BuildTopology()) {
  util::Rng tree_rng(seed ^ 0xA5A5A5A5ULL);
  if (scenario.name == "figure1" && topology.num_nodes() == 10) {
    tree = sim::RoutingTree::FromParents(sim::MakeFigure1Parents());
  } else {
    tree = sim::RoutingTree::BuildClusterAware(topology, tree_rng);
  }
  const data::ModalityInfo& info = data::GetModalityInfo(scenario.modality);
  clients.reserve(topology.num_nodes());
  for (sim::NodeId id = 0; id < topology.num_nodes(); ++id) {
    clients.emplace_back(id, kDefaultWindow, info);
  }
}

std::unique_ptr<data::DataGenerator> Deployment::DefaultGenerator(uint64_t seed) const {
  std::vector<sim::GroupId> rooms;
  rooms.reserve(topology.num_nodes());
  for (sim::NodeId id = 0; id < topology.num_nodes(); ++id) rooms.push_back(topology.room(id));
  const data::ModalityInfo& info = data::GetModalityInfo(scenario.modality);
  double span = info.max_value - info.min_value;
  // Rooms drift independently, a building-wide component correlates hot
  // time instances across nodes, and readings land on an integer ADC grid.
  return std::make_unique<data::RoomCorrelatedGenerator>(
      std::move(rooms), scenario.modality, /*room_sigma=*/span * 0.02,
      /*noise_sigma=*/span * 0.01, util::Rng(seed), /*global_sigma=*/span * 0.03,
      /*quantize_step=*/span * 0.01);
}

core::QuerySpec SpecFromQuery(const query::ParsedQuery& parsed, const Scenario& scenario) {
  core::QuerySpec spec;
  // Basic GROUP-BY selects (no TOP clause) report every group.
  spec.k = parsed.top_k > 0 ? parsed.top_k : 1'000'000;
  const query::SelectItem* agg_item = parsed.FirstAggregate();
  if (agg_item != nullptr) {
    agg::ParseAggKind(agg_item->aggregate, &spec.agg);
  }
  spec.grouping =
      parsed.group_by == "nodeid" ? core::Grouping::kNode : core::Grouping::kRoom;
  spec.SetDomainFrom(data::GetModalityInfo(scenario.modality));
  return spec;
}

}  // namespace kspot::system
