#pragma once

#include <memory>
#include <vector>

#include "core/query_spec.hpp"
#include "data/generators.hpp"
#include "kspot/node_runtime.hpp"
#include "kspot/scenario_config.hpp"
#include "query/ast.hpp"
#include "sim/network.hpp"
#include "sim/routing_tree.hpp"
#include "sim/topology.hpp"

namespace kspot::system {

/// One deployed sensor network as the base station administers it: the
/// scenario, the simulator topology built from it, the routing tree grown
/// over the deployment, and the per-node client runtimes.
///
/// This is the long-lived state every query server shares. KSpotServer owns
/// one and runs a single query at a time against it; QueryCoordinator owns
/// one and drives many concurrent queries over the same tree, batteries and
/// per-epoch data wave. The topology and tree here stay pristine — runs that
/// mutate the tree (churn) repair their own copies and the deployment
/// remains the per-run starting point.
struct Deployment {
  /// Window depth the clients buffer, and the default window of historic
  /// queries that name none — one constant so a windowless historic query
  /// can never read deeper than the clients buffer.
  static constexpr size_t kDefaultWindow = 32;

  Scenario scenario;
  sim::Topology topology;
  sim::RoutingTree tree;
  std::vector<NodeRuntime> clients;

  /// Builds the deployment for `scenario`. The routing tree derives from
  /// `seed` exactly as the server always built it: the Figure-1 scenario
  /// pins the paper's tree, every other scenario grows the cluster-aware
  /// first-heard-from tree (rooms form contiguous subtrees and close low —
  /// what MINT's view hierarchy exploits).
  Deployment(Scenario scenario, uint64_t seed);

  /// The default data source: a room-correlated walk matching the
  /// scenario's modality, fully derived from `seed` (the shared per-epoch
  /// data wave — every operator reading the same generator instance at the
  /// same epoch sees the identical readings, and re-deriving with the same
  /// seed replays the identical wave).
  std::unique_ptr<data::DataGenerator> DefaultGenerator(uint64_t seed) const;
};

/// Maps a parsed snapshot/grouped query onto the algorithm-facing QuerySpec
/// under `scenario`'s modality. Basic GROUP-BY selects (no TOP clause)
/// report every group, modeled as K = all.
core::QuerySpec SpecFromQuery(const query::ParsedQuery& parsed, const Scenario& scenario);

/// Maps the radio knobs shared by KSpotServer::Options and
/// QueryCoordinator::Options onto the simulator's NetworkOptions — ONE
/// mapping, so a knob added to the serving options cannot reach one server's
/// network but not the other's (the coordinator==Execute bit-exactness
/// depends on identical NetworkOptions).
template <typename ServingOptions>
sim::NetworkOptions RadioOptionsFrom(const ServingOptions& options) {
  sim::NetworkOptions opts;
  opts.loss_prob = options.loss_prob;
  opts.max_retries = options.max_retries;
  opts.battery_j = options.battery_j;
  return opts;
}

}  // namespace kspot::system
