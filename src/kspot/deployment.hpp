#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/query_spec.hpp"
#include "data/generators.hpp"
#include "fault/fault_plan.hpp"
#include "kspot/node_runtime.hpp"
#include "kspot/scenario_config.hpp"
#include "query/ast.hpp"
#include "sim/network.hpp"
#include "sim/routing_tree.hpp"
#include "sim/topology.hpp"

namespace kspot::system {

/// The continuous-historic serving path. Everything here defaults off /
/// inert: with `continuous` false, vertical historic queries keep their
/// one-shot bind-time execution and none of the other knobs is consulted,
/// so default-configured runs stay byte-identical to a build without the
/// path (golden-pinned).
struct HistoricPathConfig {
  /// Serve vertical historic queries as continuous session citizens: the
  /// operator buffers each epoch's reading into per-node HistoryStores and
  /// StepEpoch advances the sink's window view every epoch like any
  /// snapshot operator (results fan out with completeness stamped).
  bool continuous = false;
  /// Maintain the sink's window view incrementally (O(delta) per epoch)
  /// instead of re-collecting whole windows (O(W*n)). Bit-identical answers
  /// either way; scratch exists as the measurable strawman.
  bool incremental = true;
  /// Archive readings evicted from the SRAM window to simulated flash.
  bool archive_to_flash = false;
  /// Charge flash I/O into the energy ledger and traffic counters.
  bool flash_accounting = false;
  /// Cluster-neighbor predictive suppression: a sensor stays silent when
  /// its reading is within `suppression_eps` of the last value it reported;
  /// the room head re-injects the predictor, bounding reconstruction error
  /// by `suppression_eps`.
  bool suppression = false;
  double suppression_eps = 0.5;
};

/// The deployment-wide execution knobs every serving API shares — ONE struct
/// so a knob added for one server cannot silently miss the other.
/// KSpotServer::Options and QueryCoordinator::Options both derive from this;
/// KSpotServer::Execute delegates to a single-query coordinator session, so
/// these knobs reach the data plane through a single execution path.
struct DeploymentConfig {
  /// Epochs to drive continuous queries for.
  size_t epochs = 30;
  /// RNG seed (tree growth, data, losses, fault plan).
  uint64_t seed = 1;
  /// Per-frame loss probability.
  double loss_prob = 0.0;
  /// Link-layer retries.
  int max_retries = 0;
  /// Per-node battery budget, joules; <= 0 means unlimited. Shared: every
  /// query's traffic drains the same meters.
  double battery_j = 0.0;
  /// Fault & churn injection over the routing tree: a FaultPlan drawn from
  /// `churn` and the run's seed, one repair per epoch, every operator
  /// notified. `churn.horizon` 0 = the whole run. (KSpotServer applies churn
  /// to continuous snapshot queries only; historic one-shot queries run over
  /// already-buffered windows and ignore it.)
  bool enable_churn = false;
  fault::FaultPlanOptions churn;
  /// Data generator factory; defaults to the deployment's room-correlated
  /// walk.
  std::function<std::unique_ptr<data::DataGenerator>(const Scenario&, uint64_t seed)>
      make_generator;
  /// Shard lanes for parallel epoch execution inside one deployment: the
  /// routing tree is cut at its cluster-head subtrees and lanes run
  /// concurrently, merged deterministically at each epoch boundary. Results
  /// are bit-identical to the serial path for any value; 1 (the default)
  /// keeps serial execution with no runtime attached.
  size_t shards = 1;
  /// Worker threads for sharded execution; 0 picks hardware concurrency.
  /// (Results do not depend on this — only wall-clock does.)
  size_t shard_threads = 0;
  /// Observability (src/obs): turn on the process-global metrics registry /
  /// span tracer when this session opens. One-way — opening a session never
  /// forces them off (the KSPOT_OBS env var or another session may hold them
  /// up). Off by default; enabling changes no result bit
  /// (golden_equivalence_test pins bit-identical runs with both fully on).
  bool enable_metrics = false;
  bool enable_tracing = false;
  /// Reliability & graceful-degradation layer (adaptive retry/backoff, epoch
  /// deadlines, completeness accounting). Off by default and then bit-inert:
  /// disabled runs are byte-identical to a build without the layer.
  sim::ReliabilityOptions reliability;
  /// Continuous-historic serving (incremental window maintenance, flash
  /// accounting, predictive suppression). Off by default and then bit-inert.
  HistoricPathConfig historic;
};

/// One deployed sensor network as the base station administers it: the
/// scenario, the simulator topology built from it, the routing tree grown
/// over the deployment, and the per-node client runtimes.
///
/// This is the long-lived state every query server shares. KSpotServer owns
/// one and runs a single query at a time against it; QueryCoordinator owns
/// one and drives many concurrent queries over the same tree, batteries and
/// per-epoch data wave. The topology and tree here stay pristine — runs that
/// mutate the tree (churn) repair their own copies and the deployment
/// remains the per-run starting point.
struct Deployment {
  /// Window depth the clients buffer, and the default window of historic
  /// queries that name none — one constant so a windowless historic query
  /// can never read deeper than the clients buffer.
  static constexpr size_t kDefaultWindow = 32;

  Scenario scenario;
  sim::Topology topology;
  sim::RoutingTree tree;
  std::vector<NodeRuntime> clients;

  /// Builds the deployment for `scenario`. The routing tree derives from
  /// `seed` exactly as the server always built it: the Figure-1 scenario
  /// pins the paper's tree, every other scenario grows the cluster-aware
  /// first-heard-from tree (rooms form contiguous subtrees and close low —
  /// what MINT's view hierarchy exploits).
  Deployment(Scenario scenario, uint64_t seed);

  /// The default data source: a room-correlated walk matching the
  /// scenario's modality, fully derived from `seed` (the shared per-epoch
  /// data wave — every operator reading the same generator instance at the
  /// same epoch sees the identical readings, and re-deriving with the same
  /// seed replays the identical wave).
  std::unique_ptr<data::DataGenerator> DefaultGenerator(uint64_t seed) const;
};

/// Maps a parsed snapshot/grouped query onto the algorithm-facing QuerySpec
/// under `scenario`'s modality. Basic GROUP-BY selects (no TOP clause)
/// report every group, modeled as K = all.
core::QuerySpec SpecFromQuery(const query::ParsedQuery& parsed, const Scenario& scenario);

/// Maps the shared DeploymentConfig radio knobs onto the simulator's
/// NetworkOptions — ONE mapping, so a knob added to the serving options
/// cannot reach one server's network but not the other's (the
/// coordinator==Execute bit-exactness depends on identical NetworkOptions).
inline sim::NetworkOptions RadioOptionsFrom(const DeploymentConfig& options) {
  sim::NetworkOptions opts;
  opts.loss_prob = options.loss_prob;
  opts.max_retries = options.max_retries;
  opts.battery_j = options.battery_j;
  opts.reliability = options.reliability;
  return opts;
}

}  // namespace kspot::system
