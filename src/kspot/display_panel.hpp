#pragma once

#include <string>
#include <vector>

#include "core/result.hpp"
#include "kspot/scenario_config.hpp"
#include "sim/routing_tree.hpp"

namespace kspot::system {

/// The Display Panel of the KSpot GUI (Section II), rendered as terminal
/// text instead of a JPG floor plan: a scaled ASCII map of the deployment
/// with per-node cluster letters, plus the "KSpot Bullet" ranking strip that
/// re-ranks the K highest clusters every epoch.
class DisplayPanel {
 public:
  /// `scenario` must outlive the panel. `width`/`height` are the character
  /// dimensions of the map canvas.
  explicit DisplayPanel(const Scenario* scenario, size_t width = 64, size_t height = 20);

  /// Renders the floor map: sink marked '#', sensors by their cluster's
  /// first letter; optionally overlays the routing tree depth under each
  /// node position.
  std::string RenderMap() const;

  /// Renders the KSpot-Bullet strip for one epoch's ranked answer, e.g.
  ///   (1) Auditorium  75.00   (2) Coffee  68.41 ...
  std::string RenderBullets(const core::TopKResult& result) const;

  /// Renders the routing hierarchy as an indented tree with cluster names —
  /// the "black line" cluster links of the GUI, in text:
  ///   s0 (sink)
  ///     s6 [C]
  ///       s5 [C] ...
  std::string RenderTree(const sim::RoutingTree& tree) const;

  /// Renders map + bullets + a heading for one epoch.
  std::string RenderFrame(const core::TopKResult& result) const;

 private:
  const Scenario* scenario_;
  size_t width_;
  size_t height_;
};

}  // namespace kspot::system
