#pragma once

#include <string>

#include "core/cost_report.hpp"
#include "obs/metrics.hpp"
#include "sim/network.hpp"

namespace kspot::system {

/// The System Panel (Sections I/IV-B): the live counter display that
/// "continuously projects the savings in energy and messages that our system
/// yields". It tracks the KSpot network's traffic against a baseline (TAG)
/// run over the same data and reports the savings percentages.
class SystemPanel {
 public:
  SystemPanel() = default;

  /// Live node-status block (churn runs): how much of the deployment is up
  /// and routable, and what the in-network tree repairs have cost so far.
  struct NodeStatus {
    size_t total = 0;            ///< Deployed nodes (including the sink).
    size_t up = 0;               ///< Alive (admin-up with battery left).
    size_t detached = 0;         ///< Alive but without a route to the sink.
    size_t repair_events = 0;    ///< Epochs that forced a tree repair.
    uint64_t repair_messages = 0;///< Join-handshake messages those repairs cost.
  };

  /// Live reliability block (reliability-layer runs): how complete the
  /// served answers are and what the adaptive ARQ spent getting them.
  struct ReliabilityStatus {
    double completeness = 1.0;   ///< Mean completeness of the latest epoch's answers.
    size_t degraded_epochs = 0;  ///< Epochs a deadline truncated, cumulative.
    uint64_t retries = 0;        ///< Retransmissions, cumulative.
    uint64_t backoff_us = 0;     ///< Idle-listen backoff time, cumulative.
  };

  /// Records one epoch of KSpot traffic (counters since the previous call).
  void RecordKspotEpoch(const sim::TrafficCounters& epoch_delta);
  /// Records one epoch of baseline traffic.
  void RecordBaselineEpoch(const sim::TrafficCounters& epoch_delta);
  /// Records the current node status (latest snapshot wins).
  void RecordNodeStatus(const NodeStatus& status);
  /// Records an observability snapshot (latest wins); a non-empty one adds a
  /// runtime-metrics pane to Render(). Typically obs::Registry().Snapshot().
  void RecordMetrics(const obs::MetricsSnapshot& snapshot);
  /// Records the reliability status (latest snapshot wins); the first call
  /// adds a reliability pane to Render().
  void RecordReliability(const ReliabilityStatus& status);

  /// Latest node status; total == 0 until a churn run records one.
  const NodeStatus& node_status() const { return node_status_; }
  /// Latest reliability status (defaults until a run records one).
  const ReliabilityStatus& reliability_status() const { return reliability_; }

  /// Cumulative KSpot traffic.
  const sim::TrafficCounters& kspot_total() const { return kspot_; }
  /// Cumulative baseline traffic.
  const sim::TrafficCounters& baseline_total() const { return baseline_; }

  /// Message savings, percent of the baseline.
  double MessageSavingsPercent() const;
  /// Payload byte savings, percent of the baseline.
  double ByteSavingsPercent() const;
  /// Radio energy savings, percent of the baseline.
  double EnergySavingsPercent() const;

  /// Renders the panel text (one compact block for the terminal).
  std::string Render() const;

 private:
  sim::TrafficCounters kspot_;
  sim::TrafficCounters baseline_;
  NodeStatus node_status_;
  ReliabilityStatus reliability_;
  bool reliability_recorded_ = false;
  obs::MetricsSnapshot metrics_;
  size_t epochs_ = 0;
};

}  // namespace kspot::system
