#include "kspot/coordinator.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

#include "agg/aggregate.hpp"
#include "core/historic_stream.hpp"
#include "core/history_source.hpp"
#include "core/mint.hpp"
#include "core/tag.hpp"
#include "data/windowed.hpp"
#include "fault/churn_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/shard_runtime.hpp"
#include "storage/history_store.hpp"

namespace kspot::system {

namespace {

constexpr sim::Epoch kNoEpoch = std::numeric_limits<sim::Epoch>::max();

/// How a query executes on the shared data plane.
enum class OpKind {
  kSnapshot,    ///< MINT continuous top-k.
  kTagFullView, ///< GROUP BY without TOP: TAG reporting every group.
  kSelect,      ///< Ungrouped acquisitional SELECT (optional WHERE).
  kHorizontal,  ///< MINT over per-node window aggregates.
  kVertical,    ///< One-shot TJA over buffered windows.
};

/// The single classification both the compatibility key and the operator
/// construction derive from: two queries share an operator if and only if
/// their plans carry identical fields, because the key below is built from
/// exactly the fields the construction switch consumes.
struct OperatorPlan {
  OpKind kind = OpKind::kSnapshot;
  core::QuerySpec spec;                  ///< kSnapshot/kTagFullView/kHorizontal.
  size_t window = 0;                     ///< kHorizontal/kVertical.
  core::HistoricOptions historic;        ///< kVertical.
  bool has_where = false;                ///< kSelect.
  query::Predicate where;                ///< kSelect.
};

OperatorPlan PlanFor(const query::ParsedQuery& parsed, query::QueryClass cls,
                     const Scenario& scenario) {
  OperatorPlan plan;
  plan.spec = SpecFromQuery(parsed, scenario);
  plan.window =
      parsed.history > 0 ? static_cast<size_t>(parsed.history) : Deployment::kDefaultWindow;
  switch (cls) {
    case query::QueryClass::kBasicSelect:
      if (parsed.FirstAggregate() != nullptr && !parsed.group_by.empty()) {
        plan.kind = OpKind::kTagFullView;
      } else {
        plan.kind = OpKind::kSelect;
        plan.has_where = parsed.has_where;
        if (parsed.has_where) plan.where = parsed.where;
      }
      break;
    case query::QueryClass::kSnapshotTopK:
      plan.kind = OpKind::kSnapshot;
      break;
    case query::QueryClass::kHistoricHorizontal:
      plan.kind = OpKind::kHorizontal;
      break;
    case query::QueryClass::kHistoricVertical: {
      plan.kind = OpKind::kVertical;
      plan.historic.k = std::max(1, parsed.top_k);
      const query::SelectItem* agg_item = parsed.FirstAggregate();
      if (agg_item != nullptr) agg::ParseAggKind(agg_item->aggregate, &plan.historic.agg);
      break;
    }
  }
  return plan;
}

/// Canonical compatibility key, a pure function of the plan's consumed
/// fields: queries mapping to the same key reduce to the same operator
/// configuration and may piggyback on one instance.
std::string CompatKey(const OperatorPlan& plan) {
  char buf[160];
  switch (plan.kind) {
    case OpKind::kSnapshot:
    case OpKind::kTagFullView:
      std::snprintf(buf, sizeof buf, "%s|k=%d|agg=%d|group=%d",
                    plan.kind == OpKind::kSnapshot ? "mint" : "tag", plan.spec.k,
                    static_cast<int>(plan.spec.agg), static_cast<int>(plan.spec.grouping));
      break;
    case OpKind::kSelect:
      if (plan.has_where) {
        std::snprintf(buf, sizeof buf, "select|%s|%d|%.17g", plan.where.attribute.c_str(),
                      static_cast<int>(plan.where.op), plan.where.literal);
      } else {
        std::snprintf(buf, sizeof buf, "select|all");
      }
      break;
    case OpKind::kHorizontal:
      std::snprintf(buf, sizeof buf, "hist|k=%d|agg=%d|group=%d|w=%zu", plan.spec.k,
                    static_cast<int>(plan.spec.agg), static_cast<int>(plan.spec.grouping),
                    plan.window);
      break;
    case OpKind::kVertical:
      std::snprintf(buf, sizeof buf, "tja|k=%d|agg=%d|w=%zu", plan.historic.k,
                    static_cast<int>(plan.historic.agg), plan.window);
      break;
  }
  return buf;
}

/// One operator instance of the shared data plane and the queries riding it.
struct OpGroup {
  OperatorPlan plan;
  std::string key;                       ///< CompatKey while alive.
  std::string algorithm;
  /// Indices into the admitted set of every query that EVER rode this
  /// operator (admission order) — share_group_size reports this.
  std::vector<size_t> members;
  bool alive = true;                     ///< False once released by Cancel.
  /// A topology change happened during an epoch this group skipped
  /// (rate-limited): evict stale caches before the next step.
  bool pending_refresh = false;
  /// Epoch-driven operators (snapshot MINT, grouped-select TAG, horizontal
  /// MINT-over-windows) ...
  std::unique_ptr<core::EpochAlgorithm> algo;
  /// ... or the tuple-collection path of ungrouped selects.
  std::unique_ptr<core::BasicSelect> select;
  /// Horizontal historic operators own their window adapter (the shared
  /// per-epoch wave feeds it through its own inner generator replay).
  std::unique_ptr<data::DataGenerator> own_inner;
  std::unique_ptr<data::WindowAggregateGenerator> window_gen;

  /// Cached tracer name id for this operator's per-epoch span
  /// ("coord.run.<algorithm>"); interned lazily on the first traced step.
  uint32_t span_id = 0;

  sim::TrafficCounters cost;
  std::vector<core::TopKResult> per_epoch;
  std::vector<std::vector<core::SelectTuple>> rows_per_epoch;
  /// Epoch stamps parallel to per_epoch / rows_per_epoch (rate limits and
  /// mid-session joins make them sparse / offset).
  std::vector<sim::Epoch> result_epochs;
  core::HistoricResult historic;

  /// Releases the operator: the share group emptied, stop costing anything.
  void Release() {
    alive = false;
    algo.reset();
    select.reset();
    window_gen.reset();
    own_inner.reset();
    key.clear();
  }
};

}  // namespace

/// Everything one open session owns: the shared data plane plus the
/// query->group bindings it serves. Destroyed at Close().
struct QueryCoordinator::Session {
  sim::RoutingTree tree;
  sim::Network net;
  std::unique_ptr<data::DataGenerator> shared_gen;
  std::unique_ptr<sim::ShardRuntime> shard_rt;
  std::unique_ptr<fault::ChurnEngine> churn;

  std::vector<OpGroup> groups;
  std::map<std::string, size_t> group_of_key;

  /// One entry per query this session served, admission order.
  struct Served {
    size_t admitted_index = 0;
    size_t group = 0;
    sim::Epoch join = 0;
    sim::Epoch leave = kNoEpoch;  ///< Set when cancelled mid-session.
  };
  std::vector<Served> served;

  sim::Epoch epoch = 0;  ///< Next epoch StepEpoch() executes.

  Session(const Deployment& deployment, const sim::NetworkOptions& net_options,
          uint64_t net_seed)
      : tree(deployment.tree),
        net(&deployment.topology, &tree, net_options, util::Rng(net_seed)) {}
};

QueryCoordinator::QueryCoordinator(Scenario scenario, Options options)
    : options_(std::move(options)),
      owned_deployment_(std::make_unique<Deployment>(std::move(scenario), options_.seed)),
      deployment_(owned_deployment_.get()) {}

QueryCoordinator::QueryCoordinator(const Deployment* deployment, Options options)
    : options_(std::move(options)), deployment_(deployment) {}

QueryCoordinator::~QueryCoordinator() = default;
QueryCoordinator::QueryCoordinator(QueryCoordinator&&) noexcept = default;
QueryCoordinator& QueryCoordinator::operator=(QueryCoordinator&&) noexcept = default;

std::unique_ptr<data::DataGenerator> QueryCoordinator::MakeGenerator(uint64_t seed) const {
  if (options_.make_generator) return options_.make_generator(deployment_->scenario, seed);
  return deployment_->DefaultGenerator(seed);
}

sim::NetworkOptions QueryCoordinator::NetOptions() const { return RadioOptionsFrom(options_); }

util::StatusOr<QueryId> QueryCoordinator::Admit(const std::string& sql) {
  return Admit(sql, AdmitOptions{});
}

util::StatusOr<QueryId> QueryCoordinator::Admit(const std::string& sql,
                                                const AdmitOptions& admit) {
  if (admit.period < 1) return util::Status::Error("AdmitOptions::period must be >= 1");
  util::StatusOr<query::ParsedQuery> parsed = query::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  util::Status valid = query::Validate(parsed.value());
  if (!valid.ok()) return valid;
  Admitted entry;
  entry.id = next_id_++;
  entry.sql = sql;
  entry.parsed = parsed.value();
  entry.query_class = query::Classify(entry.parsed);
  entry.admit = admit;
  admitted_.push_back(std::move(entry));
  // Live admission: the query joins the running deployment at the next
  // epoch (creating its operator now if no compatible group exists).
  if (session_) BindToSession(admitted_.size() - 1);
  return admitted_.back().id;
}

util::Status QueryCoordinator::Cancel(QueryId id) {
  for (size_t qi = 0; qi < admitted_.size(); ++qi) {
    Admitted& entry = admitted_[qi];
    if (entry.id != id) continue;
    if (!entry.active) break;  // same clean error as an unknown id
    entry.active = false;
    if (!session_) return util::Status::Ok();
    // Live withdrawal: leave the share group; release the operator when the
    // group empties so it stops costing the shared network.
    for (Session::Served& served : session_->served) {
      if (served.admitted_index != qi || served.leave != kNoEpoch) continue;
      served.leave = session_->epoch;
      OpGroup& group = session_->groups[served.group];
      bool any_active = false;
      for (const Session::Served& other : session_->served) {
        if (other.group == served.group && other.leave == kNoEpoch) any_active = true;
      }
      if (!any_active && group.alive) {
        session_->group_of_key.erase(group.key);
        group.Release();
      }
      break;
    }
    return util::Status::Ok();
  }
  return util::Status::Error("no active query with id " + std::to_string(id));
}

bool QueryCoordinator::query_active(QueryId id) const {
  for (const Admitted& entry : admitted_) {
    if (entry.id == id) return entry.active;
  }
  return false;
}

size_t QueryCoordinator::active_queries() const {
  size_t n = 0;
  for (const Admitted& entry : admitted_) n += entry.active ? 1 : 0;
  return n;
}

bool QueryCoordinator::session_open() const { return session_ != nullptr; }

sim::Epoch QueryCoordinator::session_epoch() const { return session_ ? session_->epoch : 0; }

size_t QueryCoordinator::active_operators() const {
  if (!session_) return 0;
  size_t n = 0;
  for (const OpGroup& group : session_->groups) n += group.alive ? 1 : 0;
  return n;
}

/// Binds admitted_[admitted_index] to the open session: piggyback on an
/// existing compatible group or create the operator, and run one-shot
/// historic (TJA) queries immediately on the shared network. Mirrors the
/// historical batch planning loop exactly for queries bound at Open().
util::Status QueryCoordinator::BindToSession(size_t admitted_index) {
  Session& session = *session_;
  const Admitted& entry = admitted_[admitted_index];
  OperatorPlan plan = PlanFor(entry.parsed, entry.query_class, deployment_->scenario);
  std::string key = CompatKey(plan);
  if (!options_.share_operators) key += "#" + std::to_string(entry.id);

  Session::Served served;
  served.admitted_index = admitted_index;
  served.join = session.epoch;

  auto it = session.group_of_key.find(key);
  if (it != session.group_of_key.end()) {
    // Joining an existing group never perturbs it: the operator keeps its
    // state and wave schedule, the joiner just starts observing results.
    session.groups[it->second].members.push_back(admitted_index);
    served.group = it->second;
    session.served.push_back(served);
    return util::Status::Ok();
  }

  size_t n = deployment_->topology.num_nodes();
  OpGroup group;
  group.plan = plan;
  group.key = key;
  group.members.push_back(admitted_index);
  switch (plan.kind) {
    case OpKind::kTagFullView:
      group.algo =
          std::make_unique<core::TagTopK>(&session.net, session.shared_gen.get(), plan.spec);
      group.algorithm = group.algo->name();
      break;
    case OpKind::kSelect:
      group.select = std::make_unique<core::BasicSelect>(
          &session.net, session.shared_gen.get(), plan.has_where, plan.where);
      group.algorithm = "SELECT";
      break;
    case OpKind::kSnapshot:
      group.algo =
          std::make_unique<core::MintViews>(&session.net, session.shared_gen.get(), plan.spec);
      group.algorithm = group.algo->name();
      break;
    case OpKind::kHorizontal:
      group.own_inner = MakeGenerator(options_.seed);
      group.window_gen = std::make_unique<data::WindowAggregateGenerator>(
          group.own_inner.get(), n, plan.window, plan.spec.agg);
      group.algo =
          std::make_unique<core::MintViews>(&session.net, group.window_gen.get(), plan.spec);
      group.algorithm = "MINT+history";
      break;
    case OpKind::kVertical: {
      if (options_.historic.continuous) {
        // Continuous historic: a first-class session citizen. The operator
        // buffers each epoch's reading into per-node stores and StepEpoch
        // advances the sink's window view like any snapshot operator.
        core::HistoricStreamOptions hopt;
        hopt.k = plan.historic.k;
        hopt.agg = plan.historic.agg;
        hopt.window = plan.window;
        hopt.incremental = options_.historic.incremental;
        hopt.archive_to_flash = options_.historic.archive_to_flash;
        hopt.flash_accounting = options_.historic.flash_accounting;
        hopt.suppression = options_.historic.suppression;
        hopt.suppression_eps = options_.historic.suppression_eps;
        group.algo = std::make_unique<core::HistoricStream>(&session.net,
                                                            session.shared_gen.get(), hopt);
        group.algorithm = group.algo->name();
        break;
      }
      // One-shot historic: runs over already-buffered windows on the same
      // network — its traffic drains the same batteries the continuous
      // queries live off. Mid-session admits run theirs at admission.
      auto gen = MakeGenerator(options_.seed);
      std::vector<storage::HistoryStore> stores;
      stores.reserve(n);
      const data::ModalityInfo& info = data::GetModalityInfo(deployment_->scenario.modality);
      for (sim::NodeId id = 0; id < n; ++id) {
        stores.emplace_back(plan.window, /*archive_to_flash=*/false, info.min_value,
                            info.max_value);
      }
      for (size_t t = 0; t < plan.window; ++t) {
        for (sim::NodeId id = 1; id < n; ++id) {
          stores[id].Append(static_cast<sim::Epoch>(t),
                            gen->Value(id, static_cast<sim::Epoch>(t)));
        }
      }
      storage::StoreHistorySource source(&stores);
      core::Tja tja(&session.net, &source, plan.historic);
      sim::TrafficCounters before = session.net.total();
      group.historic = tja.Run();
      group.algorithm = tja.name();
      group.cost = session.net.total().Since(before);
      break;
    }
  }
  served.group = session.groups.size();
  session.group_of_key.emplace(std::move(key), session.groups.size());
  session.groups.push_back(std::move(group));
  session.served.push_back(served);
  return util::Status::Ok();
}

util::Status QueryCoordinator::Open() {
  if (session_) return util::Status::Error("session already open");

  // Observability opt-in rides the deployment config. The switches are
  // process-global and only ever turned ON here — another session or the
  // KSPOT_OBS environment variable may already hold them up — and flipping
  // them changes no answer: measurements are wall-clock only, outside the
  // golden-pinned path (golden_equivalence_test pins this).
  if (options_.enable_metrics) obs::SetMetricsEnabled(true);
  if (options_.enable_tracing) obs::SetTracingEnabled(true);

  // ------------------------------------------------------- shared data plane
  // One tree copy per session (churn repairs it in place; the deployment
  // stays pristine), one network, one generator: the per-epoch data wave
  // every epoch-driven operator reads. Seed derivations match KSpotServer's
  // snapshot path exactly, so a lone snapshot query reproduces Execute().
  session_ =
      std::make_unique<Session>(*deployment_, NetOptions(), options_.seed ^ options_.net_salt);
  session_->shared_gen = MakeGenerator(options_.seed);

  // Parallel epoch execution: cut the tree at its cluster heads and run the
  // subtree lanes concurrently (merged deterministically every epoch).
  // shards <= 1 attaches nothing — the serial path runs exactly as before.
  if (options_.shards > 1) {
    session_->shard_rt = std::make_unique<sim::ShardRuntime>(
        &session_->net, sim::ShardRuntime::Options{options_.shards, options_.shard_threads});
  }

  if (options_.enable_churn) {
    fault::FaultPlanOptions churn_opt = options_.churn;
    if (churn_opt.horizon == 0 || churn_opt.horizon > options_.epochs) {
      churn_opt.horizon = static_cast<sim::Epoch>(options_.epochs);
    }
    fault::FaultPlan plan =
        fault::FaultPlan::Generate(deployment_->topology, churn_opt, options_.seed ^ 0xFA11);
    session_->churn =
        std::make_unique<fault::ChurnEngine>(&session_->net, &session_->tree, std::move(plan));
  }

  // Bind every admitted query: group planning in admission order, exactly
  // the historical batch planning loop (operator constructors are pure state
  // allocation, so inline one-shot TJA runs land in the same group order the
  // batch TJA phase used).
  for (size_t qi = 0; qi < admitted_.size(); ++qi) {
    if (!admitted_[qi].active) continue;
    BindToSession(qi);
  }
  return util::Status::Ok();
}

util::StatusOr<EpochUpdate> QueryCoordinator::StepEpoch() {
  if (!session_) return util::Status::Error("no open session (call Open first)");
  Session& session = *session_;
  const sim::Epoch epoch = session.epoch;
  static const uint32_t kStepSpan = obs::GlobalTracer().InternName("coord.step");
  obs::ScopedSpan step_span(kStepSpan);
  const uint64_t step_start = obs::MetricsOn() ? obs::NowMicros() : 0;
  EpochUpdate update;
  update.epoch = epoch;
  sim::TrafficCounters epoch_start = session.net.total();
  // Refill per-node retry budgets and clear the degraded flag: deadlines and
  // budgets are per-epoch contracts.
  if (options_.reliability.enabled) session.net.BeginReliabilityEpoch();

  bool topology_changed = false;
  sim::TopologyDelta delta;
  if (session.churn) {
    static const uint32_t kChurnSpan = obs::GlobalTracer().InternName("coord.churn");
    obs::ScopedSpan churn_span(kChurnSpan);
    fault::ChurnReport churn_report = session.churn->BeginEpoch(epoch);
    topology_changed = churn_report.topology_changed;
    delta = churn_report.delta;
  }

  // Execution order: priority-desc over the live epoch-driven groups, ties
  // in creation (= admission) order — all-default priorities reproduce the
  // batch ordering bit-exactly.
  std::vector<size_t> order;
  std::vector<int> group_priority(session.groups.size(), 0);
  std::vector<char> group_eligible(session.groups.size(), 0);
  {
    static const uint32_t kPlanSpan = obs::GlobalTracer().InternName("coord.plan");
    obs::ScopedSpan plan_span(kPlanSpan);
    for (const Session::Served& served : session.served) {
      if (served.leave != kNoEpoch) continue;
      const AdmitOptions& admit = admitted_[served.admitted_index].admit;
      size_t gi = served.group;
      group_priority[gi] = std::max(group_priority[gi], admit.priority);
      if (epoch >= served.join &&
          (epoch - served.join) % static_cast<sim::Epoch>(admit.period) == 0) {
        group_eligible[gi] = 1;
      }
    }
    for (size_t gi = 0; gi < session.groups.size(); ++gi) {
      // Epoch-driven groups carry an algorithm or a select pipeline.
      // One-shot vertical (TJA) groups carry neither — they already ran at
      // bind time — while continuous-historic vertical groups step here
      // like any snapshot operator.
      const OpGroup& group = session.groups[gi];
      if (group.alive && (group.algo != nullptr || group.select != nullptr)) {
        order.push_back(gi);
      }
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return group_priority[a] > group_priority[b];
    });
  }

  static const uint32_t kWavesSpan = obs::GlobalTracer().InternName("coord.waves");
  const uint64_t waves_start = obs::TracingOn() ? obs::NowMicros() : 0;
  for (size_t gi : order) {
    OpGroup& group = session.groups[gi];
    GroupUpdate gu;
    gu.group_id = gi;
    gu.algorithm = group.algorithm;
    for (const Session::Served& served : session.served) {
      if (served.group == gi && served.leave == kNoEpoch) {
        gu.members.push_back(admitted_[served.admitted_index].id);
      }
    }
    if (!group_eligible[gi]) {
      // Rate-limited out of this epoch. Operators keep caches keyed against
      // the tree; remember to evict them if it changed while we slept.
      if (topology_changed) group.pending_refresh = true;
      update.groups.push_back(std::move(gu));
      continue;
    }
    if (group.span_id == 0 && obs::TracingOn()) {
      group.span_id = obs::GlobalTracer().InternName("coord.run." + group.algorithm);
    }
    obs::ScopedSpan group_span(group.span_id);
    sim::TrafficCounters before = session.net.total();
    // The operator's own churn repair (e.g. MINT's cardinality-delta
    // converge-cast) is part of what this query group costs the network,
    // so it books inside the group's delta; only the tree-level join
    // handshakes (phase "fault.repair", charged by the engine above) stay
    // shared.
    if (group.pending_refresh) {
      if (group.algo) group.algo->OnTopologyChanged();
      group.pending_refresh = false;
    }
    if (topology_changed && group.algo) group.algo->OnTopologyChanged(delta);
    gu.ran = true;
    if (group.algo) {
      group.per_epoch.push_back(group.algo->RunEpoch(epoch));
      gu.result = std::make_shared<core::TopKResult>(group.per_epoch.back());
    } else {
      group.rows_per_epoch.push_back(group.select->RunEpoch(epoch));
      gu.rows =
          std::make_shared<std::vector<core::SelectTuple>>(group.rows_per_epoch.back());
    }
    group.result_epochs.push_back(epoch);
    group.cost.Add(session.net.total().Since(before));
    update.groups.push_back(std::move(gu));
  }
  if (waves_start != 0) {
    obs::GlobalTracer().Record(kWavesSpan, waves_start, obs::NowMicros() - waves_start);
  }

  {
    static const uint32_t kMergeSpan = obs::GlobalTracer().InternName("coord.merge");
    obs::ScopedSpan merge_span(kMergeSpan);
    update.epoch_cost = session.net.total().Since(epoch_start);
    update.alive = session.net.AliveCount();
    if (session.churn) {
      update.detached = session.churn->detached_count();
      update.repair_events = session.churn->repair_events();
      update.repair_messages = session.churn->repair_messages();
    }
    update.degraded = session.net.EpochDegraded();
    if (options_.reliability.enabled && obs::MetricsOn()) {
      static obs::Counter& retries = obs::Registry().counter("net.retries");
      static obs::Counter& backoff = obs::Registry().counter("net.backoff_us");
      static obs::Histogram& completeness = obs::Registry().histogram("result.completeness");
      retries.Add(update.epoch_cost.retries);
      backoff.Add(update.epoch_cost.backoff_us);
      for (const GroupUpdate& gu : update.groups) {
        if (gu.ran && gu.result) completeness.Observe(gu.result->completeness);
      }
    }
    if (obs::MetricsOn() &&
        (update.epoch_cost.flash_reads != 0 || update.epoch_cost.flash_writes != 0)) {
      static obs::Counter& flash_reads = obs::Registry().counter("net.flash_reads");
      static obs::Counter& flash_writes = obs::Registry().counter("net.flash_writes");
      static obs::Counter& flash_bytes = obs::Registry().counter("net.flash_bytes");
      flash_reads.Add(update.epoch_cost.flash_reads);
      flash_writes.Add(update.epoch_cost.flash_writes);
      flash_bytes.Add(update.epoch_cost.flash_bytes);
    }
    if (options_.historic.continuous && obs::MetricsOn()) {
      static obs::Counter& historic_steps = obs::Registry().counter("historic.steps");
      for (const GroupUpdate& gu : update.groups) {
        if (gu.ran && gu.algorithm.rfind("HIST-", 0) == 0) historic_steps.Add(1);
      }
    }
  }
  if (step_start != 0) {
    static obs::Histogram& step_us = obs::Registry().histogram("coord.step_us");
    static obs::Counter& epochs = obs::Registry().counter("coord.epochs");
    step_us.Observe(static_cast<double>(obs::NowMicros() - step_start));
    epochs.Add(1);
  }
  session.epoch = epoch + 1;
  return update;
}

util::StatusOr<CoordinatorReport> QueryCoordinator::Close() {
  if (!session_) return util::Status::Error("no open session (call Open first)");
  Session& session = *session_;
  CoordinatorReport report;
  report.epochs = session.epoch;
  report.total = session.net.total();
  report.operators = session.groups.size();
  if (session.churn) {
    report.repair_events = session.churn->repair_events();
    report.repair_messages = session.churn->repair_messages();
    report.detached_nodes = session.churn->detached_count();
  }

  static const uint32_t kSliceSpan = obs::GlobalTracer().InternName("coord.slice");
  obs::ScopedSpan slice_span(kSliceSpan);
  std::vector<size_t> members_left(session.groups.size(), 0);
  for (const Session::Served& served : session.served) ++members_left[served.group];
  for (const Session::Served& served : session.served) {
    const Admitted& entry = admitted_[served.admitted_index];
    OpGroup& group = session.groups[served.group];
    QueryOutcome outcome;
    outcome.id = entry.id;
    outcome.sql = entry.sql;
    outcome.query_class = entry.query_class;
    outcome.algorithm = group.algorithm;
    outcome.shared_cost = group.cost;
    outcome.share_group_size = group.members.size();
    outcome.joined_epoch = served.join;
    outcome.cancelled_mid_session = served.leave != kNoEpoch;
    // The query observes the group results produced inside its [join, leave)
    // window. Full-span members get the whole history; the last of them
    // takes it by move so an N-way share costs N-1 copies, not N.
    size_t lo = 0;
    size_t hi = group.result_epochs.size();
    while (lo < hi && group.result_epochs[lo] < served.join) ++lo;
    while (hi > lo && group.result_epochs[hi - 1] >= served.leave) --hi;
    bool full_span = lo == 0 && hi == group.result_epochs.size();
    if (--members_left[served.group] == 0 && full_span) {
      outcome.per_epoch = std::move(group.per_epoch);
      outcome.rows_per_epoch = std::move(group.rows_per_epoch);
      outcome.historic = std::move(group.historic);
    } else {
      if (!group.per_epoch.empty()) {
        outcome.per_epoch.assign(group.per_epoch.begin() + lo, group.per_epoch.begin() + hi);
      }
      if (!group.rows_per_epoch.empty()) {
        outcome.rows_per_epoch.assign(group.rows_per_epoch.begin() + lo,
                                      group.rows_per_epoch.begin() + hi);
      }
      outcome.historic = group.historic;
    }
    report.outcomes.push_back(std::move(outcome));
    ++report.queries;
  }
  session_.reset();
  return report;
}

util::StatusOr<CoordinatorReport> QueryCoordinator::Run() {
  // Batch mode is the session driven end to end: pure in the admitted set
  // and seed, repeatable, bit-identical to the historical monolithic loop.
  util::Status opened = Open();
  if (!opened.ok()) return opened;
  for (size_t e = 0; e < options_.epochs; ++e) {
    util::StatusOr<EpochUpdate> step = StepEpoch();
    if (!step.ok()) {
      session_.reset();
      return step.status();
    }
  }
  return Close();
}

}  // namespace kspot::system
