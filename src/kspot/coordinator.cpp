#include "kspot/coordinator.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "agg/aggregate.hpp"
#include "core/history_source.hpp"
#include "core/mint.hpp"
#include "core/tag.hpp"
#include "data/windowed.hpp"
#include "fault/churn_engine.hpp"
#include "sim/shard_runtime.hpp"
#include "storage/history_store.hpp"

namespace kspot::system {

namespace {

/// How a query executes on the shared data plane.
enum class OpKind {
  kSnapshot,    ///< MINT continuous top-k.
  kTagFullView, ///< GROUP BY without TOP: TAG reporting every group.
  kSelect,      ///< Ungrouped acquisitional SELECT (optional WHERE).
  kHorizontal,  ///< MINT over per-node window aggregates.
  kVertical,    ///< One-shot TJA over buffered windows.
};

/// The single classification both the compatibility key and the operator
/// construction derive from: two queries share an operator if and only if
/// their plans carry identical fields, because the key below is built from
/// exactly the fields the construction switch consumes.
struct OperatorPlan {
  OpKind kind = OpKind::kSnapshot;
  core::QuerySpec spec;                  ///< kSnapshot/kTagFullView/kHorizontal.
  size_t window = 0;                     ///< kHorizontal/kVertical.
  core::HistoricOptions historic;        ///< kVertical.
  bool has_where = false;                ///< kSelect.
  query::Predicate where;                ///< kSelect.
};

OperatorPlan PlanFor(const query::ParsedQuery& parsed, query::QueryClass cls,
                     const Scenario& scenario) {
  OperatorPlan plan;
  plan.spec = SpecFromQuery(parsed, scenario);
  plan.window =
      parsed.history > 0 ? static_cast<size_t>(parsed.history) : Deployment::kDefaultWindow;
  switch (cls) {
    case query::QueryClass::kBasicSelect:
      if (parsed.FirstAggregate() != nullptr && !parsed.group_by.empty()) {
        plan.kind = OpKind::kTagFullView;
      } else {
        plan.kind = OpKind::kSelect;
        plan.has_where = parsed.has_where;
        if (parsed.has_where) plan.where = parsed.where;
      }
      break;
    case query::QueryClass::kSnapshotTopK:
      plan.kind = OpKind::kSnapshot;
      break;
    case query::QueryClass::kHistoricHorizontal:
      plan.kind = OpKind::kHorizontal;
      break;
    case query::QueryClass::kHistoricVertical: {
      plan.kind = OpKind::kVertical;
      plan.historic.k = std::max(1, parsed.top_k);
      const query::SelectItem* agg_item = parsed.FirstAggregate();
      if (agg_item != nullptr) agg::ParseAggKind(agg_item->aggregate, &plan.historic.agg);
      break;
    }
  }
  return plan;
}

/// Canonical compatibility key, a pure function of the plan's consumed
/// fields: queries mapping to the same key reduce to the same operator
/// configuration and may piggyback on one instance.
std::string CompatKey(const OperatorPlan& plan) {
  char buf[160];
  switch (plan.kind) {
    case OpKind::kSnapshot:
    case OpKind::kTagFullView:
      std::snprintf(buf, sizeof buf, "%s|k=%d|agg=%d|group=%d",
                    plan.kind == OpKind::kSnapshot ? "mint" : "tag", plan.spec.k,
                    static_cast<int>(plan.spec.agg), static_cast<int>(plan.spec.grouping));
      break;
    case OpKind::kSelect:
      if (plan.has_where) {
        std::snprintf(buf, sizeof buf, "select|%s|%d|%.17g", plan.where.attribute.c_str(),
                      static_cast<int>(plan.where.op), plan.where.literal);
      } else {
        std::snprintf(buf, sizeof buf, "select|all");
      }
      break;
    case OpKind::kHorizontal:
      std::snprintf(buf, sizeof buf, "hist|k=%d|agg=%d|group=%d|w=%zu", plan.spec.k,
                    static_cast<int>(plan.spec.agg), static_cast<int>(plan.spec.grouping),
                    plan.window);
      break;
    case OpKind::kVertical:
      std::snprintf(buf, sizeof buf, "tja|k=%d|agg=%d|w=%zu", plan.historic.k,
                    static_cast<int>(plan.historic.agg), plan.window);
      break;
  }
  return buf;
}

/// One operator instance of the shared data plane and the queries riding it.
struct OpGroup {
  OperatorPlan plan;
  std::string algorithm;
  /// Indices into the admitted set (admission order).
  std::vector<size_t> members;
  /// Epoch-driven operators (snapshot MINT, grouped-select TAG, horizontal
  /// MINT-over-windows) ...
  std::unique_ptr<core::EpochAlgorithm> algo;
  /// ... or the tuple-collection path of ungrouped selects.
  std::unique_ptr<core::BasicSelect> select;
  /// Horizontal historic operators own their window adapter (the shared
  /// per-epoch wave feeds it through its own inner generator replay).
  std::unique_ptr<data::DataGenerator> own_inner;
  std::unique_ptr<data::WindowAggregateGenerator> window_gen;

  sim::TrafficCounters cost;
  std::vector<core::TopKResult> per_epoch;
  std::vector<std::vector<core::SelectTuple>> rows_per_epoch;
  core::HistoricResult historic;
};

}  // namespace

QueryCoordinator::QueryCoordinator(Scenario scenario, Options options)
    : options_(std::move(options)), deployment_(std::move(scenario), options_.seed) {}

std::unique_ptr<data::DataGenerator> QueryCoordinator::MakeGenerator(uint64_t seed) const {
  if (options_.make_generator) return options_.make_generator(deployment_.scenario, seed);
  return deployment_.DefaultGenerator(seed);
}

sim::NetworkOptions QueryCoordinator::NetOptions() const { return RadioOptionsFrom(options_); }

util::StatusOr<QueryId> QueryCoordinator::Admit(const std::string& sql) {
  util::StatusOr<query::ParsedQuery> parsed = query::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  util::Status valid = query::Validate(parsed.value());
  if (!valid.ok()) return valid;
  Admitted entry;
  entry.id = next_id_++;
  entry.sql = sql;
  entry.parsed = parsed.value();
  entry.query_class = query::Classify(entry.parsed);
  admitted_.push_back(std::move(entry));
  return admitted_.back().id;
}

util::Status QueryCoordinator::Cancel(QueryId id) {
  for (Admitted& entry : admitted_) {
    if (entry.id == id && entry.active) {
      entry.active = false;
      return util::Status::Ok();
    }
  }
  return util::Status::Error("no active query with id " + std::to_string(id));
}

size_t QueryCoordinator::active_queries() const {
  size_t n = 0;
  for (const Admitted& entry : admitted_) n += entry.active ? 1 : 0;
  return n;
}

util::StatusOr<CoordinatorReport> QueryCoordinator::Run() {
  CoordinatorReport report;
  report.epochs = options_.epochs;

  // ------------------------------------------------------- shared data plane
  // One tree copy per run (churn repairs it in place; the deployment stays
  // pristine), one network, one generator: the per-epoch data wave every
  // epoch-driven operator reads. Seed derivations match KSpotServer's
  // snapshot path exactly, so a lone snapshot query reproduces Execute().
  sim::RoutingTree tree = deployment_.tree;
  sim::Network net(&deployment_.topology, &tree, NetOptions(), util::Rng(options_.seed ^ 0x77));
  std::unique_ptr<data::DataGenerator> shared_gen = MakeGenerator(options_.seed);

  // Parallel epoch execution: cut the tree at its cluster heads and run the
  // subtree lanes concurrently (merged deterministically every epoch).
  // shards <= 1 attaches nothing — the serial path runs exactly as before.
  std::unique_ptr<sim::ShardRuntime> shard_rt;
  if (options_.shards > 1) {
    shard_rt = std::make_unique<sim::ShardRuntime>(
        &net, sim::ShardRuntime::Options{options_.shards, options_.shard_threads});
  }

  std::unique_ptr<fault::ChurnEngine> churn;
  if (options_.enable_churn) {
    fault::FaultPlanOptions churn_opt = options_.churn;
    if (churn_opt.horizon == 0 || churn_opt.horizon > options_.epochs) {
      churn_opt.horizon = static_cast<sim::Epoch>(options_.epochs);
    }
    fault::FaultPlan plan =
        fault::FaultPlan::Generate(deployment_.topology, churn_opt, options_.seed ^ 0xFA11);
    churn = std::make_unique<fault::ChurnEngine>(&net, &tree, std::move(plan));
  }

  // ------------------------------------------------- operator group planning
  std::vector<OpGroup> groups;
  std::map<std::string, size_t> group_of_key;
  std::vector<size_t> group_of_query(admitted_.size(), SIZE_MAX);
  size_t n = deployment_.topology.num_nodes();

  for (size_t qi = 0; qi < admitted_.size(); ++qi) {
    const Admitted& entry = admitted_[qi];
    if (!entry.active) continue;
    OperatorPlan plan = PlanFor(entry.parsed, entry.query_class, deployment_.scenario);
    std::string key = CompatKey(plan);
    if (!options_.share_operators) key += "#" + std::to_string(entry.id);
    auto it = group_of_key.find(key);
    if (it != group_of_key.end()) {
      groups[it->second].members.push_back(qi);
      group_of_query[qi] = it->second;
      continue;
    }
    OpGroup group;
    group.plan = plan;
    group.members.push_back(qi);
    switch (plan.kind) {
      case OpKind::kTagFullView:
        group.algo = std::make_unique<core::TagTopK>(&net, shared_gen.get(), plan.spec);
        group.algorithm = group.algo->name();
        break;
      case OpKind::kSelect:
        group.select = std::make_unique<core::BasicSelect>(&net, shared_gen.get(),
                                                           plan.has_where, plan.where);
        group.algorithm = "SELECT";
        break;
      case OpKind::kSnapshot:
        group.algo = std::make_unique<core::MintViews>(&net, shared_gen.get(), plan.spec);
        group.algorithm = group.algo->name();
        break;
      case OpKind::kHorizontal:
        group.own_inner = MakeGenerator(options_.seed);
        group.window_gen = std::make_unique<data::WindowAggregateGenerator>(
            group.own_inner.get(), n, plan.window, plan.spec.agg);
        group.algo = std::make_unique<core::MintViews>(&net, group.window_gen.get(), plan.spec);
        group.algorithm = "MINT+history";
        break;
      case OpKind::kVertical:
        group.algorithm = "TJA";
        break;
    }
    group_of_key.emplace(std::move(key), groups.size());
    group_of_query[qi] = groups.size();
    groups.push_back(std::move(group));
  }

  // ------------------------------------------ one-shot historic (TJA) phase
  // Vertical queries run over already-buffered windows before the continuous
  // loop starts, on the same network: their traffic drains the same
  // batteries the continuous queries live off.
  for (OpGroup& group : groups) {
    if (group.plan.kind != OpKind::kVertical) continue;
    auto gen = MakeGenerator(options_.seed);
    std::vector<storage::HistoryStore> stores;
    stores.reserve(n);
    const data::ModalityInfo& info = data::GetModalityInfo(deployment_.scenario.modality);
    for (sim::NodeId id = 0; id < n; ++id) {
      stores.emplace_back(group.plan.window, /*archive_to_flash=*/false, info.min_value,
                          info.max_value);
    }
    for (size_t t = 0; t < group.plan.window; ++t) {
      for (sim::NodeId id = 1; id < n; ++id) {
        stores[id].Append(static_cast<sim::Epoch>(t),
                          gen->Value(id, static_cast<sim::Epoch>(t)));
      }
    }
    storage::StoreHistorySource source(&stores);
    core::Tja tja(&net, &source, group.plan.historic);
    sim::TrafficCounters before = net.total();
    group.historic = tja.Run();
    group.algorithm = tja.name();
    group.cost = net.total().Since(before);
  }

  // ------------------------------------------------------ lockstep epoch loop
  for (size_t e = 0; e < options_.epochs; ++e) {
    auto epoch = static_cast<sim::Epoch>(e);
    bool topology_changed = false;
    sim::TopologyDelta delta;
    if (churn) {
      fault::ChurnReport churn_report = churn->BeginEpoch(epoch);
      topology_changed = churn_report.topology_changed;
      delta = churn_report.delta;
    }
    for (OpGroup& group : groups) {
      if (group.plan.kind == OpKind::kVertical) continue;
      sim::TrafficCounters before = net.total();
      // The operator's own churn repair (e.g. MINT's cardinality-delta
      // converge-cast) is part of what this query group costs the network,
      // so it books inside the group's delta; only the tree-level join
      // handshakes (phase "fault.repair", charged by the engine above) stay
      // shared.
      if (topology_changed && group.algo) group.algo->OnTopologyChanged(delta);
      if (group.algo) {
        group.per_epoch.push_back(group.algo->RunEpoch(epoch));
      } else {
        group.rows_per_epoch.push_back(group.select->RunEpoch(epoch));
      }
      group.cost.Add(net.total().Since(before));
    }
  }

  // --------------------------------------------------------------- reporting
  report.total = net.total();
  report.operators = groups.size();
  if (churn) {
    report.repair_events = churn->repair_events();
    report.repair_messages = churn->repair_messages();
    report.detached_nodes = churn->detached_count();
  }
  std::vector<size_t> members_left(groups.size());
  for (size_t gi = 0; gi < groups.size(); ++gi) members_left[gi] = groups[gi].members.size();
  for (size_t qi = 0; qi < admitted_.size(); ++qi) {
    const Admitted& entry = admitted_[qi];
    if (!entry.active) continue;
    OpGroup& group = groups[group_of_query[qi]];
    QueryOutcome outcome;
    outcome.id = entry.id;
    outcome.sql = entry.sql;
    outcome.query_class = entry.query_class;
    outcome.algorithm = group.algorithm;
    outcome.shared_cost = group.cost;
    outcome.share_group_size = group.members.size();
    // Each member gets the group's full results per the API; the last one
    // takes them by move so an N-way share costs N-1 copies, not N.
    if (--members_left[group_of_query[qi]] == 0) {
      outcome.per_epoch = std::move(group.per_epoch);
      outcome.rows_per_epoch = std::move(group.rows_per_epoch);
      outcome.historic = std::move(group.historic);
    } else {
      outcome.per_epoch = group.per_epoch;
      outcome.rows_per_epoch = group.rows_per_epoch;
      outcome.historic = group.historic;
    }
    report.outcomes.push_back(std::move(outcome));
    ++report.queries;
  }
  return report;
}

}  // namespace kspot::system
