#include "kspot/scenario_config.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace kspot::system {

sim::Topology Scenario::BuildTopology() const {
  std::vector<sim::Position> positions;
  std::vector<sim::GroupId> rooms;
  size_t max_id = 0;
  for (const Node& n : nodes) max_id = std::max<size_t>(max_id, n.id);
  positions.assign(max_id + 1, sim::Position{});
  rooms.assign(max_id + 1, 0);
  for (const Node& n : nodes) {
    positions[n.id] = sim::Position{n.x, n.y};
    rooms[n.id] = n.room;
  }
  return sim::Topology(std::move(positions), std::move(rooms), comm_range);
}

std::string Scenario::ClusterName(sim::GroupId room) const {
  auto it = cluster_names.find(room);
  if (it != cluster_names.end()) return it->second;
  return "room-" + std::to_string(room);
}

std::string Scenario::ToText() const {
  std::ostringstream oss;
  oss << "# KSpot scenario file\n";
  oss << "scenario " << name << '\n';
  oss << "field " << util::FormatDouble(field_w, 1) << ' ' << util::FormatDouble(field_h, 1)
      << '\n';
  oss << "range " << util::FormatDouble(comm_range, 1) << '\n';
  oss << "modality " << data::GetModalityInfo(modality).name << '\n';
  for (const auto& [room, cname] : cluster_names) {
    oss << "cluster " << room << ' ' << cname << '\n';
  }
  for (const Node& n : nodes) {
    oss << "node " << n.id << ' ' << util::FormatDouble(n.x, 2) << ' '
        << util::FormatDouble(n.y, 2) << ' ' << n.room << '\n';
  }
  return oss.str();
}

util::StatusOr<Scenario> Scenario::FromText(const std::string& text) {
  Scenario s;
  s.nodes.clear();
  std::istringstream iss(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    return util::Status::Error("scenario line " + std::to_string(lineno) + ": " + msg);
  };
  while (std::getline(iss, line)) {
    ++lineno;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream ls{std::string(trimmed)};
    std::string directive;
    ls >> directive;
    if (directive == "scenario") {
      ls >> s.name;
    } else if (directive == "field") {
      if (!(ls >> s.field_w >> s.field_h)) return fail("field needs two numbers");
    } else if (directive == "range") {
      if (!(ls >> s.comm_range)) return fail("range needs a number");
    } else if (directive == "modality") {
      std::string m;
      ls >> m;
      if (!data::ParseModality(m, &s.modality)) return fail("unknown modality '" + m + "'");
    } else if (directive == "cluster") {
      long room;
      std::string cname;
      if (!(ls >> room >> cname)) return fail("cluster needs <room> <name>");
      s.cluster_names[static_cast<sim::GroupId>(room)] = cname;
    } else if (directive == "node") {
      Node n;
      long id, room;
      if (!(ls >> id >> n.x >> n.y >> room)) return fail("node needs <id> <x> <y> <room>");
      n.id = static_cast<sim::NodeId>(id);
      n.room = static_cast<sim::GroupId>(room);
      s.nodes.push_back(n);
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }
  if (s.nodes.empty()) return util::Status::Error("scenario has no nodes");
  bool has_sink = false;
  for (const Node& n : s.nodes) has_sink |= n.id == sim::kSinkId;
  if (!has_sink) return util::Status::Error("scenario has no sink (node 0)");
  return s;
}

util::StatusOr<Scenario> Scenario::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::Error("cannot open scenario file '" + path + "'");
  std::ostringstream oss;
  oss << in.rdbuf();
  return FromText(oss.str());
}

bool Scenario::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToText();
  return static_cast<bool>(out);
}

Scenario Scenario::Figure1() {
  Scenario s;
  s.name = "figure1";
  s.field_w = 20.0;
  s.field_h = 20.0;
  s.comm_range = 8.0;
  s.modality = data::Modality::kSound;
  s.cluster_names = {{0, "A"}, {1, "B"}, {2, "C"}, {3, "D"}};
  sim::Topology topo = sim::MakeFigure1();
  for (sim::NodeId id = 0; id < topo.num_nodes(); ++id) {
    s.nodes.push_back(Node{id, topo.position(id).x, topo.position(id).y, topo.room(id)});
  }
  return s;
}

Scenario Scenario::ConferenceFloor(size_t rooms, size_t nodes_per_room, uint64_t seed) {
  Scenario s;
  s.name = "conference-floor";
  s.field_w = 60.0;
  s.field_h = 40.0;
  s.comm_range = 14.0;
  s.modality = data::Modality::kSound;
  util::Rng rng(seed);
  // Room centers on a loose grid with jitter (auditorium, session rooms,
  // coffee stations, ... as in the demo plan of Section IV-B).
  static const char* kNames[] = {"Auditorium", "RoomA", "RoomB",  "RoomC",
                                 "Coffee",     "Lobby", "Posters", "Registration"};
  size_t cols = static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(rooms))));
  double cell_w = s.field_w / static_cast<double>(cols);
  double cell_h = s.field_h / static_cast<double>((rooms + cols - 1) / cols);
  for (size_t r = 0; r < rooms; ++r) {
    std::string cname = r < std::size(kNames) ? kNames[r] : ("Area" + std::to_string(r));
    s.cluster_names[static_cast<sim::GroupId>(r)] = cname;
  }
  // Placements must leave every sensor connected to the sink (a real
  // installer repositions motes until the network forms); resample, widening
  // the radio range as a last resort.
  for (int attempt = 0; attempt < 64; ++attempt) {
    s.nodes.clear();
    s.nodes.push_back(Node{sim::kSinkId, s.field_w / 2, s.field_h / 2, 0});
    sim::NodeId next_id = 1;
    for (size_t r = 0; r < rooms; ++r) {
      double cx = (static_cast<double>(r % cols) + 0.5) * cell_w;
      double cy = (static_cast<double>(r / cols) + 0.5) * cell_h;
      for (size_t i = 0; i < nodes_per_room; ++i) {
        Node n;
        n.id = next_id++;
        n.x = std::clamp(cx + rng.NextGaussian(0, cell_w / 6), 0.0, s.field_w);
        n.y = std::clamp(cy + rng.NextGaussian(0, cell_h / 6), 0.0, s.field_h);
        n.room = static_cast<sim::GroupId>(r);
        s.nodes.push_back(n);
      }
    }
    if (s.BuildTopology().IsConnected()) break;
    if (attempt % 4 == 3) s.comm_range *= 1.15;
  }
  return s;
}

}  // namespace kspot::system
