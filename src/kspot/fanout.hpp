#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/result.hpp"
#include "core/select.hpp"
#include "kspot/coordinator.hpp"
#include "util/status.hpp"

namespace kspot::system {

/// Handle of one subscription.
using SubscriberId = uint64_t;

/// What one subscriber has observed so far.
struct SubscriberStats {
  QueryId query = 0;               ///< The query subscribed to.
  uint64_t deliveries = 0;         ///< Epoch results delivered so far.
  sim::Epoch last_delivery_epoch = 0;  ///< Valid when deliveries > 0.
  /// Epochs the subscriber's view lags the data plane: published epochs
  /// since its query's group last ran (0 = fresh as of the last Publish).
  /// Rate-limited queries (AdmitOptions::period > 1) accrue staleness on
  /// skipped epochs and snap back to 0 when their group runs.
  sim::Epoch staleness = 0;
  /// Completeness of the view currently served (the latest materialized
  /// ranked result's TopKResult::completeness). 1.0 before any delivery, for
  /// tuple-select queries, and whenever the reliability layer is off —
  /// subscribers see staleness AND how partial the data behind it is.
  double completeness = 1.0;
};

/// Subscriber fan-out over a coordinator session (the U ≫ Q production
/// shape): U subscription handles ride Q admitted queries, which the
/// CompatKey dedupe already reduces to G <= Q operator groups — so ONE
/// converge-cast per group per epoch feeds every subscriber.
///
/// The hub is the result side of that funnel. Each StepEpoch's EpochUpdate
/// carries one materialized result per group (a shared_ptr — materialized
/// once, referenced everywhere); Publish() routes it to every subscriber of
/// every member query for constant per-subscriber work (a delivery-counter
/// bump and an epoch stamp — no copy, no per-subscriber allocation). That
/// keeps delivery throughput decoupled from result size and is what E18
/// (`fanout_throughput`) measures at U up to 10^6.
///
/// The hub tracks the admitted set through the updates themselves: queries
/// admitted mid-run start delivering the epoch their group first runs for
/// them, cancelled queries drop out of the member lists and their
/// subscribers simply stop accruing deliveries (staleness then grows —
/// a dashboard's cue to resubscribe).
class FanOutHub {
 public:
  /// `coordinator` validates subscription targets; must outlive the hub.
  explicit FanOutHub(const QueryCoordinator* coordinator);

  /// Subscribes to an admitted query's results. Error for ids the
  /// coordinator does not currently serve.
  util::StatusOr<SubscriberId> Subscribe(QueryId query);
  /// Drops a subscription; the handle becomes invalid. Unknown or
  /// already-unsubscribed handles are clean errors.
  util::Status Unsubscribe(SubscriberId id);

  /// Fans one epoch's group updates out to every subscriber; returns the
  /// number of deliveries made (sum over ran groups of their subscriber
  /// counts). Call once per StepEpoch with its EpochUpdate.
  size_t Publish(const EpochUpdate& update);

  /// The subscriber's current view: the last materialized ranked result of
  /// its query's group (shared with every other subscriber of the group),
  /// or null before the first delivery / for tuple-select queries.
  std::shared_ptr<const core::TopKResult> Latest(SubscriberId id) const;
  /// Tuple-select counterpart of Latest().
  std::shared_ptr<const std::vector<core::SelectTuple>> LatestRows(SubscriberId id) const;

  util::StatusOr<SubscriberStats> Stats(SubscriberId id) const;

  size_t subscribers() const { return live_subscribers_; }
  /// Total deliveries across all subscribers since construction.
  uint64_t total_deliveries() const { return total_deliveries_; }
  /// The epoch of the last Publish() (staleness is measured against it).
  sim::Epoch last_published_epoch() const { return last_epoch_; }

 private:
  struct Subscriber {
    QueryId query = 0;
    uint64_t deliveries = 0;
    sim::Epoch last_delivery_epoch = 0;
    bool live = false;
    uint32_t slot = 0;  ///< Index in its query's routing vector.
  };
  struct QueryFeed {
    /// Indices into subs_ of this query's live subscribers (contiguous, so
    /// the Publish inner loop is a linear slab walk).
    std::vector<uint32_t> routing;
    std::shared_ptr<const core::TopKResult> latest;
    std::shared_ptr<const std::vector<core::SelectTuple>> latest_rows;
  };

  const QueryCoordinator* coordinator_;
  std::vector<Subscriber> subs_;  ///< Slab; SubscriberId = index + 1.
  std::unordered_map<QueryId, QueryFeed> feeds_;
  size_t live_subscribers_ = 0;
  uint64_t total_deliveries_ = 0;
  sim::Epoch last_epoch_ = 0;
  bool published_ = false;

  const Subscriber* Find(SubscriberId id) const;
};

}  // namespace kspot::system
