#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cost_report.hpp"
#include "core/result.hpp"
#include "core/select.hpp"
#include "core/tja.hpp"
#include "data/generators.hpp"
#include "fault/fault_plan.hpp"
#include "kspot/deployment.hpp"
#include "kspot/node_runtime.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/system_panel.hpp"
#include "query/parser.hpp"
#include "sim/network.hpp"
#include "sim/routing_tree.hpp"

namespace kspot::system {

/// What one executed query produced: the per-epoch ranked answers (snapshot
/// queries), the tuple rows (ungrouped basic selects) or the one-shot
/// historic answer, plus cost accounting against the TAG baseline (what the
/// System Panel projects).
struct RunOutcome {
  query::QueryClass query_class = query::QueryClass::kBasicSelect;
  std::string algorithm;                     ///< "MINT", "TJA", "TAG", ...
  std::vector<core::TopKResult> per_epoch;   ///< Snapshot answers per epoch.
  std::vector<std::vector<core::SelectTuple>> rows_per_epoch;  ///< Ungrouped selects.
  core::HistoricResult historic;             ///< Historic answer (vertical).
  sim::TrafficCounters cost;                 ///< KSpot traffic for the run.
  sim::TrafficCounters baseline_cost;        ///< TAG traffic over the same data.
  SystemPanel panel;                         ///< Live savings counters.
};

/// The KSpot *server* (Section II): the base-station software. It hosts the
/// Query Panel backend — accepting declarative SQL text, parsing and
/// validating it, dispatching it to the right top-k operator (MINT for
/// snapshot queries, local filtering or TJA for historic ones, plain TAG
/// for basic selects) — and drives the deployed (simulated) network for a
/// requested number of epochs while maintaining the System Panel.
class KSpotServer {
 public:
  struct Options {
    /// Epochs to run continuous queries for.
    size_t epochs = 30;
    /// RNG seed (topology nondeterminism, data, losses).
    uint64_t seed = 1;
    /// Per-frame loss probability.
    double loss_prob = 0.0;
    /// Link-layer retries.
    int max_retries = 0;
    /// Per-node battery budget, joules; <= 0 means unlimited.
    double battery_j = 0.0;
    /// Fault & churn injection for continuous (snapshot) queries: when
    /// enabled, a FaultPlan is drawn from `churn` and the run's seed, the
    /// same plan hits the KSpot run and the TAG shadow baseline, and the
    /// System Panel surfaces the live node status. A `churn.horizon` of 0
    /// (the default) means "the whole run"; an explicit horizon is honored.
    /// Historic one-shot queries ignore churn (they run over
    /// already-buffered windows).
    bool enable_churn = false;
    fault::FaultPlanOptions churn;
    /// Data generator factory; defaults to a room-correlated walk matching
    /// the scenario's modality.
    std::function<std::unique_ptr<data::DataGenerator>(const Scenario&, uint64_t seed)>
        make_generator;
    /// Run a shadow TAG baseline over identical data for the System Panel.
    bool run_baseline = true;
  };

  /// Builds the server (and client runtimes) for a scenario.
  KSpotServer(Scenario scenario, Options options);

  /// Executes one query end to end. Expected failures (syntax/semantic
  /// errors) are returned as Status.
  ///
  /// Execute never perturbs the deployment: every run derives its
  /// generator, network, trees and fault plan freshly from Options::seed, so
  /// two sequential calls with the same SQL are bit-identical — the
  /// precondition for QueryCoordinator reusing one server-side deployment
  /// across many queries (pinned by kspot_system_test).
  util::StatusOr<RunOutcome> Execute(const std::string& sql);

  /// Per-epoch callback for live display (Display Panel hooks in here).
  using EpochCallback = std::function<void(const core::TopKResult&, const SystemPanel&)>;
  /// Like Execute but invokes `cb` after every epoch of a continuous query.
  util::StatusOr<RunOutcome> ExecuteStreaming(const std::string& sql, const EpochCallback& cb);

  /// The scenario this server administers.
  const Scenario& scenario() const { return deployment_.scenario; }
  /// The routing tree built over the deployment.
  const sim::RoutingTree& tree() const { return deployment_.tree; }
  /// Per-node client runtimes.
  const std::vector<NodeRuntime>& clients() const { return deployment_.clients; }
  /// The long-lived deployment state (shared shape with QueryCoordinator).
  const Deployment& deployment() const { return deployment_; }

 private:
  Options options_;
  Deployment deployment_;

  std::unique_ptr<data::DataGenerator> MakeGenerator(uint64_t seed) const;
  sim::NetworkOptions NetOptions() const;

  util::StatusOr<RunOutcome> Dispatch(const query::ParsedQuery& parsed, const EpochCallback& cb);
  RunOutcome RunSnapshot(const query::ParsedQuery& parsed, bool mint, const EpochCallback& cb);
  RunOutcome RunBasicSelect(const query::ParsedQuery& parsed, const EpochCallback& cb);
  RunOutcome RunHistoricVertical(const query::ParsedQuery& parsed);
  RunOutcome RunHistoricHorizontal(const query::ParsedQuery& parsed, const EpochCallback& cb);
};

}  // namespace kspot::system
