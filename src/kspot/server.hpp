#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cost_report.hpp"
#include "core/result.hpp"
#include "core/select.hpp"
#include "core/tja.hpp"
#include "data/generators.hpp"
#include "fault/fault_plan.hpp"
#include "kspot/deployment.hpp"
#include "kspot/node_runtime.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/system_panel.hpp"
#include "query/parser.hpp"
#include "sim/network.hpp"
#include "sim/routing_tree.hpp"

namespace kspot::system {

/// What one executed query produced: the per-epoch ranked answers (snapshot
/// queries), the tuple rows (ungrouped basic selects) or the one-shot
/// historic answer, plus cost accounting against the TAG baseline (what the
/// System Panel projects).
struct RunOutcome {
  query::QueryClass query_class = query::QueryClass::kBasicSelect;
  std::string algorithm;                     ///< "MINT", "TJA", "TAG", ...
  std::vector<core::TopKResult> per_epoch;   ///< Snapshot answers per epoch.
  std::vector<std::vector<core::SelectTuple>> rows_per_epoch;  ///< Ungrouped selects.
  core::HistoricResult historic;             ///< Historic answer (vertical).
  sim::TrafficCounters cost;                 ///< KSpot traffic for the run.
  sim::TrafficCounters baseline_cost;        ///< TAG traffic over the same data.
  SystemPanel panel;                         ///< Live savings counters.
};

/// The KSpot *server* (Section II): the base-station software. It hosts the
/// Query Panel backend — accepting declarative SQL text, parsing and
/// validating it, dispatching it to the right top-k operator (MINT for
/// snapshot queries, local filtering or TJA for historic ones, plain TAG
/// for basic selects) — and drives the deployed (simulated) network for a
/// requested number of epochs while maintaining the System Panel.
class KSpotServer {
 public:
  /// Execution knobs: the deployment-wide set shared with QueryCoordinator
  /// (see DeploymentConfig — epochs, seed, radio, battery, churn, shards)
  /// plus the server's own baseline toggle. Churn applies to continuous
  /// snapshot/grouped queries only; historic one-shot queries run over
  /// already-buffered windows and ignore it.
  struct Options : DeploymentConfig {
    /// Run a shadow TAG baseline over identical data for the System Panel.
    bool run_baseline = true;
  };

  /// Builds the server (and client runtimes) for a scenario.
  KSpotServer(Scenario scenario, Options options);

  /// Executes one query end to end. Expected failures (syntax/semantic
  /// errors) are returned as Status.
  ///
  /// Execute never perturbs the deployment: every run derives its
  /// generator, network, trees and fault plan freshly from Options::seed, so
  /// two sequential calls with the same SQL are bit-identical — the
  /// precondition for QueryCoordinator reusing one server-side deployment
  /// across many queries (pinned by kspot_system_test).
  util::StatusOr<RunOutcome> Execute(const std::string& sql);

  /// Per-epoch callback for live display (Display Panel hooks in here).
  using EpochCallback = std::function<void(const core::TopKResult&, const SystemPanel&)>;
  /// Like Execute but invokes `cb` after every epoch of a continuous query.
  util::StatusOr<RunOutcome> ExecuteStreaming(const std::string& sql, const EpochCallback& cb);

  /// The scenario this server administers.
  const Scenario& scenario() const { return deployment_.scenario; }
  /// The routing tree built over the deployment.
  const sim::RoutingTree& tree() const { return deployment_.tree; }
  /// Per-node client runtimes.
  const std::vector<NodeRuntime>& clients() const { return deployment_.clients; }
  /// The long-lived deployment state (shared shape with QueryCoordinator).
  const Deployment& deployment() const { return deployment_; }

 private:
  Options options_;
  Deployment deployment_;

  std::unique_ptr<data::DataGenerator> MakeGenerator(uint64_t seed) const;
  sim::NetworkOptions NetOptions() const;

  // Every class delegates the KSpot side to a single-query coordinator
  // session over the shared deployment (one execution path); what stays
  // server-side is the TAG shadow baseline and the System Panel.
  util::StatusOr<RunOutcome> Dispatch(const std::string& sql, const query::ParsedQuery& parsed,
                                      const EpochCallback& cb);
  RunOutcome RunSnapshot(const std::string& sql, const query::ParsedQuery& parsed,
                         const EpochCallback& cb);
  RunOutcome RunBasicSelect(const std::string& sql, const query::ParsedQuery& parsed,
                            const EpochCallback& cb);
  RunOutcome RunHistoricVertical(const std::string& sql, const query::ParsedQuery& parsed);
  RunOutcome RunHistoricHorizontal(const std::string& sql, const query::ParsedQuery& parsed,
                                   const EpochCallback& cb);
};

}  // namespace kspot::system
