#include "kspot/fanout.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace kspot::system {

FanOutHub::FanOutHub(const QueryCoordinator* coordinator) : coordinator_(coordinator) {}

util::StatusOr<SubscriberId> FanOutHub::Subscribe(QueryId query) {
  if (!coordinator_->query_active(query)) {
    return util::Status::Error("cannot subscribe: no active query with id " +
                               std::to_string(query));
  }
  Subscriber sub;
  sub.query = query;
  sub.live = true;
  QueryFeed& feed = feeds_[query];
  sub.slot = static_cast<uint32_t>(feed.routing.size());
  feed.routing.push_back(static_cast<uint32_t>(subs_.size()));
  subs_.push_back(sub);
  ++live_subscribers_;
  return static_cast<SubscriberId>(subs_.size());  // ids are 1-based
}

util::Status FanOutHub::Unsubscribe(SubscriberId id) {
  if (id == 0 || id > subs_.size() || !subs_[id - 1].live) {
    return util::Status::Error("no live subscriber with id " + std::to_string(id));
  }
  Subscriber& sub = subs_[id - 1];
  sub.live = false;
  // Swap-pop out of the routing slab so Publish never scans dead entries.
  QueryFeed& feed = feeds_[sub.query];
  uint32_t moved = feed.routing.back();
  feed.routing[sub.slot] = moved;
  subs_[moved].slot = sub.slot;
  feed.routing.pop_back();
  --live_subscribers_;
  return util::Status::Ok();
}

size_t FanOutHub::Publish(const EpochUpdate& update) {
  static const uint32_t kPublishSpan = obs::GlobalTracer().InternName("fanout.publish");
  obs::ScopedSpan publish_span(kPublishSpan);
  const uint64_t publish_start = obs::MetricsOn() ? obs::NowMicros() : 0;
  size_t delivered = 0;
  for (const GroupUpdate& group : update.groups) {
    if (!group.ran) continue;
    for (QueryId query : group.members) {
      auto it = feeds_.find(query);
      if (it == feeds_.end()) continue;
      QueryFeed& feed = it->second;
      feed.latest = group.result;
      feed.latest_rows = group.rows;
      for (uint32_t index : feed.routing) {
        Subscriber& sub = subs_[index];
        ++sub.deliveries;
        sub.last_delivery_epoch = update.epoch;
      }
      delivered += feed.routing.size();
    }
  }
  total_deliveries_ += delivered;
  last_epoch_ = update.epoch;
  published_ = true;
  if (publish_start != 0) {
    static obs::Histogram& publish_us = obs::Registry().histogram("fanout.publish_us");
    static obs::Histogram& per_publish = obs::Registry().histogram("fanout.deliveries_per_publish");
    static obs::Counter& deliveries = obs::Registry().counter("fanout.deliveries");
    publish_us.Observe(static_cast<double>(obs::NowMicros() - publish_start));
    per_publish.Observe(static_cast<double>(delivered));
    deliveries.Add(delivered);
  }
  return delivered;
}

const FanOutHub::Subscriber* FanOutHub::Find(SubscriberId id) const {
  if (id == 0 || id > subs_.size() || !subs_[id - 1].live) return nullptr;
  return &subs_[id - 1];
}

std::shared_ptr<const core::TopKResult> FanOutHub::Latest(SubscriberId id) const {
  const Subscriber* sub = Find(id);
  if (sub == nullptr) return nullptr;
  auto it = feeds_.find(sub->query);
  return it == feeds_.end() ? nullptr : it->second.latest;
}

std::shared_ptr<const std::vector<core::SelectTuple>> FanOutHub::LatestRows(
    SubscriberId id) const {
  const Subscriber* sub = Find(id);
  if (sub == nullptr) return nullptr;
  auto it = feeds_.find(sub->query);
  return it == feeds_.end() ? nullptr : it->second.latest_rows;
}

util::StatusOr<SubscriberStats> FanOutHub::Stats(SubscriberId id) const {
  const Subscriber* sub = Find(id);
  if (sub == nullptr) {
    return util::Status::Error("no live subscriber with id " + std::to_string(id));
  }
  SubscriberStats stats;
  stats.query = sub->query;
  stats.deliveries = sub->deliveries;
  stats.last_delivery_epoch = sub->last_delivery_epoch;
  if (published_) {
    if (sub->deliveries == 0) {
      stats.staleness = last_epoch_ + 1;  // never delivered: the whole history
    } else {
      stats.staleness = last_epoch_ - sub->last_delivery_epoch;
    }
  }
  auto it = feeds_.find(sub->query);
  if (it != feeds_.end() && it->second.latest) {
    stats.completeness = it->second.latest->completeness;
  }
  return stats;
}

}  // namespace kspot::system
