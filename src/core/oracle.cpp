#include "core/oracle.hpp"

namespace kspot::core {

Oracle::Oracle(const sim::Topology* topology, data::DataGenerator* gen, QuerySpec spec)
    : topology_(topology), gen_(gen), spec_(spec) {}

agg::GroupView Oracle::FullView(sim::Epoch epoch) const {
  return FullViewOver(epoch, [](sim::NodeId) { return true; });
}

agg::GroupView Oracle::FullViewOver(sim::Epoch epoch, const Contributes& contributes) const {
  agg::GroupView view;
  for (sim::NodeId id = 1; id < topology_->num_nodes(); ++id) {
    if (!contributes(id)) continue;
    view.AddReading(spec_.GroupOf(*topology_, id), gen_->Value(id, epoch));
  }
  return view;
}

TopKResult Oracle::TopK(sim::Epoch epoch) const {
  return TopKOver(epoch, [](sim::NodeId) { return true; });
}

TopKResult Oracle::TopKOver(sim::Epoch epoch, const Contributes& contributes) const {
  TopKResult result;
  result.epoch = epoch;
  agg::GroupView view = FullViewOver(epoch, contributes);
  result.contributors = view.ContributorCount();
  result.items = view.TopK(spec_.agg, static_cast<size_t>(spec_.k));
  return result;
}

double Oracle::KthValue(sim::Epoch epoch) const {
  auto ranked = FullView(epoch).Ranked(spec_.agg);
  if (ranked.size() < static_cast<size_t>(spec_.k)) return spec_.domain_min;
  return ranked[static_cast<size_t>(spec_.k) - 1].value;
}

}  // namespace kspot::core
