#include "core/oracle.hpp"

namespace kspot::core {

Oracle::Oracle(const sim::Topology* topology, data::DataGenerator* gen, QuerySpec spec)
    : topology_(topology), gen_(gen), spec_(spec) {}

agg::GroupView Oracle::FullView(sim::Epoch epoch) const {
  return FullViewOver(epoch, [](sim::NodeId) { return true; });
}

agg::GroupView Oracle::FullViewOver(sim::Epoch epoch, const Contributes& contributes) const {
  agg::GroupView view;
  FillViewOver(view, epoch, contributes);
  return view;
}

void Oracle::FillViewOver(agg::GroupView& view, sim::Epoch epoch,
                          const Contributes& contributes) const {
  for (sim::NodeId id = 1; id < topology_->num_nodes(); ++id) {
    if (!contributes(id)) continue;
    view.AddReading(spec_.GroupOf(*topology_, id), gen_->Value(id, epoch));
  }
}

TopKResult Oracle::TopK(sim::Epoch epoch) const {
  return TopKOver(epoch, [](sim::NodeId) { return true; });
}

TopKResult Oracle::TopKOver(sim::Epoch epoch, const Contributes& contributes) const {
  TopKResult result;
  result.epoch = epoch;
  // Build into the reused scratch view: the oracle is consulted every epoch
  // by the accuracy benchmarks, so the per-call view allocation matters.
  scratch_.clear();
  FillViewOver(scratch_, epoch, contributes);
  result.contributors = scratch_.ContributorCount();
  result.items = scratch_.TopK(spec_.agg, static_cast<size_t>(spec_.k));
  return result;
}

double Oracle::KthValue(sim::Epoch epoch) const {
  auto ranked = FullView(epoch).Ranked(spec_.agg);
  if (ranked.size() < static_cast<size_t>(spec_.k)) return spec_.domain_min;
  return ranked[static_cast<size_t>(spec_.k) - 1].value;
}

}  // namespace kspot::core
