#include "core/oracle.hpp"

namespace kspot::core {

Oracle::Oracle(const sim::Topology* topology, data::DataGenerator* gen, QuerySpec spec)
    : topology_(topology), gen_(gen), spec_(spec) {}

agg::GroupView Oracle::FullView(sim::Epoch epoch) const {
  agg::GroupView view;
  for (sim::NodeId id = 1; id < topology_->num_nodes(); ++id) {
    view.AddReading(spec_.GroupOf(*topology_, id), gen_->Value(id, epoch));
  }
  return view;
}

TopKResult Oracle::TopK(sim::Epoch epoch) const {
  TopKResult result;
  result.epoch = epoch;
  result.items = FullView(epoch).TopK(spec_.agg, static_cast<size_t>(spec_.k));
  return result;
}

double Oracle::KthValue(sim::Epoch epoch) const {
  auto ranked = FullView(epoch).Ranked(spec_.agg);
  if (ranked.size() < static_cast<size_t>(spec_.k)) return spec_.domain_min;
  return ranked[static_cast<size_t>(spec_.k) - 1].value;
}

}  // namespace kspot::core
