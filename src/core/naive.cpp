#include "core/naive.hpp"

#include "agg/group_view.hpp"
#include "sim/waves.hpp"

namespace kspot::core {

TopKResult NaiveTopK::RunEpoch(sim::Epoch epoch) {
  using Msg = agg::GroupView;
  static const sim::PhaseId kPhaseCollect = sim::Network::InternPhase("naive.collect");
  net_->SetPhase(kPhaseCollect);
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox) -> std::optional<Msg> {
    Msg view;
    for (Msg& child : inbox) view.MergeView(std::move(child));
    if (node != sim::kSinkId) {
      view.AddReading(GroupOf(node), gen_->Value(node, epoch));
      // The greedy local cut: anything below the node's own top-k is gone,
      // including partial contributions the final answer may need.
      view.PruneToLocalTopK(spec_.agg, static_cast<size_t>(spec_.k));
    }
    return view;
  };
  auto wire_bytes = [&](const Msg& m) {
    return kMsgHeaderBytes + agg::codec::ViewWireBytes(spec_.agg, m.size());
  };
  auto sink = sim::UpWave<Msg>::Run(*net_, produce, wire_bytes, &wave_ws_);

  TopKResult result;
  result.epoch = epoch;
  if (sink.has_value()) {
    result.items = sink->TopK(spec_.agg, static_cast<size_t>(spec_.k));
  }
  return result;
}

}  // namespace kspot::core
