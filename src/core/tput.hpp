#pragma once

#include <string>

#include "core/tja.hpp"

namespace kspot::core {

/// TPUT (Cao & Wang, PODC'04) — the classic three-phase uniform-threshold
/// distributed top-k algorithm, cited by the paper as the historic-query
/// state of the art prior to TJA. TPUT is a *flat* algorithm: nodes answer
/// the sink directly; in a multihop WSN its messages are relayed hop-by-hop
/// without in-network merging, which is exactly the disadvantage TJA's
/// hierarchical union removes.
///
/// Phase 1: every node reports its local top-k; the sink computes the
/// partial-sum lower bound psi1 and broadcasts the uniform threshold
/// T = psi1 / n. Phase 2: every node reports all items with value >= T it
/// has not yet sent; the sink prunes with upper bounds against psi2.
/// Phase 3: the surviving candidate keys are fetched exactly. The answer is
/// exact.
class Tput {
 public:
  /// `net` and `history` must outlive the instance.
  Tput(sim::Network* net, const HistorySource* history, HistoricOptions options);

  /// Executes the query; the result's `lsink_size` carries the phase-3
  /// candidate-set size and `rounds` is always 1.
  HistoricResult Run();

  /// Short identifier for tables.
  std::string name() const { return "TPUT"; }

 private:
  sim::Network* net_;
  const HistorySource* history_;
  HistoricOptions options_;
};

}  // namespace kspot::core
