#pragma once

#include <string>

#include "core/query_spec.hpp"
#include "core/result.hpp"
#include "data/generators.hpp"
#include "sim/network.hpp"

namespace kspot::core {

/// Interface of continuous snapshot top-k algorithms (Section III-A): one
/// ranked answer per epoch, produced by exchanging messages on the simulated
/// network. Implementations: TagTopK (baseline), NaiveTopK (wrongful
/// pruning), MintViews (the KSpot algorithm), Fila (monitoring baseline).
class EpochAlgorithm {
 public:
  /// `net` and `gen` must outlive the algorithm.
  EpochAlgorithm(sim::Network* net, data::DataGenerator* gen, QuerySpec spec)
      : net_(net), gen_(gen), spec_(spec) {}
  virtual ~EpochAlgorithm() = default;

  /// Short identifier used in tables ("TAG", "MINT", ...).
  virtual std::string name() const = 0;

  /// Produces the ranked answer of `epoch`. Epochs must be non-decreasing.
  virtual TopKResult RunEpoch(sim::Epoch epoch) = 0;

  /// Invoked by the churn driver (fault::ChurnEngine) after tree membership
  /// changed — node death, recovery, subtree re-attachment. Stateful
  /// implementations evict whatever they cached against the old tree; the
  /// default is a no-op for the stateless algorithms.
  virtual void OnTopologyChanged() {}

  /// Delta-aware variant: `delta` names exactly the nodes that left the tree
  /// and the orphan-subtree roots that re-attached, so stateful
  /// implementations can repair their caches incrementally instead of
  /// rebuilding from scratch (MINT's incremental creation repair, FILA's
  /// targeted eviction). The default falls back to the full eviction above.
  virtual void OnTopologyChanged(const sim::TopologyDelta& delta) {
    (void)delta;
    OnTopologyChanged();
  }

  /// The network the algorithm communicates on.
  sim::Network& net() { return *net_; }
  /// The data source.
  data::DataGenerator& gen() { return *gen_; }
  /// The query being answered.
  const QuerySpec& spec() const { return spec_; }

 protected:
  /// Group of node `id` under the spec.
  sim::GroupId GroupOf(sim::NodeId id) const { return spec_.GroupOf(net_->topology(), id); }

  sim::Network* net_;
  data::DataGenerator* gen_;
  QuerySpec spec_;
};

/// Per-message wire overhead in bytes: message type (u8) + epoch (u32).
inline constexpr size_t kMsgHeaderBytes = 5;

}  // namespace kspot::core
