#pragma once

#include <span>
#include <vector>

#include "data/generators.hpp"
#include "sim/types.hpp"

namespace kspot::core {

/// Zero-copy view of one node's buffered window: at most two contiguous
/// segments of readings (ring-buffer storage wraps; contiguous storage leaves
/// `second` empty). Index 0 is the oldest buffered reading. The view borrows
/// the source's storage and is invalidated by the next append.
class WindowSpan {
 public:
  WindowSpan() = default;
  WindowSpan(std::span<const double> first, std::span<const double> second = {})
      : first_(first), second_(second) {}

  /// Number of buffered readings covered by the view.
  size_t size() const { return first_.size() + second_.size(); }
  bool empty() const { return first_.empty() && second_.empty(); }

  /// Reading `t` positions from the oldest (0 = oldest). Precondition:
  /// t < size().
  double operator[](size_t t) const {
    return t < first_.size() ? first_[t] : second_[t - first_.size()];
  }

  /// Calls `fn(t, value)` for every buffered reading, oldest first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    size_t t = 0;
    for (double v : first_) fn(t++, v);
    for (double v : second_) fn(t++, v);
  }

 private:
  std::span<const double> first_;
  std::span<const double> second_;
};

/// Provides each node's locally buffered history window for historic top-k
/// queries (Section III-B). Keys are window indices 0..window_size()-1; a
/// key corresponds to one time instance, and *every* node holds a value for
/// every key — the vertically fragmented case TJA addresses.
class HistorySource {
 public:
  virtual ~HistorySource() = default;

  /// Node `id`'s buffered readings, one per window index, as a zero-copy
  /// view over the source's own storage.
  virtual WindowSpan Window(sim::NodeId id) const = 0;

  /// Number of time instances buffered (W).
  virtual size_t window_size() const = 0;

  /// Number of nodes (including the sink at index 0, which holds no data).
  virtual size_t num_nodes() const = 0;

  /// Materialized copy of node `id`'s window, oldest first. Convenience for
  /// oracles and tests — not for hot paths.
  std::vector<double> MaterializeWindow(sim::NodeId id) const;
};

/// Materializes a window by sampling a data generator over
/// epochs [first_epoch, first_epoch + window). Used by benchmarks; the
/// examples use the storage-backed history store instead.
class GeneratorHistory : public HistorySource {
 public:
  GeneratorHistory(data::DataGenerator* gen, size_t num_nodes, sim::Epoch first_epoch,
                   size_t window);

  WindowSpan Window(sim::NodeId id) const override;
  size_t window_size() const override { return window_; }
  size_t num_nodes() const override { return windows_.size(); }

 private:
  size_t window_;
  std::vector<std::vector<double>> windows_;
};

}  // namespace kspot::core
