#pragma once

#include <vector>

#include "data/generators.hpp"
#include "sim/types.hpp"

namespace kspot::core {

/// Provides each node's locally buffered history window for historic top-k
/// queries (Section III-B). Keys are window indices 0..window_size()-1; a
/// key corresponds to one time instance, and *every* node holds a value for
/// every key — the vertically fragmented case TJA addresses.
class HistorySource {
 public:
  virtual ~HistorySource() = default;

  /// Node `id`'s buffered readings, one per window index.
  virtual std::vector<double> Window(sim::NodeId id) const = 0;

  /// Number of time instances buffered (W).
  virtual size_t window_size() const = 0;

  /// Number of nodes (including the sink at index 0, which holds no data).
  virtual size_t num_nodes() const = 0;
};

/// Materializes a window by sampling a data generator over
/// epochs [first_epoch, first_epoch + window). Used by benchmarks; the
/// examples use the storage-backed history store instead.
class GeneratorHistory : public HistorySource {
 public:
  GeneratorHistory(data::DataGenerator* gen, size_t num_nodes, sim::Epoch first_epoch,
                   size_t window);

  std::vector<double> Window(sim::NodeId id) const override;
  size_t window_size() const override { return window_; }
  size_t num_nodes() const override { return windows_.size(); }

 private:
  size_t window_;
  std::vector<std::vector<double>> windows_;
};

}  // namespace kspot::core
