#include "core/tput.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "sim/waves.hpp"
#include "util/fixed_point.hpp"

namespace kspot::core {

namespace {

/// Relayed entry: window key (u16) + fixed-point value (i32).
constexpr size_t kEntryBytes = 6;
constexpr double kEps = 1e-9;

/// One relayed report: the originating node's entries travel unmerged.
using Entry = std::pair<sim::GroupId, double>;

}  // namespace

Tput::Tput(sim::Network* net, const HistorySource* history, HistoricOptions options)
    : net_(net), history_(history), options_(options) {}

HistoricResult Tput::Run() {
  size_t k = static_cast<size_t>(options_.k);
  size_t sensors = history_->num_nodes() - 1;
  // TPUT is defined for SUM/AVG ranking only (the sink accumulates partial
  // sums); the query validator rejects anything else before it gets here.
  // Defensively widen phase 1 to the whole window for unexpected kinds so
  // the collection is at least complete.
  size_t k_phase1 = k;
  if (options_.agg != agg::AggKind::kAvg && options_.agg != agg::AggKind::kSum) {
    k_phase1 = history_->window_size();
  }

  // Per-node bookkeeping of already-transmitted keys (TPUT never resends).
  std::vector<std::set<sim::GroupId>> sent(history_->num_nodes());
  // Sink state: partial sums and how many nodes have reported each key.
  std::map<sim::GroupId, double> psum;
  std::map<sim::GroupId, size_t> seen;

  // A relayed converge-cast: intermediate nodes concatenate (never merge).
  auto relay_round = [&](auto&& local_entries, const char* phase) {
    net_->SetPhase(phase);
    using Msg = std::vector<Entry>;
    auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox) -> std::optional<Msg> {
      Msg out;
      for (Msg& child : inbox) out.insert(out.end(), child.begin(), child.end());
      if (node != sim::kSinkId) {
        Msg mine = local_entries(node);
        for (const Entry& e : mine) sent[node].insert(e.first);
        out.insert(out.end(), mine.begin(), mine.end());
        if (out.empty()) return std::nullopt;
      }
      return out;
    };
    auto wire_bytes = [&](const Msg& m) { return kMsgHeaderBytes + kEntryBytes * m.size(); };
    auto sink = sim::UpWave<Msg>::Run(*net_, produce, wire_bytes);
    if (sink.has_value()) {
      for (const Entry& e : *sink) {
        psum[e.first] += e.second;
        seen[e.first] += 1;
      }
    }
  };

  // ---------------------------------------------------------- Phase 1
  relay_round(
      [&](sim::NodeId node) {
        WindowSpan w = history_->Window(node);
        std::vector<Entry> ranked;
        ranked.reserve(w.size());
        w.ForEach([&](size_t t, double v) { ranked.emplace_back(static_cast<sim::GroupId>(t), v); });
        std::sort(ranked.begin(), ranked.end(), [](const Entry& a, const Entry& b) {
          if (a.second != b.second) return a.second > b.second;
          return a.first < b.first;
        });
        if (ranked.size() > k_phase1) ranked.resize(k_phase1);
        return ranked;
      },
      "tput.p1");

  auto kth_psum = [&]() {
    std::vector<double> sums;
    sums.reserve(psum.size());
    for (const auto& [key, s] : psum) sums.push_back(s);
    std::sort(sums.rbegin(), sums.rend());
    // Fewer keys than k: nothing may be pruned, so the bound is vacuous.
    if (sums.size() < k) return -std::numeric_limits<double>::infinity();
    return sums[k - 1];
  };
  double psi1 = kth_psum();
  double threshold = sensors > 0 ? psi1 / static_cast<double>(sensors) : 0.0;

  // ---------------------------------------------------------- Phase 2
  // Broadcast the uniform threshold T, then collect every unsent item >= T.
  net_->SetPhase("tput.p2");
  struct Bcast {
    double value;
  };
  auto bcast = [&](double value, const char* phase) {
    net_->SetPhase(phase);
    auto produce = [&](sim::NodeId node, const Bcast* incoming) -> std::optional<Bcast> {
      if (node == sim::kSinkId) return Bcast{value};
      return *incoming;
    };
    auto bytes = [&](const Bcast&) { return kMsgHeaderBytes + 8; };
    sim::DownWave<Bcast>::Run(*net_, produce, bytes);
  };
  bcast(threshold, "tput.p2");
  relay_round(
      [&](sim::NodeId node) {
        std::vector<Entry> out;
        history_->Window(node).ForEach([&](size_t t, double v) {
          auto key = static_cast<sim::GroupId>(t);
          if (v >= threshold - kEps && !sent[node].count(key)) out.emplace_back(key, v);
        });
        return out;
      },
      "tput.p2");

  // Upper-bound pruning: unseen nodes can contribute at most T per key.
  double psi2 = kth_psum();
  std::vector<sim::GroupId> candidates;
  for (const auto& [key, s] : psum) {
    size_t missing = sensors - seen[key];
    double ub = missing == 0 ? s : s + threshold * static_cast<double>(missing);
    if (ub >= psi2 - kEps) candidates.push_back(key);
  }
  std::sort(candidates.begin(), candidates.end());

  // ---------------------------------------------------------- Phase 3
  // Broadcast the candidate list; fetch exact values for unsent candidates.
  {
    net_->SetPhase("tput.p3");
    struct KeyBcast {
      std::vector<sim::GroupId> keys;
    };
    auto produce = [&](sim::NodeId node, const KeyBcast* incoming) -> std::optional<KeyBcast> {
      if (node == sim::kSinkId) return KeyBcast{candidates};
      return *incoming;
    };
    auto bytes = [&](const KeyBcast& m) { return kMsgHeaderBytes + 2 + 2 * m.keys.size(); };
    sim::DownWave<KeyBcast>::Run(*net_, produce, bytes);
  }
  relay_round(
      [&](sim::NodeId node) {
        WindowSpan w = history_->Window(node);
        std::vector<Entry> out;
        for (sim::GroupId key : candidates) {
          if (static_cast<size_t>(key) < w.size() && !sent[node].count(key)) {
            out.emplace_back(key, w[static_cast<size_t>(key)]);
          }
        }
        return out;
      },
      "tput.p3");

  // Exact totals are now known for every candidate key.
  std::vector<agg::RankedItem> ranked;
  for (sim::GroupId key : candidates) {
    double total = psum[key];
    double value = options_.agg == agg::AggKind::kAvg && sensors > 0
                       ? total / static_cast<double>(sensors)
                       : total;
    ranked.push_back(agg::RankedItem{key, value});
  }
  std::sort(ranked.begin(), ranked.end(), agg::RankHigher);
  if (ranked.size() > k) ranked.resize(k);

  HistoricResult result;
  result.items = std::move(ranked);
  result.lsink_size = candidates.size();
  result.rounds = 1;
  return result;
}

}  // namespace kspot::core
