#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agg/group_view.hpp"
#include "core/epoch_algorithm.hpp"
#include "sim/waves.hpp"
#include "storage/history_store.hpp"

namespace kspot::core {

/// Configuration of a continuous historic (vertical) operator.
struct HistoricStreamOptions {
  /// Ranked answers requested per epoch.
  int k = 1;
  /// Aggregate ranking the time instances.
  agg::AggKind agg = agg::AggKind::kAvg;
  /// Sliding-window size W (time instances kept per node).
  size_t window = 32;
  /// Maintain the sink's window view through per-epoch deltas (O(delta))
  /// instead of re-collecting every node's whole window (O(W*n)). Answers
  /// are bit-identical either way on lossless beds; scratch mode exists as
  /// the measurable strawman.
  bool incremental = true;
  /// Archive readings evicted from the SRAM window to simulated flash
  /// through the MicroHash index.
  bool archive_to_flash = false;
  /// Charge flash I/O into the network's energy ledger / traffic counters.
  bool flash_accounting = false;
  /// Cluster-neighbor predictive suppression (delta mode only): a sensor
  /// stays silent when its reading is within `suppression_eps` of the last
  /// value it transmitted; its room's head re-injects that predictor, so the
  /// sink's reconstruction error is bounded by `suppression_eps`.
  bool suppression = false;
  double suppression_eps = 0.5;
};

/// Continuous historic top-k over sliding windows, as a first-class epoch
/// algorithm: each epoch every node appends its fresh reading into its local
/// HistoryStore, and one converge-cast updates the sink's materialized
/// window view — carrying just the new epoch's partial in delta mode
/// (GroupView::ApplyWindowDelta retracts the evicted epoch), or every
/// buffered epoch in scratch mode. This is what lets the session coordinator
/// advance admitted historic queries with StepEpoch like any snapshot
/// operator instead of re-running a one-shot join per query.
class HistoricStream : public EpochAlgorithm {
 public:
  HistoricStream(sim::Network* net, data::DataGenerator* gen, HistoricStreamOptions options);

  std::string name() const override;
  TopKResult RunEpoch(sim::Epoch epoch) override;
  void OnTopologyChanged() override;

  /// Node `id`'s backing store (tests and audits).
  const storage::HistoryStore& store(sim::NodeId id) const { return stores_[id]; }

  /// Sum of flash I/O across all node stores (zero unless archiving).
  storage::IoCounters FlashIoTotal() const;

  /// Readings transmitted / suppressed so far (suppression mode only).
  uint64_t reports() const { return reports_; }
  uint64_t suppressed() const { return suppressed_; }
  /// Fraction of sensor readings suppressed so far (0 when suppression off).
  double suppression_ratio() const;
  /// Largest |reading - reconstructed| the suppression incurred so far;
  /// bounded by options().suppression_eps by construction.
  double max_reconstruction_error() const { return max_recon_err_; }

  const HistoricStreamOptions& options() const { return options_; }

 private:
  TopKResult RunDeltaEpoch(sim::Epoch epoch);
  TopKResult RunScratchEpoch(sim::Epoch epoch);

  HistoricStreamOptions options_;
  std::vector<storage::HistoryStore> stores_;
  /// Flash I/O already charged to the network, per node (flash accounting).
  std::vector<storage::IoCounters> charged_;
  /// The sink's materialized window view (delta mode): one entry per
  /// buffered epoch, maintained by ApplyWindowDelta.
  agg::GroupView window_view_;
  /// The window delta of this epoch's appends (all stores slide in lockstep).
  storage::WindowDelta last_delta_;

  // Suppression state. `head_of_[id]` is the cluster head of id's room (the
  // room's lowest sensor id); heads never suppress, so every room anchors
  // its members' reconstruction.
  std::vector<sim::NodeId> head_of_;
  std::vector<std::vector<sim::NodeId>> members_of_head_;
  std::vector<double> predictor_;        ///< Last value each node transmitted.
  std::vector<uint8_t> has_predictor_;
  std::vector<uint8_t> suppressed_now_;  ///< Per-epoch suppression decisions.
  std::vector<double> value_now_;        ///< This epoch's readings.
  uint64_t reports_ = 0;
  uint64_t suppressed_ = 0;
  double max_recon_err_ = 0.0;

  sim::UpWave<agg::GroupView>::Workspace ws_;
};

}  // namespace kspot::core
