#pragma once

#include "core/epoch_algorithm.hpp"
#include "sim/waves.hpp"

namespace kspot::core {

/// The TAG / TinyDB baseline (Madden et al., OSDI'02): full in-network
/// aggregation — every node forwards its complete merged view every epoch —
/// with a top-k operator bolted onto the sink. This is the "could easily
/// implement a new top-k operator at the sink ... but it is not cost
/// effective because all tuples need to be transferred" strawman of
/// Section I of the paper.
class TagTopK : public EpochAlgorithm {
 public:
  using EpochAlgorithm::EpochAlgorithm;

  std::string name() const override { return "TAG"; }
  TopKResult RunEpoch(sim::Epoch epoch) override;

  /// Runs one full-aggregation converge-cast and returns the sink's complete
  /// view (shared by MINT's creation/repair phases). `workspace` (optional)
  /// lets continuous callers reuse the per-node inboxes across epochs.
  static agg::GroupView CollectFullView(sim::Network& net, data::DataGenerator& gen,
                                        const QuerySpec& spec, sim::Epoch epoch,
                                        sim::UpWave<agg::GroupView>::Workspace* workspace =
                                            nullptr);

 private:
  /// Reused across epochs by RunEpoch.
  sim::UpWave<agg::GroupView>::Workspace wave_ws_;
};

}  // namespace kspot::core
