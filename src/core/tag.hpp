#pragma once

#include "core/epoch_algorithm.hpp"

namespace kspot::core {

/// The TAG / TinyDB baseline (Madden et al., OSDI'02): full in-network
/// aggregation — every node forwards its complete merged view every epoch —
/// with a top-k operator bolted onto the sink. This is the "could easily
/// implement a new top-k operator at the sink ... but it is not cost
/// effective because all tuples need to be transferred" strawman of
/// Section I of the paper.
class TagTopK : public EpochAlgorithm {
 public:
  using EpochAlgorithm::EpochAlgorithm;

  std::string name() const override { return "TAG"; }
  TopKResult RunEpoch(sim::Epoch epoch) override;

  /// Runs one full-aggregation converge-cast and returns the sink's complete
  /// view (shared by MINT's creation/repair phases).
  static agg::GroupView CollectFullView(sim::Network& net, data::DataGenerator& gen,
                                        const QuerySpec& spec, sim::Epoch epoch);
};

}  // namespace kspot::core
