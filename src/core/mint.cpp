#include "core/mint.hpp"

#include <algorithm>
#include <cmath>

#include "util/fixed_point.hpp"

namespace kspot::core {

namespace {

/// Comparison slack for threshold tests. Pruning must only ever drop groups
/// that are *surely* below tau, so drops require ub < tau - kTauEps.
constexpr double kTauEps = 1e-6;

/// Beacon payload: header + tau as fixed-point i64 + validity flag.
constexpr size_t kBeaconBytes = kMsgHeaderBytes + 8 + 1;

/// One hop of the post-churn cardinality-delta converge-cast: header +
/// subtree-root id + one (group, cardinality-delta) entry.
constexpr size_t kCardinalityDeltaBytes = kMsgHeaderBytes + 2 + 6;

// Interned once per process; the update/beacon pair alternates every epoch.
const sim::PhaseId kPhaseCreate = sim::Network::InternPhase("mint.create");
const sim::PhaseId kPhaseUpdate = sim::Network::InternPhase("mint.update");
const sim::PhaseId kPhaseBeacon = sim::Network::InternPhase("mint.beacon");
const sim::PhaseId kPhaseRepair = sim::Network::InternPhase("mint.repair");

bool SamePartial(const agg::PartialAgg& a, const agg::PartialAgg& b) {
  return a.sum_fx == b.sum_fx && a.count == b.count && a.min_fx == b.min_fx &&
         a.max_fx == b.max_fx;
}

}  // namespace

MintViews::MintViews(sim::Network* net, data::DataGenerator* gen, QuerySpec spec)
    : MintViews(net, gen, spec, Options{}) {}

MintViews::MintViews(sim::Network* net, data::DataGenerator* gen, QuerySpec spec, Options options)
    : EpochAlgorithm(net, gen, spec), options_(options) {
  size_t n = net->topology().num_nodes();
  subtree_count_.resize(n);
  tau_at_.assign(n, 0.0);
  tau_valid_at_.assign(n, 0);
  tau_version_at_.assign(n, 0);
  last_sent_.resize(n);
  child_view_.resize(n);
}

uint32_t MintViews::TotalCount(sim::GroupId g) const {
  if (spec_.grouping == Grouping::kNode) return 1;
  auto it = total_count_.find(g);
  return it == total_count_.end() ? 0 : it->second;
}

agg::GroupView MintViews::FullWaveRebuildingState(sim::Epoch epoch, sim::PhaseId phase) {
  using Msg = agg::GroupView;
  net_->SetPhase(phase);
  gen_->PrepareEpoch(epoch);  // prime serially; Value() is a pure read below
  // Lane-aware (third argument): every write lands in the visited node's own
  // slots, so shard lanes over disjoint subtrees never contend.
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox,
                     size_t /*lane*/) -> std::optional<Msg> {
    Msg view;
    for (Msg& child : inbox) view.MergeView(std::move(child));
    if (node != sim::kSinkId) {
      view.AddReading(GroupOf(node), gen_->Value(node, epoch));
    }
    // Record subtree cardinalities; max-merge so a transient loss in one
    // wave can only under-count until the next full wave repairs it.
    auto& counts = subtree_count_[node];
    for (const auto& [g, partial] : view.entries()) {
      uint32_t& c = counts[g];
      c = std::max(c, partial.count);
    }
    // Reset the view-maintenance caches: the parent now holds this full view.
    last_sent_[node] = view;
    child_view_[node] = view;
    return view;
  };
  auto wire_bytes = [&](const Msg& m) {
    return kMsgHeaderBytes + agg::codec::ViewWireBytes(spec_.agg, m.size());
  };
  auto sink = sim::UpWave<Msg>::Run(*net_, produce, wire_bytes, &full_wave_ws_);
  return sink.value_or(Msg{});
}

void MintViews::DisseminateState(bool include_cardinalities, sim::PhaseId phase) {
  net_->SetPhase(phase);
  ++tau_version_;
  // The beacon carries tau; the creation-phase variant additionally carries
  // the (group, cardinality) table so every node can evaluate closure and
  // the gamma bounds. Under node grouping the table is implicit (n_g == 1).
  bool send_table = include_cardinalities && spec_.grouping == Grouping::kRoom;
  struct Beacon {
    double tau;
    bool tau_valid;
    bool with_table;
  };
  Beacon seed{pruning_tau_, pruning_tau_valid_, send_table};
  size_t table_bytes = send_table ? 2 + 4 * total_count_.size() : 0;
  auto produce = [&](sim::NodeId node, const Beacon* incoming) -> std::optional<Beacon> {
    if (node == sim::kSinkId) {
      tau_at_[node] = pruning_tau_;
      tau_valid_at_[node] = pruning_tau_valid_ ? 1 : 0;
      tau_version_at_[node] = tau_version_;
      return seed;
    }
    // Receiving nodes adopt the threshold; the cardinality table is modeled
    // as shared state (total_count_) since its content is identical
    // everywhere — the wire cost is what matters.
    tau_at_[node] = incoming->tau;
    tau_valid_at_[node] = incoming->tau_valid ? 1 : 0;
    tau_version_at_[node] = tau_version_;
    return *incoming;
  };
  auto wire_bytes = [&](const Beacon& b) {
    return kBeaconBytes + (b.with_table ? table_bytes : 0);
  };
  sim::DownWave<Beacon>::Run(*net_, produce, wire_bytes);
  ++beacon_count_;
}

void MintViews::MaybeRebroadcastTau(double kth_value, bool have_kth) {
  if (have_kth) {
    if (have_last_kth_) {
      kth_drift_ema_ = 0.8 * kth_drift_ema_ + 0.2 * std::abs(kth_value - last_kth_);
    }
    last_kth_ = kth_value;
    have_last_kth_ = true;
  }
  if (!options_.gamma_suppression) {
    pruning_tau_valid_ = false;
    return;
  }
  bool want_valid = have_kth;
  double want_tau = kth_value - TauMargin();
  bool must_send = false;
  if (want_valid != pruning_tau_valid_) {
    must_send = true;
  } else if (want_valid) {
    // Falling k-th: rebroadcast once the safety gap between the in-force
    // threshold and the current k-th shrank to half a margin (a stale high
    // threshold would over-prune and force repairs). Rising k-th: reclaim
    // pruning power only once the gap grew past three margins. Both sides
    // reset the gap to exactly one margin — hysteresis against chatter.
    if (kth_value < pruning_tau_ + 0.5 * TauMargin()) must_send = true;
    if (kth_value > pruning_tau_ + 3.0 * TauMargin()) must_send = true;
  }
  if (!must_send) return;
  pruning_tau_ = want_tau;
  pruning_tau_valid_ = want_valid;
  DisseminateState(/*include_cardinalities=*/false, kPhaseBeacon);
}

double MintViews::UpperBound(sim::GroupId g, const agg::PartialAgg& partial,
                             uint32_t subtree_c) const {
  uint32_t n_g = TotalCount(g);
  uint32_t missing = n_g > subtree_c ? n_g - subtree_c : 0;
  int32_t max_fx = util::fixed_point::Encode(spec_.domain_max);
  switch (spec_.agg) {
    case agg::AggKind::kAvg: {
      if (n_g == 0) return partial.Final(spec_.agg);
      double best_sum =
          static_cast<double>(partial.sum_fx) + static_cast<double>(max_fx) * missing;
      return best_sum / util::fixed_point::kScale / static_cast<double>(n_g);
    }
    case agg::AggKind::kSum: {
      double extra = std::max<double>(0.0, static_cast<double>(max_fx)) * missing;
      return (static_cast<double>(partial.sum_fx) + extra) / util::fixed_point::kScale;
    }
    case agg::AggKind::kMin:
      // Further contributions can only lower the minimum.
      return partial.Final(agg::AggKind::kMin);
    case agg::AggKind::kMax:
      // Contributions below tau cannot be the maximum of a top-k group.
      return partial.Final(agg::AggKind::kMax);
    case agg::AggKind::kCount:
      return static_cast<double>(n_g);
  }
  return spec_.domain_max;
}

void MintViews::PruneView(sim::NodeId node, agg::GroupView& view) const {
  std::vector<sim::GroupId> to_erase;
  bool have_tau = tau_valid_at_[node] != 0;
  double tau = tau_at_[node];
  const auto& counts = subtree_count_[node];
  for (const auto& [g, partial] : view.entries()) {
    uint32_t expected = 0;
    auto it = counts.find(g);
    if (it != counts.end()) expected = it->second;
    bool complete = partial.count >= expected;
    if (!complete && options_.closure_pruning && spec_.agg != agg::AggKind::kMax) {
      // A descendant pruned this group: it is provably outside the top-k,
      // so forwarding the remaining partial would be wasted bytes.
      to_erase.push_back(g);
      continue;
    }
    if (options_.gamma_suppression && have_tau) {
      if (UpperBound(g, partial, partial.count) < tau - kTauEps) to_erase.push_back(g);
    }
  }
  for (sim::GroupId g : to_erase) view.Erase(g);
}

agg::GroupView& MintViews::RunUpdateWave(sim::Epoch epoch) {
  using Msg = Delta;
  net_->SetPhase(kPhaseUpdate);
  gen_->PrepareEpoch(epoch);  // prime serially; Value() is a pure read below
  // Scratch views sized for the wave before it launches (resizing inside a
  // concurrent lane would race); one entry serves the serial path.
  size_t lanes = 1;
  if (sim::ShardRuntime* rt = net_->shard_runtime(); rt != nullptr && rt->ShouldShard()) {
    lanes = rt->lane_count();
  }
  if (lane_scratch_.size() < lanes) lane_scratch_.resize(lanes);
  // Lane-aware (third argument): caches are written only for the visited
  // node and its own children, which live in the same shard lane.
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox,
                     size_t lane) -> std::optional<Msg> {
    // Apply the children's deltas to their cached views.
    for (Msg& delta : inbox) {
      agg::GroupView& cache = child_view_[delta.from];
      for (auto& [g, partial] : delta.changed) cache.Set(g, partial);
      for (sim::GroupId g : delta.removed) cache.Erase(g);
    }
    // Rebuild this node's view from the cached child views + own reading,
    // into per-lane scratch reused across nodes and epochs.
    agg::GroupView& view = lane_scratch_[lane];
    view.clear();
    for (sim::NodeId child : net_->tree().children(node)) view.MergeView(child_view_[child]);
    if (node == sim::kSinkId) {
      // The sink's materialized view V_0 — its children's deltas were just
      // applied, so the merge of their caches is current.
      sink_view_ = view;
      return Msg{};  // value unused; the sink transmits nothing
    }
    view.AddReading(GroupOf(node), gen_->Value(node, epoch));
    PruneView(node, view);
    // Delta against what the parent believes (the Update Phase proper):
    // both sides are sorted by group, so the diff is one linear walk.
    Msg delta;
    delta.from = node;
    const auto& cur = view.entries();
    const auto& sent = last_sent_[node].entries();
    if (options_.delta_updates) {
      size_t i = 0;
      size_t j = 0;
      while (i < cur.size() || j < sent.size()) {
        if (j == sent.size() || (i < cur.size() && cur[i].first < sent[j].first)) {
          delta.changed.push_back(cur[i]);
          ++i;
        } else if (i == cur.size() || sent[j].first < cur[i].first) {
          delta.removed.push_back(sent[j].first);
          ++j;
        } else {
          if (!SamePartial(cur[i].second, sent[j].second)) delta.changed.push_back(cur[i]);
          ++i;
          ++j;
        }
      }
    } else {
      // Ablation: full-view resend, plus tombstones for vanished groups.
      delta.changed.assign(cur.begin(), cur.end());
      for (const auto& [g, partial] : sent) {
        if (!view.Contains(g)) delta.removed.push_back(g);
      }
    }
    if (delta.changed.empty() && delta.removed.empty()) {
      // Nothing changed: the parent's cached V'_i is still current.
      return std::nullopt;
    }
    last_sent_[node] = view;
    return delta;
  };
  auto wire_bytes = [&](const Msg& m) {
    // Header + changed entries (group codec) + tombstone list when present
    // (a flag bit in the type byte says whether the list follows).
    size_t tombstones = m.removed.empty() ? 0 : 2 + 2 * m.removed.size();
    return kMsgHeaderBytes + agg::codec::ViewWireBytes(spec_.agg, m.changed.size()) + tombstones;
  };
  sim::UpWave<Msg>::Run(*net_, produce, wire_bytes, &update_wave_ws_);
  return sink_view_;
}

TopKResult MintViews::EvaluateAtSink(sim::Epoch epoch, const agg::GroupView& sink_view) {
  // Accept a group when its value is known exactly (complete merge) and it
  // clears the threshold in force at the nodes. MAX needs no completeness:
  // every contribution >= tau survived pruning, so a merged value >= tau is
  // the true maximum.
  std::vector<agg::RankedItem> candidates;
  uint32_t contributors = sink_view.ContributorCount();
  for (const auto& [g, partial] : sink_view.entries()) {
    bool complete = spec_.agg == agg::AggKind::kMax || partial.count >= TotalCount(g);
    if (!complete) continue;
    double value = partial.Final(spec_.agg);
    if (pruning_tau_valid_ && value < pruning_tau_ - kTauEps) continue;
    candidates.push_back(agg::RankedItem{g, value});
  }
  std::sort(candidates.begin(), candidates.end(), agg::RankHigher);

  size_t need = std::min<size_t>(static_cast<size_t>(spec_.k), total_groups_);
  if (candidates.size() < need) {
    // Under-run: values drifted below tau network-wide. Probe/repair round:
    // collect everything once, answer exactly, rebuild caches, reseed tau.
    ++repair_count_;
    agg::GroupView full = FullWaveRebuildingState(epoch, kPhaseRepair);
    candidates = full.Ranked(spec_.agg);
    contributors = full.ContributorCount();
  }

  TopKResult result;
  result.epoch = epoch;
  result.contributors = contributors;
  // MINT suppresses below-tau updates by design, so contributors here counts
  // nodes whose data informed the answer via live updates or repair — an
  // approximation (cached partials from silent nodes still back the view).
  result.StampCompleteness(net_->AliveAttachedSensors(), net_->EpochDegraded());
  for (size_t i = 0; i < candidates.size() && i < static_cast<size_t>(spec_.k); ++i) {
    result.items.push_back(candidates[i]);
  }
  bool have_kth = candidates.size() >= static_cast<size_t>(spec_.k);
  MaybeRebroadcastTau(have_kth ? candidates[static_cast<size_t>(spec_.k) - 1].value : 0.0,
                      have_kth);
  return result;
}

TopKResult MintViews::RunCreation(sim::Epoch epoch) {
  agg::GroupView full = FullWaveRebuildingState(epoch, kPhaseCreate);
  total_count_.clear();
  for (const auto& [g, partial] : full.entries()) total_count_[g] = partial.count;
  total_groups_ = total_count_.size();

  TopKResult result;
  result.epoch = epoch;
  result.contributors = full.ContributorCount();
  result.StampCompleteness(net_->AliveAttachedSensors(), net_->EpochDegraded());
  result.items = full.TopK(spec_.agg, static_cast<size_t>(spec_.k));
  auto ranked = full.Ranked(spec_.agg);
  if (ranked.size() >= static_cast<size_t>(spec_.k) && options_.gamma_suppression) {
    pruning_tau_ = ranked[static_cast<size_t>(spec_.k) - 1].value - TauMargin();
    pruning_tau_valid_ = true;
  } else {
    pruning_tau_valid_ = false;
  }
  DisseminateState(/*include_cardinalities=*/true, kPhaseCreate);
  created_ = true;
  return result;
}

TopKResult MintViews::RunEpoch(sim::Epoch epoch) {
  if (!created_) return RunCreation(epoch);
  return EvaluateAtSink(epoch, RunUpdateWave(epoch));
}

void MintViews::OnTopologyChanged() {
  for (auto& counts : subtree_count_) counts.clear();
  for (auto& view : last_sent_) view.clear();
  for (auto& view : child_view_) view.clear();
  std::fill(tau_valid_at_.begin(), tau_valid_at_.end(), 0);
  pruning_tau_valid_ = false;
  have_last_kth_ = false;
  if (created_) ++churn_rebuild_count_;
  created_ = false;  // next RunEpoch re-creates over the survivors
}

void MintViews::RecountCardinalities() {
  const sim::RoutingTree& tree = net_->tree();
  size_t n = net_->topology().num_nodes();
  total_count_.clear();
  for (sim::NodeId id = 1; id < n; ++id) {
    if (net_->NodeAlive(id) && tree.attached(id)) ++total_count_[GroupOf(id)];
  }
  total_groups_ = total_count_.size();
  // Subtree cardinalities, accumulated leaves-first. Equals what a lossless
  // creation wave would record; the churn layer's join handshakes and the
  // report/retraction messages charged by the incremental repair are how the
  // counts travel in protocol terms.
  for (auto& counts : subtree_count_) counts.clear();
  for (sim::NodeId node : tree.post_order()) {
    auto& counts = subtree_count_[node];
    for (sim::NodeId child : tree.children(node)) {
      for (const auto& [g, c] : subtree_count_[child]) counts[g] += c;
    }
    if (node != sim::kSinkId && net_->NodeAlive(node)) ++counts[GroupOf(node)];
  }
}

void MintViews::OnTopologyChanged(const sim::TopologyDelta& delta) {
  if (!created_) return;  // nothing cached yet; creation covers the new tree
  const sim::RoutingTree& tree = net_->tree();
  size_t affected = delta.removed.size() + delta.reattached.size();
  if (!options_.incremental_repair || delta.empty() ||
      2 * affected >= std::max<size_t>(tree.AttachedCount(), 1)) {
    // Massive churn: re-running the creation phase is cheaper than paying
    // per-subtree repairs over most of the tree.
    OnTopologyChanged();
    return;
  }
  ++incremental_repair_count_;
  net_->SetPhase(kPhaseRepair);
  // 1) Nodes that left the tree: evict their caches so a later re-attach
  //    starts clean. The former parent (which observed the departure) is a
  //    source of the cardinality-delta converge-cast charged in step 3.
  for (const auto& [node, old_parent] : delta.removed) {
    (void)old_parent;
    last_sent_[node].clear();
    child_view_[node].clear();
    subtree_count_[node].clear();
    tau_valid_at_[node] = 0;
  }
  // 2) Re-attached subtree roots: the new parent caches nothing for them, so
  //    the next update wave re-sends the full pruned view through the
  //    ordinary delta mechanism (charged there). The current threshold must
  //    also hold throughout the subtree — non-uniform thresholds are what
  //    breaks the under-run safety argument. The join accept carries tau and
  //    its beacon generation to the root for free; only members whose tau is
  //    actually stale (they missed beacons while detached or down) cost a
  //    relayed install message.
  for (sim::NodeId root : delta.reattached) {
    last_sent_[root].clear();
    child_view_[root].clear();
    if (!tree.attached(root) || !net_->NodeAlive(root)) continue;  // gone again
    std::vector<sim::NodeId> stack = {root};
    while (!stack.empty()) {
      sim::NodeId m = stack.back();
      stack.pop_back();
      bool stale = tau_version_at_[m] != tau_version_ || tau_at_[m] != pruning_tau_ ||
                   (tau_valid_at_[m] != 0) != pruning_tau_valid_;
      if (stale) {
        tau_at_[m] = pruning_tau_;
        tau_valid_at_[m] = pruning_tau_valid_ ? 1 : 0;
        tau_version_at_[m] = tau_version_;
        if (m != root && net_->NodeAlive(tree.parent(m)) && net_->NodeAlive(m)) {
          net_->DeliverControl(tree.parent(m), m, kBeaconBytes);
        }
      }
      for (sim::NodeId c : tree.children(m)) stack.push_back(c);
    }
  }
  // 3) Re-derive the cardinality bookkeeping over the survivors, and charge
  //    one cardinality-delta converge-cast toward the sink: every former
  //    parent of a departed node and every re-attached root reports its
  //    subtree's new group table up; reports merge at shared ancestors like
  //    any converge-cast, so each tree edge on the union of affected paths
  //    carries exactly one message per repair event. Control traffic rides
  //    link-layer ARQ like the join handshakes (DeliverControl).
  RecountCardinalities();
  std::vector<uint8_t> on_path(tree.num_nodes(), 0);
  auto mark_path = [&](sim::NodeId start) {
    for (sim::NodeId cur = start; cur != sim::kSinkId; cur = tree.parent(cur)) {
      if (on_path[cur]) break;  // shared prefix already marked
      on_path[cur] = 1;
    }
  };
  for (const auto& [node, old_parent] : delta.removed) {
    if (old_parent != sim::kNoNode && net_->NodeAlive(old_parent) && tree.attached(old_parent)) {
      mark_path(old_parent);
    }
  }
  for (sim::NodeId root : delta.reattached) {
    if (tree.attached(root) && net_->NodeAlive(root)) mark_path(root);
  }
  for (sim::NodeId node : tree.post_order()) {
    if (node == sim::kSinkId || !on_path[node]) continue;
    sim::NodeId parent = tree.parent(node);
    if (!net_->NodeAlive(node) || !net_->NodeAlive(parent)) continue;
    net_->DeliverControl(node, parent, kCardinalityDeltaBytes);
  }
}

}  // namespace kspot::core
