#pragma once

#include <set>
#include <vector>

#include "core/epoch_algorithm.hpp"

namespace kspot::core {

/// FILA (Wu et al., ICDE'06) — filter-based top-k monitoring, the main
/// published competitor to MINT for snapshot queries and a KSpot baseline.
///
/// Setting: rank individual nodes (Grouping::kNode). The sink installs a
/// filter interval on every node, split at a separator value tau between the
/// cached k-th and (k+1)-th readings. A node transmits only when its reading
/// exits its filter. When reports arrive, values cached for the remaining
/// top-k members are uncertain relative to the reporters, so the sink runs
/// FILA's *probing phase* — it polls the non-reporting members for fresh
/// readings — then re-ranks, and when the membership boundary moved it
/// broadcasts the new separator and top-k list so nodes re-arm filters.
///
/// Semantics: exact *set* monitoring under lossless links modulo exact value
/// ties (the reported top-k membership matches the oracle; values of silent
/// non-members may lag inside filter bounds). The benchmarks therefore
/// compare FILA on set recall + cost, the trade-off the original paper
/// evaluates.
class Fila : public EpochAlgorithm {
 public:
  Fila(sim::Network* net, data::DataGenerator* gen, QuerySpec spec);

  std::string name() const override { return "FILA"; }
  TopKResult RunEpoch(sim::Epoch epoch) override;

  /// Conservative churn response: drop the sink cache and every installed
  /// filter; the next epoch re-runs the initial full collection over the
  /// surviving population.
  void OnTopologyChanged() override;

  /// Targeted churn response: evict the cached readings of nodes that left
  /// the tree (a dead node must not linger in the top-k on a stale value)
  /// and of re-attached subtrees (whose filters and cached values date from
  /// before they were orphaned), then force one filter re-arm broadcast so
  /// every survivor holds the current separator.
  void OnTopologyChanged(const sim::TopologyDelta& delta) override;

  /// Number of filter-update broadcasts so far.
  int filter_updates() const { return filter_updates_; }
  /// Number of node reports so far.
  int reports() const { return reports_; }
  /// Number of probe polls (probing phase) so far.
  int probes() const { return probes_; }

 private:
  bool initialized_ = false;
  /// Sink-side cache of the last reported reading per node.
  std::vector<double> cache_;
  /// Filter installed at each node: true = "upper side" ([tau, +inf)).
  std::vector<uint8_t> upper_side_;
  /// Separator value each node currently has installed.
  std::vector<double> node_tau_;
  /// Sink's current separator.
  double tau_ = 0.0;
  /// Sink's current top-k membership.
  std::set<sim::NodeId> top_;
  int filter_updates_ = 0;
  int reports_ = 0;
  int probes_ = 0;

  /// Forces the next MaybeReassignFilters to broadcast even when membership
  /// and separator are unchanged (re-attached nodes hold stale filters).
  bool force_filter_broadcast_ = false;

  /// Epoch-0 full collection + first filter installation.
  void Initialize(sim::Epoch epoch);
  /// Computes the answer from the sink cache.
  TopKResult CachedAnswer(sim::Epoch epoch) const;
  /// Recomputes membership/separator and broadcasts filters when changed.
  void MaybeReassignFilters();
};

}  // namespace kspot::core
