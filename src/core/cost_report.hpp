#pragma once

#include <string>
#include <vector>

#include "sim/network.hpp"

namespace kspot::core {

/// Uniform cost summary the benchmark harness and the System Panel report:
/// per-run and per-epoch traffic with the TAG baseline for reference.
struct CostReport {
  std::string algorithm;             ///< "MINT", "TAG", ...
  sim::TrafficCounters totals;       ///< Whole-run traffic.
  size_t epochs = 0;                 ///< Number of epochs the run covered.

  /// Messages per epoch.
  double MessagesPerEpoch() const {
    return epochs ? static_cast<double>(totals.messages) / static_cast<double>(epochs) : 0.0;
  }
  /// Application payload bytes per epoch.
  double PayloadBytesPerEpoch() const {
    return epochs ? static_cast<double>(totals.payload_bytes) / static_cast<double>(epochs)
                  : 0.0;
  }
  /// Radio energy (J) per epoch.
  double EnergyPerEpoch() const {
    return epochs ? totals.energy_j() / static_cast<double>(epochs) : 0.0;
  }

  /// Percentage saved versus a baseline quantity (0 when baseline is 0).
  static double SavingsPercent(double baseline, double mine) {
    if (baseline <= 0.0) return 0.0;
    return 100.0 * (baseline - mine) / baseline;
  }
};

}  // namespace kspot::core
