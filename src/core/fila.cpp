#include "core/fila.hpp"

#include <algorithm>

#include "sim/waves.hpp"

namespace kspot::core {

namespace {

/// Report / initial-collection entry: node id (u16) + value (i32 fixed).
constexpr size_t kEntryBytes = 6;
/// Filter broadcast: header + tau (i64 fixed) + k node ids (u16 each).
size_t FilterBroadcastBytes(size_t k) { return kMsgHeaderBytes + 8 + 2 * k; }

}  // namespace

Fila::Fila(sim::Network* net, data::DataGenerator* gen, QuerySpec spec)
    : EpochAlgorithm(net, gen, spec) {
  size_t n = net->topology().num_nodes();
  cache_.assign(n, spec.domain_min);
  upper_side_.assign(n, 0);
  node_tau_.assign(n, spec.domain_min);
}

void Fila::Initialize(sim::Epoch epoch) {
  // Full relayed collection: every node forwards the concatenation of its
  // subtree's (node, value) entries — FILA performs no aggregation.
  using Msg = std::vector<std::pair<sim::NodeId, double>>;
  static const sim::PhaseId kPhaseInit = sim::Network::InternPhase("fila.init");
  net_->SetPhase(kPhaseInit);
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox) -> std::optional<Msg> {
    Msg out;
    for (Msg& child : inbox) {
      out.insert(out.end(), child.begin(), child.end());
    }
    if (node != sim::kSinkId) out.emplace_back(node, gen_->Value(node, epoch));
    return out;
  };
  auto wire_bytes = [&](const Msg& m) { return kMsgHeaderBytes + kEntryBytes * m.size(); };
  auto sink = sim::UpWave<Msg>::Run(*net_, produce, wire_bytes);
  if (sink.has_value()) {
    for (const auto& [node, value] : *sink) cache_[node] = value;
  }
  top_.clear();
  tau_ = spec_.domain_min;
  MaybeReassignFilters();
  initialized_ = true;
}

TopKResult Fila::CachedAnswer(sim::Epoch epoch) const {
  std::vector<agg::RankedItem> ranked;
  for (sim::NodeId id = 1; id < cache_.size(); ++id) {
    ranked.push_back(agg::RankedItem{static_cast<sim::GroupId>(id), cache_[id]});
  }
  std::sort(ranked.begin(), ranked.end(), agg::RankHigher);
  TopKResult result;
  result.epoch = epoch;
  for (size_t i = 0; i < ranked.size() && i < static_cast<size_t>(spec_.k); ++i) {
    result.items.push_back(ranked[i]);
  }
  return result;
}

void Fila::MaybeReassignFilters() {
  // Rank the cache, derive the new membership and the separator (midpoint
  // between the k-th and (k+1)-th cached values, which gives hysteresis).
  std::vector<agg::RankedItem> ranked;
  for (sim::NodeId id = 1; id < cache_.size(); ++id) {
    ranked.push_back(agg::RankedItem{static_cast<sim::GroupId>(id), cache_[id]});
  }
  std::sort(ranked.begin(), ranked.end(), agg::RankHigher);
  size_t k = std::min<size_t>(static_cast<size_t>(spec_.k), ranked.size());
  std::set<sim::NodeId> new_top;
  for (size_t i = 0; i < k; ++i) new_top.insert(static_cast<sim::NodeId>(ranked[i].group));
  double new_tau;
  if (ranked.size() > k && k > 0) {
    new_tau = (ranked[k - 1].value + ranked[k].value) / 2.0;
  } else {
    new_tau = spec_.domain_min;
  }

  bool membership_changed = new_top != top_;
  bool tau_changed = new_tau != tau_;
  top_ = std::move(new_top);
  tau_ = new_tau;
  if (!membership_changed && !tau_changed && !force_filter_broadcast_ && initialized_) return;
  force_filter_broadcast_ = false;

  // One broadcast re-arms every node: it learns the separator and whether it
  // is on the upper side (member of the top-k list).
  static const sim::PhaseId kPhaseFilter = sim::Network::InternPhase("fila.filter");
  net_->SetPhase(kPhaseFilter);
  struct FilterMsg {
    double tau;
  };
  auto produce = [&](sim::NodeId node, const FilterMsg* incoming) -> std::optional<FilterMsg> {
    if (node == sim::kSinkId) return FilterMsg{tau_};
    node_tau_[node] = incoming->tau;
    upper_side_[node] = top_.count(node) ? 1 : 0;
    return *incoming;
  };
  auto wire_bytes = [&](const FilterMsg&) {
    return FilterBroadcastBytes(static_cast<size_t>(spec_.k));
  };
  sim::DownWave<FilterMsg>::Run(*net_, produce, wire_bytes);
  ++filter_updates_;
}

void Fila::OnTopologyChanged() {
  // Wipe everything; the next epoch's Initialize re-collects from the
  // surviving population and re-arms every filter.
  std::fill(cache_.begin(), cache_.end(), spec_.domain_min);
  std::fill(upper_side_.begin(), upper_side_.end(), 0);
  std::fill(node_tau_.begin(), node_tau_.end(), spec_.domain_min);
  top_.clear();
  tau_ = spec_.domain_min;
  initialized_ = false;
}

void Fila::OnTopologyChanged(const sim::TopologyDelta& delta) {
  if (!initialized_ || delta.empty()) {
    if (!delta.empty()) OnTopologyChanged();
    return;
  }
  const sim::RoutingTree& tree = net_->tree();
  // Departed nodes: a stale cached reading must not keep a dead node ranked.
  for (const auto& [node, old_parent] : delta.removed) {
    (void)old_parent;
    cache_[node] = spec_.domain_min;
    top_.erase(node);
  }
  // Re-attached subtrees: both the cached readings and the installed filters
  // date from before the orphaning, so evict the former and re-arm the
  // latter. A node whose actual reading clears the fresh separator reports
  // (and is probed back into the ranking) in the very next RunEpoch.
  for (sim::NodeId root : delta.reattached) {
    if (!tree.attached(root)) continue;
    std::vector<sim::NodeId> stack = {root};
    while (!stack.empty()) {
      sim::NodeId m = stack.back();
      stack.pop_back();
      cache_[m] = spec_.domain_min;
      top_.erase(m);
      for (sim::NodeId c : tree.children(m)) stack.push_back(c);
    }
  }
  // Detached survivors (up but unroutable — not in either delta list): they
  // can neither report nor be probed, so a stale cached reading must not
  // keep occupying a top-k slot. They re-enter the ranking when a later
  // repair re-attaches them (their root lands in delta.reattached).
  for (sim::NodeId id = 1; id < cache_.size(); ++id) {
    if (!tree.attached(id)) {
      cache_[id] = spec_.domain_min;
      top_.erase(id);
    }
  }
  force_filter_broadcast_ = true;
  MaybeReassignFilters();
}

TopKResult Fila::RunEpoch(sim::Epoch epoch) {
  if (!initialized_) {
    Initialize(epoch);
    return CachedAnswer(epoch);
  }
  // Each node samples; a reading outside the filter is reported hop-by-hop
  // to the sink. Nodes whose readings stay inside their filters are silent —
  // FILA's savings on stable data.
  static const sim::PhaseId kPhaseReport = sim::Network::InternPhase("fila.report");
  net_->SetPhase(kPhaseReport);
  std::set<sim::NodeId> reported;
  for (sim::NodeId id = 1; id < net_->topology().num_nodes(); ++id) {
    // Dead or unroutable nodes can neither sample nor transmit; and the sink
    // may only act (probe, re-arm) on reports it actually received, so
    // `reported` tracks deliveries, not attempts.
    if (!net_->NodeAlive(id) || !net_->tree().attached(id)) continue;
    double value = gen_->Value(id, epoch);
    bool violates = upper_side_[id] ? (value < node_tau_[id]) : (value > node_tau_[id]);
    if (!violates) continue;
    ++reports_;
    if (net_->UnicastUpPath(id, kMsgHeaderBytes + kEntryBytes)) {
      cache_[id] = value;
      reported.insert(id);
    }
  }
  if (!reported.empty()) {
    // Probing phase: cached values of the remaining members are stale
    // relative to the fresh reports, so the sink polls them (request down,
    // reading up) before deciding the new membership.
    static const sim::PhaseId kPhaseProbe = sim::Network::InternPhase("fila.probe");
    net_->SetPhase(kPhaseProbe);
    for (sim::NodeId member : top_) {
      if (reported.count(member)) continue;
      ++probes_;
      if (net_->UnicastDownPath(member, kMsgHeaderBytes) &&
          net_->UnicastUpPath(member, kMsgHeaderBytes + kEntryBytes)) {
        cache_[member] = gen_->Value(member, epoch);
      }
    }
    MaybeReassignFilters();
  }
  return CachedAnswer(epoch);
}

}  // namespace kspot::core
