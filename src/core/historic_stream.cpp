#include "core/historic_stream.hpp"

#include <algorithm>
#include <cmath>

namespace kspot::core {

namespace {

// Interned once per process (same discipline as the TJA phases).
const sim::PhaseId kPhaseStore = sim::Network::InternPhase("historic.store");
const sim::PhaseId kPhaseDelta = sim::Network::InternPhase("historic.delta");
const sim::PhaseId kPhaseScratch = sim::Network::InternPhase("historic.scratch");

QuerySpec SpecFrom(const HistoricStreamOptions& options, data::DataGenerator* gen) {
  QuerySpec spec;
  spec.k = options.k;
  spec.agg = options.agg;
  spec.SetDomainFrom(gen->modality());
  return spec;
}

}  // namespace

HistoricStream::HistoricStream(sim::Network* net, data::DataGenerator* gen,
                               HistoricStreamOptions options)
    : EpochAlgorithm(net, gen, SpecFrom(options, gen)), options_(options) {
  size_t n = net->topology().num_nodes();
  const data::ModalityInfo& info = gen->modality();
  stores_.reserve(n);
  for (size_t id = 0; id < n; ++id) {
    stores_.emplace_back(options_.window, options_.archive_to_flash, info.min_value,
                         info.max_value);
  }
  charged_.assign(n, {});
  value_now_.assign(n, 0.0);
  if (options_.suppression) {
    head_of_.assign(n, sim::kNoNode);
    members_of_head_.assign(n, {});
    predictor_.assign(n, 0.0);
    has_predictor_.assign(n, 0);
    suppressed_now_.assign(n, 0);
    const sim::Topology& topo = net->topology();
    for (sim::GroupId room : topo.DistinctRooms()) {
      sim::NodeId head = sim::kNoNode;
      for (sim::NodeId id : topo.NodesInRoom(room)) {
        if (id == sim::kSinkId) continue;
        if (head == sim::kNoNode) head = id;
        head_of_[id] = head;
        if (id != head) members_of_head_[head].push_back(id);
      }
    }
  }
}

std::string HistoricStream::name() const {
  return options_.incremental ? "HIST-delta" : "HIST-scratch";
}

void HistoricStream::OnTopologyChanged() {
  // Membership changed: predictors anchored at the old tree may never be
  // reconstructed again (a head may have died). Force fresh reports.
  if (options_.suppression) std::fill(has_predictor_.begin(), has_predictor_.end(), 0);
}

storage::IoCounters HistoricStream::FlashIoTotal() const {
  storage::IoCounters total;
  for (const storage::HistoryStore& s : stores_) total.Add(s.io());
  return total;
}

double HistoricStream::suppression_ratio() const {
  uint64_t decisions = reports_ + suppressed_;
  return decisions == 0 ? 0.0 : static_cast<double>(suppressed_) / static_cast<double>(decisions);
}

TopKResult HistoricStream::RunEpoch(sim::Epoch epoch) {
  gen_->PrepareEpoch(epoch);
  size_t n = stores_.size();
  // Local sampling and buffering: radio-silent, but flash archiving (when on)
  // is charged into each node's energy ledger as storage I/O.
  net_->SetPhase(kPhaseStore);
  last_delta_ = storage::WindowDelta{};
  for (size_t id = 1; id < n; ++id) {
    auto node = static_cast<sim::NodeId>(id);
    double v = gen_->Value(node, epoch);
    value_now_[id] = v;
    last_delta_ = stores_[id].Append(epoch, v);
    if (options_.flash_accounting) {
      storage::IoCounters now = stores_[id].io();
      storage::IoCounters delta = now.Since(charged_[id]);
      if (delta.reads != 0 || delta.writes != 0) {
        net_->ChargeStorageIo(node, delta.reads, delta.writes, delta.bytes, delta.energy_j);
        charged_[id] = now;
      }
    }
  }
  return options_.incremental ? RunDeltaEpoch(epoch) : RunScratchEpoch(epoch);
}

TopKResult HistoricStream::RunDeltaEpoch(sim::Epoch epoch) {
  size_t n = stores_.size();
  auto key = static_cast<sim::GroupId>(epoch);
  bool suppressing = options_.suppression;
  if (suppressing) {
    // Suppression decisions run serially in id order before the wave, so the
    // wave callbacks only read shared state (safe under sharded execution).
    for (size_t id = 1; id < n; ++id) {
      double v = value_now_[id];
      bool is_head = head_of_[id] == static_cast<sim::NodeId>(id);
      if (!is_head && has_predictor_[id] != 0 &&
          std::abs(v - predictor_[id]) <= options_.suppression_eps) {
        suppressed_now_[id] = 1;
        ++suppressed_;
        max_recon_err_ = std::max(max_recon_err_, std::abs(v - predictor_[id]));
      } else {
        suppressed_now_[id] = 0;
        predictor_[id] = v;
        has_predictor_[id] = 1;
        ++reports_;
      }
    }
  }

  net_->SetPhase(kPhaseDelta);
  using Msg = agg::GroupView;
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox,
                     size_t /*lane*/) -> std::optional<Msg> {
    Msg view;
    for (Msg& child : inbox) view.MergeView(std::move(child));
    if (node != sim::kSinkId) {
      if (!suppressing || suppressed_now_[node] == 0) {
        view.AddReading(key, value_now_[node]);
      }
      if (suppressing) {
        // The room head re-injects its silent members' predictors: the sink
        // still hears one (approximate) reading per sensor.
        for (sim::NodeId m : members_of_head_[node]) {
          if (suppressed_now_[m] != 0) {
            view.MergePartial(key, agg::PartialAgg::FromValue(predictor_[m]));
          }
        }
      }
      if (view.empty()) return std::nullopt;  // fully suppressed leaf: free
    }
    return view;
  };
  auto wire_bytes = [&](const Msg& m) {
    return kMsgHeaderBytes + agg::codec::ViewWireBytes(options_.agg, m.size());
  };
  auto sink = sim::UpWave<Msg>::Run(*net_, produce, wire_bytes, &ws_);

  agg::PartialAgg merged;
  if (sink.has_value()) {
    const agg::PartialAgg* p = sink->Find(key);
    if (p != nullptr) merged = *p;
  }
  // Windowed-incremental maintenance: every store slid identically, so the
  // last Append's delta names the epoch that left the window (if any).
  if (last_delta_.evicted) {
    window_view_.ApplyWindowDelta(static_cast<sim::GroupId>(last_delta_.evicted_epoch), key,
                                  merged);
  } else if (merged.count > 0) {
    window_view_.Set(key, merged);
  }

  TopKResult result;
  result.epoch = epoch;
  result.items = window_view_.TopK(options_.agg, static_cast<size_t>(options_.k));
  result.contributors = merged.count;
  result.StampCompleteness(net_->AliveAttachedSensors(), net_->EpochDegraded());
  return result;
}

TopKResult HistoricStream::RunScratchEpoch(sim::Epoch epoch) {
  net_->SetPhase(kPhaseScratch);
  auto key = static_cast<sim::GroupId>(epoch);
  using Msg = agg::GroupView;
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox,
                     size_t /*lane*/) -> std::optional<Msg> {
    Msg view;
    for (Msg& child : inbox) view.MergeView(std::move(child));
    if (node != sim::kSinkId) {
      // Ship the whole window, keyed by absolute epoch: the honest O(W*n)
      // per-epoch cost the delta path exists to avoid.
      const storage::HistoryStore& store = stores_[node];
      size_t fill = store.window_size();
      sim::Epoch first = epoch + 1 - static_cast<sim::Epoch>(fill);
      store.Window().ForEach([&](size_t t, double v) {
        view.AddReading(static_cast<sim::GroupId>(first + static_cast<sim::Epoch>(t)), v);
      });
    }
    return view;
  };
  auto wire_bytes = [&](const Msg& m) {
    return kMsgHeaderBytes + agg::codec::ViewWireBytes(options_.agg, m.size());
  };
  auto sink = sim::UpWave<Msg>::Run(*net_, produce, wire_bytes, &ws_);

  TopKResult result;
  result.epoch = epoch;
  if (sink.has_value()) {
    result.items = sink->TopK(options_.agg, static_cast<size_t>(options_.k));
    const agg::PartialAgg* newest = sink->Find(key);
    result.contributors = newest != nullptr ? newest->count : 0;
  }
  result.StampCompleteness(net_->AliveAttachedSensors(), net_->EpochDegraded());
  return result;
}

}  // namespace kspot::core
