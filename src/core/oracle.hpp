#pragma once

#include "agg/group_view.hpp"
#include "core/query_spec.hpp"
#include "core/result.hpp"
#include "data/generators.hpp"
#include "sim/topology.hpp"

namespace kspot::core {

/// Exact centralized evaluator — the ground truth every distributed algorithm
/// is tested and benchmarked against. It reads the same generator the
/// algorithms read, so answers must match bit-for-bit (fixed-point
/// arithmetic) when the algorithm is exact.
class Oracle {
 public:
  /// `topology` and `gen` must outlive the oracle.
  Oracle(const sim::Topology* topology, data::DataGenerator* gen, QuerySpec spec);

  /// The complete aggregated view of `epoch` (all sensors, all groups).
  agg::GroupView FullView(sim::Epoch epoch) const;

  /// The exact top-k answer of `epoch`.
  TopKResult TopK(sim::Epoch epoch) const;

  /// The exact k-th best final value of `epoch` (the MINT threshold tau);
  /// returns domain_min when fewer than k groups exist.
  double KthValue(sim::Epoch epoch) const;

  /// Query spec in use.
  const QuerySpec& spec() const { return spec_; }

 private:
  const sim::Topology* topology_;
  data::DataGenerator* gen_;
  QuerySpec spec_;
};

}  // namespace kspot::core
