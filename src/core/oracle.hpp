#pragma once

#include <functional>

#include "agg/group_view.hpp"
#include "core/query_spec.hpp"
#include "core/result.hpp"
#include "data/generators.hpp"
#include "sim/topology.hpp"

namespace kspot::core {

/// Exact centralized evaluator — the ground truth every distributed algorithm
/// is tested and benchmarked against. It reads the same generator the
/// algorithms read, so answers must match bit-for-bit (fixed-point
/// arithmetic) when the algorithm is exact.
class Oracle {
 public:
  /// `topology` and `gen` must outlive the oracle.
  Oracle(const sim::Topology* topology, data::DataGenerator* gen, QuerySpec spec);

  /// Predicate selecting the sensors a restricted ground truth aggregates
  /// over (e.g. the population that survived churn).
  using Contributes = std::function<bool(sim::NodeId)>;

  /// The complete aggregated view of `epoch` (all sensors, all groups).
  agg::GroupView FullView(sim::Epoch epoch) const;

  /// The aggregated view of `epoch` restricted to sensors where
  /// `contributes` is true — the ground truth a fault-tolerant algorithm is
  /// held to once nodes have died or detached.
  agg::GroupView FullViewOver(sim::Epoch epoch, const Contributes& contributes) const;

  /// The exact top-k answer of `epoch`.
  TopKResult TopK(sim::Epoch epoch) const;

  /// The exact top-k answer of `epoch` over the restricted population.
  TopKResult TopKOver(sim::Epoch epoch, const Contributes& contributes) const;

  /// The exact k-th best final value of `epoch` (the MINT threshold tau);
  /// returns domain_min when fewer than k groups exist.
  double KthValue(sim::Epoch epoch) const;

  /// Query spec in use.
  const QuerySpec& spec() const { return spec_; }

 private:
  /// Shared build loop of FullViewOver / TopKOver: appends the contributing
  /// sensors' readings of `epoch` into `view`.
  void FillViewOver(agg::GroupView& view, sim::Epoch epoch, const Contributes& contributes) const;

  const sim::Topology* topology_;
  data::DataGenerator* gen_;
  QuerySpec spec_;
  /// Scratch view reused by TopK/TopKOver across epochs (oracles are
  /// per-trial objects; methods are not thread-safe against each other).
  mutable agg::GroupView scratch_;
};

}  // namespace kspot::core
