#include "core/tja.hpp"

#include <algorithm>

#include "sim/waves.hpp"
#include "util/bloom_filter.hpp"
#include "util/fixed_point.hpp"

namespace kspot::core {

namespace {

constexpr double kCertEps = 1e-9;

// Interned once per process; the Clean-Up deepening loop re-enters the
// phases, so re-interning per round would be wasted lookups.
const sim::PhaseId kPhaseLb = sim::Network::InternPhase("tja.lb");
const sim::PhaseId kPhaseHj = sim::Network::InternPhase("tja.hj");
const sim::PhaseId kPhaseCl = sim::Network::InternPhase("tja.cl");

/// Local top-`k_deep` (window index, value) pairs of one node's window —
/// *extended through ties* with the k_deep-th value — plus the node's
/// m_i = value of its k_deep-th entry (the local bound). The tie extension
/// is what makes the Clean-Up certificate sound with >=: any key outside
/// every node's extended list is *strictly* below m_i at every node, so its
/// aggregate is strictly below the union threshold.
struct LocalTopK {
  std::vector<std::pair<sim::GroupId, double>> entries;
  double m_i;
  bool covers_window;  ///< True when the extended list is the whole window.
};

LocalTopK ComputeLocalTopK(const WindowSpan& window, size_t k_deep) {
  std::vector<std::pair<sim::GroupId, double>> ranked;
  ranked.reserve(window.size());
  window.ForEach([&](size_t t, double v) { ranked.emplace_back(static_cast<sim::GroupId>(t), v); });
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  LocalTopK out;
  size_t take = std::min(k_deep, ranked.size());
  out.m_i = take > 0 ? ranked[take - 1].second : 0.0;
  // Extend through ties with the k-th value.
  while (take < ranked.size() && ranked[take].second == out.m_i) ++take;
  out.covers_window = take >= ranked.size();
  out.entries.assign(ranked.begin(), ranked.begin() + static_cast<long>(take));
  return out;
}

}  // namespace

Tja::Tja(sim::Network* net, const HistorySource* history, HistoricOptions options)
    : net_(net), history_(history), options_(options) {}

Tja::LbOutcome Tja::LowerBoundPhase(size_t k_deep) {
  using Msg = LbMsg;
  net_->SetPhase(kPhaseLb);
  lb_contributed_.assign(history_->num_nodes(), {});
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox) -> std::optional<Msg> {
    Msg out;
    for (Msg& child : inbox) {
      out.view.MergeView(std::move(child.view));
      out.m_sum_fx += child.m_sum_fx;
    }
    if (node != sim::kSinkId) {
      LocalTopK local = ComputeLocalTopK(history_->Window(node), k_deep);
      for (const auto& [key, value] : local.entries) {
        out.view.AddReading(key, value);
        lb_contributed_[node].insert(key);
      }
      out.m_sum_fx += util::fixed_point::Encode(local.m_i);
    }
    return out;
  };
  auto wire_bytes = [&](const Msg& m) {
    return kMsgHeaderBytes + agg::codec::ViewWireBytes(options_.agg, m.view.size()) + 8;
  };
  auto sink = sim::UpWave<Msg>::Run(*net_, produce, wire_bytes, &lb_ws_);

  LbOutcome outcome;
  if (sink.has_value()) {
    outcome.union_view = std::move(sink->view);
    size_t sensors = history_->num_nodes() - 1;
    double m_total = static_cast<double>(sink->m_sum_fx) / util::fixed_point::kScale;
    // tau_U bounds every key outside Lsink: its per-node values are all below
    // the local m_i, so its SUM is below sum(m_i) and its AVG below the mean.
    outcome.tau_u = options_.agg == agg::AggKind::kAvg && sensors > 0
                        ? m_total / static_cast<double>(sensors)
                        : m_total;
  }
  return outcome;
}

agg::GroupView Tja::HierarchicalJoinPhase(const std::vector<sim::GroupId>& lsink) {
  // Downstream: the candidate key set, as a plain sorted u16 list or as a
  // Bloom filter. Nodes keep whatever representation arrives and answer for
  // every window key that matches it.
  struct DownMsg {
    std::vector<sim::GroupId> keys;  // empty when bloom is used
    util::BloomFilter bloom{64, 1};
    bool use_bloom = false;
  };
  net_->SetPhase(kPhaseHj);

  DownMsg seed;
  seed.use_bloom = options_.use_bloom;
  if (options_.use_bloom) {
    seed.bloom = util::BloomFilter::WithExpectedItems(lsink.size(), options_.bloom_fpr);
    for (sim::GroupId key : lsink) seed.bloom.Insert(static_cast<uint64_t>(key));
  } else {
    seed.keys = lsink;
  }
  // Which keys each node must answer for (recorded during dissemination).
  std::vector<std::vector<sim::GroupId>> to_answer(history_->num_nodes());

  auto matches = [&](const DownMsg& msg, sim::GroupId key) {
    if (msg.use_bloom) return msg.bloom.MayContain(static_cast<uint64_t>(key));
    return std::binary_search(msg.keys.begin(), msg.keys.end(), key);
  };
  auto record_keys = [&](sim::NodeId node, const DownMsg& msg) {
    size_t window = history_->window_size();
    for (size_t t = 0; t < window; ++t) {
      auto key = static_cast<sim::GroupId>(t);
      // Skip keys this node already contributed during LB — the sink merges
      // the LB union view with the HJ complement, so resending is waste.
      if (lb_contributed_[node].count(key)) continue;
      if (matches(msg, key)) to_answer[node].push_back(key);
    }
  };
  auto down_produce = [&](sim::NodeId node, const DownMsg* incoming) -> std::optional<DownMsg> {
    if (node == sim::kSinkId) return seed;
    record_keys(node, *incoming);
    return *incoming;
  };
  auto down_bytes = [&](const DownMsg& msg) {
    if (msg.use_bloom) return kMsgHeaderBytes + msg.bloom.WireSizeBytes();
    return kMsgHeaderBytes + 2 + 2 * msg.keys.size();
  };
  sim::DownWave<DownMsg>::Run(*net_, down_produce, down_bytes);

  // Upstream: exact contributions for the candidate keys, merged per key.
  net_->SetPhase(kPhaseHj);
  using UpMsg = agg::GroupView;
  auto up_produce = [&](sim::NodeId node, std::vector<UpMsg>&& inbox) -> std::optional<UpMsg> {
    UpMsg view;
    for (UpMsg& child : inbox) view.MergeView(std::move(child));
    if (node != sim::kSinkId) {
      WindowSpan window = history_->Window(node);
      for (sim::GroupId key : to_answer[node]) {
        if (static_cast<size_t>(key) < window.size()) {
          view.AddReading(key, window[static_cast<size_t>(key)]);
        }
      }
      if (view.empty()) return std::nullopt;
    }
    return view;
  };
  auto up_bytes = [&](const UpMsg& m) {
    return kMsgHeaderBytes + agg::codec::ViewWireBytes(options_.agg, m.size());
  };
  auto sink = sim::UpWave<UpMsg>::Run(*net_, up_produce, up_bytes, &hj_ws_);
  return sink.value_or(UpMsg{});
}

HistoricResult Tja::Run() {
  size_t window = history_->window_size();
  size_t sensors = history_->num_nodes() - 1;
  size_t k = static_cast<size_t>(options_.k);
  HistoricResult result;
  size_t k_deep = std::min(k, window);
  // The union threshold bounds sums/averages only. For any other aggregate
  // the certificate is unsound, so degrade defensively to full coverage
  // (exact at full-collection cost) instead of risking a wrong answer.
  if (options_.agg != agg::AggKind::kAvg && options_.agg != agg::AggKind::kSum) {
    k_deep = window;
  }
  for (int round = 1;; ++round) {
    result.rounds = round;
    LbOutcome lb = LowerBoundPhase(k_deep);
    std::vector<sim::GroupId> lsink;
    lsink.reserve(lb.union_view.size());
    for (const auto& [key, partial] : lb.union_view.entries()) lsink.push_back(key);
    result.lsink_size = lsink.size();

    agg::GroupView exact = HierarchicalJoinPhase(lsink);
    // Complete totals = LB contributions + HJ complements. Keep only keys
    // with complete counts (Bloom false positives are complete too; extra
    // exact keys only help).
    exact.MergeView(lb.union_view);
    net_->SetPhase(kPhaseCl);
    std::vector<agg::RankedItem> candidates;
    for (const auto& [key, partial] : exact.entries()) {
      if (partial.count >= sensors) {
        candidates.push_back(agg::RankedItem{key, partial.Final(options_.agg)});
      }
    }
    std::sort(candidates.begin(), candidates.end(), agg::RankHigher);

    bool have_everything = k_deep >= window || lsink.size() >= window;
    bool certified = candidates.size() >= k &&
                     candidates[k - 1].value >= lb.tau_u - kCertEps;
    if (have_everything || certified) {
      if (candidates.size() > k) candidates.resize(k);
      result.items = std::move(candidates);
      return result;
    }
    // Clean-Up: deepen the local lists and retry.
    k_deep = std::min(window, k_deep * 2);
  }
}

}  // namespace kspot::core
