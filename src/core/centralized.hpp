#pragma once

#include <string>

#include "core/tja.hpp"

namespace kspot::core {

/// CJA — the Centralized Join strawman for historic queries: every node
/// relays its *entire* history window to the sink, hop by hop and unmerged,
/// and the top-k operator runs centrally. This is Section I's "all tuples
/// need to be transferred to the querying node" baseline applied to the
/// historic case; TJA's savings are measured against it.
class Cja {
 public:
  Cja(sim::Network* net, const HistorySource* history, HistoricOptions options);

  /// Ships every tuple, computes the exact answer at the sink.
  HistoricResult Run();

  /// Short identifier for tables.
  std::string name() const { return "CJA"; }

 private:
  sim::Network* net_;
  const HistorySource* history_;
  HistoricOptions options_;
};

/// TAG-H — full in-network aggregation over the whole window: like TAG for
/// snapshots, every node merges and forwards partial aggregates for *all* W
/// time instances. Cheaper than CJA (merging caps message width at W
/// entries) but still ships the entire key space; the strongest
/// non-thresholded baseline for E6.
class TagHistoric {
 public:
  TagHistoric(sim::Network* net, const HistorySource* history, HistoricOptions options);

  /// Aggregates all W keys in-network, ranks at the sink. Exact.
  HistoricResult Run();

  /// Short identifier for tables.
  std::string name() const { return "TAG-H"; }

 private:
  sim::Network* net_;
  const HistorySource* history_;
  HistoricOptions options_;
};

}  // namespace kspot::core
