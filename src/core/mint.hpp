#pragma once

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/epoch_algorithm.hpp"
#include "sim/waves.hpp"

namespace kspot::core {

/// MINT Views (Zeinalipour-Yazti et al., MDM'07) — the snapshot top-k
/// algorithm KSpot routes `SELECT TOP K ... GROUP BY ...` queries to
/// (Section III-A). The implementation follows the paper's three phases;
/// where the demo paper only sketches the pruning framework, the
/// reconstruction below is provably exact under lossless links (DESIGN.md
/// section 3; enforced by the property tests):
///
/// 1. **Creation phase** (first epoch): a full TAG converge-cast builds the
///    distributed view hierarchy — every node's parent caches V'_i, so
///    ancestors hold a superset view of their descendants. Each node
///    records, per group, how many sensors of the group live in its subtree
///    (c_g); the sink learns the global cardinalities (n_g) and disseminates
///    them together with the initial pruning threshold tau (the k-th ranked
///    value minus a hysteresis margin).
/// 2. **Pruning phase** (every epoch, at every node): the gamma descriptors
///    [lb, ub] bound each group's final aggregate from the subtree partial,
///    the group cardinality and the modality's bounded domain. A group whose
///    upper bound is below tau cannot enter the top-k and is pruned from
///    V'_i; a group whose partial arrived incomplete was pruned below (and
///    is therefore provably outside the top-k), so it is dropped too.
/// 3. **Update phase** (every epoch): each node *updates its parent with
///    V'_i* — literally: it transmits only the entries of V'_i that changed
///    since its last report (plus tombstones for pruned groups), and stays
///    silent when nothing changed. Parents maintain their children's views
///    from these deltas. The sink re-ranks its materialized view V_0; if
///    fewer than K complete candidates clear tau (values drifted down), it
///    triggers a **probe/repair round** — a full collection that restores
///    exactness, rebuilds the caches and reseeds tau. tau itself is
///    re-disseminated only when it moved materially (always when it
///    decreased, which is what stale thresholds cannot tolerate).
///
/// Under message loss the algorithm degrades to best-effort (view caches can
/// go stale) and the benchmarks report recall instead of exactness.
///
/// **Churn response.** After tree membership changes the view hierarchy is
/// repaired *incrementally* (when Options::incremental_repair, the default):
/// only the caches of nodes that left or re-attached are evicted, the
/// cardinality bookkeeping is re-derived over the survivors (charged as
/// retraction / subtree-report control messages along the affected paths),
/// the current tau is installed throughout each re-attached subtree, and the
/// next ordinary update wave re-fills the invalidated caches through the
/// delta mechanism. The pre-existing behaviour — drop everything and re-run
/// the O(n) creation phase — remains as the fallback for massive churn and
/// as the ablation baseline.
class MintViews : public EpochAlgorithm {
 public:
  /// Ablation switches (benchmark E12).
  struct Options {
    /// Drop groups whose partial arrives incomplete at an inner node
    /// (forwarding them is provably useless). Off = only the sink filters.
    bool closure_pruning = true;
    /// Threshold (tau / gamma-descriptor) pruning.
    /// Off = the view hierarchy still suppresses unchanged entries, but
    /// every group's updates always flow.
    bool gamma_suppression = true;
    /// Delta-encode updates against the parent's cached view (the
    /// materialized-view maintenance of the Update Phase). Off = resend the
    /// full pruned view every epoch.
    bool delta_updates = true;
    /// Repair the view hierarchy incrementally after churn (evict only the
    /// affected subtrees) instead of re-running the full creation phase.
    bool incremental_repair = true;
    /// Hysteresis subtracted from the k-th value before broadcasting tau,
    /// as a fraction of the value domain; larger = fewer tau rebroadcasts
    /// and repairs, weaker pruning.
    double tau_margin_fraction = 0.02;
  };

  MintViews(sim::Network* net, data::DataGenerator* gen, QuerySpec spec, Options options);
  MintViews(sim::Network* net, data::DataGenerator* gen, QuerySpec spec);

  std::string name() const override { return "MINT"; }
  TopKResult RunEpoch(sim::Epoch epoch) override;

  /// Full stale-view eviction after churn (the conservative fallback):
  /// every cached child view, delta baseline, subtree cardinality and
  /// installed threshold may reference nodes that left (or re-entered) the
  /// tree, and the global group cardinalities n_g change with the
  /// population. Everything is dropped and the next epoch re-runs the
  /// creation phase over the surviving topology, re-counting n_g so
  /// completeness checks and gamma bounds hold on the survivors.
  void OnTopologyChanged() override;

  /// Incremental churn repair (see the class comment). Falls back to the
  /// full eviction when incremental repair is disabled or the change set
  /// covers most of the tree.
  void OnTopologyChanged(const sim::TopologyDelta& delta) override;

  /// Number of probe/repair rounds triggered so far (cost visibility).
  int repair_count() const { return repair_count_; }
  /// Number of churn-forced *full* view rebuilds (creation re-runs).
  int churn_rebuild_count() const { return churn_rebuild_count_; }
  /// Number of churn events absorbed by incremental repair (no full rebuild).
  int incremental_repair_count() const { return incremental_repair_count_; }
  /// Number of tau beacons broadcast so far.
  int beacon_count() const { return beacon_count_; }
  /// Current pruning threshold in force at the nodes; meaningful once
  /// tau_valid().
  double tau() const { return pruning_tau_; }
  /// True once a usable pruning threshold has been disseminated.
  bool tau_valid() const { return pruning_tau_valid_; }
  /// True after the creation phase ran.
  bool created() const { return created_; }

 private:
  /// One delta update: entries that changed plus groups that disappeared.
  struct Delta {
    sim::NodeId from = sim::kNoNode;
    std::vector<std::pair<sim::GroupId, agg::PartialAgg>> changed;
    std::vector<sim::GroupId> removed;
  };

  Options options_;
  bool created_ = false;
  int repair_count_ = 0;
  int beacon_count_ = 0;
  int churn_rebuild_count_ = 0;
  int incremental_repair_count_ = 0;
  size_t total_groups_ = 0;

  /// Global group cardinalities n_g (disseminated in the creation phase).
  std::unordered_map<sim::GroupId, uint32_t> total_count_;
  /// Per node: subtree cardinalities c_g (recorded during full waves).
  std::vector<std::unordered_map<sim::GroupId, uint32_t>> subtree_count_;
  /// Per node: the threshold currently installed (beacons can be lost).
  std::vector<double> tau_at_;
  std::vector<uint8_t> tau_valid_at_;
  /// Beacon generation counter and, per node, the generation it last heard —
  /// how the incremental churn repair tells a re-attached node whose tau is
  /// still current (detached and re-joined between two beacons: install is
  /// free, the version rides the join handshake) from one that missed
  /// beacons while away (a real install message is charged).
  uint32_t tau_version_ = 0;
  std::vector<uint32_t> tau_version_at_;
  /// Per node: the V'_i its parent currently caches (what was last sent).
  std::vector<agg::GroupView> last_sent_;
  /// Per node: cached views of its children, maintained from deltas.
  std::vector<agg::GroupView> child_view_;

  /// Reusable wave state (inboxes, scratch views) — allocated once, reused
  /// every epoch. The update wave's scratch view is per lane so concurrent
  /// shard lanes never share it (one entry on the serial path); it is
  /// pre-sized before the wave launches, never resized inside it.
  sim::UpWave<agg::GroupView>::Workspace full_wave_ws_;
  sim::UpWave<Delta>::Workspace update_wave_ws_;
  std::vector<agg::GroupView> lane_scratch_;
  agg::GroupView sink_view_;

  /// Threshold in force at the nodes (last broadcast), with margin applied.
  double pruning_tau_ = 0.0;
  bool pruning_tau_valid_ = false;
  /// Exponential moving average of |delta k-th| per epoch: when the whole
  /// field drifts (e.g. building-wide activity swings), the margin widens so
  /// tau does not have to chase the k-th value with beacons and repairs.
  double kth_drift_ema_ = 0.0;
  double last_kth_ = 0.0;
  bool have_last_kth_ = false;

  /// Epoch-0 creation: full wave + cardinality/threshold dissemination.
  TopKResult RunCreation(sim::Epoch epoch);
  /// Full collection used by creation and probe/repair rounds; re-records
  /// subtree cardinalities and resets the view caches.
  agg::GroupView FullWaveRebuildingState(sim::Epoch epoch, sim::PhaseId phase);
  /// Disseminates tau (and optionally the n_g table) down the tree.
  void DisseminateState(bool include_cardinalities, sim::PhaseId phase);
  /// Decides whether tau must be re-broadcast given the new k-th value.
  void MaybeRebroadcastTau(double kth_value, bool have_kth);
  /// The per-epoch update phase; returns the sink's materialized view
  /// (a reference into reused per-instance storage, valid until the next
  /// wave).
  agg::GroupView& RunUpdateWave(sim::Epoch epoch);
  /// Evaluates the sink view; on under-run triggers repair. Fills `result`.
  TopKResult EvaluateAtSink(sim::Epoch epoch, const agg::GroupView& sink_view);
  /// Re-derives n_g and every node's subtree cardinalities from the current
  /// tree and the surviving population (incremental churn repair).
  void RecountCardinalities();

  /// n_g lookup (1 under node grouping).
  uint32_t TotalCount(sim::GroupId g) const;
  /// Upper bound on group g's final value given a subtree partial.
  double UpperBound(sim::GroupId g, const agg::PartialAgg& partial, uint32_t subtree_c) const;
  /// Applies pruning rules to a node's merged view in place.
  void PruneView(sim::NodeId node, agg::GroupView& view) const;
  /// Margin subtracted from the k-th value when seeding tau: the configured
  /// base margin widened by the observed epoch-to-epoch drift of the k-th
  /// value (adaptive hysteresis).
  double TauMargin() const {
    double base = options_.tau_margin_fraction * (spec_.domain_max - spec_.domain_min);
    return std::max(base, 4.0 * kth_drift_ema_);
  }
};

}  // namespace kspot::core
