#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "agg/group_view.hpp"
#include "sim/types.hpp"

namespace kspot::core {

/// The ranked answer of one epoch of a continuous top-k query.
struct TopKResult {
  /// Epoch the answer refers to.
  sim::Epoch epoch = 0;
  /// Ranked items, best first; at most K entries.
  std::vector<agg::RankedItem> items;
  /// Sensors whose readings reached the sink view this answer was ranked
  /// from. Under churn this is the surviving (alive and routable)
  /// population, so consumers can tell a quiet network from a shrunken one.
  uint32_t contributors = 0;
  /// Fraction of the expected population (alive, attached sensors) whose
  /// readings made it into this answer, in [0, 1]. 1.0 when the reliability
  /// layer is off or nothing was lost; a partial answer advertises itself.
  double completeness = 1.0;
  /// True when an epoch deadline truncated a wave this epoch: the answer is
  /// structurally partial, not merely loss-thinned.
  bool degraded = false;

  /// Stamps completeness from the expected contributor population
  /// (Network::AliveAttachedSensors) and the epoch's degraded flag.
  /// `expected == 0` counts as complete (an empty network has nothing to
  /// miss); the ratio is clamped to 1 so stale caches can't overreport.
  void StampCompleteness(size_t expected_contributors, bool degraded_epoch) {
    completeness = expected_contributors == 0
                       ? 1.0
                       : std::min(1.0, static_cast<double>(contributors) /
                                           static_cast<double>(expected_contributors));
    degraded = degraded_epoch;
  }

  /// True when both results rank the same groups in the same order with
  /// values equal within `tol`.
  bool Matches(const TopKResult& other, double tol = 1e-9) const;

  /// Fraction of `truth`'s groups present in this result's groups (set
  /// recall; 1.0 when `truth` is empty). Order-insensitive.
  double RecallAgainst(const TopKResult& truth) const;

  /// Mean rank displacement against `truth`: for each of `truth`'s groups,
  /// the distance between its rank there and its rank here, counting a
  /// missing group as a displacement of |truth| (the worst case); averaged
  /// over `truth`'s size. 0 = identical ranking order; 0 when `truth` is
  /// empty.
  double RankDistanceFrom(const TopKResult& truth) const;

  /// Renders "1. group=3 value=75.00" lines for logs and examples.
  std::string ToString() const;
};

}  // namespace kspot::core
