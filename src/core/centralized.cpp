#include "core/centralized.hpp"

#include <algorithm>

#include "sim/waves.hpp"

namespace kspot::core {

namespace {

/// Raw relayed tuple: window key (u16) + fixed-point value (i32).
constexpr size_t kEntryBytes = 6;

}  // namespace

Cja::Cja(sim::Network* net, const HistorySource* history, HistoricOptions options)
    : net_(net), history_(history), options_(options) {}

HistoricResult Cja::Run() {
  using Entry = std::pair<sim::GroupId, double>;
  using Msg = std::vector<Entry>;
  static const sim::PhaseId kPhaseCja = sim::Network::InternPhase("cja.collect");
  net_->SetPhase(kPhaseCja);
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox) -> std::optional<Msg> {
    Msg out;
    for (Msg& child : inbox) out.insert(out.end(), child.begin(), child.end());
    if (node != sim::kSinkId) {
      history_->Window(node).ForEach(
          [&](size_t t, double v) { out.emplace_back(static_cast<sim::GroupId>(t), v); });
    }
    return out;
  };
  auto wire_bytes = [&](const Msg& m) { return kMsgHeaderBytes + kEntryBytes * m.size(); };
  auto sink = sim::UpWave<Msg>::Run(*net_, produce, wire_bytes);

  agg::GroupView view;
  if (sink.has_value()) {
    for (const auto& [key, value] : *sink) view.AddReading(key, value);
  }
  HistoricResult result;
  result.items = view.TopK(options_.agg, static_cast<size_t>(options_.k));
  result.lsink_size = view.size();
  return result;
}

TagHistoric::TagHistoric(sim::Network* net, const HistorySource* history, HistoricOptions options)
    : net_(net), history_(history), options_(options) {}

HistoricResult TagHistoric::Run() {
  using Msg = agg::GroupView;
  static const sim::PhaseId kPhaseTagh = sim::Network::InternPhase("tagh.collect");
  net_->SetPhase(kPhaseTagh);
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox) -> std::optional<Msg> {
    Msg view;
    for (Msg& child : inbox) view.MergeView(std::move(child));
    if (node != sim::kSinkId) {
      history_->Window(node).ForEach(
          [&](size_t t, double v) { view.AddReading(static_cast<sim::GroupId>(t), v); });
    }
    return view;
  };
  auto wire_bytes = [&](const Msg& m) {
    return kMsgHeaderBytes + agg::codec::ViewWireBytes(options_.agg, m.size());
  };
  auto sink = sim::UpWave<Msg>::Run(*net_, produce, wire_bytes);

  HistoricResult result;
  if (sink.has_value()) {
    result.items = sink->TopK(options_.agg, static_cast<size_t>(options_.k));
    result.lsink_size = sink->size();
  }
  return result;
}

}  // namespace kspot::core
