#pragma once

#include <vector>

#include "core/epoch_algorithm.hpp"
#include "query/ast.hpp"

namespace kspot::core {

/// One collected tuple of a basic (non-TOP-K) SELECT.
struct SelectTuple {
  sim::NodeId node = 0;
  sim::GroupId room = 0;
  double value = 0.0;
};

/// TinyDB's bread-and-butter acquisitional SELECT — the path the KSpot
/// client's query router sends non-TOP-K queries down (Section II: "basic
/// SELECT and GROUP-BY queries [go] to the existing local query processing
/// engine"). Two forms:
///
///  * tuple collection (no GROUP BY): every epoch each node evaluates the
///    optional WHERE predicate *at the source* (acquisitional filtering) and
///    relays matching (node, room, value) tuples to the sink;
///  * grouped aggregation (GROUP BY without TOP): classic TAG — all groups'
///    aggregates reach the sink (TagTopK::CollectFullView serves this).
class BasicSelect {
 public:
  /// `net` and `gen` must outlive the instance. The predicate is applied at
  /// the source when `has_predicate`.
  BasicSelect(sim::Network* net, data::DataGenerator* gen, bool has_predicate,
              query::Predicate predicate);

  /// Collects one epoch's matching tuples at the sink (ascending node id).
  std::vector<SelectTuple> RunEpoch(sim::Epoch epoch);

  /// Wire size of one relayed tuple (node u16 + room u16 + value i32).
  static constexpr size_t kTupleBytes = 8;

 private:
  sim::Network* net_;
  data::DataGenerator* gen_;
  bool has_predicate_;
  query::Predicate predicate_;
};

/// Evaluates a WHERE predicate against a reading.
bool EvalPredicate(const query::Predicate& predicate, double value);

}  // namespace kspot::core
