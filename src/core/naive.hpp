#pragma once

#include "core/epoch_algorithm.hpp"
#include "sim/waves.hpp"

namespace kspot::core {

/// The *wrongful* strawman of Section III-A: every node keeps only its local
/// top-k partials before forwarding. Cheap, but may discard contributions of
/// groups that belong to the true answer — on the Figure-1 scenario it
/// reports (D, 76.5) instead of the correct (C, 75). KSpot implements it
/// only as a baseline for the error-rate experiments (E9).
class NaiveTopK : public EpochAlgorithm {
 public:
  using EpochAlgorithm::EpochAlgorithm;

  std::string name() const override { return "Naive"; }
  TopKResult RunEpoch(sim::Epoch epoch) override;

 private:
  /// Reused across epochs.
  sim::UpWave<agg::GroupView>::Workspace wave_ws_;
};

}  // namespace kspot::core
