#pragma once

#include <set>
#include <string>
#include <vector>

#include "agg/group_view.hpp"
#include "core/epoch_algorithm.hpp"
#include "core/history_source.hpp"
#include "sim/network.hpp"
#include "sim/waves.hpp"

namespace kspot::core {

/// Configuration of a historic (vertically fragmented) top-k query.
struct HistoricOptions {
  /// Number of ranked time instances requested.
  int k = 1;
  /// Aggregate across nodes per time instance. The distributed thresholds of
  /// TJA and TPUT bound sums, so kAvg/kSum (which rank identically) are the
  /// supported kinds — the query validator enforces this at the SQL level.
  /// TJA additionally degrades to exact full-window coverage for other
  /// kinds; TPUT's sink state is sum-based and cannot honor them.
  agg::AggKind agg = agg::AggKind::kAvg;
  /// Compress the Lsink dissemination with a Bloom filter (the optimization
  /// of the original TJA paper). False positives cost bytes, not
  /// correctness.
  bool use_bloom = false;
  /// Target false-positive rate for the Bloom filter.
  double bloom_fpr = 0.05;
};

/// Result of a historic top-k run, with algorithm-visibility counters the
/// benchmarks report (|Lsink|, deepening rounds).
struct HistoricResult {
  std::vector<agg::RankedItem> items;  ///< Ranked time instances, best first.
  size_t lsink_size = 0;               ///< o = |Lsink| of the final round.
  int rounds = 1;                      ///< LB/HJ rounds (1 unless CL deepened).
};

/// TJA — the Threshold Join Algorithm (Zeinalipour-Yazti et al., DMSN'05),
/// KSpot's algorithm for historic queries over vertically fragmented data
/// (Section III-B). Three phases:
///
/// 1. **Lower Bound (LB)**: an in-network *union* of every node's local
///    top-k; intermediate nodes merge partial aggregates for shared keys, so
///    the sink receives Lsink = union of local top-k key sets together with
///    a hierarchically aggregated union threshold tau_U = agg_i(m_i), where
///    m_i is node i's k-th local value — every key outside Lsink is bounded
///    below tau_U.
/// 2. **Hierarchical Join (HJ)**: Lsink (optionally Bloom-compressed) is
///    disseminated down the tree and every node returns its exact
///    contributions for the candidate keys, merged hierarchically, so the
///    sink holds exact aggregates for all of Lsink.
/// 3. **Clean-Up (CL)**: the sink certifies the answer — the k-th exact
///    candidate must beat tau_U. When values tie too closely for the
///    certificate, the query restarts with deepened local lists (k' = 2k,
///    iterative deepening, capped at the window size, where the collection
///    is trivially complete). The returned answer is always exact.
class Tja {
 public:
  /// `net` and `history` must outlive the instance.
  Tja(sim::Network* net, const HistorySource* history, HistoricOptions options);

  /// Executes the query and returns the exact ranked time instances.
  HistoricResult Run();

  /// Short identifier for tables.
  std::string name() const { return options_.use_bloom ? "TJA+bloom" : "TJA"; }

 private:
  sim::Network* net_;
  const HistorySource* history_;
  HistoricOptions options_;
  /// Keys each node shipped during the current round's LB phase; the HJ
  /// phase only answers for the complement (the sink merges both views).
  std::vector<std::set<sim::GroupId>> lb_contributed_;

  struct LbOutcome {
    agg::GroupView union_view;  ///< Partial aggregates for Lsink keys.
    double tau_u = 0.0;         ///< Union threshold.
  };

  /// LB message: the union view (key -> partial aggregate, merged across the
  /// subtree) plus the subtree-aggregated union threshold.
  struct LbMsg {
    agg::GroupView view;
    int64_t m_sum_fx = 0;  ///< Sum of m_i over the subtree (for AVG/SUM).
  };

  /// Wave inboxes reused across Clean-Up deepening rounds.
  sim::UpWave<LbMsg>::Workspace lb_ws_;
  sim::UpWave<agg::GroupView>::Workspace hj_ws_;

  /// Phase 1 with local list depth `k_deep`.
  LbOutcome LowerBoundPhase(size_t k_deep);
  /// Phase 2: disseminate candidate keys, collect exact aggregates.
  agg::GroupView HierarchicalJoinPhase(const std::vector<sim::GroupId>& lsink);
};

}  // namespace kspot::core
