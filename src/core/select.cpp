#include "core/select.hpp"

#include <algorithm>

#include "sim/waves.hpp"

namespace kspot::core {

bool EvalPredicate(const query::Predicate& predicate, double value) {
  switch (predicate.op) {
    case query::CompareOp::kLt: return value < predicate.literal;
    case query::CompareOp::kLe: return value <= predicate.literal;
    case query::CompareOp::kGt: return value > predicate.literal;
    case query::CompareOp::kGe: return value >= predicate.literal;
    case query::CompareOp::kEq: return value == predicate.literal;
    case query::CompareOp::kNe: return value != predicate.literal;
  }
  return false;
}

BasicSelect::BasicSelect(sim::Network* net, data::DataGenerator* gen, bool has_predicate,
                         query::Predicate predicate)
    : net_(net), gen_(gen), has_predicate_(has_predicate), predicate_(predicate) {}

std::vector<SelectTuple> BasicSelect::RunEpoch(sim::Epoch epoch) {
  using Msg = std::vector<SelectTuple>;
  static const sim::PhaseId kPhaseCollect = sim::Network::InternPhase("select.collect");
  net_->SetPhase(kPhaseCollect);
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox) -> std::optional<Msg> {
    Msg out;
    for (Msg& child : inbox) out.insert(out.end(), child.begin(), child.end());
    if (node != sim::kSinkId) {
      double value = gen_->Value(node, epoch);
      if (!has_predicate_ || EvalPredicate(predicate_, value)) {
        SelectTuple t;
        t.node = node;
        t.room = net_->topology().room(node);
        t.value = value;
        out.push_back(t);
      }
      // Acquisitional filtering: a node (and whole subtree) with nothing to
      // report stays silent.
      if (out.empty()) return std::nullopt;
    }
    return out;
  };
  auto wire_bytes = [&](const Msg& m) { return kMsgHeaderBytes + kTupleBytes * m.size(); };
  auto sink = sim::UpWave<Msg>::Run(*net_, produce, wire_bytes);
  std::vector<SelectTuple> rows = sink.value_or(Msg{});
  std::sort(rows.begin(), rows.end(),
            [](const SelectTuple& a, const SelectTuple& b) { return a.node < b.node; });
  return rows;
}

}  // namespace kspot::core
