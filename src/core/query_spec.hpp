#pragma once

#include "agg/aggregate.hpp"
#include "data/modality.hpp"
#include "sim/topology.hpp"
#include "sim/types.hpp"

namespace kspot::core {

/// How tuples are grouped for ranking.
enum class Grouping : uint8_t {
  kRoom,  ///< GROUP BY roomid — rank rooms/clusters (the demo's scenario).
  kNode,  ///< GROUP BY nodeid — rank individual sensors (FILA's setting).
};

/// The algorithm-facing description of a snapshot top-k query, extracted from
/// the parsed SQL by the KSpot server.
struct QuerySpec {
  /// Number of ranked answers requested (the K of TOP K).
  int k = 1;
  /// Aggregate function over the sensed attribute.
  agg::AggKind agg = agg::AggKind::kAvg;
  /// Grouping of tuples.
  Grouping grouping = Grouping::kRoom;
  /// Lower bound of the sensed attribute's domain (from the modality).
  double domain_min = 0.0;
  /// Upper bound of the sensed attribute's domain.
  double domain_max = 100.0;

  /// Group of a sensing node under this spec.
  sim::GroupId GroupOf(const sim::Topology& topology, sim::NodeId id) const {
    return grouping == Grouping::kRoom ? topology.room(id) : static_cast<sim::GroupId>(id);
  }

  /// Populates the domain bounds from a modality descriptor.
  void SetDomainFrom(const data::ModalityInfo& info) {
    domain_min = info.min_value;
    domain_max = info.max_value;
  }
};

}  // namespace kspot::core
