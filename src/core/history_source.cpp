#include "core/history_source.hpp"

namespace kspot::core {

std::vector<double> HistorySource::MaterializeWindow(sim::NodeId id) const {
  WindowSpan span = Window(id);
  std::vector<double> out;
  out.reserve(span.size());
  span.ForEach([&](size_t, double v) { out.push_back(v); });
  return out;
}

GeneratorHistory::GeneratorHistory(data::DataGenerator* gen, size_t num_nodes,
                                   sim::Epoch first_epoch, size_t window)
    : window_(window), windows_(num_nodes) {
  // Generators advance epoch-major, so fill epoch-by-epoch.
  for (auto& w : windows_) w.assign(window, 0.0);
  for (size_t t = 0; t < window; ++t) {
    for (size_t id = 1; id < num_nodes; ++id) {
      windows_[id][t] = gen->Value(static_cast<sim::NodeId>(id),
                                   first_epoch + static_cast<sim::Epoch>(t));
    }
  }
}

WindowSpan GeneratorHistory::Window(sim::NodeId id) const {
  if (id >= windows_.size()) return {};
  return WindowSpan(std::span<const double>(windows_[id]));
}

}  // namespace kspot::core
