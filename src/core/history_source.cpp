#include "core/history_source.hpp"

namespace kspot::core {

GeneratorHistory::GeneratorHistory(data::DataGenerator* gen, size_t num_nodes,
                                   sim::Epoch first_epoch, size_t window)
    : window_(window), windows_(num_nodes) {
  // Generators advance epoch-major, so fill epoch-by-epoch.
  for (auto& w : windows_) w.assign(window, 0.0);
  for (size_t t = 0; t < window; ++t) {
    for (size_t id = 1; id < num_nodes; ++id) {
      windows_[id][t] = gen->Value(static_cast<sim::NodeId>(id),
                                   first_epoch + static_cast<sim::Epoch>(t));
    }
  }
}

std::vector<double> GeneratorHistory::Window(sim::NodeId id) const {
  if (id >= windows_.size()) return {};
  return windows_[id];
}

}  // namespace kspot::core
