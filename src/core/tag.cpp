#include "core/tag.hpp"

#include "agg/group_view.hpp"

namespace kspot::core {

agg::GroupView TagTopK::CollectFullView(sim::Network& net, data::DataGenerator& gen,
                                        const QuerySpec& spec, sim::Epoch epoch,
                                        sim::UpWave<agg::GroupView>::Workspace* workspace) {
  using Msg = agg::GroupView;
  gen.PrepareEpoch(epoch);  // prime serially; Value() is a pure read below
  // Lane-aware (third argument): the merge is entirely local to the visited
  // node, so shard lanes over disjoint subtrees never contend.
  auto produce = [&](sim::NodeId node, std::vector<Msg>&& inbox,
                     size_t /*lane*/) -> std::optional<Msg> {
    Msg view;
    for (Msg& child : inbox) view.MergeView(std::move(child));
    if (node != sim::kSinkId) {
      view.AddReading(spec.GroupOf(net.topology(), node), gen.Value(node, epoch));
    }
    return view;
  };
  auto wire_bytes = [&](const Msg& m) {
    return kMsgHeaderBytes + agg::codec::ViewWireBytes(spec.agg, m.size());
  };
  auto sink = sim::UpWave<Msg>::Run(net, produce, wire_bytes, workspace);
  return sink.value_or(Msg{});
}

TopKResult TagTopK::RunEpoch(sim::Epoch epoch) {
  static const sim::PhaseId kPhaseCollect = sim::Network::InternPhase("tag.collect");
  net_->SetPhase(kPhaseCollect);
  agg::GroupView view = CollectFullView(*net_, *gen_, spec_, epoch, &wave_ws_);
  TopKResult result;
  result.epoch = epoch;
  result.contributors = view.ContributorCount();
  result.items = view.TopK(spec_.agg, static_cast<size_t>(spec_.k));
  result.StampCompleteness(net_->AliveAttachedSensors(), net_->EpochDegraded());
  return result;
}

}  // namespace kspot::core
