#include "core/result.hpp"

#include <cmath>
#include <set>
#include <sstream>

#include "util/string_util.hpp"

namespace kspot::core {

bool TopKResult::Matches(const TopKResult& other, double tol) const {
  if (items.size() != other.items.size()) return false;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].group != other.items[i].group) return false;
    if (std::abs(items[i].value - other.items[i].value) > tol) return false;
  }
  return true;
}

double TopKResult::RecallAgainst(const TopKResult& truth) const {
  if (truth.items.empty()) return 1.0;
  std::set<sim::GroupId> mine;
  for (const auto& item : items) mine.insert(item.group);
  size_t hit = 0;
  for (const auto& item : truth.items) {
    if (mine.count(item.group)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.items.size());
}

double TopKResult::RankDistanceFrom(const TopKResult& truth) const {
  if (truth.items.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < truth.items.size(); ++i) {
    size_t j = 0;
    for (; j < items.size(); ++j) {
      if (items[j].group == truth.items[i].group) break;
    }
    if (j == items.size()) {
      sum += static_cast<double>(truth.items.size());
    } else {
      sum += static_cast<double>(i > j ? i - j : j - i);
    }
  }
  return sum / static_cast<double>(truth.items.size());
}

std::string TopKResult::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < items.size(); ++i) {
    oss << (i + 1) << ". group=" << items[i].group
        << " value=" << util::FormatDouble(items[i].value) << '\n';
  }
  return oss.str();
}

}  // namespace kspot::core
