#pragma once

#include <string>

#include "query/ast.hpp"
#include "util/status.hpp"

namespace kspot::query {

/// Parses the KSpot SQL dialect into a ParsedQuery. Expected failures
/// (syntax errors) come back as Status with a position-annotated message —
/// the query panel shows these to the user verbatim.
util::StatusOr<ParsedQuery> Parse(const std::string& sql);

/// Semantic validation against a deployment's capabilities: known attribute
/// names, sane K / history values, supported clause combinations. Returns OK
/// or the first problem found.
util::Status Validate(const ParsedQuery& query);

/// The query router of the KSpot client (Section II): classifies a
/// *validated* query so it can be dispatched to the right operator
/// (local engine, MINT, local-history filter, or TJA).
QueryClass Classify(const ParsedQuery& query);

}  // namespace kspot::query
