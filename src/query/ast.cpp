#include "query/ast.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace kspot::query {

std::string CompareOpText(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
  }
  return "?";
}

std::string ParsedQuery::ToSql() const {
  std::ostringstream oss;
  oss << "SELECT";
  if (top_k > 0) oss << " TOP " << top_k;
  for (size_t i = 0; i < select.size(); ++i) {
    oss << (i == 0 ? " " : ", ");
    if (select[i].is_aggregate()) {
      oss << select[i].aggregate << '(' << select[i].attribute << ')';
    } else {
      oss << select[i].attribute;
    }
  }
  oss << " FROM " << from;
  if (has_where) {
    oss << " WHERE " << where.attribute << ' ' << CompareOpText(where.op) << ' '
        << util::FormatDouble(where.literal, where.literal == static_cast<int>(where.literal)
                                                 ? 0
                                                 : 2);
  }
  if (!group_by.empty()) oss << " GROUP BY " << group_by;
  if (epoch_duration_s > 0) {
    // Canonicalize to seconds (the parser accepts ms/s/min); keep fractions
    // for sub-second durations so the round trip is lossless.
    bool integral = epoch_duration_s == static_cast<double>(static_cast<long>(epoch_duration_s));
    oss << " EPOCH DURATION " << util::FormatDouble(epoch_duration_s, integral ? 0 : 3)
        << " s";
  }
  if (history > 0) oss << " WITH HISTORY " << history;
  return oss.str();
}

std::string QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kBasicSelect: return "basic-select";
    case QueryClass::kSnapshotTopK: return "snapshot-topk";
    case QueryClass::kHistoricHorizontal: return "historic-horizontal";
    case QueryClass::kHistoricVertical: return "historic-vertical";
  }
  return "?";
}

}  // namespace kspot::query
