#pragma once

#include <string>
#include <vector>

namespace kspot::query {

/// Token kinds of the KSpot SQL dialect.
enum class TokenKind {
  kIdentifier,  ///< keywords are identifiers until the parser classifies them
  kNumber,
  kComma,
  kLParen,
  kRParen,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kEnd,
  kError,
};

/// One lexed token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
  size_t offset = 0;
};

/// Splits query text into tokens. Never throws; malformed characters yield a
/// kError token carrying the offending text.
std::vector<Token> Lex(const std::string& text);

}  // namespace kspot::query
