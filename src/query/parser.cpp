#include "query/parser.hpp"

#include <set>

#include "agg/aggregate.hpp"
#include "data/modality.hpp"
#include "query/lexer.hpp"
#include "util/string_util.hpp"

namespace kspot::query {

namespace {

/// Recursive-descent parser over the token stream.
class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::StatusOr<ParsedQuery> Run() {
    ParsedQuery q;
    if (!ExpectKeyword("SELECT")) return Error("expected SELECT");
    if (PeekKeyword("TOP")) {
      Advance();
      if (Peek().kind != TokenKind::kNumber) return Error("expected number after TOP");
      q.top_k = static_cast<int>(Peek().number);
      Advance();
    }
    // Select list.
    for (;;) {
      util::StatusOr<SelectItem> item = ParseSelectItem();
      if (!item.ok()) return item.status();
      q.select.push_back(item.value());
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (!ExpectKeyword("FROM")) return Error("expected FROM");
    if (Peek().kind != TokenKind::kIdentifier) return Error("expected table name after FROM");
    q.from = util::ToLower(Peek().text);
    Advance();

    if (PeekKeyword("WHERE")) {
      Advance();
      util::Status s = ParsePredicate(&q);
      if (!s.ok()) return s;
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      if (!ExpectKeyword("BY")) return Error("expected BY after GROUP");
      if (Peek().kind != TokenKind::kIdentifier) return Error("expected attribute after GROUP BY");
      q.group_by = util::ToLower(Peek().text);
      Advance();
    }
    if (PeekKeyword("EPOCH")) {
      Advance();
      if (!ExpectKeyword("DURATION")) return Error("expected DURATION after EPOCH");
      if (Peek().kind != TokenKind::kNumber) return Error("expected number after EPOCH DURATION");
      double value = Peek().number;
      Advance();
      double unit_s = 1.0;
      if (Peek().kind == TokenKind::kIdentifier) {
        std::string unit = util::ToLower(Peek().text);
        if (unit == "ms") {
          unit_s = 1e-3;
        } else if (unit == "s" || unit == "sec" || unit == "second" || unit == "seconds") {
          unit_s = 1.0;
        } else if (unit == "min" || unit == "minute" || unit == "minutes") {
          unit_s = 60.0;
        } else {
          return Error("unknown epoch duration unit '" + unit + "'");
        }
        Advance();
      }
      q.epoch_duration_s = value * unit_s;
    }
    if (PeekKeyword("WITH")) {
      Advance();
      if (!ExpectKeyword("HISTORY")) return Error("expected HISTORY after WITH");
      if (Peek().kind != TokenKind::kNumber) return Error("expected number after WITH HISTORY");
      q.history = static_cast<int>(Peek().number);
      Advance();
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return q;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdentifier && util::EqualsIgnoreCase(Peek().text, kw);
  }
  bool ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  util::Status Error(const std::string& message) const {
    return util::Status::Error(message + " (at offset " + std::to_string(Peek().offset) + ")");
  }

  util::StatusOr<SelectItem> ParseSelectItem() {
    if (Peek().kind != TokenKind::kIdentifier) return Error("expected select item");
    std::string first = Peek().text;
    Advance();
    SelectItem item;
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      if (Peek().kind != TokenKind::kIdentifier) return Error("expected attribute in aggregate");
      item.aggregate = util::ToUpper(first);
      item.attribute = util::ToLower(Peek().text);
      Advance();
      if (Peek().kind != TokenKind::kRParen) return Error("expected ')'");
      Advance();
    } else {
      item.attribute = util::ToLower(first);
    }
    return item;
  }

  util::Status ParsePredicate(ParsedQuery* q) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected attribute in WHERE");
    }
    q->where.attribute = util::ToLower(Peek().text);
    Advance();
    switch (Peek().kind) {
      case TokenKind::kLt: q->where.op = CompareOp::kLt; break;
      case TokenKind::kLe: q->where.op = CompareOp::kLe; break;
      case TokenKind::kGt: q->where.op = CompareOp::kGt; break;
      case TokenKind::kGe: q->where.op = CompareOp::kGe; break;
      case TokenKind::kEq: q->where.op = CompareOp::kEq; break;
      case TokenKind::kNe: q->where.op = CompareOp::kNe; break;
      default: return Error("expected comparison operator in WHERE");
    }
    Advance();
    if (Peek().kind != TokenKind::kNumber) {
      return Error("expected number literal in WHERE");
    }
    q->where.literal = Peek().number;
    Advance();
    q->has_where = true;
    return util::Status::Ok();
  }
};

/// Attributes the deployment understands besides sensed modalities.
const std::set<std::string>& MetaAttributes() {
  static const std::set<std::string> kMeta = {"roomid", "nodeid", "epoch"};
  return kMeta;
}

bool IsSensedAttribute(const std::string& name) {
  data::Modality m;
  return data::ParseModality(name, &m);
}

}  // namespace

util::StatusOr<ParsedQuery> Parse(const std::string& sql) {
  std::vector<Token> tokens = Lex(sql);
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kError) {
      return util::Status::Error("unexpected character '" + t.text + "' at offset " +
                                 std::to_string(t.offset));
    }
  }
  return ParserImpl(std::move(tokens)).Run();
}

util::Status Validate(const ParsedQuery& q) {
  if (q.from != "sensors") {
    return util::Status::Error("unknown table '" + q.from + "'; only 'sensors' exists");
  }
  if (q.select.empty()) return util::Status::Error("empty select list");
  if (q.top_k < 0) return util::Status::Error("TOP k must be positive");
  if (q.history < 0) return util::Status::Error("WITH HISTORY must be positive");
  for (const auto& item : q.select) {
    if (item.is_aggregate()) {
      agg::AggKind kind;
      if (!agg::ParseAggKind(item.aggregate, &kind)) {
        return util::Status::Error("unknown aggregate '" + item.aggregate + "'");
      }
      if (!IsSensedAttribute(item.attribute)) {
        return util::Status::Error("aggregate over unknown attribute '" + item.attribute + "'");
      }
    } else if (!MetaAttributes().count(item.attribute) && !IsSensedAttribute(item.attribute)) {
      return util::Status::Error("unknown attribute '" + item.attribute + "'");
    }
  }
  if (!q.group_by.empty() && !MetaAttributes().count(q.group_by)) {
    return util::Status::Error("GROUP BY must use roomid, nodeid or epoch");
  }
  if (q.top_k > 0) {
    if (q.FirstAggregate() == nullptr) {
      return util::Status::Error("TOP-K queries need an aggregate select item");
    }
    if (q.group_by.empty()) {
      return util::Status::Error("TOP-K queries need a GROUP BY clause");
    }
    if (q.has_where) {
      return util::Status::Error(
          "WHERE is not supported on TOP-K queries (group membership must be static "
          "for in-network pruning); filter with a basic SELECT instead");
    }
    if (q.group_by == "epoch" && q.history == 0) {
      return util::Status::Error("GROUP BY epoch requires WITH HISTORY");
    }
    if (q.group_by == "epoch") {
      // TJA's union-threshold certificate bounds sums/averages; other
      // aggregates have no sound distributed threshold here.
      agg::AggKind kind;
      agg::ParseAggKind(q.FirstAggregate()->aggregate, &kind);
      if (kind != agg::AggKind::kAvg && kind != agg::AggKind::kSum) {
        return util::Status::Error(
            "historic GROUP BY epoch queries support AVG and SUM only");
      }
    }
  }
  if (q.has_where && !IsSensedAttribute(q.where.attribute)) {
    return util::Status::Error("WHERE over unknown attribute '" + q.where.attribute + "'");
  }
  return util::Status::Ok();
}

QueryClass Classify(const ParsedQuery& q) {
  if (q.top_k <= 0) return QueryClass::kBasicSelect;
  if (q.history > 0) {
    return q.group_by == "epoch" ? QueryClass::kHistoricVertical
                                 : QueryClass::kHistoricHorizontal;
  }
  return QueryClass::kSnapshotTopK;
}

}  // namespace kspot::query
