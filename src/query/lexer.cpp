#include "query/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace kspot::query {

std::vector<Token> Lex(const std::string& text) {
  std::vector<Token> out;
  size_t i = 0;
  size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_')) ++i;
      tok.kind = TokenKind::kIdentifier;
      tok.text = text.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1]))) ||
               (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      if (text[i] == '-') ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) ++i;
      tok.kind = TokenKind::kNumber;
      tok.text = text.substr(start, i - start);
      tok.number = std::strtod(tok.text.c_str(), nullptr);
    } else {
      switch (c) {
        case ',': tok.kind = TokenKind::kComma; ++i; break;
        case '(': tok.kind = TokenKind::kLParen; ++i; break;
        case ')': tok.kind = TokenKind::kRParen; ++i; break;
        case '=': tok.kind = TokenKind::kEq; ++i; break;
        case '<':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.kind = TokenKind::kLe;
            i += 2;
          } else if (i + 1 < n && text[i + 1] == '>') {
            tok.kind = TokenKind::kNe;
            i += 2;
          } else {
            tok.kind = TokenKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.kind = TokenKind::kGe;
            i += 2;
          } else {
            tok.kind = TokenKind::kGt;
            ++i;
          }
          break;
        case '!':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.kind = TokenKind::kNe;
            i += 2;
          } else {
            tok.kind = TokenKind::kError;
            tok.text = text.substr(i, 1);
            ++i;
          }
          break;
        default:
          tok.kind = TokenKind::kError;
          tok.text = text.substr(i, 1);
          ++i;
          break;
      }
    }
    out.push_back(tok);
    if (tok.kind == TokenKind::kError) break;
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(end);
  return out;
}

}  // namespace kspot::query
