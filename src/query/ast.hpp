#pragma once

#include <string>
#include <vector>

namespace kspot::query {

/// One item of the SELECT list: either a bare attribute ("roomid") or an
/// aggregate call ("AVG(sound)").
struct SelectItem {
  std::string attribute;  ///< Attribute name, lowercased.
  std::string aggregate;  ///< Aggregate function name, uppercased; "" if bare.

  bool is_aggregate() const { return !aggregate.empty(); }
};

/// Comparison operators allowed in WHERE.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// Optional WHERE predicate: `attribute op literal`.
struct Predicate {
  std::string attribute;
  CompareOp op = CompareOp::kGt;
  double literal = 0.0;
};

/// Parsed form of a KSpot query (the dialect of Sections I/III):
///
///   SELECT [TOP k] item {, item} FROM sensors
///     [WHERE attr op number]
///     [GROUP BY attr]
///     [EPOCH DURATION n (ms|s|sec|min)]
///     [WITH HISTORY n]
struct ParsedQuery {
  /// K of the TOP clause; 0 when no TOP clause is present.
  int top_k = 0;
  /// SELECT list in source order.
  std::vector<SelectItem> select;
  /// FROM target (always "sensors" after validation).
  std::string from;
  /// GROUP BY attribute, lowercased; "" when absent.
  std::string group_by;
  /// WHERE predicate, when has_where.
  bool has_where = false;
  Predicate where;
  /// Epoch duration in seconds; 0 when unspecified (defaults apply).
  double epoch_duration_s = 0.0;
  /// WITH HISTORY window length in epochs; 0 when absent.
  int history = 0;

  /// The first aggregate item of the SELECT list, if any.
  const SelectItem* FirstAggregate() const {
    for (const auto& item : select) {
      if (item.is_aggregate()) return &item;
    }
    return nullptr;
  }

  /// Renders the query back to canonical SQL text. Parsing the result yields
  /// an equivalent ParsedQuery (round-trip property, enforced by tests);
  /// used by the server when re-disseminating queries to the clients.
  std::string ToSql() const;
};

/// The source-text spelling of a comparison operator.
std::string CompareOpText(CompareOp op);

/// Query classes the KSpot client's query router distinguishes
/// (Section II: basic SELECT / GROUP-BY queries go to the local engine,
/// TOP-K queries to the specialized top-k operators).
enum class QueryClass {
  kBasicSelect,         ///< No TOP clause: plain TAG acquisition.
  kSnapshotTopK,        ///< TOP k, current readings: MINT.
  kHistoricHorizontal,  ///< TOP k over history, grouped by room/node: local filtering.
  kHistoricVertical,    ///< TOP k over history, grouped by time instance: TJA.
};

/// Human-readable class name.
std::string QueryClassName(QueryClass c);

}  // namespace kspot::query
