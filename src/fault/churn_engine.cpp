#include "fault/churn_engine.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/shard_runtime.hpp"
#include "util/rng.hpp"

namespace kspot::fault {

namespace {

/// Join handshake payloads: type u8 + epoch u32 + node id u16.
constexpr size_t kJoinRequestBytes = 7;
constexpr size_t kJoinAcceptBytes = 7;

/// Salt separating the repair RNG stream from every other consumer of the
/// plan seed.
constexpr uint64_t kRepairSalt = 0x5EED'FA17'0000'0001ULL;

}  // namespace

ChurnEngine::ChurnEngine(sim::Network* net, sim::RoutingTree* tree, FaultPlan plan)
    : net_(net),
      tree_(tree),
      plan_(std::move(plan)),
      adjacency_(net->topology().BuildAdjacency()) {
  size_t n = net_->topology().num_nodes();
  was_alive_.resize(n);
  episode_loss_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    was_alive_[i] = net_->NodeAlive(static_cast<sim::NodeId>(i)) ? 1 : 0;
  }
}

void ChurnEngine::ApplyEpisodeLoss(sim::NodeId node) {
  const EpisodeLoss& ep = episode_loss_[node];
  // Single-source episodes pass their value through untouched: compounding
  // 0.3 with two zero sources via 1-(1-p) products would change the double's
  // bits (1 - (1 - 0.3) != 0.3) and silently break degrade-only golden runs.
  double loss;
  if (ep.blackout > 0.0) {
    loss = 1.0;  // a blackout drowns out everything else
  } else if (ep.burst == 0.0) {
    loss = ep.degrade;
  } else if (ep.degrade == 0.0) {
    loss = ep.burst;
  } else {
    loss = 1.0 - (1.0 - ep.degrade) * (1.0 - ep.burst);
  }
  net_->SetNodeExtraLoss(node, loss);
}

ChurnReport ChurnEngine::BeginEpoch(sim::Epoch epoch) {
  ChurnReport report;
  // 1) Scheduled events due this epoch (or skipped-over earlier ones).
  while (next_event_ < plan_.events.size() && plan_.events[next_event_].at <= epoch) {
    const FaultEvent& ev = plan_.events[next_event_++];
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
        net_->SetNodeUp(ev.node, false);
        ++report.crashes;
        break;
      case FaultEvent::Kind::kRecover:
        net_->SetNodeUp(ev.node, true);
        ++report.recoveries;
        break;
      case FaultEvent::Kind::kDegradeStart:
        episode_loss_[ev.node].degrade = ev.extra_loss;
        ApplyEpisodeLoss(ev.node);
        ++report.degrade_changes;
        break;
      case FaultEvent::Kind::kDegradeEnd:
        episode_loss_[ev.node].degrade = 0.0;
        ApplyEpisodeLoss(ev.node);
        ++report.degrade_changes;
        break;
      case FaultEvent::Kind::kBlackoutStart:
        episode_loss_[ev.node].blackout = ev.extra_loss;
        ApplyEpisodeLoss(ev.node);
        ++report.blackout_changes;
        break;
      case FaultEvent::Kind::kBlackoutEnd:
        episode_loss_[ev.node].blackout = 0.0;
        ApplyEpisodeLoss(ev.node);
        ++report.blackout_changes;
        break;
      case FaultEvent::Kind::kBurstStart:
        episode_loss_[ev.node].burst = ev.extra_loss;
        ApplyEpisodeLoss(ev.node);
        ++report.burst_changes;
        break;
      case FaultEvent::Kind::kBurstEnd:
        episode_loss_[ev.node].burst = 0.0;
        ApplyEpisodeLoss(ev.node);
        ++report.burst_changes;
        break;
    }
  }
  // 2+3) Battery deaths and tree repair, iterated to a fixed point: the
  // repair's own join-handshake charges can drain a battery mid-repair, and
  // that death must be seen *this* epoch (marking was_alive_ as we count
  // keeps each death counted exactly once).
  size_t n = was_alive_.size();
  bool scheduled_membership = report.crashes + report.recoveries > 0;
  util::Rng repair_rng = util::Rng(plan_.seed ^ kRepairSalt).Split(epoch);
  while (true) {
    size_t deaths = 0;
    for (size_t i = 0; i < n; ++i) {
      auto id = static_cast<sim::NodeId>(i);
      if (was_alive_[i] && net_->NodeUp(id) && !net_->meter(id).alive()) {
        was_alive_[i] = 0;
        ++deaths;
      }
    }
    report.battery_deaths += deaths;
    if (!scheduled_membership && deaths == 0) break;
    scheduled_membership = false;
    // A dead sink is the end of the network, not a repairable fault: Repair
    // requires the sink up (it would otherwise re-attach everyone to a node
    // that can no longer receive). The epoch waves already skip a dead sink
    // and produce empty answers; the caller reads the sink's state off the
    // network.
    if (!net_->NodeAlive(sim::kSinkId)) break;
    static const uint32_t kRepairSpan = obs::GlobalTracer().InternName("fault.repair");
    obs::ScopedSpan repair_span(kRepairSpan);
    sim::RepairReport repair = tree_->Repair(
        net_->topology(), adjacency_, [this](sim::NodeId id) { return net_->NodeAlive(id); },
        repair_rng, &repair_workspace_);
    last_detached_ = repair.detached;
    report.detached = repair.detached;
    // Only an *actual* tree change notifies algorithms and counts as a
    // repair event: a scheduled crash of a node that already battery-died
    // (the plan cannot know about battery state) must not force MINT into a
    // spurious full rebuild.
    if (!repair.changed) continue;
    report.topology_changed = true;
    report.delta.Accumulate(repair);
    static const sim::PhaseId kPhaseRepair = sim::Network::InternPhase("fault.repair");
    net_->SetPhase(kPhaseRepair);
    for (const sim::RepairOp& op : repair.reattached) {
      net_->DeliverControl(op.node, op.new_parent, kJoinRequestBytes);
      net_->DeliverControl(op.new_parent, op.node, kJoinAcceptBytes);
      repair_messages_ += 2;
    }
    report.reattached += repair.reattached.size();
    total_reattached_ += repair.reattached.size();
  }
  if (report.topology_changed) {
    ++repair_events_;
    // The shard plan slices the tree that just changed; the next wave re-cuts.
    if (sim::ShardRuntime* rt = net_->shard_runtime()) rt->InvalidateTopology();
  }
  for (size_t i = 0; i < n; ++i) {
    was_alive_[i] = net_->NodeAlive(static_cast<sim::NodeId>(i)) ? 1 : 0;
  }
  if (obs::MetricsOn()) {
    static obs::Counter& crashes = obs::Registry().counter("churn.crashes");
    static obs::Counter& recoveries = obs::Registry().counter("churn.recoveries");
    static obs::Counter& deaths = obs::Registry().counter("churn.battery_deaths");
    static obs::Counter& reattached = obs::Registry().counter("churn.reattached");
    static obs::Counter& repairs = obs::Registry().counter("churn.repair_events");
    crashes.Add(report.crashes);
    recoveries.Add(report.recoveries);
    deaths.Add(report.battery_deaths);
    reattached.Add(report.reattached);
    if (report.topology_changed) repairs.Add(1);
    // Created lazily so registries of plans without these episode kinds keep
    // their historical counter set.
    if (report.blackout_changes + report.burst_changes > 0) {
      static obs::Counter& blackouts = obs::Registry().counter("churn.blackout_changes");
      static obs::Counter& bursts = obs::Registry().counter("churn.burst_changes");
      blackouts.Add(report.blackout_changes);
      bursts.Add(report.burst_changes);
    }
  }
  return report;
}

}  // namespace kspot::fault
