#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/topology.hpp"
#include "sim/types.hpp"

namespace kspot::fault {

/// One scheduled fault-process event. Plans are declarative: a plan is data,
/// generated once from a seed (or written by hand in tests), and executed by
/// the ChurnEngine — so the same churn hits every algorithm under comparison
/// identically, and a sweep is reproducible from its seed alone.
struct FaultEvent {
  enum class Kind : uint8_t {
    kCrash,         ///< Node goes administratively down (fail-stop).
    kRecover,       ///< A crashed node comes back (and must re-attach).
    kDegradeStart,  ///< Links touching the node start losing extra frames.
    kDegradeEnd,    ///< The degradation episode ends.
    kBlackoutStart, ///< Links touching the node lose everything (loss 1.0).
    kBlackoutEnd,   ///< The blackout lifts.
    kBurstStart,    ///< A correlated burst-loss episode starts on the node's links.
    kBurstEnd,      ///< The burst-loss episode ends.
  };
  sim::Epoch at = 0;
  Kind kind = Kind::kCrash;
  sim::NodeId node = 0;
  double extra_loss = 0.0;  ///< Episode loss; meaningful for kDegradeStart.
};

/// Human-readable kind name ("crash", ...).
const char* FaultEventKindName(FaultEvent::Kind kind);

/// Knobs of the generated fault process. All probabilities are per sensing
/// node per epoch; the sink never fails (it is the mains-powered base
/// station).
struct FaultPlanOptions {
  /// Epochs the plan covers; no event is scheduled at or past the horizon.
  /// 0 = unset: drivers resolve it to their run length (KSpotServer snaps it
  /// to `epochs`); FaultPlan::Generate with a zero horizon yields an empty
  /// plan.
  sim::Epoch horizon = 0;
  /// Probability an up node crashes in an epoch.
  double crash_prob = 0.0;
  /// Mean epochs a crashed node stays down; 0 makes crashes permanent.
  sim::Epoch mean_downtime = 0;
  /// Probability a clean node starts a link-degradation episode in an epoch.
  double degrade_prob = 0.0;
  /// Extra per-frame loss on the degraded node's links during an episode.
  double degrade_extra_loss = 0.3;
  /// Episode length in epochs.
  sim::Epoch degrade_duration = 10;
  /// Crash draws stop while this fraction of sensors is already down, so a
  /// hot plan cannot depopulate the network outright.
  double max_down_fraction = 0.5;
  /// Probability a clean node's links black out entirely in an epoch (every
  /// frame lost until the episode ends) — the correlated-loss stressor the
  /// reliability layer's deadline/budget path is tested against.
  double blackout_prob = 0.0;
  /// Blackout length in epochs.
  sim::Epoch blackout_duration = 3;
  /// Probability a clean node starts a burst-loss episode in an epoch:
  /// heavier than a degradation, lighter than a blackout.
  double burst_prob = 0.0;
  /// Extra per-frame loss during a burst episode.
  double burst_extra_loss = 0.6;
  /// Burst episode length in epochs.
  sim::Epoch burst_duration = 5;
};

/// A reproducible schedule of node churn and link dynamics.
struct FaultPlan {
  /// Events sorted by epoch. Within an epoch the order is canonical:
  /// scheduled returns first (recoveries, episode ends), then the epoch's
  /// fresh events, each sub-ordered by node id — so a node that recovers and
  /// re-crashes in the same epoch sees the recovery applied first.
  std::vector<FaultEvent> events;
  /// The seed everything above derives from.
  uint64_t seed = 0;

  /// Draws a plan for `topology` from `seed`. Deterministic: equal inputs
  /// produce equal plans. Epoch 0 is always clean so creation phases run on
  /// the full population, no event lands at or past the horizon (an event at
  /// exactly horizon-1 is the last possible; a recovery that would land past
  /// the horizon never happens and the node stays down), and crash draws
  /// stop while max_down_fraction of the sensors is already down.
  ///
  /// Sampling is event-driven: each node owns an independent RNG substream
  /// and draws geometric inter-event gaps over its eligible epochs (one
  /// uniform per event) instead of one Bernoulli trial per node per epoch;
  /// a chronological sweep merges the per-node processes and enforces the
  /// max-down cap. Cost scales with the number of events, not with
  /// horizon x nodes. The realized process is the same fault process the
  /// per-epoch sampler drew (geometric inter-arrivals over eligible epochs,
  /// crash-before-degrade tie order, identical boundary handling); the
  /// concrete realization for a given seed is pinned by golden tests.
  static FaultPlan Generate(const sim::Topology& topology, const FaultPlanOptions& options,
                            uint64_t seed);

  /// Number of events of `kind`.
  size_t CountKind(FaultEvent::Kind kind) const;

  /// One-line summary ("17 crashes, 12 recoveries, ..." ) for logs.
  std::string Summary() const;
};

}  // namespace kspot::fault
