#include "fault/fault_plan.hpp"

#include <algorithm>
#include <sstream>

#include "util/rng.hpp"

namespace kspot::fault {

const char* FaultEventKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRecover: return "recover";
    case FaultEvent::Kind::kDegradeStart: return "degrade-start";
    case FaultEvent::Kind::kDegradeEnd: return "degrade-end";
  }
  return "?";
}

FaultPlan FaultPlan::Generate(const sim::Topology& topology, const FaultPlanOptions& options,
                              uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  util::Rng rng(seed ^ 0xFA17'F1A6'0D15'EA5EULL);
  size_t n = topology.num_nodes();
  size_t sensors = topology.num_sensors();
  size_t max_down = static_cast<size_t>(options.max_down_fraction * static_cast<double>(sensors));

  std::vector<uint8_t> down(n, 0);
  std::vector<uint8_t> degraded(n, 0);
  std::vector<sim::Epoch> up_at(n, 0);
  std::vector<sim::Epoch> clean_at(n, 0);
  size_t down_count = 0;

  // The process is simulated epoch by epoch so the draws see the evolving
  // down/degraded population; epoch 0 stays clean.
  for (sim::Epoch e = 1; e < options.horizon; ++e) {
    for (sim::NodeId node = 1; node < n; ++node) {
      if (down[node] && up_at[node] == e) {
        down[node] = 0;
        --down_count;
      }
      if (degraded[node] && clean_at[node] == e) degraded[node] = 0;
    }
    for (sim::NodeId node = 1; node < n; ++node) {
      if (!down[node] && down_count < max_down && rng.NextBernoulli(options.crash_prob)) {
        plan.events.push_back({e, FaultEvent::Kind::kCrash, node, 0.0});
        down[node] = 1;
        ++down_count;
        if (options.mean_downtime > 0) {
          sim::Epoch downtime =
              1 + static_cast<sim::Epoch>(rng.NextBounded(2 * options.mean_downtime));
          sim::Epoch back = e + downtime;
          if (back < options.horizon) {
            plan.events.push_back({back, FaultEvent::Kind::kRecover, node, 0.0});
            up_at[node] = back;
          }
          // Recoveries past the horizon never happen: the node stays down.
        }
      }
      if (!down[node] && !degraded[node] && rng.NextBernoulli(options.degrade_prob)) {
        plan.events.push_back(
            {e, FaultEvent::Kind::kDegradeStart, node, options.degrade_extra_loss});
        degraded[node] = 1;
        sim::Epoch end = e + std::max<sim::Epoch>(1, options.degrade_duration);
        if (end < options.horizon) {
          plan.events.push_back({end, FaultEvent::Kind::kDegradeEnd, node, 0.0});
          clean_at[node] = end;
        }
      }
    }
  }
  // Future-dated recoveries/episode-ends were appended out of epoch order;
  // a stable sort restores it while keeping the within-epoch insertion
  // order (scheduled returns before the epoch's fresh crashes).
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

size_t FaultPlan::CountKind(FaultEvent::Kind kind) const {
  size_t count = 0;
  for (const FaultEvent& ev : events) {
    if (ev.kind == kind) ++count;
  }
  return count;
}

std::string FaultPlan::Summary() const {
  std::ostringstream oss;
  oss << CountKind(FaultEvent::Kind::kCrash) << " crashes, "
      << CountKind(FaultEvent::Kind::kRecover) << " recoveries, "
      << CountKind(FaultEvent::Kind::kDegradeStart) << " degradation episodes over "
      << events.size() << " events (seed " << seed << ")";
  return oss.str();
}

}  // namespace kspot::fault
