#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>
#include <sstream>
#include <tuple>

#include "util/rng.hpp"

namespace kspot::fault {

namespace {

/// Number of failed Bernoulli(p) trials before the next success, sampled
/// with a single uniform draw (inverse-CDF geometric skip). This is what
/// lets Generate jump straight from event to event instead of paying one
/// draw per node per epoch: the skip over the eligible-epoch axis has
/// exactly the distribution the per-trial loop realized.
uint64_t GeometricSkip(util::Rng& rng, double p) {
  double u = rng.NextDouble();  // [0, 1), so log1p(-u) is finite
  if (p >= 1.0) return 0;
  double g = std::floor(std::log1p(-u) / std::log1p(-p));
  if (!(g >= 0.0)) return 0;
  // Anything beyond ~4e18 no longer fits uint64; every caller clamps against
  // the horizon anyway.
  return g >= 4e18 ? UINT64_MAX : static_cast<uint64_t>(g);
}

/// Lazy per-node fault process. Each node owns an independent RNG stream
/// (Rng::Split keyed by node id) and two geometric clocks: the crash clock
/// ticks on every up epoch, the degradation clock on every up-and-clean
/// epoch. Gaps count eligible epochs that pass *without* the event; the
/// event fires on the (gap+1)-th eligible epoch.
struct NodeProcess {
  util::Rng rng{0};
  /// First epoch the crash clock ticks again (recovery epoch, or the epoch
  /// after a cap-suppressed candidate).
  sim::Epoch crash_from = 1;
  uint64_t crash_gap = 0;
  /// First epoch the degradation clock may tick again (recovery epoch).
  sim::Epoch degrade_from = 1;
  uint64_t degrade_gap = 0;
  /// Exclusive end of the current degradation episode (0 = none).
  sim::Epoch degraded_until = 0;
  /// Blackout clock: same freeze-while-down discipline as the degradation
  /// clock (ticks on up epochs outside its own episode).
  sim::Epoch blackout_from = 1;
  uint64_t blackout_gap = 0;
  sim::Epoch blackout_until = 0;
  /// Burst-loss clock, ditto.
  sim::Epoch burst_from = 1;
  uint64_t burst_gap = 0;
  sim::Epoch burst_until = 0;
};

/// One entry of the chronological merge sweep. pass 0 carries scheduled
/// returns (recoveries, episode ends), pass 1 fresh proposals (crashes,
/// episode starts) — mirroring the per-epoch generator, which processed the
/// epoch's returns before drawing its fresh events. The (at, pass, node,
/// kind) tuple is a strict total order, so the sweep — and therefore the
/// generated plan — is deterministic.
struct SweepItem {
  sim::Epoch at = 0;
  uint8_t pass = 0;
  sim::NodeId node = 0;
  FaultEvent::Kind kind = FaultEvent::Kind::kCrash;
};

struct SweepLater {
  bool operator()(const SweepItem& a, const SweepItem& b) const {
    return std::tie(a.at, a.pass, a.node, a.kind) > std::tie(b.at, b.pass, b.node, b.kind);
  }
};

}  // namespace

const char* FaultEventKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRecover: return "recover";
    case FaultEvent::Kind::kDegradeStart: return "degrade-start";
    case FaultEvent::Kind::kDegradeEnd: return "degrade-end";
    case FaultEvent::Kind::kBlackoutStart: return "blackout-start";
    case FaultEvent::Kind::kBlackoutEnd: return "blackout-end";
    case FaultEvent::Kind::kBurstStart: return "burst-start";
    case FaultEvent::Kind::kBurstEnd: return "burst-end";
  }
  return "?";
}

FaultPlan FaultPlan::Generate(const sim::Topology& topology, const FaultPlanOptions& options,
                              uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  size_t n = topology.num_nodes();
  size_t sensors = topology.num_sensors();
  // Epoch 0 always stays clean and no event is scheduled at or past the
  // horizon, so a horizon of 0 or 1 leaves nothing to schedule.
  if (options.horizon <= 1 || n <= 1) return plan;
  size_t max_down = static_cast<size_t>(options.max_down_fraction * static_cast<double>(sensors));
  // A zero cap means crash candidates could never commit (the per-epoch
  // generator short-circuited the draw entirely in that case).
  bool crash_on = options.crash_prob > 0.0 && max_down > 0;
  bool degrade_on = options.degrade_prob > 0.0;
  bool blackout_on = options.blackout_prob > 0.0;
  bool burst_on = options.burst_prob > 0.0;
  if (!crash_on && !degrade_on && !blackout_on && !burst_on) return plan;

  util::Rng master(seed ^ 0xFA17'F1A6'0D15'EA5EULL);
  std::vector<NodeProcess> procs(n);

  // The node's next fresh event strictly inside the horizon, if any. Ties
  // go to the earlier-considered clock — crash, then degradation, then
  // blackout, then burst (the per-epoch generator drew in that order, and a
  // crash suppresses the epoch's episode trials without consuming them).
  auto propose = [&](sim::NodeId v) -> std::optional<SweepItem> {
    NodeProcess& p = procs[v];
    uint64_t best_at = UINT64_MAX;
    FaultEvent::Kind best_kind = FaultEvent::Kind::kCrash;
    auto consider = [&](bool on, uint64_t from, uint64_t gap, FaultEvent::Kind kind) {
      if (!on || gap >= options.horizon) return;
      uint64_t at = from + gap;
      if (at < best_at) {
        best_at = at;
        best_kind = kind;
      }
    };
    consider(crash_on, p.crash_from, p.crash_gap, FaultEvent::Kind::kCrash);
    consider(degrade_on, std::max<uint64_t>(p.degrade_from, p.degraded_until), p.degrade_gap,
             FaultEvent::Kind::kDegradeStart);
    consider(blackout_on, std::max<uint64_t>(p.blackout_from, p.blackout_until), p.blackout_gap,
             FaultEvent::Kind::kBlackoutStart);
    consider(burst_on, std::max<uint64_t>(p.burst_from, p.burst_until), p.burst_gap,
             FaultEvent::Kind::kBurstStart);
    if (best_at >= options.horizon) return std::nullopt;
    return SweepItem{static_cast<sim::Epoch>(best_at), 1, v, best_kind};
  };

  std::priority_queue<SweepItem, std::vector<SweepItem>, SweepLater> queue;
  for (sim::NodeId v = 1; v < n; ++v) {
    procs[v].rng = master.Split(v);
    // Draw order is fixed and each draw is gated on its clock being on, so a
    // plan with the new episode kinds off consumes exactly the historical
    // stream (byte-identical plans).
    if (crash_on) procs[v].crash_gap = GeometricSkip(procs[v].rng, options.crash_prob);
    if (degrade_on) procs[v].degrade_gap = GeometricSkip(procs[v].rng, options.degrade_prob);
    if (blackout_on) procs[v].blackout_gap = GeometricSkip(procs[v].rng, options.blackout_prob);
    if (burst_on) procs[v].burst_gap = GeometricSkip(procs[v].rng, options.burst_prob);
    if (std::optional<SweepItem> item = propose(v)) queue.push(*item);
  }

  // Chronological merge of the per-node processes. Only the max-down cap
  // couples nodes, so the sweep's job beyond ordering is bookkeeping
  // down_count and suppressing crash candidates while the cap binds.
  size_t down_count = 0;
  while (!queue.empty()) {
    SweepItem item = queue.top();
    queue.pop();
    NodeProcess& p = procs[item.node];
    switch (item.kind) {
      case FaultEvent::Kind::kRecover: {
        plan.events.push_back({item.at, item.kind, item.node, 0.0});
        --down_count;
        // Proposals resume only now, so a crash drawn for this very epoch
        // orders after the recovery — exactly the per-epoch generator's
        // returns-then-fresh-draws order.
        if (std::optional<SweepItem> next = propose(item.node)) queue.push(*next);
        break;
      }
      case FaultEvent::Kind::kDegradeEnd:
      case FaultEvent::Kind::kBlackoutEnd:
      case FaultEvent::Kind::kBurstEnd: {
        plan.events.push_back({item.at, item.kind, item.node, 0.0});
        // Eligibility bookkeeping (*_until) was recorded when the episode
        // started; the node's outstanding proposal already honors it.
        break;
      }
      case FaultEvent::Kind::kCrash: {
        if (down_count >= max_down) {
          // Cap in force: this epoch was not crash-eligible after all. The
          // process is memoryless, so redraw the gap from the next epoch.
          p.crash_from = item.at + 1;
          p.crash_gap = GeometricSkip(p.rng, options.crash_prob);
          if (std::optional<SweepItem> next = propose(item.node)) queue.push(*next);
          break;
        }
        plan.events.push_back({item.at, item.kind, item.node, 0.0});
        ++down_count;
        if (degrade_on) {
          // The degradation clock ticked (without firing) on every up-and-
          // clean epoch strictly before the crash; the crash epoch itself
          // had no degrade trial, and none happen while down.
          uint64_t clean_from = std::max<uint64_t>(p.degrade_from, p.degraded_until);
          if (item.at > clean_from) p.degrade_gap -= item.at - clean_from;
        }
        if (blackout_on) {
          uint64_t clean_from = std::max<uint64_t>(p.blackout_from, p.blackout_until);
          if (item.at > clean_from) p.blackout_gap -= item.at - clean_from;
        }
        if (burst_on) {
          uint64_t clean_from = std::max<uint64_t>(p.burst_from, p.burst_until);
          if (item.at > clean_from) p.burst_gap -= item.at - clean_from;
        }
        if (options.mean_downtime == 0) break;  // permanent: the node is done
        auto downtime =
            static_cast<sim::Epoch>(1 + p.rng.NextBounded(2 * options.mean_downtime));
        uint64_t back = static_cast<uint64_t>(item.at) + downtime;
        // A recovery landing at or past the horizon never happens: the node
        // stays down and proposes nothing further.
        if (back >= options.horizon) break;
        p.crash_from = static_cast<sim::Epoch>(back);
        p.crash_gap = GeometricSkip(p.rng, options.crash_prob);
        p.degrade_from = static_cast<sim::Epoch>(back);
        p.blackout_from = static_cast<sim::Epoch>(back);
        p.burst_from = static_cast<sim::Epoch>(back);
        queue.push({static_cast<sim::Epoch>(back), 0, item.node, FaultEvent::Kind::kRecover});
        break;
      }
      case FaultEvent::Kind::kDegradeStart: {
        plan.events.push_back({item.at, item.kind, item.node, options.degrade_extra_loss});
        sim::Epoch end = item.at + std::max<sim::Epoch>(1, options.degrade_duration);
        p.degraded_until = end;
        p.degrade_from = end;
        p.degrade_gap = GeometricSkip(p.rng, options.degrade_prob);
        if (end < options.horizon) {
          queue.push({end, 0, item.node, FaultEvent::Kind::kDegradeEnd});
        }
        if (std::optional<SweepItem> next = propose(item.node)) queue.push(*next);
        break;
      }
      case FaultEvent::Kind::kBlackoutStart: {
        plan.events.push_back({item.at, item.kind, item.node, 1.0});
        sim::Epoch end = item.at + std::max<sim::Epoch>(1, options.blackout_duration);
        p.blackout_until = end;
        p.blackout_from = end;
        p.blackout_gap = GeometricSkip(p.rng, options.blackout_prob);
        if (end < options.horizon) {
          queue.push({end, 0, item.node, FaultEvent::Kind::kBlackoutEnd});
        }
        if (std::optional<SweepItem> next = propose(item.node)) queue.push(*next);
        break;
      }
      case FaultEvent::Kind::kBurstStart: {
        plan.events.push_back({item.at, item.kind, item.node, options.burst_extra_loss});
        sim::Epoch end = item.at + std::max<sim::Epoch>(1, options.burst_duration);
        p.burst_until = end;
        p.burst_from = end;
        p.burst_gap = GeometricSkip(p.rng, options.burst_prob);
        if (end < options.horizon) {
          queue.push({end, 0, item.node, FaultEvent::Kind::kBurstEnd});
        }
        if (std::optional<SweepItem> next = propose(item.node)) queue.push(*next);
        break;
      }
    }
  }
  // The sweep pops in (epoch, pass, node, kind) order, so the plan is sorted
  // by construction — no trailing sort.
  return plan;
}

size_t FaultPlan::CountKind(FaultEvent::Kind kind) const {
  size_t count = 0;
  for (const FaultEvent& ev : events) {
    if (ev.kind == kind) ++count;
  }
  return count;
}

std::string FaultPlan::Summary() const {
  std::ostringstream oss;
  oss << CountKind(FaultEvent::Kind::kCrash) << " crashes, "
      << CountKind(FaultEvent::Kind::kRecover) << " recoveries, "
      << CountKind(FaultEvent::Kind::kDegradeStart) << " degradation episodes";
  size_t blackouts = CountKind(FaultEvent::Kind::kBlackoutStart);
  size_t bursts = CountKind(FaultEvent::Kind::kBurstStart);
  if (blackouts > 0) oss << ", " << blackouts << " blackouts";
  if (bursts > 0) oss << ", " << bursts << " burst-loss episodes";
  oss << " over " << events.size() << " events (seed " << seed << ")";
  return oss.str();
}

}  // namespace kspot::fault
