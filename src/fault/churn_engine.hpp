#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/network.hpp"
#include "sim/routing_tree.hpp"

namespace kspot::fault {

/// What one ChurnEngine::BeginEpoch application changed.
struct ChurnReport {
  size_t crashes = 0;          ///< Scheduled crash events applied.
  size_t recoveries = 0;       ///< Scheduled recovery events applied.
  size_t battery_deaths = 0;   ///< Nodes found battery-dead since the last call.
  size_t degrade_changes = 0;  ///< Degradation episodes started or ended.
  size_t blackout_changes = 0; ///< Blackout episodes started or ended.
  size_t burst_changes = 0;    ///< Burst-loss episodes started or ended.
  size_t reattached = 0;       ///< Nodes the tree repair re-parented.
  size_t detached = 0;         ///< Up nodes left without a route after repair.
  /// True when tree membership changed: algorithms must evict state keyed on
  /// the old tree (see EpochAlgorithm::OnTopologyChanged).
  bool topology_changed = false;
  /// Exactly which nodes left the tree and which orphan-subtree roots
  /// re-attached, accumulated across this epoch's repair passes — feed it to
  /// EpochAlgorithm::OnTopologyChanged(delta) so stateful algorithms repair
  /// incrementally.
  sim::TopologyDelta delta;
};

/// Executes a FaultPlan against a live Network / RoutingTree pair: applies
/// the epoch's scheduled crashes, recoveries and degradation episodes, folds
/// in battery deaths the energy model produced since the last call, runs the
/// in-network tree repair and charges its join handshakes to the radio
/// (phase "fault.repair"). Drive it once per epoch, before the algorithm's
/// RunEpoch:
///
///   ChurnReport rep = churn.BeginEpoch(e);
///   if (rep.topology_changed) algo->OnTopologyChanged();
///   algo->RunEpoch(e);
///
/// Repair randomness is derived from the plan seed and the epoch alone, so a
/// trial is a pure function of its seed regardless of what ran before.
class ChurnEngine {
 public:
  /// `net` and `tree` must outlive the engine, and `tree` must be the tree
  /// `net` routes on. The engine mutates both.
  ChurnEngine(sim::Network* net, sim::RoutingTree* tree, FaultPlan plan);

  /// Applies everything due at (or before) `epoch`. Epochs must be
  /// non-decreasing across calls.
  ChurnReport BeginEpoch(sim::Epoch epoch);

  /// Number of epochs whose churn actually changed the tree.
  size_t repair_events() const { return repair_events_; }
  /// Join-handshake messages charged across all repairs.
  uint64_t repair_messages() const { return repair_messages_; }
  /// Nodes the repairs re-parented, cumulative.
  size_t total_reattached() const { return total_reattached_; }
  /// Up-but-unroutable nodes after the most recent repair.
  size_t detached_count() const { return last_detached_; }
  /// The plan being executed.
  const FaultPlan& plan() const { return plan_; }

 private:
  sim::Network* net_;
  sim::RoutingTree* tree_;
  FaultPlan plan_;
  /// The (immutable) topology adjacency, built once so repeated repairs skip
  /// the O(n^2) rebuild.
  std::vector<std::vector<sim::NodeId>> adjacency_;
  /// Reusable Repair scratch (heard lists, frontier, attachment marks).
  sim::RepairWorkspace repair_workspace_;
  /// A node's concurrent loss episodes by source. The network holds one
  /// compounded extra-loss value per node, so overlapping episode kinds must
  /// be tracked separately here and re-compounded on every change (an ending
  /// burst must restore a still-running degradation, not clear everything).
  struct EpisodeLoss {
    double degrade = 0.0;
    double blackout = 0.0;
    double burst = 0.0;
  };
  std::vector<EpisodeLoss> episode_loss_;
  /// Recompounds `node`'s episode losses into Network::SetNodeExtraLoss.
  void ApplyEpisodeLoss(sim::NodeId node);
  size_t next_event_ = 0;
  std::vector<uint8_t> was_alive_;
  size_t repair_events_ = 0;
  uint64_t repair_messages_ = 0;
  size_t total_reattached_ = 0;
  size_t last_detached_ = 0;
};

}  // namespace kspot::fault
