#include "net/serializer.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace kspot::net {

void Writer::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::PutBytes(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void Writer::PutString(const std::string& s) {
  if (s.size() > kMaxStringBytes) {
    // Unconditional (not assert): release builds must not emit a truncated
    // length prefix followed by the full payload — every field after it
    // would deserialize as garbage.
    std::fprintf(stderr,
                 "net::Writer::PutString: string of %zu bytes exceeds the u16 "
                 "length prefix (max %zu)\n",
                 s.size(), kMaxStringBytes);
    std::abort();
  }
  PutU16(static_cast<uint16_t>(s.size()));
  PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

bool Reader::Ensure(size_t n) {
  // Overflow-safe form: `pos_ + n > len_` wraps for n near SIZE_MAX (e.g. a
  // hostile GetBytes length) and would pass the check, reading out of bounds.
  if (!ok_ || n > len_ - pos_) {
    if (strict_) {
      std::fprintf(stderr,
                   "net::Reader: overrun reading %zu bytes at offset %zu of a "
                   "%zu-byte buffer (strict mode)\n",
                   n, pos_, len_);
      std::abort();
    }
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Reader::GetU8() {
  if (!Ensure(1)) return 0;
  return data_[pos_++];
}

uint16_t Reader::GetU16() {
  if (!Ensure(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_]) | (static_cast<uint16_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return v;
}

uint32_t Reader::GetU32() {
  if (!Ensure(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t Reader::GetU64() {
  if (!Ensure(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::string Reader::GetString() {
  uint16_t n = GetU16();
  if (!Ensure(n)) return {};
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

bool Reader::GetBytes(uint8_t* out, size_t len) {
  if (!Ensure(len)) return false;
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
  return true;
}

}  // namespace kspot::net
