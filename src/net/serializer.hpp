#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kspot::net {

/// Byte-exact little-endian message writer.
///
/// Every protocol message in the library is sized by actually serializing it
/// through this writer, so the byte counts the benchmarks report correspond
/// to real wire images rather than estimates.
class Writer {
 public:
  /// Appends an unsigned 8-bit value.
  void PutU8(uint8_t v) { buf_.push_back(v); }
  /// Appends an unsigned 16-bit value (little endian).
  void PutU16(uint16_t v);
  /// Appends an unsigned 32-bit value.
  void PutU32(uint32_t v);
  /// Appends a signed 32-bit value.
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  /// Appends an unsigned 64-bit value.
  void PutU64(uint64_t v);
  /// Appends a signed 64-bit value.
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Longest string PutString can length-prefix (u16 prefix).
  static constexpr size_t kMaxStringBytes = 0xFFFF;

  /// Appends raw bytes.
  void PutBytes(const uint8_t* data, size_t len);
  /// Appends a length-prefixed (u16) string. Strings longer than
  /// kMaxStringBytes cannot be represented on the wire; passing one is a
  /// programming error and aborts loudly (a silent uint16_t truncation here
  /// used to produce a frame whose tail no Reader could parse).
  void PutString(const std::string& s);

  /// The serialized image.
  const std::vector<uint8_t>& bytes() const { return buf_; }
  /// Current size in bytes.
  size_t size() const { return buf_.size(); }
  /// Moves the buffer out.
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Little-endian reader over a byte buffer; sets a sticky error flag on
/// overrun instead of throwing (malformed radio frames are expected input).
/// Every Get* is bounds-checked: an overrun never reads past the buffer, it
/// returns a zero value and latches !ok(). Parsers of *trusted* images (our
/// own Writer output, golden files) can opt into strict mode, where an
/// overrun aborts loudly instead — truncation there is a programming error,
/// and a zero-filled struct silently flowing downstream is how it hides.
class Reader {
 public:
  /// Creates a reader over `data[0..len)`; the buffer must outlive the reader.
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  /// Creates a reader over a vector.
  explicit Reader(const std::vector<uint8_t>& buf) : Reader(buf.data(), buf.size()) {}

  /// Strict mode: any overrun aborts (fprintf + abort) instead of latching
  /// the sticky error flag. For trusted inputs only.
  void SetStrict(bool strict) { strict_ = strict; }

  /// Reads an unsigned 8-bit value (0 on error).
  uint8_t GetU8();
  /// Reads an unsigned 16-bit value.
  uint16_t GetU16();
  /// Reads an unsigned 32-bit value.
  uint32_t GetU32();
  /// Reads a signed 32-bit value.
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  /// Reads an unsigned 64-bit value.
  uint64_t GetU64();
  /// Reads a signed 64-bit value.
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  /// Reads a length-prefixed string.
  std::string GetString();
  /// Reads `len` raw bytes into `out`; returns false on overrun.
  bool GetBytes(uint8_t* out, size_t len);

  /// True while no overrun occurred.
  bool ok() const { return ok_; }
  /// Bytes remaining.
  size_t remaining() const { return len_ - pos_; }
  /// Current read offset.
  size_t position() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
  bool strict_ = false;

  bool Ensure(size_t n);
};

}  // namespace kspot::net
