#pragma once

#include <string>

namespace kspot::data {

/// Sensing modalities of the MTS310 sensor board used in the demo
/// (Section IV-A): accelerometer, magnetometer, light, temperature,
/// acoustic (sound) — plus humidity for richer scenarios.
enum class Modality {
  kSound,
  kTemperature,
  kLight,
  kAccel,
  kMagnetometer,
  kHumidity,
};

/// Static description of a modality: bounded value domain and unit label.
/// The bounded domain is load-bearing: MINT's gamma descriptors derive their
/// upper/lower bounds for unclosed groups from it.
struct ModalityInfo {
  Modality modality;
  std::string name;   ///< e.g. "sound"
  std::string unit;   ///< e.g. "%"
  double min_value;   ///< smallest producible reading
  double max_value;   ///< largest producible reading
};

/// Returns the descriptor for `m`.
const ModalityInfo& GetModalityInfo(Modality m);

/// Parses a modality by (case-insensitive) name; returns false when unknown.
bool ParseModality(const std::string& name, Modality* out);

}  // namespace kspot::data
