#pragma once

#include <memory>
#include <vector>

#include "agg/aggregate.hpp"
#include "data/generators.hpp"

namespace kspot::data {

/// Adapter for *horizontally fragmented* historic queries (Section III-B,
/// first case): presents each node's sliding-window aggregate of an
/// underlying generator as if it were the node's instantaneous reading.
/// Running a snapshot algorithm (TAG or MINT) over this adapter implements
/// "conduct a local search and filtering in the respective history window
/// before transmitting the results upwards" — the node ships one aggregate
/// instead of W raw tuples.
///
/// With every node holding the same window length W, per-room AVG over the
/// adapter equals the paper's AVG over all buffered tuples of the room
/// (equal weights), so results stay exact against an oracle over the same
/// adapter.
class WindowAggregateGenerator : public DataGenerator {
 public:
  /// `inner` must outlive the adapter. `window` is W (>=1); epochs earlier
  /// than W-1 aggregate over however many readings exist so far.
  WindowAggregateGenerator(DataGenerator* inner, size_t num_nodes, size_t window,
                           agg::AggKind agg);

  double Value(sim::NodeId id, sim::Epoch epoch) override;
  const ModalityInfo& modality() const override { return inner_->modality(); }

  /// Window length W.
  size_t window() const { return window_; }

 private:
  DataGenerator* inner_;
  size_t window_;
  agg::AggKind agg_;
  /// Ring buffers of the last `window_` readings per node.
  std::vector<std::vector<double>> rings_;
  std::vector<size_t> filled_;
  sim::Epoch next_epoch_ = 0;
  bool primed_ = false;

  void AdvanceTo(sim::Epoch epoch);
};

}  // namespace kspot::data
