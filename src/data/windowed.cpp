#include "data/windowed.hpp"

#include "util/fixed_point.hpp"

namespace kspot::data {

WindowAggregateGenerator::WindowAggregateGenerator(DataGenerator* inner, size_t num_nodes,
                                                   size_t window, agg::AggKind agg)
    : inner_(inner),
      window_(window == 0 ? 1 : window),
      agg_(agg),
      rings_(num_nodes),
      filled_(num_nodes, 0) {
  for (auto& ring : rings_) ring.assign(window_, 0.0);
}

void WindowAggregateGenerator::AdvanceTo(sim::Epoch epoch) {
  if (!primed_) {
    next_epoch_ = 0;
    primed_ = true;
  }
  while (next_epoch_ <= epoch) {
    for (size_t id = 1; id < rings_.size(); ++id) {
      double v = inner_->Value(static_cast<sim::NodeId>(id), next_epoch_);
      rings_[id][next_epoch_ % window_] = v;
      if (filled_[id] < window_) ++filled_[id];
    }
    ++next_epoch_;
  }
}

double WindowAggregateGenerator::Value(sim::NodeId id, sim::Epoch epoch) {
  AdvanceTo(epoch);
  if (id >= rings_.size() || filled_[id] == 0) return 0.0;
  agg::PartialAgg partial;
  for (size_t i = 0; i < filled_[id]; ++i) {
    partial.Merge(agg::PartialAgg::FromValue(rings_[id][i]));
  }
  // Quantize so downstream fixed-point transport is lossless.
  return util::fixed_point::Quantize(partial.Final(agg_));
}

}  // namespace kspot::data
