#include "data/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/fixed_point.hpp"

namespace kspot::data {

namespace {

double ClampToDomain(double v, const ModalityInfo& info) {
  return std::clamp(v, info.min_value, info.max_value);
}

double QuantizeToDomain(double v, const ModalityInfo& info) {
  return util::fixed_point::Quantize(ClampToDomain(v, info));
}

double QuantizeToStep(double v, double step, const ModalityInfo& info) {
  if (step > 0.0) v = std::round(v / step) * step;
  return QuantizeToDomain(v, info);
}

}  // namespace

// ---------------------------------------------------------------- Constant

ConstantGenerator::ConstantGenerator(std::vector<double> values, Modality modality)
    : values_(std::move(values)), info_(GetModalityInfo(modality)) {
  for (double& v : values_) v = QuantizeToDomain(v, info_);
}

double ConstantGenerator::Value(sim::NodeId id, sim::Epoch /*epoch*/) {
  if (id >= values_.size()) return 0.0;
  return values_[id];
}

// ----------------------------------------------------------------- Uniform

UniformGenerator::UniformGenerator(size_t num_nodes, Modality modality, util::Rng rng)
    : num_nodes_(num_nodes), info_(GetModalityInfo(modality)), rng_(rng) {}

void UniformGenerator::FillEpoch(sim::Epoch epoch) {
  if (primed_ && epoch == cached_epoch_) return;
  cache_.assign(num_nodes_, 0.0);
  for (size_t i = 1; i < num_nodes_; ++i) {
    cache_[i] = QuantizeToDomain(rng_.NextDouble(info_.min_value, info_.max_value), info_);
  }
  cached_epoch_ = epoch;
  primed_ = true;
}

double UniformGenerator::Value(sim::NodeId id, sim::Epoch epoch) {
  FillEpoch(epoch);
  return id < cache_.size() ? cache_[id] : 0.0;
}

// ---------------------------------------------------------------- Gaussian

GaussianGenerator::GaussianGenerator(size_t num_nodes, Modality modality, double stddev,
                                     util::Rng rng)
    : info_(GetModalityInfo(modality)), stddev_(stddev), rng_(rng) {
  means_.assign(num_nodes, 0.0);
  for (size_t i = 1; i < num_nodes; ++i) {
    means_[i] = rng_.NextDouble(info_.min_value, info_.max_value);
  }
}

void GaussianGenerator::FillEpoch(sim::Epoch epoch) {
  if (primed_ && epoch == cached_epoch_) return;
  cache_.assign(means_.size(), 0.0);
  for (size_t i = 1; i < means_.size(); ++i) {
    cache_[i] = QuantizeToDomain(means_[i] + rng_.NextGaussian(0.0, stddev_), info_);
  }
  cached_epoch_ = epoch;
  primed_ = true;
}

double GaussianGenerator::Value(sim::NodeId id, sim::Epoch epoch) {
  FillEpoch(epoch);
  return id < cache_.size() ? cache_[id] : 0.0;
}

// ------------------------------------------------------------- Random walk

RandomWalkGenerator::RandomWalkGenerator(size_t num_nodes, Modality modality, double step_sigma,
                                         util::Rng rng, double quantize_step)
    : info_(GetModalityInfo(modality)),
      sigma_(step_sigma),
      rng_(rng),
      quantize_step_(quantize_step) {
  state_.assign(num_nodes, 0.0);
  observed_.assign(num_nodes, 0.0);
  for (size_t i = 1; i < num_nodes; ++i) {
    // The latent walk stays continuous; only the observation is snapped to
    // the ADC grid, so coarse quantization does not bias the dynamics.
    state_[i] = ClampToDomain(rng_.NextDouble(info_.min_value, info_.max_value), info_);
    observed_[i] = QuantizeToStep(state_[i], quantize_step_, info_);
  }
}

void RandomWalkGenerator::AdvanceTo(sim::Epoch epoch) {
  if (!primed_) {
    cached_epoch_ = 0;
    primed_ = true;
  }
  while (cached_epoch_ < epoch) {
    for (size_t i = 1; i < state_.size(); ++i) {
      state_[i] = ClampToDomain(state_[i] + rng_.NextGaussian(0.0, sigma_), info_);
      observed_[i] = QuantizeToStep(state_[i], quantize_step_, info_);
    }
    ++cached_epoch_;
  }
}

double RandomWalkGenerator::Value(sim::NodeId id, sim::Epoch epoch) {
  AdvanceTo(epoch);
  return id < observed_.size() ? observed_[id] : 0.0;
}

// --------------------------------------------------------- Room-correlated

RoomCorrelatedGenerator::RoomCorrelatedGenerator(std::vector<sim::GroupId> room_of,
                                                 Modality modality, double room_sigma,
                                                 double noise_sigma, util::Rng rng,
                                                 double global_sigma, double quantize_step)
    : room_of_(std::move(room_of)),
      info_(GetModalityInfo(modality)),
      room_sigma_(room_sigma),
      noise_sigma_(noise_sigma),
      rng_(rng),
      global_sigma_(global_sigma),
      quantize_step_(quantize_step) {
  global_level_ = global_sigma_ > 0.0 ? rng_.NextGaussian(0.0, global_sigma_ * 4.0) : 0.0;
  for (size_t i = 1; i < room_of_.size(); ++i) {
    sim::GroupId room = room_of_[i];
    if (!room_level_.count(room)) {
      room_level_[room] = rng_.NextDouble(info_.min_value, info_.max_value);
    }
  }
}

void RoomCorrelatedGenerator::AdvanceTo(sim::Epoch epoch) {
  auto refill = [&]() {
    cache_.assign(room_of_.size(), 0.0);
    for (size_t i = 1; i < room_of_.size(); ++i) {
      double level = room_level_[room_of_[i]] + global_level_;
      cache_[i] =
          QuantizeToStep(level + rng_.NextGaussian(0.0, noise_sigma_), quantize_step_, info_);
    }
  };
  if (!primed_) {
    cached_epoch_ = 0;
    refill();
    primed_ = true;
  }
  while (cached_epoch_ < epoch) {
    for (auto& [room, level] : room_level_) {
      level = ClampToDomain(level + rng_.NextGaussian(0.0, room_sigma_), info_);
    }
    if (global_sigma_ > 0.0) {
      // The global walk is mean-reverting so readings stay inside the domain.
      global_level_ = global_level_ * 0.98 + rng_.NextGaussian(0.0, global_sigma_);
    }
    ++cached_epoch_;
    refill();
  }
}

double RoomCorrelatedGenerator::Value(sim::NodeId id, sim::Epoch epoch) {
  AdvanceTo(epoch);
  return id < cache_.size() ? cache_[id] : 0.0;
}

// ------------------------------------------------------------------ Spikes

SpikeGenerator::SpikeGenerator(size_t num_nodes, Modality modality, double baseline,
                               double spike_prob, util::Rng rng)
    : num_nodes_(num_nodes),
      info_(GetModalityInfo(modality)),
      baseline_(baseline),
      spike_prob_(spike_prob),
      rng_(rng) {}

void SpikeGenerator::FillEpoch(sim::Epoch epoch) {
  if (primed_ && epoch == cached_epoch_) return;
  cache_.assign(num_nodes_, 0.0);
  double spike_floor = info_.min_value + 0.9 * (info_.max_value - info_.min_value);
  for (size_t i = 1; i < num_nodes_; ++i) {
    double v;
    if (rng_.NextBernoulli(spike_prob_)) {
      v = rng_.NextDouble(spike_floor, info_.max_value);
    } else {
      v = baseline_ + rng_.NextGaussian(0.0, 0.02 * (info_.max_value - info_.min_value));
    }
    cache_[i] = QuantizeToDomain(v, info_);
  }
  cached_epoch_ = epoch;
  primed_ = true;
}

double SpikeGenerator::Value(sim::NodeId id, sim::Epoch epoch) {
  FillEpoch(epoch);
  return id < cache_.size() ? cache_[id] : 0.0;
}

// ------------------------------------------------------------------- Trace

TraceGenerator::TraceGenerator(std::vector<std::vector<double>> matrix, Modality modality)
    : matrix_(std::move(matrix)), info_(GetModalityInfo(modality)) {
  for (auto& row : matrix_) {
    for (double& v : row) v = QuantizeToDomain(v, info_);
  }
}

double TraceGenerator::Value(sim::NodeId id, sim::Epoch epoch) {
  if (matrix_.empty()) return 0.0;
  const auto& row = matrix_[epoch % matrix_.size()];
  return id < row.size() ? row[id] : 0.0;
}

}  // namespace kspot::data
