#include "data/modality.hpp"

#include <array>

#include "util/string_util.hpp"

namespace kspot::data {

namespace {

const std::array<ModalityInfo, 6> kModalities = {{
    {Modality::kSound, "sound", "%", 0.0, 100.0},
    {Modality::kTemperature, "temperature", "C", -20.0, 60.0},
    {Modality::kLight, "light", "lux", 0.0, 1000.0},
    {Modality::kAccel, "accel", "g", -2.0, 2.0},
    {Modality::kMagnetometer, "magnetometer", "mgauss", -500.0, 500.0},
    {Modality::kHumidity, "humidity", "%", 0.0, 100.0},
}};

}  // namespace

const ModalityInfo& GetModalityInfo(Modality m) {
  for (const auto& info : kModalities) {
    if (info.modality == m) return info;
  }
  return kModalities[0];
}

bool ParseModality(const std::string& name, Modality* out) {
  for (const auto& info : kModalities) {
    if (util::EqualsIgnoreCase(info.name, name)) {
      *out = info.modality;
      return true;
    }
  }
  return false;
}

}  // namespace kspot::data
