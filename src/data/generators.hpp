#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "data/modality.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace kspot::data {

/// Produces the reading of every sensing node at every epoch.
///
/// Contract: `Value(id, epoch)` is deterministic — repeated calls with the
/// same arguments return the same reading — and epochs must be queried in
/// non-decreasing order (stateful generators advance their processes).
/// Readings are quantized to the wire fixed-point grid at the source so that
/// in-network aggregation is bit-exact with centralized computation.
class DataGenerator {
 public:
  virtual ~DataGenerator() = default;

  /// Reading of node `id` at `epoch`. Node 0 (the sink) reads 0.
  virtual double Value(sim::NodeId id, sim::Epoch epoch) = 0;

  /// Advances the generator's stochastic process to `epoch` so that
  /// subsequent `Value(_, epoch)` calls are pure cache reads. Stateful
  /// generators mutate on the first Value() of a new epoch; a sharded wave
  /// calls Value() concurrently, so algorithms prime the epoch serially
  /// (before launching lanes) through this hook. Calling it is always safe —
  /// it performs exactly the mutation the first Value() would have, so the
  /// serial draw order is unchanged — and the default is a no-op for
  /// stateless generators.
  virtual void PrepareEpoch(sim::Epoch epoch) { (void)epoch; }

  /// The modality generated (defines the bounded domain).
  virtual const ModalityInfo& modality() const = 0;
};

/// Fixed per-node values (e.g. the Figure-1 scenario): epoch-invariant.
class ConstantGenerator : public DataGenerator {
 public:
  /// `values[id]` is node id's reading forever.
  ConstantGenerator(std::vector<double> values, Modality modality = Modality::kSound);

  double Value(sim::NodeId id, sim::Epoch epoch) override;
  const ModalityInfo& modality() const override { return info_; }

 private:
  std::vector<double> values_;
  ModalityInfo info_;
};

/// Independent uniform readings over the modality domain, fresh each epoch.
class UniformGenerator : public DataGenerator {
 public:
  UniformGenerator(size_t num_nodes, Modality modality, util::Rng rng);

  double Value(sim::NodeId id, sim::Epoch epoch) override;
  void PrepareEpoch(sim::Epoch epoch) override { FillEpoch(epoch); }
  const ModalityInfo& modality() const override { return info_; }

 private:
  size_t num_nodes_;
  ModalityInfo info_;
  util::Rng rng_;
  sim::Epoch cached_epoch_ = 0;
  std::vector<double> cache_;
  bool primed_ = false;

  void FillEpoch(sim::Epoch epoch);
};

/// Per-node Gaussian around a per-node mean (stable ranking with noise).
class GaussianGenerator : public DataGenerator {
 public:
  /// Means drawn uniformly from the domain; readings = mean + N(0, stddev),
  /// clamped to the domain.
  GaussianGenerator(size_t num_nodes, Modality modality, double stddev, util::Rng rng);

  double Value(sim::NodeId id, sim::Epoch epoch) override;
  void PrepareEpoch(sim::Epoch epoch) override { FillEpoch(epoch); }
  const ModalityInfo& modality() const override { return info_; }

 private:
  ModalityInfo info_;
  double stddev_;
  util::Rng rng_;
  std::vector<double> means_;
  sim::Epoch cached_epoch_ = 0;
  std::vector<double> cache_;
  bool primed_ = false;

  void FillEpoch(sim::Epoch epoch);
};

/// Bounded random walk per node: `x(t+1) = clamp(x(t) + N(0, sigma))`.
/// The volatility knob for the FILA-vs-MINT monitoring experiments.
/// `quantize_step > 0` additionally rounds readings to that granularity —
/// the coarse ADC grid of real sensor boards (TinyDB readings are integers),
/// which makes temporally stable signals produce genuinely unchanged values.
class RandomWalkGenerator : public DataGenerator {
 public:
  RandomWalkGenerator(size_t num_nodes, Modality modality, double step_sigma, util::Rng rng,
                      double quantize_step = 0.0);

  double Value(sim::NodeId id, sim::Epoch epoch) override;
  void PrepareEpoch(sim::Epoch epoch) override { AdvanceTo(epoch); }
  const ModalityInfo& modality() const override { return info_; }

 private:
  ModalityInfo info_;
  double sigma_;
  util::Rng rng_;
  double quantize_step_;
  sim::Epoch cached_epoch_ = 0;
  std::vector<double> state_;
  std::vector<double> observed_;
  bool primed_ = false;

  void AdvanceTo(sim::Epoch epoch);
};

/// Room-correlated readings: a building-wide activity level (sessions
/// starting and ending move every room together) plus each room's own
/// bounded random walk, observed with i.i.d. per-sensor noise — the
/// "conference rooms with discussions" signal of the demo scenario. The
/// global component makes hot *time instances* correlate across nodes,
/// which is the regime historic top-k queries (TJA) target.
class RoomCorrelatedGenerator : public DataGenerator {
 public:
  /// `room_of[id]` maps nodes to rooms. `room_sigma` drives how fast room
  /// activity changes; `noise_sigma` is per-sensor observation noise;
  /// `global_sigma` the building-wide walk; `quantize_step > 0` rounds
  /// readings to a coarse ADC grid.
  RoomCorrelatedGenerator(std::vector<sim::GroupId> room_of, Modality modality,
                          double room_sigma, double noise_sigma, util::Rng rng,
                          double global_sigma = 0.0, double quantize_step = 0.0);

  double Value(sim::NodeId id, sim::Epoch epoch) override;
  void PrepareEpoch(sim::Epoch epoch) override { AdvanceTo(epoch); }
  const ModalityInfo& modality() const override { return info_; }

 private:
  std::vector<sim::GroupId> room_of_;
  ModalityInfo info_;
  double room_sigma_;
  double noise_sigma_;
  util::Rng rng_;
  double global_sigma_;
  double quantize_step_;
  double global_level_ = 0.0;
  std::unordered_map<sim::GroupId, double> room_level_;
  sim::Epoch cached_epoch_ = 0;
  std::vector<double> cache_;
  bool primed_ = false;

  void AdvanceTo(sim::Epoch epoch);
};

/// Mostly-flat baseline with occasional spikes (events): each epoch a node
/// spikes with probability `spike_prob`, jumping near the domain maximum.
/// Exercises top-k churn.
class SpikeGenerator : public DataGenerator {
 public:
  SpikeGenerator(size_t num_nodes, Modality modality, double baseline, double spike_prob,
                 util::Rng rng);

  double Value(sim::NodeId id, sim::Epoch epoch) override;
  void PrepareEpoch(sim::Epoch epoch) override { FillEpoch(epoch); }
  const ModalityInfo& modality() const override { return info_; }

 private:
  size_t num_nodes_;
  ModalityInfo info_;
  double baseline_;
  double spike_prob_;
  util::Rng rng_;
  sim::Epoch cached_epoch_ = 0;
  std::vector<double> cache_;
  bool primed_ = false;

  void FillEpoch(sim::Epoch epoch);
};

/// Replays a recorded trace: `matrix[epoch][id]`; epochs beyond the trace
/// wrap around (cyclic replay).
class TraceGenerator : public DataGenerator {
 public:
  TraceGenerator(std::vector<std::vector<double>> matrix, Modality modality);

  double Value(sim::NodeId id, sim::Epoch epoch) override;
  const ModalityInfo& modality() const override { return info_; }

  /// Number of recorded epochs.
  size_t trace_length() const { return matrix_.size(); }

 private:
  std::vector<std::vector<double>> matrix_;
  ModalityInfo info_;
};

}  // namespace kspot::data
