#pragma once

#include <string>
#include <vector>

#include "data/generators.hpp"
#include "util/status.hpp"

namespace kspot::data {

/// CSV trace I/O: record simulated runs and replay real-world datasets
/// (Intel-lab-style per-epoch readings) through TraceGenerator.
///
/// Format: one row per epoch; column j holds node j's reading (column 0, the
/// sink, is conventionally 0). A '#' line is a comment. Example:
///
///   # epoch rows, node columns
///   0, 40.0, 74.0, 75.0
///   0, 41.0, 73.5, 75.0
namespace trace_io {

/// Parses CSV text into an epochs x nodes matrix. Rows may differ in width;
/// shorter rows are zero-padded to the widest.
util::StatusOr<std::vector<std::vector<double>>> ParseCsv(const std::string& text);

/// Loads a trace file.
util::StatusOr<std::vector<std::vector<double>>> LoadCsv(const std::string& path);

/// Serializes a matrix to CSV text.
std::string ToCsv(const std::vector<std::vector<double>>& matrix);

/// Saves a matrix to a file; false on I/O failure.
bool SaveCsv(const std::string& path, const std::vector<std::vector<double>>& matrix);

/// Records `epochs` epochs of `gen` (nodes 0..num_nodes-1) into a matrix —
/// the bridge from synthetic generators to shareable trace files.
std::vector<std::vector<double>> Record(DataGenerator& gen, size_t num_nodes, size_t epochs);

}  // namespace trace_io

}  // namespace kspot::data
