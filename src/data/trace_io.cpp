#include "data/trace_io.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.hpp"

namespace kspot::data::trace_io {

util::StatusOr<std::vector<std::vector<double>>> ParseCsv(const std::string& text) {
  std::vector<std::vector<double>> matrix;
  std::istringstream iss(text);
  std::string line;
  size_t lineno = 0;
  size_t width = 0;
  while (std::getline(iss, line)) {
    ++lineno;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<double> row;
    for (const std::string& cell : util::Split(trimmed, ',')) {
      if (cell.empty()) {
        row.push_back(0.0);
        continue;
      }
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      bool consumed_nothing = end == cell.c_str();
      bool trailing_junk = !util::Trim(std::string_view(end)).empty();
      if (consumed_nothing || trailing_junk) {
        return util::Status::Error("trace line " + std::to_string(lineno) + ": bad number '" +
                                   cell + "'");
      }
      row.push_back(v);
    }
    width = std::max(width, row.size());
    matrix.push_back(std::move(row));
  }
  if (matrix.empty()) return util::Status::Error("trace has no data rows");
  for (auto& row : matrix) row.resize(width, 0.0);
  return matrix;
}

util::StatusOr<std::vector<std::vector<double>>> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::Error("cannot open trace file '" + path + "'");
  std::ostringstream oss;
  oss << in.rdbuf();
  return ParseCsv(oss.str());
}

std::string ToCsv(const std::vector<std::vector<double>>& matrix) {
  std::ostringstream oss;
  oss << "# KSpot trace: rows = epochs, columns = nodes (column 0 = sink)\n";
  for (const auto& row : matrix) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) oss << ',';
      oss << util::FormatDouble(row[i], 6);
    }
    oss << '\n';
  }
  return oss.str();
}

bool SaveCsv(const std::string& path, const std::vector<std::vector<double>>& matrix) {
  std::ofstream out(path);
  if (!out) return false;
  out << ToCsv(matrix);
  return static_cast<bool>(out);
}

std::vector<std::vector<double>> Record(DataGenerator& gen, size_t num_nodes, size_t epochs) {
  std::vector<std::vector<double>> matrix(epochs, std::vector<double>(num_nodes, 0.0));
  for (size_t e = 0; e < epochs; ++e) {
    for (size_t id = 1; id < num_nodes; ++id) {
      matrix[e][id] = gen.Value(static_cast<sim::NodeId>(id), static_cast<sim::Epoch>(e));
    }
  }
  return matrix;
}

}  // namespace kspot::data::trace_io
