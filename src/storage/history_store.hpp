#pragma once

#include <memory>
#include <vector>

#include "core/history_source.hpp"
#include "sim/types.hpp"
#include "storage/flash_sim.hpp"
#include "storage/microhash.hpp"
#include "storage/sliding_window.hpp"

namespace kspot::storage {

/// Per-node local storage for historic queries: a sliding window of the most
/// recent readings in SRAM, with evicted readings archived to simulated
/// flash through a MicroHash index (the MICA2-class configuration the paper
/// cites via reference [10]).
class HistoryStore {
 public:
  /// `window` readings stay in SRAM; older readings go to flash when
  /// `archive_to_flash` is set.
  HistoryStore(size_t window, bool archive_to_flash, double domain_min, double domain_max);

  /// Records the reading of one epoch.
  void Append(sim::Epoch epoch, double value);

  /// The buffered window values, oldest first (size <= window capacity).
  std::vector<double> WindowValues() const { return window_.Snapshot(); }

  /// Number of readings currently in the SRAM window.
  size_t window_size() const { return window_.size(); }

  /// The k highest archived readings (flash scan via the MicroHash index);
  /// empty when flash archiving is disabled.
  std::vector<FlashRecord> ArchivedTopK(size_t k);

  /// Flash energy spent so far (0 when archiving is disabled).
  double flash_energy_j() const { return flash_ ? flash_->energy_j() : 0.0; }
  /// Flash page reads so far.
  uint64_t flash_reads() const { return flash_ ? flash_->reads() : 0; }
  /// Flash page writes so far.
  uint64_t flash_writes() const { return flash_ ? flash_->writes() : 0; }

 private:
  SlidingWindow<double> window_;
  std::unique_ptr<FlashSim> flash_;
  std::unique_ptr<MicroHashIndex> index_;
  sim::Epoch next_epoch_ = 0;
};

/// Adapts a fleet of per-node HistoryStores to the core::HistorySource
/// interface consumed by TJA/TPUT/CJA, so the historic algorithms run over
/// genuinely stored windows in the examples and integration tests.
class StoreHistorySource : public kspot::core::HistorySource {
 public:
  /// `stores[id]` is node id's store (index 0 unused). All stores must hold
  /// the same number of buffered readings when the query runs.
  explicit StoreHistorySource(std::vector<HistoryStore>* stores);

  std::vector<double> Window(sim::NodeId id) const override;
  size_t window_size() const override;
  size_t num_nodes() const override { return stores_->size(); }

 private:
  std::vector<HistoryStore>* stores_;
};

}  // namespace kspot::storage
