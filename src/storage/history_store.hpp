#pragma once

#include <memory>
#include <vector>

#include "core/history_source.hpp"
#include "sim/types.hpp"
#include "storage/flash_sim.hpp"
#include "storage/microhash.hpp"
#include "storage/sliding_window.hpp"

namespace kspot::storage {

/// What one Append changed in the window: exactly one reading entered, and —
/// once the window is full — exactly one was evicted. Incremental historic
/// operators consume this instead of re-reading the whole window.
struct WindowDelta {
  /// Epoch of the reading that entered the window.
  sim::Epoch epoch = 0;
  /// The reading that entered.
  double added = 0.0;
  /// True when the append pushed the oldest reading out.
  bool evicted = false;
  /// Epoch of the evicted reading (valid when `evicted`).
  sim::Epoch evicted_epoch = 0;
  /// The evicted reading's value (valid when `evicted`).
  double evicted_value = 0.0;
};

/// Per-node local storage for historic queries: a sliding window of the most
/// recent readings in SRAM, with evicted readings archived to simulated
/// flash through a MicroHash index (the MICA2-class configuration the paper
/// cites via reference [10]).
class HistoryStore {
 public:
  /// `window` readings stay in SRAM; older readings go to flash when
  /// `archive_to_flash` is set.
  HistoryStore(size_t window, bool archive_to_flash, double domain_min, double domain_max);

  /// Records the reading of one epoch and reports the resulting window
  /// delta. Epochs must be monotonically increasing (gaps are fine;
  /// re-appending a past epoch aborts — the window would silently corrupt).
  WindowDelta Append(sim::Epoch epoch, double value);

  /// The buffered window, oldest first, as a zero-copy view (invalidated by
  /// the next Append).
  core::WindowSpan Window() const {
    return core::WindowSpan(window_.FirstSegment(), window_.SecondSegment());
  }

  /// Epoch of the reading at window position `i` (0 = oldest).
  sim::Epoch EpochAt(size_t i) const { return epochs_.At(i); }

  /// Number of readings currently in the SRAM window.
  size_t window_size() const { return window_.size(); }

  /// The k highest archived readings (flash scan via the MicroHash index);
  /// empty when flash archiving is disabled.
  std::vector<FlashRecord> ArchivedTopK(size_t k);

  /// Cumulative flash I/O (all-zero when archiving is disabled).
  IoCounters io() const { return flash_ ? flash_->io() : IoCounters{}; }

  /// Flash energy spent so far (0 when archiving is disabled).
  double flash_energy_j() const { return flash_ ? flash_->energy_j() : 0.0; }
  /// Flash page reads so far.
  uint64_t flash_reads() const { return flash_ ? flash_->reads() : 0; }
  /// Flash page writes so far.
  uint64_t flash_writes() const { return flash_ ? flash_->writes() : 0; }

 private:
  SlidingWindow<double> window_;
  /// Epoch of each buffered reading, in lockstep with `window_` — the evicted
  /// reading's epoch is exact even when appends skip epochs.
  SlidingWindow<sim::Epoch> epochs_;
  std::unique_ptr<FlashSim> flash_;
  std::unique_ptr<MicroHashIndex> index_;
  sim::Epoch next_epoch_ = 0;
};

/// Adapts a fleet of per-node HistoryStores to the core::HistorySource
/// interface consumed by TJA/TPUT/CJA, so the historic algorithms run over
/// genuinely stored windows in the examples and integration tests.
class StoreHistorySource : public kspot::core::HistorySource {
 public:
  /// `stores[id]` is node id's store (index 0 unused). All stores must hold
  /// the same number of buffered readings when the query runs.
  explicit StoreHistorySource(std::vector<HistoryStore>* stores);

  core::WindowSpan Window(sim::NodeId id) const override;
  size_t window_size() const override;
  size_t num_nodes() const override { return stores_->size(); }

 private:
  std::vector<HistoryStore>* stores_;
};

}  // namespace kspot::storage
