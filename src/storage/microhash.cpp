#include "storage/microhash.hpp"

#include <algorithm>

#include "util/fixed_point.hpp"

namespace kspot::storage {

namespace {

/// On-flash record layout: epoch u32 + value i32.
constexpr size_t kRecordBytes = 8;

}  // namespace

MicroHashIndex::MicroHashIndex(FlashSim* flash, double domain_min, double domain_max,
                               size_t num_buckets)
    : flash_(flash),
      domain_min_(domain_min),
      domain_max_(domain_max),
      chains_(num_buckets == 0 ? 1 : num_buckets),
      records_per_page_(flash->model().page_size_bytes / kRecordBytes) {}

size_t MicroHashIndex::BucketOf(double value) const {
  if (domain_max_ <= domain_min_) return 0;
  double frac = (value - domain_min_) / (domain_max_ - domain_min_);
  auto idx = static_cast<long>(frac * static_cast<double>(chains_.size()));
  if (idx < 0) idx = 0;
  if (idx >= static_cast<long>(chains_.size())) idx = static_cast<long>(chains_.size()) - 1;
  return static_cast<size_t>(idx);
}

std::vector<uint8_t> MicroHashIndex::EncodePage(const std::vector<FlashRecord>& records) {
  std::vector<uint8_t> out;
  out.reserve(records.size() * kRecordBytes);
  for (const FlashRecord& r : records) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(r.epoch >> (8 * i)));
    auto uv = static_cast<uint32_t>(r.value_fx);
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(uv >> (8 * i)));
  }
  return out;
}

std::vector<FlashRecord> MicroHashIndex::DecodePage(const std::vector<uint8_t>& bytes) {
  std::vector<FlashRecord> out;
  for (size_t off = 0; off + kRecordBytes <= bytes.size(); off += kRecordBytes) {
    FlashRecord r;
    r.epoch = 0;
    uint32_t uv = 0;
    for (int i = 0; i < 4; ++i) r.epoch |= static_cast<uint32_t>(bytes[off + i]) << (8 * i);
    for (int i = 0; i < 4; ++i) uv |= static_cast<uint32_t>(bytes[off + 4 + i]) << (8 * i);
    r.value_fx = static_cast<int32_t>(uv);
    out.push_back(r);
  }
  return out;
}

bool MicroHashIndex::FlushChain(Chain& chain) {
  size_t page = flash_->AllocatePage();
  if (page == static_cast<size_t>(-1)) return false;
  if (!flash_->WritePage(page, EncodePage(chain.open_page))) return false;
  chain.pages.push_back(page);
  chain.open_page.clear();
  return true;
}

bool MicroHashIndex::Insert(sim::Epoch epoch, double value) {
  Chain& chain = chains_[BucketOf(value)];
  chain.open_page.push_back(FlashRecord{epoch, util::fixed_point::Encode(value)});
  if (chain.open_page.size() >= records_per_page_) return FlushChain(chain);
  return true;
}

std::vector<FlashRecord> MicroHashIndex::ReadBucket(size_t bucket) {
  std::vector<FlashRecord> out;
  if (bucket >= chains_.size()) return out;
  const Chain& chain = chains_[bucket];
  for (size_t page : chain.pages) {
    auto records = DecodePage(flash_->ReadPage(page));
    out.insert(out.end(), records.begin(), records.end());
  }
  out.insert(out.end(), chain.open_page.begin(), chain.open_page.end());
  return out;
}

std::vector<FlashRecord> MicroHashIndex::TopK(size_t k) {
  std::vector<FlashRecord> collected;
  // Scan buckets from the highest value range downwards; stop as soon as the
  // buckets already read must contain the top-k (records in lower buckets
  // are strictly smaller than everything in higher ones).
  for (size_t b = chains_.size(); b-- > 0;) {
    auto records = ReadBucket(b);
    collected.insert(collected.end(), records.begin(), records.end());
    if (collected.size() >= k) break;
  }
  std::sort(collected.begin(), collected.end(), [](const FlashRecord& a, const FlashRecord& b) {
    if (a.value_fx != b.value_fx) return a.value_fx > b.value_fx;
    return a.epoch < b.epoch;
  });
  if (collected.size() > k) collected.resize(k);
  return collected;
}

}  // namespace kspot::storage
