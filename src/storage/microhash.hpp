#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "storage/flash_sim.hpp"

namespace kspot::storage {

/// One archived reading: the (epoch, value) tuple MicroHash stores on flash.
struct FlashRecord {
  sim::Epoch epoch = 0;
  int32_t value_fx = 0;  ///< Fixed-point reading.
};

/// MicroHash-style value index over simulated flash (Zeinalipour-Yazti et
/// al., USENIX FAST'05 — reference [10] of the paper, the structure KSpot
/// assumes for buffering historic readings on flash-based motes).
///
/// The value domain is split into a directory of equi-width buckets; each
/// bucket owns a chain of flash pages to which records are appended in
/// arrival order. A descending-value top-k scan then only touches the pages
/// of the highest buckets instead of the whole archive — the access-method
/// asymmetry that makes local historic filtering cheap.
class MicroHashIndex {
 public:
  /// `flash` must outlive the index. Values outside [domain_min, domain_max]
  /// are clamped into the edge buckets.
  MicroHashIndex(FlashSim* flash, double domain_min, double domain_max, size_t num_buckets);

  /// Appends one record; returns false when the flash is full.
  bool Insert(sim::Epoch epoch, double value);

  /// Records with the `k` highest values (ties broken by older epoch first),
  /// reading as few bucket chains as possible, highest bucket first.
  std::vector<FlashRecord> TopK(size_t k);

  /// All records in `bucket`'s chain (reads every page of the chain).
  std::vector<FlashRecord> ReadBucket(size_t bucket);

  /// Number of directory buckets.
  size_t num_buckets() const { return chains_.size(); }
  /// Total records inserted.
  uint64_t record_count() const { return record_count_; }
  /// Bucket index a value maps to.
  size_t BucketOf(double value) const;

 private:
  /// In-memory tail of a bucket chain: page ids plus the open page buffer.
  struct Chain {
    std::vector<size_t> pages;           ///< Full (flushed) pages.
    std::vector<FlashRecord> open_page;  ///< Records not yet flushed.
  };

  FlashSim* flash_;
  double domain_min_;
  double domain_max_;
  std::vector<Chain> chains_;
  uint64_t record_count_ = 0;
  size_t records_per_page_;

  bool FlushChain(Chain& chain);
  static std::vector<uint8_t> EncodePage(const std::vector<FlashRecord>& records);
  static std::vector<FlashRecord> DecodePage(const std::vector<uint8_t>& bytes);
};

}  // namespace kspot::storage
