#include "storage/history_store.hpp"

#include <cstdio>
#include <cstdlib>

namespace kspot::storage {

HistoryStore::HistoryStore(size_t window, bool archive_to_flash, double domain_min,
                           double domain_max)
    : window_(window), epochs_(window) {
  if (archive_to_flash) {
    flash_ = std::make_unique<FlashSim>();
    index_ = std::make_unique<MicroHashIndex>(flash_.get(), domain_min, domain_max,
                                              /*num_buckets=*/16);
  }
}

WindowDelta HistoryStore::Append(sim::Epoch epoch, double value) {
  if (epoch < next_epoch_) {
    std::fprintf(stderr, "HistoryStore::Append: epoch %llu out of order (expected >= %llu)\n",
                 static_cast<unsigned long long>(epoch),
                 static_cast<unsigned long long>(next_epoch_));
    std::abort();
  }
  WindowDelta delta;
  delta.epoch = epoch;
  delta.added = value;
  delta.evicted = window_.Push(value, &delta.evicted_value);
  epochs_.Push(epoch, &delta.evicted_epoch);
  if (delta.evicted && index_ != nullptr) {
    index_->Insert(delta.evicted_epoch, delta.evicted_value);
  }
  next_epoch_ = epoch + 1;
  return delta;
}

std::vector<FlashRecord> HistoryStore::ArchivedTopK(size_t k) {
  if (index_ == nullptr) return {};
  return index_->TopK(k);
}

StoreHistorySource::StoreHistorySource(std::vector<HistoryStore>* stores) : stores_(stores) {}

core::WindowSpan StoreHistorySource::Window(sim::NodeId id) const {
  if (id >= stores_->size()) return {};
  return (*stores_)[id].Window();
}

size_t StoreHistorySource::window_size() const {
  // All sensing nodes buffer in lockstep; report the first sensor's fill.
  if (stores_->size() < 2) return 0;
  return (*stores_)[1].window_size();
}

}  // namespace kspot::storage
