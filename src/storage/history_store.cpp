#include "storage/history_store.hpp"

namespace kspot::storage {

HistoryStore::HistoryStore(size_t window, bool archive_to_flash, double domain_min,
                           double domain_max)
    : window_(window) {
  if (archive_to_flash) {
    flash_ = std::make_unique<FlashSim>();
    index_ = std::make_unique<MicroHashIndex>(flash_.get(), domain_min, domain_max,
                                              /*num_buckets=*/16);
  }
}

void HistoryStore::Append(sim::Epoch epoch, double value) {
  double evicted = 0.0;
  bool had_eviction = window_.Push(value, &evicted);
  if (had_eviction && index_ != nullptr) {
    // The evicted reading belonged to (epoch - capacity) — archive it.
    sim::Epoch old_epoch = epoch >= window_.capacity()
                               ? epoch - static_cast<sim::Epoch>(window_.capacity())
                               : 0;
    index_->Insert(old_epoch, evicted);
  }
  next_epoch_ = epoch + 1;
}

std::vector<FlashRecord> HistoryStore::ArchivedTopK(size_t k) {
  if (index_ == nullptr) return {};
  return index_->TopK(k);
}

StoreHistorySource::StoreHistorySource(std::vector<HistoryStore>* stores) : stores_(stores) {}

std::vector<double> StoreHistorySource::Window(sim::NodeId id) const {
  if (id >= stores_->size()) return {};
  return (*stores_)[id].WindowValues();
}

size_t StoreHistorySource::window_size() const {
  // All sensing nodes buffer in lockstep; report the first sensor's fill.
  if (stores_->size() < 2) return 0;
  return (*stores_)[1].window_size();
}

}  // namespace kspot::storage
