#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

namespace kspot::storage {

/// Fixed-capacity ring buffer: the in-SRAM sliding window each sensor keeps
/// for historic queries (Section III-B; IMote2-class devices buffer in main
/// memory, MICA2-class devices spill to flash via the MicroHash index).
///
/// Iteration is zero-copy: the buffered items are exposed as at most two
/// contiguous segments (`FirstSegment`/`SecondSegment`, oldest first), so hot
/// paths walk the storage in place instead of materializing a vector.
template <typename T>
class SlidingWindow {
 public:
  /// Creates a window holding at most `capacity` items. A zero capacity is a
  /// programming error (the window could never hold a reading); abort loudly
  /// instead of silently resizing.
  explicit SlidingWindow(size_t capacity) : capacity_(capacity), data_(capacity) {
    if (capacity == 0) {
      std::fprintf(stderr, "SlidingWindow: capacity must be >= 1\n");
      std::abort();
    }
  }

  /// Appends an item, evicting the oldest when full. Returns the evicted
  /// item through `evicted` when eviction happened (for flash spill).
  bool Push(const T& item, T* evicted = nullptr) {
    bool evicting = size_ == capacity_;
    if (evicting && evicted != nullptr) *evicted = data_[head_];
    data_[(head_ + size_) % capacity_] = item;
    if (evicting) {
      head_ = (head_ + 1) % capacity_;
    } else {
      ++size_;
    }
    return evicting;
  }

  /// Item `i` positions from the oldest (0 = oldest). Precondition: i < size().
  const T& At(size_t i) const { return data_[(head_ + i) % capacity_]; }

  /// Newest item. Precondition: !empty().
  const T& Back() const { return At(size_ - 1); }
  /// Oldest item. Precondition: !empty().
  const T& Front() const { return At(0); }

  /// The contiguous run starting at the oldest item. Together with
  /// SecondSegment this covers every buffered item, oldest first.
  std::span<const T> FirstSegment() const {
    size_t len = std::min(size_, capacity_ - head_);
    return {data_.data() + head_, len};
  }

  /// The wrapped-around tail (empty when the buffer hasn't wrapped).
  std::span<const T> SecondSegment() const {
    size_t first_len = std::min(size_, capacity_ - head_);
    return {data_.data(), size_ - first_len};
  }

  /// Calls `fn(item)` for every buffered item, oldest first, in place.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const T& item : FirstSegment()) fn(item);
    for (const T& item : SecondSegment()) fn(item);
  }

  /// Number of buffered items.
  size_t size() const { return size_; }
  /// Maximum number of items.
  size_t capacity() const { return capacity_; }
  /// True when nothing is buffered.
  bool empty() const { return size_ == 0; }
  /// True when at capacity.
  bool full() const { return size_ == capacity_; }
  /// Drops all items.
  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<T> data_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace kspot::storage
