#pragma once

#include <cstddef>
#include <vector>

namespace kspot::storage {

/// Fixed-capacity ring buffer: the in-SRAM sliding window each sensor keeps
/// for historic queries (Section III-B; IMote2-class devices buffer in main
/// memory, MICA2-class devices spill to flash via the MicroHash index).
template <typename T>
class SlidingWindow {
 public:
  /// Creates a window holding at most `capacity` items (>= 1).
  explicit SlidingWindow(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity), data_(capacity_) {}

  /// Appends an item, evicting the oldest when full. Returns the evicted
  /// item through `evicted` when eviction happened (for flash spill).
  bool Push(const T& item, T* evicted = nullptr) {
    bool evicting = size_ == capacity_;
    if (evicting && evicted != nullptr) *evicted = data_[head_];
    data_[(head_ + size_) % capacity_] = item;
    if (evicting) {
      head_ = (head_ + 1) % capacity_;
    } else {
      ++size_;
    }
    return evicting;
  }

  /// Item `i` positions from the oldest (0 = oldest). Precondition: i < size().
  const T& At(size_t i) const { return data_[(head_ + i) % capacity_]; }

  /// Newest item. Precondition: !empty().
  const T& Back() const { return At(size_ - 1); }
  /// Oldest item. Precondition: !empty().
  const T& Front() const { return At(0); }

  /// Items currently buffered, oldest first.
  std::vector<T> Snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) out.push_back(At(i));
    return out;
  }

  /// Number of buffered items.
  size_t size() const { return size_; }
  /// Maximum number of items.
  size_t capacity() const { return capacity_; }
  /// True when nothing is buffered.
  bool empty() const { return size_ == 0; }
  /// True when at capacity.
  bool full() const { return size_ == capacity_; }
  /// Drops all items.
  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  size_t capacity_;
  std::vector<T> data_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace kspot::storage
