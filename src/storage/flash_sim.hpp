#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kspot::storage {

/// Cost model of the serial NOR/dataflash chip on MICA2-class motes
/// (Atmel AT45DB041B, the device the MicroHash paper characterizes):
/// page-granular reads and writes with per-operation energy.
struct FlashModel {
  /// Page size in bytes.
  size_t page_size_bytes = 264;
  /// Number of pages available.
  size_t num_pages = 2048;
  /// Energy to write (program) one page, joules.
  double page_write_j = 763e-6;
  /// Energy to read one page, joules.
  double page_read_j = 273e-6;
};

/// Page-addressed flash simulator with energy/operation accounting. The
/// MicroHash index and the history store allocate and access pages through
/// this; benchmarks read the counters to charge storage energy.
class FlashSim {
 public:
  explicit FlashSim(FlashModel model = FlashModel());

  /// Allocates a fresh page; returns its id, or SIZE_MAX when full.
  size_t AllocatePage();

  /// Writes `data` (at most page_size) to `page`; charges one page write.
  /// Returns false for an invalid page or oversized data.
  bool WritePage(size_t page, const std::vector<uint8_t>& data);

  /// Reads `page`; charges one page read. Empty result for invalid pages.
  std::vector<uint8_t> ReadPage(size_t page);

  /// Pages allocated so far.
  size_t pages_used() const { return next_page_; }
  /// Total page writes performed.
  uint64_t writes() const { return writes_; }
  /// Total page reads performed.
  uint64_t reads() const { return reads_; }
  /// Energy charged so far, joules.
  double energy_j() const { return energy_j_; }
  /// The cost model.
  const FlashModel& model() const { return model_; }

 private:
  FlashModel model_;
  std::vector<std::vector<uint8_t>> pages_;
  size_t next_page_ = 0;
  uint64_t writes_ = 0;
  uint64_t reads_ = 0;
  double energy_j_ = 0.0;
};

}  // namespace kspot::storage
