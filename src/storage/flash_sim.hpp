#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kspot::storage {

/// Cost model of the serial NOR/dataflash chip on MICA2-class motes
/// (Atmel AT45DB041B, the device the MicroHash paper characterizes):
/// page-granular reads and writes with per-operation energy.
struct FlashModel {
  /// Page size in bytes.
  size_t page_size_bytes = 264;
  /// Number of pages available.
  size_t num_pages = 2048;
  /// Energy to write (program) one page, joules.
  double page_write_j = 763e-6;
  /// Energy to read one page, joules.
  double page_read_j = 273e-6;
};

/// Cumulative flash I/O ledger: operations, payload bytes moved, and the
/// energy they cost. Folded into the network's TrafficCounters so storage
/// I/O competes with radio traffic in the same energy budget.
struct IoCounters {
  /// Page reads performed.
  uint64_t reads = 0;
  /// Page writes performed.
  uint64_t writes = 0;
  /// Payload bytes moved across the flash bus (reads + writes).
  uint64_t bytes = 0;
  /// Energy charged, joules.
  double energy_j = 0.0;

  /// Accumulates `other` into this ledger.
  void Add(const IoCounters& other) {
    reads += other.reads;
    writes += other.writes;
    bytes += other.bytes;
    energy_j += other.energy_j;
  }

  /// The delta from an earlier snapshot `since` of the same ledger.
  IoCounters Since(const IoCounters& since) const {
    IoCounters d;
    d.reads = reads - since.reads;
    d.writes = writes - since.writes;
    d.bytes = bytes - since.bytes;
    d.energy_j = energy_j - since.energy_j;
    return d;
  }
};

/// Page-addressed flash simulator with energy/operation accounting. The
/// MicroHash index and the history store allocate and access pages through
/// this; benchmarks read the counters to charge storage energy.
class FlashSim {
 public:
  explicit FlashSim(FlashModel model = FlashModel());

  /// Allocates a fresh page; returns its id, or SIZE_MAX when full.
  size_t AllocatePage();

  /// Writes `data` (at most page_size) to `page`; charges one page write.
  /// Returns false for an invalid page or oversized data.
  bool WritePage(size_t page, const std::vector<uint8_t>& data);

  /// Reads `page`; charges one page read. Empty result for invalid pages.
  std::vector<uint8_t> ReadPage(size_t page);

  /// Pages allocated so far.
  size_t pages_used() const { return next_page_; }
  /// The cumulative I/O ledger.
  const IoCounters& io() const { return io_; }
  /// Total page writes performed.
  uint64_t writes() const { return io_.writes; }
  /// Total page reads performed.
  uint64_t reads() const { return io_.reads; }
  /// Energy charged so far, joules.
  double energy_j() const { return io_.energy_j; }
  /// The cost model.
  const FlashModel& model() const { return model_; }

 private:
  FlashModel model_;
  std::vector<std::vector<uint8_t>> pages_;
  size_t next_page_ = 0;
  IoCounters io_;
};

}  // namespace kspot::storage
