#include "storage/flash_sim.hpp"

#include <limits>

namespace kspot::storage {

FlashSim::FlashSim(FlashModel model) : model_(model), pages_(model.num_pages) {}

size_t FlashSim::AllocatePage() {
  if (next_page_ >= model_.num_pages) return std::numeric_limits<size_t>::max();
  return next_page_++;
}

bool FlashSim::WritePage(size_t page, const std::vector<uint8_t>& data) {
  if (page >= next_page_ || data.size() > model_.page_size_bytes) return false;
  pages_[page] = data;
  ++io_.writes;
  io_.bytes += data.size();
  io_.energy_j += model_.page_write_j;
  return true;
}

std::vector<uint8_t> FlashSim::ReadPage(size_t page) {
  if (page >= next_page_) return {};
  ++io_.reads;
  io_.bytes += pages_[page].size();
  io_.energy_j += model_.page_read_j;
  return pages_[page];
}

}  // namespace kspot::storage
