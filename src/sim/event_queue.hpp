#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace kspot::sim {

/// Discrete-event queue: the heart of the simulator.
///
/// Events are (time, sequence) ordered; ties in time execute in insertion
/// order, which makes every simulation fully deterministic. Handlers may
/// schedule further events (this is how a parent's transmission schedules its
/// children's receptions in the slotted TAG-style epoch schedule).
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `at`. Scheduling in the past is
  /// clamped to the current time (executes next).
  void ScheduleAt(TimeUs at, Handler handler);

  /// Schedules `handler` `delay` microseconds after the current time.
  void ScheduleAfter(TimeUs delay, Handler handler);

  /// Runs events until the queue drains. Returns the number of events executed.
  size_t RunUntilIdle();

  /// Runs events with time <= `until`. Returns the number executed.
  size_t RunUntil(TimeUs until);

  /// Current simulated time (time of the last executed event).
  TimeUs now() const { return now_; }

  /// Advances the clock without executing anything (epoch boundaries).
  void AdvanceTo(TimeUs t);

  /// Sets the clock to `t` exactly, backwards included. Executing an event
  /// sets now() to the *event's* time even when a handler already advanced
  /// the clock past it; wave implementations that replay the event-queue
  /// schedule with flat frontiers (sim::DownWave) use this to reproduce that
  /// clock trajectory bit-exactly.
  void JumpTo(TimeUs t) { now_ = t; }

  /// Number of pending events.
  size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    TimeUs time;
    uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  TimeUs now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace kspot::sim
