#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/shard_runtime.hpp"
#include "sim/types.hpp"

namespace kspot::sim {

/// One converge-cast wave: every node, leaves first, may produce a message
/// for its parent. This is the communication pattern of a TAG epoch, of the
/// MINT update phase, and of the TJA lower-bound / hierarchical-join phases.
///
/// `Msg` is the algorithm's typed payload; the wire size callback maps it to
/// bytes so the network can charge frames/energy faithfully.
///
/// The wave is the simulator's innermost loop, so it is engineered for
/// throughput: the slotted TAG schedule is precomputed on the routing tree
/// (RoutingTree::wave_order() — the exact (time, seq) execution order the
/// event queue used to produce, so randomness is consumed in the same order
/// and results stay bit-identical), the produce/wire callbacks are template
/// parameters (inlined, no std::function indirection), and the per-node
/// inboxes live in a caller-owned Workspace reused across epochs instead of
/// being reallocated per wave.
template <typename Msg>
class UpWave {
 public:
  /// Reusable per-wave state. One workspace serves any number of sequential
  /// Run calls; buffers keep their capacity across epochs.
  struct Workspace {
    std::vector<std::vector<Msg>> inbox;
    /// Deferred cluster-head transmissions (sharded path only): a root's
    /// produced message parks here until the merge barrier executes its
    /// sink-facing send at the canonical wave-order slot.
    std::vector<std::optional<Msg>> root_out;
  };

  /// True when `produce` opted into lane-aware execution by accepting a
  /// third `size_t lane` argument. Only lane-aware producers run sharded:
  /// accepting the lane index is the callback's declaration that its writes
  /// are confined to the visited node's own slots (or lane-indexed scratch),
  /// which is the audit the parallel path relies on. Two-argument producers
  /// always run the serial loop, runtime attached or not.
  template <typename ProduceFn>
  static constexpr bool kLaneAware =
      std::is_invocable_v<ProduceFn&, NodeId, std::vector<Msg>&&, size_t>;

  /// Produce is called once per alive node in slot-schedule order with the
  /// messages that arrived from its children (losses already applied).
  /// Returning nullopt suppresses the node's transmission entirely (zero
  /// cost). WireBytes maps a message to its application payload size.
  ///
  /// Runs the wave on `net` using the slotted TAG schedule. Returns the
  /// sink's produced value (nullopt if the sink produced none or is dead).
  ///
  /// When `net` has a ShardRuntime attached, it is sharding, and `produce`
  /// is lane-aware, the cluster-head subtrees run concurrently and their
  /// per-message effects are replayed serially in canonical wave order at
  /// the epoch-boundary merge — bit-identical to the serial loop for any
  /// shard and thread count (see RunSharded).
  template <typename ProduceFn, typename WireFn>
  static std::optional<Msg> Run(Network& net, ProduceFn&& produce, WireFn&& wire_bytes,
                                Workspace* workspace = nullptr) {
    const RoutingTree& tree = net.tree();
    size_t n = tree.num_nodes();
    // Wall-clock span named after the network's current phase ("mint.update",
    // "tag.epoch", ...). Wall-clock only, no-op unless tracing is on.
    obs::ScopedSpan wave_span(
        obs::TracingOn() ? obs::GlobalTracer().NameIdForPhase(net.phase_id(), net.phase()) : 0);
    Workspace local;
    Workspace& ws = workspace != nullptr ? *workspace : local;
    if (ws.inbox.size() != n) ws.inbox.assign(n, {});
    if constexpr (kLaneAware<ProduceFn>) {
      ShardRuntime* rt = net.shard_runtime();
      if (rt != nullptr && rt->ShouldShard()) {
        return RunSharded(net, *rt, produce, wire_bytes, ws);
      }
    }
    std::optional<Msg> sink_result;
    TimeUs base = net.events().now();
    const size_t depth_cap = WaveDepthCap(net);
    if (depth_cap > 0) net.ApplyWaveDepthBudget(static_cast<int>(depth_cap));
    for (NodeId node : tree.wave_order()) {
      // Epoch deadline: nodes beyond the slot budget are cut from the wave
      // (their subtree data never reaches the sink; the epoch is degraded).
      if (depth_cap > 0 && tree.depth(node) > depth_cap) {
        ws.inbox[node].clear();
        continue;
      }
      if (!net.NodeAlive(node)) {
        ws.inbox[node].clear();
        continue;
      }
      std::optional<Msg> out = InvokeProduce(produce, node, std::move(ws.inbox[node]), 0);
      ws.inbox[node].clear();
      if (node == kSinkId) {
        sink_result = std::move(out);
        continue;
      }
      if (!out.has_value()) continue;
      size_t bytes = wire_bytes(*out);
      if (net.UnicastToParent(node, bytes)) {
        ws.inbox[tree.parent(node)].push_back(std::move(*out));
      }
    }
    // Clock parity with the event-queue schedule: the last transmission slot
    // belongs to the sink (depth 0, last post-order position). A deadline
    // shortens the wave to its slot budget.
    if (!tree.post_order().empty()) {
      net.events().AdvanceTo(base + WaveSlots(tree, depth_cap) * kSlotUs +
                             static_cast<TimeUs>(tree.post_order().size() - 1));
    }
    return sink_result;
  }

 private:
  /// The slot-depth deadline in force, 0 when none (reliability off or no
  /// wave_depth_budget configured).
  static size_t WaveDepthCap(const Network& net) {
    const ReliabilityOptions& rel = net.options().reliability;
    return rel.enabled && rel.wave_depth_budget > 0 ? static_cast<size_t>(rel.wave_depth_budget)
                                                    : 0;
  }

  /// Slots the wave occupies: the tree depth, shortened by any deadline.
  static TimeUs WaveSlots(const RoutingTree& tree, size_t depth_cap) {
    size_t slots = tree.max_depth();
    if (depth_cap > 0 && depth_cap < slots) slots = depth_cap;
    return static_cast<TimeUs>(slots);
  }
  /// Calls `produce` with or without the lane index, whichever it accepts.
  template <typename ProduceFn>
  static std::optional<Msg> InvokeProduce(ProduceFn& produce, NodeId node, std::vector<Msg>&& in,
                                          size_t lane) {
    if constexpr (kLaneAware<ProduceFn>) {
      return produce(node, std::move(in), lane);
    } else {
      (void)lane;
      return produce(node, std::move(in));
    }
  }

  /// The parallel wave. Correctness rests on three structural facts:
  ///
  ///  1. Cluster-head subtrees are disjoint and only meet at the sink, so
  ///     lanes touch disjoint per-node state (inboxes, meters, sent_by) —
  ///     every in-lane transmission has both endpoints inside one lane.
  ///     A root's own send would touch the shared sink, so it is deferred.
  ///  2. wave_order is depth-descending: every non-root precedes every root,
  ///     and roots precede the sink. Replaying captured send effects
  ///     node-by-node in wave order therefore reproduces the serial
  ///     execution op-for-op — the same counter accumulation order (floating
  ///     point sums included), the same clock trajectory, and the deferred
  ///     root sends land exactly at their canonical slots.
  ///  3. Loss randomness comes from per-sender RNG substreams (seeded at
  ///     runtime attach), so the draw sequence each sender sees is a
  ///     function of the sender alone — invariant under shard count, thread
  ///     count, and lane interleaving.
  template <typename ProduceFn, typename WireFn>
  static std::optional<Msg> RunSharded(Network& net, ShardRuntime& rt, ProduceFn& produce,
                                       WireFn& wire_bytes, Workspace& ws) {
    const RoutingTree& tree = net.tree();
    const ShardPlan& plan = rt.plan();
    std::vector<LaneSendEffect>& captures = rt.captures();
    if (ws.root_out.size() != tree.num_nodes()) ws.root_out.assign(tree.num_nodes(), std::nullopt);
    TimeUs base = net.events().now();
    // Deadline accounting runs serially before the lanes launch; lanes only
    // read the cap (epoch_degraded is never written from a lane).
    const size_t depth_cap = WaveDepthCap(net);
    if (depth_cap > 0) net.ApplyWaveDepthBudget(static_cast<int>(depth_cap));

    rt.RunLanes([&](size_t lane) {
      for (NodeId node : plan.lanes[lane]) {
        captures[node] = LaneSendEffect{};
        if (depth_cap > 0 && tree.depth(node) > depth_cap) {
          ws.inbox[node].clear();
          continue;
        }
        if (!net.NodeAlive(node)) {
          ws.inbox[node].clear();
          continue;
        }
        std::optional<Msg> out = InvokeProduce(produce, node, std::move(ws.inbox[node]), lane);
        ws.inbox[node].clear();
        if (!out.has_value()) continue;
        if (tree.parent(node) == kSinkId) {
          ws.root_out[node] = std::move(out);
          continue;
        }
        size_t bytes = wire_bytes(*out);
        if (net.LaneUnicastToParent(node, bytes, &captures[node])) {
          ws.inbox[tree.parent(node)].push_back(std::move(*out));
        }
      }
    });

    // Merge barrier: replay every captured effect in canonical wave order,
    // execute the deferred root sends at their slots, then let the sink
    // aggregate — all serial.
    std::optional<Msg> sink_result;
    for (NodeId node : tree.wave_order()) {
      if (node == kSinkId) {
        if (net.NodeAlive(kSinkId)) {
          sink_result = InvokeProduce(produce, kSinkId, std::move(ws.inbox[kSinkId]), 0);
        }
        ws.inbox[kSinkId].clear();
        continue;
      }
      if (plan.lane_of[node] == kNoLane) continue;  // detached by churn: never visited
      if (ws.root_out[node].has_value()) {
        std::optional<Msg> out = std::move(ws.root_out[node]);
        ws.root_out[node].reset();
        size_t bytes = wire_bytes(*out);
        if (net.LaneUnicastToParent(node, bytes, &captures[node])) {
          ws.inbox[kSinkId].push_back(std::move(*out));
        }
        net.CommitLaneSend(captures[node]);
      } else if (captures[node].sent) {
        net.CommitLaneSend(captures[node]);
      }
    }
    if (!tree.post_order().empty()) {
      net.events().AdvanceTo(base + WaveSlots(tree, depth_cap) * kSlotUs +
                             static_cast<TimeUs>(tree.post_order().size() - 1));
    }
    return sink_result;
  }
};

/// One dissemination wave: the sink seeds a message which flows down the
/// tree; each receiving node may transform it before forwarding to its
/// children. Used for epoch beacons, MINT threshold (tau) dissemination and
/// the TJA Lsink broadcast.
///
/// Like UpWave, the callbacks are template parameters (inlined — no
/// std::function indirection) and the frontier is a flat local heap instead
/// of per-child event-queue entries. The event-queue schedule this replaces
/// popped strictly in (time, seq) order; the frontier keeps exactly that key
/// — reception slot, then scheduling sequence — so the replay is bit-exact
/// for arbitrary per-subtree message sizes (different broadcast airtimes
/// legitimately reorder cousins): same BroadcastToChildren sequence (same
/// loss-rng consumption), same clock trajectory (EventQueue::JumpTo
/// reproduces the executing-event clock), without a std::function allocation
/// and a Msg copy per delivered child.
template <typename Msg>
class DownWave {
 public:
  /// Runs the wave. `produce` is called on the sink with nullptr to seed the
  /// wave, then on every node that received its parent's message; the
  /// returned message is broadcast to the node's children, nullopt stops the
  /// wave below this node. `wire_bytes` maps a message to its application
  /// payload size. Returns the number of nodes that received a message (the
  /// sink counts as having received the seed).
  template <typename ProduceFn, typename WireFn>
  static size_t Run(Network& net, ProduceFn&& produce, WireFn&& wire_bytes) {
    obs::ScopedSpan wave_span(
        obs::TracingOn() ? obs::GlobalTracer().NameIdForPhase(net.phase_id(), net.phase()) : 0);
    struct Pending {
      TimeUs at;      ///< The slot the reception event would have executed in.
      uint64_t seq;   ///< Scheduling order (tie-break, like EventQueue).
      NodeId node;
      uint32_t msg;   ///< Index into msgs (siblings share the parent's forward).
    };
    struct Later {
      bool operator()(const Pending& a, const Pending& b) const {
        if (a.at != b.at) return a.at > b.at;
        return a.seq > b.seq;
      }
    };
    std::priority_queue<Pending, std::vector<Pending>, Later> frontier;
    std::vector<Msg> msgs;
    size_t reached = 0;
    uint64_t next_seq = 0;
    // Epoch deadline: receptions scheduled past the slot budget are dropped
    // and the epoch is marked degraded. 0 = no deadline.
    const ReliabilityOptions& rel = net.options().reliability;
    const TimeUs deadline =
        rel.enabled && rel.wave_depth_budget > 0
            ? net.events().now() + static_cast<TimeUs>(rel.wave_depth_budget) * kSlotUs
            : 0;
    // The sink's visit runs inline (the old scheme never scheduled it), with
    // a null incoming message.
    NodeId node = kSinkId;
    uint32_t incoming = UINT32_MAX;
    for (;;) {
      if (net.NodeAlive(node)) {
        ++reached;
        std::optional<Msg> forward =
            produce(node, incoming == UINT32_MAX ? nullptr : &msgs[incoming]);
        if (forward.has_value()) {
          size_t bytes = wire_bytes(*forward);
          std::vector<NodeId> delivered = net.BroadcastToChildren(node, bytes);
          if (!delivered.empty()) {
            TimeUs at = net.events().now() + kSlotUs;
            auto msg_index = static_cast<uint32_t>(msgs.size());
            msgs.push_back(std::move(*forward));
            for (NodeId child : delivered) frontier.push({at, next_seq++, child, msg_index});
          }
        }
      }
      if (frontier.empty()) break;
      Pending next = frontier.top();
      frontier.pop();
      if (deadline != 0 && next.at > deadline) {
        // The frontier pops in (time, seq) order, so everything still queued
        // is at least as late: the whole remainder is cut.
        net.MarkEpochDegraded(static_cast<uint32_t>(frontier.size() + 1));
        break;
      }
      // Executing an event pins the clock to the event's own time, even when
      // a sibling's broadcast already advanced past it.
      net.events().JumpTo(next.at);
      node = next.node;
      incoming = next.msg;
    }
    return reached;
  }
};

}  // namespace kspot::sim
