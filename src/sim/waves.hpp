#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "sim/network.hpp"
#include "sim/types.hpp"

namespace kspot::sim {

/// Duration of one TAG epoch-schedule slot (one tree depth level), in
/// microseconds. TAG divides each epoch into depth-indexed communication
/// slots so that children transmit before their parents listen.
inline constexpr TimeUs kSlotUs = 50'000;

/// One converge-cast wave: every node, leaves first, may produce a message
/// for its parent. This is the communication pattern of a TAG epoch, of the
/// MINT update phase, and of the TJA lower-bound / hierarchical-join phases.
///
/// `Msg` is the algorithm's typed payload; the wire size callback maps it to
/// bytes so the network can charge frames/energy faithfully.
template <typename Msg>
class UpWave {
 public:
  /// Called once per alive node in post order with the messages that arrived
  /// from its children (losses already applied). Returning nullopt suppresses
  /// the node's transmission entirely (zero cost).
  using Produce = std::function<std::optional<Msg>(NodeId, std::vector<Msg>&&)>;
  /// Maps a message to its application payload size in bytes.
  using WireBytes = std::function<size_t(const Msg&)>;

  /// Runs the wave on `net`'s event queue using the slotted TAG schedule.
  /// Returns the sink's produced value (nullopt if the sink produced none or
  /// is dead).
  static std::optional<Msg> Run(Network& net, const Produce& produce,
                                const WireBytes& wire_bytes) {
    const RoutingTree& tree = net.tree();
    size_t n = tree.num_nodes();
    std::vector<std::vector<Msg>> inbox(n);
    std::optional<Msg> sink_result;
    TimeUs base = net.events().now();
    int max_depth = tree.max_depth();
    // Nodes at depth d transmit in slot (max_depth - d); post_order gives a
    // deterministic ordering within a slot.
    uint64_t offset = 0;
    for (NodeId node : tree.post_order()) {
      TimeUs at = base + static_cast<TimeUs>(max_depth - tree.depth(node)) * kSlotUs + offset;
      ++offset;
      net.events().ScheduleAt(at, [&, node]() {
        if (!net.NodeAlive(node)) {
          inbox[node].clear();
          return;
        }
        std::optional<Msg> out = produce(node, std::move(inbox[node]));
        inbox[node].clear();
        if (node == kSinkId) {
          sink_result = std::move(out);
          return;
        }
        if (!out.has_value()) return;
        size_t bytes = wire_bytes(*out);
        if (net.UnicastToParent(node, bytes)) {
          inbox[tree.parent(node)].push_back(std::move(*out));
        }
      });
    }
    net.events().RunUntilIdle();
    return sink_result;
  }
};

/// One dissemination wave: the sink seeds a message which flows down the
/// tree; each receiving node may transform it before forwarding to its
/// children. Used for epoch beacons, MINT threshold (tau) dissemination and
/// the TJA Lsink broadcast.
template <typename Msg>
class DownWave {
 public:
  /// Called on the sink with nullptr to seed the wave, then on every node
  /// that received the parent's message. The returned message is broadcast
  /// to the node's children; nullopt stops the wave below this node.
  using Produce = std::function<std::optional<Msg>(NodeId, const Msg*)>;
  /// Maps a message to its application payload size in bytes.
  using WireBytes = std::function<size_t(const Msg&)>;

  /// Runs the wave. Returns the number of nodes that received a message
  /// (the sink counts as having received the seed).
  static size_t Run(Network& net, const Produce& produce, const WireBytes& wire_bytes) {
    size_t reached = 0;
    std::function<void(NodeId, std::optional<Msg>)> visit = [&](NodeId node,
                                                                std::optional<Msg> incoming) {
      if (!net.NodeAlive(node)) return;
      ++reached;
      std::optional<Msg> forward =
          produce(node, node == kSinkId ? nullptr : (incoming ? &*incoming : nullptr));
      if (!forward.has_value()) return;
      size_t bytes = wire_bytes(*forward);
      std::vector<NodeId> delivered = net.BroadcastToChildren(node, bytes);
      for (NodeId child : delivered) {
        TimeUs at = net.events().now() + kSlotUs;
        Msg copy = *forward;
        net.events().ScheduleAt(at, [&, child, m = std::move(copy)]() mutable {
          visit(child, std::move(m));
        });
      }
    };
    visit(kSinkId, std::nullopt);
    net.events().RunUntilIdle();
    return reached;
  }
};

}  // namespace kspot::sim
