#include "sim/shard_runtime.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace kspot::sim {

ShardRuntime::ShardRuntime(Network* net, Options options) : net_(net), options_(options) {
  // Per-node substreams, derived once from the network's loss RNG. Split is
  // const — the parent stream is untouched, so the serial path's draw
  // sequence is exactly what it would have been without a runtime.
  auto& rngs = net_->state().node_rngs;
  size_t n = net_->topology().num_nodes();
  rngs.clear();
  rngs.reserve(n);
  for (size_t i = 0; i < n; ++i) rngs.push_back(net_->rng().Split(static_cast<uint64_t>(i)));
  net_->AttachShardRuntime(this);
}

ShardRuntime::~ShardRuntime() {
  if (net_ != nullptr && net_->shard_runtime() == this) net_->AttachShardRuntime(nullptr);
}

bool ShardRuntime::ShouldShard() {
  if (options_.shards <= 1) return false;
  return plan().sharded();
}

const ShardPlan& ShardRuntime::plan() {
  if (!plan_.has_value()) plan_ = ShardPlanner::Build(net_->tree(), options_.shards);
  return *plan_;
}

util::TaskPool& ShardRuntime::pool() {
  if (!pool_) pool_ = std::make_unique<util::TaskPool>(options_.threads);
  return *pool_;
}

void ShardRuntime::RunLanes(const std::function<void(size_t)>& fn) {
  size_t lanes = lane_count();
  const bool metrics = obs::MetricsOn();
  const bool tracing = obs::TracingOn();
  if (!metrics && !tracing) {
    pool().ParallelFor(lanes, fn);
    return;
  }
  lane_wall_us_.assign(lanes, 0.0);
  static const uint32_t kLaneSpan = obs::GlobalTracer().InternName("shard.lane");
  pool().ParallelFor(lanes, [&](size_t lane) {
    uint64_t t0 = obs::NowMicros();
    fn(lane);
    uint64_t dur = obs::NowMicros() - t0;
    lane_wall_us_[lane] = static_cast<double>(dur);
    if (tracing) obs::GlobalTracer().Record(kLaneSpan, t0, dur);
  });
  if (metrics) {
    static obs::Histogram& wall_us = obs::Registry().histogram("shard.lane_wall_us");
    static obs::Gauge& imbalance = obs::Registry().gauge("shard.lane_imbalance");
    static obs::Counter& waves = obs::Registry().counter("shard.waves");
    double sum = 0.0;
    double slowest = 0.0;
    for (double us : lane_wall_us_) {
      wall_us.Observe(us);
      sum += us;
      slowest = std::max(slowest, us);
    }
    double mean = lanes > 0 ? sum / static_cast<double>(lanes) : 0.0;
    imbalance.Set(mean > 0.0 ? slowest / mean : 1.0);
    waves.Add(1);
  }
}

std::vector<LaneSendEffect>& ShardRuntime::captures() {
  captures_.resize(net_->topology().num_nodes());
  return captures_;
}

}  // namespace kspot::sim
