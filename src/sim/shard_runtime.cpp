#include "sim/shard_runtime.hpp"

namespace kspot::sim {

ShardRuntime::ShardRuntime(Network* net, Options options) : net_(net), options_(options) {
  // Per-node substreams, derived once from the network's loss RNG. Split is
  // const — the parent stream is untouched, so the serial path's draw
  // sequence is exactly what it would have been without a runtime.
  auto& rngs = net_->state().node_rngs;
  size_t n = net_->topology().num_nodes();
  rngs.clear();
  rngs.reserve(n);
  for (size_t i = 0; i < n; ++i) rngs.push_back(net_->rng().Split(static_cast<uint64_t>(i)));
  net_->AttachShardRuntime(this);
}

ShardRuntime::~ShardRuntime() {
  if (net_ != nullptr && net_->shard_runtime() == this) net_->AttachShardRuntime(nullptr);
}

bool ShardRuntime::ShouldShard() {
  if (options_.shards <= 1) return false;
  return plan().sharded();
}

const ShardPlan& ShardRuntime::plan() {
  if (!plan_.has_value()) plan_ = ShardPlanner::Build(net_->tree(), options_.shards);
  return *plan_;
}

util::TaskPool& ShardRuntime::pool() {
  if (!pool_) pool_ = std::make_unique<util::TaskPool>(options_.threads);
  return *pool_;
}

std::vector<LaneSendEffect>& ShardRuntime::captures() {
  captures_.resize(net_->topology().num_nodes());
  return captures_;
}

}  // namespace kspot::sim
