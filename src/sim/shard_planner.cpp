#include "sim/shard_planner.hpp"

#include <algorithm>

namespace kspot::sim {

ShardPlan ShardPlanner::Build(const RoutingTree& tree, size_t shards) {
  ShardPlan plan;
  plan.requested = std::max<size_t>(shards, 1);
  plan.lane_of.assign(tree.num_nodes(), kNoLane);

  // The cluster-head subtrees: one per depth-1 node attached to the sink.
  const std::vector<NodeId>& heads = tree.children(kSinkId);
  if (heads.empty()) {
    plan.lanes.emplace_back();  // degenerate tree: one empty lane
    return plan;
  }
  size_t lane_count = std::min(plan.requested, heads.size());

  // Map every attached non-sink node to its cluster head by walking pre-order
  // (parents before children), then seed from the heads themselves.
  std::vector<NodeId> head_of(tree.num_nodes(), kNoNode);
  for (NodeId head : heads) head_of[head] = head;
  for (NodeId node : tree.pre_order()) {
    if (node == kSinkId || head_of[node] != kNoNode) continue;
    head_of[node] = head_of[tree.parent(node)];
  }

  // Count each subtree's wave-order members as its load.
  std::vector<uint64_t> load(tree.num_nodes(), 0);
  for (NodeId node : tree.wave_order()) {
    if (node == kSinkId) continue;
    ++load[head_of[node]];
  }

  // Longest-processing-time packing with fully deterministic tie-breaks:
  // heavier subtrees first (lower node id wins ties), each onto the least
  // loaded lane (lower lane index wins ties).
  std::vector<NodeId> order(heads);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (load[a] != load[b]) return load[a] > load[b];
    return a < b;
  });
  std::vector<uint64_t> lane_load(lane_count, 0);
  std::vector<LaneId> lane_of_head(tree.num_nodes(), kNoLane);
  for (NodeId head : order) {
    LaneId best = 0;
    for (LaneId lane = 1; lane < lane_count; ++lane) {
      if (lane_load[lane] < lane_load[best]) best = lane;
    }
    lane_of_head[head] = best;
    lane_load[best] += load[head];
  }

  // Materialize each lane as a slice of the canonical wave order, and record
  // the roots' canonical order for the deferred-send replay.
  plan.lanes.assign(lane_count, {});
  for (NodeId node : tree.wave_order()) {
    if (node == kSinkId) continue;
    LaneId lane = lane_of_head[head_of[node]];
    plan.lane_of[node] = lane;
    plan.lanes[lane].push_back(node);
    if (head_of[node] == node) plan.roots_in_order.push_back(node);
  }
  return plan;
}

}  // namespace kspot::sim
