#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace kspot::sim {

namespace {

/// Process-global phase-label registry. Interning is rare (once per distinct
/// label per process for cached call sites), so one mutex covers it; labels
/// live in a deque for pointer stability.
struct PhaseRegistry {
  std::mutex mu;
  std::unordered_map<std::string, PhaseId> ids;
  std::deque<std::string> names;
};

PhaseRegistry& Registry() {
  static PhaseRegistry* registry = new PhaseRegistry();
  return *registry;
}

}  // namespace

PhaseId Network::InternPhase(std::string_view name) {
  PhaseRegistry& reg = Registry();
  std::string key(name);
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.ids.find(key);
  if (it != reg.ids.end()) return it->second;
  auto id = static_cast<PhaseId>(reg.names.size());
  reg.names.push_back(std::move(key));
  reg.ids.emplace(reg.names.back(), id);
  return id;
}

const std::string& Network::PhaseName(PhaseId id) {
  PhaseRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.names.at(id);
}

Network::Network(const Topology* topology, const RoutingTree* tree, NetworkOptions options,
                 util::Rng rng)
    : topology_(topology), tree_(tree), options_(options), rng_(rng) {
  state_.Reset(topology->num_nodes(), options.battery_j);
  BeginReliabilityEpoch();
  static const PhaseId kDefaultPhase = InternPhase("default");
  SetPhase(kDefaultPhase);
}

Network::Network(const Network& other)
    : topology_(other.topology_),
      tree_(other.tree_),
      options_(other.options_),
      rng_(other.rng_),
      events_(other.events_),
      state_(other.state_),
      phase_id_(other.phase_id_),
      phase_name_(other.phase_name_) {
  // A shard runtime is bound to the object it was attached to; the copy
  // starts serial.
}

Network& Network::operator=(const Network& other) {
  if (this == &other) return *this;
  topology_ = other.topology_;
  tree_ = other.tree_;
  options_ = other.options_;
  rng_ = other.rng_;
  events_ = other.events_;
  state_ = other.state_;
  phase_id_ = other.phase_id_;
  phase_name_ = other.phase_name_;
  shard_runtime_ = nullptr;
  return *this;
}

void Network::SetPhase(PhaseId id) {
  if (phase_name_ != nullptr && id == phase_id_) return;
  if (id >= state_.by_phase.size()) {
    state_.by_phase.resize(id + 1);
    state_.phase_touched.resize(id + 1, 0);
  }
  phase_id_ = id;
  phase_name_ = &PhaseName(id);
  state_.phase_touched[id] = 1;
}

void Network::SetPhase(const std::string& phase) {
  if (phase_name_ != nullptr && phase == *phase_name_) return;
  SetPhase(InternPhase(phase));
}

TrafficCounters Network::PhaseTotal(const std::string& phase) const {
  PhaseRegistry& reg = Registry();
  PhaseId id;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.ids.find(phase);
    if (it == reg.ids.end()) return {};
    id = it->second;
  }
  return PhaseTotal(id);
}

TrafficCounters Network::PhaseTotal(PhaseId id) const {
  return id < state_.by_phase.size() ? state_.by_phase[id] : TrafficCounters{};
}

std::map<std::string, TrafficCounters> Network::by_phase() const {
  std::map<std::string, TrafficCounters> out;
  for (PhaseId id = 0; id < state_.by_phase.size(); ++id) {
    if (state_.phase_touched[id]) out.emplace(PhaseName(id), state_.by_phase[id]);
  }
  return out;
}

size_t Network::AliveCount() const {
  size_t n = 0;
  for (size_t i = 0; i < state_.meters.size(); ++i) {
    if (NodeAlive(static_cast<NodeId>(i))) ++n;
  }
  return n;
}

double Network::LinkLossProb(NodeId from, NodeId to) const {
  double p = options_.loss_prob;
  if (options_.edge_max_loss > 0.0 && topology_->comm_range() > 0.0) {
    double frac = Distance(topology_->position(from), topology_->position(to)) /
                  topology_->comm_range();
    double onset = options_.edge_onset;
    if (frac > onset && onset < 1.0) {
      double t = std::min(1.0, (frac - onset) / (1.0 - onset));
      double edge = options_.edge_max_loss * t * t;
      p = p + (1.0 - p) * edge;
    }
  }
  // Degradation episodes at either endpoint compound independently with the
  // link's baseline loss (each is one more way a frame can die).
  for (double extra : {state_.extra_loss[from], state_.extra_loss[to]}) {
    if (extra > 0.0) p = p + (1.0 - p) * std::min(1.0, extra);
  }
  // The compounding above keeps p in [0, 1] for in-range inputs, but a
  // configured edge_max_loss > 1 (or a baseline outside [0, 1]) could push
  // it out, and a probability > 1 silently breaks the Bernoulli draws.
  return std::clamp(p, 0.0, 1.0);
}

void Network::BeginReliabilityEpoch() {
  std::fill(state_.retry_budget_left.begin(), state_.retry_budget_left.end(),
            options_.reliability.retry_budget);
  state_.epoch_degraded = 0;
  state_.truncated_nodes = 0;
}

void Network::MarkEpochDegraded(uint32_t truncated) {
  state_.epoch_degraded = 1;
  state_.truncated_nodes += truncated;
}

uint32_t Network::ApplyWaveDepthBudget(int depth_cap) {
  uint32_t cut = 0;
  for (NodeId node : tree_->wave_order()) {
    if (tree_->depth(node) > static_cast<size_t>(depth_cap) && NodeAlive(node)) ++cut;
  }
  if (cut > 0) MarkEpochDegraded(cut);
  return cut;
}

size_t Network::AliveAttachedSensors() const {
  size_t n = 0;
  for (size_t i = 1; i < state_.meters.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (NodeAlive(id) && tree_->attached(id)) ++n;
  }
  return n;
}

int Network::PlannedAttempts(double ewma_loss) const {
  const ReliabilityOptions& rel = options_.reliability;
  int cap = std::max(1, rel.max_retries + 1);
  if (!(ewma_loss > 0.0)) return 1;   // clean link: one attempt suffices
  if (ewma_loss >= 1.0) return cap;   // blackout: spend the whole allowance
  double need = std::log(std::max(rel.residual_target, 1e-12)) / std::log(ewma_loss);
  if (!(need > 1.0)) return 1;
  if (need >= static_cast<double>(cap)) return cap;
  return static_cast<int>(std::ceil(need));
}

bool Network::ReliableUnicast(NodeId sender, NodeId receiver, NodeId link_slot,
                              size_t payload_bytes, util::Rng& loss_rng,
                              TrafficCounters& delta) {
  const ReliabilityOptions& rel = options_.reliability;
  size_t frames = options_.radio.FramesForPayload(payload_bytes);
  double link_loss = LinkLossProb(sender, receiver);
  // The EWMA samples *message*-level outcomes, so planning works at message
  // level too: a message dies when any of its frames does.
  double msg_loss =
      frames <= 1 ? link_loss : 1.0 - std::pow(1.0 - link_loss, static_cast<double>(frames));
  LinkEstimator& est = state_.link_est[link_slot];
  NodeId other = link_slot == sender ? receiver : sender;
  if (est.to != other) {
    // First sighting of this link (or churn re-parented the node): the prior
    // is the loss model's own message loss, so even the first message
    // schedules a sensible attempt count.
    est.to = other;
    est.ewma = msg_loss;
  }
  bool delivered = false;
  // The model's own loss floors the estimate: the EWMA adapts *upward* when
  // the link runs worse than modeled (episodes, interference), but a lucky
  // streak of binary samples must not talk the policy into under-retrying a
  // link the model says is lossy.
  int attempts = PlannedAttempts(std::max(est.ewma, msg_loss));
  for (int attempt = 0; attempt < attempts && !delivered; ++attempt) {
    if (!NodeAlive(sender)) break;
    if (attempt > 0) {
      if (rel.retry_budget > 0) {
        if (state_.retry_budget_left[sender] == 0) break;
        --state_.retry_budget_left[sender];
      }
      uint64_t backoff = attempt - 1 >= 30
                             ? rel.backoff_cap_us
                             : std::min(rel.backoff_cap_us, rel.backoff_base_us
                                                                << (attempt - 1));
      // The radio idles in receive mode while it waits out the backoff, so
      // the wait is charged at the rx draw (idle-listen energy).
      double idle_j = options_.energy.RxEnergy(1e-6 * static_cast<double>(backoff));
      state_.meters[sender].AddRx(idle_j);
      delta.rx_energy_j += idle_j;
      delta.retries += 1;
      delta.backoff_us += backoff;
    }
    ChargeTx(sender, payload_bytes, delta);
    bool lost = false;
    for (size_t f = 0; f < frames && !lost; ++f) {
      lost = loss_rng.NextBernoulli(link_loss);
    }
    est.ewma = rel.ewma_alpha * (lost ? 1.0 : 0.0) + (1.0 - rel.ewma_alpha) * est.ewma;
    if (!lost && NodeAlive(receiver)) {
      double rx_j = options_.energy.RxEnergy(options_.radio.AirtimeSeconds(payload_bytes));
      state_.meters[receiver].AddRx(rx_j);
      delta.rx_energy_j += rx_j;
      delivered = true;
    }
  }
  return delivered;
}

void Network::ChargeTx(NodeId sender, size_t payload_bytes, TrafficCounters& counters) {
  const RadioModel& radio = options_.radio;
  double airtime = radio.AirtimeSeconds(payload_bytes);
  double tx_j = options_.energy.TxEnergy(airtime);
  state_.meters[sender].AddTx(tx_j);
  state_.sent_by[sender] += 1;
  counters.messages += 1;
  counters.frames += radio.FramesForPayload(payload_bytes);
  counters.payload_bytes += payload_bytes;
  counters.onair_bytes += radio.OnAirBytes(payload_bytes);
  counters.tx_energy_j += tx_j;
}

bool Network::UnicastToParentWith(NodeId child, size_t payload_bytes, util::Rng& loss_rng,
                                  TrafficCounters& delta) {
  NodeId parent = tree_->parent(child);
  if (options_.reliability.enabled) {
    return ReliableUnicast(child, parent, child, payload_bytes, loss_rng, delta);
  }
  bool delivered = false;
  // Per-frame loss: the message survives an attempt only if every fragment does.
  size_t frames = options_.radio.FramesForPayload(payload_bytes);
  double link_loss = LinkLossProb(child, parent);
  for (int attempt = 0; attempt <= options_.max_retries && !delivered; ++attempt) {
    if (!NodeAlive(child)) break;
    ChargeTx(child, payload_bytes, delta);
    bool lost = false;
    for (size_t f = 0; f < frames && !lost; ++f) {
      lost = loss_rng.NextBernoulli(link_loss);
    }
    if (!lost && NodeAlive(parent)) {
      double rx_j = options_.energy.RxEnergy(options_.radio.AirtimeSeconds(payload_bytes));
      state_.meters[parent].AddRx(rx_j);
      delta.rx_energy_j += rx_j;
      delivered = true;
    }
  }
  return delivered;
}

bool Network::UnicastToParent(NodeId child, size_t payload_bytes) {
  NodeId parent = tree_->parent(child);
  if (parent == kNoNode) return false;
  if (!NodeAlive(child)) return false;
  TrafficCounters delta;
  bool delivered = UnicastToParentWith(child, payload_bytes, rng_, delta);
  state_.total.Add(delta);
  state_.by_phase[phase_id_].Add(delta);
  // backoff_us is zero unless the reliability layer waited out retries.
  events_.AdvanceTo(events_.now() + options_.radio.AirtimeMicros(payload_bytes) +
                    delta.backoff_us);
  return delivered;
}

bool Network::LaneUnicastToParent(NodeId child, size_t payload_bytes, LaneSendEffect* fx) {
  NodeId parent = tree_->parent(child);
  if (parent == kNoNode) return false;
  if (!NodeAlive(child)) return false;
  bool delivered =
      UnicastToParentWith(child, payload_bytes, state_.node_rngs[child], fx->delta);
  fx->airtime = options_.radio.AirtimeMicros(payload_bytes) + fx->delta.backoff_us;
  fx->sent = true;
  return delivered;
}

void Network::CommitLaneSend(const LaneSendEffect& fx) {
  state_.total.Add(fx.delta);
  state_.by_phase[phase_id_].Add(fx.delta);
  events_.AdvanceTo(events_.now() + fx.airtime);
}

bool Network::UnicastUpPath(NodeId from, size_t payload_bytes) {
  if (!tree_->attached(from)) return false;  // stranded by churn: no route
  NodeId cur = from;
  while (cur != kSinkId) {
    if (!UnicastToParent(cur, payload_bytes)) return false;
    cur = tree_->parent(cur);
  }
  return true;
}

bool Network::UnicastDownPath(NodeId target, size_t payload_bytes) {
  if (!tree_->attached(target)) return false;  // stranded by churn: no route
  // Collect the sink -> target path, then charge each hop as a unicast with
  // the same loss/retry discipline as the upward direction.
  std::vector<NodeId> path;
  for (NodeId cur = target; cur != kNoNode; cur = tree_->parent(cur)) path.push_back(cur);
  // path = [target, ..., sink]; walk it top-down.
  for (size_t i = path.size(); i-- > 1;) {
    NodeId sender = path[i];
    NodeId receiver = path[i - 1];
    if (!NodeAlive(sender)) return false;
    TrafficCounters delta;
    bool delivered = false;
    if (options_.reliability.enabled) {
      // Down traffic shares the child-endpoint estimator slot with up traffic
      // (the link is the same; LinkLossProb is symmetric).
      delivered = ReliableUnicast(sender, receiver, receiver, payload_bytes, rng_, delta);
    } else {
      size_t frames = options_.radio.FramesForPayload(payload_bytes);
      double link_loss = LinkLossProb(sender, receiver);
      for (int attempt = 0; attempt <= options_.max_retries && !delivered; ++attempt) {
        ChargeTx(sender, payload_bytes, delta);
        bool lost = false;
        for (size_t f = 0; f < frames && !lost; ++f) {
          lost = rng_.NextBernoulli(link_loss);
        }
        if (!lost && NodeAlive(receiver)) {
          double rx_j = options_.energy.RxEnergy(options_.radio.AirtimeSeconds(payload_bytes));
          state_.meters[receiver].AddRx(rx_j);
          delta.rx_energy_j += rx_j;
          delivered = true;
        }
      }
    }
    state_.total.Add(delta);
    state_.by_phase[phase_id_].Add(delta);
    events_.AdvanceTo(events_.now() + options_.radio.AirtimeMicros(payload_bytes) +
                      delta.backoff_us);
    if (!delivered) return false;
  }
  return true;
}

std::vector<NodeId> Network::BroadcastToChildren(NodeId node, size_t payload_bytes) {
  std::vector<NodeId> delivered;
  const auto& kids = tree_->children(node);
  if (kids.empty()) return delivered;
  if (!NodeAlive(node)) return delivered;
  TrafficCounters delta;
  ChargeTx(node, payload_bytes, delta);
  size_t frames = options_.radio.FramesForPayload(payload_bytes);
  double rx_airtime = options_.radio.AirtimeSeconds(payload_bytes);
  for (NodeId child : kids) {
    if (!NodeAlive(child)) continue;
    bool lost = false;
    double link_loss = LinkLossProb(node, child);
    for (size_t f = 0; f < frames && !lost; ++f) {
      lost = rng_.NextBernoulli(link_loss);
    }
    // Listening children pay receive energy whether or not the CRC passes.
    double rx_j = options_.energy.RxEnergy(rx_airtime);
    state_.meters[child].AddRx(rx_j);
    delta.rx_energy_j += rx_j;
    if (!lost) delivered.push_back(child);
  }
  state_.total.Add(delta);
  state_.by_phase[phase_id_].Add(delta);
  events_.AdvanceTo(events_.now() + options_.radio.AirtimeMicros(payload_bytes));
  return delivered;
}

void Network::ChargeStorageIo(NodeId node, uint64_t reads, uint64_t writes, uint64_t bytes,
                              double energy_j) {
  state_.meters[node].AddStorage(energy_j);
  TrafficCounters delta;
  delta.flash_reads = reads;
  delta.flash_writes = writes;
  delta.flash_bytes = bytes;
  delta.flash_energy_j = energy_j;
  state_.total.Add(delta);
  state_.by_phase[phase_id_].Add(delta);
}

void Network::DeliverControl(NodeId from, NodeId to, size_t payload_bytes) {
  TrafficCounters delta;
  ChargeTx(from, payload_bytes, delta);
  double rx_j = options_.energy.RxEnergy(options_.radio.AirtimeSeconds(payload_bytes));
  state_.meters[to].AddRx(rx_j);
  delta.rx_energy_j += rx_j;
  state_.total.Add(delta);
  state_.by_phase[phase_id_].Add(delta);
  events_.AdvanceTo(events_.now() + options_.radio.AirtimeMicros(payload_bytes));
}

}  // namespace kspot::sim
