#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/energy_model.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace kspot::sim {

/// Aggregated traffic counters. These are exactly the numbers the KSpot
/// System Panel projects at the demo: message count, frame (packet) count,
/// application bytes, on-air bytes and radio energy.
struct TrafficCounters {
  uint64_t messages = 0;      ///< Logical messages sent (suppressed sends cost nothing).
  uint64_t frames = 0;        ///< TinyOS frames after fragmentation.
  uint64_t payload_bytes = 0; ///< Application payload bytes.
  uint64_t onair_bytes = 0;   ///< Bytes on the air incl. headers + preambles.
  uint64_t retries = 0;       ///< Adaptive-ARQ retransmissions (reliability layer).
  uint64_t backoff_us = 0;    ///< Idle-listen backoff time spent before retries.
  uint64_t flash_reads = 0;   ///< Local flash page reads (historic archiving).
  uint64_t flash_writes = 0;  ///< Local flash page writes.
  uint64_t flash_bytes = 0;   ///< Payload bytes moved across the flash bus.
  double tx_energy_j = 0.0;   ///< Sender-side radio energy, joules.
  double rx_energy_j = 0.0;   ///< Receiver-side radio energy, joules.
  double flash_energy_j = 0.0;///< Local flash I/O energy, joules.

  /// Element-wise accumulate.
  void Add(const TrafficCounters& other);
  /// Element-wise difference (this - other); counters must be monotone.
  TrafficCounters Since(const TrafficCounters& earlier) const;
  /// Total energy charged (radio + flash; flash is zero unless a deployment
  /// opts into flash accounting).
  double energy_j() const { return tx_energy_j + rx_energy_j + flash_energy_j; }
};

/// Interned identifier of a protocol-phase label ("mint.update", "tja.lb").
/// Ids are process-global: the same label always interns to the same id, so
/// algorithms cache the id of their string literals once and per-epoch phase
/// switches are an integer compare plus an array index instead of a
/// string-keyed map lookup.
using PhaseId = uint32_t;

/// One node's EWMA estimate of its current tree link's per-frame loss
/// (reliability layer). The slot is indexed by the *child* endpoint of the
/// link regardless of transfer direction — LinkLossProb is symmetric, so up
/// and down traffic share one estimate — and `to` records the other endpoint
/// so a churn re-parenting resets the estimate instead of inheriting a stale
/// one. Lanes only ever touch slots of their own subtree's nodes, so sharded
/// waves update estimators race-free, and the estimate evolves from the
/// sender's own loss draws alone — invariant under shard and thread count.
struct LinkEstimator {
  NodeId to = kNoNode;  ///< Other endpoint the estimate refers to.
  double ewma = 0.0;    ///< EWMA per-frame loss; seeded from the loss model.
};

/// Everything a Network mutates while an epoch runs, extracted into one
/// plain value type: the per-node battery/energy ledger, the admin up flags
/// and degradation episodes, the delivered-message accounting, the interned
/// per-phase counter arrays, and the per-node loss-RNG substreams of the
/// sharded execution path. Owning this as a value (rather than as loose
/// members with a cached interior pointer) is what makes Network copyable
/// and lets the shard runtime hand lanes disjoint slices of it: a lane only
/// ever touches the per-node entries of its own subtree, so parallel waves
/// write this struct race-free.
struct ShardState {
  /// Per-node energy ledger (battery budget included).
  std::vector<EnergyMeter> meters;
  /// 1 unless the node was administratively taken down (crash injection).
  std::vector<uint8_t> up;
  /// Extra per-frame loss in force at each node (degradation episodes).
  std::vector<double> extra_loss;
  /// Messages transmitted by each node (hotspot accounting).
  std::vector<uint64_t> sent_by;
  /// Grand-total counters.
  TrafficCounters total;
  /// Per-phase counters indexed by PhaseId; slots are allocated lazily the
  /// first time SetPhase selects the id. `phase_touched` marks slots this
  /// network actually selected (so by_phase() reports exactly the phases the
  /// run visited, zero-traffic ones included).
  std::vector<TrafficCounters> by_phase;
  std::vector<uint8_t> phase_touched;
  /// Per-node loss-RNG substreams, derived once (Rng::Split off the network
  /// RNG's attach-time state) when a ShardRuntime attaches. Empty on the
  /// serial path. In a sharded wave every transmission draws loss from the
  /// *sender's* substream, so outcomes are independent of how subtrees are
  /// packed into shards and of the worker-thread count.
  std::vector<util::Rng> node_rngs;
  /// Per-child-endpoint link-quality estimators (reliability layer). Sized
  /// always, consulted only when ReliabilityOptions::enabled.
  std::vector<LinkEstimator> link_est;
  /// Retransmissions each node may still spend this epoch; refilled by
  /// Network::BeginReliabilityEpoch. Zero everywhere while reliability is
  /// off (the adaptive path is never entered).
  std::vector<uint32_t> retry_budget_left;
  /// 1 when a wave deadline truncated this epoch (graceful degradation).
  /// Written only from serial sections; cleared by BeginReliabilityEpoch.
  uint8_t epoch_degraded = 0;
  /// Alive wave-order nodes the deadline cut this epoch, cumulative.
  uint32_t truncated_nodes = 0;

  /// Sizes the per-node arrays for `num_nodes` nodes with fresh batteries.
  void Reset(size_t num_nodes, double battery_j);
};

/// The bookkeeping one deferred (lane-local) transmission produces: the
/// counter delta the canonical epoch-boundary replay commits, and the
/// airtime (plus any reliability backoff) by which the shared clock advances
/// at the message's slot.
struct LaneSendEffect {
  TrafficCounters delta;
  TimeUs airtime = 0;
  bool sent = false;  ///< True when any attempt was charged (delta is live).
};

}  // namespace kspot::sim
