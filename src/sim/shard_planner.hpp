#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/routing_tree.hpp"
#include "sim/types.hpp"

namespace kspot::sim {

/// Index of a shard lane inside a ShardPlan.
using LaneId = uint32_t;

/// Sentinel for "not in any lane" (the sink, and detached nodes).
inline constexpr LaneId kNoLane = std::numeric_limits<LaneId>::max();

/// How a routing tree's converge-cast work is cut into independent lanes.
///
/// The cut is at the cluster heads: every depth-1 node (a child of the sink)
/// roots one subtree, and subtrees only interact at the sink, so lanes can
/// run concurrently. Each lane's member list is a *slice of the canonical
/// wave order* (relative order preserved), which is what makes the
/// epoch-boundary merge deterministic: replaying per-message effects in
/// global wave order reproduces the serial execution exactly, because every
/// non-root member precedes every root (depth >= 2 before depth 1) and roots
/// precede the sink.
struct ShardPlan {
  /// The shard count the plan was built for (before clamping to the number
  /// of cluster heads).
  size_t requested = 1;
  /// Per lane: member nodes in canonical wave-order (subtree roots included,
  /// sink excluded).
  std::vector<std::vector<NodeId>> lanes;
  /// Depth-1 subtree roots in canonical wave order — the order their
  /// deferred sends execute at the merge barrier.
  std::vector<NodeId> roots_in_order;
  /// Per node: the lane it belongs to (kNoLane for the sink and for nodes
  /// not in the wave order, i.e. detached by churn).
  std::vector<LaneId> lane_of;

  size_t lane_count() const { return lanes.size(); }
  /// True when the plan actually enables parallel execution.
  bool sharded() const { return lanes.size() > 1; }
};

/// Builds ShardPlans from a routing tree. Pure function of (tree, shards):
/// the same tree and shard request always produce the same plan, and —
/// because correctness never depends on *which* lane a subtree landed in,
/// only on the wave-order slices — any shard count yields identical results.
class ShardPlanner {
 public:
  /// Cuts `tree` into at most `shards` lanes (clamped to the number of
  /// cluster-head subtrees; 0 and 1 both mean one lane). Subtrees are packed
  /// onto lanes longest-processing-time first with deterministic tie-breaks,
  /// so lane loads balance for grids and stay reproducible everywhere.
  static ShardPlan Build(const RoutingTree& tree, size_t shards);
};

}  // namespace kspot::sim
