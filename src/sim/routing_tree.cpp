#include "sim/routing_tree.hpp"

#include <algorithm>
#include <deque>
#include <utility>

namespace kspot::sim {

namespace {

/// One round of the cluster-aware first-heard adoption discipline: every
/// node in `frontier` beacons (in rng-shuffled order, modeling radio/arrival
/// nondeterminism); each node of `candidates` (ascending; the nodes wanting
/// a parent) that heard one or more beacons adopts a same-room non-sink
/// broadcaster when it heard one, the first heard otherwise. Returns the
/// (node, parent) adoptions in node order. Shared by BuildClusterAware and
/// Repair so the re-attachment rule can never drift from the construction
/// rule.
///
/// The loop is candidate-driven: instead of every beaconing node scanning
/// its whole neighborhood for joiners (O(|frontier| * degree), which is the
/// entire attached component in a repair's first round), each of the few
/// candidates scans its own neighborhood and reconstructs beacon arrival
/// order from the shuffled frontier ranks — identical adoptions and
/// identical rng consumption, proportional to the churn instead of the
/// network.
std::vector<std::pair<NodeId, NodeId>> ClusterAwareAdoptionRound(
    const Topology& topology, const std::vector<std::vector<NodeId>>& adj,
    std::vector<NodeId>& frontier, const std::vector<NodeId>& candidates, util::Rng& rng,
    RepairWorkspace& workspace) {
  rng.Shuffle(frontier);
  size_t n = topology.num_nodes();
  if (workspace.frontier_pos.size() != n) workspace.frontier_pos.assign(n, -1);
  for (size_t i = 0; i < frontier.size(); ++i) {
    workspace.frontier_pos[frontier[i]] = static_cast<int32_t>(i);
  }
  std::vector<std::pair<NodeId, NodeId>> adoptions;
  for (NodeId v : candidates) {
    auto& heard = workspace.heard;
    heard.clear();
    for (NodeId u : adj[v]) {
      if (workspace.frontier_pos[u] >= 0) heard.emplace_back(workspace.frontier_pos[u], u);
    }
    if (heard.empty()) continue;
    std::sort(heard.begin(), heard.end());
    NodeId pick = kNoNode;
    for (const auto& [rank, u] : heard) {
      if (topology.room(u) == topology.room(v) && u != kSinkId) {
        pick = u;
        break;
      }
    }
    if (pick == kNoNode) pick = heard.front().second;
    adoptions.emplace_back(v, pick);
  }
  for (NodeId u : frontier) workspace.frontier_pos[u] = -1;
  return adoptions;
}

}  // namespace

RoutingTree RoutingTree::BuildFirstHeard(const Topology& topology, util::Rng& rng) {
  auto adj = topology.BuildAdjacency();
  size_t n = topology.num_nodes();
  std::vector<NodeId> parents(n, kNoNode);
  std::vector<bool> joined(n, false);
  joined[kSinkId] = true;
  // Frontier expansion: nodes that hold the beacon broadcast it; undecided
  // neighbors adopt the first broadcaster they hear. Randomizing the order of
  // broadcasters within a depth level models radio/arrival nondeterminism.
  std::vector<NodeId> frontier = {kSinkId};
  while (!frontier.empty()) {
    std::vector<NodeId> shuffled = frontier;
    rng.Shuffle(shuffled);
    std::vector<NodeId> next;
    for (NodeId u : shuffled) {
      for (NodeId v : adj[u]) {
        if (!joined[v]) {
          joined[v] = true;
          parents[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return FromParents(std::move(parents));
}

RoutingTree RoutingTree::BuildClusterAware(const Topology& topology, util::Rng& rng) {
  auto adj = topology.BuildAdjacency();
  size_t n = topology.num_nodes();
  std::vector<NodeId> parents(n, kNoNode);
  std::vector<bool> joined(n, false);
  joined[kSinkId] = true;
  // Frontier expansion like first-heard, but an undecided node that hears
  // several beacons in the same round adopts a same-room broadcaster when
  // one exists (in a real deployment the cluster id rides in the beacon and
  // the node filters on it).
  RepairWorkspace workspace;
  std::vector<NodeId> frontier = {kSinkId};
  std::vector<NodeId> candidates;
  candidates.reserve(n - 1);
  for (NodeId v = 0; v < n; ++v) {
    if (v != kSinkId) candidates.push_back(v);
  }
  while (!frontier.empty()) {
    auto adoptions =
        ClusterAwareAdoptionRound(topology, adj, frontier, candidates, rng, workspace);
    frontier.clear();
    for (const auto& [v, parent] : adoptions) {
      parents[v] = parent;
      joined[v] = true;
      frontier.push_back(v);
    }
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(), [&](NodeId v) { return joined[v]; }),
        candidates.end());
  }
  return FromParents(std::move(parents));
}

RoutingTree RoutingTree::BuildMinHop(const Topology& topology) {
  auto adj = topology.BuildAdjacency();
  for (auto& neighbors : adj) std::sort(neighbors.begin(), neighbors.end());
  size_t n = topology.num_nodes();
  std::vector<NodeId> parents(n, kNoNode);
  std::vector<bool> joined(n, false);
  joined[kSinkId] = true;
  std::deque<NodeId> queue = {kSinkId};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : adj[u]) {
      if (!joined[v]) {
        joined[v] = true;
        parents[v] = u;
        queue.push_back(v);
      }
    }
  }
  return FromParents(std::move(parents));
}

RoutingTree RoutingTree::FromParents(std::vector<NodeId> parents) {
  RoutingTree tree;
  tree.parents_ = std::move(parents);
  tree.FinishConstruction();
  return tree;
}

void RoutingTree::FinishConstruction() {
  size_t n = parents_.size();
  // Clear-in-place instead of assign: repeated repairs (churn) keep the
  // per-node children capacity instead of reallocating every pass.
  if (children_.size() == n) {
    for (auto& c : children_) c.clear();
  } else {
    children_.assign(n, {});
  }
  depths_.assign(n, 0);
  attached_.assign(n, 0);
  // Filling in ascending node order leaves every children list sorted; no
  // per-list sort needed (repairs rebuild this every churn event).
  for (size_t i = 0; i < n; ++i) {
    if (parents_[i] != kNoNode) children_[parents_[i]].push_back(static_cast<NodeId>(i));
  }
  // Depths via pre-order walk from the sink. Nodes stranded by churn (no
  // parent chain to the sink) are never visited: they keep depth 0, stay out
  // of pre/post order and report attached() == false, so the epoch waves
  // simply skip them.
  pre_order_.clear();
  pre_order_.reserve(n);
  std::vector<NodeId> stack = {kSinkId};
  attached_[kSinkId] = 1;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    pre_order_.push_back(u);
    for (auto it = children_[u].rbegin(); it != children_[u].rend(); ++it) {
      depths_[*it] = depths_[u] + 1;
      attached_[*it] = 1;
      stack.push_back(*it);
    }
  }
  max_depth_ = 0;
  for (size_t i = 0; i < n; ++i) max_depth_ = std::max(max_depth_, depths_[i]);
  // Post order = reverse of a pre-order that visits children in reverse; the
  // simple trick: children-before-parent ordering by sorting pre_order_
  // reversed works because pre_order_ lists every parent before its children.
  post_order_.assign(pre_order_.rbegin(), pre_order_.rend());
  // Slot-schedule order: the epoch scheduler fires node p (the p-th entry of
  // post_order_) at slot (max_depth_ - depth) plus an intra-slot offset of p.
  // Reproducing the (time, seq) order the event queue executed transmissions
  // in means sorting by that key; as long as the intra-slot offsets cannot
  // spill into the next slot (n < kSlotUs, i.e. any realistic network), that
  // is simply "depth descending, post-order-stable" — an O(n) bucket fill.
  wave_order_.resize(post_order_.size());
  if (static_cast<TimeUs>(post_order_.size()) < kSlotUs) {
    std::vector<size_t> cursor(static_cast<size_t>(max_depth_) + 1, 0);
    for (NodeId node : post_order_) ++cursor[depths_[node]];
    size_t acc = 0;
    for (int d = max_depth_; d >= 0; --d) {
      size_t count = cursor[d];
      cursor[d] = acc;
      acc += count;
    }
    for (NodeId node : post_order_) wave_order_[cursor[depths_[node]]++] = node;
  } else {
    wave_order_ = post_order_;
    std::vector<uint64_t> slot_key(n, 0);
    for (size_t p = 0; p < post_order_.size(); ++p) {
      NodeId node = post_order_[p];
      slot_key[node] =
          static_cast<uint64_t>(max_depth_ - depths_[node]) * kSlotUs + static_cast<uint64_t>(p);
    }
    std::stable_sort(wave_order_.begin(), wave_order_.end(),
                     [&](NodeId a, NodeId b) { return slot_key[a] < slot_key[b]; });
  }
}

RepairReport RoutingTree::Repair(const Topology& topology,
                                 const std::function<bool(NodeId)>& is_up, util::Rng& rng) {
  return Repair(topology, topology.BuildAdjacency(), is_up, rng);
}

RepairReport RoutingTree::Repair(const Topology& topology,
                                 const std::vector<std::vector<NodeId>>& adj,
                                 const std::function<bool(NodeId)>& is_up, util::Rng& rng,
                                 RepairWorkspace* workspace) {
  RepairWorkspace local;
  RepairWorkspace& ws = workspace != nullptr ? *workspace : local;
  size_t n = parents_.size();
  RepairReport report;
  // Phase 1 — strip the dead. A dead node leaves the tree entirely; its
  // children lose their parent and become orphan-subtree roots.
  for (size_t i = 0; i < n; ++i) {
    NodeId v = static_cast<NodeId>(i);
    if (v == kSinkId) continue;
    if (!is_up(v)) {
      if (parents_[v] != kNoNode) {
        report.removed.emplace_back(v, parents_[v]);
        parents_[v] = kNoNode;
        ++report.dead_removed;
        report.changed = true;
      }
      continue;
    }
    if (parents_[v] != kNoNode && !is_up(parents_[v])) {
      parents_[v] = kNoNode;
      report.changed = true;
    }
  }
  // Remaining parent edges connect up nodes only; the attached component is
  // whatever still reaches the sink over them.
  if (ws.kids.size() == n) {
    for (auto& k : ws.kids) k.clear();
  } else {
    ws.kids.assign(n, {});
  }
  for (size_t i = 0; i < n; ++i) {
    if (parents_[i] != kNoNode) ws.kids[parents_[i]].push_back(static_cast<NodeId>(i));
  }
  ws.attached.assign(n, 0);
  {
    ws.stack.assign(1, kSinkId);
    ws.attached[kSinkId] = 1;
    while (!ws.stack.empty()) {
      NodeId u = ws.stack.back();
      ws.stack.pop_back();
      for (NodeId c : ws.kids[u]) {
        ws.attached[c] = 1;
        ws.stack.push_back(c);
      }
    }
  }
  // Phase 2 — first-heard-from re-attachment rounds, using the same
  // adoption discipline the cluster-aware build uses: a detached up node
  // that hears beacons adopts a same-room broadcaster when one exists and
  // the first heard otherwise, then its intact subtree rides along and
  // beacons next round.
  ws.frontier.clear();
  ws.candidates.clear();
  for (size_t i = 0; i < n; ++i) {
    if (ws.attached[i]) {
      ws.frontier.push_back(static_cast<NodeId>(i));
    } else if (is_up(static_cast<NodeId>(i))) {
      ws.candidates.push_back(static_cast<NodeId>(i));
    }
  }
  // Every round shuffles the frontier even when no candidate is left — the
  // rng consumption must match the historical adoption rounds exactly, or
  // repeated Repair calls in one epoch (mid-repair battery deaths) would
  // diverge from the seed behaviour.
  while (!ws.frontier.empty()) {
    auto adoptions =
        ClusterAwareAdoptionRound(topology, adj, ws.frontier, ws.candidates, rng, ws);
    ws.frontier.clear();
    // A joiner's surviving subtree is attached with it; all of the newly
    // attached beacon in the next round.
    for (const auto& [v, parent] : adoptions) {
      parents_[v] = parent;
      report.reattached.push_back({v, parent});
      report.changed = true;
    }
    for (const auto& [root, parent] : adoptions) {
      ws.stack.assign(1, root);
      while (!ws.stack.empty()) {
        NodeId u = ws.stack.back();
        ws.stack.pop_back();
        if (ws.attached[u]) continue;
        ws.attached[u] = 1;
        ws.frontier.push_back(u);
        for (NodeId c : ws.kids[u]) {
          // The old edge still holds only if c was not itself re-parented
          // this round (it then roots its own attached subtree).
          if (parents_[c] == u) ws.stack.push_back(c);
        }
      }
    }
    if (!adoptions.empty()) {
      ws.candidates.erase(std::remove_if(ws.candidates.begin(), ws.candidates.end(),
                                         [&](NodeId v) { return ws.attached[v] != 0; }),
                          ws.candidates.end());
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (is_up(static_cast<NodeId>(i)) && !ws.attached[i]) ++report.detached;
  }
  FinishConstruction();
  return report;
}

size_t RoutingTree::SubtreeSize(NodeId id) const {
  size_t count = 0;
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    ++count;
    for (NodeId c : children_[u]) stack.push_back(c);
  }
  return count;
}

}  // namespace kspot::sim
