#include "sim/routing_tree.hpp"

#include <algorithm>
#include <deque>

namespace kspot::sim {

RoutingTree RoutingTree::BuildFirstHeard(const Topology& topology, util::Rng& rng) {
  auto adj = topology.BuildAdjacency();
  size_t n = topology.num_nodes();
  std::vector<NodeId> parents(n, kNoNode);
  std::vector<bool> joined(n, false);
  joined[kSinkId] = true;
  // Frontier expansion: nodes that hold the beacon broadcast it; undecided
  // neighbors adopt the first broadcaster they hear. Randomizing the order of
  // broadcasters within a depth level models radio/arrival nondeterminism.
  std::vector<NodeId> frontier = {kSinkId};
  while (!frontier.empty()) {
    std::vector<NodeId> shuffled = frontier;
    rng.Shuffle(shuffled);
    std::vector<NodeId> next;
    for (NodeId u : shuffled) {
      for (NodeId v : adj[u]) {
        if (!joined[v]) {
          joined[v] = true;
          parents[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return FromParents(std::move(parents));
}

RoutingTree RoutingTree::BuildClusterAware(const Topology& topology, util::Rng& rng) {
  auto adj = topology.BuildAdjacency();
  size_t n = topology.num_nodes();
  std::vector<NodeId> parents(n, kNoNode);
  std::vector<bool> joined(n, false);
  joined[kSinkId] = true;
  // Frontier expansion like first-heard, but an undecided node that hears
  // several beacons in the same round adopts a same-room broadcaster when
  // one exists (in a real deployment the cluster id rides in the beacon and
  // the node filters on it).
  std::vector<NodeId> frontier = {kSinkId};
  while (!frontier.empty()) {
    std::vector<NodeId> shuffled = frontier;
    rng.Shuffle(shuffled);
    // Collect, per undecided node, the broadcasters it heard this round.
    std::vector<std::vector<NodeId>> heard(n);
    for (NodeId u : shuffled) {
      for (NodeId v : adj[u]) {
        if (!joined[v]) heard[v].push_back(u);
      }
    }
    std::vector<NodeId> next;
    for (NodeId v = 0; v < n; ++v) {
      if (joined[v] || heard[v].empty()) continue;
      NodeId pick = kNoNode;
      for (NodeId u : heard[v]) {
        if (topology.room(u) == topology.room(v) && u != kSinkId) {
          pick = u;
          break;
        }
      }
      if (pick == kNoNode) pick = heard[v].front();
      parents[v] = pick;
      joined[v] = true;
      next.push_back(v);
    }
    frontier = std::move(next);
  }
  return FromParents(std::move(parents));
}

RoutingTree RoutingTree::BuildMinHop(const Topology& topology) {
  auto adj = topology.BuildAdjacency();
  for (auto& neighbors : adj) std::sort(neighbors.begin(), neighbors.end());
  size_t n = topology.num_nodes();
  std::vector<NodeId> parents(n, kNoNode);
  std::vector<bool> joined(n, false);
  joined[kSinkId] = true;
  std::deque<NodeId> queue = {kSinkId};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : adj[u]) {
      if (!joined[v]) {
        joined[v] = true;
        parents[v] = u;
        queue.push_back(v);
      }
    }
  }
  return FromParents(std::move(parents));
}

RoutingTree RoutingTree::FromParents(std::vector<NodeId> parents) {
  RoutingTree tree;
  tree.parents_ = std::move(parents);
  tree.FinishConstruction();
  return tree;
}

void RoutingTree::FinishConstruction() {
  size_t n = parents_.size();
  children_.assign(n, {});
  depths_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (parents_[i] != kNoNode) children_[parents_[i]].push_back(static_cast<NodeId>(i));
  }
  for (auto& c : children_) std::sort(c.begin(), c.end());
  // Depths via pre-order walk from the sink.
  pre_order_.clear();
  pre_order_.reserve(n);
  std::vector<NodeId> stack = {kSinkId};
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    pre_order_.push_back(u);
    for (auto it = children_[u].rbegin(); it != children_[u].rend(); ++it) {
      depths_[*it] = depths_[u] + 1;
      stack.push_back(*it);
    }
  }
  max_depth_ = 0;
  for (size_t i = 0; i < n; ++i) max_depth_ = std::max(max_depth_, depths_[i]);
  // Post order = reverse of a pre-order that visits children in reverse; the
  // simple trick: children-before-parent ordering by sorting pre_order_
  // reversed works because pre_order_ lists every parent before its children.
  post_order_.assign(pre_order_.rbegin(), pre_order_.rend());
}

size_t RoutingTree::SubtreeSize(NodeId id) const {
  size_t count = 0;
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    ++count;
    for (NodeId c : children_[u]) stack.push_back(c);
  }
  return count;
}

}  // namespace kspot::sim
