#include "sim/routing_tree.hpp"

#include <algorithm>
#include <deque>
#include <utility>

namespace kspot::sim {

namespace {

/// One round of the cluster-aware first-heard adoption discipline: every
/// node in `frontier` beacons (in rng-shuffled order, modeling radio/arrival
/// nondeterminism); each node for which `wants_parent` holds and that heard
/// one or more beacons adopts a same-room non-sink broadcaster when it heard
/// one, the first heard otherwise. Returns the (node, parent) adoptions in
/// node order. Shared by BuildClusterAware and Repair so the re-attachment
/// rule can never drift from the construction rule.
std::vector<std::pair<NodeId, NodeId>> ClusterAwareAdoptionRound(
    const Topology& topology, const std::vector<std::vector<NodeId>>& adj,
    std::vector<NodeId> frontier, const std::function<bool(NodeId)>& wants_parent,
    util::Rng& rng) {
  rng.Shuffle(frontier);
  size_t n = topology.num_nodes();
  std::vector<std::vector<NodeId>> heard(n);
  for (NodeId u : frontier) {
    for (NodeId v : adj[u]) {
      if (wants_parent(v)) heard[v].push_back(u);
    }
  }
  std::vector<std::pair<NodeId, NodeId>> adoptions;
  for (NodeId v = 0; v < n; ++v) {
    if (heard[v].empty()) continue;
    NodeId pick = kNoNode;
    for (NodeId u : heard[v]) {
      if (topology.room(u) == topology.room(v) && u != kSinkId) {
        pick = u;
        break;
      }
    }
    if (pick == kNoNode) pick = heard[v].front();
    adoptions.emplace_back(v, pick);
  }
  return adoptions;
}

}  // namespace

RoutingTree RoutingTree::BuildFirstHeard(const Topology& topology, util::Rng& rng) {
  auto adj = topology.BuildAdjacency();
  size_t n = topology.num_nodes();
  std::vector<NodeId> parents(n, kNoNode);
  std::vector<bool> joined(n, false);
  joined[kSinkId] = true;
  // Frontier expansion: nodes that hold the beacon broadcast it; undecided
  // neighbors adopt the first broadcaster they hear. Randomizing the order of
  // broadcasters within a depth level models radio/arrival nondeterminism.
  std::vector<NodeId> frontier = {kSinkId};
  while (!frontier.empty()) {
    std::vector<NodeId> shuffled = frontier;
    rng.Shuffle(shuffled);
    std::vector<NodeId> next;
    for (NodeId u : shuffled) {
      for (NodeId v : adj[u]) {
        if (!joined[v]) {
          joined[v] = true;
          parents[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  return FromParents(std::move(parents));
}

RoutingTree RoutingTree::BuildClusterAware(const Topology& topology, util::Rng& rng) {
  auto adj = topology.BuildAdjacency();
  size_t n = topology.num_nodes();
  std::vector<NodeId> parents(n, kNoNode);
  std::vector<bool> joined(n, false);
  joined[kSinkId] = true;
  // Frontier expansion like first-heard, but an undecided node that hears
  // several beacons in the same round adopts a same-room broadcaster when
  // one exists (in a real deployment the cluster id rides in the beacon and
  // the node filters on it).
  std::vector<NodeId> frontier = {kSinkId};
  while (!frontier.empty()) {
    auto adoptions = ClusterAwareAdoptionRound(
        topology, adj, std::move(frontier), [&](NodeId v) { return !joined[v]; }, rng);
    frontier.clear();
    for (const auto& [v, parent] : adoptions) {
      parents[v] = parent;
      joined[v] = true;
      frontier.push_back(v);
    }
  }
  return FromParents(std::move(parents));
}

RoutingTree RoutingTree::BuildMinHop(const Topology& topology) {
  auto adj = topology.BuildAdjacency();
  for (auto& neighbors : adj) std::sort(neighbors.begin(), neighbors.end());
  size_t n = topology.num_nodes();
  std::vector<NodeId> parents(n, kNoNode);
  std::vector<bool> joined(n, false);
  joined[kSinkId] = true;
  std::deque<NodeId> queue = {kSinkId};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : adj[u]) {
      if (!joined[v]) {
        joined[v] = true;
        parents[v] = u;
        queue.push_back(v);
      }
    }
  }
  return FromParents(std::move(parents));
}

RoutingTree RoutingTree::FromParents(std::vector<NodeId> parents) {
  RoutingTree tree;
  tree.parents_ = std::move(parents);
  tree.FinishConstruction();
  return tree;
}

void RoutingTree::FinishConstruction() {
  size_t n = parents_.size();
  children_.assign(n, {});
  depths_.assign(n, 0);
  attached_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (parents_[i] != kNoNode) children_[parents_[i]].push_back(static_cast<NodeId>(i));
  }
  for (auto& c : children_) std::sort(c.begin(), c.end());
  // Depths via pre-order walk from the sink. Nodes stranded by churn (no
  // parent chain to the sink) are never visited: they keep depth 0, stay out
  // of pre/post order and report attached() == false, so the epoch waves
  // simply skip them.
  pre_order_.clear();
  pre_order_.reserve(n);
  std::vector<NodeId> stack = {kSinkId};
  attached_[kSinkId] = 1;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    pre_order_.push_back(u);
    for (auto it = children_[u].rbegin(); it != children_[u].rend(); ++it) {
      depths_[*it] = depths_[u] + 1;
      attached_[*it] = 1;
      stack.push_back(*it);
    }
  }
  max_depth_ = 0;
  for (size_t i = 0; i < n; ++i) max_depth_ = std::max(max_depth_, depths_[i]);
  // Post order = reverse of a pre-order that visits children in reverse; the
  // simple trick: children-before-parent ordering by sorting pre_order_
  // reversed works because pre_order_ lists every parent before its children.
  post_order_.assign(pre_order_.rbegin(), pre_order_.rend());
}

RepairReport RoutingTree::Repair(const Topology& topology,
                                 const std::function<bool(NodeId)>& is_up, util::Rng& rng) {
  return Repair(topology, topology.BuildAdjacency(), is_up, rng);
}

RepairReport RoutingTree::Repair(const Topology& topology,
                                 const std::vector<std::vector<NodeId>>& adj,
                                 const std::function<bool(NodeId)>& is_up, util::Rng& rng) {
  size_t n = parents_.size();
  RepairReport report;
  // Phase 1 — strip the dead. A dead node leaves the tree entirely; its
  // children lose their parent and become orphan-subtree roots.
  for (size_t i = 0; i < n; ++i) {
    NodeId v = static_cast<NodeId>(i);
    if (v == kSinkId) continue;
    if (!is_up(v)) {
      if (parents_[v] != kNoNode) {
        parents_[v] = kNoNode;
        ++report.dead_removed;
        report.changed = true;
      }
      continue;
    }
    if (parents_[v] != kNoNode && !is_up(parents_[v])) {
      parents_[v] = kNoNode;
      report.changed = true;
    }
  }
  // Remaining parent edges connect up nodes only; the attached component is
  // whatever still reaches the sink over them.
  std::vector<std::vector<NodeId>> kids(n);
  for (size_t i = 0; i < n; ++i) {
    if (parents_[i] != kNoNode) kids[parents_[i]].push_back(static_cast<NodeId>(i));
  }
  std::vector<uint8_t> att(n, 0);
  {
    std::vector<NodeId> stack = {kSinkId};
    att[kSinkId] = 1;
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      for (NodeId c : kids[u]) {
        att[c] = 1;
        stack.push_back(c);
      }
    }
  }
  // Phase 2 — first-heard-from re-attachment rounds, using the same
  // adoption discipline the cluster-aware build uses: a detached up node
  // that hears beacons adopts a same-room broadcaster when one exists and
  // the first heard otherwise, then its intact subtree rides along and
  // beacons next round.
  std::vector<NodeId> frontier;
  for (size_t i = 0; i < n; ++i) {
    if (att[i]) frontier.push_back(static_cast<NodeId>(i));
  }
  while (!frontier.empty()) {
    auto adoptions = ClusterAwareAdoptionRound(
        topology, adj, std::move(frontier),
        [&](NodeId v) { return is_up(v) && !att[v]; }, rng);
    frontier.clear();
    std::vector<NodeId> joined;
    for (const auto& [v, parent] : adoptions) {
      parents_[v] = parent;
      report.reattached.push_back({v, parent});
      report.changed = true;
      joined.push_back(v);
    }
    // A joiner's surviving subtree is attached with it; all of the newly
    // attached beacon in the next round.
    for (NodeId root : joined) {
      std::vector<NodeId> stack = {root};
      while (!stack.empty()) {
        NodeId u = stack.back();
        stack.pop_back();
        if (att[u]) continue;
        att[u] = 1;
        frontier.push_back(u);
        for (NodeId c : kids[u]) {
          // The old edge still holds only if c was not itself re-parented
          // this round (it then roots its own attached subtree).
          if (parents_[c] == u) stack.push_back(c);
        }
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (is_up(static_cast<NodeId>(i)) && !att[i]) ++report.detached;
  }
  FinishConstruction();
  return report;
}

size_t RoutingTree::SubtreeSize(NodeId id) const {
  size_t count = 0;
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    ++count;
    for (NodeId c : children_[u]) stack.push_back(c);
  }
  return count;
}

}  // namespace kspot::sim
