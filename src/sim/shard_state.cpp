#include "sim/shard_state.hpp"

namespace kspot::sim {

void TrafficCounters::Add(const TrafficCounters& other) {
  messages += other.messages;
  frames += other.frames;
  payload_bytes += other.payload_bytes;
  onair_bytes += other.onair_bytes;
  retries += other.retries;
  backoff_us += other.backoff_us;
  flash_reads += other.flash_reads;
  flash_writes += other.flash_writes;
  flash_bytes += other.flash_bytes;
  tx_energy_j += other.tx_energy_j;
  rx_energy_j += other.rx_energy_j;
  flash_energy_j += other.flash_energy_j;
}

TrafficCounters TrafficCounters::Since(const TrafficCounters& earlier) const {
  TrafficCounters d;
  d.messages = messages - earlier.messages;
  d.frames = frames - earlier.frames;
  d.payload_bytes = payload_bytes - earlier.payload_bytes;
  d.onair_bytes = onair_bytes - earlier.onair_bytes;
  d.retries = retries - earlier.retries;
  d.backoff_us = backoff_us - earlier.backoff_us;
  d.flash_reads = flash_reads - earlier.flash_reads;
  d.flash_writes = flash_writes - earlier.flash_writes;
  d.flash_bytes = flash_bytes - earlier.flash_bytes;
  d.tx_energy_j = tx_energy_j - earlier.tx_energy_j;
  d.rx_energy_j = rx_energy_j - earlier.rx_energy_j;
  d.flash_energy_j = flash_energy_j - earlier.flash_energy_j;
  return d;
}

void ShardState::Reset(size_t num_nodes, double battery_j) {
  meters.assign(num_nodes, EnergyMeter(battery_j));
  up.assign(num_nodes, 1);
  extra_loss.assign(num_nodes, 0.0);
  sent_by.assign(num_nodes, 0);
  total = TrafficCounters{};
  by_phase.clear();
  phase_touched.clear();
  node_rngs.clear();
  link_est.assign(num_nodes, LinkEstimator{});
  retry_budget_left.assign(num_nodes, 0);
  epoch_degraded = 0;
  truncated_nodes = 0;
}

}  // namespace kspot::sim
