#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/network.hpp"
#include "sim/shard_planner.hpp"
#include "sim/shard_state.hpp"
#include "util/task_pool.hpp"

namespace kspot::sim {

/// Drives parallel epoch execution for one Network: owns the shard plan (cut
/// lazily from the current routing tree and rebuilt after churn repair), the
/// worker pool, and the per-node lane-send capture scratch. Attaching a
/// runtime also seeds the network's per-node RNG substreams, so every
/// lane-scoped transmission draws loss from its sender's stream — that is
/// what makes results invariant under shard count and thread count.
///
/// One runtime per network; the runtime must outlive no network it is
/// attached to (it detaches itself on destruction).
class ShardRuntime {
 public:
  struct Options {
    /// Number of shard lanes to cut the tree into (clamped to the number of
    /// cluster-head subtrees). 1 keeps the serial path.
    size_t shards = 1;
    /// Worker threads for lane execution; 0 picks the hardware concurrency.
    size_t threads = 0;
  };

  /// Attaches to `net` (which must outlive this runtime or be destroyed
  /// after it) and seeds net->state().node_rngs with per-node substreams
  /// split off the network's loss RNG. Splitting is a pure function of the
  /// parent stream, so attaching does not perturb the serial draw sequence.
  ShardRuntime(Network* net, Options options);
  ~ShardRuntime();

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  /// True when sharded waves should run: more than one lane was requested
  /// and the current tree actually yields more than one.
  bool ShouldShard();

  /// The shard plan for the network's current tree (built on first use).
  const ShardPlan& plan();

  /// Drops the cached plan; call after any topology change (churn repair)
  /// so the next wave re-cuts the tree.
  void InvalidateTopology() { plan_.reset(); }

  /// Lanes in the current plan.
  size_t lane_count() { return plan().lane_count(); }

  /// The worker pool (created on first use).
  util::TaskPool& pool();

  /// Runs `fn(lane)` for every lane of the current plan on the pool. With
  /// observability enabled this also records per-lane wall-time spans, the
  /// "shard.lane_wall_us" histogram, and the "shard.lane_imbalance" gauge
  /// (slowest lane / mean lane); with it off this is exactly
  /// pool().ParallelFor(lane_count(), fn). Timing is wall-clock only and
  /// never feeds back into the wave — sharded results stay bit-identical.
  void RunLanes(const std::function<void(size_t)>& fn);

  /// Per-node lane-send capture slots, sized to the network. Each node sends
  /// at most once per UpWave, so a slot per node suffices; lanes reset the
  /// slots of the nodes they visit.
  std::vector<LaneSendEffect>& captures();

  size_t shards() const { return options_.shards; }
  Network& network() { return *net_; }

 private:
  Network* net_;
  Options options_;
  std::optional<ShardPlan> plan_;
  std::unique_ptr<util::TaskPool> pool_;
  std::vector<LaneSendEffect> captures_;
  std::vector<double> lane_wall_us_;
};

}  // namespace kspot::sim
