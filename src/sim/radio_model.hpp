#pragma once

#include <cstddef>

namespace kspot::sim {

/// MICA2 / CC1000 radio cost model.
///
/// The demo deployment uses MICA2 motes: 38.4 kbit/s, TinyOS TOS_Msg frames
/// with a 29-byte application payload and 7 bytes of header/CRC, preceded by
/// the CC1000 preamble + sync word. A logical message larger than one payload
/// is fragmented into ceil(bytes / 29) frames (TinyOS has no radio-level
/// fragmentation, so multi-frame messages are exactly what the nesC client
/// would send as consecutive packets).
struct RadioModel {
  /// Radio bit rate, bits per second (MICA2: 38.4 kbit/s).
  double bitrate_bps = 38400.0;
  /// Maximum application payload per frame (TOS_Msg): 29 bytes.
  size_t max_payload_bytes = 29;
  /// Per-frame header + CRC bytes (TOS_Msg overhead).
  size_t frame_overhead_bytes = 7;
  /// Preamble + sync bytes transmitted before each frame (CC1000 default).
  size_t preamble_bytes = 20;

  /// Number of frames needed for a logical payload (>= 1; a zero-byte
  /// message, e.g. a bare epoch beacon, still occupies one frame).
  size_t FramesForPayload(size_t payload_bytes) const {
    if (payload_bytes == 0) return 1;
    return (payload_bytes + max_payload_bytes - 1) / max_payload_bytes;
  }

  /// Total bytes on the air for a logical payload (frames x overhead + data).
  size_t OnAirBytes(size_t payload_bytes) const {
    size_t frames = FramesForPayload(payload_bytes);
    return payload_bytes + frames * (frame_overhead_bytes + preamble_bytes);
  }

  /// Airtime in seconds for a logical payload.
  double AirtimeSeconds(size_t payload_bytes) const {
    return static_cast<double>(OnAirBytes(payload_bytes)) * 8.0 / bitrate_bps;
  }

  /// Airtime in microseconds for a logical payload.
  uint64_t AirtimeMicros(size_t payload_bytes) const {
    return static_cast<uint64_t>(AirtimeSeconds(payload_bytes) * 1e6);
  }
};

}  // namespace kspot::sim
