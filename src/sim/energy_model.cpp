#include "sim/energy_model.hpp"

#include <algorithm>

namespace kspot::sim {

double EnergyMeter::remaining_fraction() const {
  if (battery_j_ <= 0.0) return 1.0;
  return std::max(0.0, 1.0 - total_joules() / battery_j_);
}

}  // namespace kspot::sim
