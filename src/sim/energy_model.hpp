#pragma once

#include <cstddef>

namespace kspot::sim {

/// First-order MICA2 energy model (3 V supply; CC1000 currents from the
/// MICA2 datasheet, the same model used in the TAG / TinyDB evaluations).
struct EnergyModel {
  /// Supply voltage, volts.
  double voltage = 3.0;
  /// Radio transmit current, amperes (CC1000 at ~5 dBm).
  double tx_current_a = 0.027;
  /// Radio receive/listen current, amperes.
  double rx_current_a = 0.010;
  /// MCU active current, amperes (ATmega128L).
  double cpu_active_current_a = 0.008;
  /// Whole-node sleep current, amperes.
  double sleep_current_a = 30e-6;

  /// Energy to transmit for `airtime_s` seconds, joules.
  double TxEnergy(double airtime_s) const { return voltage * tx_current_a * airtime_s; }
  /// Energy to receive for `airtime_s` seconds, joules.
  double RxEnergy(double airtime_s) const { return voltage * rx_current_a * airtime_s; }
  /// Energy for `cpu_s` seconds of active CPU, joules.
  double CpuEnergy(double cpu_s) const { return voltage * cpu_active_current_a * cpu_s; }
  /// Energy for `sleep_s` seconds asleep, joules.
  double SleepEnergy(double sleep_s) const { return voltage * sleep_current_a * sleep_s; }
};

/// Per-node energy ledger with an optional battery budget; when the budget is
/// exhausted the node is considered dead (used for network-lifetime studies).
class EnergyMeter {
 public:
  /// Creates a meter with `battery_j` joules of budget; <= 0 means unlimited.
  explicit EnergyMeter(double battery_j = 0.0) : battery_j_(battery_j) {}

  /// Records transmit energy.
  void AddTx(double joules) { tx_j_ += joules; }
  /// Records receive energy.
  void AddRx(double joules) { rx_j_ += joules; }
  /// Records CPU energy.
  void AddCpu(double joules) { cpu_j_ += joules; }
  /// Records sleep energy.
  void AddSleep(double joules) { sleep_j_ += joules; }
  /// Records local storage (flash) I/O energy.
  void AddStorage(double joules) { storage_j_ += joules; }

  /// Joules spent transmitting.
  double tx_joules() const { return tx_j_; }
  /// Joules spent receiving.
  double rx_joules() const { return rx_j_; }
  /// Joules spent computing.
  double cpu_joules() const { return cpu_j_; }
  /// Joules spent sleeping.
  double sleep_joules() const { return sleep_j_; }
  /// Joules spent on local storage (flash) I/O.
  double storage_joules() const { return storage_j_; }
  /// Total joules spent.
  double total_joules() const { return tx_j_ + rx_j_ + cpu_j_ + sleep_j_ + storage_j_; }

  /// Battery budget (joules); <= 0 means unlimited.
  double battery_joules() const { return battery_j_; }
  /// True while the node has battery left (or has no budget).
  bool alive() const { return battery_j_ <= 0.0 || total_joules() < battery_j_; }
  /// Remaining fraction of battery in [0,1]; 1 when unlimited.
  double remaining_fraction() const;

 private:
  double tx_j_ = 0.0;
  double rx_j_ = 0.0;
  double cpu_j_ = 0.0;
  double sleep_j_ = 0.0;
  double storage_j_ = 0.0;
  double battery_j_ = 0.0;
};

}  // namespace kspot::sim
