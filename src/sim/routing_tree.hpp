#pragma once

#include <vector>

#include "sim/topology.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace kspot::sim {

/// Sink-rooted routing tree over a topology.
///
/// TinyDB/TAG build this tree with a flooded query beacon: each node adopts
/// the first neighbor it hears the beacon from as its parent ("first-heard-
/// from"). `BuildFirstHeard` reproduces that: a BFS from the sink where the
/// arrival order of same-depth beacons is randomized by `rng`.
class RoutingTree {
 public:
  RoutingTree() = default;

  /// Builds the first-heard-from tree over `topology`'s disc graph.
  /// The topology must be connected.
  static RoutingTree BuildFirstHeard(const Topology& topology, util::Rng& rng);

  /// Builds a minimum-hop (plain BFS, lowest-id tiebreak) tree. Deterministic.
  static RoutingTree BuildMinHop(const Topology& topology);

  /// Builds a *cluster-aware* first-heard tree: joining nodes prefer a parent
  /// from their own room when one is in range, so rooms form contiguous
  /// subtrees and GROUP BY groups close low in the hierarchy. This is the
  /// tree the KSpot server builds when the Configuration Panel has told it
  /// which nodes share a physical region (Section II) — the property MINT's
  /// in-network view hierarchy exploits.
  static RoutingTree BuildClusterAware(const Topology& topology, util::Rng& rng);

  /// Builds a tree from an explicit parent vector (parents[sink] == kNoNode).
  static RoutingTree FromParents(std::vector<NodeId> parents);

  /// Parent of `id`; kNoNode for the sink.
  NodeId parent(NodeId id) const { return parents_[id]; }

  /// Children of `id`, ascending.
  const std::vector<NodeId>& children(NodeId id) const { return children_[id]; }

  /// Hop distance from the sink.
  int depth(NodeId id) const { return depths_[id]; }

  /// Maximum depth over all nodes (tree height).
  int max_depth() const { return max_depth_; }

  /// Number of nodes.
  size_t num_nodes() const { return parents_.size(); }

  /// Nodes in post order (every node after all of its children): the order in
  /// which the TAG epoch schedule fires transmissions, leaves first.
  const std::vector<NodeId>& post_order() const { return post_order_; }

  /// Nodes in pre order (sink first): dissemination order.
  const std::vector<NodeId>& pre_order() const { return pre_order_; }

  /// Number of nodes in the subtree rooted at `id` (including itself).
  size_t SubtreeSize(NodeId id) const;

 private:
  std::vector<NodeId> parents_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<int> depths_;
  std::vector<NodeId> post_order_;
  std::vector<NodeId> pre_order_;
  int max_depth_ = 0;

  void FinishConstruction();
};

}  // namespace kspot::sim
