#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "sim/topology.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace kspot::sim {

/// One parent adoption performed by RoutingTree::Repair (the join handshake
/// the fault layer charges to the radio).
struct RepairOp {
  NodeId node = kNoNode;        ///< The re-attaching node.
  NodeId new_parent = kNoNode;  ///< The parent it adopted.
};

/// What one RoutingTree::Repair pass did to the tree.
struct RepairReport {
  /// Parent adoptions in attachment order (round by round).
  std::vector<RepairOp> reattached;
  /// Nodes stripped out of the tree by this pass, with the parent each hung
  /// under before it died (kNoNode when it had none). Consumers use the old
  /// parent to route cardinality retractions toward the sink.
  std::vector<std::pair<NodeId, NodeId>> removed;
  /// Dead nodes stripped out of the tree by this pass.
  size_t dead_removed = 0;
  /// Up nodes left without a path to the sink (physically partitioned).
  size_t detached = 0;
  /// True when any parent edge changed.
  bool changed = false;
};

/// Accumulated tree-membership change set across one or more Repair passes —
/// what stateful algorithms consume to repair their caches incrementally
/// instead of rebuilding from scratch (EpochAlgorithm::OnTopologyChanged).
struct TopologyDelta {
  /// Orphan-subtree roots that adopted a new parent (their intact subtrees
  /// rode along and did NOT change their own edges).
  std::vector<NodeId> reattached;
  /// Nodes stripped out of the tree (death), with their former parent.
  std::vector<std::pair<NodeId, NodeId>> removed;

  bool empty() const { return reattached.empty() && removed.empty(); }
  void Clear() {
    reattached.clear();
    removed.clear();
  }
  void Accumulate(const RepairReport& report) {
    for (const RepairOp& op : report.reattached) reattached.push_back(op.node);
    removed.insert(removed.end(), report.removed.begin(), report.removed.end());
  }
};

/// Reusable scratch buffers for Repair / the adoption rounds. Callers that
/// repair repeatedly (the ChurnEngine, every epoch under churn) pass one in
/// so the per-round O(n) vector allocations are paid once, not per repair.
struct RepairWorkspace {
  std::vector<int32_t> frontier_pos;       ///< Beacon arrival rank per node; -1 = silent.
  std::vector<std::pair<int32_t, NodeId>> heard;  ///< (rank, beacon) pairs of one joiner.
  std::vector<NodeId> candidates;          ///< Nodes currently wanting a parent.
  std::vector<std::vector<NodeId>> kids;   ///< Surviving children lists.
  std::vector<uint8_t> attached;           ///< Reached-from-sink marks.
  std::vector<NodeId> frontier;            ///< Current beaconing set.
  std::vector<NodeId> stack;               ///< DFS scratch.
};

/// Sink-rooted routing tree over a topology.
///
/// TinyDB/TAG build this tree with a flooded query beacon: each node adopts
/// the first neighbor it hears the beacon from as its parent ("first-heard-
/// from"). `BuildFirstHeard` reproduces that: a BFS from the sink where the
/// arrival order of same-depth beacons is randomized by `rng`.
class RoutingTree {
 public:
  RoutingTree() = default;

  /// Builds the first-heard-from tree over `topology`'s disc graph.
  /// The topology must be connected.
  static RoutingTree BuildFirstHeard(const Topology& topology, util::Rng& rng);

  /// Builds a minimum-hop (plain BFS, lowest-id tiebreak) tree. Deterministic.
  static RoutingTree BuildMinHop(const Topology& topology);

  /// Builds a *cluster-aware* first-heard tree: joining nodes prefer a parent
  /// from their own room when one is in range, so rooms form contiguous
  /// subtrees and GROUP BY groups close low in the hierarchy. This is the
  /// tree the KSpot server builds when the Configuration Panel has told it
  /// which nodes share a physical region (Section II) — the property MINT's
  /// in-network view hierarchy exploits.
  static RoutingTree BuildClusterAware(const Topology& topology, util::Rng& rng);

  /// Builds a tree from an explicit parent vector (parents[sink] == kNoNode).
  static RoutingTree FromParents(std::vector<NodeId> parents);

  /// In-network tree repair after node churn. Strips nodes where `is_up` is
  /// false out of the tree; their orphaned subtrees then re-attach with the
  /// same first-heard-from discipline the tree was built with: round by
  /// round, every attached node beacons, and a detached node that hears one
  /// or more beacons adopts a same-room broadcaster when it heard one
  /// (preserving cluster-awareness) and the first-heard one otherwise. A
  /// re-attaching node brings its intact subtree along, so deep orphan
  /// subtrees keep their shape. Up nodes with no physical path to the
  /// attached component stay detached (parent == kNoNode) and are excluded
  /// from pre/post order until a later repair reconnects them. The sink must
  /// be up. Deterministic given `rng`.
  RepairReport Repair(const Topology& topology, const std::function<bool(NodeId)>& is_up,
                      util::Rng& rng);

  /// Repair overload taking the topology's adjacency (`Topology::BuildAdjacency`)
  /// precomputed and an optional reusable workspace — callers that repair
  /// repeatedly (the ChurnEngine) avoid the O(n^2) adjacency rebuild and the
  /// per-call scratch allocations.
  RepairReport Repair(const Topology& topology, const std::vector<std::vector<NodeId>>& adj,
                      const std::function<bool(NodeId)>& is_up, util::Rng& rng,
                      RepairWorkspace* workspace = nullptr);

  /// Parent of `id`; kNoNode for the sink.
  NodeId parent(NodeId id) const { return parents_[id]; }

  /// True when `id` currently has a parent chain reaching the sink. Always
  /// true for the sink; false for nodes stranded by churn until repaired.
  bool attached(NodeId id) const { return attached_[id] != 0; }

  /// Number of attached nodes (== pre_order().size()).
  size_t AttachedCount() const { return pre_order_.size(); }

  /// Children of `id`, ascending.
  const std::vector<NodeId>& children(NodeId id) const { return children_[id]; }

  /// Hop distance from the sink.
  int depth(NodeId id) const { return depths_[id]; }

  /// Maximum depth over all nodes (tree height).
  int max_depth() const { return max_depth_; }

  /// Number of nodes.
  size_t num_nodes() const { return parents_.size(); }

  /// Nodes in post order (every node after all of its children): the order in
  /// which the TAG epoch schedule fires transmissions, leaves first.
  const std::vector<NodeId>& post_order() const { return post_order_; }

  /// Nodes in pre order (sink first): dissemination order.
  const std::vector<NodeId>& pre_order() const { return pre_order_; }

  /// Nodes in TAG slot-schedule transmission order: depth descending (the
  /// deepest slot fires first), ties in the post-order position the epoch
  /// scheduler enumerates. This is exactly the (time, sequence) execution
  /// order the event queue produced when every transmission was an event, so
  /// converge-casts that walk it directly consume randomness in the same
  /// order and stay bit-identical — without a heap push/pop and a
  /// std::function allocation per node per epoch.
  const std::vector<NodeId>& wave_order() const { return wave_order_; }

  /// Number of nodes in the subtree rooted at `id` (including itself).
  size_t SubtreeSize(NodeId id) const;

 private:
  std::vector<NodeId> parents_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<int> depths_;
  std::vector<NodeId> post_order_;
  std::vector<NodeId> pre_order_;
  std::vector<NodeId> wave_order_;
  std::vector<uint8_t> attached_;
  int max_depth_ = 0;

  void FinishConstruction();
};

}  // namespace kspot::sim
