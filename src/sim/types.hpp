#pragma once

#include <cstdint>
#include <limits>

namespace kspot::sim {

/// Identifier of a sensor node. The sink (base station / MIB520 gateway in the
/// paper's deployment) is always node 0. 32-bit so the sharded execution
/// engine's large-extent deployments (E16 runs up to n=100000) fit; the wire
/// format still models 2-byte node ids in its hardcoded message sizes, which
/// is the radio being simulated, not this process-side handle.
using NodeId = uint32_t;

/// Sentinel for "no node" (e.g. the sink's parent).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// The sink / querying node.
inline constexpr NodeId kSinkId = 0;

/// Simulated time in microseconds.
using TimeUs = uint64_t;

/// Duration of one TAG epoch-schedule slot (one tree depth level), in
/// microseconds. TAG divides each epoch into depth-indexed communication
/// slots so that children transmit before their parents listen. (Lives here
/// rather than in waves.hpp so RoutingTree can precompute the slot-schedule
/// transmission order.)
inline constexpr TimeUs kSlotUs = 50'000;

/// Identifier of a GROUP BY group (room id, node id for node-ranking queries,
/// or epoch index for historic time-instance queries).
using GroupId = int32_t;

/// Epoch counter for continuous queries.
using Epoch = uint32_t;

}  // namespace kspot::sim
