#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace kspot::sim {

/// 2-D position of a node in meters.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two positions.
double Distance(const Position& a, const Position& b);

/// Static description of a deployment: node positions, the room (cluster) each
/// node belongs to, and the radio communication range. Node 0 is the sink and
/// by convention carries no sensor of its own (it is the MIB520 base station).
class Topology {
 public:
  Topology() = default;

  /// Creates a topology from explicit positions and room assignments.
  /// `rooms[i]` is the GROUP BY group of node i; the sink's entry is ignored.
  Topology(std::vector<Position> positions, std::vector<GroupId> rooms, double comm_range);

  /// Number of nodes including the sink.
  size_t num_nodes() const { return positions_.size(); }

  /// Number of sensing nodes (excludes the sink).
  size_t num_sensors() const { return positions_.empty() ? 0 : positions_.size() - 1; }

  /// Position of node `id`.
  const Position& position(NodeId id) const { return positions_[id]; }

  /// Room (cluster) of node `id`.
  GroupId room(NodeId id) const { return rooms_[id]; }

  /// Mutable room assignment (used by scenario configuration).
  void set_room(NodeId id, GroupId room) { rooms_[id] = room; }

  /// Radio communication range in meters (disc connectivity model).
  double comm_range() const { return comm_range_; }

  /// Distinct room ids over sensing nodes, sorted ascending.
  std::vector<GroupId> DistinctRooms() const;

  /// Ids of nodes in `room`, ascending.
  std::vector<NodeId> NodesInRoom(GroupId room) const;

  /// Neighbor lists under the disc model (symmetric, excludes self).
  std::vector<std::vector<NodeId>> BuildAdjacency() const;

  /// True when every node can reach the sink over the disc graph.
  bool IsConnected() const;

 private:
  std::vector<Position> positions_;
  std::vector<GroupId> rooms_;
  double comm_range_ = 10.0;
};

/// Parameters for the random topology generators.
struct TopologyOptions {
  /// Total nodes including the sink.
  size_t num_nodes = 100;
  /// Number of rooms (GROUP BY groups) to carve the field into.
  size_t num_rooms = 10;
  /// Side length of the square deployment field, meters.
  double field_size = 100.0;
  /// Radio range, meters. Generators may enlarge it to reach connectivity.
  double comm_range = 18.0;
};

/// Regular sqrt(n) x sqrt(n) grid; rooms are rectangular tiles. The sink sits
/// at the grid's first cell. Deterministic (no RNG).
Topology MakeGrid(const TopologyOptions& options);

/// Uniform-random placement in the field; rooms are Voronoi cells of a room
/// grid. Resamples (then widens the range) until connected.
Topology MakeUniformRandom(const TopologyOptions& options, util::Rng& rng);

/// Clustered placement: room centers scattered in the field, nodes Gaussian
/// around their room center — the "conference rooms" deployment shape where
/// groups close low in the routing tree.
Topology MakeClusteredRooms(const TopologyOptions& options, util::Rng& rng);

/// The exact 9-sensor / 4-room scenario of Figure 1 in the paper, with the
/// routing tree of the figure (see MakeFigure1Tree). Rooms A,B,C,D map to
/// group ids 0,1,2,3.
Topology MakeFigure1();

/// The Figure-1 routing tree as an explicit parent vector:
/// s0 <- {s2, s4, s6}; s2 <- {s3}; s4 <- {s1, s9}; s6 <- {s5, s7, s8}.
std::vector<NodeId> MakeFigure1Parents();

/// Sensor readings (sound level, %) from Figure 1: index = node id, entry 0
/// (the sink) is 0. s1..s9 = 40, 74, 75, 42, 75, 75, 78, 75, 39.
std::vector<double> Figure1Readings();

/// Human-readable room name for the Figure-1 scenario ("A".."D").
std::string Figure1RoomName(GroupId room);

}  // namespace kspot::sim
