#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/energy_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/radio_model.hpp"
#include "sim/routing_tree.hpp"
#include "sim/shard_state.hpp"
#include "sim/topology.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace kspot::sim {

class ShardRuntime;

/// The end-to-end reliability & graceful-degradation layer (everything off
/// by default — a default-constructed struct leaves the network bit-identical
/// to a build without it). When enabled, unicast sends replace the flat
/// `max_retries` ARQ loop with an adaptive per-link policy: an EWMA
/// link-quality estimator (ShardState::link_est) schedules just enough
/// attempts to push the residual per-message loss under `residual_target`,
/// retries wait out an exponential backoff charged as idle-listen energy,
/// and a per-node per-epoch retry budget bounds the worst-case spend.
/// `wave_depth_budget` adds epoch deadlines: converge-cast/dissemination
/// waves truncate at that slot depth and the epoch is marked degraded.
struct ReliabilityOptions {
  /// Master switch. Off: the flat NetworkOptions::max_retries loop runs and
  /// nothing below is consulted (byte-identical to the pre-layer network).
  bool enabled = false;
  /// Hard cap on retransmissions per message (the adaptive policy picks a
  /// count in [0, max_retries] from the link estimate).
  int max_retries = 3;
  /// Retransmissions one node may spend per epoch; 0 = unlimited. Refilled
  /// by Network::BeginReliabilityEpoch.
  uint32_t retry_budget = 64;
  /// EWMA smoothing factor of the per-link loss estimator.
  double ewma_alpha = 0.25;
  /// Target residual per-message loss: attempts A are chosen as the smallest
  /// count with ewma^A <= residual_target (capped by max_retries). The
  /// estimate is floored at the loss model's own message-level loss, so the
  /// EWMA only ever adapts the policy *upward* from the modeled link.
  double residual_target = 0.05;
  /// First-retry backoff; doubles per further retry up to backoff_cap_us.
  uint64_t backoff_base_us = 500;
  uint64_t backoff_cap_us = 8000;
  /// Epoch deadline as a slot-depth budget: nodes deeper than this many
  /// slots are cut from waves (the epoch degrades gracefully instead of
  /// overrunning). 0 = no deadline.
  int wave_depth_budget = 0;
};

/// Configuration for the simulated radio network.
struct NetworkOptions {
  /// Baseline per-frame loss probability on unicast and broadcast links.
  double loss_prob = 0.0;
  /// Adds distance-dependent loss on top of the baseline: links beyond
  /// `edge_onset` of the radio range degrade quadratically up to
  /// `edge_max_loss` at full range — the gray-zone behaviour of real CC1000
  /// links. Off (0) keeps the i.i.d. disc model.
  double edge_max_loss = 0.0;
  /// Fraction of the range where degradation starts (when edge_max_loss>0).
  double edge_onset = 0.7;
  /// Link-layer retransmissions per unicast message (TinyOS-style ARQ).
  int max_retries = 0;
  /// Per-node battery budget, joules; <= 0 means unlimited.
  double battery_j = 0.0;
  /// Radio cost model.
  RadioModel radio;
  /// Energy cost model.
  EnergyModel energy;
  /// Adaptive retry/backoff, epoch deadlines and completeness accounting;
  /// disabled by default (and then bit-inert).
  ReliabilityOptions reliability;
};

/// The simulated radio network: delivers messages along the routing tree,
/// charges energy to both endpoints, applies losses, and maintains the
/// traffic counters (globally and attributed to named protocol phases).
///
/// All per-epoch mutable state lives in one value-type ShardState, so a
/// Network is freely copyable (copies evolve independently; an attached
/// shard runtime does not follow the copy) and the sharded UpWave can hand
/// worker lanes disjoint per-node slices of the state.
class Network {
 public:
  /// `topology` and `tree` must outlive the network.
  Network(const Topology* topology, const RoutingTree* tree, NetworkOptions options,
          util::Rng rng);

  Network(const Network& other);
  Network& operator=(const Network& other);

  /// Sends `payload_bytes` from `child` to its parent, applying loss and up
  /// to `max_retries` retransmissions. Every attempt is charged to the
  /// sender; receive energy only on delivered attempts. Returns true when
  /// the message was delivered (false also when either endpoint is dead).
  bool UnicastToParent(NodeId child, size_t payload_bytes);

  /// Lane-scoped variant for the sharded UpWave: identical charging, retry
  /// and aliveness discipline, but loss is drawn from the *sender's* RNG
  /// substream (state().node_rngs, populated by the attached ShardRuntime)
  /// and neither the global counters nor the shared clock are touched — the
  /// per-message counter delta and airtime land in `fx` instead, for the
  /// canonical wave-order replay at the merge barrier (CommitLaneSend).
  /// Safe to call concurrently for senders in disjoint subtrees: it writes
  /// only the sender's and receiver's per-node entries.
  bool LaneUnicastToParent(NodeId child, size_t payload_bytes, LaneSendEffect* fx);

  /// Commits one lane send's effect to the global ledgers in canonical
  /// order: total/phase counters accumulate the delta and the clock advances
  /// by the airtime, exactly as the serial path would have at this message's
  /// slot. Serial-only (the merge phase of a sharded wave).
  void CommitLaneSend(const LaneSendEffect& fx);

  /// Broadcasts `payload_bytes` from `node`: one transmission, every alive
  /// child listens; loss is independent per child. Returns the children that
  /// received the message.
  std::vector<NodeId> BroadcastToChildren(NodeId node, size_t payload_bytes);

  /// Relays a message hop-by-hop from `from` up to the sink (FILA reports).
  /// Each hop is a unicast with loss/retries; returns true when the sink
  /// received it.
  bool UnicastUpPath(NodeId from, size_t payload_bytes);

  /// Relays a message hop-by-hop from the sink down to `target` (FILA filter
  /// updates). Returns true when `target` received it.
  bool UnicastDownPath(NodeId target, size_t payload_bytes);

  /// Interns a phase label into its process-global id. Thread-safe; cache
  /// the result (hot paths keep a file-local `const PhaseId` per literal).
  static PhaseId InternPhase(std::string_view name);
  /// The label of an interned phase id.
  static const std::string& PhaseName(PhaseId id);

  /// Attributes subsequent traffic to an interned protocol phase. The hot
  /// path: an integer compare when the phase is unchanged, an array index
  /// when it switches. Serial-only: a sharded wave runs entirely under the
  /// phase in force when it launched.
  void SetPhase(PhaseId id);
  /// Attributes subsequent traffic to a named protocol phase
  /// (e.g. "mint.update", "tja.lb"). Cheap when the phase is unchanged;
  /// interns the label otherwise.
  void SetPhase(const std::string& phase);
  /// The current phase label.
  const std::string& phase() const { return *phase_name_; }
  /// The current phase id.
  PhaseId phase_id() const { return phase_id_; }

  /// Grand-total counters.
  const TrafficCounters& total() const { return state_.total; }
  /// Counters attributed to `phase` (zeroes if the phase never sent).
  TrafficCounters PhaseTotal(const std::string& phase) const;
  /// Counters attributed to the interned phase `id`.
  TrafficCounters PhaseTotal(PhaseId id) const;
  /// All phases this network attributed traffic to, with their counters
  /// (materialized from the interned-id array, keyed and ordered by label).
  std::map<std::string, TrafficCounters> by_phase() const;

  /// Per-node energy ledger.
  EnergyMeter& meter(NodeId id) { return state_.meters[id]; }
  const EnergyMeter& meter(NodeId id) const { return state_.meters[id]; }

  /// Administrative up/down control (crash-fault injection). A node taken
  /// down neither sends nor receives until brought back up; its battery
  /// ledger is untouched, so crash and battery death stay distinguishable.
  void SetNodeUp(NodeId id, bool up) { state_.up[id] = up ? 1 : 0; }
  /// True unless the node was administratively taken down.
  bool NodeUp(NodeId id) const { return state_.up[id] != 0; }

  /// Extra per-frame loss applied to every link touching `id` (link-quality
  /// degradation episodes); compounds with the baseline loss model.
  void SetNodeExtraLoss(NodeId id, double extra_loss) { state_.extra_loss[id] = extra_loss; }
  /// The degradation episode loss currently in force at `id` (0 = none).
  double NodeExtraLoss(NodeId id) const { return state_.extra_loss[id]; }

  /// True while `id` is administratively up and has battery left.
  bool NodeAlive(NodeId id) const { return state_.up[id] != 0 && state_.meters[id].alive(); }
  /// Number of alive nodes.
  size_t AliveCount() const;

  /// Charges one delivered control message from `from` to `to` (tree-repair
  /// join handshakes). Repair control traffic rides link-layer ARQ until it
  /// gets through, so it is charged at nominal cost without a loss draw —
  /// the repaired tree and the counters stay in lockstep. Both endpoints
  /// must be alive.
  void DeliverControl(NodeId from, NodeId to, size_t payload_bytes);

  /// Messages transmitted by each node (for hotspot analysis near the sink).
  uint64_t MessagesSentBy(NodeId id) const { return state_.sent_by[id]; }

  /// Charges local flash I/O performed by `node` into its energy ledger and
  /// folds the operation/byte counts into the traffic counters (grand total
  /// and current phase). Storage I/O is radio-silent: no frames, no airtime,
  /// no clock movement. Plain scalars keep sim/ independent of storage/; the
  /// caller snapshots storage::IoCounters deltas. Serial sections only.
  void ChargeStorageIo(NodeId node, uint64_t reads, uint64_t writes, uint64_t bytes,
                       double energy_j);

  /// The event queue that sequences transmissions.
  EventQueue& events() { return events_; }
  /// Topology under simulation.
  const Topology& topology() const { return *topology_; }
  /// Routing tree under simulation.
  const RoutingTree& tree() const { return *tree_; }
  /// Radio model in use.
  const RadioModel& radio() const { return options_.radio; }
  /// Network options in use.
  const NetworkOptions& options() const { return options_; }
  /// Loss / fading RNG (exposed for tests).
  util::Rng& rng() { return rng_; }

  /// The whole per-epoch mutable state as a value (exposed for the shard
  /// runtime and for state-snapshot tests).
  ShardState& state() { return state_; }
  const ShardState& state() const { return state_; }

  /// The shard runtime driving this network's parallel waves, nullptr on the
  /// serial path. Attached by ShardRuntime's constructor; never owned here.
  ShardRuntime* shard_runtime() const { return shard_runtime_; }
  void AttachShardRuntime(ShardRuntime* runtime) { shard_runtime_ = runtime; }

  /// Per-frame loss probability of the link `from -> to` under the options'
  /// loss model (baseline + distance-dependent gray zone + degradation
  /// episodes at either endpoint), clamped to [0, 1].
  double LinkLossProb(NodeId from, NodeId to) const;

  // ------------------------------------------------------ reliability layer

  /// Opens a reliability epoch: refills every node's retry budget and clears
  /// the degraded flag / truncation count. Call once per epoch before the
  /// waves when ReliabilityOptions::enabled; a no-op worth skipping when it
  /// is off. The constructor runs it once so standalone single-epoch use
  /// starts with full budgets.
  void BeginReliabilityEpoch();
  /// True when a wave deadline truncated this epoch.
  bool EpochDegraded() const { return state_.epoch_degraded != 0; }
  /// Alive wave-order nodes deadlines cut this epoch.
  uint32_t TruncatedNodes() const { return state_.truncated_nodes; }
  /// Marks the epoch degraded, attributing `truncated` cut nodes. Serial
  /// sections only (waves call it; lanes never do).
  void MarkEpochDegraded(uint32_t truncated);
  /// Counts the alive wave-order nodes deeper than `depth_cap` slots — the
  /// nodes an UpWave under that deadline cuts — and marks the epoch degraded
  /// when any exist. Returns the count. Serial-only.
  uint32_t ApplyWaveDepthBudget(int depth_cap);
  /// Alive, tree-attached sensors (sink excluded): the population a complete
  /// epoch answer should have heard from — the denominator of
  /// TopKResult::completeness. Pure read.
  size_t AliveAttachedSensors() const;

 private:
  const Topology* topology_;
  const RoutingTree* tree_;
  NetworkOptions options_;
  util::Rng rng_;
  EventQueue events_;
  /// Every mutable per-epoch ledger, owned as one value (see ShardState).
  ShardState state_;
  PhaseId phase_id_ = 0;
  /// Label of the current phase (registry storage is pointer-stable), so the
  /// string SetPhase overload's unchanged-phase fast path needs no lock.
  /// nullptr only before the constructor's initial SetPhase.
  const std::string* phase_name_ = nullptr;
  /// Parallel-wave coordinator; non-owning, does not follow copies.
  ShardRuntime* shard_runtime_ = nullptr;

  void ChargeTx(NodeId sender, size_t payload_bytes, TrafficCounters& counters);
  /// The retry/loss/charge core shared by the serial and lane unicast paths;
  /// `loss_rng` selects which stream pays the Bernoulli draws.
  bool UnicastToParentWith(NodeId child, size_t payload_bytes, util::Rng& loss_rng,
                           TrafficCounters& delta);
  /// Adaptive-ARQ unicast core (ReliabilityOptions::enabled): EWMA-scheduled
  /// attempts, exponential backoff charged as idle listening, per-epoch
  /// retry budget. `link_slot` is the child endpoint of the link (its
  /// LinkEstimator slot); safe in lanes for in-lane links.
  bool ReliableUnicast(NodeId sender, NodeId receiver, NodeId link_slot, size_t payload_bytes,
                       util::Rng& loss_rng, TrafficCounters& delta);
  /// Attempts the adaptive policy schedules for a link estimated at
  /// `ewma_loss`: the smallest A with ewma^A <= residual_target, in
  /// [1, reliability.max_retries + 1]. Deterministic.
  int PlannedAttempts(double ewma_loss) const;
};

}  // namespace kspot::sim
