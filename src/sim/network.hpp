#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/energy_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/radio_model.hpp"
#include "sim/routing_tree.hpp"
#include "sim/topology.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace kspot::sim {

/// Aggregated traffic counters. These are exactly the numbers the KSpot
/// System Panel projects at the demo: message count, frame (packet) count,
/// application bytes, on-air bytes and radio energy.
struct TrafficCounters {
  uint64_t messages = 0;      ///< Logical messages sent (suppressed sends cost nothing).
  uint64_t frames = 0;        ///< TinyOS frames after fragmentation.
  uint64_t payload_bytes = 0; ///< Application payload bytes.
  uint64_t onair_bytes = 0;   ///< Bytes on the air incl. headers + preambles.
  double tx_energy_j = 0.0;   ///< Sender-side radio energy, joules.
  double rx_energy_j = 0.0;   ///< Receiver-side radio energy, joules.

  /// Element-wise accumulate.
  void Add(const TrafficCounters& other);
  /// Element-wise difference (this - other); counters must be monotone.
  TrafficCounters Since(const TrafficCounters& earlier) const;
  /// Total radio energy.
  double energy_j() const { return tx_energy_j + rx_energy_j; }
};

/// Interned identifier of a protocol-phase label ("mint.update", "tja.lb").
/// Ids are process-global: the same label always interns to the same id, so
/// algorithms cache the id of their string literals once and per-epoch phase
/// switches are an integer compare plus an array index instead of a
/// string-keyed map lookup.
using PhaseId = uint32_t;

/// Configuration for the simulated radio network.
struct NetworkOptions {
  /// Baseline per-frame loss probability on unicast and broadcast links.
  double loss_prob = 0.0;
  /// Adds distance-dependent loss on top of the baseline: links beyond
  /// `edge_onset` of the radio range degrade quadratically up to
  /// `edge_max_loss` at full range — the gray-zone behaviour of real CC1000
  /// links. Off (0) keeps the i.i.d. disc model.
  double edge_max_loss = 0.0;
  /// Fraction of the range where degradation starts (when edge_max_loss>0).
  double edge_onset = 0.7;
  /// Link-layer retransmissions per unicast message (TinyOS-style ARQ).
  int max_retries = 0;
  /// Per-node battery budget, joules; <= 0 means unlimited.
  double battery_j = 0.0;
  /// Radio cost model.
  RadioModel radio;
  /// Energy cost model.
  EnergyModel energy;
};

/// The simulated radio network: delivers messages along the routing tree,
/// charges energy to both endpoints, applies losses, and maintains the
/// traffic counters (globally and attributed to named protocol phases).
class Network {
 public:
  /// `topology` and `tree` must outlive the network.
  Network(const Topology* topology, const RoutingTree* tree, NetworkOptions options,
          util::Rng rng);

  // Non-copyable/movable: phase_counters_ points into this object's
  // by_phase_ storage, so a defaulted copy would write through a pointer
  // into the source object.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends `payload_bytes` from `child` to its parent, applying loss and up
  /// to `max_retries` retransmissions. Every attempt is charged to the
  /// sender; receive energy only on delivered attempts. Returns true when
  /// the message was delivered (false also when either endpoint is dead).
  bool UnicastToParent(NodeId child, size_t payload_bytes);

  /// Broadcasts `payload_bytes` from `node`: one transmission, every alive
  /// child listens; loss is independent per child. Returns the children that
  /// received the message.
  std::vector<NodeId> BroadcastToChildren(NodeId node, size_t payload_bytes);

  /// Relays a message hop-by-hop from `from` up to the sink (FILA reports).
  /// Each hop is a unicast with loss/retries; returns true when the sink
  /// received it.
  bool UnicastUpPath(NodeId from, size_t payload_bytes);

  /// Relays a message hop-by-hop from the sink down to `target` (FILA filter
  /// updates). Returns true when `target` received it.
  bool UnicastDownPath(NodeId target, size_t payload_bytes);

  /// Interns a phase label into its process-global id. Thread-safe; cache
  /// the result (hot paths keep a file-local `const PhaseId` per literal).
  static PhaseId InternPhase(std::string_view name);
  /// The label of an interned phase id.
  static const std::string& PhaseName(PhaseId id);

  /// Attributes subsequent traffic to an interned protocol phase. The hot
  /// path: an integer compare when the phase is unchanged, an array index
  /// when it switches.
  void SetPhase(PhaseId id);
  /// Attributes subsequent traffic to a named protocol phase
  /// (e.g. "mint.update", "tja.lb"). Cheap when the phase is unchanged;
  /// interns the label otherwise.
  void SetPhase(const std::string& phase);
  /// The current phase label.
  const std::string& phase() const { return *phase_name_; }
  /// The current phase id.
  PhaseId phase_id() const { return phase_id_; }

  /// Grand-total counters.
  const TrafficCounters& total() const { return total_; }
  /// Counters attributed to `phase` (zeroes if the phase never sent).
  TrafficCounters PhaseTotal(const std::string& phase) const;
  /// Counters attributed to the interned phase `id`.
  TrafficCounters PhaseTotal(PhaseId id) const;
  /// All phases this network attributed traffic to, with their counters
  /// (materialized from the interned-id array, keyed and ordered by label).
  std::map<std::string, TrafficCounters> by_phase() const;

  /// Per-node energy ledger.
  EnergyMeter& meter(NodeId id) { return meters_[id]; }
  const EnergyMeter& meter(NodeId id) const { return meters_[id]; }

  /// Administrative up/down control (crash-fault injection). A node taken
  /// down neither sends nor receives until brought back up; its battery
  /// ledger is untouched, so crash and battery death stay distinguishable.
  void SetNodeUp(NodeId id, bool up) { up_[id] = up ? 1 : 0; }
  /// True unless the node was administratively taken down.
  bool NodeUp(NodeId id) const { return up_[id] != 0; }

  /// Extra per-frame loss applied to every link touching `id` (link-quality
  /// degradation episodes); compounds with the baseline loss model.
  void SetNodeExtraLoss(NodeId id, double extra_loss) { extra_loss_[id] = extra_loss; }
  /// The degradation episode loss currently in force at `id` (0 = none).
  double NodeExtraLoss(NodeId id) const { return extra_loss_[id]; }

  /// True while `id` is administratively up and has battery left.
  bool NodeAlive(NodeId id) const { return up_[id] != 0 && meters_[id].alive(); }
  /// Number of alive nodes.
  size_t AliveCount() const;

  /// Charges one delivered control message from `from` to `to` (tree-repair
  /// join handshakes). Repair control traffic rides link-layer ARQ until it
  /// gets through, so it is charged at nominal cost without a loss draw —
  /// the repaired tree and the counters stay in lockstep. Both endpoints
  /// must be alive.
  void DeliverControl(NodeId from, NodeId to, size_t payload_bytes);

  /// Messages transmitted by each node (for hotspot analysis near the sink).
  uint64_t MessagesSentBy(NodeId id) const { return sent_by_[id]; }

  /// The event queue that sequences transmissions.
  EventQueue& events() { return events_; }
  /// Topology under simulation.
  const Topology& topology() const { return *topology_; }
  /// Routing tree under simulation.
  const RoutingTree& tree() const { return *tree_; }
  /// Radio model in use.
  const RadioModel& radio() const { return options_.radio; }
  /// Network options in use.
  const NetworkOptions& options() const { return options_; }
  /// Loss / fading RNG (exposed for tests).
  util::Rng& rng() { return rng_; }

  /// Per-frame loss probability of the link `from -> to` under the options'
  /// loss model (baseline + distance-dependent gray zone).
  double LinkLossProb(NodeId from, NodeId to) const;

 private:
  const Topology* topology_;
  const RoutingTree* tree_;
  NetworkOptions options_;
  util::Rng rng_;
  EventQueue events_;
  std::vector<EnergyMeter> meters_;
  std::vector<uint8_t> up_;
  std::vector<double> extra_loss_;
  std::vector<uint64_t> sent_by_;
  TrafficCounters total_;
  /// Per-phase counters indexed by PhaseId; slots are allocated lazily the
  /// first time SetPhase selects the id. phase_touched_ marks slots this
  /// network actually selected (so by_phase() reports exactly the phases the
  /// run visited, zero-traffic ones included, as the old map did).
  std::vector<TrafficCounters> by_phase_;
  std::vector<uint8_t> phase_touched_;
  PhaseId phase_id_ = 0;
  /// Label of the current phase (registry storage is pointer-stable), so the
  /// string SetPhase overload's unchanged-phase fast path needs no lock.
  const std::string* phase_name_ = nullptr;
  /// Counter bucket of the current phase so per-message accounting skips any
  /// lookup. Reassigned whenever by_phase_ grows.
  TrafficCounters* phase_counters_ = nullptr;

  void ChargeTx(NodeId sender, size_t payload_bytes, TrafficCounters& counters);
};

}  // namespace kspot::sim
