#include "sim/event_queue.hpp"

#include <utility>

namespace kspot::sim {

void EventQueue::ScheduleAt(TimeUs at, Handler handler) {
  if (at < now_) at = now_;
  heap_.push(Entry{at, next_seq_++, std::move(handler)});
}

void EventQueue::ScheduleAfter(TimeUs delay, Handler handler) {
  ScheduleAt(now_ + delay, std::move(handler));
}

size_t EventQueue::RunUntilIdle() {
  size_t executed = 0;
  while (!heap_.empty()) {
    // Entry must be moved out before pop; the handler may schedule new events.
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = e.time;
    e.handler();
    ++executed;
  }
  return executed;
}

size_t EventQueue::RunUntil(TimeUs until) {
  size_t executed = 0;
  while (!heap_.empty() && heap_.top().time <= until) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = e.time;
    e.handler();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

void EventQueue::AdvanceTo(TimeUs t) {
  if (t > now_) now_ = t;
}

}  // namespace kspot::sim
