#include "sim/topology.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

namespace kspot::sim {

double Distance(const Position& a, const Position& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Topology::Topology(std::vector<Position> positions, std::vector<GroupId> rooms,
                   double comm_range)
    : positions_(std::move(positions)), rooms_(std::move(rooms)), comm_range_(comm_range) {
  rooms_.resize(positions_.size(), 0);
}

std::vector<GroupId> Topology::DistinctRooms() const {
  std::set<GroupId> s;
  for (size_t i = 1; i < rooms_.size(); ++i) s.insert(rooms_[i]);
  return std::vector<GroupId>(s.begin(), s.end());
}

std::vector<NodeId> Topology::NodesInRoom(GroupId room) const {
  std::vector<NodeId> out;
  for (size_t i = 1; i < rooms_.size(); ++i) {
    if (rooms_[i] == room) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<std::vector<NodeId>> Topology::BuildAdjacency() const {
  // Spatial-hash neighbor search: bucket nodes into comm_range-sized cells,
  // then each node only tests candidates from its 3x3 cell neighborhood —
  // O(n + edges) expected instead of the O(n^2) all-pairs scan, which is what
  // makes 100k-node deployments buildable. Each adjacency list is sorted
  // ascending, exactly the order the all-pairs scan produced.
  size_t n = positions_.size();
  std::vector<std::vector<NodeId>> adj(n);
  if (n == 0) return adj;
  double cell = comm_range_ > 0.0 ? comm_range_ : 1.0;
  auto cell_key = [&](const Position& p) {
    auto cx = static_cast<int64_t>(std::floor(p.x / cell));
    auto cy = static_cast<int64_t>(std::floor(p.y / cell));
    return (static_cast<uint64_t>(cx) << 32) ^ static_cast<uint64_t>(cy & 0xFFFFFFFFLL);
  };
  std::unordered_map<uint64_t, std::vector<NodeId>> buckets;
  buckets.reserve(n);
  for (size_t i = 0; i < n; ++i) buckets[cell_key(positions_[i])].push_back(static_cast<NodeId>(i));
  std::vector<NodeId> neighbors;
  for (size_t i = 0; i < n; ++i) {
    neighbors.clear();
    auto cx = static_cast<int64_t>(std::floor(positions_[i].x / cell));
    auto cy = static_cast<int64_t>(std::floor(positions_[i].y / cell));
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        uint64_t key = (static_cast<uint64_t>(cx + dx) << 32) ^
                       static_cast<uint64_t>((cy + dy) & 0xFFFFFFFFLL);
        auto it = buckets.find(key);
        if (it == buckets.end()) continue;
        for (NodeId j : it->second) {
          if (j == static_cast<NodeId>(i)) continue;
          if (Distance(positions_[i], positions_[j]) <= comm_range_) neighbors.push_back(j);
        }
      }
    }
    std::sort(neighbors.begin(), neighbors.end());
    adj[i].assign(neighbors.begin(), neighbors.end());
  }
  return adj;
}

bool Topology::IsConnected() const {
  if (positions_.empty()) return false;
  auto adj = BuildAdjacency();
  std::vector<bool> seen(positions_.size(), false);
  std::vector<NodeId> stack = {kSinkId};
  seen[kSinkId] = true;
  size_t count = 0;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    ++count;
    for (NodeId v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return count == positions_.size();
}

Topology MakeGrid(const TopologyOptions& options) {
  size_t n = options.num_nodes;
  size_t side = static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  if (side == 0) side = 1;
  double spacing = options.field_size / static_cast<double>(side);
  size_t rooms_side = static_cast<size_t>(
      std::max(1.0, std::round(std::sqrt(static_cast<double>(options.num_rooms)))));
  std::vector<Position> pos;
  std::vector<GroupId> rooms;
  pos.reserve(n);
  rooms.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t gx = i % side;
    size_t gy = i / side;
    pos.push_back(Position{(static_cast<double>(gx) + 0.5) * spacing,
                           (static_cast<double>(gy) + 0.5) * spacing});
    size_t rx = gx * rooms_side / side;
    size_t ry = gy * rooms_side / side;
    rooms.push_back(static_cast<GroupId>(ry * rooms_side + rx));
  }
  // A grid is connected as long as the range covers one grid step (with a
  // little slack for diagonal sinks); enforce that.
  double range = std::max(options.comm_range, spacing * 1.05);
  return Topology(std::move(pos), std::move(rooms), range);
}

namespace {

GroupId RoomOfCell(const Position& p, const TopologyOptions& options) {
  size_t rooms_side = static_cast<size_t>(
      std::max(1.0, std::round(std::sqrt(static_cast<double>(options.num_rooms)))));
  double cell = options.field_size / static_cast<double>(rooms_side);
  size_t rx = std::min(rooms_side - 1, static_cast<size_t>(p.x / cell));
  size_t ry = std::min(rooms_side - 1, static_cast<size_t>(p.y / cell));
  return static_cast<GroupId>(ry * rooms_side + rx);
}

}  // namespace

Topology MakeUniformRandom(const TopologyOptions& options, util::Rng& rng) {
  double range = options.comm_range;
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<Position> pos;
    std::vector<GroupId> rooms;
    pos.reserve(options.num_nodes);
    // The sink sits in the middle of the field (the demo's projector laptop).
    pos.push_back(Position{options.field_size / 2, options.field_size / 2});
    rooms.push_back(0);
    for (size_t i = 1; i < options.num_nodes; ++i) {
      Position p{rng.NextDouble(0, options.field_size), rng.NextDouble(0, options.field_size)};
      pos.push_back(p);
      rooms.push_back(RoomOfCell(p, options));
    }
    Topology t(std::move(pos), std::move(rooms), range);
    if (t.IsConnected()) return t;
    // Widen the radio range every few failed placements; a disconnected
    // deployment would be re-positioned by hand in a real installation.
    if (attempt % 4 == 3) range *= 1.15;
  }
  // Fall back to a grid: always connected.
  TopologyOptions fallback = options;
  fallback.comm_range = range;
  return MakeGrid(fallback);
}

Topology MakeClusteredRooms(const TopologyOptions& options, util::Rng& rng) {
  double range = options.comm_range;
  size_t rooms = std::max<size_t>(1, options.num_rooms);
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<Position> centers;
    centers.reserve(rooms);
    for (size_t r = 0; r < rooms; ++r) {
      centers.push_back(Position{rng.NextDouble(0.1, 0.9) * options.field_size,
                                 rng.NextDouble(0.1, 0.9) * options.field_size});
    }
    double sigma = options.field_size / (3.0 * std::sqrt(static_cast<double>(rooms)));
    std::vector<Position> pos;
    std::vector<GroupId> room_of;
    pos.push_back(Position{options.field_size / 2, options.field_size / 2});
    room_of.push_back(0);
    for (size_t i = 1; i < options.num_nodes; ++i) {
      size_t r = (i - 1) % rooms;  // balanced room sizes
      double x = std::clamp(centers[r].x + rng.NextGaussian(0, sigma), 0.0, options.field_size);
      double y = std::clamp(centers[r].y + rng.NextGaussian(0, sigma), 0.0, options.field_size);
      pos.push_back(Position{x, y});
      room_of.push_back(static_cast<GroupId>(r));
    }
    Topology t(std::move(pos), std::move(room_of), range);
    if (t.IsConnected()) return t;
    if (attempt % 4 == 3) range *= 1.15;
  }
  TopologyOptions fallback = options;
  fallback.comm_range = range;
  return MakeGrid(fallback);
}

Topology MakeFigure1() {
  // A 20m x 20m four-room building (2x2 rooms of 10m), sink in the middle.
  // Room ids: A=0, B=1, C=2, D=3.
  // Consistent with the paper's aggregates: AVG(A)=74.5, AVG(B)=41,
  // AVG(C)=75 (the correct top-1) and AVG(D)=64.
  std::vector<Position> pos = {
      {10.0, 10.0},  // s0 sink
      {4.0, 13.0},   // s1 room B
      {4.0, 4.0},    // s2 room A
      {7.0, 7.0},    // s3 room A
      {7.0, 16.0},   // s4 room B
      {13.0, 4.0},   // s5 room C
      {16.0, 7.0},   // s6 room C
      {16.0, 13.0},  // s7 room D
      {13.0, 16.0},  // s8 room D
      {16.0, 17.5},  // s9 room D
  };
  std::vector<GroupId> rooms = {0, 1, 0, 0, 1, 2, 2, 3, 3, 3};
  return Topology(std::move(pos), std::move(rooms), 8.0);
}

std::vector<NodeId> MakeFigure1Parents() {
  // s0 is the root; s2, s4, s6 are its children; s3 under s2; s1 and s9 under
  // s4; s5, s7, s8 under s6. This reproduces the anomaly of Section III-A:
  // s4 merges (D,39) from s9 with its own (B,42) and naive top-1 pruning
  // wrongfully eliminates (D,39).
  return {kNoNode, 4, 0, 2, 0, 6, 0, 6, 6, 4};
}

std::vector<double> Figure1Readings() {
  return {0.0, 40.0, 74.0, 75.0, 42.0, 75.0, 75.0, 78.0, 75.0, 39.0};
}

std::string Figure1RoomName(GroupId room) {
  static const char* names[] = {"A", "B", "C", "D"};
  if (room < 0 || room > 3) return "?";
  return names[room];
}

}  // namespace kspot::sim
