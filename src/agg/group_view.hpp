#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "agg/aggregate.hpp"
#include "net/serializer.hpp"
#include "sim/types.hpp"

namespace kspot::agg {

/// One ranked answer: a group and its final aggregate value.
struct RankedItem {
  sim::GroupId group = 0;
  double value = 0.0;

  friend bool operator==(const RankedItem& a, const RankedItem& b) = default;
};

/// Deterministic ranking order: value descending, group id ascending on ties.
bool RankHigher(const RankedItem& a, const RankedItem& b);

/// A materialized view V_i: the per-group partial aggregates a node (or the
/// sink) holds. This is the object MINT's in-network hierarchy maintains —
/// ancestor views are supersets of descendant views.
class GroupView {
 public:
  /// Adds one sensor reading to `group`.
  void AddReading(sim::GroupId group, double value);

  /// Merges a partial for `group`.
  void MergePartial(sim::GroupId group, const PartialAgg& partial);

  /// Merges a whole view.
  void MergeView(const GroupView& other);

  /// Partial for `group`; empty partial if absent.
  PartialAgg Get(sim::GroupId group) const;

  /// True when `group` is present.
  bool Contains(sim::GroupId group) const { return entries_.count(group) > 0; }

  /// Removes `group`; no-op when absent.
  void Erase(sim::GroupId group) { entries_.erase(group); }

  /// Number of groups.
  size_t size() const { return entries_.size(); }
  /// True when no groups are present.
  bool empty() const { return entries_.empty(); }

  /// Total readings merged across all groups — how many sensors contributed
  /// to this view (the TopKResult::contributors accounting).
  uint32_t ContributorCount() const;

  /// Underlying ordered entries (group -> partial).
  const std::map<sim::GroupId, PartialAgg>& entries() const { return entries_; }

  /// Final values for all groups under `kind`, ranked best-first.
  std::vector<RankedItem> Ranked(AggKind kind) const;

  /// The K best groups under `kind` (all groups if fewer than k).
  std::vector<RankedItem> TopK(AggKind kind, size_t k) const;

  /// Keeps only the K best groups under `kind` (the *naive* local pruning of
  /// Section III-A — provided so the Naive algorithm and tests can exercise
  /// the anomaly).
  void PruneToLocalTopK(AggKind kind, size_t k);

 private:
  std::map<sim::GroupId, PartialAgg> entries_;
};

/// Wire codec for views. Entry layouts (little endian):
///   AVG / SUM / COUNT / MIN: group u16, sum i64, count u16, min i32 -> 16 B
///   MAX:                     group u16, max i32                    ->  6 B
/// A serialized view is: count u16, then entries. The MAX layout is smaller
/// because MAX pruning needs no completeness bookkeeping (see DESIGN.md).
namespace codec {

/// Serialized size of a view with `entries` entries under `kind`.
size_t ViewWireBytes(AggKind kind, size_t entries);

/// Appends `view` to `w`.
void WriteView(net::Writer& w, AggKind kind, const GroupView& view);

/// Parses a view; returns false on malformed input.
bool ReadView(net::Reader& r, AggKind kind, GroupView* out);

}  // namespace codec

}  // namespace kspot::agg
