#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "agg/aggregate.hpp"
#include "net/serializer.hpp"
#include "sim/types.hpp"

namespace kspot::agg {

/// One ranked answer: a group and its final aggregate value.
struct RankedItem {
  sim::GroupId group = 0;
  double value = 0.0;

  friend bool operator==(const RankedItem& a, const RankedItem& b) = default;
};

/// Deterministic ranking order: value descending, group id ascending on ties.
bool RankHigher(const RankedItem& a, const RankedItem& b);

/// A materialized view V_i: the per-group partial aggregates a node (or the
/// sink) holds. This is the object MINT's in-network hierarchy maintains —
/// ancestor views are supersets of descendant views.
///
/// Storage is a flat vector sorted by group id (flat-map semantics): lookups
/// binary-search, MergeView is a linear two-pointer merge, and iteration is a
/// cache-friendly contiguous scan. Views are the per-node per-epoch message
/// payload of every converge-cast, so the node-per-entry allocation of the
/// previous std::map representation was the simulator's dominant allocator
/// traffic. The ordering contract (entries ascending by group id; ranking by
/// RankHigher) is identical to the map-based implementation, so all results
/// are bit-identical.
class GroupView {
 public:
  using Entry = std::pair<sim::GroupId, PartialAgg>;

  /// Adds one sensor reading to `group`.
  void AddReading(sim::GroupId group, double value);

  /// Merges a partial for `group`.
  void MergePartial(sim::GroupId group, const PartialAgg& partial);

  /// Merges a whole view (linear two-pointer merge).
  void MergeView(const GroupView& other);

  /// Merge overload that steals `other`'s storage when this view is empty —
  /// the first child of every converge-cast merge.
  void MergeView(GroupView&& other);

  /// Overwrites (or inserts) the partial cached for `group` — the
  /// materialized-view maintenance primitive MINT's delta application uses.
  void Set(sim::GroupId group, const PartialAgg& partial);

  /// Windowed-incremental maintenance: retracts the `evicted` group's
  /// contribution (no-op when absent) and overwrites `inserted` with `added`
  /// — the O(delta) alternative to rebuilding a sliding-window view from
  /// scratch each epoch. An empty `added` (count 0) removes `inserted`
  /// instead of caching a contributor-less group.
  void ApplyWindowDelta(sim::GroupId evicted, sim::GroupId inserted, const PartialAgg& added) {
    Erase(evicted);
    if (added.count == 0) {
      Erase(inserted);
    } else {
      Set(inserted, added);
    }
  }

  /// Partial for `group`; empty partial if absent.
  PartialAgg Get(sim::GroupId group) const;

  /// Pointer to `group`'s partial, or nullptr when absent (no copy).
  const PartialAgg* Find(sim::GroupId group) const;

  /// True when `group` is present.
  bool Contains(sim::GroupId group) const { return Find(group) != nullptr; }

  /// Removes `group`; no-op when absent.
  void Erase(sim::GroupId group);

  /// Removes all groups (capacity is retained for reuse across epochs).
  void clear() { entries_.clear(); }

  /// Pre-sizes the backing storage.
  void Reserve(size_t n) { entries_.reserve(n); }

  /// Number of groups.
  size_t size() const { return entries_.size(); }
  /// True when no groups are present.
  bool empty() const { return entries_.empty(); }

  /// Total readings merged across all groups — how many sensors contributed
  /// to this view (the TopKResult::contributors accounting).
  uint32_t ContributorCount() const;

  /// Underlying entries, ascending by group id.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Final values for all groups under `kind`, ranked best-first.
  std::vector<RankedItem> Ranked(AggKind kind) const;

  /// The K best groups under `kind` (all groups if fewer than k). Partial
  /// selection (nth_element) + sort of the prefix: same output as ranking
  /// everything, without the full sort.
  std::vector<RankedItem> TopK(AggKind kind, size_t k) const;

  /// Keeps only the K best groups under `kind` (the *naive* local pruning of
  /// Section III-A — provided so the Naive algorithm and tests can exercise
  /// the anomaly).
  void PruneToLocalTopK(AggKind kind, size_t k);

 private:
  std::vector<Entry> entries_;
};

/// Wire codec for views. Entry layouts (little endian):
///   AVG / SUM / COUNT / MIN: group u16, sum i64, count u16, min i32 -> 16 B
///   MAX:                     group u16, max i32                    ->  6 B
/// A serialized view is: count u16, then entries. The MAX layout is smaller
/// because MAX pruning needs no completeness bookkeeping (see DESIGN.md).
namespace codec {

/// Serialized size of a view with `entries` entries under `kind`.
size_t ViewWireBytes(AggKind kind, size_t entries);

/// Appends `view` to `w`.
void WriteView(net::Writer& w, AggKind kind, const GroupView& view);

/// Parses a view; returns false on malformed input.
bool ReadView(net::Reader& r, AggKind kind, GroupView* out);

}  // namespace codec

}  // namespace kspot::agg
