#include "agg/aggregate.hpp"

#include <algorithm>

#include "util/fixed_point.hpp"
#include "util/string_util.hpp"

namespace kspot::agg {

std::string AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kAvg: return "AVG";
    case AggKind::kSum: return "SUM";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
    case AggKind::kCount: return "COUNT";
  }
  return "?";
}

bool ParseAggKind(const std::string& name, AggKind* out) {
  static const std::pair<const char*, AggKind> kNames[] = {
      {"AVG", AggKind::kAvg},     {"AVERAGE", AggKind::kAvg}, {"SUM", AggKind::kSum},
      {"MIN", AggKind::kMin},     {"MAX", AggKind::kMax},     {"COUNT", AggKind::kCount},
  };
  for (const auto& [n, k] : kNames) {
    if (util::EqualsIgnoreCase(name, n)) {
      *out = k;
      return true;
    }
  }
  return false;
}

PartialAgg PartialAgg::FromValue(double value) {
  int32_t fx = util::fixed_point::Encode(value);
  PartialAgg p;
  p.sum_fx = fx;
  p.count = 1;
  p.min_fx = fx;
  p.max_fx = fx;
  return p;
}

void PartialAgg::Merge(const PartialAgg& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  sum_fx += other.sum_fx;
  count += other.count;
  min_fx = std::min(min_fx, other.min_fx);
  max_fx = std::max(max_fx, other.max_fx);
}

double PartialAgg::Final(AggKind kind) const {
  if (count == 0) return 0.0;
  switch (kind) {
    case AggKind::kAvg:
      return static_cast<double>(sum_fx) / util::fixed_point::kScale /
             static_cast<double>(count);
    case AggKind::kSum:
      return static_cast<double>(sum_fx) / util::fixed_point::kScale;
    case AggKind::kMin:
      return util::fixed_point::Decode(min_fx);
    case AggKind::kMax:
      return util::fixed_point::Decode(max_fx);
    case AggKind::kCount:
      return static_cast<double>(count);
  }
  return 0.0;
}

}  // namespace kspot::agg
