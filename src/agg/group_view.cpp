#include "agg/group_view.hpp"

#include <algorithm>

namespace kspot::agg {

bool RankHigher(const RankedItem& a, const RankedItem& b) {
  if (a.value != b.value) return a.value > b.value;
  return a.group < b.group;
}

void GroupView::AddReading(sim::GroupId group, double value) {
  entries_[group].Merge(PartialAgg::FromValue(value));
}

void GroupView::MergePartial(sim::GroupId group, const PartialAgg& partial) {
  entries_[group].Merge(partial);
}

void GroupView::MergeView(const GroupView& other) {
  for (const auto& [group, partial] : other.entries_) MergePartial(group, partial);
}

PartialAgg GroupView::Get(sim::GroupId group) const {
  auto it = entries_.find(group);
  return it == entries_.end() ? PartialAgg{} : it->second;
}

uint32_t GroupView::ContributorCount() const {
  uint32_t count = 0;
  for (const auto& [group, partial] : entries_) count += partial.count;
  return count;
}

std::vector<RankedItem> GroupView::Ranked(AggKind kind) const {
  std::vector<RankedItem> out;
  out.reserve(entries_.size());
  for (const auto& [group, partial] : entries_) {
    out.push_back(RankedItem{group, partial.Final(kind)});
  }
  std::sort(out.begin(), out.end(), RankHigher);
  return out;
}

std::vector<RankedItem> GroupView::TopK(AggKind kind, size_t k) const {
  std::vector<RankedItem> ranked = Ranked(kind);
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

void GroupView::PruneToLocalTopK(AggKind kind, size_t k) {
  if (entries_.size() <= k) return;
  std::vector<RankedItem> keep = TopK(kind, k);
  std::map<sim::GroupId, PartialAgg> pruned;
  for (const RankedItem& item : keep) {
    pruned[item.group] = entries_[item.group];
  }
  entries_ = std::move(pruned);
}

namespace codec {

namespace {

// Per-entry wire bytes after the u16 group id. Each aggregate carries exactly
// the fields its final value needs, plus the merge count where MINT's
// completeness check requires it (AVG/SUM/MIN/COUNT; MAX pruning is
// completeness-free, see DESIGN.md).
size_t EntryBodyBytes(AggKind kind) {
  switch (kind) {
    case AggKind::kAvg: return 8 + 2;  // sum, count
    case AggKind::kSum: return 8 + 2;  // sum, count
    case AggKind::kMin: return 4 + 2;  // min, count
    case AggKind::kMax: return 4;      // max
    case AggKind::kCount: return 2;    // count
  }
  return 0;
}

}  // namespace

size_t ViewWireBytes(AggKind kind, size_t entries) {
  return 2 + entries * (2 + EntryBodyBytes(kind));
}

void WriteView(net::Writer& w, AggKind kind, const GroupView& view) {
  w.PutU16(static_cast<uint16_t>(view.size()));
  for (const auto& [group, partial] : view.entries()) {
    w.PutU16(static_cast<uint16_t>(group));
    switch (kind) {
      case AggKind::kAvg:
      case AggKind::kSum:
        w.PutI64(partial.sum_fx);
        w.PutU16(static_cast<uint16_t>(partial.count));
        break;
      case AggKind::kMin:
        w.PutI32(partial.min_fx);
        w.PutU16(static_cast<uint16_t>(partial.count));
        break;
      case AggKind::kMax:
        w.PutI32(partial.max_fx);
        break;
      case AggKind::kCount:
        w.PutU16(static_cast<uint16_t>(partial.count));
        break;
    }
  }
}

bool ReadView(net::Reader& r, AggKind kind, GroupView* out) {
  // Decoded partials are only meaningful under the same `kind` they were
  // encoded with; fields not on the wire are defaulted.
  uint16_t n = r.GetU16();
  for (uint16_t i = 0; i < n; ++i) {
    auto group = static_cast<sim::GroupId>(r.GetU16());
    PartialAgg p;
    switch (kind) {
      case AggKind::kAvg:
      case AggKind::kSum:
        p.sum_fx = r.GetI64();
        p.count = r.GetU16();
        break;
      case AggKind::kMin:
        p.min_fx = r.GetI32();
        p.count = r.GetU16();
        break;
      case AggKind::kMax:
        p.max_fx = r.GetI32();
        p.count = 1;
        break;
      case AggKind::kCount:
        p.count = r.GetU16();
        break;
    }
    if (!r.ok()) return false;
    out->MergePartial(group, p);
  }
  return r.ok();
}

}  // namespace codec

}  // namespace kspot::agg
