#include "agg/group_view.hpp"

#include <algorithm>

namespace kspot::agg {

namespace {

bool EntryBefore(const GroupView::Entry& entry, sim::GroupId group) {
  return entry.first < group;
}

}  // namespace

bool RankHigher(const RankedItem& a, const RankedItem& b) {
  if (a.value != b.value) return a.value > b.value;
  return a.group < b.group;
}

void GroupView::AddReading(sim::GroupId group, double value) {
  MergePartial(group, PartialAgg::FromValue(value));
}

void GroupView::MergePartial(sim::GroupId group, const PartialAgg& partial) {
  // Appends (the sorted-input case: codec decode, in-order building) hit the
  // end() fast path and stay O(1) amortized.
  auto it = std::lower_bound(entries_.begin(), entries_.end(), group, EntryBefore);
  if (it != entries_.end() && it->first == group) {
    it->second.Merge(partial);
  } else {
    entries_.insert(it, Entry{group, partial});
  }
}

void GroupView::Set(sim::GroupId group, const PartialAgg& partial) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), group, EntryBefore);
  if (it != entries_.end() && it->first == group) {
    it->second = partial;
  } else {
    entries_.insert(it, Entry{group, partial});
  }
}

void GroupView::MergeView(const GroupView& other) {
  if (other.entries_.empty()) return;
  if (entries_.empty()) {
    entries_ = other.entries_;  // copy-assign reuses our capacity
    return;
  }
  // Disjoint-range fast path: converge-casts over clustered trees often merge
  // sibling subtrees whose group ranges do not interleave.
  if (entries_.back().first < other.entries_.front().first) {
    entries_.insert(entries_.end(), other.entries_.begin(), other.entries_.end());
    return;
  }
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->first < b->first) {
      merged.push_back(std::move(*a++));
    } else if (b->first < a->first) {
      merged.push_back(*b++);
    } else {
      merged.push_back(std::move(*a++));
      merged.back().second.Merge(b->second);
      ++b;
    }
  }
  merged.insert(merged.end(), std::make_move_iterator(a), std::make_move_iterator(entries_.end()));
  merged.insert(merged.end(), b, other.entries_.end());
  entries_ = std::move(merged);
}

void GroupView::MergeView(GroupView&& other) {
  if (entries_.empty()) {
    entries_ = std::move(other.entries_);
    return;
  }
  MergeView(other);
}

PartialAgg GroupView::Get(sim::GroupId group) const {
  const PartialAgg* found = Find(group);
  return found == nullptr ? PartialAgg{} : *found;
}

const PartialAgg* GroupView::Find(sim::GroupId group) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), group, EntryBefore);
  return it != entries_.end() && it->first == group ? &it->second : nullptr;
}

void GroupView::Erase(sim::GroupId group) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), group, EntryBefore);
  if (it != entries_.end() && it->first == group) entries_.erase(it);
}

uint32_t GroupView::ContributorCount() const {
  uint32_t count = 0;
  for (const auto& [group, partial] : entries_) count += partial.count;
  return count;
}

std::vector<RankedItem> GroupView::Ranked(AggKind kind) const {
  std::vector<RankedItem> out;
  out.reserve(entries_.size());
  for (const auto& [group, partial] : entries_) {
    out.push_back(RankedItem{group, partial.Final(kind)});
  }
  std::sort(out.begin(), out.end(), RankHigher);
  return out;
}

std::vector<RankedItem> GroupView::TopK(AggKind kind, size_t k) const {
  std::vector<RankedItem> out;
  out.reserve(entries_.size());
  for (const auto& [group, partial] : entries_) {
    out.push_back(RankedItem{group, partial.Final(kind)});
  }
  // RankHigher is a strict total order (ties break on group id), so the k-set
  // selected by nth_element and its sorted order are both unique — identical
  // output to sorting everything and truncating.
  if (out.size() > k) {
    std::nth_element(out.begin(), out.begin() + static_cast<long>(k), out.end(), RankHigher);
    out.resize(k);
  }
  std::sort(out.begin(), out.end(), RankHigher);
  return out;
}

void GroupView::PruneToLocalTopK(AggKind kind, size_t k) {
  if (entries_.size() <= k) return;
  std::vector<RankedItem> keep = TopK(kind, k);
  std::vector<sim::GroupId> keep_groups;
  keep_groups.reserve(keep.size());
  for (const RankedItem& item : keep) keep_groups.push_back(item.group);
  std::sort(keep_groups.begin(), keep_groups.end());
  auto removed = std::remove_if(entries_.begin(), entries_.end(), [&](const Entry& entry) {
    return !std::binary_search(keep_groups.begin(), keep_groups.end(), entry.first);
  });
  entries_.erase(removed, entries_.end());
}

namespace codec {

namespace {

// Per-entry wire bytes after the u16 group id. Each aggregate carries exactly
// the fields its final value needs, plus the merge count where MINT's
// completeness check requires it (AVG/SUM/MIN/COUNT; MAX pruning is
// completeness-free, see DESIGN.md).
size_t EntryBodyBytes(AggKind kind) {
  switch (kind) {
    case AggKind::kAvg: return 8 + 2;  // sum, count
    case AggKind::kSum: return 8 + 2;  // sum, count
    case AggKind::kMin: return 4 + 2;  // min, count
    case AggKind::kMax: return 4;      // max
    case AggKind::kCount: return 2;    // count
  }
  return 0;
}

}  // namespace

size_t ViewWireBytes(AggKind kind, size_t entries) {
  return 2 + entries * (2 + EntryBodyBytes(kind));
}

void WriteView(net::Writer& w, AggKind kind, const GroupView& view) {
  w.PutU16(static_cast<uint16_t>(view.size()));
  for (const auto& [group, partial] : view.entries()) {
    w.PutU16(static_cast<uint16_t>(group));
    switch (kind) {
      case AggKind::kAvg:
      case AggKind::kSum:
        w.PutI64(partial.sum_fx);
        w.PutU16(static_cast<uint16_t>(partial.count));
        break;
      case AggKind::kMin:
        w.PutI32(partial.min_fx);
        w.PutU16(static_cast<uint16_t>(partial.count));
        break;
      case AggKind::kMax:
        w.PutI32(partial.max_fx);
        break;
      case AggKind::kCount:
        w.PutU16(static_cast<uint16_t>(partial.count));
        break;
    }
  }
}

bool ReadView(net::Reader& r, AggKind kind, GroupView* out) {
  // Decoded partials are only meaningful under the same `kind` they were
  // encoded with; fields not on the wire are defaulted.
  uint16_t n = r.GetU16();
  out->Reserve(out->size() + n);
  for (uint16_t i = 0; i < n; ++i) {
    auto group = static_cast<sim::GroupId>(r.GetU16());
    PartialAgg p;
    switch (kind) {
      case AggKind::kAvg:
      case AggKind::kSum:
        p.sum_fx = r.GetI64();
        p.count = r.GetU16();
        break;
      case AggKind::kMin:
        p.min_fx = r.GetI32();
        p.count = r.GetU16();
        break;
      case AggKind::kMax:
        p.max_fx = r.GetI32();
        p.count = 1;
        break;
      case AggKind::kCount:
        p.count = r.GetU16();
        break;
    }
    if (!r.ok()) return false;
    out->MergePartial(group, p);
  }
  return r.ok();
}

}  // namespace codec

}  // namespace kspot::agg
