#pragma once

#include <cstdint>
#include <string>

namespace kspot::agg {

/// Aggregate functions supported by the KSpot query panel (AVG, MIN, MAX per
/// the paper's GUI, plus SUM and COUNT which TAG provides for free).
enum class AggKind : uint8_t {
  kAvg,
  kSum,
  kMin,
  kMax,
  kCount,
};

/// Human-readable name ("AVG", ...).
std::string AggKindName(AggKind kind);

/// Parses an aggregate name (case-insensitive); false when unknown.
bool ParseAggKind(const std::string& name, AggKind* out);

/// Mergeable partial aggregate state — TAG's partial state record.
///
/// All arithmetic is integer fixed-point (util::fixed_point) so that merging
/// partials in any tree order yields bit-identical results to centralized
/// evaluation; only the final AVG division returns to floating point.
struct PartialAgg {
  int64_t sum_fx = 0;   ///< Sum of fixed-point readings.
  uint32_t count = 0;   ///< Number of readings merged.
  int32_t min_fx = 0;   ///< Minimum fixed-point reading (valid when count > 0).
  int32_t max_fx = 0;   ///< Maximum fixed-point reading (valid when count > 0).

  /// Partial for a single reading `value` (quantized to fixed point).
  static PartialAgg FromValue(double value);

  /// Merges `other` into this partial (associative + commutative).
  void Merge(const PartialAgg& other);

  /// Final value under `kind` (AVG divides; COUNT returns count).
  double Final(AggKind kind) const;

  /// True when no readings have been merged.
  bool empty() const { return count == 0; }
};

}  // namespace kspot::agg
