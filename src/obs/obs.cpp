#include "obs/obs.hpp"

#include <chrono>
#include <cstdlib>
#include <string_view>

namespace kspot::obs {

namespace internal {
std::atomic<bool> g_metrics_on{false};
std::atomic<bool> g_tracing_on{false};
}  // namespace internal

namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const auto kEpoch = std::chrono::steady_clock::now();
  return kEpoch;
}

[[maybe_unused]] const bool g_env_applied = [] {
  const char* v = std::getenv("KSPOT_OBS");
  if (v == nullptr) return false;
  std::string_view s(v);
  bool all = s == "1" || s == "all" || s == "on";
  if (all || s == "metrics") internal::g_metrics_on.store(true, std::memory_order_relaxed);
  if (all || s == "trace" || s == "tracing") {
    internal::g_tracing_on.store(true, std::memory_order_relaxed);
  }
  return true;
}();

std::atomic<uint32_t> g_next_thread_tag{0};

}  // namespace

void SetMetricsEnabled(bool on) {
  internal::g_metrics_on.store(on, std::memory_order_relaxed);
}

void SetTracingEnabled(bool on) {
  internal::g_tracing_on.store(on, std::memory_order_relaxed);
}

uint64_t NowMicros() {
  auto d = std::chrono::steady_clock::now() - ProcessEpoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

uint32_t ThreadTag() {
  thread_local const uint32_t kTag = g_next_thread_tag.fetch_add(1, std::memory_order_relaxed);
  return kTag;
}

}  // namespace kspot::obs
