#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/stats.hpp"

namespace kspot::obs {

namespace internal {
/// Lock-free relaxed add/min/max on an atomic double (CAS loop; portable
/// across toolchains that lack atomic<double>::fetch_add).
inline void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
inline void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
inline void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace internal

/// Monotonic event count. Add() is a no-op while metrics are disabled, so a
/// handle cached at an instrumentation site costs one relaxed load + branch
/// when off.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (MetricsOn()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. the shard-lane imbalance ratio).
class Gauge {
 public:
  void Set(double v) {
    if (MetricsOn()) value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed latency/size histogram: kSubBuckets sub-buckets per power of
/// two over [2^(kMinExp-1), 2^(kMaxExp-1)), i.e. ~5e-4 .. 5.6e14, which
/// covers sub-microsecond spans through multi-day totals with <= 1/kSubBuckets
/// relative bucket width. Observe is a frexp plus a few relaxed atomic RMWs —
/// safe from concurrent shard lanes and TSan-clean. Snapshot() interpolates
/// p50/p95/p99 inside the target bucket and clamps them to the observed
/// min/max, reusing util::DistSummary as the output shape.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;
  static constexpr int kMinExp = -10;
  static constexpr int kMaxExp = 50;
  /// Bucket 0 catches v < 2^(kMinExp-1) (including <= 0); the last bucket
  /// catches v >= 2^(kMaxExp-1).
  static constexpr size_t kBucketCount =
      static_cast<size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  void Observe(double v) {
    if (!MetricsOn()) return;
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAdd(sum_, v);
    internal::AtomicMin(min_, v);
    internal::AtomicMax(max_, v);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Count/sum/min/max are exact; mean is sum/count; quantiles are
  /// bucket-interpolated (exact for count <= 1).
  util::DistSummary Snapshot() const;

  void Reset();

  static size_t BucketFor(double v);
  /// Smallest value mapping into `bucket`; 0 for the underflow bucket.
  static double BucketLowerBound(size_t bucket);

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

struct CounterSample {
  std::string name;
  std::string label;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string label;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string label;
  util::DistSummary dist;
};

/// A point-in-time copy of every registered metric, sorted by (name, label).
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }

  /// Serializes as the documented metrics JSON schema (schema_version 1):
  /// {"schema_version":1,"counters":[{"name","label","value"}...],
  ///  "gauges":[{"name","label","value"}...],
  ///  "histograms":[{"name","label","count","sum","min","max","mean",
  ///                 "p50","p95","p99"}...]}
  std::string ToJson() const;
};

/// Named metric registry. Handles returned by counter()/gauge()/histogram()
/// are valid for the registry's lifetime (the process, for Registry()), so
/// instrumentation sites cache them in function-local statics and pay no
/// lookup on the hot path. Registration itself takes a mutex and may happen
/// lazily from any thread.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, std::string_view label = {});
  Gauge& gauge(std::string_view name, std::string_view label = {});
  Histogram& histogram(std::string_view name, std::string_view label = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric; handles stay valid.
  void Reset();

 private:
  using Key = std::pair<std::string, std::string>;

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

/// The process-global registry every built-in instrumentation site records
/// into (never destroyed, so handles outlive static teardown).
MetricsRegistry& Registry();

}  // namespace kspot::obs
