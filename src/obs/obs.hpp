#pragma once

#include <atomic>
#include <cstdint>

namespace kspot::obs {

namespace internal {
extern std::atomic<bool> g_metrics_on;
extern std::atomic<bool> g_tracing_on;
}  // namespace internal

/// Process-global observability switches, both OFF by default.
///
/// The zero-perturbation contract every instrumentation site follows:
///   - checks are a relaxed atomic load + branch, placed at wave/epoch
///     granularity, never inside per-message loops;
///   - only wall-clock time is measured, and nothing measured ever feeds
///     back into simulated time, an RNG, or any golden-pinned state —
///     results are bit-identical with observability fully enabled
///     (pinned by golden_equivalence_test).
///
/// The KSPOT_OBS environment variable turns the switches on at process
/// start so any binary can be observed without code changes:
/// "metrics", "trace", or "all"/"on"/"1" for both.
inline bool MetricsOn() { return internal::g_metrics_on.load(std::memory_order_relaxed); }
inline bool TracingOn() { return internal::g_tracing_on.load(std::memory_order_relaxed); }
void SetMetricsEnabled(bool on);
void SetTracingEnabled(bool on);

/// Monotonic wall-clock microseconds since the first call in this process.
uint64_t NowMicros();

/// Stable small integer for the calling thread (0, 1, 2, ... in first-use
/// order); the Chrome trace tid.
uint32_t ThreadTag();

}  // namespace kspot::obs
