#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"

namespace kspot::obs {

/// One completed span: an interned name, the recording thread's tag, and a
/// wall-clock [start, start+dur) window in microseconds.
struct TraceSpan {
  uint32_t name_id = 0;
  uint32_t tid = 0;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
};

/// Ring-buffered span recorder with its own name interning (ids are stable,
/// 0 is reserved as the invalid/no-op id), a cache mapping the simulator's
/// interned sim::PhaseId values to span names, and a Chrome trace-event JSON
/// exporter (chrome://tracing / Perfetto loadable).
///
/// Recording takes a mutex: spans are produced at wave/epoch granularity —
/// a handful per epoch, never per message — so contention is negligible and
/// the recorder stays TSan-clean when shard lanes record concurrently. When
/// the ring is full the oldest spans are overwritten (dropped() counts them);
/// a trace is a tail window, not an unbounded log.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 16;

  explicit Tracer(size_t capacity = kDefaultCapacity);

  /// Interns `name`, returning its stable nonzero id.
  uint32_t InternName(std::string_view name);

  /// Name id for an interned simulator phase: the first call for a given
  /// phase id interns `label`, later calls are an indexed vector read.
  uint32_t NameIdForPhase(uint32_t phase_id, std::string_view label);

  /// The interned name for `name_id` ("" for 0 / unknown ids).
  std::string Name(uint32_t name_id) const;

  /// Records one completed span (tid is taken from the calling thread).
  /// Unconditional — callers gate on TracingOn(); ScopedSpan does this.
  void Record(uint32_t name_id, uint64_t start_us, uint64_t dur_us);

  /// Buffered span count (<= capacity).
  size_t size() const;
  /// Spans recorded over the tracer's lifetime.
  uint64_t total_recorded() const;
  /// Spans overwritten by ring wrap-around.
  uint64_t dropped() const;

  /// Copies the buffered spans oldest-first.
  std::vector<TraceSpan> Spans() const;

  /// Drops buffered spans (interned names survive).
  void Clear();
  /// Resizes the ring (clears buffered spans).
  void SetCapacity(size_t capacity);

  /// Writes the buffered spans as Chrome trace-event JSON:
  /// {"traceEvents":[{"name","cat":"kspot","ph":"X","ts","dur","pid":0,
  ///  "tid"}...],"displayTimeUnit":"ms"} — complete events sorted by start.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<uint32_t> phase_name_ids_;
  std::vector<TraceSpan> ring_;
  size_t capacity_;
  uint64_t total_ = 0;
};

/// The process-global tracer every built-in span records into (never
/// destroyed, so cached name ids outlive static teardown).
Tracer& GlobalTracer();

/// RAII span: times its scope on the wall clock and records into the global
/// tracer. A zero name id or tracing being disabled at construction makes it
/// a complete no-op, so call sites write
///   ScopedSpan span(TracingOn() ? GlobalTracer().InternName("x") : 0);
/// or cache the id in a function-local static and construct unconditionally.
class ScopedSpan {
 public:
  explicit ScopedSpan(uint32_t name_id) : name_id_(name_id), live_(name_id != 0 && TracingOn()) {
    if (live_) start_us_ = NowMicros();
  }
  ~ScopedSpan() {
    if (live_) GlobalTracer().Record(name_id_, start_us_, NowMicros() - start_us_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  uint32_t name_id_;
  bool live_;
  uint64_t start_us_ = 0;
};

}  // namespace kspot::obs
