#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json.hpp"

namespace kspot::obs {

size_t Histogram::BucketFor(double v) {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN underflow
  int e = 0;
  double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  if (e < kMinExp) return 0;
  if (e >= kMaxExp) return kBucketCount - 1;
  auto sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<size_t>(e - kMinExp) * kSubBuckets + static_cast<size_t>(sub);
}

double Histogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0.0;
  if (bucket >= kBucketCount) bucket = kBucketCount - 1;
  size_t rel = bucket - 1;
  int e = kMinExp + static_cast<int>(rel / kSubBuckets);
  auto sub = static_cast<int>(rel % kSubBuckets);
  return std::ldexp(0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets), e);
}

namespace {

/// Rank-interpolated quantile over the bucket counts, mirroring
/// util::SortedQuantile's rank convention (q * (count - 1)).
double BucketQuantile(const std::array<std::atomic<uint64_t>, Histogram::kBucketCount>& buckets,
                      uint64_t count, double q) {
  double rank = q * static_cast<double>(count - 1);
  double cum = 0.0;
  for (size_t b = 0; b < Histogram::kBucketCount; ++b) {
    auto in_bucket = static_cast<double>(buckets[b].load(std::memory_order_relaxed));
    if (in_bucket <= 0.0) continue;
    if (cum + in_bucket > rank) {
      double lo = Histogram::BucketLowerBound(b);
      double hi = b + 1 < Histogram::kBucketCount ? Histogram::BucketLowerBound(b + 1)
                                                  : Histogram::BucketLowerBound(b) * 2.0;
      double frac = (rank - cum) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    cum += in_bucket;
  }
  return Histogram::BucketLowerBound(Histogram::kBucketCount - 1);
}

}  // namespace

util::DistSummary Histogram::Snapshot() const {
  util::DistSummary s;
  // count_ is bumped after the bucket, so a torn concurrent read can only
  // see count <= sum(buckets); quantile walks clamp via the rank anyway.
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.mean = s.sum / static_cast<double>(s.count);
  if (s.count == 1) {
    s.p50 = s.p95 = s.p99 = s.min;
    return s;
  }
  auto clamp = [&](double v) { return std::min(std::max(v, s.min), s.max); };
  s.p50 = clamp(BucketQuantile(buckets_, s.count, 0.50));
  s.p95 = clamp(BucketQuantile(buckets_, s.count, 0.95));
  s.p99 = clamp(BucketQuantile(buckets_, s.count, 0.99));
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

namespace {

template <typename Map, typename Metric>
Metric& FindOrCreate(std::mutex& mu, Map& map, std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu);
  auto key = std::make_pair(std::string(name), std::string(label));
  auto it = map.find(key);
  if (it == map.end()) {
    it = map.emplace(std::move(key), std::make_unique<Metric>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name, std::string_view label) {
  return FindOrCreate<decltype(counters_), Counter>(mu_, counters_, name, label);
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view label) {
  return FindOrCreate<decltype(gauges_), Gauge>(mu_, gauges_, name, label);
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view label) {
  return FindOrCreate<decltype(histograms_), Histogram>(mu_, histograms_, name, label);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    snap.counters.push_back({key.first, key.second, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    snap.gauges.push_back({key.first, key.second, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    snap.histograms.push_back({key.first, key.second, h->Snapshot()});
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) c->Reset();
  for (auto& [key, g] : gauges_) g->Reset();
  for (auto& [key, h] : histograms_) h->Reset();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.BeginObject();
  w.Key("schema_version");
  w.Value(1);
  w.Key("counters");
  w.BeginArray();
  for (const CounterSample& c : counters) {
    w.BeginObject();
    w.Key("name");
    w.Value(c.name);
    w.Key("label");
    w.Value(c.label);
    w.Key("value");
    w.Value(c.value);
    w.EndObject();
  }
  w.EndArray();
  w.Key("gauges");
  w.BeginArray();
  for (const GaugeSample& g : gauges) {
    w.BeginObject();
    w.Key("name");
    w.Value(g.name);
    w.Key("label");
    w.Value(g.label);
    w.Key("value");
    w.Value(g.value);
    w.EndObject();
  }
  w.EndArray();
  w.Key("histograms");
  w.BeginArray();
  for (const HistogramSample& h : histograms) {
    w.BeginObject();
    w.Key("name");
    w.Value(h.name);
    w.Key("label");
    w.Value(h.label);
    w.Key("count");
    w.Value(static_cast<uint64_t>(h.dist.count));
    w.Key("sum");
    w.Value(h.dist.sum);
    w.Key("min");
    w.Value(h.dist.min);
    w.Key("max");
    w.Value(h.dist.max);
    w.Key("mean");
    w.Value(h.dist.mean);
    w.Key("p50");
    w.Value(h.dist.p50);
    w.Key("p95");
    w.Value(h.dist.p95);
    w.Key("p99");
    w.Value(h.dist.p99);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return os.str();
}

MetricsRegistry& Registry() {
  static MetricsRegistry* kRegistry = new MetricsRegistry();
  return *kRegistry;
}

}  // namespace kspot::obs
