#include "obs/trace.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace kspot::obs {

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  names_.push_back("");  // id 0 is reserved as the no-op id
}

uint32_t Tracer::InternName(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  auto id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

uint32_t Tracer::NameIdForPhase(uint32_t phase_id, std::string_view label) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (phase_id < phase_name_ids_.size() && phase_name_ids_[phase_id] != 0) {
      return phase_name_ids_[phase_id];
    }
  }
  uint32_t name_id = InternName(label);
  std::lock_guard<std::mutex> lock(mu_);
  if (phase_id >= phase_name_ids_.size()) phase_name_ids_.resize(phase_id + 1, 0);
  phase_name_ids_[phase_id] = name_id;
  return name_id;
}

std::string Tracer::Name(uint32_t name_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (name_id >= names_.size()) return "";
  return names_[name_id];
}

void Tracer::Record(uint32_t name_id, uint64_t start_us, uint64_t dur_us) {
  TraceSpan span{name_id, ThreadTag(), start_us, dur_us};
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[total_ % capacity_] = span;
  }
  ++total_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

std::vector<TraceSpan> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (total_ <= capacity_) return ring_;
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  size_t head = total_ % capacity_;  // oldest surviving span
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head + i) % capacity_]);
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_ = 0;
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  total_ = 0;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  std::vector<TraceSpan> spans = Spans();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) { return a.start_us < b.start_us; });
  util::JsonWriter w(os);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceSpan& s : spans) {
    w.BeginObject();
    w.Key("name");
    w.Value(Name(s.name_id));
    w.Key("cat");
    w.Value("kspot");
    w.Key("ph");
    w.Value("X");
    w.Key("ts");
    w.Value(s.start_us);
    w.Key("dur");
    w.Value(s.dur_us);
    w.Key("pid");
    w.Value(0);
    w.Key("tid");
    w.Value(static_cast<uint64_t>(s.tid));
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.Value("ms");
  w.EndObject();
}

Tracer& GlobalTracer() {
  static Tracer* kTracer = new Tracer();
  return *kTracer;
}

}  // namespace kspot::obs
