#pragma once

#include <string>
#include <utility>
#include <variant>

namespace kspot::util {

/// Lightweight error-or-success result used across module boundaries where
/// failures are expected (query parsing, config loading, deserialization).
/// Expected failures never throw; programming errors may assert.
class Status {
 public:
  /// Creates an OK status.
  Status() = default;

  /// Creates an error status with a human-readable message.
  static Status Error(std::string message) { return Status(std::move(message)); }

  /// Creates an OK status.
  static Status Ok() { return Status(); }

  /// True when no error occurred.
  bool ok() const { return message_.empty(); }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, mirrors absl::StatusOr ergonomics).
  StatusOr(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs from an error status.
  StatusOr(Status status) : data_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  /// True when a value is held.
  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The held value. Requires ok().
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// The held error. Returns OK when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace kspot::util
