#include "util/rng.hpp"

#include <cmath>

namespace kspot::util {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation with rejection.
  if (bound == 0) return 0;
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<uint64_t>(m) >= threshold) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return mean + stddev * u * factor;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Split(uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix to seed a
  // decorrelated child stream without disturbing this generator.
  uint64_t mix = state_[0] ^ Rotl(state_[3], 23) ^ (stream_id * 0xD1B54A32D192ED03ULL);
  return Rng(SplitMix64(mix));
}

}  // namespace kspot::util
