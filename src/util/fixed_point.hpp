#pragma once

#include <cstdint>

namespace kspot::util {

/// Fixed-point codec for sensor values on the wire.
///
/// Motes exchange sensor aggregates as 32-bit fixed-point numbers with a
/// 1/256 resolution (8 fractional bits), matching the integer ADC world of
/// TinyOS while allowing fractional averages. The codec is exact for values
/// produced by `Quantize`, which the data generators apply at the source, so
/// in-network arithmetic matches sink-side arithmetic bit-for-bit.
namespace fixed_point {

/// Number of fractional bits.
inline constexpr int kFractionBits = 8;
/// Scale factor (2^kFractionBits).
inline constexpr double kScale = 256.0;

/// Encodes a double into fixed point (round-to-nearest).
inline int32_t Encode(double v) {
  double scaled = v * kScale;
  return static_cast<int32_t>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
}

/// Decodes a fixed-point value back to double.
inline double Decode(int32_t raw) { return static_cast<double>(raw) / kScale; }

/// Rounds `v` to the nearest representable fixed-point value.
inline double Quantize(double v) { return Decode(Encode(v)); }

}  // namespace fixed_point

}  // namespace kspot::util
