#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kspot::util {

/// Space-efficient probabilistic set membership filter.
///
/// Used by the TJA Hierarchical-Join phase to compress the candidate key set
/// `Lsink` before disseminating it down the routing tree (the optimization
/// described in the original TJA paper). False positives only cost extra
/// bytes, never correctness.
class BloomFilter {
 public:
  /// Creates a filter with `num_bits` bits (rounded up to a multiple of 64)
  /// and `num_hashes` probe positions per key.
  BloomFilter(size_t num_bits, int num_hashes);

  /// Sizes a filter for `expected_items` with target false-positive rate `fp_rate`.
  static BloomFilter WithExpectedItems(size_t expected_items, double fp_rate);

  /// Inserts a 64-bit key.
  void Insert(uint64_t key);

  /// Returns false if the key is definitely absent; true if it may be present.
  bool MayContain(uint64_t key) const;

  /// Number of bits in the filter (capacity, not population).
  size_t num_bits() const { return num_bits_; }

  /// Number of hash probes per key.
  int num_hashes() const { return num_hashes_; }

  /// Wire size of the filter in bytes (bit array + 1 byte hash count + 4 byte length).
  size_t WireSizeBytes() const { return bits_.size() * 8 + 5; }

  /// Expected false-positive rate given `n` inserted items.
  double EstimatedFpRate(size_t n) const;

  /// Serializes to `out` (appends). Format: u32 num_bits, u8 num_hashes, words.
  void Serialize(std::vector<uint8_t>& out) const;

  /// Parses a filter previously produced by Serialize. Returns bytes consumed,
  /// or 0 on malformed input.
  static size_t Deserialize(const uint8_t* data, size_t len, BloomFilter* out);

 private:
  size_t num_bits_;
  int num_hashes_;
  std::vector<uint64_t> bits_;

  static uint64_t Hash(uint64_t key, uint64_t seed);
};

}  // namespace kspot::util
