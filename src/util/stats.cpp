#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace kspot::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = total;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentiles::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (q <= 0.0) return values_.front();
  if (q >= 1.0) return values_.back();
  double pos = q * static_cast<double>(values_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

}  // namespace kspot::util
