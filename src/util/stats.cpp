#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace kspot::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = total;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1 || q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  double pos = q * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  // q < 1 guarantees pos < n-1, so lo <= n-2 and lo+1 is in range. An exact
  // boundary rank (frac == 0) returns the element itself.
  if (frac <= 0.0) return sorted[lo];
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

DistSummary SummarizeSorted(const std::vector<double>& sorted) {
  DistSummary s;
  s.count = sorted.size();
  if (sorted.empty()) return s;
  s.min = sorted.front();
  s.max = sorted.back();
  for (double v : sorted) s.sum += v;
  s.mean = s.sum / static_cast<double>(sorted.size());
  s.p50 = SortedQuantile(sorted, 0.50);
  s.p95 = SortedQuantile(sorted, 0.95);
  s.p99 = SortedQuantile(sorted, 0.99);
  return s;
}

void Percentiles::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Percentiles::Quantile(double q) const {
  EnsureSorted();
  return SortedQuantile(values_, q);
}

DistSummary Percentiles::Summary() const {
  EnsureSorted();
  return SummarizeSorted(values_);
}

}  // namespace kspot::util
