#include "util/table_printer.hpp"

#include <algorithm>
#include <sstream>

#include "util/string_util.hpp"

namespace kspot::util {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(FormatDouble(c));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "  " << cell << std::string(widths[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace kspot::util
