#include "util/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace kspot::util {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 3) {
    bytes /= 1024.0;
    ++unit;
  }
  return FormatDouble(bytes, unit == 0 ? 0 : 2) + " " + units[unit];
}

}  // namespace kspot::util
