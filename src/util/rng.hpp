#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kspot::util {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** seeded via splitmix64. Every stochastic component in
/// the library (topology generation, data generators, loss processes) takes an
/// explicit `Rng` so that simulations are reproducible from a single seed and
/// independent streams can be split off without correlation.
class Rng {
 public:
  /// Creates a generator whose entire state is derived from `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Returns a uniformly distributed integer in `[0, bound)`. `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniformly distributed integer in `[lo, hi]` (inclusive).
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a uniformly distributed double in `[0, 1)`.
  double NextDouble();

  /// Returns a uniformly distributed double in `[lo, hi)`.
  double NextDouble(double lo, double hi);

  /// Returns a normally distributed double with the given mean / standard deviation.
  double NextGaussian(double mean = 0.0, double stddev = 1.0);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Derives an independent child generator for substream `stream_id`.
  ///
  /// The child is seeded by mixing this generator's *current* state with the
  /// stream id through splitmix64, so:
  ///   - Split is `const`: it never advances this generator. Calling
  ///     `Split(i)` for any set of ids and then drawing from the parent
  ///     yields exactly the sequence the parent would have produced anyway.
  ///   - distinct ids give decorrelated streams (different splitmix seeds),
  ///     and the same id from the same parent state reproduces the same
  ///     stream — the property the sharded epoch waves rely on to stay
  ///     bit-identical for any shard or thread count (each sender draws
  ///     loss from its own `Split(node_id)` substream).
  ///   - splitting after the parent has advanced yields different children;
  ///     split at a well-defined point (e.g. shard-runtime attach).
  ///
  /// The exact child sequences are pinned by RngTest.SplitGoldenVectors.
  Rng Split(uint64_t stream_id) const;

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace kspot::util
