#include "util/bloom_filter.hpp"

#include <cmath>
#include <cstring>

namespace kspot::util {

BloomFilter::BloomFilter(size_t num_bits, int num_hashes)
    : num_bits_((num_bits + 63) / 64 * 64),
      num_hashes_(num_hashes < 1 ? 1 : num_hashes),
      bits_(num_bits_ / 64, 0) {
  if (num_bits_ == 0) {
    num_bits_ = 64;
    bits_.assign(1, 0);
  }
}

BloomFilter BloomFilter::WithExpectedItems(size_t expected_items, double fp_rate) {
  if (expected_items == 0) expected_items = 1;
  if (fp_rate <= 0.0) fp_rate = 1e-6;
  if (fp_rate >= 1.0) fp_rate = 0.5;
  double bits_per_item = -std::log(fp_rate) / (std::log(2.0) * std::log(2.0));
  size_t num_bits = static_cast<size_t>(std::ceil(bits_per_item * expected_items));
  int num_hashes = static_cast<int>(std::round(bits_per_item * std::log(2.0)));
  if (num_hashes < 1) num_hashes = 1;
  return BloomFilter(num_bits, num_hashes);
}

uint64_t BloomFilter::Hash(uint64_t key, uint64_t seed) {
  // 64-bit finalizer-style mix (xxHash-inspired), parameterized by seed.
  uint64_t h = key + seed * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

void BloomFilter::Insert(uint64_t key) {
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = Hash(key, static_cast<uint64_t>(i) + 1) % num_bits_;
    bits_[bit / 64] |= (1ULL << (bit % 64));
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = Hash(key, static_cast<uint64_t>(i) + 1) % num_bits_;
    if ((bits_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

double BloomFilter::EstimatedFpRate(size_t n) const {
  double k = static_cast<double>(num_hashes_);
  double m = static_cast<double>(num_bits_);
  double exponent = -k * static_cast<double>(n) / m;
  return std::pow(1.0 - std::exp(exponent), k);
}

void BloomFilter::Serialize(std::vector<uint8_t>& out) const {
  uint32_t nb = static_cast<uint32_t>(num_bits_);
  out.push_back(static_cast<uint8_t>(nb));
  out.push_back(static_cast<uint8_t>(nb >> 8));
  out.push_back(static_cast<uint8_t>(nb >> 16));
  out.push_back(static_cast<uint8_t>(nb >> 24));
  out.push_back(static_cast<uint8_t>(num_hashes_));
  for (uint64_t word : bits_) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<uint8_t>(word >> (8 * b)));
  }
}

size_t BloomFilter::Deserialize(const uint8_t* data, size_t len, BloomFilter* out) {
  if (len < 5) return 0;
  uint32_t nb = static_cast<uint32_t>(data[0]) | (static_cast<uint32_t>(data[1]) << 8) |
                (static_cast<uint32_t>(data[2]) << 16) | (static_cast<uint32_t>(data[3]) << 24);
  int nh = data[4];
  if (nb == 0 || nb % 64 != 0 || nh < 1) return 0;
  size_t words = nb / 64;
  size_t need = 5 + words * 8;
  if (len < need) return 0;
  BloomFilter bf(nb, nh);
  for (size_t w = 0; w < words; ++w) {
    uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<uint64_t>(data[5 + w * 8 + b]) << (8 * b);
    }
    bf.bits_[w] = word;
  }
  *out = bf;
  return need;
}

}  // namespace kspot::util
