#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace kspot::util {

/// A persistent fork-join worker pool for index-parallel jobs.
///
/// One pool serves any number of sequential ParallelFor calls; the worker
/// threads are spawned once and parked between jobs, so per-call overhead is
/// a notify + join barrier instead of thread creation. Both the trial fan-out
/// of runner::ExperimentEngine and the per-subtree shard lanes of
/// sim::ShardRuntime run on this pool.
///
/// ParallelFor is a barrier: it returns only when every index has executed.
/// Indices are claimed from an atomic counter, so work is distributed
/// dynamically; callers needing deterministic *results* must make each
/// index's work independent of claim order (both users above do).
class TaskPool {
 public:
  /// Creates a pool with `threads` workers; 0 = hardware concurrency.
  /// A pool of 1 runs every job inline on the calling thread.
  explicit TaskPool(size_t threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Worker count (>= 1; the calling thread participates in every job).
  size_t thread_count() const { return worker_count_ + 1; }

  /// Runs `fn(i)` for every i in [0, count), distributing indices over the
  /// workers plus the calling thread, and returns when all have finished.
  /// Exceptions thrown by `fn` propagate to the caller (first one wins).
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    /// Wall-clock publish time (obs::NowMicros) when metrics were enabled at
    /// publish, 0 otherwise; workers read it (after the mutex handoff) to
    /// record their claim latency.
    uint64_t publish_us = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void WorkerLoop();
  void RunIndices(Job& job);

  std::vector<std::thread> workers_;
  size_t worker_count_ = 0;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;
  std::shared_ptr<Job> job_;
  bool stop_ = false;
};

}  // namespace kspot::util
