#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace kspot::util {

/// Renders aligned plain-text tables for the benchmark harness, so every
/// experiment prints rows in the same visual form the paper's tables/figures
/// would use.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing trailing cells render empty, extras are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with 2 decimals.
  void AddRow(const std::vector<double>& cells);

  /// Writes the table (with a header separator) to `os`.
  void Print(std::ostream& os) const;

  /// Renders to a string.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kspot::util
