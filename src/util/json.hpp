#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace kspot::util {

/// A parsed JSON document: null / bool / number / string / array / object.
/// Object member order is preserved (experiment schemas are written and
/// compared in a stable order). Used by the experiment engine's result
/// sink and by tests that round-trip the BENCH_*.json schema.
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  /// Parses a JSON document. Rejects trailing garbage.
  static StatusOr<JsonValue> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Value accessors; each requires the matching kind.
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_members() const {
    return object_;
  }

  /// Object lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Appends to an array value.
  void Append(JsonValue v) { array_.push_back(std::move(v)); }

  /// Sets (or replaces) an object member, keeping insertion order.
  void Set(std::string key, JsonValue v);

  /// Serializes compactly (no whitespace).
  std::string Dump() const;
  void DumpTo(std::ostream& os) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Streaming JSON emitter with correct escaping and comma placement, for
/// writing experiment results without materializing a JsonValue tree.
///
///   JsonWriter w(os);
///   w.BeginObject();
///   w.Key("scenario"); w.Value("msgs_vs_k");
///   w.Key("trials"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; must be followed by exactly one value.
  void Key(std::string_view key);

  void Value(std::string_view v);
  void Value(const char* v) { Value(std::string_view(v)); }
  void Value(double v);
  void Value(int v) { Value(static_cast<double>(v)); }
  void Value(uint64_t v);
  void Value(bool v);
  void Null();

 private:
  void MaybeComma();
  std::ostream& os_;
  /// One entry per open container: true when a value has already been
  /// written at this level (so the next one needs a comma).
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

/// Escapes `s` as a JSON string literal including the surrounding quotes.
std::string JsonEscape(std::string_view s);

/// Formats a double the way JSON expects: integral values without a
/// fractional part, everything else with enough digits to round-trip.
std::string JsonNumber(double v);

}  // namespace kspot::util
