#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace kspot::util {

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits `s` on `delim`, trimming each piece; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// Uppercases ASCII letters.
std::string ToUpper(std::string_view s);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True when `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with `decimals` fractional digits.
std::string FormatDouble(double v, int decimals = 2);

/// Formats a byte count with binary unit suffixes (e.g. "1.5 KiB").
std::string HumanBytes(double bytes);

}  // namespace kspot::util
