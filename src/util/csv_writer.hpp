#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace kspot::util {

/// Writes comma-separated experiment output so benchmark series can be
/// re-plotted externally. Quotes cells containing commas/quotes/newlines.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Check ok() afterwards.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True when the underlying file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

  /// Appends one data row.
  void AddRow(const std::vector<std::string>& cells);

  /// Appends one numeric data row.
  void AddRow(const std::vector<double>& cells);

 private:
  std::ofstream out_;
  size_t columns_;

  void WriteCells(const std::vector<std::string>& cells);
};

}  // namespace kspot::util
