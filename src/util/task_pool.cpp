#include "util/task_pool.hpp"

#include <exception>

#include "obs/metrics.hpp"

namespace kspot::util {

TaskPool::TaskPool(size_t threads) {
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  // The calling thread always participates, so N requested threads need
  // only N-1 parked workers.
  worker_count_ = threads - 1;
  workers_.reserve(worker_count_);
  for (size_t t = 0; t < worker_count_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::RunIndices(Job& job) {
  while (true) {
    size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      // Last index: wake the caller waiting at the barrier.
      std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }
}

void TaskPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    // Each worker holds its own reference to the job, so a worker that wakes
    // after the caller already left the barrier (every index claimed by
    // others) still reads valid Job state when it checks out empty-handed.
    std::shared_ptr<Job> job;
    // Parked time between jobs; wall-clock only, recorded outside the lock.
    const bool measure_idle = obs::MetricsOn();
    uint64_t wait_start = measure_idle ? obs::NowMicros() : 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    if (measure_idle) {
      static obs::Histogram& idle_us = obs::Registry().histogram("taskpool.idle_us");
      idle_us.Observe(static_cast<double>(obs::NowMicros() - wait_start));
    }
    if (job != nullptr) {
      if (job->publish_us != 0) {
        // Publish-to-first-claim latency for this worker (only when metrics
        // were on when the caller published the job).
        static obs::Histogram& claim_us = obs::Registry().histogram("taskpool.claim_us");
        claim_us.Observe(static_cast<double>(obs::NowMicros() - job->publish_us));
      }
      RunIndices(*job);
    }
  }
}

void TaskPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (worker_count_ == 0 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = count;
  if (obs::MetricsOn()) {
    static obs::Counter& jobs = obs::Registry().counter("taskpool.jobs");
    jobs.Add(1);
    job->publish_us = obs::NowMicros();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  cv_work_.notify_all();
  RunIndices(*job);
  {
    // Workers that claimed an index may still be inside fn; the barrier waits
    // for the completion count, not the claim count. `fn` itself is safe to
    // release after that: a late worker's first claim is >= count, so it
    // never dereferences the callback.
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return job->done.load(std::memory_order_acquire) == job->count; });
    job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace kspot::util
