#include "util/csv_writer.hpp"

#include "util/string_util.hpp"

namespace kspot::util {

namespace {

std::string EscapeCell(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (out_) WriteCells(header);
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) { WriteCells(cells); }

void CsvWriter::AddRow(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(FormatDouble(c, 6));
  WriteCells(row);
}

void CsvWriter::WriteCells(const std::vector<std::string>& cells) {
  if (!out_) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << EscapeCell(cells[i]);
  }
  out_ << '\n';
}

}  // namespace kspot::util
