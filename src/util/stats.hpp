#pragma once

#include <cstddef>
#include <vector>

namespace kspot::util {

/// Streaming summary statistics (Welford's algorithm): count, mean, variance,
/// min, max. Used by the benchmark harness and the System Panel to summarize
/// per-epoch cost series without retaining them.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another summary into this one.
  void Merge(const RunningStats& other);

  /// Number of observations.
  size_t count() const { return count_; }
  /// Arithmetic mean; 0 when empty.
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest observation; 0 when empty.
  double min() const { return count_ ? min_ : 0.0; }
  /// Largest observation; 0 when empty.
  double max() const { return count_ ? max_ : 0.0; }
  /// Sum of observations.
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// The shared shape of a distribution summary: produced exactly by
/// Percentiles::Summary() / SummarizeSorted(), and approximately (bucket
/// interpolation) by obs::Histogram::Snapshot(). Bench latency columns and
/// the metrics JSON schema both serialize this struct.
struct DistSummary {
  size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// The q-quantile (q clamped to [0,1]) of an ascending-sorted sample by
/// linear interpolation at rank q*(n-1). Edge cases are pinned by util_test:
/// empty -> 0, one sample -> that sample, two samples -> interpolation
/// between them, and an exact-boundary rank (q*(n-1) integral) returns the
/// element itself with no interpolation error.
double SortedQuantile(const std::vector<double>& sorted, double q);

/// Summarizes an ascending-sorted sample with exact quantiles.
DistSummary SummarizeSorted(const std::vector<double>& sorted);

/// Retains all observations to answer arbitrary quantile queries. Intended for
/// benchmark post-processing (latency distributions), not hot paths.
class Percentiles {
 public:
  /// Adds one observation (re-sorting lazily on the next quantile query).
  void Add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  /// Returns the q-quantile (q in [0,1]) by linear interpolation; 0 when empty.
  double Quantile(double q) const;

  /// Exact count/min/max/mean/p50/p95/p99 of everything added so far.
  DistSummary Summary() const;

  /// Number of observations.
  size_t count() const { return values_.size(); }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace kspot::util
