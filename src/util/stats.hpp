#pragma once

#include <cstddef>
#include <vector>

namespace kspot::util {

/// Streaming summary statistics (Welford's algorithm): count, mean, variance,
/// min, max. Used by the benchmark harness and the System Panel to summarize
/// per-epoch cost series without retaining them.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another summary into this one.
  void Merge(const RunningStats& other);

  /// Number of observations.
  size_t count() const { return count_; }
  /// Arithmetic mean; 0 when empty.
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest observation; 0 when empty.
  double min() const { return count_ ? min_ : 0.0; }
  /// Largest observation; 0 when empty.
  double max() const { return count_ ? max_ : 0.0; }
  /// Sum of observations.
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all observations to answer arbitrary quantile queries. Intended for
/// benchmark post-processing (latency distributions), not hot paths.
class Percentiles {
 public:
  /// Adds one observation.
  void Add(double x) { values_.push_back(x); }

  /// Returns the q-quantile (q in [0,1]) by linear interpolation; 0 when empty.
  double Quantile(double q) const;

  /// Number of observations.
  size_t count() const { return values_.size(); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace kspot::util
