#include "util/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace kspot::util {

// ----------------------------------------------------------- construction

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

// ------------------------------------------------------------------- dump

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

void JsonValue::DumpTo(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kNumber: os << JsonNumber(number_); break;
    case Kind::kString: os << JsonEscape(string_); break;
    case Kind::kArray: {
      os << '[';
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) os << ',';
        first = false;
        v.DumpTo(os);
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) os << ',';
        first = false;
        os << JsonEscape(k) << ':';
        v.DumpTo(os);
      }
      os << '}';
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::ostringstream os;
  DumpTo(os);
  return os.str();
}

// ------------------------------------------------------------------ parse

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Run() {
    StatusOr<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters after document");
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        StatusOr<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue::String(std::move(s).value());
      }
      case 't':
        if (ConsumeWord("true")) return JsonValue::Bool(true);
        return Fail("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return JsonValue::Bool(false);
        return Fail("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return JsonValue::Null();
        return Fail("invalid literal");
      default: return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("expected object key");
      StatusOr<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      StatusOr<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      obj.Set(std::move(key).value(), std::move(value).value());
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Fail("expected ',' or '}'");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      StatusOr<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      arr.Append(std::move(value).value());
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Fail("expected ',' or ']'");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("invalid \\u escape");
            }
            // UTF-8 encode the BMP code point (schema strings are ASCII; this
            // keeps arbitrary escapes lossless anyway).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: return Fail("invalid escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    double value = 0.0;
    auto result = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_) {
      return Fail("invalid number");
    }
    return JsonValue::Number(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

// ----------------------------------------------------------------- writer

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows its key.
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) os_ << ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  os_ << '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  assert(!needs_comma_.empty());
  needs_comma_.pop_back();
  os_ << '}';
}

void JsonWriter::BeginArray() {
  MaybeComma();
  os_ << '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  assert(!needs_comma_.empty());
  needs_comma_.pop_back();
  os_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  assert(!needs_comma_.empty());
  if (needs_comma_.back()) os_ << ',';
  needs_comma_.back() = true;
  os_ << JsonEscape(key) << ':';
  after_key_ = true;
}

void JsonWriter::Value(std::string_view v) {
  MaybeComma();
  os_ << JsonEscape(v);
}

void JsonWriter::Value(double v) {
  MaybeComma();
  os_ << JsonNumber(v);
}

void JsonWriter::Value(uint64_t v) {
  MaybeComma();
  os_ << v;
}

void JsonWriter::Value(bool v) {
  MaybeComma();
  os_ << (v ? "true" : "false");
}

void JsonWriter::Null() {
  MaybeComma();
  os_ << "null";
}

}  // namespace kspot::util
