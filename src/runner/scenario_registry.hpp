#pragma once

#include <map>
#include <string>
#include <vector>

#include "runner/scenario.hpp"
#include "util/status.hpp"

namespace kspot::runner {

/// Name -> Scenario catalogue. The bench programs register themselves here
/// (see bench/scenarios.hpp) and the kspot_bench CLI resolves --scenario
/// arguments against it. Registries are plain values so tests can build
/// private ones; the CLI uses one it fills at startup.
class ScenarioRegistry {
 public:
  /// Adds a scenario. Fails when the name is empty, has no trial factory,
  /// or is already taken.
  util::Status Register(Scenario scenario);

  /// Looks a scenario up by name; nullptr when unknown.
  const Scenario* Find(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  /// All scenarios in name order.
  std::vector<const Scenario*> All() const;

  size_t size() const { return scenarios_.size(); }

 private:
  std::map<std::string, Scenario> scenarios_;
};

}  // namespace kspot::runner
