#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runner/scenario.hpp"

namespace kspot::runner {

/// Outcome of one executed trial.
struct TrialResult {
  TrialSpec spec;
  MetricList metrics;
  double wall_ms = 0.0;  ///< Wall-clock time the trial took on its worker.
  bool ok = true;
  std::string error;  ///< Exception text when ok is false.
};

/// Outcome of one scenario sweep: every trial, in enumeration order
/// (independent of worker scheduling, so equal-seed runs compare equal
/// across thread counts).
struct ScenarioRun {
  std::string name;
  std::string id;
  std::string title;
  std::string notes;
  bool quick = false;
  uint64_t seed = 0;       ///< The --seed override; 0 = scenario defaults.
  size_t threads = 1;      ///< Worker count used.
  double wall_ms = 0.0;    ///< Whole-sweep wall-clock time.
  std::vector<TrialResult> trials;

  /// True when every trial completed without throwing.
  bool AllOk() const;
};

/// Fans a scenario's trials out over a util::TaskPool. Each trial owns its
/// state (Rng, Network, generators are built inside Trial::run), so metric
/// results are a pure function of the trial spec: the engine guarantees
/// byte-identical metrics for any thread count (and, via SweepOptions::
/// shards, for any shard count inside each trial).
class ExperimentEngine {
 public:
  struct Options {
    size_t threads = 1;  ///< 0 = hardware concurrency.
    bool quick = false;
    uint64_t seed = 0;   ///< 0 = scenario default seed.
    size_t shards = 1;   ///< Shard lanes inside each trial (see SweepOptions).
  };

  explicit ExperimentEngine(Options options);

  /// Enumerates and executes every trial of `scenario`.
  ScenarioRun Run(const Scenario& scenario) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace kspot::runner
