#include "runner/experiment_engine.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

namespace kspot::runner {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

bool ScenarioRun::AllOk() const {
  for (const TrialResult& t : trials) {
    if (!t.ok) return false;
  }
  return true;
}

ExperimentEngine::ExperimentEngine(Options options) : options_(options) {
  if (options_.threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    options_.threads = hw == 0 ? 1 : hw;
  }
}

ScenarioRun ExperimentEngine::Run(const Scenario& scenario) const {
  auto sweep_start = std::chrono::steady_clock::now();

  ScenarioRun run;
  run.name = scenario.name;
  run.id = scenario.id;
  run.title = scenario.title;
  run.notes = scenario.notes;
  run.quick = options_.quick;
  run.seed = options_.seed;
  run.threads = options_.threads;

  SweepOptions sweep;
  sweep.quick = options_.quick;
  sweep.seed = options_.seed;
  std::vector<Trial> trials = scenario.make_trials(sweep);

  run.trials.resize(trials.size());
  for (size_t i = 0; i < trials.size(); ++i) {
    trials[i].spec.scenario = scenario.name;
    trials[i].spec.index = i;
    run.trials[i].spec = trials[i].spec;
  }

  // Work-stealing by atomic counter: workers claim the next unclaimed index
  // and write into their own result slot, so the output order is the
  // enumeration order regardless of scheduling.
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      TrialResult& result = run.trials[i];
      auto trial_start = std::chrono::steady_clock::now();
      try {
        result.metrics = trials[i].run();
        result.ok = true;
      } catch (const std::exception& e) {
        result.ok = false;
        result.error = e.what();
      } catch (...) {
        result.ok = false;
        result.error = "unknown exception";
      }
      result.wall_ms = MsSince(trial_start);
    }
  };

  size_t pool = std::min(options_.threads, trials.size());
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (size_t t = 0; t < pool; ++t) workers.emplace_back(worker);
    for (std::thread& t : workers) t.join();
  }

  run.wall_ms = MsSince(sweep_start);
  return run;
}

}  // namespace kspot::runner
