#include "runner/experiment_engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "util/task_pool.hpp"

namespace kspot::runner {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

bool ScenarioRun::AllOk() const {
  for (const TrialResult& t : trials) {
    if (!t.ok) return false;
  }
  return true;
}

ExperimentEngine::ExperimentEngine(Options options) : options_(options) {
  if (options_.threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    options_.threads = hw == 0 ? 1 : hw;
  }
}

ScenarioRun ExperimentEngine::Run(const Scenario& scenario) const {
  auto sweep_start = std::chrono::steady_clock::now();

  ScenarioRun run;
  run.name = scenario.name;
  run.id = scenario.id;
  run.title = scenario.title;
  run.notes = scenario.notes;
  run.quick = options_.quick;
  run.seed = options_.seed;
  run.threads = options_.threads;

  SweepOptions sweep;
  sweep.quick = options_.quick;
  sweep.seed = options_.seed;
  sweep.shards = options_.shards;
  std::vector<Trial> trials = scenario.make_trials(sweep);

  run.trials.resize(trials.size());
  for (size_t i = 0; i < trials.size(); ++i) {
    trials[i].spec.scenario = scenario.name;
    trials[i].spec.index = i;
    run.trials[i].spec = trials[i].spec;
  }

  // Fork-join over the trial indices: each worker claims indices and writes
  // into its own result slot, so the output order is the enumeration order
  // regardless of scheduling. Exceptions stay per-trial (recorded in the
  // result), never escape the pool.
  util::TaskPool pool(std::min(options_.threads, std::max<size_t>(trials.size(), 1)));
  pool.ParallelFor(trials.size(), [&](size_t i) {
    TrialResult& result = run.trials[i];
    auto trial_start = std::chrono::steady_clock::now();
    try {
      result.metrics = trials[i].run();
      result.ok = true;
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
    } catch (...) {
      result.ok = false;
      result.error = "unknown exception";
    }
    result.wall_ms = MsSince(trial_start);
  });

  run.wall_ms = MsSince(sweep_start);
  return run;
}

}  // namespace kspot::runner
