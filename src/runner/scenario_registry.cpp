#include "runner/scenario_registry.hpp"

namespace kspot::runner {

util::Status ScenarioRegistry::Register(Scenario scenario) {
  if (scenario.name.empty()) {
    return util::Status::Error("scenario name must not be empty");
  }
  if (!scenario.make_trials) {
    return util::Status::Error("scenario '" + scenario.name + "' has no trial factory");
  }
  auto [it, inserted] = scenarios_.emplace(scenario.name, std::move(scenario));
  if (!inserted) {
    return util::Status::Error("scenario '" + it->first + "' registered twice");
  }
  return util::Status::Ok();
}

const Scenario* ScenarioRegistry::Find(const std::string& name) const {
  auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) names.push_back(name);
  return names;
}

std::vector<const Scenario*> ScenarioRegistry::All() const {
  std::vector<const Scenario*> all;
  all.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) all.push_back(&scenario);
  return all;
}

}  // namespace kspot::runner
