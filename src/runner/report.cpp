#include "runner/report.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/json.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

namespace kspot::runner {

namespace {

/// Column layout shared by every row: the union of param and metric names in
/// first-seen order (trials of one scenario normally agree; stragglers just
/// leave cells empty).
struct Columns {
  std::vector<std::string> params;
  std::vector<std::string> metrics;
  bool any_algorithm = false;
  bool any_error = false;
};

Columns CollectColumns(const ScenarioRun& run) {
  Columns cols;
  auto add_unique = [](std::vector<std::string>& v, const std::string& name) {
    for (const std::string& existing : v) {
      if (existing == name) return;
    }
    v.push_back(name);
  };
  for (const TrialResult& t : run.trials) {
    for (const auto& [name, value] : t.spec.params) add_unique(cols.params, name);
    for (const auto& [name, value] : t.metrics) add_unique(cols.metrics, name);
    cols.any_algorithm |= !t.spec.algorithm.empty();
    cols.any_error |= !t.ok;
  }
  return cols;
}

std::string FormatMetric(double v) {
  if (std::fabs(v - std::round(v)) < 1e-9 && std::fabs(v) < 1e15) {
    return util::FormatDouble(v, 0);
  }
  return util::FormatDouble(v, std::fabs(v) < 1.0 ? 4 : 2);
}

std::string FindCell(const MetricList& metrics, const std::string& name) {
  for (const auto& [n, v] : metrics) {
    if (n == name) return FormatMetric(v);
  }
  return "";
}

std::string FindParam(const ParamList& params, const std::string& name) {
  for (const auto& [n, v] : params) {
    if (n == name) return v;
  }
  return "";
}

}  // namespace

std::string RenderTable(const ScenarioRun& run) {
  std::ostringstream os;
  os << "\n=== " << run.id << ": " << run.title << " ===\n";
  if (run.quick) os << "(quick mode: reduced axes and epochs)\n";

  Columns cols = CollectColumns(run);
  std::vector<std::string> headers = cols.params;
  if (cols.any_algorithm) headers.push_back("algorithm");
  headers.insert(headers.end(), cols.metrics.begin(), cols.metrics.end());
  // A dedicated column (not a metric cell) so failures stay visible even
  // when no trial produced metrics at all.
  if (cols.any_error) headers.push_back("error");

  util::TablePrinter table(headers);
  for (const TrialResult& t : run.trials) {
    std::vector<std::string> row;
    row.reserve(headers.size());
    for (const std::string& p : cols.params) row.push_back(FindParam(t.spec.params, p));
    if (cols.any_algorithm) row.push_back(t.spec.algorithm);
    for (const std::string& m : cols.metrics) {
      row.push_back(t.ok ? FindCell(t.metrics, m) : "");
    }
    if (cols.any_error) row.push_back(t.ok ? "" : "ERROR: " + t.error);
    table.AddRow(std::move(row));
  }
  table.Print(os);

  if (!run.notes.empty()) os << "\n" << run.notes << "\n";
  os << "\n[" << run.trials.size() << " trials, " << run.threads << " thread"
     << (run.threads == 1 ? "" : "s") << ", " << util::FormatDouble(run.wall_ms, 0)
     << " ms]\n";
  return os.str();
}

void WriteJson(const ScenarioRun& run, std::ostream& os) {
  util::JsonWriter w(os);
  w.BeginObject();
  w.Key("schema_version");
  w.Value(1);
  w.Key("generator");
  w.Value("kspot_bench");
  w.Key("scenario");
  w.Value(run.name);
  w.Key("id");
  w.Value(run.id);
  w.Key("title");
  w.Value(run.title);
  w.Key("quick");
  w.Value(run.quick);
  w.Key("seed");
  w.Value(static_cast<uint64_t>(run.seed));
  w.Key("threads");
  w.Value(static_cast<uint64_t>(run.threads));
  w.Key("wall_ms");
  w.Value(run.wall_ms);
  w.Key("trial_count");
  w.Value(static_cast<uint64_t>(run.trials.size()));
  w.Key("trials");
  w.BeginArray();
  for (const TrialResult& t : run.trials) {
    w.BeginObject();
    w.Key("index");
    w.Value(static_cast<uint64_t>(t.spec.index));
    w.Key("algorithm");
    w.Value(t.spec.algorithm);
    w.Key("seed");
    w.Value(static_cast<uint64_t>(t.spec.seed));
    w.Key("params");
    w.BeginObject();
    for (const auto& [name, value] : t.spec.params) {
      w.Key(name);
      w.Value(value);
    }
    w.EndObject();
    w.Key("metrics");
    w.BeginObject();
    for (const auto& [name, value] : t.metrics) {
      w.Key(name);
      w.Value(value);
    }
    w.EndObject();
    w.Key("ok");
    w.Value(t.ok);
    if (!t.ok) {
      w.Key("error");
      w.Value(t.error);
    }
    w.Key("wall_ms");
    w.Value(t.wall_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
}

std::string ToJsonString(const ScenarioRun& run) {
  std::ostringstream os;
  WriteJson(run, os);
  return os.str();
}

util::Status WriteJsonFile(const ScenarioRun& run, const std::string& path) {
  // Create missing parent directories so a target like
  // results/2026-08/BENCH_foo.json works without a separate mkdir step
  // (callers pass arbitrary nested paths; losing a finished sweep to a
  // missing directory is strictly worse than creating it).
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return util::Status::Error("cannot create directory '" + parent.string() +
                                 "': " + ec.message());
    }
  }
  std::ofstream out(path);
  if (!out) return util::Status::Error("cannot open '" + path + "' for writing");
  WriteJson(run, out);
  out.flush();
  if (!out) return util::Status::Error("write to '" + path + "' failed");
  return util::Status::Ok();
}

std::string DefaultJsonFileName(const std::string& scenario_name) {
  return "BENCH_" + scenario_name + ".json";
}

}  // namespace kspot::runner
