#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace kspot::runner {

/// Ordered sweep-axis coordinates of one trial, e.g. {{"k","4"},{"loss","5% iid"}}.
/// Order is the scenario's declared axis order and is preserved in tables
/// and JSON output.
using ParamList = std::vector<std::pair<std::string, std::string>>;

/// Ordered metric samples produced by one trial. All metrics are numeric so
/// the JSON result files stay machine-comparable.
using MetricList = std::vector<std::pair<std::string, double>>;

/// Identity of one trial inside a scenario's sweep grid:
/// seed x parameter-point x algorithm.
struct TrialSpec {
  std::string scenario;   ///< Scenario name (filled in by the engine).
  std::string algorithm;  ///< Algorithm label ("TAG", "MINT", ...); may be empty.
  ParamList params;       ///< Sweep-axis coordinates.
  uint64_t seed = 0;      ///< Seed this trial derives all randomness from.
  size_t index = 0;       ///< Stable enumeration index (filled in by the engine).
};

/// One independently runnable unit of work. `run` must be self-contained:
/// it builds its own topology/network/generator state from the captured
/// configuration, so trials can execute on any worker thread in any order
/// and still produce identical metrics.
struct Trial {
  TrialSpec spec;
  std::function<MetricList()> run;
};

/// Options the engine passes to a scenario when enumerating its trials.
struct SweepOptions {
  /// Shrink axes/epochs for smoke runs (CI, --quick).
  bool quick = false;
  /// 0 keeps the scenario's published default seed; anything else re-bases
  /// the whole sweep on a caller-chosen seed.
  uint64_t seed = 0;
  /// Shard lanes for parallel epoch execution inside each trial's
  /// deployment (1 = serial). Scenarios that drive converge-cast epochs pass
  /// this through to their network's ShardRuntime; metric results are
  /// invariant to it by construction (pinned by golden_equivalence_test), so
  /// it is a pure throughput knob and is deliberately NOT a trial parameter.
  size_t shards = 1;
};

/// A named, parameterized experiment: the unit the registry stores and the
/// engine executes. Each of the paper's benchmark figures is one Scenario.
struct Scenario {
  std::string name;   ///< CLI handle, e.g. "msgs_vs_k".
  std::string id;     ///< Experiment id from the bench series, e.g. "E3".
  std::string title;  ///< One-line human description.
  std::string notes;  ///< Optional interpretation text printed after the table.
  /// Enumerates the sweep grid. Called once per engine run; the result's
  /// order defines trial indices and table row order.
  std::function<std::vector<Trial>(const SweepOptions&)> make_trials;
};

}  // namespace kspot::runner
