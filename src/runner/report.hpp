#pragma once

#include <ostream>
#include <string>

#include "runner/experiment_engine.hpp"
#include "util/status.hpp"

namespace kspot::runner {

/// Renders a sweep in the classic bench table form: banner line, one row per
/// trial (param columns, algorithm, metric columns), and the scenario notes.
std::string RenderTable(const ScenarioRun& run);

/// Writes the structured result document (schema below) to `os`.
///
/// {
///   "schema_version": 1,
///   "generator": "kspot_bench",
///   "scenario": "msgs_vs_k", "id": "E3", "title": "...",
///   "quick": false, "seed": 0, "threads": 4,
///   "wall_ms": 12.3, "trial_count": 15,
///   "trials": [
///     {"index": 0, "algorithm": "TAG", "seed": 7,
///      "params": {"k": "1"},
///      "metrics": {"msgs_per_epoch": 206.0, ...},
///      "ok": true, "wall_ms": 1.9}
///   ]
/// }
void WriteJson(const ScenarioRun& run, std::ostream& os);

/// WriteJson to a string.
std::string ToJsonString(const ScenarioRun& run);

/// WriteJson to a file; fails when the file can't be opened.
util::Status WriteJsonFile(const ScenarioRun& run, const std::string& path);

/// The conventional result-file name for a scenario: "BENCH_<name>.json".
std::string DefaultJsonFileName(const std::string& scenario_name);

}  // namespace kspot::runner
