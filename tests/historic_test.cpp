/// Continuous historic serving (core::HistoricStream + the coordinator's
/// continuous-vertical path):
///
///  1. the O(delta) incremental window maintenance is bit-identical to
///     re-collecting every window from scratch, every epoch, every agg kind;
///  2. predictive suppression bounds reconstruction error by eps and
///     actually cuts radio traffic; off, it is bit-inert;
///  3. flash archiving/accounting charges the energy ledger without
///     perturbing a single answer bit;
///  4. through the QueryCoordinator, historic queries become session
///     citizens: stepped per epoch, CompatKey-shared, fanned out with
///     completeness stamped — while the default config keeps the one-shot
///     TJA path byte-identical.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/historic_stream.hpp"
#include "kspot/coordinator.hpp"
#include "kspot/fanout.hpp"
#include "kspot/scenario_config.hpp"

namespace kspot {
namespace {

constexpr const char* kVerticalSql =
    "SELECT TOP 3 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 16";

std::string Digest(const std::vector<core::TopKResult>& per_epoch) {
  char buf[64];
  std::string out;
  for (const auto& r : per_epoch) {
    for (const auto& item : r.items) {
      std::snprintf(buf, sizeof buf, "%d:%.17g;", item.group, item.value);
      out += buf;
    }
    out += '|';
  }
  return out;
}

struct StreamRun {
  std::vector<core::TopKResult> per_epoch;
  sim::TrafficCounters total;
  uint64_t suppressed = 0;
  double max_recon_err = 0.0;
  double suppression_ratio = 0.0;
  storage::IoCounters flash_io;
};

StreamRun RunStream(const core::HistoricStreamOptions& hopt, size_t nodes, size_t rooms,
                    size_t epochs, uint64_t seed) {
  auto bed = bench::Bed::Grid(nodes, rooms, seed);
  auto gen = bed.RoomData(seed);
  core::HistoricStream stream(bed.net.get(), gen.get(), hopt);
  StreamRun run;
  for (size_t e = 0; e < epochs; ++e) {
    run.per_epoch.push_back(stream.RunEpoch(static_cast<sim::Epoch>(e)));
  }
  run.total = bed.net->total();
  run.suppressed = stream.suppressed();
  run.max_recon_err = stream.max_reconstruction_error();
  run.suppression_ratio = stream.suppression_ratio();
  run.flash_io = stream.FlashIoTotal();
  return run;
}

// ------------------------------------------------------- delta == scratch

TEST(HistoricStreamTest, DeltaMatchesScratchBitExactEveryEpoch) {
  for (agg::AggKind kind : {agg::AggKind::kAvg, agg::AggKind::kMax, agg::AggKind::kSum}) {
    SCOPED_TRACE(static_cast<int>(kind));
    core::HistoricStreamOptions hopt;
    hopt.k = 3;
    hopt.agg = kind;
    hopt.window = 16;
    hopt.incremental = true;
    StreamRun delta = RunStream(hopt, 49, 8, 40, 17);
    hopt.incremental = false;
    StreamRun scratch = RunStream(hopt, 49, 8, 40, 17);
    ASSERT_EQ(delta.per_epoch.size(), scratch.per_epoch.size());
    for (size_t e = 0; e < delta.per_epoch.size(); ++e) {
      SCOPED_TRACE("epoch " + std::to_string(e));
      // Bit-exact, not approximate: the fixed-point partials merge to the
      // same integers regardless of when each epoch's wave collected them.
      EXPECT_EQ(delta.per_epoch[e].items, scratch.per_epoch[e].items);
      EXPECT_EQ(delta.per_epoch[e].completeness, 1.0);
    }
    // The whole point: the delta path ships O(1) partials per node instead
    // of O(W) — identical answers at a fraction of the bytes.
    EXPECT_LT(delta.total.payload_bytes * 2, scratch.total.payload_bytes);
  }
}

TEST(HistoricStreamTest, ResultsRankAtMostKWindowEpochs) {
  core::HistoricStreamOptions hopt;
  hopt.k = 3;
  hopt.window = 8;
  StreamRun run = RunStream(hopt, 25, 4, 20, 5);
  for (size_t e = 0; e < run.per_epoch.size(); ++e) {
    const core::TopKResult& r = run.per_epoch[e];
    EXPECT_LE(r.items.size(), 3u);
    for (const auto& item : r.items) {
      // Ranked groups are epochs inside the current window.
      EXPECT_LE(item.group, static_cast<sim::GroupId>(e));
      EXPECT_GE(item.group, static_cast<sim::GroupId>(e) - 7);
    }
  }
}

// ------------------------------------------------------------- suppression

TEST(HistoricStreamTest, SuppressionBoundsErrorAndCutsTraffic) {
  core::HistoricStreamOptions hopt;
  hopt.k = 3;
  hopt.window = 16;
  StreamRun base = RunStream(hopt, 49, 8, 40, 23);
  hopt.suppression = true;
  hopt.suppression_eps = 2.0;
  StreamRun on = RunStream(hopt, 49, 8, 40, 23);

  EXPECT_GT(on.suppressed, 0u) << "bed produced no suppressible readings";
  EXPECT_GT(on.suppression_ratio, 0.0);
  EXPECT_LE(on.suppression_ratio, 1.0);
  EXPECT_LE(on.max_recon_err, hopt.suppression_eps);
  EXPECT_LT(on.total.payload_bytes, base.total.payload_bytes);

  // Suppression off is bit-inert: eps is never consulted.
  core::HistoricStreamOptions inert = hopt;
  inert.suppression = false;
  inert.suppression_eps = 99.0;
  StreamRun off = RunStream(inert, 49, 8, 40, 23);
  ASSERT_EQ(off.per_epoch.size(), base.per_epoch.size());
  for (size_t e = 0; e < off.per_epoch.size(); ++e) {
    EXPECT_EQ(off.per_epoch[e].items, base.per_epoch[e].items);
  }
  EXPECT_EQ(off.total.payload_bytes, base.total.payload_bytes);
  EXPECT_EQ(off.total.messages, base.total.messages);
  EXPECT_EQ(off.suppressed, 0u);
  EXPECT_EQ(off.max_recon_err, 0.0);
}

// ---------------------------------------------------------- flash accounting

TEST(HistoricStreamTest, FlashAccountingChargesLedgerWithoutPerturbingAnswers) {
  const size_t epochs = 80;  // window 4: enough evictions to flush pages
  core::HistoricStreamOptions hopt;
  hopt.k = 2;
  hopt.window = 4;
  StreamRun base = RunStream(hopt, 25, 4, epochs, 31);
  EXPECT_EQ(base.flash_io.writes, 0u);
  EXPECT_EQ(base.total.flash_writes, 0u);
  EXPECT_EQ(base.total.flash_energy_j, 0.0);

  hopt.archive_to_flash = true;
  hopt.flash_accounting = true;
  StreamRun flash = RunStream(hopt, 25, 4, epochs, 31);
  EXPECT_GT(flash.flash_io.writes, 0u) << "no pages flushed; test bed too small";
  EXPECT_GT(flash.flash_io.bytes, 0u);
  // Every byte of store I/O lands in the network's traffic ledger.
  EXPECT_EQ(flash.total.flash_writes, flash.flash_io.writes);
  EXPECT_EQ(flash.total.flash_bytes, flash.flash_io.bytes);
  EXPECT_NEAR(flash.total.flash_energy_j, flash.flash_io.energy_j, 1e-12);
  EXPECT_GT(flash.total.energy_j(), base.total.energy_j());

  // Archiving + accounting never touch an answer bit or a radio byte.
  ASSERT_EQ(flash.per_epoch.size(), base.per_epoch.size());
  for (size_t e = 0; e < base.per_epoch.size(); ++e) {
    EXPECT_EQ(flash.per_epoch[e].items, base.per_epoch[e].items);
  }
  EXPECT_EQ(flash.total.payload_bytes, base.total.payload_bytes);
  EXPECT_EQ(flash.total.messages, base.total.messages);
}

// ------------------------------------------------------- coordinator serving

system::QueryCoordinator::Options ContinuousRun(size_t epochs = 12, uint64_t seed = 99) {
  system::QueryCoordinator::Options opt;
  opt.epochs = epochs;
  opt.seed = seed;
  opt.historic.continuous = true;
  return opt;
}

TEST(HistoricSessionTest, ContinuousHistoricStepsLikeAnyOperator) {
  system::QueryCoordinator coordinator(system::Scenario::ConferenceFloor(4, 3, 5),
                                       ContinuousRun());
  auto a = coordinator.Admit(kVerticalSql);
  auto b = coordinator.Admit(kVerticalSql);  // identical: must share the operator
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto report = coordinator.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().outcomes.size(), 2u);
  for (const auto& outcome : report.value().outcomes) {
    EXPECT_EQ(outcome.algorithm, "HIST-delta");
    EXPECT_EQ(outcome.share_group_size, 2u);
    ASSERT_EQ(outcome.per_epoch.size(), 12u);
    for (const auto& r : outcome.per_epoch) {
      EXPECT_FALSE(r.items.empty());
      EXPECT_EQ(r.completeness, 1.0);
    }
    EXPECT_TRUE(outcome.historic.items.empty());  // no one-shot result
  }
  EXPECT_EQ(Digest(report.value().outcomes[0].per_epoch),
            Digest(report.value().outcomes[1].per_epoch));
}

TEST(HistoricSessionTest, ContinuousDeltaMatchesScratchThroughSession) {
  auto run = [](bool incremental) {
    auto opt = ContinuousRun(20, 42);
    opt.historic.incremental = incremental;
    system::QueryCoordinator coordinator(system::Scenario::ConferenceFloor(4, 3, 5), opt);
    EXPECT_TRUE(coordinator.Admit(kVerticalSql).ok());
    auto report = coordinator.Run();
    EXPECT_TRUE(report.ok());
    return Digest(report.value().outcomes[0].per_epoch);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(HistoricSessionTest, DefaultConfigKeepsOneShotTja) {
  system::QueryCoordinator::Options opt;
  opt.epochs = 8;
  opt.seed = 99;
  system::QueryCoordinator coordinator(system::Scenario::ConferenceFloor(4, 3, 5), opt);
  ASSERT_TRUE(coordinator.Admit(kVerticalSql).ok());
  auto report = coordinator.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().outcomes.size(), 1u);
  const auto& outcome = report.value().outcomes[0];
  EXPECT_EQ(outcome.algorithm.rfind("TJA", 0), 0u);  // one-shot, as seeded
  EXPECT_TRUE(outcome.per_epoch.empty());
  EXPECT_FALSE(outcome.historic.items.empty());
}

TEST(HistoricSessionTest, ResultsFanOutWithCompletenessStamped) {
  system::QueryCoordinator coordinator(system::Scenario::ConferenceFloor(4, 3, 5),
                                       ContinuousRun());
  auto id = coordinator.Admit(kVerticalSql);
  ASSERT_TRUE(id.ok());
  system::FanOutHub hub(&coordinator);
  auto sub = hub.Subscribe(id.value());
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(coordinator.Open().ok());
  for (int e = 0; e < 5; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    EXPECT_GT(hub.Publish(update.value()), 0u);
  }
  auto latest = hub.Latest(sub.value());
  ASSERT_NE(latest, nullptr);
  EXPECT_FALSE(latest->items.empty());
  auto stats = hub.Stats(sub.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().deliveries, 5u);
  EXPECT_EQ(stats.value().completeness, 1.0);
  ASSERT_TRUE(coordinator.Close().ok());
}

}  // namespace
}  // namespace kspot
