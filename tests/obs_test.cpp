/// Unit coverage for the observability layer: the metric primitives and
/// their gating on the process-global switches, the log-bucketed histogram's
/// quantile math, registry handle identity and snapshot/JSON shape, and the
/// tracer's interning, ring wrap-around, and Chrome trace export.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace kspot::obs {
namespace {

/// The switches are process-global, so every test that flips them restores
/// the previous state on exit — tests stay order-independent.
class ObsFlagGuard {
 public:
  ObsFlagGuard() : metrics_(MetricsOn()), tracing_(TracingOn()) {}
  ~ObsFlagGuard() {
    SetMetricsEnabled(metrics_);
    SetTracingEnabled(tracing_);
  }

 private:
  bool metrics_;
  bool tracing_;
};

// ------------------------------------------------------------------ gating

TEST(ObsTest, SwitchesDefaultOffAndToggle) {
  ObsFlagGuard guard;
  SetMetricsEnabled(false);
  SetTracingEnabled(false);
  EXPECT_FALSE(MetricsOn());
  EXPECT_FALSE(TracingOn());
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsOn());
  EXPECT_FALSE(TracingOn());  // independent switches
  SetTracingEnabled(true);
  EXPECT_TRUE(TracingOn());
}

TEST(ObsTest, CounterGaugeHistogramAreNoOpsWhileDisabled) {
  ObsFlagGuard guard;
  SetMetricsEnabled(false);
  Counter c;
  Gauge g;
  Histogram h;
  c.Add(5);
  g.Set(3.5);
  h.Observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);

  SetMetricsEnabled(true);
  c.Add(5);
  c.Add();
  g.Set(3.5);
  h.Observe(1.0);
  EXPECT_EQ(c.value(), 6u);
  EXPECT_EQ(g.value(), 3.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsTest, NowMicrosIsMonotone) {
  uint64_t a = NowMicros();
  uint64_t b = NowMicros();
  EXPECT_LE(a, b);
}

// --------------------------------------------------------------- histogram

TEST(ObsTest, HistogramBucketBoundsAreMonotoneAndConsistent) {
  // Every finite positive value must land in a bucket whose lower bound is
  // <= the value, with the next bucket's bound above it.
  for (double v : {1e-4, 0.001, 0.5, 1.0, 1.5, 2.0, 3.0, 1000.0, 1e6, 1e12}) {
    size_t b = Histogram::BucketFor(v);
    ASSERT_LT(b, Histogram::kBucketCount);
    EXPECT_LE(Histogram::BucketLowerBound(b), v) << v;
    if (b + 1 < Histogram::kBucketCount) {
      EXPECT_GT(Histogram::BucketLowerBound(b + 1), v) << v;
    }
  }
  // Non-positive and tiny values underflow to bucket 0.
  EXPECT_EQ(Histogram::BucketFor(0.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0.0);
  // Huge values saturate into the overflow bucket instead of indexing out.
  EXPECT_EQ(Histogram::BucketFor(1e300), Histogram::kBucketCount - 1);
}

TEST(ObsTest, HistogramSnapshotEmptyAndSingle) {
  ObsFlagGuard guard;
  SetMetricsEnabled(true);
  Histogram h;
  util::DistSummary empty = h.Snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p50, 0.0);
  EXPECT_EQ(empty.p99, 0.0);

  h.Observe(42.0);
  util::DistSummary one = h.Snapshot();
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.min, 42.0);
  EXPECT_DOUBLE_EQ(one.max, 42.0);
  EXPECT_DOUBLE_EQ(one.mean, 42.0);
  // A single sample IS every quantile, exactly.
  EXPECT_DOUBLE_EQ(one.p50, 42.0);
  EXPECT_DOUBLE_EQ(one.p95, 42.0);
  EXPECT_DOUBLE_EQ(one.p99, 42.0);
}

TEST(ObsTest, HistogramQuantilesWithinBucketTolerance) {
  ObsFlagGuard guard;
  SetMetricsEnabled(true);
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  util::DistSummary s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_NEAR(s.mean, 500.5, 1e-9);
  // Log-bucketed quantiles are exact only to the bucket's relative width
  // (1/kSubBuckets per power of two => ~19% worst case); allow 25%.
  EXPECT_NEAR(s.p50, 500.0, 0.25 * 500.0);
  EXPECT_NEAR(s.p95, 950.0, 0.25 * 950.0);
  EXPECT_NEAR(s.p99, 990.0, 0.25 * 990.0);
  // Quantiles never escape the observed range.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p99, s.max);
}

TEST(ObsTest, HistogramResetZeroes) {
  ObsFlagGuard guard;
  SetMetricsEnabled(true);
  Histogram h;
  h.Observe(10.0);
  h.Observe(20.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Snapshot().count, 0u);
  h.Observe(5.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().min, 5.0);
}

// ---------------------------------------------------------------- registry

TEST(ObsTest, RegistryReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("test.hits", "k=1");
  Counter& b = reg.counter("test.hits", "k=1");
  EXPECT_EQ(&a, &b);  // same (name, label) => same handle
  Counter& c = reg.counter("test.hits", "k=2");
  EXPECT_NE(&a, &c);  // labels are distinct series
  Gauge& g1 = reg.gauge("test.level");
  Gauge& g2 = reg.gauge("test.level");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.histogram("test.lat");
  Histogram& h2 = reg.histogram("test.lat");
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsTest, RegistrySnapshotSortedAndJsonParses) {
  ObsFlagGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry reg;
  reg.counter("zz.last").Add(7);
  reg.counter("aa.first").Add(3);
  reg.gauge("mid.level").Set(1.25);
  reg.histogram("lat.us").Observe(100.0);
  reg.histogram("lat.us").Observe(200.0);

  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "aa.first");
  EXPECT_EQ(snap.counters[0].value, 3u);
  EXPECT_EQ(snap.counters[1].name, "zz.last");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].dist.count, 2u);
  EXPECT_FALSE(snap.empty());

  // The documented schema: parse it back and check the load-bearing fields.
  auto doc = util::JsonValue::Parse(snap.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const util::JsonValue& root = doc.value();
  ASSERT_NE(root.Find("schema_version"), nullptr);
  EXPECT_EQ(root.Find("schema_version")->number_value(), 1.0);
  const util::JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->array_items().size(), 2u);
  EXPECT_EQ(counters->array_items()[0].Find("name")->string_value(), "aa.first");
  EXPECT_EQ(counters->array_items()[0].Find("value")->number_value(), 3.0);
  const util::JsonValue* hists = root.Find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->array_items().size(), 1u);
  const util::JsonValue& hist = hists->array_items()[0];
  EXPECT_EQ(hist.Find("name")->string_value(), "lat.us");
  EXPECT_EQ(hist.Find("count")->number_value(), 2.0);
  EXPECT_DOUBLE_EQ(hist.Find("min")->number_value(), 100.0);
  EXPECT_DOUBLE_EQ(hist.Find("max")->number_value(), 200.0);
}

TEST(ObsTest, RegistryResetKeepsHandlesValid) {
  ObsFlagGuard guard;
  SetMetricsEnabled(true);
  MetricsRegistry reg;
  Counter& c = reg.counter("reset.me");
  c.Add(9);
  reg.Reset();
  EXPECT_EQ(c.value(), 0u);
  c.Add(1);
  EXPECT_EQ(reg.Snapshot().counters[0].value, 1u);
}

TEST(ObsTest, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&Registry(), &Registry());
}

// ------------------------------------------------------------------ tracer

TEST(ObsTest, TracerInternsStableNonZeroIds) {
  Tracer t;
  uint32_t a = t.InternName("wave.up");
  uint32_t b = t.InternName("wave.down");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.InternName("wave.up"), a);
  EXPECT_EQ(t.Name(a), "wave.up");
  EXPECT_EQ(t.Name(0), "");
  EXPECT_EQ(t.Name(9999), "");
}

TEST(ObsTest, TracerPhaseNameCacheReturnsSameId) {
  Tracer t;
  uint32_t first = t.NameIdForPhase(3, "mint.update");
  // Later calls hit the cache even with a different (stale) label.
  EXPECT_EQ(t.NameIdForPhase(3, "ignored"), first);
  EXPECT_EQ(t.Name(first), "mint.update");
  uint32_t other = t.NameIdForPhase(7, "mint.create");
  EXPECT_NE(other, first);
}

TEST(ObsTest, TracerRecordsAndWrapsRing) {
  Tracer t(/*capacity=*/4);
  uint32_t id = t.InternName("span");
  for (uint64_t i = 0; i < 6; ++i) t.Record(id, /*start_us=*/i * 10, /*dur_us=*/1);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total_recorded(), 6u);
  EXPECT_EQ(t.dropped(), 2u);
  // Oldest-first: spans 2..5 survive the wrap.
  std::vector<TraceSpan> spans = t.Spans();
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_us, (i + 2) * 10);
    EXPECT_EQ(spans[i].name_id, id);
  }
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.InternName("span"), id);  // names survive Clear
}

TEST(ObsTest, TracerWritesParseableChromeTrace) {
  Tracer t;
  uint32_t up = t.InternName("up");
  uint32_t down = t.InternName("down");
  t.Record(down, 200, 30);
  t.Record(up, 100, 50);
  std::ostringstream os;
  t.WriteChromeTrace(os);
  auto doc = util::JsonValue::Parse(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const util::JsonValue* events = doc.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array_items().size(), 2u);
  // Sorted by start time regardless of record order.
  const util::JsonValue& first = events->array_items()[0];
  EXPECT_EQ(first.Find("name")->string_value(), "up");
  EXPECT_EQ(first.Find("ts")->number_value(), 100.0);
  EXPECT_EQ(first.Find("dur")->number_value(), 50.0);
  EXPECT_EQ(first.Find("ph")->string_value(), "X");
  EXPECT_EQ(events->array_items()[1].Find("name")->string_value(), "down");
  EXPECT_EQ(doc.value().Find("displayTimeUnit")->string_value(), "ms");
}

TEST(ObsTest, ScopedSpanRecordsOnlyWhenTracingOn) {
  ObsFlagGuard guard;
  SetTracingEnabled(false);
  Tracer& t = GlobalTracer();
  uint64_t before = t.total_recorded();
  uint32_t id = t.InternName("scoped.test");
  { ScopedSpan off(id); }
  EXPECT_EQ(t.total_recorded(), before);

  SetTracingEnabled(true);
  { ScopedSpan on(id); }
  { ScopedSpan zero(0); }  // the reserved no-op id never records
  EXPECT_EQ(t.total_recorded(), before + 1);
}

}  // namespace
}  // namespace kspot::obs
