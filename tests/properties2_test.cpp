#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/fila.hpp"
#include "core/oracle.hpp"
#include "data/trace_io.hpp"
#include "query/parser.hpp"
#include "util/fixed_point.hpp"
#include "sim/waves.hpp"
#include "test_util.hpp"

namespace kspot {
namespace {

using kspot::testing::TestBed;

// =====================================================================
// Property suite 5: SQL round trip — Parse(q.ToSql()) is equivalent to q.
// =====================================================================

class SqlRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SqlRoundTripTest, ToSqlReparsesEquivalently) {
  auto first = query::Parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().message();
  std::string sql = first.value().ToSql();
  auto second = query::Parse(sql);
  ASSERT_TRUE(second.ok()) << "re-parse of '" << sql << "': " << second.status().message();
  const query::ParsedQuery& a = first.value();
  const query::ParsedQuery& b = second.value();
  EXPECT_EQ(a.top_k, b.top_k);
  EXPECT_EQ(a.group_by, b.group_by);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.has_where, b.has_where);
  EXPECT_DOUBLE_EQ(a.epoch_duration_s, b.epoch_duration_s);
  ASSERT_EQ(a.select.size(), b.select.size());
  for (size_t i = 0; i < a.select.size(); ++i) {
    EXPECT_EQ(a.select[i].attribute, b.select[i].attribute);
    EXPECT_EQ(a.select[i].aggregate, b.select[i].aggregate);
  }
  if (a.has_where) {
    EXPECT_EQ(a.where.attribute, b.where.attribute);
    EXPECT_EQ(a.where.op, b.where.op);
    EXPECT_DOUBLE_EQ(a.where.literal, b.where.literal);
  }
  // Canonical text is a fixed point.
  EXPECT_EQ(b.ToSql(), sql);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, SqlRoundTripTest,
    ::testing::Values(
        "SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid "
        "EPOCH DURATION 1 min",
        "SELECT TOP 5 epoch, AVG(temperature) FROM sensors GROUP BY epoch WITH HISTORY 64",
        "SELECT nodeid, sound FROM sensors WHERE sound >= 12.5",
        "SELECT sound FROM sensors EPOCH DURATION 500 ms",
        "SELECT TOP 3 roomid, MAX(light) FROM sensors GROUP BY roomid",
        "SELECT roomid, MIN(humidity) FROM sensors WHERE humidity != 0 GROUP BY roomid"));

// =====================================================================
// Property suite 6: cluster-aware trees close groups lower than plain
// first-heard trees (the structural property MINT exploits).
// =====================================================================

// Number of rooms whose members all live inside one child-subtree of the
// sink or deeper (i.e. the room "closes" strictly below the sink).
size_t RoomsClosedBelowSink(const sim::Topology& topo, const sim::RoutingTree& tree) {
  size_t closed = 0;
  for (sim::GroupId room : topo.DistinctRooms()) {
    auto members = topo.NodesInRoom(room);
    // Find each member's ancestor chain; the room closes below the sink iff
    // all members share the same depth-1 ancestor.
    std::set<sim::NodeId> depth1;
    for (sim::NodeId m : members) {
      sim::NodeId cur = m;
      while (tree.parent(cur) != sim::kSinkId && tree.parent(cur) != sim::kNoNode) {
        cur = tree.parent(cur);
      }
      depth1.insert(cur);
    }
    if (depth1.size() == 1) ++closed;
  }
  return closed;
}

TEST(ClusterTreeProperty, ClusterAwareTreesCloseMoreRoomsBelowSink) {
  size_t aware_total = 0;
  size_t plain_total = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    sim::TopologyOptions opt;
    opt.num_nodes = 61;
    opt.num_rooms = 6;
    util::Rng topo_rng(seed);
    sim::Topology topo = sim::MakeClusteredRooms(opt, topo_rng);
    util::Rng rng_a(seed * 3 + 1);
    util::Rng rng_b(seed * 3 + 1);
    sim::RoutingTree aware = sim::RoutingTree::BuildClusterAware(topo, rng_a);
    sim::RoutingTree plain = sim::RoutingTree::BuildFirstHeard(topo, rng_b);
    aware_total += RoomsClosedBelowSink(topo, aware);
    plain_total += RoomsClosedBelowSink(topo, plain);
  }
  EXPECT_GT(aware_total, plain_total);
}

TEST(ClusterTreeProperty, ClusterAwareTreeIsStillAValidTree) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    sim::TopologyOptions opt;
    opt.num_nodes = 49;
    opt.num_rooms = 8;
    util::Rng topo_rng(seed);
    sim::Topology topo = sim::MakeClusteredRooms(opt, topo_rng);
    auto adj = topo.BuildAdjacency();
    util::Rng rng(seed);
    sim::RoutingTree tree = sim::RoutingTree::BuildClusterAware(topo, rng);
    for (sim::NodeId id = 1; id < topo.num_nodes(); ++id) {
      sim::NodeId p = tree.parent(id);
      ASSERT_NE(p, sim::kNoNode) << "node " << id << " orphaned (seed " << seed << ")";
      // Parent must be a radio neighbor.
      EXPECT_NE(std::find(adj[id].begin(), adj[id].end(), p), adj[id].end());
      // Depth decreases toward the sink.
      EXPECT_EQ(tree.depth(id), tree.depth(p) + 1);
    }
  }
}

// =====================================================================
// Property suite 7: FILA set-exactness across k on drift-free data.
// =====================================================================

class FilaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FilaPropertyTest, ExactSetOnSlowData) {
  int k = GetParam();
  auto bed = TestBed::Grid(36, 4, 7000 + static_cast<uint64_t>(k));
  // Fine-grained (unquantized) walks keep exact boundary ties measure-rare,
  // so the set-exactness property is clean.
  data::RandomWalkGenerator gen(36, data::Modality::kSound, 0.3, util::Rng(k * 11 + 1));
  data::RandomWalkGenerator ogen(36, data::Modality::kSound, 0.3, util::Rng(k * 11 + 1));
  core::QuerySpec spec;
  spec.k = k;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kNode;
  spec.domain_max = 100.0;
  core::Fila fila(bed.net.get(), &gen, spec);
  core::Oracle oracle(&bed.topology, &ogen, spec);
  size_t exact = 0;
  const size_t kEpochs = 30;
  for (sim::Epoch e = 0; e < kEpochs; ++e) {
    auto got = fila.RunEpoch(e);
    auto want = oracle.TopK(e);
    std::set<sim::GroupId> gs, ws;
    for (const auto& item : got.items) gs.insert(item.group);
    for (const auto& item : want.items) ws.insert(item.group);
    exact += gs == ws;
  }
  // The rare remaining mismatches are exact fixed-point boundary ties where
  // FILA's cached ordering may differ from the oracle's id tie-break.
  EXPECT_GE(exact, kEpochs - 2) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FilaPropertyTest, ::testing::Values(1, 2, 5, 10));

// =====================================================================
// Property suite 8: dissemination under loss — a DownWave reaches exactly
// the connected prefix of the tree, and loss never corrupts delivery.
// =====================================================================

TEST(DownWaveLossProperty, ReachedSetIsAncestorClosed) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    sim::NetworkOptions opt;
    opt.loss_prob = 0.3;
    auto bed = TestBed::Grid(49, 4, 9000 + seed, opt);
    std::set<sim::NodeId> reached;
    using Msg = int;
    auto produce = [&](sim::NodeId node, const Msg*) -> std::optional<Msg> {
      reached.insert(node);
      return 1;
    };
    auto bytes = [](const Msg&) -> size_t { return 4; };
    size_t count = sim::DownWave<Msg>::Run(*bed.net, produce, bytes);
    EXPECT_EQ(count, reached.size());
    EXPECT_TRUE(reached.count(sim::kSinkId));
    // Ancestor-closure: if a node was reached, its parent was too.
    for (sim::NodeId node : reached) {
      if (node == sim::kSinkId) continue;
      EXPECT_TRUE(reached.count(bed.tree.parent(node)))
          << "node " << node << " reached without its parent (seed " << seed << ")";
    }
  }
}

// =====================================================================
// Property suite 9: trace CSV round trip across random matrices.
// =====================================================================

class TraceRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceRoundTripTest, CsvRoundTripIsLossless) {
  util::Rng rng(GetParam());
  size_t epochs = 3 + rng.NextBounded(20);
  size_t nodes = 2 + rng.NextBounded(10);
  std::vector<std::vector<double>> matrix(epochs, std::vector<double>(nodes, 0.0));
  for (auto& row : matrix) {
    for (size_t i = 1; i < nodes; ++i) {
      row[i] = util::fixed_point::Quantize(rng.NextDouble(-50, 150));
    }
  }
  auto parsed = data::trace_io::ParseCsv(data::trace_io::ToCsv(matrix));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_EQ(parsed.value().size(), epochs);
  for (size_t e = 0; e < epochs; ++e) {
    ASSERT_EQ(parsed.value()[e].size(), nodes);
    for (size_t i = 0; i < nodes; ++i) {
      EXPECT_NEAR(parsed.value()[e][i], matrix[e][i], 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTripTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull));

TEST(TraceIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(data::trace_io::ParseCsv("").ok());
  EXPECT_FALSE(data::trace_io::ParseCsv("# only comments\n").ok());
  EXPECT_FALSE(data::trace_io::ParseCsv("1, banana, 3\n").ok());
  EXPECT_FALSE(data::trace_io::LoadCsv("/does/not/exist.csv").ok());
}

TEST(TraceIoTest, RecordAndReplayThroughGenerator) {
  data::UniformGenerator source(8, data::Modality::kSound, util::Rng(3));
  auto matrix = data::trace_io::Record(source, 8, 12);
  data::TraceGenerator replay(matrix, data::Modality::kSound);
  data::UniformGenerator source2(8, data::Modality::kSound, util::Rng(3));
  for (sim::Epoch e = 0; e < 12; ++e) {
    for (sim::NodeId id = 1; id < 8; ++id) {
      EXPECT_DOUBLE_EQ(replay.Value(id, e), source2.Value(id, e));
    }
  }
}

TEST(TraceIoTest, ShorterRowsZeroPad) {
  auto parsed = data::trace_io::ParseCsv("1,2,3\n4,5\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()[1], (std::vector<double>{4, 5, 0}));
}

}  // namespace
}  // namespace kspot
