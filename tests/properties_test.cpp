#include <gtest/gtest.h>

#include <tuple>

#include "agg/group_view.hpp"
#include "core/mint.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "core/tja.hpp"
#include "core/tput.hpp"
#include "test_util.hpp"

namespace kspot::core {
namespace {

using kspot::testing::TestBed;

// =====================================================================
// Property suite 1: MINT == Oracle, swept over (topology, k, seed).
// The exactness invariant of DESIGN.md section 3 — every epoch of every
// configuration must match the centralized reference bit-for-bit.
// =====================================================================

enum class TopoKind { kGrid, kClustered };

using MintParam = std::tuple<TopoKind, int /*k*/, uint64_t /*seed*/>;

class MintPropertyTest : public ::testing::TestWithParam<MintParam> {};

TEST_P(MintPropertyTest, MatchesOracleEveryEpoch) {
  auto [topo, k, seed] = GetParam();
  TestBed bed = topo == TopoKind::kGrid ? TestBed::Grid(49, 9, seed)
                                        : TestBed::Clustered(49, 8, seed);
  size_t n = bed.topology.num_nodes();
  data::RandomWalkGenerator gen(n, data::Modality::kSound, 1.0, util::Rng(seed * 31 + 7));
  data::RandomWalkGenerator ogen(n, data::Modality::kSound, 1.0, util::Rng(seed * 31 + 7));
  QuerySpec spec;
  spec.k = k;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = Grouping::kRoom;
  spec.domain_min = 0.0;
  spec.domain_max = 100.0;
  MintViews mint(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  for (sim::Epoch e = 0; e < 20; ++e) {
    TopKResult got = mint.RunEpoch(e);
    TopKResult want = oracle.TopK(e);
    ASSERT_TRUE(got.Matches(want))
        << "epoch " << e << " k=" << k << " seed=" << seed << "\ngot:\n"
        << got.ToString() << "want:\n"
        << want.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MintPropertyTest,
    ::testing::Combine(::testing::Values(TopoKind::kGrid, TopoKind::kClustered),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull)),
    [](const ::testing::TestParamInfo<MintParam>& info) {
      std::string name = std::get<0>(info.param) == TopoKind::kGrid ? "Grid" : "Clustered";
      return name + "_k" + std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// =====================================================================
// Property suite 2: TJA == centralized reference over (window, k, seed),
// with and without Bloom compression.
// =====================================================================

std::vector<agg::RankedItem> HistoricOracle(const HistorySource& history, size_t k) {
  agg::GroupView view;
  for (sim::NodeId id = 1; id < history.num_nodes(); ++id) {
    std::vector<double> w = history.MaterializeWindow(id);
    for (size_t t = 0; t < w.size(); ++t) {
      view.AddReading(static_cast<sim::GroupId>(t), w[t]);
    }
  }
  return view.TopK(agg::AggKind::kAvg, k);
}

using TjaParam = std::tuple<size_t /*window*/, int /*k*/, bool /*bloom*/, uint64_t /*seed*/>;

class TjaPropertyTest : public ::testing::TestWithParam<TjaParam> {};

TEST_P(TjaPropertyTest, ExactTopKTimeInstances) {
  auto [window, k, bloom, seed] = GetParam();
  auto bed = TestBed::Grid(36, 4, seed + 9000);
  data::RandomWalkGenerator gen(36, data::Modality::kTemperature, 0.8,
                                util::Rng(seed * 131 + 3));
  GeneratorHistory history(&gen, 36, 0, window);
  HistoricOptions opt;
  opt.k = k;
  opt.use_bloom = bloom;
  Tja tja(bed.net.get(), &history, opt);
  HistoricResult got = tja.Run();
  auto want = HistoricOracle(history, static_cast<size_t>(k));
  ASSERT_EQ(got.items.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.items[i].group, want[i].group) << "rank " << i;
    EXPECT_NEAR(got.items[i].value, want[i].value, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TjaPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(16, 64), ::testing::Values(1, 4, 12),
                       ::testing::Bool(), ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<TjaParam>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_bloom" : "_plain") + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// =====================================================================
// Property suite 3: TPUT == centralized reference over (k, seed).
// =====================================================================

using TputParam = std::tuple<int /*k*/, uint64_t /*seed*/>;

class TputPropertyTest : public ::testing::TestWithParam<TputParam> {};

TEST_P(TputPropertyTest, ExactTopKTimeInstances) {
  auto [k, seed] = GetParam();
  auto bed = TestBed::Grid(36, 4, seed + 7000);
  data::GaussianGenerator gen(36, data::Modality::kSound, 4.0, util::Rng(seed * 17 + 11));
  GeneratorHistory history(&gen, 36, 0, 48);
  HistoricOptions opt;
  opt.k = k;
  Tput tput(bed.net.get(), &history, opt);
  HistoricResult got = tput.Run();
  auto want = HistoricOracle(history, static_cast<size_t>(k));
  ASSERT_EQ(got.items.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.items[i].group, want[i].group) << "rank " << i;
    EXPECT_NEAR(got.items[i].value, want[i].value, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TputPropertyTest,
                         ::testing::Combine(::testing::Values(1, 3, 10),
                                            ::testing::Values(1ull, 2ull, 3ull, 4ull)),
                         [](const ::testing::TestParamInfo<TputParam>& info) {
                           return "k" + std::to_string(std::get<0>(info.param)) + "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

// =====================================================================
// Property suite 4: MINT savings monotonicity — the System-Panel claim.
// Steady-state MINT bytes never exceed TAG's on identical data.
// =====================================================================

class SavingsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SavingsPropertyTest, MintNeverCostsMoreBytesThanTagSteadyState) {
  uint64_t seed = GetParam();
  auto mint_bed = TestBed::Clustered(49, 8, seed);
  auto tag_bed = TestBed::Clustered(49, 8, seed);
  // The demo's regime: rooms with distinct drifting activity levels, sensor
  // noise on an integer ADC grid.
  std::vector<sim::GroupId> rooms;
  for (sim::NodeId id = 0; id < mint_bed.topology.num_nodes(); ++id) {
    rooms.push_back(mint_bed.topology.room(id));
  }
  data::RoomCorrelatedGenerator gen_m(rooms, data::Modality::kSound, 0.5, 0.5,
                                      util::Rng(seed + 1), 0.0, /*quantize_step=*/1.0);
  data::RoomCorrelatedGenerator gen_t(rooms, data::Modality::kSound, 0.5, 0.5,
                                      util::Rng(seed + 1), 0.0, /*quantize_step=*/1.0);
  QuerySpec spec;
  spec.k = 2;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = Grouping::kRoom;
  spec.domain_max = 100.0;
  MintViews mint(mint_bed.net.get(), &gen_m, spec);
  TagTopK tag(tag_bed.net.get(), &gen_t, spec);
  mint.RunEpoch(0);
  tag.RunEpoch(0);
  auto mint_mark = mint_bed.net->total();
  auto tag_mark = tag_bed.net->total();
  for (sim::Epoch e = 1; e <= 15; ++e) {
    mint.RunEpoch(e);
    tag.RunEpoch(e);
  }
  uint64_t mint_bytes = mint_bed.net->total().Since(mint_mark).payload_bytes;
  uint64_t tag_bytes = tag_bed.net->total().Since(tag_mark).payload_bytes;
  EXPECT_LE(mint_bytes, tag_bytes) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SavingsPropertyTest,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull, 66ull));

}  // namespace
}  // namespace kspot::core
