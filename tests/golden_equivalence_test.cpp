/// Golden-equivalence coverage for the flat-vector GroupView data plane:
///
///  1. the flat representation is bit-identical to an ordered-map reference
///     model under randomized operation sequences (the seed representation
///     was std::map; the ordering contract must never drift);
///  2. the real experiment sweeps (E1 fig1_scenario, E13 churn_lifetime,
///     E14 churn_accuracy) produce byte-identical metrics through 1 and 8
///     worker threads — the engine determinism contract over the new
///     data plane;
///  3. sharded epoch execution is invisible to results: the same sweeps are
///     byte-identical for shards in {1, 2, 8} and 1 or 8 engine threads, and
///     the E16 bed at n = 1000 pins the full network state (answers, phase
///     counters, meters, clock) serial-vs-sharded;
///  4. MINT's incremental churn repair is answer-equivalent to the full
///     creation-phase rebuild under lossless churn (both exact against the
///     survivor oracle) while touching far fewer rebuild messages.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "agg/group_view.hpp"
#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "core/fila.hpp"
#include "core/historic_stream.hpp"
#include "core/history_source.hpp"
#include "core/mint.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "core/tja.hpp"
#include "data/generators.hpp"
#include "fault/churn_engine.hpp"
#include "runner/experiment_engine.hpp"
#include "runner/scenario_registry.hpp"
#include "scenarios.hpp"
#include "test_util.hpp"
#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace kspot {
namespace {

using agg::AggKind;
using agg::GroupView;
using agg::PartialAgg;

// ------------------------------------------------------- map reference model

/// The seed's representation, reduced to its observable operations.
class MapViewModel {
 public:
  void AddReading(sim::GroupId g, double v) { entries_[g].Merge(PartialAgg::FromValue(v)); }
  void MergePartial(sim::GroupId g, const PartialAgg& p) { entries_[g].Merge(p); }
  void Set(sim::GroupId g, const PartialAgg& p) { entries_[g] = p; }
  void Erase(sim::GroupId g) { entries_.erase(g); }
  std::vector<agg::RankedItem> Ranked(AggKind kind) const {
    std::vector<agg::RankedItem> out;
    for (const auto& [g, p] : entries_) out.push_back({g, p.Final(kind)});
    std::sort(out.begin(), out.end(), agg::RankHigher);
    return out;
  }
  const std::map<sim::GroupId, PartialAgg>& entries() const { return entries_; }

 private:
  std::map<sim::GroupId, PartialAgg> entries_;
};

bool SamePartial(const PartialAgg& a, const PartialAgg& b) {
  return a.sum_fx == b.sum_fx && a.count == b.count && a.min_fx == b.min_fx &&
         a.max_fx == b.max_fx;
}

TEST(GoldenEquivalenceTest, FlatViewMatchesMapModelUnderRandomOps) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    GroupView flat;
    MapViewModel reference;
    for (int op = 0; op < 300; ++op) {
      auto g = static_cast<sim::GroupId>(rng.NextBounded(24));
      switch (rng.NextBounded(4)) {
        case 0: {
          double v = util::fixed_point::Quantize(rng.NextDouble(0, 100));
          flat.AddReading(g, v);
          reference.AddReading(g, v);
          break;
        }
        case 1: {
          PartialAgg p = PartialAgg::FromValue(util::fixed_point::Quantize(rng.NextDouble(0, 100)));
          flat.MergePartial(g, p);
          reference.MergePartial(g, p);
          break;
        }
        case 2: {
          PartialAgg p = PartialAgg::FromValue(util::fixed_point::Quantize(rng.NextDouble(0, 100)));
          flat.Set(g, p);
          reference.Set(g, p);
          break;
        }
        default:
          flat.Erase(g);
          reference.Erase(g);
          break;
      }
    }
    // Entries agree in content AND order (both ascend by group id).
    ASSERT_EQ(flat.size(), reference.entries().size());
    auto it = reference.entries().begin();
    for (const auto& [g, p] : flat.entries()) {
      ASSERT_EQ(g, it->first);
      ASSERT_TRUE(SamePartial(p, it->second));
      ++it;
    }
    // Rankings are bit-identical for every aggregate kind.
    for (AggKind kind : {AggKind::kAvg, AggKind::kSum, AggKind::kMin, AggKind::kMax,
                         AggKind::kCount}) {
      auto want = reference.Ranked(kind);
      EXPECT_EQ(flat.Ranked(kind), want);
      for (size_t k : {size_t{1}, size_t{3}, want.size()}) {
        auto top = flat.TopK(kind, k);
        std::vector<agg::RankedItem> expect(
            want.begin(), want.begin() + static_cast<long>(std::min(k, want.size())));
        EXPECT_EQ(top, expect);
      }
    }
  }
}

// --------------------------------------------------- engine-level equivalence

void ExpectIdenticalRuns(const runner::ScenarioRun& a, const runner::ScenarioRun& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (size_t i = 0; i < a.trials.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    EXPECT_EQ(a.trials[i].ok, b.trials[i].ok);
    ASSERT_EQ(a.trials[i].metrics.size(), b.trials[i].metrics.size());
    for (size_t m = 0; m < a.trials[i].metrics.size(); ++m) {
      EXPECT_EQ(a.trials[i].metrics[m].first, b.trials[i].metrics[m].first);
      EXPECT_EQ(a.trials[i].metrics[m].second, b.trials[i].metrics[m].second);
    }
  }
}

TEST(GoldenEquivalenceTest, QuickSweepsBitIdenticalAcrossThreadCounts) {
  runner::ScenarioRegistry registry;
  bench::RegisterAllScenarios(registry);
  // E1 and the churn pair: the scenarios whose inner loops the flat view and
  // precomputed wave schedule rewrote.
  for (const char* name : {"fig1_scenario", "churn_lifetime", "churn_accuracy"}) {
    SCOPED_TRACE(name);
    const runner::Scenario* scenario = registry.Find(name);
    ASSERT_NE(scenario, nullptr);
    runner::ScenarioRun single =
        runner::ExperimentEngine({.threads = 1, .quick = true}).Run(*scenario);
    runner::ScenarioRun pooled =
        runner::ExperimentEngine({.threads = 8, .quick = true}).Run(*scenario);
    EXPECT_TRUE(single.AllOk());
    ExpectIdenticalRuns(single, pooled);
  }
}

// ----------------------------------------------- sharded-wave equivalence

/// Sharded epoch execution is a wall-clock knob, never a semantic one: the
/// same sweeps must be byte-identical for every shard count and every
/// runner thread count. E1 and E13 are lossless data planes, so this holds
/// serial-vs-sharded exactly. (E14 churn_accuracy is deliberately absent:
/// its degrade episodes draw real losses, and the sharded path draws them
/// from per-node substreams — sharded runs agree with each other for any
/// shard/thread count, which shard_test pins, but not with the serial
/// single-stream path.)
TEST(GoldenEquivalenceTest, QuickSweepsBitIdenticalAcrossShardCounts) {
  runner::ScenarioRegistry registry;
  bench::RegisterAllScenarios(registry);
  for (const char* name : {"fig1_scenario", "churn_lifetime"}) {
    SCOPED_TRACE(name);
    const runner::Scenario* scenario = registry.Find(name);
    ASSERT_NE(scenario, nullptr);
    runner::ScenarioRun baseline =
        runner::ExperimentEngine({.threads = 1, .quick = true, .shards = 1}).Run(*scenario);
    EXPECT_TRUE(baseline.AllOk());
    for (size_t shards : {size_t{2}, size_t{8}}) {
      for (size_t threads : {size_t{1}, size_t{8}}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) + " threads=" +
                     std::to_string(threads));
        runner::ScenarioRun sharded =
            runner::ExperimentEngine({.threads = threads, .quick = true, .shards = shards})
                .Run(*scenario);
        ExpectIdenticalRuns(baseline, sharded);
      }
    }
  }
}

/// E16's bed at n = 1000. The scenario's own metrics are wall-clock (not
/// comparable across configurations), so this pins the full observable
/// simulation state instead: every epoch's answer, the total and per-phase
/// traffic counters, each node's energy ledger and send count, and the
/// virtual clock.
TEST(GoldenEquivalenceTest, ThroughputBedBitIdenticalAcrossShardCounts) {
  constexpr size_t kNodes = 1000;
  constexpr size_t kRooms = 32;
  constexpr size_t kEpochs = 20;
  constexpr uint64_t kSeed = 161;

  struct BedState {
    std::vector<std::string> answers;
    sim::TrafficCounters total;
    std::map<std::string, sim::TrafficCounters> by_phase;
    std::vector<double> meter_joules;
    std::vector<uint64_t> sent_by;
    sim::TimeUs now = 0;
  };
  auto run_bed = [&](size_t shards, size_t threads) {
    bench::Bed bed = bench::Bed::Grid(kNodes, kRooms, kSeed);
    bed.EnableSharding(shards, threads);
    auto gen = bed.RoomData(kSeed);
    auto algo = bench::MakeSnapshotAlgo(bench::SnapshotAlgo::kMint, bed.net.get(), gen.get(),
                                        bench::RoomAvgSpec(3));
    BedState state;
    for (size_t e = 0; e < kEpochs; ++e) {
      state.answers.push_back(algo->RunEpoch(static_cast<sim::Epoch>(e)).ToString());
    }
    state.total = bed.net->total();
    state.by_phase = bed.net->by_phase();
    for (sim::NodeId id = 0; id < kNodes; ++id) {
      state.meter_joules.push_back(bed.net->meter(id).total_joules());
      state.sent_by.push_back(bed.net->MessagesSentBy(id));
    }
    state.now = bed.net->events().now();
    return state;
  };
  auto expect_same_counters = [](const sim::TrafficCounters& a, const sim::TrafficCounters& b) {
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_EQ(a.payload_bytes, b.payload_bytes);
    EXPECT_EQ(a.onair_bytes, b.onair_bytes);
    // Bit-exact, not approximate: the sharded merge replays sends in the
    // serial wave order, so even FP accumulation order matches.
    EXPECT_EQ(a.tx_energy_j, b.tx_energy_j);
    EXPECT_EQ(a.rx_energy_j, b.rx_energy_j);
  };

  BedState serial = run_bed(1, 1);
  for (size_t shards : {size_t{2}, size_t{8}}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " threads=" + std::to_string(threads));
      BedState sharded = run_bed(shards, threads);
      EXPECT_EQ(serial.answers, sharded.answers);
      expect_same_counters(serial.total, sharded.total);
      ASSERT_EQ(serial.by_phase.size(), sharded.by_phase.size());
      for (const auto& [phase, counters] : serial.by_phase) {
        SCOPED_TRACE(phase);
        auto it = sharded.by_phase.find(phase);
        ASSERT_NE(it, sharded.by_phase.end());
        expect_same_counters(counters, it->second);
      }
      EXPECT_EQ(serial.meter_joules, sharded.meter_joules);
      EXPECT_EQ(serial.sent_by, sharded.sent_by);
      EXPECT_EQ(serial.now, sharded.now);
    }
  }
}

// ------------------------------------------------ observability equivalence

/// The zero-perturbation contract of src/obs: with the metrics registry AND
/// the span tracer fully enabled, every result is bit-identical to an
/// unobserved run. Covers the instrumented serial path (E1 fig1_scenario,
/// E13 churn_lifetime through ChurnEngine spans/counters) and the sharded
/// RunLanes path (the E16 bed at n = 1000 with 2 lanes over 2 worker
/// threads, which exercises the lane wall-time histogram, the imbalance
/// gauge, and the TaskPool idle/claim instrumentation).
TEST(GoldenEquivalenceTest, ResultsBitIdenticalWithObservabilityEnabled) {
  struct ObsFlagGuard {
    bool metrics = obs::MetricsOn();
    bool tracing = obs::TracingOn();
    ~ObsFlagGuard() {
      obs::SetMetricsEnabled(metrics);
      obs::SetTracingEnabled(tracing);
    }
  } guard;

  runner::ScenarioRegistry registry;
  bench::RegisterAllScenarios(registry);
  for (const char* name : {"fig1_scenario", "churn_lifetime"}) {
    SCOPED_TRACE(name);
    const runner::Scenario* scenario = registry.Find(name);
    ASSERT_NE(scenario, nullptr);
    obs::SetMetricsEnabled(false);
    obs::SetTracingEnabled(false);
    runner::ScenarioRun dark =
        runner::ExperimentEngine({.threads = 1, .quick = true}).Run(*scenario);
    EXPECT_TRUE(dark.AllOk());
    obs::SetMetricsEnabled(true);
    obs::SetTracingEnabled(true);
    runner::ScenarioRun observed =
        runner::ExperimentEngine({.threads = 1, .quick = true}).Run(*scenario);
    ExpectIdenticalRuns(dark, observed);
  }

  // Sharded bed: answers, per-phase counters, per-node meters, the virtual
  // clock — all byte-identical while the lane instrumentation records.
  auto run_bed = [](bool observe) {
    obs::SetMetricsEnabled(observe);
    obs::SetTracingEnabled(observe);
    bench::Bed bed = bench::Bed::Grid(1000, 32, 161);
    bed.EnableSharding(/*shards=*/2, /*threads=*/2);
    auto gen = bed.RoomData(161);
    auto algo = bench::MakeSnapshotAlgo(bench::SnapshotAlgo::kMint, bed.net.get(), gen.get(),
                                        bench::RoomAvgSpec(3));
    std::vector<std::string> answers;
    for (size_t e = 0; e < 12; ++e) {
      answers.push_back(algo->RunEpoch(static_cast<sim::Epoch>(e)).ToString());
    }
    answers.push_back(std::to_string(bed.net->total().messages));
    answers.push_back(std::to_string(bed.net->total().payload_bytes));
    answers.push_back(std::to_string(bed.net->events().now()));
    for (sim::NodeId id = 0; id < 1000; id += 97) {
      answers.push_back(std::to_string(bed.net->MessagesSentBy(id)));
    }
    return answers;
  };
  std::vector<std::string> dark_bed = run_bed(false);
  uint64_t spans_before = obs::GlobalTracer().total_recorded();
  std::vector<std::string> observed_bed = run_bed(true);
  EXPECT_EQ(dark_bed, observed_bed);
  // And the observed run actually observed something — the equivalence is
  // not vacuous because instrumentation silently stayed off.
  EXPECT_GT(obs::GlobalTracer().total_recorded(), spans_before);
  bool saw_lane_metric = false;
  for (const auto& h : obs::Registry().Snapshot().histograms) {
    if (h.name == "shard.lane_wall_us" && h.dist.count > 0) saw_lane_metric = true;
  }
  EXPECT_TRUE(saw_lane_metric);
}

// ------------------------------------------- incremental vs full churn repair

core::QuerySpec RoomAvgSpec3() {
  core::QuerySpec spec;
  spec.k = 3;
  spec.agg = AggKind::kAvg;
  spec.grouping = core::Grouping::kRoom;
  spec.domain_max = 100.0;
  return spec;
}

std::unique_ptr<data::DataGenerator> RoomGen(const sim::Topology& topology, uint64_t seed) {
  std::vector<sim::GroupId> rooms;
  for (sim::NodeId id = 0; id < topology.num_nodes(); ++id) rooms.push_back(topology.room(id));
  return std::make_unique<data::RoomCorrelatedGenerator>(
      std::move(rooms), data::Modality::kSound, 0.5, 0.5, util::Rng(seed), 0.0, 1.0);
}

/// Runs MINT through a generated churn plan and asserts exactness against
/// the survivor oracle every epoch. Returns rebuild-phase message count.
uint64_t RunMintChurnExact(bool incremental, int* incremental_events, int* full_rebuilds) {
  constexpr uint64_t kSeed = 515;
  testing::TestBed bed = testing::TestBed::Grid(49, 10, kSeed);
  core::QuerySpec spec = RoomAvgSpec3();
  auto gen = RoomGen(bed.topology, kSeed);
  auto oracle_gen = RoomGen(bed.topology, kSeed);
  core::Oracle oracle(&bed.topology, oracle_gen.get(), spec);

  fault::FaultPlanOptions fopt;
  fopt.horizon = 60;
  fopt.crash_prob = 0.01;
  fopt.mean_downtime = 8;
  fault::FaultPlan plan = fault::FaultPlan::Generate(bed.topology, fopt, kSeed ^ 0xFA11);
  fault::ChurnEngine churn(bed.net.get(), &bed.tree, std::move(plan));

  core::MintViews::Options options;
  options.incremental_repair = incremental;
  core::MintViews mint(bed.net.get(), gen.get(), spec, options);
  for (size_t e = 0; e < 60; ++e) {
    auto epoch = static_cast<sim::Epoch>(e);
    fault::ChurnReport report = churn.BeginEpoch(epoch);
    if (report.topology_changed) mint.OnTopologyChanged(report.delta);
    core::TopKResult got = mint.RunEpoch(epoch);
    core::TopKResult want = oracle.TopKOver(epoch, [&](sim::NodeId id) {
      return bed.net->NodeAlive(id) && bed.tree.attached(id);
    });
    EXPECT_TRUE(got.Matches(want)) << "incremental=" << incremental << " epoch " << e
                                   << "\ngot:\n" << got.ToString() << "want:\n"
                                   << want.ToString();
  }
  if (incremental_events != nullptr) *incremental_events = mint.incremental_repair_count();
  if (full_rebuilds != nullptr) *full_rebuilds = mint.churn_rebuild_count();
  return bed.net->PhaseTotal("mint.create").messages +
         bed.net->PhaseTotal("mint.repair").messages;
}

// ----------------------------------------------------- phase-counter digests
//
// Network's per-phase accounting moved from a string-keyed map to an
// interned-phase-id array. These digests were captured from the pre-interning
// implementation; they pin that PhaseTotal / by_phase() return byte-identical
// integer counters through the refactor (doubles are excluded — energy sums
// are checked via conservation against total() instead, which is robust to
// compiler FP-contraction differences).

/// FNV-1a over the label-sorted (phase name, integer counters) table.
uint64_t PhaseDigest(const sim::Network& net) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& [name, counters] : net.by_phase()) {
    for (char c : name) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ULL;
    }
    mix(counters.messages);
    mix(counters.frames);
    mix(counters.payload_bytes);
    mix(counters.onair_bytes);
  }
  return h;
}

/// The bench-style cluster-aware bed the digests were captured on (TestBed
/// uses the first-heard tree, which would change every number).
struct DigestBed {
  sim::Topology topology;
  sim::RoutingTree tree;
  std::unique_ptr<sim::Network> net;
};

DigestBed MakeDigestBed(size_t nodes, size_t rooms, uint64_t seed,
                        sim::NetworkOptions opt = {}) {
  DigestBed bed;
  sim::TopologyOptions topt;
  topt.num_nodes = nodes;
  topt.num_rooms = rooms;
  bed.topology = sim::MakeGrid(topt);
  util::Rng rng(seed);
  bed.tree = sim::RoutingTree::BuildClusterAware(bed.topology, rng);
  bed.net =
      std::make_unique<sim::Network>(&bed.topology, &bed.tree, opt, util::Rng(seed ^ 0xBEEF));
  return bed;
}

core::QuerySpec DigestSpec(int k, core::Grouping grouping) {
  core::QuerySpec spec;
  spec.k = k;
  spec.agg = AggKind::kAvg;
  spec.grouping = grouping;
  spec.domain_max = 100.0;
  return spec;
}

/// Beyond the digest: name- and id-keyed PhaseTotal agree, and the per-phase
/// table partitions total() exactly.
void ExpectPhaseAccountingConsistent(const sim::Network& net) {
  sim::TrafficCounters sum;
  for (const auto& [name, counters] : net.by_phase()) {
    sum.Add(counters);
    sim::TrafficCounters by_name = net.PhaseTotal(name);
    sim::TrafficCounters by_id = net.PhaseTotal(sim::Network::InternPhase(name));
    EXPECT_EQ(by_name.messages, by_id.messages) << name;
    EXPECT_EQ(by_name.payload_bytes, by_id.payload_bytes) << name;
    EXPECT_EQ(by_name.messages, counters.messages) << name;
  }
  EXPECT_EQ(sum.messages, net.total().messages);
  EXPECT_EQ(sum.frames, net.total().frames);
  EXPECT_EQ(sum.payload_bytes, net.total().payload_bytes);
  EXPECT_EQ(sum.onair_bytes, net.total().onair_bytes);
  // Energy is summed per delta into both ledgers but in different orders, so
  // conservation holds to rounding, not to the last ulp.
  EXPECT_NEAR(sum.tx_energy_j, net.total().tx_energy_j, 1e-9 * (1.0 + net.total().tx_energy_j));
  EXPECT_NEAR(sum.rx_energy_j, net.total().rx_energy_j, 1e-9 * (1.0 + net.total().rx_energy_j));
  // Unknown phases read as zeroes, never as errors.
  EXPECT_EQ(net.PhaseTotal("no.such.phase").messages, 0u);
}

TEST(GoldenEquivalenceTest, PhaseCountersMatchPreInterningDigests) {
  {  // MINT under churn: create/update/beacon/repair + fault.repair phases.
    DigestBed bed = MakeDigestBed(49, 8, 7);
    auto gen = RoomGen(bed.topology, 7);
    core::MintViews mint(bed.net.get(), gen.get(), DigestSpec(3, core::Grouping::kRoom));
    // A hand-written plan, so the digest pins the *accounting* and never
    // moves when the FaultPlan generator's sampling scheme evolves.
    fault::FaultPlan plan;
    plan.seed = 7;
    plan.events = {{3, fault::FaultEvent::Kind::kCrash, 12, 0.0},
                   {5, fault::FaultEvent::Kind::kDegradeStart, 20, 0.3},
                   {9, fault::FaultEvent::Kind::kRecover, 12, 0.0},
                   {15, fault::FaultEvent::Kind::kDegradeEnd, 20, 0.0},
                   {18, fault::FaultEvent::Kind::kCrash, 7, 0.0}};
    fault::ChurnEngine churn(bed.net.get(), &bed.tree, std::move(plan));
    for (sim::Epoch e = 0; e < 30; ++e) {
      fault::ChurnReport report = churn.BeginEpoch(e);
      if (report.topology_changed) mint.OnTopologyChanged(report.delta);
      mint.RunEpoch(e);
    }
    EXPECT_EQ(PhaseDigest(*bed.net), 0xab2e128f1926cbc5ULL);
    ExpectPhaseAccountingConsistent(*bed.net);
  }
  {  // TAG with loss and retries.
    sim::NetworkOptions opt;
    opt.loss_prob = 0.05;
    opt.max_retries = 1;
    DigestBed bed = MakeDigestBed(25, 4, 11, opt);
    auto gen = RoomGen(bed.topology, 11);
    core::TagTopK tag(bed.net.get(), gen.get(), DigestSpec(2, core::Grouping::kRoom));
    for (sim::Epoch e = 0; e < 10; ++e) tag.RunEpoch(e);
    EXPECT_EQ(PhaseDigest(*bed.net), 0x01b6b2cea85942b4ULL);
    ExpectPhaseAccountingConsistent(*bed.net);
  }
  {  // FILA: init/filter/report/probe.
    DigestBed bed = MakeDigestBed(25, 4, 13);
    auto gen = RoomGen(bed.topology, 13);
    core::Fila fila(bed.net.get(), gen.get(), DigestSpec(3, core::Grouping::kNode));
    for (sim::Epoch e = 0; e < 20; ++e) fila.RunEpoch(e);
    EXPECT_EQ(PhaseDigest(*bed.net), 0x03c618d54d02d3f1ULL);
    ExpectPhaseAccountingConsistent(*bed.net);
  }
  {  // TJA: lb/hj (plus cl when deepening fires).
    DigestBed bed = MakeDigestBed(25, 4, 17);
    auto gen = RoomGen(bed.topology, 17);
    core::GeneratorHistory history(gen.get(), bed.topology.num_nodes(), 0, 32);
    core::HistoricOptions opt;
    opt.k = 3;
    core::Tja tja(bed.net.get(), &history, opt);
    tja.Run();
    EXPECT_EQ(PhaseDigest(*bed.net), 0x76d5fbdb6a9aa589ULL);
    ExpectPhaseAccountingConsistent(*bed.net);
  }
}

// ------------------------------------------------ historic-path equivalence

/// The continuous historic operator's golden pin: the O(delta) incremental
/// window maintenance answers bit-identically to the O(W*n) from-scratch
/// re-collection, and the delta path itself is byte-identical (answers AND
/// traffic counters) across shard/thread counts. Suppression off is
/// bit-inert — the eps knob is never consulted while the toggle is down.
TEST(GoldenEquivalenceTest, HistoricDeltaMatchesScratchAcrossShardCounts) {
  constexpr size_t kNodes = 200;
  constexpr size_t kRooms = 16;
  constexpr size_t kEpochs = 40;
  constexpr uint64_t kSeed = 171;
  auto run = [&](bool incremental, double eps, size_t shards, size_t threads) {
    bench::Bed bed = bench::Bed::Grid(kNodes, kRooms, kSeed);
    bed.EnableSharding(shards, threads);
    auto gen = bed.RoomData(kSeed);
    core::HistoricStreamOptions hopt;
    hopt.k = 3;
    hopt.window = 16;
    hopt.incremental = incremental;
    hopt.suppression = false;
    hopt.suppression_eps = eps;
    core::HistoricStream stream(bed.net.get(), gen.get(), hopt);
    std::vector<std::string> out;
    for (size_t e = 0; e < kEpochs; ++e) {
      out.push_back(stream.RunEpoch(static_cast<sim::Epoch>(e)).ToString());
    }
    // Traffic digest rides behind the answers: the first kEpochs entries
    // compare delta-vs-scratch (answers only — cost differs by design), the
    // whole vector compares shard/thread variants byte-for-byte.
    out.push_back(std::to_string(bed.net->total().messages));
    out.push_back(std::to_string(bed.net->total().payload_bytes));
    out.push_back(std::to_string(bed.net->events().now()));
    return out;
  };

  std::vector<std::string> delta = run(/*incremental=*/true, 0.5, 1, 1);
  std::vector<std::string> scratch = run(/*incremental=*/false, 0.5, 1, 1);
  for (size_t e = 0; e < kEpochs; ++e) {
    SCOPED_TRACE("epoch " + std::to_string(e));
    EXPECT_EQ(delta[e], scratch[e]);
  }
  for (size_t shards : {size_t{2}, size_t{8}}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " threads=" + std::to_string(threads));
      EXPECT_EQ(run(/*incremental=*/true, 0.5, shards, threads), delta);
    }
  }
  // eps is inert while the suppression toggle is down — byte-identical run.
  EXPECT_EQ(run(/*incremental=*/true, 99.0, 1, 1), delta);
}

TEST(GoldenEquivalenceTest, IncrementalRepairStaysExactAndCheaper) {
  int incremental_events = 0;
  int full_rebuilds = 0;
  uint64_t incremental_msgs =
      RunMintChurnExact(/*incremental=*/true, &incremental_events, &full_rebuilds);
  EXPECT_GT(incremental_events, 0) << "plan produced no churn to repair";
  EXPECT_EQ(full_rebuilds, 0);

  int fallback_events = 0;
  int fallback_rebuilds = 0;
  uint64_t fallback_msgs =
      RunMintChurnExact(/*incremental=*/false, &fallback_events, &fallback_rebuilds);
  EXPECT_EQ(fallback_events, 0);
  EXPECT_GT(fallback_rebuilds, 0);
  // Same exact answers, strictly less rebuild traffic.
  EXPECT_LT(incremental_msgs, fallback_msgs);
}

}  // namespace
}  // namespace kspot
