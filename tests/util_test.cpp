#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/bloom_filter.hpp"
#include "util/csv_writer.hpp"
#include "util/fixed_point.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/string_util.hpp"
#include "util/table_printer.hpp"

namespace kspot::util {
namespace {

// ---------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng base(31);
  Rng s1 = base.Split(1);
  Rng s2 = base.Split(2);
  Rng base2(31);
  Rng s1_again = base2.Split(1);
  EXPECT_EQ(s1.NextU64(), s1_again.NextU64());
  int same = 0;
  for (int i = 0; i < 64; ++i) same += s1.NextU64() == s2.NextU64();
  EXPECT_LT(same, 2);
}

// Pins the exact Split substream outputs. Per-node loss substreams are what
// keep the sharded epoch waves bit-identical across shard/thread counts, so
// a silent change to the Split mixing function would invalidate every pinned
// sharded golden digest — this test makes such a change loud.
TEST(RngTest, SplitGoldenVectors) {
  const uint64_t kExpected[4][8] = {
      {0xb344268a3ee87fbbULL, 0x9ad19b3ad4179cbcULL, 0xdb5068320b93fe90ULL, 0xfe5b252d327f601fULL,
       0xb8facdab40c09031ULL, 0x6ca9ed4122dfc776ULL, 0xc500f01023d7823cULL, 0xa5f36db321f877e9ULL},
      {0xfc67cd9e385300c3ULL, 0xc44c078a7e2c7cf6ULL, 0xf7a972ad67837bd5ULL, 0x7068187316be52e9ULL,
       0x458d56ead6e1f301ULL, 0x58a495e40a205888ULL, 0xa6b6fbb37891d0edULL, 0x6e04e4ef08af5138ULL},
      {0xff20afb2f1f90d7fULL, 0x6854a8ec7f77bfcfULL, 0x3829a8c235528363ULL, 0x69958e89b47d42a5ULL,
       0x4643d0f1aacd6800ULL, 0x912bf01cab7188b4ULL, 0x956fd32112f58270ULL, 0xd70a9737411b27c6ULL},
      {0xf42b81c14b09403dULL, 0x4a806c0bd6e0a956ULL, 0xd19e5e3a07c01522ULL, 0x2d2b5df7acc75ec6ULL,
       0x416831a80fcc88c0ULL, 0x57c1f8ae0c07a08eULL, 0x4be78e90f0b0817aULL, 0x76f2546e0ed7886fULL},
  };
  Rng base(0x5EED);
  for (uint64_t stream = 0; stream < 4; ++stream) {
    Rng child = base.Split(stream);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(child.NextU64(), kExpected[stream][i])
          << "stream " << stream << " draw " << i;
    }
  }
  // Split is const: after deriving 4 children the parent's own sequence is
  // untouched — its next draw equals a fresh generator's first draw.
  Rng fresh(0x5EED);
  EXPECT_EQ(base.NextU64(), fresh.NextU64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// -------------------------------------------------------------------- Bloom

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf = BloomFilter::WithExpectedItems(100, 0.01);
  for (uint64_t k = 0; k < 100; ++k) bf.Insert(k * 977 + 3);
  for (uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(bf.MayContain(k * 977 + 3));
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  BloomFilter bf = BloomFilter::WithExpectedItems(500, 0.02);
  for (uint64_t k = 0; k < 500; ++k) bf.Insert(k);
  int fps = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    fps += bf.MayContain(1'000'000 + static_cast<uint64_t>(i));
  }
  double rate = static_cast<double>(fps) / probes;
  EXPECT_LT(rate, 0.06);  // target 0.02 with generous slack
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  BloomFilter bf = BloomFilter::WithExpectedItems(64, 0.05);
  for (uint64_t k = 0; k < 64; ++k) bf.Insert(k * k + 1);
  std::vector<uint8_t> bytes;
  bf.Serialize(bytes);
  EXPECT_EQ(bytes.size(), bf.WireSizeBytes());
  BloomFilter parsed(64, 1);
  ASSERT_EQ(BloomFilter::Deserialize(bytes.data(), bytes.size(), &parsed), bytes.size());
  for (uint64_t k = 0; k < 64; ++k) EXPECT_TRUE(parsed.MayContain(k * k + 1));
  EXPECT_EQ(parsed.num_bits(), bf.num_bits());
  EXPECT_EQ(parsed.num_hashes(), bf.num_hashes());
}

TEST(BloomFilterTest, DeserializeRejectsMalformed) {
  BloomFilter out(64, 1);
  std::vector<uint8_t> junk = {1, 2, 3};
  EXPECT_EQ(BloomFilter::Deserialize(junk.data(), junk.size(), &out), 0u);
  // Truncated body.
  BloomFilter bf(128, 3);
  std::vector<uint8_t> bytes;
  bf.Serialize(bytes);
  EXPECT_EQ(BloomFilter::Deserialize(bytes.data(), bytes.size() - 1, &out), 0u);
}

TEST(BloomFilterTest, EstimatedFpRateMonotoneInLoad) {
  BloomFilter bf(1024, 4);
  EXPECT_LT(bf.EstimatedFpRate(10), bf.EstimatedFpRate(1000));
}

// -------------------------------------------------------------------- Stats

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextGaussian(3, 2);
    all.Add(v);
    (i % 2 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(PercentilesTest, QuantilesOfKnownSequence) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 100.0);
  EXPECT_NEAR(p.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(p.Quantile(0.95), 95.05, 0.2);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.Quantile(0.5), 0.0);
  DistSummary s = p.Summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(PercentilesTest, SingleSampleIsEveryQuantile) {
  Percentiles p;
  p.Add(7.5);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(p.Quantile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 7.5);
  DistSummary s = p.Summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p50, 7.5);
  EXPECT_DOUBLE_EQ(s.p95, 7.5);
  EXPECT_DOUBLE_EQ(s.p99, 7.5);
}

TEST(PercentilesTest, TwoSamplesInterpolate) {
  Percentiles p;
  p.Add(10.0);
  p.Add(20.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 20.0);
}

TEST(PercentilesTest, ExactBoundaryRanksAreNotInterpolated) {
  // With 5 samples the ranks for q in {0, .25, .5, .75, 1} land exactly on
  // elements; the quantile must return them directly (no 1-ulp smearing).
  std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (size_t i = 0; i < sorted.size(); ++i) {
    double q = static_cast<double>(i) / 4.0;
    EXPECT_DOUBLE_EQ(SortedQuantile(sorted, q), sorted[i]) << "q=" << q;
  }
  // Out-of-range q clamps instead of indexing out.
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(SortedQuantile(sorted, 1.5), 5.0);
  EXPECT_EQ(SortedQuantile({}, 0.5), 0.0);
}

TEST(PercentilesTest, AddAfterQuantileResorts) {
  // Regression: Add() must invalidate the sorted cache, or quantiles after
  // an interleaved Add are computed over partially unsorted data.
  Percentiles p;
  p.Add(50.0);
  p.Add(10.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 10.0);  // forces the sort
  p.Add(1.0);
  EXPECT_DOUBLE_EQ(p.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.Quantile(1.0), 50.0);
}

TEST(PercentilesTest, SummaryMatchesDirectQuantiles) {
  Percentiles p;
  for (int i = 100; i >= 1; --i) p.Add(i);
  DistSummary s = p.Summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.p50, p.Quantile(0.50));
  EXPECT_DOUBLE_EQ(s.p95, p.Quantile(0.95));
  EXPECT_DOUBLE_EQ(s.p99, p.Quantile(0.99));
}

// ------------------------------------------------------------------- String

TEST(StringUtilTest, TrimAndSplit) {
  EXPECT_EQ(Trim("  hello\t "), "hello");
  EXPECT_EQ(Trim(""), "");
  auto parts = Split(" a, b ,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("AVG", "avg"));
  EXPECT_FALSE(EqualsIgnoreCase("AVG", "av"));
  EXPECT_TRUE(StartsWith("roomid", "room"));
  EXPECT_FALSE(StartsWith("room", "roomid"));
}

TEST(StringUtilTest, Formatting) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
}

// -------------------------------------------------------------- Fixed point

TEST(FixedPointTest, RoundTripOnGrid) {
  for (double v : {0.0, 1.0, -1.0, 75.5, 99.99609375, -20.25}) {
    double q = fixed_point::Quantize(v);
    EXPECT_DOUBLE_EQ(fixed_point::Decode(fixed_point::Encode(q)), q);
  }
}

TEST(FixedPointTest, QuantizationErrorBounded) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble(-100, 100);
    EXPECT_NEAR(fixed_point::Quantize(v), v, 1.0 / 256.0);
  }
}

// ------------------------------------------------------------------- Status

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  Status e = Status::Error("boom");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.message(), "boom");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> v(42);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  StatusOr<int> e(Status::Error("nope"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().message(), "nope");
}

// -------------------------------------------------------------------- Table

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow(std::vector<std::string>{"alpha", "1"});
  t.AddRow(std::vector<std::string>{"b", "23456"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("23456"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(CsvWriterTest, EscapesAndWrites) {
  std::string path = ::testing::TempDir() + "/kspot_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.AddRow(std::vector<std::string>{"x,y", "plain"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "\"x,y\",plain");
}

}  // namespace
}  // namespace kspot::util
