#include <gtest/gtest.h>

#include "kspot/display_panel.hpp"
#include "kspot/node_runtime.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"
#include "kspot/system_panel.hpp"

namespace kspot::system {
namespace {

// ----------------------------------------------------------------- Scenario

TEST(ScenarioTest, TextRoundTrip) {
  Scenario s = Scenario::Figure1();
  std::string text = s.ToText();
  auto parsed = Scenario::FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const Scenario& p = parsed.value();
  EXPECT_EQ(p.name, "figure1");
  EXPECT_EQ(p.nodes.size(), 10u);
  EXPECT_EQ(p.ClusterName(2), "C");
  EXPECT_DOUBLE_EQ(p.comm_range, 8.0);
  EXPECT_EQ(p.modality, data::Modality::kSound);
}

TEST(ScenarioTest, FileRoundTrip) {
  Scenario s = Scenario::ConferenceFloor(6, 3, 7);
  std::string path = ::testing::TempDir() + "/kspot_scenario_test.kcfg";
  ASSERT_TRUE(s.Save(path));
  auto loaded = Scenario::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().nodes.size(), s.nodes.size());
  EXPECT_EQ(loaded.value().cluster_names.size(), 6u);
}

TEST(ScenarioTest, RejectsMalformedInput) {
  EXPECT_FALSE(Scenario::FromText("").ok());
  EXPECT_FALSE(Scenario::FromText("garbage directive\n").ok());
  EXPECT_FALSE(Scenario::FromText("node 1 0 0 0\n").ok());  // no sink
  EXPECT_FALSE(Scenario::FromText("modality warp\nnode 0 0 0 0\n").ok());
  EXPECT_FALSE(Scenario::Load("/nonexistent/path.kcfg").ok());
}

TEST(ScenarioTest, BuildTopologyMapsRooms) {
  Scenario s = Scenario::Figure1();
  sim::Topology t = s.BuildTopology();
  EXPECT_EQ(t.num_nodes(), 10u);
  EXPECT_EQ(t.room(9), 3);
  EXPECT_TRUE(t.IsConnected());
}

TEST(ScenarioTest, ConferenceFloorShape) {
  Scenario s = Scenario::ConferenceFloor(6, 4, 3);
  EXPECT_EQ(s.nodes.size(), 1 + 6 * 4);
  EXPECT_EQ(s.ClusterName(0), "Auditorium");
  sim::Topology t = s.BuildTopology();
  EXPECT_EQ(t.NodesInRoom(0).size(), 4u);
}

// -------------------------------------------------------------- NodeRuntime

TEST(NodeRuntimeTest, InstallsAndClassifiesQueries) {
  NodeRuntime node(3, 16, data::GetModalityInfo(data::Modality::kSound));
  EXPECT_FALSE(node.has_query());
  auto s = node.InstallQuery("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid");
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_TRUE(node.has_query());
  EXPECT_EQ(node.query_class(), query::QueryClass::kSnapshotTopK);
  EXPECT_EQ(node.query().top_k, 2);
}

TEST(NodeRuntimeTest, RejectsBadQueries) {
  NodeRuntime node(3, 16, data::GetModalityInfo(data::Modality::kSound));
  EXPECT_FALSE(node.InstallQuery("SELECT warp FROM sensors").ok());
  EXPECT_FALSE(node.has_query());
}

TEST(NodeRuntimeTest, SamplesFeedHistory) {
  NodeRuntime node(3, 4, data::GetModalityInfo(data::Modality::kSound));
  for (sim::Epoch e = 0; e < 6; ++e) node.Sample(e, 10.0 * e);
  std::vector<double> window;
  node.history().Window().ForEach([&](size_t, double v) { window.push_back(v); });
  EXPECT_EQ(window, (std::vector<double>{20, 30, 40, 50}));
}

// -------------------------------------------------------------------- Panels

TEST(DisplayPanelTest, RendersMapAndBullets) {
  Scenario s = Scenario::Figure1();
  DisplayPanel panel(&s, 40, 12);
  std::string map = panel.RenderMap();
  EXPECT_NE(map.find('#'), std::string::npos);   // sink
  EXPECT_NE(map.find('C'), std::string::npos);   // a room-C sensor
  core::TopKResult result;
  result.epoch = 7;
  result.items = {{2, 75.0}, {0, 74.5}};
  std::string bullets = panel.RenderBullets(result);
  EXPECT_NE(bullets.find("(1) C 75.00"), std::string::npos);
  EXPECT_NE(bullets.find("(2) A 74.50"), std::string::npos);
  std::string frame = panel.RenderFrame(result);
  EXPECT_NE(frame.find("Display Panel"), std::string::npos);
}

TEST(SystemPanelTest, SavingsMath) {
  SystemPanel panel;
  sim::TrafficCounters kspot;
  kspot.messages = 25;
  kspot.payload_bytes = 500;
  kspot.tx_energy_j = 0.5;
  sim::TrafficCounters baseline;
  baseline.messages = 100;
  baseline.payload_bytes = 1000;
  baseline.tx_energy_j = 1.0;
  panel.RecordKspotEpoch(kspot);
  panel.RecordBaselineEpoch(baseline);
  EXPECT_DOUBLE_EQ(panel.MessageSavingsPercent(), 75.0);
  EXPECT_DOUBLE_EQ(panel.ByteSavingsPercent(), 50.0);
  EXPECT_DOUBLE_EQ(panel.EnergySavingsPercent(), 50.0);
  std::string text = panel.Render();
  EXPECT_NE(text.find("System Panel"), std::string::npos);
  EXPECT_NE(text.find("75.0%"), std::string::npos);
}

// -------------------------------------------------------------------- Server

KSpotServer::Options SmallRun(size_t epochs = 10) {
  KSpotServer::Options opt;
  opt.epochs = epochs;
  opt.seed = 99;
  return opt;
}

TEST(ServerTest, SnapshotTopKRunsMintAndSaves) {
  KSpotServer server(Scenario::ConferenceFloor(6, 3, 5), SmallRun(15));
  auto outcome =
      server.Execute("SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid");
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  const RunOutcome& r = outcome.value();
  EXPECT_EQ(r.algorithm, "MINT");
  EXPECT_EQ(r.per_epoch.size(), 15u);
  for (const auto& epoch : r.per_epoch) EXPECT_EQ(epoch.items.size(), 3u);
  EXPECT_LT(r.cost.payload_bytes, r.baseline_cost.payload_bytes);
  EXPECT_GT(r.panel.ByteSavingsPercent(), 0.0);
}

TEST(ServerTest, BasicSelectRoutesToTag) {
  KSpotServer server(Scenario::ConferenceFloor(4, 3, 5), SmallRun(5));
  auto outcome = server.Execute("SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().algorithm, "TAG");
  EXPECT_EQ(outcome.value().query_class, query::QueryClass::kBasicSelect);
}

TEST(ServerTest, HistoricVerticalRoutesToTja) {
  // Historic queries are about *long* buffers (months of readings in the
  // paper's example); a window much larger than the candidate union is
  // TJA's regime.
  KSpotServer server(Scenario::ConferenceFloor(4, 3, 5), SmallRun());
  auto outcome = server.Execute(
      "SELECT TOP 3 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 128");
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  const RunOutcome& r = outcome.value();
  EXPECT_EQ(r.algorithm, "TJA");
  EXPECT_EQ(r.historic.items.size(), 3u);
  EXPECT_GE(r.historic.lsink_size, 3u);
  EXPECT_LT(r.cost.payload_bytes, r.baseline_cost.payload_bytes);
}

TEST(ServerTest, HistoricHorizontalRoutesToMintOverWindows) {
  KSpotServer server(Scenario::ConferenceFloor(4, 3, 5), SmallRun(8));
  auto outcome = server.Execute(
      "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 8");
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_EQ(outcome.value().algorithm, "MINT+history");
  EXPECT_EQ(outcome.value().per_epoch.size(), 8u);
}

TEST(ServerTest, SurfacesQueryErrors) {
  KSpotServer server(Scenario::ConferenceFloor(4, 3, 5), SmallRun());
  EXPECT_FALSE(server.Execute("SELECT").ok());
  EXPECT_FALSE(server.Execute("SELECT bogus FROM sensors").ok());
  EXPECT_FALSE(
      server.Execute("SELECT TOP 2 roomid, AVG(sound) FROM sensors").ok());  // no GROUP BY
}

TEST(ServerTest, ChurnOptionsDriveFaultInjectionAndNodeStatus) {
  // Moderate churn: at high crash rates MINT's per-repair view rebuilds
  // erode its savings (that trade-off is E14's subject, not this test's).
  KSpotServer::Options opt = SmallRun(40);
  opt.enable_churn = true;
  opt.churn.crash_prob = 0.005;
  opt.churn.mean_downtime = 8;
  KSpotServer server(Scenario::ConferenceFloor(6, 3, 5), opt);
  auto outcome =
      server.Execute("SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid");
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  const RunOutcome& r = outcome.value();
  EXPECT_EQ(r.per_epoch.size(), 40u);
  // The System Panel surfaces node status once churn ran.
  const SystemPanel::NodeStatus& status = r.panel.node_status();
  EXPECT_EQ(status.total, server.scenario().nodes.size());
  EXPECT_GT(status.up, 0u);
  EXPECT_GT(status.repair_events, 0u);
  EXPECT_GT(status.repair_messages, 0u);
  EXPECT_NE(r.panel.Render().find("nodes up"), std::string::npos);
  EXPECT_NE(r.panel.Render().find("tree repairs"), std::string::npos);
  // Repair traffic is charged: the same plan hits both runs, and MINT still
  // undercuts the TAG shadow baseline.
  EXPECT_LT(r.cost.payload_bytes, r.baseline_cost.payload_bytes);
}

TEST(ServerTest, ChurnDisabledLeavesPanelStatusEmpty) {
  KSpotServer server(Scenario::ConferenceFloor(4, 3, 5), SmallRun(5));
  auto outcome =
      server.Execute("SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().panel.node_status().total, 0u);
  EXPECT_EQ(outcome.value().panel.Render().find("nodes up"), std::string::npos);
}

/// Order- and run-independent digest of everything a query returned.
std::string OutcomeDigest(const RunOutcome& r) {
  char buf[96];
  std::string out;
  for (const auto& epoch : r.per_epoch) {
    for (const auto& item : epoch.items) {
      snprintf(buf, sizeof buf, "%d:%.17g;", item.group, item.value);
      out += buf;
    }
    out += '|';
  }
  for (const auto& rows : r.rows_per_epoch) {
    for (const auto& t : rows) {
      snprintf(buf, sizeof buf, "%u=%.17g;", t.node, t.value);
      out += buf;
    }
    out += '|';
  }
  for (const auto& item : r.historic.items) {
    snprintf(buf, sizeof buf, "H%d:%.17g;", item.group, item.value);
    out += buf;
  }
  snprintf(buf, sizeof buf, "m=%llu,b=%llu,E=%.17g",
           static_cast<unsigned long long>(r.cost.messages),
           static_cast<unsigned long long>(r.cost.payload_bytes), r.cost.energy_j());
  out += buf;
  return out;
}

TEST(ServerTest, ExecuteTwiceIsBitIdentical) {
  // The coordinator reuses one server-side deployment for many queries, so
  // Execute must never perturb state a later Execute reads: two sequential
  // calls with the same SQL and seed are bit-identical, per query class,
  // even interleaved with other queries and under churn + loss + batteries.
  KSpotServer::Options opt;
  opt.epochs = 12;
  opt.seed = 42;
  opt.loss_prob = 0.08;
  opt.max_retries = 1;
  opt.battery_j = 0.5;
  opt.enable_churn = true;
  opt.churn.crash_prob = 0.01;
  opt.churn.mean_downtime = 5;
  KSpotServer server(Scenario::ConferenceFloor(6, 3, 5), opt);
  const char* queries[] = {
      "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid",
      "SELECT nodeid, sound FROM sensors WHERE sound > 40",
      "SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid",
      "SELECT TOP 3 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 64",
      "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 8",
  };
  std::vector<std::string> first;
  for (const char* sql : queries) {
    auto outcome = server.Execute(sql);
    ASSERT_TRUE(outcome.ok()) << sql << ": " << outcome.status().message();
    first.push_back(OutcomeDigest(outcome.value()));
  }
  for (size_t i = 0; i < std::size(queries); ++i) {
    auto outcome = server.Execute(queries[i]);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(OutcomeDigest(outcome.value()), first[i]) << queries[i];
  }
  // And a fresh server over the same scenario/options reproduces them too.
  KSpotServer fresh(Scenario::ConferenceFloor(6, 3, 5), opt);
  auto outcome = fresh.Execute(queries[0]);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(OutcomeDigest(outcome.value()), first[0]);
}

TEST(ServerTest, StreamingCallbackFiresPerEpoch) {
  KSpotServer server(Scenario::ConferenceFloor(4, 3, 5), SmallRun(6));
  size_t calls = 0;
  auto outcome = server.ExecuteStreaming(
      "SELECT TOP 1 roomid, AVG(sound) FROM sensors GROUP BY roomid",
      [&](const core::TopKResult&, const SystemPanel&) { ++calls; });
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(calls, 6u);
}

TEST(ServerTest, Figure1ScenarioEndToEnd) {
  KSpotServer::Options opt = SmallRun(3);
  opt.make_generator = [](const Scenario&, uint64_t) {
    return std::make_unique<data::ConstantGenerator>(sim::Figure1Readings());
  };
  KSpotServer server(Scenario::Figure1(), opt);
  auto outcome =
      server.Execute("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors GROUP BY roomid");
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  for (const auto& epoch : outcome.value().per_epoch) {
    ASSERT_EQ(epoch.items.size(), 1u);
    EXPECT_EQ(epoch.items[0].group, 2);  // room C
    EXPECT_DOUBLE_EQ(epoch.items[0].value, 75.0);
  }
}

}  // namespace
}  // namespace kspot::system
