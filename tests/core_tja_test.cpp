#include <gtest/gtest.h>

#include "agg/group_view.hpp"
#include "core/centralized.hpp"
#include "core/tja.hpp"
#include "query/parser.hpp"
#include "test_util.hpp"

namespace kspot::core {
namespace {

using kspot::testing::TestBed;

/// Exact historic top-k reference: aggregate each window key across nodes.
std::vector<agg::RankedItem> HistoricOracle(const HistorySource& history, agg::AggKind kind,
                                            size_t k) {
  agg::GroupView view;
  for (sim::NodeId id = 1; id < history.num_nodes(); ++id) {
    std::vector<double> w = history.MaterializeWindow(id);
    for (size_t t = 0; t < w.size(); ++t) {
      view.AddReading(static_cast<sim::GroupId>(t), w[t]);
    }
  }
  return view.TopK(kind, k);
}

bool SameItems(const std::vector<agg::RankedItem>& a, const std::vector<agg::RankedItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].group != b[i].group || std::abs(a[i].value - b[i].value) > 1e-9) return false;
  }
  return true;
}

TEST(TjaTest, ExactOnRandomWindows) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto bed = TestBed::Grid(25, 4, 400 + seed);
    data::UniformGenerator gen(25, data::Modality::kTemperature, util::Rng(seed));
    GeneratorHistory history(&gen, 25, 0, 32);
    HistoricOptions opt;
    opt.k = 4;
    Tja tja(bed.net.get(), &history, opt);
    HistoricResult got = tja.Run();
    auto want = HistoricOracle(history, opt.agg, 4);
    EXPECT_TRUE(SameItems(got.items, want)) << "seed " << seed;
    EXPECT_GE(got.lsink_size, 4u);
  }
}

TEST(TjaTest, ExactWithBloomCompression) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    auto bed = TestBed::Grid(25, 4, 430 + seed);
    data::UniformGenerator gen(25, data::Modality::kSound, util::Rng(77 + seed));
    GeneratorHistory history(&gen, 25, 0, 64);
    HistoricOptions opt;
    opt.k = 5;
    opt.use_bloom = true;
    opt.bloom_fpr = 0.05;
    Tja tja(bed.net.get(), &history, opt);
    HistoricResult got = tja.Run();
    auto want = HistoricOracle(history, opt.agg, 5);
    EXPECT_TRUE(SameItems(got.items, want)) << "seed " << seed;
  }
}

TEST(TjaTest, ConstantDataStaysExactViaTieExtension) {
  // All keys tie: the tie-extended LB lists cover the whole window in one
  // round (no blind deepening), and the answer is still exact with the
  // deterministic key tie-break.
  auto bed = TestBed::Grid(16, 4, 443);
  // trace[t][id] layout for TraceGenerator: epochs x nodes.
  data::TraceGenerator gen(std::vector<std::vector<double>>(16, std::vector<double>(16, 42.0)),
                           data::Modality::kSound);
  GeneratorHistory history(&gen, 16, 0, 16);
  HistoricOptions opt;
  opt.k = 2;
  Tja tja(bed.net.get(), &history, opt);
  HistoricResult got = tja.Run();
  ASSERT_EQ(got.items.size(), 2u);
  // Ties break by key: keys 0 and 1.
  EXPECT_EQ(got.items[0].group, 0);
  EXPECT_EQ(got.items[1].group, 1);
  EXPECT_EQ(got.rounds, 1);
  EXPECT_EQ(got.lsink_size, 16u);  // the union covered the window
}

TEST(TjaTest, PhaseAccountingCoversLbAndHj) {
  auto bed = TestBed::Grid(25, 4, 449);
  data::UniformGenerator gen(25, data::Modality::kSound, util::Rng(83));
  GeneratorHistory history(&gen, 25, 0, 32);
  HistoricOptions opt;
  opt.k = 3;
  Tja tja(bed.net.get(), &history, opt);
  tja.Run();
  EXPECT_GT(bed.net->PhaseTotal("tja.lb").payload_bytes, 0u);
  EXPECT_GT(bed.net->PhaseTotal("tja.hj").payload_bytes, 0u);
  EXPECT_EQ(bed.net->PhaseTotal("tja.lb").payload_bytes +
                bed.net->PhaseTotal("tja.hj").payload_bytes,
            bed.net->total().payload_bytes);
}

TEST(TjaTest, CheaperThanCentralizedBaselines) {
  auto tja_bed = TestBed::Grid(49, 4, 457);
  auto cja_bed = TestBed::Grid(49, 4, 457);
  auto tagh_bed = TestBed::Grid(49, 4, 457);
  // Temporally correlated data (a building-wide walk + per-sensor noise):
  // hot time instances are shared across nodes, so the LB union stays small
  // — the regime historic top-k monitoring targets.
  auto make_history = [&](uint64_t seed) {
    std::vector<sim::GroupId> rooms(49, 0);
    data::RoomCorrelatedGenerator gen(rooms, data::Modality::kSound, /*room_sigma=*/4.0,
                                      /*noise_sigma=*/1.0, util::Rng(seed));
    return GeneratorHistory(&gen, 49, 0, 64);
  };
  GeneratorHistory h1 = make_history(91);
  GeneratorHistory h2 = make_history(91);
  GeneratorHistory h3 = make_history(91);
  HistoricOptions opt;
  opt.k = 3;
  Tja tja(tja_bed.net.get(), &h1, opt);
  Cja cja(cja_bed.net.get(), &h2, opt);
  TagHistoric tagh(tagh_bed.net.get(), &h3, opt);
  auto tja_result = tja.Run();
  auto cja_result = cja.Run();
  auto tagh_result = tagh.Run();
  EXPECT_TRUE(SameItems(tja_result.items, cja_result.items));
  EXPECT_TRUE(SameItems(tja_result.items, tagh_result.items));
  EXPECT_LT(tja_bed.net->total().payload_bytes, tagh_bed.net->total().payload_bytes);
  EXPECT_LT(tagh_bed.net->total().payload_bytes, cja_bed.net->total().payload_bytes);
}

TEST(TjaTest, MaxAggregateFallsBackToExactFullCoverage) {
  // MAX has no sound union-threshold certificate; TJA must widen to the full
  // window (one round, Lsink = window) and still rank exactly.
  auto bed = TestBed::Grid(16, 4, 471);
  data::UniformGenerator gen(16, data::Modality::kSound, util::Rng(43));
  GeneratorHistory history(&gen, 16, 0, 24);
  HistoricOptions opt;
  opt.k = 3;
  opt.agg = agg::AggKind::kMax;
  Tja tja(bed.net.get(), &history, opt);
  HistoricResult got = tja.Run();
  auto want = HistoricOracle(history, agg::AggKind::kMax, 3);
  EXPECT_TRUE(SameItems(got.items, want));
  EXPECT_EQ(got.rounds, 1);
  EXPECT_EQ(got.lsink_size, 24u);
}

TEST(TjaTest, ValidatorRejectsMaxHistoricSql) {
  auto q = query::Parse(
      "SELECT TOP 3 epoch, MAX(sound) FROM sensors GROUP BY epoch WITH HISTORY 32");
  ASSERT_TRUE(q.ok());
  auto status = query::Validate(q.value());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("AVG and SUM"), std::string::npos);
}

TEST(TjaTest, LsinkGrowsWithK) {
  auto run_lsink = [&](int k) {
    auto bed = TestBed::Grid(25, 4, 461);
    data::UniformGenerator gen(25, data::Modality::kSound, util::Rng(97));
    GeneratorHistory history(&gen, 25, 0, 64);
    HistoricOptions opt;
    opt.k = k;
    Tja tja(bed.net.get(), &history, opt);
    return tja.Run().lsink_size;
  };
  EXPECT_LE(run_lsink(1), run_lsink(8));
}

TEST(CjaTest, ShipsEntireWindows) {
  auto bed = TestBed::Grid(16, 4, 467);
  data::UniformGenerator gen(16, data::Modality::kSound, util::Rng(101));
  GeneratorHistory history(&gen, 16, 0, 32);
  HistoricOptions opt;
  opt.k = 2;
  Cja cja(bed.net.get(), &history, opt);
  auto result = cja.Run();
  EXPECT_EQ(result.lsink_size, 32u);  // sink saw every key
  // Every sensor contributes 32 entries relayed along its whole path:
  // payload must exceed raw entry volume.
  EXPECT_GT(bed.net->total().payload_bytes, 15u * 32u * 6u);
}

}  // namespace
}  // namespace kspot::core
