/// Golden-string coverage for the two GUI text surfaces: the DisplayPanel
/// (floor map, KSpot-Bullet strip, routing-tree listing over the fully
/// deterministic Figure-1 scenario) and the SystemPanel (savings block, node
/// status, and the runtime-metrics pane fed by an obs::MetricsSnapshot).
/// Exact-string pinning is deliberate: these renders are the product's UI,
/// and formatting drift should be a conscious diff, not an accident.
#include <gtest/gtest.h>

#include "kspot/display_panel.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/system_panel.hpp"
#include "obs/metrics.hpp"
#include "sim/routing_tree.hpp"
#include "util/rng.hpp"

namespace kspot::system {
namespace {

// ------------------------------------------------------------ DisplayPanel

TEST(PanelGoldenTest, Figure1MapMatchesGolden) {
  Scenario s = Scenario::Figure1();
  DisplayPanel panel(&s, 20, 10);
  EXPECT_EQ(panel.RenderMap(),
            "+--------------------+\n"
            "|....................|\n"
            "|...A........C.......|\n"
            "|....................|\n"
            "|......A........C....|\n"
            "|.........#..........|\n"
            "|...B...........D....|\n"
            "|....................|\n"
            "|......B.....D..D....|\n"
            "|....................|\n"
            "|....................|\n"
            "+--------------------+\n");
}

TEST(PanelGoldenTest, BulletsFormatRankedClusters) {
  Scenario s = Scenario::Figure1();
  DisplayPanel panel(&s, 20, 10);
  core::TopKResult result;
  result.epoch = 5;
  result.items = {{/*group=*/0, /*value=*/75.5}, {/*group=*/2, /*value=*/60.0}};
  EXPECT_EQ(panel.RenderBullets(result),
            "KSpot Bullets [epoch 5]: (1) A 75.50   (2) C 60.00\n");

  core::TopKResult empty;
  empty.epoch = 0;
  EXPECT_EQ(panel.RenderBullets(empty),
            "KSpot Bullets [epoch 0]: (no ranked clusters yet)\n");
}

TEST(PanelGoldenTest, Figure1TreeMatchesGolden) {
  Scenario s = Scenario::Figure1();
  sim::Topology topo = s.BuildTopology();
  util::Rng rng(1);
  sim::RoutingTree tree = sim::RoutingTree::BuildClusterAware(topo, rng);
  DisplayPanel panel(&s, 20, 10);
  EXPECT_EQ(panel.RenderTree(tree),
            "s0 (sink)\n"
            "  s1 [B]\n"
            "  s3 [A]\n"
            "    s2 [A]\n"
            "  s4 [B]\n"
            "  s5 [C]\n"
            "  s6 [C]\n"
            "  s7 [D]\n"
            "    s9 [D]\n"
            "  s8 [D]\n");
}

// ------------------------------------------------------------- SystemPanel

sim::TrafficCounters Counters(uint64_t messages, uint64_t payload_bytes, double tx_j,
                              double rx_j) {
  sim::TrafficCounters c;
  c.messages = messages;
  c.payload_bytes = payload_bytes;
  c.tx_energy_j = tx_j;
  c.rx_energy_j = rx_j;
  return c;
}

TEST(PanelGoldenTest, SystemPanelSavingsBlock) {
  SystemPanel panel;
  panel.RecordKspotEpoch(Counters(60, 1200, 0.006, 0.004));
  panel.RecordBaselineEpoch(Counters(100, 2000, 0.012, 0.008));
  EXPECT_DOUBLE_EQ(panel.MessageSavingsPercent(), 40.0);
  EXPECT_DOUBLE_EQ(panel.ByteSavingsPercent(), 40.0);
  EXPECT_DOUBLE_EQ(panel.EnergySavingsPercent(), 50.0);
  EXPECT_EQ(panel.Render(),
            "=== KSpot System Panel (cumulative over 1 epochs) ===\n"
            "              KSpot        baseline(TAG)   savings\n"
            "  messages    60          100        40.0%\n"
            "  bytes       1200       2000     40.0%\n"
            "  energy (J)  0.0100      0.0200      50.0%\n");
}

TEST(PanelGoldenTest, SystemPanelNodeStatusLine) {
  SystemPanel panel;
  panel.RecordKspotEpoch(Counters(10, 100, 0.0, 0.0));
  SystemPanel::NodeStatus status;
  status.total = 10;
  status.up = 9;
  status.detached = 1;
  status.repair_events = 2;
  status.repair_messages = 34;
  panel.RecordNodeStatus(status);
  EXPECT_EQ(panel.Render(),
            "=== KSpot System Panel (cumulative over 1 epochs) ===\n"
            "              KSpot        baseline(TAG)   savings\n"
            "  messages    10          0        0.0%\n"
            "  bytes       100       0     0.0%\n"
            "  energy (J)  0.0000      0.0000      0.0%\n"
            "  nodes up    9/10 (1 detached)   tree repairs 2 (34 msgs)\n");
}

TEST(PanelGoldenTest, SystemPanelMetricsPane) {
  SystemPanel panel;
  panel.RecordKspotEpoch(Counters(10, 100, 0.0, 0.0));

  // A hand-built snapshot (not the live registry) keeps the golden immune to
  // whatever other tests in this binary record.
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"coord.epochs", "", 16});
  snap.counters.push_back({"fanout.deliveries", "q=1", 42});
  snap.gauges.push_back({"shard.lane_imbalance", "", 1.25});
  obs::HistogramSample h;
  h.name = "coord.step_us";
  h.dist.count = 3;
  h.dist.min = 150.0;
  h.dist.max = 400.0;
  h.dist.mean = 250.0;
  h.dist.sum = 750.0;
  h.dist.p50 = 180.0;
  h.dist.p95 = 390.0;
  h.dist.p99 = 398.0;
  snap.histograms.push_back(h);
  panel.RecordMetrics(snap);

  EXPECT_EQ(panel.Render(),
            "=== KSpot System Panel (cumulative over 1 epochs) ===\n"
            "              KSpot        baseline(TAG)   savings\n"
            "  messages    10          0        0.0%\n"
            "  bytes       100       0     0.0%\n"
            "  energy (J)  0.0000      0.0000      0.0%\n"
            "  --- runtime metrics ---\n"
            "  counter  coord.epochs = 16\n"
            "  counter  fanout.deliveries{q=1} = 42\n"
            "  gauge    shard.lane_imbalance = 1.250\n"
            "  histo    coord.step_us n=3 mean=250.0 p50=180.0 p95=390.0 p99=398.0\n");

  // An empty snapshot removes the pane again (latest-wins contract).
  panel.RecordMetrics(obs::MetricsSnapshot{});
  EXPECT_EQ(panel.Render().find("runtime metrics"), std::string::npos);
}

}  // namespace
}  // namespace kspot::system
