#include <gtest/gtest.h>

#include <memory>

#include "core/fila.hpp"
#include "core/mint.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "data/generators.hpp"
#include "fault/churn_engine.hpp"
#include "test_util.hpp"

namespace kspot::fault {
namespace {

using sim::NodeId;

core::QuerySpec RoomAvgSpec(int k) {
  core::QuerySpec spec;
  spec.k = k;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kRoom;
  spec.domain_max = 100.0;
  return spec;
}

std::unique_ptr<data::DataGenerator> RoomGen(const sim::Topology& topology, uint64_t seed) {
  std::vector<sim::GroupId> rooms;
  for (NodeId id = 0; id < topology.num_nodes(); ++id) rooms.push_back(topology.room(id));
  return std::make_unique<data::RoomCorrelatedGenerator>(
      std::move(rooms), data::Modality::kSound, 0.5, 0.5, util::Rng(seed), 0.0, 1.0);
}

/// A plan that kills, kills again, and revives — exercising shrink and
/// regrow of the contributing population.
FaultPlan HandPlan(NodeId first, NodeId second) {
  FaultPlan plan;
  plan.seed = 77;
  plan.events = {{3, FaultEvent::Kind::kCrash, first, 0.0},
                 {6, FaultEvent::Kind::kCrash, second, 0.0},
                 {9, FaultEvent::Kind::kRecover, first, 0.0}};
  return plan;
}

/// Runs `algo` through the plan and checks every epoch's answer against the
/// oracle evaluated over the population that could contribute that epoch
/// (alive and routable). Lossless links, so the match must be exact.
/// `full_contributors` asserts the answer saw every survivor — true for TAG
/// (it always collects everything); MINT's threshold pruning legitimately
/// keeps non-candidate groups out of the sink view, so it only gets a
/// bounds check.
template <typename Algo>
void ExpectMatchesSurvivorOracle(uint64_t seed, bool full_contributors) {
  testing::TestBed bed = testing::TestBed::Grid(25, 6, seed);
  core::QuerySpec spec = RoomAvgSpec(3);
  auto gen = RoomGen(bed.topology, seed);
  auto oracle_gen = RoomGen(bed.topology, seed);
  core::Oracle oracle(&bed.topology, oracle_gen.get(), spec);

  // Two interior victims (nodes with children stress re-attachment).
  NodeId first = 0, second = 0;
  for (NodeId v = 1; v < bed.topology.num_nodes(); ++v) {
    if (!bed.tree.children(v).empty()) {
      if (first == 0) {
        first = v;
      } else if (second == 0 && v != first) {
        second = v;
        break;
      }
    }
  }
  ASSERT_NE(first, 0);
  ASSERT_NE(second, 0);

  ChurnEngine churn(bed.net.get(), &bed.tree, HandPlan(first, second));
  Algo algo(bed.net.get(), gen.get(), spec);
  for (size_t e = 0; e < 12; ++e) {
    auto epoch = static_cast<sim::Epoch>(e);
    ChurnReport report = churn.BeginEpoch(epoch);
    if (report.topology_changed) algo.OnTopologyChanged();
    core::TopKResult got = algo.RunEpoch(epoch);
    core::TopKResult want = oracle.TopKOver(epoch, [&](NodeId id) {
      return bed.net->NodeAlive(id) && bed.tree.attached(id);
    });
    EXPECT_TRUE(got.Matches(want))
        << "epoch " << e << "\ngot:\n" << got.ToString() << "want:\n" << want.ToString();
    // Partial aggregation is visible: the answer reports how many sensors
    // actually contributed, bounded by (TAG: equal to) the survivors.
    EXPECT_GT(got.contributors, 0u) << "epoch " << e;
    EXPECT_LE(got.contributors, want.contributors) << "epoch " << e;
    if (full_contributors) EXPECT_EQ(got.contributors, want.contributors) << "epoch " << e;
  }
}

TEST(ChurnPartialAggTest, TagMatchesOracleOnSurvivorsOnly) {
  ExpectMatchesSurvivorOracle<core::TagTopK>(101, /*full_contributors=*/true);
}

TEST(ChurnPartialAggTest, MintMatchesOracleOnSurvivorsOnly) {
  ExpectMatchesSurvivorOracle<core::MintViews>(101, /*full_contributors=*/false);
}

TEST(ChurnPartialAggTest, ContributorCountShrinksWithDeaths) {
  testing::TestBed bed = testing::TestBed::Grid(25, 6, 7);
  core::QuerySpec spec = RoomAvgSpec(2);
  auto gen = RoomGen(bed.topology, 7);
  core::TagTopK tag(bed.net.get(), gen.get(), spec);
  core::TopKResult before = tag.RunEpoch(0);
  EXPECT_EQ(before.contributors, bed.topology.num_sensors());

  // Kill a leaf directly (no churn engine): TAG tolerates the missing child
  // without any notification because every epoch re-collects.
  NodeId leaf = bed.tree.post_order().front();
  bed.net->SetNodeUp(leaf, false);
  core::TopKResult after = tag.RunEpoch(1);
  EXPECT_EQ(after.contributors, bed.topology.num_sensors() - 1);
}

TEST(ChurnPartialAggTest, MintDropsGroupWhoseOnlySensorDied) {
  // Node-grouped query: each sensor is its own group, so a death must make
  // its group disappear from the answer after the rebuild.
  testing::TestBed bed = testing::TestBed::Grid(9, 4, 13);
  core::QuerySpec spec;
  spec.k = static_cast<int>(bed.topology.num_sensors());
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kNode;
  spec.domain_max = 100.0;
  auto gen = RoomGen(bed.topology, 13);

  FaultPlan plan;
  plan.seed = 13;
  NodeId victim = bed.tree.post_order().front();
  plan.events = {{2, FaultEvent::Kind::kCrash, victim, 0.0}};
  ChurnEngine churn(bed.net.get(), &bed.tree, plan);
  core::MintViews mint(bed.net.get(), gen.get(), spec);
  for (size_t e = 0; e < 5; ++e) {
    ChurnReport report = churn.BeginEpoch(static_cast<sim::Epoch>(e));
    if (report.topology_changed) mint.OnTopologyChanged();
    core::TopKResult got = mint.RunEpoch(static_cast<sim::Epoch>(e));
    bool has_victim = false;
    for (const auto& item : got.items) {
      if (item.group == static_cast<sim::GroupId>(victim)) has_victim = true;
    }
    EXPECT_EQ(has_victim, e < 2) << "epoch " << e;
  }
}

/// FILA under churn: the targeted eviction must (a) stop ranking dead nodes
/// on stale cached values, (b) keep the monitoring useful for the survivors,
/// and (c) stay a pure function of the seed (the churn determinism contract).
TEST(ChurnPartialAggTest, FilaEvictsDeadNodesAndStaysDeterministic) {
  core::QuerySpec spec;
  spec.k = 3;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kNode;
  spec.domain_max = 100.0;

  auto run = [&](std::vector<core::TopKResult>* out) -> double {
    testing::TestBed bed = testing::TestBed::Grid(25, 6, 23);
    auto gen = RoomGen(bed.topology, 23);
    auto oracle_gen = RoomGen(bed.topology, 23);
    core::Oracle oracle(&bed.topology, oracle_gen.get(), spec);
    core::Fila fila(bed.net.get(), gen.get(), spec);

    // Warm up, then crash whoever leads the ranking: its cached value is the
    // exact stale state the eviction must flush.
    core::TopKResult warm = fila.RunEpoch(0);
    NodeId victim = static_cast<NodeId>(warm.items.front().group);
    FaultPlan plan;
    plan.seed = 23;
    plan.events = {{2, FaultEvent::Kind::kCrash, victim, 0.0}};
    ChurnEngine churn(bed.net.get(), &bed.tree, plan);

    double recall_sum = 0.0;
    size_t scored = 0;
    for (size_t e = 1; e < 10; ++e) {
      auto epoch = static_cast<sim::Epoch>(e);
      ChurnReport report = churn.BeginEpoch(epoch);
      if (report.topology_changed) fila.OnTopologyChanged(report.delta);
      core::TopKResult got = fila.RunEpoch(epoch);
      if (out != nullptr) out->push_back(got);
      if (e >= 2) {
        for (const auto& item : got.items) {
          EXPECT_NE(item.group, static_cast<sim::GroupId>(victim))
              << "dead node still ranked at epoch " << e;
        }
        core::TopKResult want = oracle.TopKOver(epoch, [&](NodeId id) {
          return bed.net->NodeAlive(id) && bed.tree.attached(id);
        });
        recall_sum += got.RecallAgainst(want);
        ++scored;
      }
    }
    return scored > 0 ? recall_sum / static_cast<double>(scored) : 0.0;
  };

  std::vector<core::TopKResult> first;
  std::vector<core::TopKResult> second;
  double recall = run(&first);
  run(&second);
  EXPECT_GE(recall, 0.6) << "survivor monitoring collapsed after eviction";
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i].Matches(second[i])) << "nondeterministic answer at index " << i;
  }
}

/// The conservative no-arg fallback wipes everything: the next epoch must
/// behave like a fresh initial collection over the survivors.
TEST(ChurnPartialAggTest, FilaFullEvictionReinitializes) {
  core::QuerySpec spec;
  spec.k = 2;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = core::Grouping::kNode;
  spec.domain_max = 100.0;
  testing::TestBed bed = testing::TestBed::Grid(16, 4, 31);
  auto gen = RoomGen(bed.topology, 31);
  core::Fila fila(bed.net.get(), gen.get(), spec);
  fila.RunEpoch(0);
  int broadcasts_before = fila.filter_updates();
  fila.OnTopologyChanged();
  core::TopKResult after = fila.RunEpoch(1);
  EXPECT_GT(fila.filter_updates(), broadcasts_before) << "re-init must re-arm filters";
  EXPECT_EQ(after.items.size(), 2u);
}

}  // namespace
}  // namespace kspot::fault
