#include <gtest/gtest.h>

#include "core/naive.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "test_util.hpp"

namespace kspot::core {
namespace {

using kspot::testing::TestBed;

QuerySpec SoundSpec(int k) {
  QuerySpec spec;
  spec.k = k;
  spec.agg = agg::AggKind::kAvg;
  spec.grouping = Grouping::kRoom;
  spec.domain_min = 0.0;
  spec.domain_max = 100.0;
  return spec;
}

TEST(TagTest, Figure1CorrectAnswer) {
  auto bed = TestBed::Figure1();
  data::ConstantGenerator gen(sim::Figure1Readings());
  TagTopK tag(bed.net.get(), &gen, SoundSpec(1));
  TopKResult result = tag.RunEpoch(0);
  ASSERT_EQ(result.items.size(), 1u);
  // The correct answer of Section III-A: room C with average 75.
  EXPECT_EQ(result.items[0].group, 2);
  EXPECT_DOUBLE_EQ(result.items[0].value, 75.0);
}

TEST(TagTest, MatchesOracleOnRandomData) {
  auto bed = TestBed::Grid(49, 9, 101);
  data::UniformGenerator gen(bed.topology.num_nodes(), data::Modality::kSound, util::Rng(7));
  data::UniformGenerator oracle_gen(bed.topology.num_nodes(), data::Modality::kSound,
                                    util::Rng(7));
  QuerySpec spec = SoundSpec(3);
  TagTopK tag(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &oracle_gen, spec);
  for (sim::Epoch e = 0; e < 10; ++e) {
    TopKResult got = tag.RunEpoch(e);
    TopKResult want = oracle.TopK(e);
    EXPECT_TRUE(got.Matches(want)) << "epoch " << e << "\ngot:\n"
                                   << got.ToString() << "want:\n"
                                   << want.ToString();
  }
}

TEST(TagTest, EveryNodeTransmitsEveryEpoch) {
  auto bed = TestBed::Grid(36, 4, 103);
  data::UniformGenerator gen(bed.topology.num_nodes(), data::Modality::kSound, util::Rng(9));
  TagTopK tag(bed.net.get(), &gen, SoundSpec(2));
  tag.RunEpoch(0);
  EXPECT_EQ(bed.net->total().messages, bed.topology.num_nodes() - 1);
  tag.RunEpoch(1);
  EXPECT_EQ(bed.net->total().messages, 2 * (bed.topology.num_nodes() - 1));
}

TEST(TagTest, SupportsAllAggKinds) {
  for (agg::AggKind kind : {agg::AggKind::kAvg, agg::AggKind::kSum, agg::AggKind::kMin,
                            agg::AggKind::kMax, agg::AggKind::kCount}) {
    auto bed = TestBed::Grid(25, 4, 107);
    data::UniformGenerator gen(bed.topology.num_nodes(), data::Modality::kSound, util::Rng(11));
    data::UniformGenerator ogen(bed.topology.num_nodes(), data::Modality::kSound, util::Rng(11));
    QuerySpec spec = SoundSpec(2);
    spec.agg = kind;
    TagTopK tag(bed.net.get(), &gen, spec);
    Oracle oracle(&bed.topology, &ogen, spec);
    TopKResult got = tag.RunEpoch(0);
    EXPECT_TRUE(got.Matches(oracle.TopK(0))) << agg::AggKindName(kind);
  }
}

// -------------------------------------------------------------------- Naive

TEST(NaiveTest, ReproducesFigure1Anomaly) {
  auto bed = TestBed::Figure1();
  data::ConstantGenerator gen(sim::Figure1Readings());
  NaiveTopK naive(bed.net.get(), &gen, SoundSpec(1));
  TopKResult result = naive.RunEpoch(0);
  ASSERT_EQ(result.items.size(), 1u);
  // The wrongful answer of Section III-A: (D, 76.5) because s4 eliminated
  // (D, 39) — room D id is 3.
  EXPECT_EQ(result.items[0].group, 3);
  EXPECT_DOUBLE_EQ(result.items[0].value, 76.5);
}

TEST(NaiveTest, CheaperThanTagButSometimesWrong) {
  size_t wrong = 0;
  uint64_t naive_bytes = 0, tag_bytes = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto naive_bed = TestBed::Grid(49, 16, seed);
    auto tag_bed = TestBed::Grid(49, 16, seed);
    data::UniformGenerator gen_n(49, data::Modality::kSound, util::Rng(seed));
    data::UniformGenerator gen_t(49, data::Modality::kSound, util::Rng(seed));
    data::UniformGenerator gen_o(49, data::Modality::kSound, util::Rng(seed));
    QuerySpec spec = SoundSpec(1);
    NaiveTopK naive(naive_bed.net.get(), &gen_n, spec);
    TagTopK tag(tag_bed.net.get(), &gen_t, spec);
    Oracle oracle(&naive_bed.topology, &gen_o, spec);
    TopKResult got = naive.RunEpoch(0);
    tag.RunEpoch(0);
    wrong += !got.Matches(oracle.TopK(0));
    naive_bytes += naive_bed.net->total().payload_bytes;
    tag_bytes += tag_bed.net->total().payload_bytes;
  }
  EXPECT_LT(naive_bytes, tag_bytes);
  // With 16 rooms spread over a 49-node grid, greedy local cuts must
  // misrank at least sometimes across 20 topologies.
  EXPECT_GT(wrong, 0u);
}

}  // namespace
}  // namespace kspot::core
