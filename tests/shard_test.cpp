/// Tests for the sharded-execution stack: util::TaskPool (the fork-join
/// worker pool), sim::ShardPlanner (the cluster-head tree cut), Network's
/// value-type state ownership, and the end-to-end contract of sharded epoch
/// waves — bit-identical to the serial path on lossless beds, and invariant
/// across shard/thread counts everywhere (per-node loss substreams).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/mint.hpp"
#include "fault/churn_engine.hpp"
#include "fault/fault_plan.hpp"
#include "sim/shard_planner.hpp"
#include "sim/shard_runtime.hpp"
#include "util/task_pool.hpp"

namespace kspot {
namespace {

// ---------------------------------------------------------------- TaskPool

TEST(TaskPoolTest, RunsEveryIndexExactlyOnce) {
  util::TaskPool pool(4);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskPoolTest, ZeroCountIsANoop) {
  util::TaskPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "fn must not run for count 0"; });
}

TEST(TaskPoolTest, PoolOfOneRunsInlineOnCaller) {
  util::TaskPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(16, [&](size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(TaskPoolTest, ExceptionPropagatesToCaller) {
  util::TaskPool pool(4);
  EXPECT_THROW(pool.ParallelFor(64,
                                [&](size_t i) {
                                  if (i == 13) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a throwing job and serves the next one.
  std::atomic<size_t> count{0};
  pool.ParallelFor(64, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64u);
}

TEST(TaskPoolTest, ReusableAcrossManyJobs) {
  util::TaskPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(10, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 45u);
  }
}

// ------------------------------------------------------------ ShardPlanner

/// A real cluster-aware routing tree to cut.
bench::Bed PlannerBed() { return bench::Bed::Grid(200, 12, 99); }

TEST(ShardPlannerTest, PartitionsWaveOrderWithoutSink) {
  bench::Bed bed = PlannerBed();
  sim::ShardPlan plan = sim::ShardPlanner::Build(bed.tree, 4);
  ASSERT_GT(plan.lane_count(), 1u);

  std::set<sim::NodeId> seen;
  size_t members = 0;
  for (const auto& lane : plan.lanes) {
    for (sim::NodeId node : lane) {
      EXPECT_NE(node, sim::kSinkId);
      EXPECT_TRUE(seen.insert(node).second) << "node " << node << " in two lanes";
      ++members;
    }
  }
  // Exactly the wave order minus the sink.
  EXPECT_EQ(members, bed.tree.wave_order().size() - 1);
  for (sim::NodeId node : bed.tree.wave_order()) {
    if (node == sim::kSinkId) continue;
    EXPECT_EQ(seen.count(node), 1u) << node;
    ASSERT_LT(plan.lane_of[node], plan.lane_count());
  }
  EXPECT_EQ(plan.lane_of[sim::kSinkId], sim::kNoLane);
}

TEST(ShardPlannerTest, LanesAreWaveOrderSlices) {
  bench::Bed bed = PlannerBed();
  sim::ShardPlan plan = sim::ShardPlanner::Build(bed.tree, 4);
  // Position of each node in the canonical wave order.
  std::vector<size_t> pos(bed.tree.num_nodes(), 0);
  const auto& wave = bed.tree.wave_order();
  for (size_t i = 0; i < wave.size(); ++i) pos[wave[i]] = i;
  for (const auto& lane : plan.lanes) {
    for (size_t i = 1; i < lane.size(); ++i) {
      EXPECT_LT(pos[lane[i - 1]], pos[lane[i]]) << "lane order diverged from wave order";
    }
  }
  // roots_in_order: the depth-1 subtree roots, in wave order.
  std::vector<sim::NodeId> expected_roots;
  for (sim::NodeId node : wave) {
    if (node != sim::kSinkId && bed.tree.parent(node) == sim::kSinkId) {
      expected_roots.push_back(node);
    }
  }
  EXPECT_EQ(plan.roots_in_order, expected_roots);
}

TEST(ShardPlannerTest, EveryNodeSharesItsClusterHeadLane) {
  bench::Bed bed = PlannerBed();
  sim::ShardPlan plan = sim::ShardPlanner::Build(bed.tree, 8);
  for (sim::NodeId node : bed.tree.wave_order()) {
    if (node == sim::kSinkId) continue;
    sim::NodeId head = node;
    while (bed.tree.parent(head) != sim::kSinkId) head = bed.tree.parent(head);
    EXPECT_EQ(plan.lane_of[node], plan.lane_of[head])
        << "node " << node << " split from its subtree";
  }
}

TEST(ShardPlannerTest, DeterministicAndClamped) {
  bench::Bed bed = PlannerBed();
  sim::ShardPlan a = sim::ShardPlanner::Build(bed.tree, 4);
  sim::ShardPlan b = sim::ShardPlanner::Build(bed.tree, 4);
  EXPECT_EQ(a.lanes, b.lanes);
  EXPECT_EQ(a.lane_of, b.lane_of);
  EXPECT_EQ(a.roots_in_order, b.roots_in_order);

  // Requests beyond the cluster-head count clamp to it.
  size_t heads = bed.tree.children(sim::kSinkId).size();
  sim::ShardPlan wide = sim::ShardPlanner::Build(bed.tree, 100000);
  EXPECT_EQ(wide.lane_count(), heads);
  // 0 and 1 both mean one lane (the serial cut).
  EXPECT_EQ(sim::ShardPlanner::Build(bed.tree, 0).lane_count(), 1u);
  EXPECT_EQ(sim::ShardPlanner::Build(bed.tree, 1).lane_count(), 1u);
}

// ------------------------------------------------- Network value semantics

TEST(NetworkCopyTest, CopiesEvolveIndependently) {
  bench::Bed bed = bench::Bed::Grid(49, 8, 7);
  // Attach a runtime to the original: the copy must not inherit it.
  sim::ShardRuntime rt(bed.net.get(), sim::ShardRuntime::Options{2, 1});

  sim::Network copy = *bed.net;
  EXPECT_EQ(copy.shard_runtime(), nullptr);
  EXPECT_EQ(bed.net->shard_runtime(), &rt);
  EXPECT_EQ(copy.total().messages, bed.net->total().messages);

  // Traffic on the original is invisible to the copy, and vice versa.
  sim::NodeId leaf = bed.tree.wave_order().front();
  ASSERT_NE(leaf, sim::kSinkId);
  uint64_t before = copy.total().messages;
  bed.net->SetPhase("copy.test");
  bed.net->UnicastToParent(leaf, 10);
  EXPECT_EQ(copy.total().messages, before);
  EXPECT_GT(bed.net->total().messages, before);

  copy.SetPhase("copy.test");
  copy.UnicastToParent(leaf, 10);
  copy.UnicastToParent(leaf, 10);
  EXPECT_EQ(copy.total().messages, before + 2);
  EXPECT_EQ(copy.MessagesSentBy(leaf), bed.net->MessagesSentBy(leaf) + 1);
}

// -------------------------------------------- sharded-wave epoch execution

/// Everything observable about a finished run, for exact comparison.
struct RunSummary {
  std::vector<std::string> answers;
  uint64_t messages = 0;
  uint64_t payload_bytes = 0;
  double tx_energy_j = 0.0;
  double rx_energy_j = 0.0;
  std::vector<uint64_t> sent_by;
  sim::TimeUs now = 0;

  bool operator==(const RunSummary& o) const {
    return answers == o.answers && messages == o.messages &&
           payload_bytes == o.payload_bytes && tx_energy_j == o.tx_energy_j &&
           rx_energy_j == o.rx_energy_j && sent_by == o.sent_by && now == o.now;
  }
};

RunSummary Summarize(const bench::Bed& bed, std::vector<std::string> answers) {
  RunSummary s;
  s.answers = std::move(answers);
  s.messages = bed.net->total().messages;
  s.payload_bytes = bed.net->total().payload_bytes;
  s.tx_energy_j = bed.net->total().tx_energy_j;
  s.rx_energy_j = bed.net->total().rx_energy_j;
  for (sim::NodeId id = 0; id < bed.topology.num_nodes(); ++id) {
    s.sent_by.push_back(bed.net->MessagesSentBy(id));
  }
  s.now = bed.net->events().now();
  return s;
}

/// MINT on a lossless grid: serial and every sharded configuration must be
/// bit-identical (no losses are drawn, so the substream switch is inert).
RunSummary RunMintGrid(size_t shards, size_t threads, bool with_churn) {
  constexpr uint64_t kSeed = 515;
  constexpr size_t kEpochs = 30;
  bench::Bed bed = bench::Bed::Grid(200, 12, kSeed);
  bed.EnableSharding(shards, threads);
  auto gen = bed.RoomData(kSeed);
  core::MintViews mint(bed.net.get(), gen.get(), bench::RoomAvgSpec(3));

  std::unique_ptr<fault::ChurnEngine> churn;
  if (with_churn) {
    fault::FaultPlanOptions fopt;
    fopt.horizon = kEpochs;
    fopt.crash_prob = 0.02;
    fopt.mean_downtime = 6;
    fault::FaultPlan plan = fault::FaultPlan::Generate(bed.topology, fopt, kSeed ^ 0xFA11);
    churn = std::make_unique<fault::ChurnEngine>(bed.net.get(), &bed.tree, std::move(plan));
  }

  std::vector<std::string> answers;
  for (size_t e = 0; e < kEpochs; ++e) {
    auto epoch = static_cast<sim::Epoch>(e);
    if (churn) {
      fault::ChurnReport report = churn->BeginEpoch(epoch);
      if (report.topology_changed) mint.OnTopologyChanged(report.delta);
    }
    answers.push_back(mint.RunEpoch(epoch).ToString());
  }
  return Summarize(bed, std::move(answers));
}

TEST(ShardedWaveTest, MintBitIdenticalToSerialOnLosslessBed) {
  RunSummary serial = RunMintGrid(1, 1, /*with_churn=*/false);
  for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " threads=" + std::to_string(threads));
      EXPECT_TRUE(serial == RunMintGrid(shards, threads, false));
    }
  }
}

/// Crash/recover churn re-cuts the tree mid-run (ChurnEngine invalidates the
/// cached shard plan after every repair); the runs must still agree exactly —
/// churn here is lossless, so serial is comparable too.
TEST(ShardedWaveTest, MintBitIdenticalUnderChurnRecut) {
  RunSummary serial = RunMintGrid(1, 1, /*with_churn=*/true);
  EXPECT_FALSE(serial.answers.empty());
  for (size_t shards : {size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_TRUE(serial == RunMintGrid(shards, 4, true));
  }
}

/// TAG exercises the other lane-aware producer (full converge-cast every
/// epoch, no MINT thresholds).
TEST(ShardedWaveTest, TagBitIdenticalToSerialOnLosslessBed) {
  auto run = [](size_t shards) {
    constexpr uint64_t kSeed = 77;
    bench::Bed bed = bench::Bed::Grid(150, 10, kSeed);
    bed.EnableSharding(shards, 4);
    auto gen = bed.RoomData(kSeed);
    auto tag = bench::MakeSnapshotAlgo(bench::SnapshotAlgo::kTag, bed.net.get(), gen.get(),
                                       bench::RoomAvgSpec(2));
    std::vector<std::string> answers;
    for (size_t e = 0; e < 12; ++e) {
      answers.push_back(tag->RunEpoch(static_cast<sim::Epoch>(e)).ToString());
    }
    return Summarize(bed, std::move(answers));
  };
  RunSummary serial = run(1);
  EXPECT_TRUE(serial == run(2));
  EXPECT_TRUE(serial == run(8));
}

/// Under real loss the sharded path draws from per-node substreams, so it is
/// not comparable to the serial single-stream path — but it IS invariant
/// across shard and thread counts: the substream a sender draws from depends
/// only on its node id, never on the lane layout or scheduling.
TEST(ShardedWaveTest, LossyRunsInvariantAcrossShardAndThreadCounts) {
  auto run = [](size_t shards, size_t threads) {
    constexpr uint64_t kSeed = 33;
    sim::NetworkOptions opt;
    opt.loss_prob = 0.05;
    opt.max_retries = 1;
    bench::Bed bed = bench::Bed::Grid(150, 10, kSeed, opt);
    bed.EnableSharding(shards, threads);
    auto gen = bed.RoomData(kSeed);
    core::MintViews mint(bed.net.get(), gen.get(), bench::RoomAvgSpec(3));
    std::vector<std::string> answers;
    for (size_t e = 0; e < 20; ++e) {
      answers.push_back(mint.RunEpoch(static_cast<sim::Epoch>(e)).ToString());
    }
    return Summarize(bed, std::move(answers));
  };
  RunSummary base = run(2, 1);
  EXPECT_GT(base.messages, 0u);
  for (size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      if (shards == 2 && threads == 1) continue;
      SCOPED_TRACE("shards=" + std::to_string(shards) + " threads=" + std::to_string(threads));
      EXPECT_TRUE(base == run(shards, threads));
    }
  }
}

/// ShouldShard is a cheap gate: 1 shard (or a tree with one cluster head)
/// keeps the serial path; InvalidateTopology forces a re-cut on next use.
TEST(ShardRuntimeTest, GatesAndRecutsPlans) {
  bench::Bed bed = bench::Bed::Grid(100, 8, 5);
  {
    sim::ShardRuntime serial_rt(bed.net.get(), sim::ShardRuntime::Options{1, 1});
    EXPECT_FALSE(serial_rt.ShouldShard());
  }
  EXPECT_EQ(bed.net->shard_runtime(), nullptr) << "runtime must detach on destruction";

  sim::ShardRuntime rt(bed.net.get(), sim::ShardRuntime::Options{4, 1});
  ASSERT_TRUE(rt.ShouldShard());
  const sim::ShardPlan* before = &rt.plan();
  EXPECT_GT(before->lane_count(), 1u);
  rt.InvalidateTopology();
  // Rebuilt plan for the unchanged tree is identical in content.
  const sim::ShardPlan& after = rt.plan();
  EXPECT_EQ(after.lanes, sim::ShardPlanner::Build(bed.tree, 4).lanes);
}

}  // namespace
}  // namespace kspot
