#include <gtest/gtest.h>

#include "core/mint.hpp"
#include "core/oracle.hpp"
#include "core/tag.hpp"
#include "test_util.hpp"

namespace kspot::core {
namespace {

using kspot::testing::TestBed;

QuerySpec SoundSpec(int k, agg::AggKind kind = agg::AggKind::kAvg,
                    Grouping grouping = Grouping::kRoom) {
  QuerySpec spec;
  spec.k = k;
  spec.agg = kind;
  spec.grouping = grouping;
  spec.domain_min = 0.0;
  spec.domain_max = 100.0;
  return spec;
}

TEST(MintTest, Figure1CorrectAnswerUnlikeNaive) {
  auto bed = TestBed::Figure1();
  data::ConstantGenerator gen(sim::Figure1Readings());
  MintViews mint(bed.net.get(), &gen, SoundSpec(1));
  for (sim::Epoch e = 0; e < 5; ++e) {
    TopKResult result = mint.RunEpoch(e);
    ASSERT_EQ(result.items.size(), 1u) << "epoch " << e;
    EXPECT_EQ(result.items[0].group, 2) << "epoch " << e;   // room C
    EXPECT_DOUBLE_EQ(result.items[0].value, 75.0);
  }
}

TEST(MintTest, SteadyStateCheaperThanTagOnStableData) {
  auto mint_bed = TestBed::Clustered(61, 6, 211);
  auto tag_bed = TestBed::Clustered(61, 6, 211);
  auto make_gen = [&] {
    std::vector<sim::GroupId> rooms;
    for (sim::NodeId id = 0; id < mint_bed.topology.num_nodes(); ++id) {
      rooms.push_back(mint_bed.topology.room(id));
    }
    // Integer ADC grid: stable readings genuinely repeat, the regime the
    // demo's sound sensors live in.
    return data::RoomCorrelatedGenerator(rooms, data::Modality::kSound, 0.3, 0.2, util::Rng(5),
                                         /*global_sigma=*/0.0, /*quantize_step=*/1.0);
  };
  auto gen_m = make_gen();
  auto gen_t = make_gen();
  QuerySpec spec = SoundSpec(2);
  MintViews mint(mint_bed.net.get(), &gen_m, spec);
  TagTopK tag(tag_bed.net.get(), &gen_t, spec);
  // Skip the creation epoch, then compare steady-state traffic.
  mint.RunEpoch(0);
  tag.RunEpoch(0);
  auto mint_mark = mint_bed.net->total();
  auto tag_mark = tag_bed.net->total();
  for (sim::Epoch e = 1; e <= 20; ++e) {
    mint.RunEpoch(e);
    tag.RunEpoch(e);
  }
  auto mint_cost = mint_bed.net->total().Since(mint_mark);
  auto tag_cost = tag_bed.net->total().Since(tag_mark);
  EXPECT_LT(mint_cost.payload_bytes, tag_cost.payload_bytes);
}

TEST(MintTest, MatchesOracleEveryEpochOnDriftingData) {
  auto bed = TestBed::Clustered(41, 8, 223);
  data::RandomWalkGenerator gen(41, data::Modality::kSound, 2.0, util::Rng(23));
  data::RandomWalkGenerator ogen(41, data::Modality::kSound, 2.0, util::Rng(23));
  QuerySpec spec = SoundSpec(3);
  MintViews mint(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  for (sim::Epoch e = 0; e < 40; ++e) {
    TopKResult got = mint.RunEpoch(e);
    TopKResult want = oracle.TopK(e);
    ASSERT_TRUE(got.Matches(want)) << "epoch " << e << "\ngot:\n"
                                   << got.ToString() << "want:\n"
                                   << want.ToString();
  }
}

TEST(MintTest, RepairsTriggerWhenValuesCollapse) {
  // Data that crashes after epoch 3: every group's value drops far below
  // the old threshold, so the sink must under-run and repair.
  class CollapsingGen : public data::DataGenerator {
   public:
    explicit CollapsingGen(size_t n) : n_(n), info_(data::GetModalityInfo(
                                                  data::Modality::kSound)) {}
    double Value(sim::NodeId id, sim::Epoch epoch) override {
      if (id == 0) return 0;
      double base = epoch < 3 ? 80.0 : 10.0;
      return base + static_cast<double>(id % 7);
    }
    const data::ModalityInfo& modality() const override { return info_; }

   private:
    size_t n_;
    data::ModalityInfo info_;
  };
  auto bed = TestBed::Grid(36, 6, 227);
  CollapsingGen gen(36);
  CollapsingGen ogen(36);
  QuerySpec spec = SoundSpec(2);
  MintViews mint(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  for (sim::Epoch e = 0; e < 6; ++e) {
    TopKResult got = mint.RunEpoch(e);
    ASSERT_TRUE(got.Matches(oracle.TopK(e))) << "epoch " << e;
  }
  EXPECT_GE(mint.repair_count(), 1);
}

TEST(MintTest, NodeGroupingDegeneratesToThresholdMonitoring) {
  auto bed = TestBed::Grid(25, 4, 229);
  data::GaussianGenerator gen(25, data::Modality::kSound, 0.5, util::Rng(31));
  data::GaussianGenerator ogen(25, data::Modality::kSound, 0.5, util::Rng(31));
  QuerySpec spec = SoundSpec(3, agg::AggKind::kAvg, Grouping::kNode);
  MintViews mint(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  for (sim::Epoch e = 0; e < 15; ++e) {
    TopKResult got = mint.RunEpoch(e);
    ASSERT_TRUE(got.Matches(oracle.TopK(e))) << "epoch " << e;
  }
  // Stable per-node values: far fewer messages than TAG's n-1 per epoch.
  double per_epoch = static_cast<double>(bed.net->total().messages) / 15.0;
  EXPECT_LT(per_epoch, static_cast<double>(bed.topology.num_nodes() - 1));
}

class MintAggKindTest : public ::testing::TestWithParam<agg::AggKind> {};

TEST_P(MintAggKindTest, MatchesOracleForAggKind) {
  agg::AggKind kind = GetParam();
  auto bed = TestBed::Clustered(31, 5, 233 + static_cast<uint64_t>(kind));
  data::RandomWalkGenerator gen(31, data::Modality::kSound, 1.5, util::Rng(37));
  data::RandomWalkGenerator ogen(31, data::Modality::kSound, 1.5, util::Rng(37));
  QuerySpec spec = SoundSpec(2, kind);
  MintViews mint(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  for (sim::Epoch e = 0; e < 25; ++e) {
    TopKResult got = mint.RunEpoch(e);
    ASSERT_TRUE(got.Matches(oracle.TopK(e)))
        << agg::AggKindName(kind) << " epoch " << e << "\ngot:\n"
        << got.ToString() << "want:\n"
        << oracle.TopK(e).ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MintAggKindTest,
                         ::testing::Values(agg::AggKind::kAvg, agg::AggKind::kSum,
                                           agg::AggKind::kMin, agg::AggKind::kMax),
                         [](const ::testing::TestParamInfo<agg::AggKind>& info) {
                           return agg::AggKindName(info.param);
                         });

TEST(MintTest, KLargerThanGroupCountNeverRepairsForever) {
  auto bed = TestBed::Grid(16, 4, 239);
  data::UniformGenerator gen(16, data::Modality::kSound, util::Rng(41));
  data::UniformGenerator ogen(16, data::Modality::kSound, util::Rng(41));
  QuerySpec spec = SoundSpec(10);  // more than 4 rooms exist
  MintViews mint(bed.net.get(), &gen, spec);
  Oracle oracle(&bed.topology, &ogen, spec);
  for (sim::Epoch e = 0; e < 10; ++e) {
    TopKResult got = mint.RunEpoch(e);
    ASSERT_TRUE(got.Matches(oracle.TopK(e))) << "epoch " << e;
    EXPECT_LE(got.items.size(), 4u);
  }
  EXPECT_EQ(mint.repair_count(), 0);
}

TEST(MintTest, AblationGammaOffCostsLikeTag) {
  MintViews::Options gamma_off;
  gamma_off.gamma_suppression = false;
  auto a = TestBed::Clustered(41, 5, 241);
  auto b = TestBed::Clustered(41, 5, 241);
  data::RandomWalkGenerator gen_a(41, data::Modality::kSound, 0.5, util::Rng(43),
                                  /*quantize_step=*/1.0);
  data::RandomWalkGenerator gen_b(41, data::Modality::kSound, 0.5, util::Rng(43),
                                  /*quantize_step=*/1.0);
  QuerySpec spec = SoundSpec(2);
  MintViews with_gamma(a.net.get(), &gen_a, spec);
  MintViews without_gamma(b.net.get(), &gen_b, spec, gamma_off);
  for (sim::Epoch e = 0; e < 12; ++e) {
    TopKResult ga = with_gamma.RunEpoch(e);
    TopKResult gb = without_gamma.RunEpoch(e);
    ASSERT_TRUE(ga.Matches(gb)) << "epoch " << e;
  }
  EXPECT_LT(a.net->total().payload_bytes, b.net->total().payload_bytes);
  // Without suppression every node ships its whole view: message count must
  // equal TAG's (n-1 per update epoch) plus beacons.
  EXPECT_GT(b.net->total().messages, a.net->total().messages);
}

TEST(MintTest, TauVisibleAfterCreation) {
  auto bed = TestBed::Figure1();
  data::ConstantGenerator gen(sim::Figure1Readings());
  MintViews mint(bed.net.get(), &gen, SoundSpec(1));
  EXPECT_FALSE(mint.created());
  mint.RunEpoch(0);
  EXPECT_TRUE(mint.created());
  EXPECT_TRUE(mint.tau_valid());
  // tau = k-th value (room C's 75) minus the hysteresis margin (2% of the
  // 0..100 sound domain).
  EXPECT_DOUBLE_EQ(mint.tau(), 73.0);
}

TEST(MintTest, SuppressionSilencesBoringSubtrees) {
  // Constant data: after creation and one epoch of tombstone deltas, the
  // materialized views are in steady state and *nothing* needs to be sent —
  // the Update Phase's ideal case.
  auto bed = TestBed::Figure1();
  data::ConstantGenerator gen(sim::Figure1Readings());
  MintViews mint(bed.net.get(), &gen, SoundSpec(1));
  mint.RunEpoch(0);
  mint.RunEpoch(1);  // prune-tombstones flow once
  auto mark = bed.net->total();
  TopKResult result = mint.RunEpoch(2);
  auto steady = bed.net->total().Since(mark);
  EXPECT_EQ(steady.messages, 0u);
  ASSERT_EQ(result.items.size(), 1u);
  EXPECT_EQ(result.items[0].group, 2);
  // The first update epoch did transmit (the tombstones), so suppression is
  // doing the work, not a dead network.
  EXPECT_GT(bed.net->PhaseTotal("mint.update").messages, 0u);
}

}  // namespace
}  // namespace kspot::core
