#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "kspot/coordinator.hpp"
#include "kspot/scenario_config.hpp"
#include "kspot/server.hpp"

namespace kspot::system {
namespace {

constexpr const char* kSnapshotSql =
    "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid";
constexpr const char* kSelectSql = "SELECT nodeid, sound FROM sensors WHERE sound > 40";
constexpr const char* kGroupedSelectSql =
    "SELECT roomid, AVG(sound) FROM sensors GROUP BY roomid";
constexpr const char* kVerticalSql =
    "SELECT TOP 3 epoch, AVG(sound) FROM sensors GROUP BY epoch WITH HISTORY 24";
constexpr const char* kHorizontalSql =
    "SELECT TOP 2 roomid, AVG(sound) FROM sensors GROUP BY roomid WITH HISTORY 8";

QueryCoordinator::Options SmallRun(size_t epochs = 10, uint64_t seed = 99) {
  QueryCoordinator::Options opt;
  opt.epochs = epochs;
  opt.seed = seed;
  return opt;
}

std::string EpochDigest(const std::vector<core::TopKResult>& per_epoch) {
  char buf[64];
  std::string out;
  for (const auto& epoch : per_epoch) {
    for (const auto& item : epoch.items) {
      std::snprintf(buf, sizeof buf, "%d:%.17g;", item.group, item.value);
      out += buf;
    }
    out += '|';
  }
  return out;
}

std::string ReportDigest(const CoordinatorReport& report) {
  char buf[96];
  std::string out;
  for (const auto& outcome : report.outcomes) {
    out += outcome.algorithm + "/" + EpochDigest(outcome.per_epoch);
    for (const auto& rows : outcome.rows_per_epoch) {
      for (const auto& t : rows) {
        std::snprintf(buf, sizeof buf, "%u=%.17g;", t.node, t.value);
        out += buf;
      }
    }
    for (const auto& item : outcome.historic.items) {
      std::snprintf(buf, sizeof buf, "H%d:%.17g;", item.group, item.value);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, "[m=%llu,b=%llu]",
                  static_cast<unsigned long long>(outcome.shared_cost.messages),
                  static_cast<unsigned long long>(outcome.shared_cost.payload_bytes));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "total=%llu/%llu",
                static_cast<unsigned long long>(report.total.messages),
                static_cast<unsigned long long>(report.total.payload_bytes));
  out += buf;
  return out;
}

TEST(CoordinatorTest, AdmitValidatesAndCancelWithdraws) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(4, 3, 5), SmallRun());
  EXPECT_EQ(coordinator.active_queries(), 0u);
  EXPECT_FALSE(coordinator.Admit("SELECT").ok());
  EXPECT_FALSE(coordinator.Admit("SELECT bogus FROM sensors").ok());
  EXPECT_FALSE(coordinator.Admit("SELECT TOP 2 roomid, AVG(sound) FROM sensors").ok());
  EXPECT_EQ(coordinator.active_queries(), 0u);

  auto a = coordinator.Admit(kSnapshotSql);
  auto b = coordinator.Admit(kSelectSql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(coordinator.active_queries(), 2u);

  EXPECT_TRUE(coordinator.Cancel(a.value()).ok());
  EXPECT_FALSE(coordinator.Cancel(a.value()).ok());  // already withdrawn
  EXPECT_FALSE(coordinator.Cancel(777).ok());
  EXPECT_EQ(coordinator.active_queries(), 1u);

  auto report = coordinator.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().outcomes.size(), 1u);
  EXPECT_EQ(report.value().outcomes[0].id, b.value());
}

TEST(CoordinatorTest, SingleSnapshotQueryMatchesServerExecute) {
  // The coordinator's shared data plane derives generator, network RNG and
  // fault plan exactly as KSpotServer's snapshot path does, so one admitted
  // snapshot query is bit-identical to Execute() — with and without churn.
  for (bool with_churn : {false, true}) {
    SCOPED_TRACE(with_churn ? "churn" : "clean");
    KSpotServer::Options server_opt;
    server_opt.epochs = 20;
    server_opt.seed = 42;
    server_opt.loss_prob = 0.05;
    server_opt.max_retries = 1;
    server_opt.enable_churn = with_churn;
    server_opt.churn.crash_prob = 0.01;
    server_opt.churn.mean_downtime = 5;
    server_opt.run_baseline = false;
    KSpotServer server(Scenario::ConferenceFloor(6, 3, 5), server_opt);
    auto server_outcome = server.Execute(kSnapshotSql);
    ASSERT_TRUE(server_outcome.ok());

    QueryCoordinator::Options opt = SmallRun(20, 42);
    opt.loss_prob = 0.05;
    opt.max_retries = 1;
    opt.enable_churn = with_churn;
    opt.churn.crash_prob = 0.01;
    opt.churn.mean_downtime = 5;
    QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5), opt);
    ASSERT_TRUE(coordinator.Admit(kSnapshotSql).ok());
    auto report = coordinator.Run();
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report.value().outcomes.size(), 1u);
    const QueryOutcome& outcome = report.value().outcomes[0];
    EXPECT_EQ(outcome.algorithm, "MINT");
    EXPECT_EQ(EpochDigest(outcome.per_epoch),
              EpochDigest(server_outcome.value().per_epoch));
    // The server's cost counter is its network's grand total (operator +
    // tree-repair handshakes); the coordinator's equivalent is the shared
    // plane's total.
    EXPECT_EQ(report.value().total.messages, server_outcome.value().cost.messages);
    EXPECT_EQ(report.value().total.payload_bytes,
              server_outcome.value().cost.payload_bytes);
  }
}

TEST(CoordinatorTest, IdenticalSnapshotQueriesShareOneOperator) {
  // 8 identical snapshot queries piggyback on ONE operator: one
  // converge-cast per epoch, so the whole fleet pays what a single query
  // pays, and every member reads the same ranked answers.
  QueryCoordinator single(Scenario::ConferenceFloor(6, 3, 5), SmallRun(15));
  ASSERT_TRUE(single.Admit(kSnapshotSql).ok());
  auto single_report = single.Run();
  ASSERT_TRUE(single_report.ok());

  QueryCoordinator fleet(Scenario::ConferenceFloor(6, 3, 5), SmallRun(15));
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(fleet.Admit(kSnapshotSql).ok());
  auto fleet_report = fleet.Run();
  ASSERT_TRUE(fleet_report.ok());

  EXPECT_EQ(fleet_report.value().operators, 1u);
  EXPECT_EQ(fleet_report.value().queries, 8u);
  // The shared plane's total bill equals the single-query bill exactly.
  EXPECT_EQ(fleet_report.value().total.messages, single_report.value().total.messages);
  EXPECT_EQ(fleet_report.value().total.payload_bytes,
            single_report.value().total.payload_bytes);
  ASSERT_EQ(fleet_report.value().outcomes.size(), 8u);
  for (const QueryOutcome& outcome : fleet_report.value().outcomes) {
    EXPECT_EQ(outcome.share_group_size, 8u);
    EXPECT_EQ(EpochDigest(outcome.per_epoch),
              EpochDigest(fleet_report.value().outcomes[0].per_epoch));
    EXPECT_EQ(outcome.per_epoch.size(), 15u);
  }
}

TEST(CoordinatorTest, ShareDisabledDrivesOneOperatorPerQuery) {
  QueryCoordinator::Options opt = SmallRun(8);
  opt.share_operators = false;
  QueryCoordinator coordinator(Scenario::ConferenceFloor(4, 3, 5), opt);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(coordinator.Admit(kSnapshotSql).ok());
  auto report = coordinator.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().operators, 4u);
  for (const QueryOutcome& outcome : report.value().outcomes) {
    EXPECT_EQ(outcome.share_group_size, 1u);
  }
}

TEST(CoordinatorTest, MixedClassesAllServedOnOneDeployment) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5), SmallRun(12));
  ASSERT_TRUE(coordinator.Admit(kSnapshotSql).ok());
  ASSERT_TRUE(coordinator.Admit(kSelectSql).ok());
  ASSERT_TRUE(coordinator.Admit(kGroupedSelectSql).ok());
  ASSERT_TRUE(coordinator.Admit(kVerticalSql).ok());
  ASSERT_TRUE(coordinator.Admit(kHorizontalSql).ok());
  ASSERT_TRUE(coordinator.Admit(kSnapshotSql).ok());  // piggybacks on the first

  auto report_or = coordinator.Run();
  ASSERT_TRUE(report_or.ok());
  const CoordinatorReport& report = report_or.value();
  EXPECT_EQ(report.queries, 6u);
  EXPECT_EQ(report.operators, 5u);  // the duplicate snapshot shares

  ASSERT_EQ(report.outcomes.size(), 6u);
  EXPECT_EQ(report.outcomes[0].algorithm, "MINT");
  EXPECT_EQ(report.outcomes[0].per_epoch.size(), 12u);
  EXPECT_EQ(report.outcomes[0].share_group_size, 2u);
  EXPECT_EQ(report.outcomes[1].algorithm, "SELECT");
  EXPECT_EQ(report.outcomes[1].rows_per_epoch.size(), 12u);
  EXPECT_EQ(report.outcomes[2].algorithm, "TAG");
  // A grouped basic select reports every group every epoch.
  for (const auto& epoch : report.outcomes[2].per_epoch) {
    EXPECT_EQ(epoch.items.size(), 6u);
  }
  EXPECT_EQ(report.outcomes[3].algorithm, "TJA");
  EXPECT_EQ(report.outcomes[3].historic.items.size(), 3u);
  EXPECT_EQ(report.outcomes[4].algorithm, "MINT+history");
  EXPECT_EQ(report.outcomes[4].per_epoch.size(), 12u);
  EXPECT_EQ(report.outcomes[5].share_group_size, 2u);
  EXPECT_EQ(EpochDigest(report.outcomes[5].per_epoch),
            EpochDigest(report.outcomes[0].per_epoch));

  // Every operator's attributed traffic is accounted inside the shared
  // total (repair traffic and nothing else lives outside the groups here).
  uint64_t attributed = 0;
  for (size_t i = 0; i < report.outcomes.size(); ++i) {
    if (report.outcomes[i].share_group_size == 2 && i == 5) continue;  // counted at [0]
    attributed += report.outcomes[i].shared_cost.messages;
  }
  EXPECT_EQ(attributed, report.total.messages);
}

TEST(CoordinatorTest, RunIsDeterministicAndRepeatable) {
  auto build = [] {
    QueryCoordinator::Options opt = SmallRun(15, 77);
    opt.loss_prob = 0.05;
    opt.max_retries = 1;
    opt.battery_j = 0.5;
    opt.enable_churn = true;
    opt.churn.crash_prob = 0.01;
    opt.churn.mean_downtime = 6;
    return QueryCoordinator(Scenario::ConferenceFloor(6, 3, 5), opt);
  };
  QueryCoordinator a = build();
  QueryCoordinator b = build();
  for (QueryCoordinator* c : {&a, &b}) {
    ASSERT_TRUE(c->Admit(kSnapshotSql).ok());
    ASSERT_TRUE(c->Admit(kSelectSql).ok());
    ASSERT_TRUE(c->Admit(kVerticalSql).ok());
  }
  auto ra1 = a.Run();
  auto ra2 = a.Run();  // a second Run over the same admissions
  auto rb = b.Run();
  ASSERT_TRUE(ra1.ok());
  ASSERT_TRUE(ra2.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ReportDigest(ra1.value()), ReportDigest(ra2.value()));
  EXPECT_EQ(ReportDigest(ra1.value()), ReportDigest(rb.value()));
}

TEST(CoordinatorTest, ChurnRepairsSharedTreeOnceForAllQueries) {
  QueryCoordinator::Options opt = SmallRun(40, 21);
  opt.enable_churn = true;
  opt.churn.crash_prob = 0.02;
  opt.churn.mean_downtime = 8;
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5), opt);
  ASSERT_TRUE(coordinator.Admit(kSnapshotSql).ok());
  ASSERT_TRUE(coordinator.Admit(kGroupedSelectSql).ok());
  auto report_or = coordinator.Run();
  ASSERT_TRUE(report_or.ok());
  const CoordinatorReport& report = report_or.value();
  // The shared tree was repaired (once per epoch, for everyone): repair
  // traffic exists and is exactly the slice of the total outside the
  // operator groups.
  EXPECT_GT(report.repair_events, 0u);
  EXPECT_GT(report.repair_messages, 0u);
  uint64_t attributed = 0;
  for (const QueryOutcome& outcome : report.outcomes) {
    attributed += outcome.shared_cost.messages;
  }
  EXPECT_EQ(report.total.messages, attributed + report.repair_messages);
  // Both queries kept producing answers through the churn.
  for (const QueryOutcome& outcome : report.outcomes) {
    EXPECT_EQ(outcome.per_epoch.size(), 40u);
  }
}

TEST(CoordinatorTest, EmptyAdmissionSetRunsCleanly) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(4, 3, 5), SmallRun(5));
  auto report = coordinator.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().queries, 0u);
  EXPECT_EQ(report.value().operators, 0u);
  EXPECT_EQ(report.value().total.messages, 0u);
}

}  // namespace
}  // namespace kspot::system
