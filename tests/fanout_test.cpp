#include <gtest/gtest.h>

#include <vector>

#include "kspot/coordinator.hpp"
#include "kspot/fanout.hpp"
#include "kspot/scenario_config.hpp"

namespace kspot::system {
namespace {

constexpr const char* kSnapshotSql =
    "SELECT TOP 3 roomid, AVG(sound) FROM sensors GROUP BY roomid";
constexpr const char* kSelectSql = "SELECT nodeid, sound FROM sensors WHERE sound > 40";

TEST(FanOutTest, EverySubscriberOfAGroupObservesTheIdenticalResult) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5),
                               QueryCoordinator::Options{});
  // Two queries that CompatKey to ONE operator group...
  auto a = coordinator.Admit(kSnapshotSql);
  auto b = coordinator.Admit(kSnapshotSql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  FanOutHub hub(&coordinator);
  // ...with subscribers split across both query handles.
  std::vector<SubscriberId> subs;
  for (int i = 0; i < 3; ++i) subs.push_back(hub.Subscribe(a.value()).value());
  for (int i = 0; i < 3; ++i) subs.push_back(hub.Subscribe(b.value()).value());

  ASSERT_TRUE(coordinator.Open().ok());
  EXPECT_EQ(coordinator.active_operators(), 1u);
  for (size_t e = 0; e < 8; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    hub.Publish(update.value());
    // One materialization per group per epoch: every subscriber's Latest()
    // is literally the same object, not an equal copy.
    std::shared_ptr<const core::TopKResult> first = hub.Latest(subs[0]);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->epoch, static_cast<sim::Epoch>(e));
    for (SubscriberId id : subs) EXPECT_EQ(hub.Latest(id).get(), first.get());
  }
  ASSERT_TRUE(coordinator.Close().ok());
}

TEST(FanOutTest, DeliveryCountsConserve) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5),
                               QueryCoordinator::Options{});
  auto query = coordinator.Admit(kSnapshotSql);
  ASSERT_TRUE(query.ok());
  FanOutHub hub(&coordinator);
  constexpr size_t kSubscribers = 100;
  constexpr size_t kEpochs = 12;
  std::vector<SubscriberId> subs;
  for (size_t i = 0; i < kSubscribers; ++i) {
    subs.push_back(hub.Subscribe(query.value()).value());
  }
  EXPECT_EQ(hub.subscribers(), kSubscribers);

  ASSERT_TRUE(coordinator.Open().ok());
  size_t published = 0;
  for (size_t e = 0; e < kEpochs; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    published += hub.Publish(update.value());
  }
  ASSERT_TRUE(coordinator.Close().ok());

  // U x E total, E per subscriber — nothing dropped, nothing duplicated.
  EXPECT_EQ(published, kSubscribers * kEpochs);
  EXPECT_EQ(hub.total_deliveries(), kSubscribers * kEpochs);
  for (SubscriberId id : subs) {
    auto stats = hub.Stats(id);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().deliveries, kEpochs);
    EXPECT_EQ(stats.value().last_delivery_epoch, kEpochs - 1);
    EXPECT_EQ(stats.value().staleness, 0u);
  }
}

TEST(FanOutTest, StalenessTracksSkippedEpochsUnderRateLimit) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5),
                               QueryCoordinator::Options{});
  AdmitOptions every_third;
  every_third.period = 3;
  auto query = coordinator.Admit(kSnapshotSql, every_third);
  ASSERT_TRUE(query.ok());
  FanOutHub hub(&coordinator);
  SubscriberId sub = hub.Subscribe(query.value()).value();

  ASSERT_TRUE(coordinator.Open().ok());
  // The group runs epochs 0, 3, 6, ...: staleness saws 0, 1, 2, 0, 1, 2, ...
  std::vector<sim::Epoch> staleness;
  for (size_t e = 0; e < 7; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    hub.Publish(update.value());
    staleness.push_back(hub.Stats(sub).value().staleness);
  }
  ASSERT_TRUE(coordinator.Close().ok());
  EXPECT_EQ(staleness, (std::vector<sim::Epoch>{0, 1, 2, 0, 1, 2, 0}));
  EXPECT_EQ(hub.Stats(sub).value().deliveries, 3u);
}

TEST(FanOutTest, MidRunJoinerDeliversFromItsJoinEpoch) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5),
                               QueryCoordinator::Options{});
  auto incumbent = coordinator.Admit(kSnapshotSql);
  ASSERT_TRUE(incumbent.ok());
  FanOutHub hub(&coordinator);
  SubscriberId early = hub.Subscribe(incumbent.value()).value();

  ASSERT_TRUE(coordinator.Open().ok());
  for (size_t e = 0; e < 5; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    hub.Publish(update.value());
  }
  // A query admitted mid-run joins the group; a subscriber can't exist
  // before its query does, and delivers from the join epoch on.
  EXPECT_FALSE(hub.Subscribe(999).ok());
  auto joiner = coordinator.Admit(kSnapshotSql);
  ASSERT_TRUE(joiner.ok());
  SubscriberId late = hub.Subscribe(joiner.value()).value();
  for (size_t e = 5; e < 10; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    hub.Publish(update.value());
  }
  ASSERT_TRUE(coordinator.Close().ok());

  EXPECT_EQ(hub.Stats(early).value().deliveries, 10u);
  EXPECT_EQ(hub.Stats(late).value().deliveries, 5u);
  // Both ride the same group, so both views converge to the same object.
  EXPECT_EQ(hub.Latest(early).get(), hub.Latest(late).get());
}

TEST(FanOutTest, UnsubscribeStopsDeliveriesAndCancelStopsTheFeed) {
  QueryCoordinator coordinator(Scenario::ConferenceFloor(6, 3, 5),
                               QueryCoordinator::Options{});
  auto snap = coordinator.Admit(kSnapshotSql);
  auto select = coordinator.Admit(kSelectSql);
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(select.ok());
  FanOutHub hub(&coordinator);
  SubscriberId keeper = hub.Subscribe(snap.value()).value();
  SubscriberId quitter = hub.Subscribe(snap.value()).value();
  SubscriberId orphan = hub.Subscribe(select.value()).value();

  ASSERT_TRUE(coordinator.Open().ok());
  for (size_t e = 0; e < 4; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    hub.Publish(update.value());
  }
  ASSERT_NE(hub.LatestRows(orphan), nullptr);  // selects feed rows, not ranks
  EXPECT_EQ(hub.Latest(orphan), nullptr);

  ASSERT_TRUE(hub.Unsubscribe(quitter).ok());
  EXPECT_FALSE(hub.Unsubscribe(quitter).ok());  // twice
  EXPECT_FALSE(hub.Unsubscribe(12345).ok());    // unknown
  EXPECT_FALSE(hub.Stats(quitter).ok());
  EXPECT_EQ(hub.subscribers(), 2u);
  // Cancelling a query drops it from the member lists: its subscribers stop
  // accruing deliveries and staleness grows as the plane moves on.
  ASSERT_TRUE(coordinator.Cancel(select.value()).ok());
  for (size_t e = 4; e < 8; ++e) {
    auto update = coordinator.StepEpoch();
    ASSERT_TRUE(update.ok());
    hub.Publish(update.value());
  }
  ASSERT_TRUE(coordinator.Close().ok());

  EXPECT_EQ(hub.Stats(keeper).value().deliveries, 8u);
  EXPECT_EQ(hub.Stats(orphan).value().deliveries, 4u);
  EXPECT_EQ(hub.Stats(orphan).value().staleness, 4u);  // last fed at epoch 3
  EXPECT_EQ(hub.total_deliveries(), 8u + 4u + 4u);  // keeper + quitter + orphan
}

}  // namespace
}  // namespace kspot::system
