#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "storage/flash_sim.hpp"
#include "storage/history_store.hpp"
#include "storage/microhash.hpp"
#include "storage/sliding_window.hpp"
#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace kspot::storage {
namespace {

/// Materializes a window's items oldest-first (the zero-copy API has no
/// Snapshot() on purpose — tests collect through the same segments hot
/// paths iterate).
template <typename T>
std::vector<T> Collect(const SlidingWindow<T>& w) {
  std::vector<T> out;
  out.reserve(w.size());
  w.ForEach([&](const T& item) { out.push_back(item); });
  return out;
}

// ------------------------------------------------------------ SlidingWindow

TEST(SlidingWindowTest, FillsThenEvictsOldest) {
  SlidingWindow<int> w(3);
  EXPECT_TRUE(w.empty());
  int evicted = -1;
  EXPECT_FALSE(w.Push(1, &evicted));
  EXPECT_FALSE(w.Push(2, &evicted));
  EXPECT_FALSE(w.Push(3, &evicted));
  EXPECT_TRUE(w.full());
  EXPECT_TRUE(w.Push(4, &evicted));
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(Collect(w), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(w.Front(), 2);
  EXPECT_EQ(w.Back(), 4);
}

TEST(SlidingWindowTest, AtIndexesFromOldest) {
  SlidingWindow<int> w(4);
  for (int i = 0; i < 10; ++i) w.Push(i);
  EXPECT_EQ(w.At(0), 6);
  EXPECT_EQ(w.At(3), 9);
  EXPECT_EQ(w.size(), 4u);
}

TEST(SlidingWindowTest, SegmentsCoverWrappedBufferOldestFirst) {
  SlidingWindow<int> w(4);
  for (int i = 0; i < 6; ++i) w.Push(i);  // holds {2,3,4,5}, head mid-array
  auto first = w.FirstSegment();
  auto second = w.SecondSegment();
  EXPECT_EQ(first.size() + second.size(), w.size());
  EXPECT_FALSE(second.empty());  // wrapped: both segments in play
  std::vector<int> items(first.begin(), first.end());
  items.insert(items.end(), second.begin(), second.end());
  EXPECT_EQ(items, (std::vector<int>{2, 3, 4, 5}));
  EXPECT_EQ(Collect(w), items);
}

TEST(SlidingWindowDeathTest, ZeroCapacityAborts) {
  EXPECT_DEATH(SlidingWindow<int>(0), "capacity must be >= 1");
}

TEST(SlidingWindowTest, ClearResets) {
  SlidingWindow<int> w(2);
  w.Push(1);
  w.Push(2);
  w.Clear();
  EXPECT_TRUE(w.empty());
  w.Push(5);
  EXPECT_EQ(w.Front(), 5);
}

// ----------------------------------------------------------------- FlashSim

TEST(FlashSimTest, AllocationAndAccounting) {
  FlashModel model;
  model.num_pages = 2;
  FlashSim flash(model);
  size_t p0 = flash.AllocatePage();
  size_t p1 = flash.AllocatePage();
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(flash.AllocatePage(), static_cast<size_t>(-1));  // full
  EXPECT_TRUE(flash.WritePage(p0, {1, 2, 3}));
  EXPECT_EQ(flash.ReadPage(p0), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(flash.writes(), 1u);
  EXPECT_EQ(flash.reads(), 1u);
  EXPECT_NEAR(flash.energy_j(), model.page_write_j + model.page_read_j, 1e-12);
}

TEST(FlashSimTest, IoCountersTrackBytesAndCompose) {
  FlashSim flash;
  size_t p = flash.AllocatePage();
  flash.WritePage(p, {1, 2, 3, 4});
  IoCounters mark = flash.io();
  EXPECT_EQ(mark.writes, 1u);
  EXPECT_EQ(mark.bytes, 4u);
  flash.ReadPage(p);
  IoCounters delta = flash.io().Since(mark);
  EXPECT_EQ(delta.reads, 1u);
  EXPECT_EQ(delta.writes, 0u);
  EXPECT_EQ(delta.bytes, 4u);
  EXPECT_NEAR(delta.energy_j, flash.model().page_read_j, 1e-12);
  IoCounters sum = mark;
  sum.Add(delta);
  EXPECT_EQ(sum.reads, flash.io().reads);
  EXPECT_EQ(sum.bytes, flash.io().bytes);
}

TEST(FlashSimTest, RejectsInvalidOperations) {
  FlashSim flash;
  EXPECT_FALSE(flash.WritePage(0, {1}));        // not allocated
  EXPECT_TRUE(flash.ReadPage(5).empty());       // not allocated
  size_t p = flash.AllocatePage();
  std::vector<uint8_t> oversized(flash.model().page_size_bytes + 1, 0);
  EXPECT_FALSE(flash.WritePage(p, oversized));
}

// ---------------------------------------------------------------- MicroHash

TEST(MicroHashTest, BucketMapping) {
  FlashSim flash;
  MicroHashIndex idx(&flash, 0.0, 100.0, 10);
  EXPECT_EQ(idx.BucketOf(0.0), 0u);
  EXPECT_EQ(idx.BucketOf(99.9), 9u);
  EXPECT_EQ(idx.BucketOf(100.0), 9u);  // clamped
  EXPECT_EQ(idx.BucketOf(-5.0), 0u);   // clamped
  EXPECT_EQ(idx.BucketOf(55.0), 5u);
}

TEST(MicroHashTest, TopKMatchesNaiveScan) {
  FlashSim flash;
  MicroHashIndex idx(&flash, 0.0, 100.0, 16);
  util::Rng rng(23);
  std::vector<FlashRecord> all;
  for (sim::Epoch e = 0; e < 500; ++e) {
    double v = util::fixed_point::Quantize(rng.NextDouble(0, 100));
    idx.Insert(e, v);
    all.push_back(FlashRecord{e, util::fixed_point::Encode(v)});
  }
  std::sort(all.begin(), all.end(), [](const FlashRecord& a, const FlashRecord& b) {
    if (a.value_fx != b.value_fx) return a.value_fx > b.value_fx;
    return a.epoch < b.epoch;
  });
  for (size_t k : {1u, 5u, 20u}) {
    auto got = idx.TopK(k);
    ASSERT_EQ(got.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(got[i].value_fx, all[i].value_fx);
      EXPECT_EQ(got[i].epoch, all[i].epoch);
    }
  }
}

TEST(MicroHashTest, TopKScanTouchesFewerPagesThanFullScan) {
  FlashSim flash;
  MicroHashIndex idx(&flash, 0.0, 100.0, 16);
  util::Rng rng(29);
  for (sim::Epoch e = 0; e < 2000; ++e) {
    idx.Insert(e, util::fixed_point::Quantize(rng.NextDouble(0, 100)));
  }
  uint64_t before = flash.reads();
  idx.TopK(5);
  uint64_t topk_reads = flash.reads() - before;
  before = flash.reads();
  for (size_t b = 0; b < idx.num_buckets(); ++b) idx.ReadBucket(b);
  uint64_t full_reads = flash.reads() - before;
  EXPECT_LT(topk_reads * 4, full_reads);  // the index earns its keep
}

TEST(MicroHashTest, RecordsSurviveOpenPageAndFlush) {
  FlashSim flash;
  MicroHashIndex idx(&flash, 0.0, 100.0, 4);
  // Insert fewer records than fit in one page: all stay in the open page.
  idx.Insert(1, 90.0);
  idx.Insert(2, 91.0);
  auto top = idx.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].epoch, 2u);
  EXPECT_EQ(flash.writes(), 0u);  // nothing flushed yet
}

TEST(MicroHashTest, BucketOverflowChainsAcrossPages) {
  // 16-byte pages hold two 8-byte records: one bucket overflows a page
  // every third insert and its chain must keep every record readable.
  FlashModel model;
  model.page_size_bytes = 16;
  model.num_pages = 64;
  FlashSim flash(model);
  MicroHashIndex idx(&flash, 0.0, 100.0, 2);
  for (sim::Epoch e = 0; e < 9; ++e) {
    ASSERT_TRUE(idx.Insert(e, 80.0 + static_cast<double>(e)));  // one bucket
  }
  EXPECT_GE(flash.writes(), 4u);  // 9 records, 2/page: at least 4 flushed pages
  auto records = idx.ReadBucket(idx.BucketOf(80.0));
  ASSERT_EQ(records.size(), 9u);
  auto top = idx.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].epoch, 8u);  // the largest value inserted last
  EXPECT_EQ(top[1].epoch, 7u);
  EXPECT_EQ(top[2].epoch, 6u);
}

TEST(MicroHashTest, DomainBoundaryValuesRoundTripExactly) {
  FlashSim flash;
  MicroHashIndex idx(&flash, -40.0, 125.0, 8);
  idx.Insert(1, -40.0);   // exact domain_min
  idx.Insert(2, 125.0);   // exact domain_max (clamped into the top bucket)
  idx.Insert(3, 42.5);
  auto top = idx.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(util::fixed_point::Decode(top[0].value_fx), 125.0);
  EXPECT_EQ(top[0].epoch, 2u);
  EXPECT_EQ(util::fixed_point::Decode(top[2].value_fx), -40.0);
  EXPECT_EQ(top[2].epoch, 1u);
}

TEST(MicroHashTest, EmptyIndexQueriesReturnNothing) {
  FlashSim flash;
  MicroHashIndex idx(&flash, 0.0, 100.0, 8);
  EXPECT_TRUE(idx.TopK(5).empty());
  EXPECT_TRUE(idx.ReadBucket(0).empty());
  EXPECT_EQ(idx.record_count(), 0u);
  EXPECT_EQ(flash.reads(), 0u);  // no records, no page touches
}

TEST(MicroHashTest, InsertFailsWhenFlashWraps) {
  // Two 16-byte pages: the third page flush finds no free page and the
  // insert reports failure instead of silently dropping records.
  FlashModel model;
  model.page_size_bytes = 16;
  model.num_pages = 2;
  FlashSim flash(model);
  MicroHashIndex idx(&flash, 0.0, 100.0, 1);
  EXPECT_TRUE(idx.Insert(0, 10.0));
  EXPECT_TRUE(idx.Insert(1, 11.0));  // flushes page 0
  EXPECT_TRUE(idx.Insert(2, 12.0));
  EXPECT_TRUE(idx.Insert(3, 13.0));  // flushes page 1
  EXPECT_TRUE(idx.Insert(4, 14.0));
  EXPECT_FALSE(idx.Insert(5, 15.0));  // flash full: the flush cannot land
  EXPECT_EQ(flash.pages_used(), 2u);
}

// ------------------------------------------------------------- HistoryStore

TEST(HistoryStoreTest, WindowSlidesAndArchives) {
  HistoryStore store(4, /*archive_to_flash=*/true, 0.0, 100.0);
  for (sim::Epoch e = 0; e < 10; ++e) {
    store.Append(e, static_cast<double>(e * 10));
  }
  std::vector<double> window;
  store.Window().ForEach([&](size_t, double v) { window.push_back(v); });
  EXPECT_EQ(window, (std::vector<double>{60, 70, 80, 90}));
  EXPECT_EQ(store.EpochAt(0), 6u);
  EXPECT_EQ(store.EpochAt(3), 9u);
  // Evicted readings (0..50) are on flash; the archive's best is 50.
  auto archived = store.ArchivedTopK(2);
  ASSERT_EQ(archived.size(), 2u);
  EXPECT_EQ(util::fixed_point::Decode(archived[0].value_fx), 50.0);
  EXPECT_EQ(util::fixed_point::Decode(archived[1].value_fx), 40.0);
}

TEST(HistoryStoreTest, AppendReportsWindowDelta) {
  HistoryStore store(3, /*archive_to_flash=*/false, 0.0, 100.0);
  for (sim::Epoch e = 0; e < 3; ++e) {
    WindowDelta d = store.Append(e, 1.0 + e);
    EXPECT_EQ(d.epoch, e);
    EXPECT_EQ(d.added, 1.0 + e);
    EXPECT_FALSE(d.evicted);  // still filling
  }
  WindowDelta d = store.Append(7, 9.0);  // gaps are fine
  EXPECT_TRUE(d.evicted);
  EXPECT_EQ(d.evicted_epoch, 0u);
  EXPECT_EQ(d.evicted_value, 1.0);
  EXPECT_EQ(store.EpochAt(2), 7u);
}

TEST(HistoryStoreDeathTest, OutOfOrderAppendAborts) {
  HistoryStore store(4, /*archive_to_flash=*/false, 0.0, 100.0);
  store.Append(5, 1.0);
  EXPECT_DEATH(store.Append(5, 2.0), "out of order");
  EXPECT_DEATH(store.Append(3, 2.0), "out of order");
}

TEST(HistoryStoreTest, NoFlashMeansNoArchive) {
  HistoryStore store(2, /*archive_to_flash=*/false, 0.0, 100.0);
  for (sim::Epoch e = 0; e < 5; ++e) store.Append(e, 1.0 * e);
  EXPECT_TRUE(store.ArchivedTopK(3).empty());
  EXPECT_EQ(store.flash_energy_j(), 0.0);
  IoCounters io = store.io();
  EXPECT_EQ(io.reads + io.writes + io.bytes, 0u);
}

TEST(StoreHistorySourceTest, ExposesWindows) {
  std::vector<HistoryStore> stores;
  for (int i = 0; i < 3; ++i) stores.emplace_back(3, false, 0.0, 100.0);
  for (sim::Epoch e = 0; e < 3; ++e) {
    stores[1].Append(e, 10.0 + e);
    stores[2].Append(e, 20.0 + e);
  }
  StoreHistorySource source(&stores);
  EXPECT_EQ(source.num_nodes(), 3u);
  EXPECT_EQ(source.window_size(), 3u);
  EXPECT_EQ(source.MaterializeWindow(2), (std::vector<double>{20, 21, 22}));
  core::WindowSpan span = source.Window(1);
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[0], 10.0);
  EXPECT_EQ(span[2], 12.0);
}

}  // namespace
}  // namespace kspot::storage
