#include <gtest/gtest.h>

#include <algorithm>

#include "storage/flash_sim.hpp"
#include "storage/history_store.hpp"
#include "storage/microhash.hpp"
#include "storage/sliding_window.hpp"
#include "util/fixed_point.hpp"
#include "util/rng.hpp"

namespace kspot::storage {
namespace {

// ------------------------------------------------------------ SlidingWindow

TEST(SlidingWindowTest, FillsThenEvictsOldest) {
  SlidingWindow<int> w(3);
  EXPECT_TRUE(w.empty());
  int evicted = -1;
  EXPECT_FALSE(w.Push(1, &evicted));
  EXPECT_FALSE(w.Push(2, &evicted));
  EXPECT_FALSE(w.Push(3, &evicted));
  EXPECT_TRUE(w.full());
  EXPECT_TRUE(w.Push(4, &evicted));
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(w.Snapshot(), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(w.Front(), 2);
  EXPECT_EQ(w.Back(), 4);
}

TEST(SlidingWindowTest, AtIndexesFromOldest) {
  SlidingWindow<int> w(4);
  for (int i = 0; i < 10; ++i) w.Push(i);
  EXPECT_EQ(w.At(0), 6);
  EXPECT_EQ(w.At(3), 9);
  EXPECT_EQ(w.size(), 4u);
}

TEST(SlidingWindowTest, ZeroCapacityClampsToOne) {
  SlidingWindow<int> w(0);
  EXPECT_EQ(w.capacity(), 1u);
  w.Push(9);
  EXPECT_EQ(w.Back(), 9);
}

TEST(SlidingWindowTest, ClearResets) {
  SlidingWindow<int> w(2);
  w.Push(1);
  w.Push(2);
  w.Clear();
  EXPECT_TRUE(w.empty());
  w.Push(5);
  EXPECT_EQ(w.Front(), 5);
}

// ----------------------------------------------------------------- FlashSim

TEST(FlashSimTest, AllocationAndAccounting) {
  FlashModel model;
  model.num_pages = 2;
  FlashSim flash(model);
  size_t p0 = flash.AllocatePage();
  size_t p1 = flash.AllocatePage();
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(flash.AllocatePage(), static_cast<size_t>(-1));  // full
  EXPECT_TRUE(flash.WritePage(p0, {1, 2, 3}));
  EXPECT_EQ(flash.ReadPage(p0), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(flash.writes(), 1u);
  EXPECT_EQ(flash.reads(), 1u);
  EXPECT_NEAR(flash.energy_j(), model.page_write_j + model.page_read_j, 1e-12);
}

TEST(FlashSimTest, RejectsInvalidOperations) {
  FlashSim flash;
  EXPECT_FALSE(flash.WritePage(0, {1}));        // not allocated
  EXPECT_TRUE(flash.ReadPage(5).empty());       // not allocated
  size_t p = flash.AllocatePage();
  std::vector<uint8_t> oversized(flash.model().page_size_bytes + 1, 0);
  EXPECT_FALSE(flash.WritePage(p, oversized));
}

// ---------------------------------------------------------------- MicroHash

TEST(MicroHashTest, BucketMapping) {
  FlashSim flash;
  MicroHashIndex idx(&flash, 0.0, 100.0, 10);
  EXPECT_EQ(idx.BucketOf(0.0), 0u);
  EXPECT_EQ(idx.BucketOf(99.9), 9u);
  EXPECT_EQ(idx.BucketOf(100.0), 9u);  // clamped
  EXPECT_EQ(idx.BucketOf(-5.0), 0u);   // clamped
  EXPECT_EQ(idx.BucketOf(55.0), 5u);
}

TEST(MicroHashTest, TopKMatchesNaiveScan) {
  FlashSim flash;
  MicroHashIndex idx(&flash, 0.0, 100.0, 16);
  util::Rng rng(23);
  std::vector<FlashRecord> all;
  for (sim::Epoch e = 0; e < 500; ++e) {
    double v = util::fixed_point::Quantize(rng.NextDouble(0, 100));
    idx.Insert(e, v);
    all.push_back(FlashRecord{e, util::fixed_point::Encode(v)});
  }
  std::sort(all.begin(), all.end(), [](const FlashRecord& a, const FlashRecord& b) {
    if (a.value_fx != b.value_fx) return a.value_fx > b.value_fx;
    return a.epoch < b.epoch;
  });
  for (size_t k : {1u, 5u, 20u}) {
    auto got = idx.TopK(k);
    ASSERT_EQ(got.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(got[i].value_fx, all[i].value_fx);
      EXPECT_EQ(got[i].epoch, all[i].epoch);
    }
  }
}

TEST(MicroHashTest, TopKScanTouchesFewerPagesThanFullScan) {
  FlashSim flash;
  MicroHashIndex idx(&flash, 0.0, 100.0, 16);
  util::Rng rng(29);
  for (sim::Epoch e = 0; e < 2000; ++e) {
    idx.Insert(e, util::fixed_point::Quantize(rng.NextDouble(0, 100)));
  }
  uint64_t before = flash.reads();
  idx.TopK(5);
  uint64_t topk_reads = flash.reads() - before;
  before = flash.reads();
  for (size_t b = 0; b < idx.num_buckets(); ++b) idx.ReadBucket(b);
  uint64_t full_reads = flash.reads() - before;
  EXPECT_LT(topk_reads * 4, full_reads);  // the index earns its keep
}

TEST(MicroHashTest, RecordsSurviveOpenPageAndFlush) {
  FlashSim flash;
  MicroHashIndex idx(&flash, 0.0, 100.0, 4);
  // Insert fewer records than fit in one page: all stay in the open page.
  idx.Insert(1, 90.0);
  idx.Insert(2, 91.0);
  auto top = idx.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].epoch, 2u);
  EXPECT_EQ(flash.writes(), 0u);  // nothing flushed yet
}

// ------------------------------------------------------------- HistoryStore

TEST(HistoryStoreTest, WindowSlidesAndArchives) {
  HistoryStore store(4, /*archive_to_flash=*/true, 0.0, 100.0);
  for (sim::Epoch e = 0; e < 10; ++e) {
    store.Append(e, static_cast<double>(e * 10));
  }
  auto window = store.WindowValues();
  EXPECT_EQ(window, (std::vector<double>{60, 70, 80, 90}));
  // Evicted readings (0..50) are on flash; the archive's best is 50.
  auto archived = store.ArchivedTopK(2);
  ASSERT_EQ(archived.size(), 2u);
  EXPECT_EQ(util::fixed_point::Decode(archived[0].value_fx), 50.0);
  EXPECT_EQ(util::fixed_point::Decode(archived[1].value_fx), 40.0);
}

TEST(HistoryStoreTest, NoFlashMeansNoArchive) {
  HistoryStore store(2, /*archive_to_flash=*/false, 0.0, 100.0);
  for (sim::Epoch e = 0; e < 5; ++e) store.Append(e, 1.0 * e);
  EXPECT_TRUE(store.ArchivedTopK(3).empty());
  EXPECT_EQ(store.flash_energy_j(), 0.0);
}

TEST(StoreHistorySourceTest, ExposesWindows) {
  std::vector<HistoryStore> stores;
  for (int i = 0; i < 3; ++i) stores.emplace_back(3, false, 0.0, 100.0);
  for (sim::Epoch e = 0; e < 3; ++e) {
    stores[1].Append(e, 10.0 + e);
    stores[2].Append(e, 20.0 + e);
  }
  StoreHistorySource source(&stores);
  EXPECT_EQ(source.num_nodes(), 3u);
  EXPECT_EQ(source.window_size(), 3u);
  EXPECT_EQ(source.Window(2), (std::vector<double>{20, 21, 22}));
}

}  // namespace
}  // namespace kspot::storage
